# Verification targets (referenced from README.md). `make check` is
# the gate every PR runs: static analysis (go vet plus the in-repo
# contactlint suite), the full test suite under the race detector
# (which exercises the concurrent harness, the parallel engine
# workers, and the parallel recursive-bisection partitioner), and a
# short fuzz smoke per native fuzz target.

.PHONY: check vet lint lint-fixtures test race fuzz-smoke chaos serve bench trace obs

check: vet lint lint-fixtures race chaos serve fuzz-smoke trace obs

vet:
	go vet ./...

# Repo-specific determinism/observability/serving contracts. `go run`
# builds the driver fresh, so the gate always reflects the working
# tree; -stats prints the per-analyzer diagnostic count and wall time.
lint:
	go run ./tools/contactlint -stats ./internal/... ./cmd/... ./tools/... ./examples/...

# Golden-fixture tests only: each analyzer alone over its positive/
# suppressed/clean fixture package, plus the suppression-machinery
# suite. Fast inner loop when writing or tuning an analyzer.
lint-fixtures:
	go test ./internal/lint -run 'TestGoldenAnalyzers|TestDirectives' -count=1

test:
	go test ./...

race:
	go test -race -count=1 ./...

# 10s per target; -fuzzminimizetime keeps a late-breaking interesting
# input from eating the whole budget in the silent minimizer.
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzKWay -fuzztime=10s -fuzzminimizetime=2s ./internal/partition
	go test -run='^$$' -fuzz=FuzzTreeDeserialize -fuzztime=10s -fuzzminimizetime=2s ./internal/dtree
	go test -run='^$$' -fuzz=FuzzHilbertKey -fuzztime=10s -fuzzminimizetime=2s ./internal/sfc
	go test -run='^$$' -fuzz=FuzzBKMeansAssign -fuzztime=10s -fuzzminimizetime=2s ./internal/bkmeans

# Deterministic fault-injection suite under the race detector: the
# chaos matrix (seeded fault schedules must leave engine results
# byte-identical), rank-failure degrade paths, transport/fault units,
# checkpoint kill/resume fidelity, and pool cancellation. Seeds are
# fixed in the tests, so failures replay exactly.
chaos:
	go test -race -count=1 \
		-run 'Chaos|Fault|Corrupt|Degrade|Retry|Transport|Direct|Faulty|Checkpoint|Resume|Cancel|Maybe|MessageAction|Latency|Active|Nil' \
		./internal/engine ./internal/transport ./internal/fault \
		./internal/harness ./internal/pool

# Serving gate under the race detector: the partsrv job engine and
# HTTP surface — bounded-queue rejection (429 + Retry-After), panic
# isolation, deadline enforcement, the chaos-under-load fleet, and the
# goroutine-leak check after graceful drain. -short skips the
# multi-second drain/restart/resubmit byte-identity sweep, which the
# full `race` target (whole tree, no -short) still runs.
serve:
	go test -race -count=1 -short -run 'TestServer|TestHTTP' ./internal/server

# End-to-end trace gate: a short traced sweep with the engine leg and
# first-attempt-only fault injection, validated by tracecheck — the
# trace must be well-formed (balanced B/E, monotonic per-lane
# timestamps) and contain spans/events from all four pipeline layers:
# harness snapshots, engine rank phases, transport exchanges (with
# injected-fault and retry events), and bisection tasks.
TRACE_OUT := $(if $(TMPDIR),$(TMPDIR),/tmp)/contactbench-trace.json
trace:
	go run ./cmd/contactbench -quick -snapshots 3 -k 4 -engine -chaos 1 -trace $(TRACE_OUT)
	go run ./tools/tracecheck \
		-require experiment,snapshot,mc_leg,ml_leg,rank,ghost_exchange,global_search,local_search,transport_exchange,rb_task,retry,fault_drop \
		$(TRACE_OUT)

# Observability gate under the race detector: the Prometheus renderer
# and its validator (golden exposition, histogram invariants), the
# rolling-window/SLO histogram, the flight recorder, structured-log
# determinism, trace retention/retrieval over HTTP, and the chaos test
# that scrapes /metrics, /debug/events, and a job trace mid-storm. The
# contactbench line then proves a real sweep's exposition passes
# promcheck end to end, required families included.
PROM_OUT := $(if $(TMPDIR),$(TMPDIR),/tmp)/contactbench-metrics.prom
obs:
	go test -race -count=1 \
		-run 'Prom|Window|Flight|Logger|Merge|Trace|Health|Events|Lifecycle|ChaosUnderLoad' \
		./internal/obs ./internal/server
	go run ./cmd/contactbench -quick -snapshots 2 -k 4 -prom $(PROM_OUT)
	go run ./tools/promcheck \
		-require partition,metric_eval,rb_coarsen,rb_refine,go_sched_goroutines_goroutines \
		$(PROM_OUT)


# Microbenchmarks plus the serial-vs-parallel KWay comparison and the
# amortized adaptive-vs-scratch snapshot sweep; the latter two rewrite
# BENCH_partition.json (checked in for provenance — numbers depend on
# GOMAXPROCS, recorded in the file). The contactbench line rewrites
# BENCH_backends.json, the 4-way partitioner-backend crossover table
# (MCML+DT vs ML+RCB vs SFC vs BKMeans) on the paper-scale scene; the
# partsrv line rewrites BENCH_serve.json, the serving throughput and
# latency numbers from the daemon's self-benchmark.
bench:
	go test -bench=. -benchmem ./internal/partition
	go run ./cmd/partition -bench-json BENCH_partition.json -k 16 -bench-snapshots 8
	go run ./cmd/contactbench -k 16 -snapshots 4 -backends-json BENCH_backends.json
	go run ./cmd/partsrv -bench -bench-json BENCH_serve.json
