# Verification targets (referenced from README.md). `make check` is
# the gate every PR runs: static analysis, the full test suite under
# the race detector (which exercises the concurrent harness, the
# parallel engine workers, and the parallel recursive-bisection
# partitioner), and a short fuzz smoke per native fuzz target.

.PHONY: check vet test race fuzz-smoke bench

check: vet race fuzz-smoke

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race -count=1 ./...

# 10s per target; -fuzzminimizetime keeps a late-breaking interesting
# input from eating the whole budget in the silent minimizer.
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzKWay -fuzztime=10s -fuzzminimizetime=2s ./internal/partition
	go test -run='^$$' -fuzz=FuzzTreeDeserialize -fuzztime=10s -fuzzminimizetime=2s ./internal/dtree

# Microbenchmarks plus the serial-vs-parallel KWay comparison; the
# latter rewrites BENCH_partition.json (checked in for provenance —
# numbers depend on GOMAXPROCS, recorded in the file).
bench:
	go test -bench=. -benchmem ./internal/partition
	go run ./cmd/partition -bench-json BENCH_partition.json -k 16
