# Verification targets (referenced from README.md). `make check` is
# the gate every PR runs: static analysis plus the full test suite
# under the race detector, which exercises the concurrent harness
# (RunAll k-sweep + per-snapshot measurement legs), the parallel
# engine workers, and the parallel recursive-bisection partitioner.

.PHONY: check vet test race bench

check: vet race

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...
