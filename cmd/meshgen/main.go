// Command meshgen generates the synthetic projectile/two-plate impact
// sequence (the EPIC-dataset stand-in) and either saves the snapshots
// as mesh files or prints the simulation-stage summary corresponding
// to the paper's Figure 3.
//
// Usage:
//
//	meshgen -out DIR [-refine N] [-snapshots N] [-steps N] [-paper]
//	meshgen -stages [-refine N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/mesh"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshgen: ")
	var (
		out       = flag.String("out", "", "directory to write snapshot .mesh files into")
		refine    = flag.Int("refine", 0, "override scene refinement (1=~10k nodes, 2=~70k, 3=~230k)")
		snapshots = flag.Int("snapshots", 0, "override snapshot count")
		steps     = flag.Int("steps", 0, "override time step count")
		paper     = flag.Bool("paper", false, "use the Table 1 reproduction profile (refine 2, ~13% contact nodes)")
		stages    = flag.Bool("stages", false, "print the Figure 3 simulation-stage summary instead of writing files")
	)
	flag.Parse()

	if *refine < 0 {
		log.Fatalf("-refine %d: must be >= 1 (0 = profile default)", *refine)
	}
	if *snapshots < 0 || *steps < 0 {
		log.Fatalf("-snapshots/-steps must be >= 0 (0 = profile default), got %d/%d", *snapshots, *steps)
	}

	cfg := sim.DefaultConfig()
	if *paper {
		cfg = sim.PaperConfig()
	}
	if *refine > 0 {
		cfg.Scene.Refine = *refine
	}
	if *snapshots > 0 {
		cfg.Snapshots = *snapshots
	}
	if *steps > 0 {
		cfg.Steps = *steps
	}

	if *stages {
		printStages(cfg)
		return
	}
	if *out == "" {
		log.Fatal("either -out or -stages is required")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	snaps, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, sn := range snaps {
		path := filepath.Join(*out, fmt.Sprintf("snap%03d.mesh", sn.Index))
		if err := sn.Mesh.SaveFile(path); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d snapshots to %s (%d nodes, %d elements, %d contact nodes at t=0)\n",
		len(snaps), *out, snaps[0].Mesh.NumNodes(), snaps[0].Mesh.NumElems(),
		len(snaps[0].Mesh.ContactNodes()))
}

// printStages reproduces Figure 3: the state of the simulation at
// several stages of the penetration, as a side-view ASCII section and
// a stats line per stage.
func printStages(cfg sim.Config) {
	snaps, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stages := []int{0, len(snaps) / 3, 2 * len(snaps) / 3, len(snaps) - 1}
	for _, idx := range stages {
		sn := snaps[idx]
		m := sn.Mesh
		fmt.Printf("--- stage t=%d/%d (snapshot %d): tip z=%.2f, %d nodes, %d elements, %d contact surfaces\n",
			sn.Step, cfg.Steps, sn.Index, sn.TipZ, m.NumNodes(), m.NumElems(), len(m.Surface))
		drawSection(sn)
	}
}

// drawSection renders an x-z slice through the impact axis: '#' for
// plate material, '*' for projectile, '.' for eroded/empty space.
func drawSection(sn sim.Snapshot) {
	m := sn.Mesh
	box := m.Box()
	const w, h = 64, 20
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = make([]byte, w)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	cy := (box.Min[1] + box.Max[1]) / 2
	dy := (box.Max[1] - box.Min[1]) / 8
	plot := func(x, z float64, ch byte) {
		c := int((x - box.Min[0]) / (box.Max[0] - box.Min[0]) * (w - 1))
		r := int((box.Max[2] - z) / (box.Max[2] - box.Min[2]) * (h - 1))
		if c >= 0 && c < w && r >= 0 && r < h {
			grid[r][c] = ch
		}
	}
	// Classify elements by body: the three bodies are topologically
	// disconnected, and the projectile is the component whose nodes
	// reach the highest z.
	comp, ncomp := m.NodalGraph(mesh.NodalGraphOptions{NCon: 1}).Components()
	topZ := make([]float64, ncomp)
	for i := range topZ {
		topZ[i] = -1e18
	}
	for v, c := range comp {
		if z := m.Coords[v][2]; z > topZ[c] {
			topZ[c] = z
		}
	}
	projComp := 0
	for c := 1; c < ncomp; c++ {
		if topZ[c] > topZ[projComp] {
			projComp = c
		}
	}
	for e := 0; e < m.NumElems(); e++ {
		nodes := m.ElemNodes(e)
		var x, y, z float64
		for _, n := range nodes {
			x += m.Coords[n][0]
			y += m.Coords[n][1]
			z += m.Coords[n][2]
		}
		k := float64(len(nodes))
		x, y, z = x/k, y/k, z/k
		if y < cy-dy || y > cy+dy {
			continue
		}
		ch := byte('#')
		if int(comp[nodes[0]]) == projComp {
			ch = '*'
		}
		plot(x, z, ch)
	}
	for _, row := range grid {
		fmt.Printf("  %s\n", row)
	}
}
