// Command partition decomposes a single mesh file with either MCML+DT
// (the paper's algorithm) or the ML+RCB baseline and prints the
// partition-quality metrics of Section 5.1.
//
// Usage:
//
//	partition -mesh FILE -k N [-algo mcmldt|mlrcb] [-seed N]
//	          [-backend multilevel|rcb|sfc|bkmeans]
//	          [-imbalance F] [-cweight N] [-maxp N] [-maxi N] [-tol F]
//	partition -graph FILE.graph -k N [-method rb|direct]   # raw METIS graph
//	partition ... -phases -obs rep.json                    # per-phase timings
//	partition ... -cpuprofile cpu.pprof -memprofile mem.pprof
//	partition -bench-json BENCH_partition.json -k 16       # serial-vs-parallel KWay bench
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/meshgen"
	"repro/internal/metrics"
	"repro/internal/mlrcb"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("partition: ")
	var (
		meshPath  = flag.String("mesh", "", "mesh file (from cmd/meshgen)")
		graphPath = flag.String("graph", "", "METIS .graph file (partition a raw graph instead of a mesh)")
		method    = flag.String("method", "rb", "graph partitioning method: rb (recursive bisection) or direct (multilevel k-way)")
		k         = flag.Int("k", 25, "number of partitions")
		algo      = flag.String("algo", "mcmldt", "algorithm: mcmldt or mlrcb")
		backendF  = flag.String("backend", "", "mcmldt partitioning backend: multilevel (default), rcb, sfc, or bkmeans")
		seed      = flag.Int64("seed", 1, "random seed")
		imbalance = flag.Float64("imbalance", 0.05, "per-constraint load imbalance tolerance")
		cweight   = flag.Int("cweight", 5, "contact-contact edge weight (mcmldt)")
		maxp      = flag.Int("maxp", 0, "guidance-tree max_p (0 = auto)")
		maxi      = flag.Int("maxi", 0, "guidance-tree max_i (0 = auto)")
		tol       = flag.Float64("tol", 0.5, "contact search proximity tolerance")
		phases    = flag.Bool("phases", false, "print the per-phase timing table")
		obsPath   = flag.String("obs", "", "write the per-phase observability report (JSON) to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a runtime/pprof heap profile to this file")
		benchJSON = flag.String("bench-json", "", "run the serial-vs-parallel KWay benchmark and write the JSON report to this file")
		benchRuns = flag.Int("bench-runs", 3, "repetitions per benchmark leg (best time wins)")
		workers   = flag.Int("workers", 0, "worker-pool size for the parallel leg (0 = GOMAXPROCS)")
		benchSnap = flag.Int("bench-snapshots", 0, "with -bench-json: also amortize adaptive warm-start vs from-scratch repartitioning over N snapshots")
	)
	flag.Parse()

	if *k < 1 {
		log.Fatalf("-k %d: partition count must be >= 1", *k)
	}
	if math.IsNaN(*imbalance) || math.IsInf(*imbalance, 0) || *imbalance < 0 {
		log.Fatalf("-imbalance %v: must be finite and >= 0", *imbalance)
	}
	if math.IsNaN(*tol) || math.IsInf(*tol, 0) || *tol < 0 {
		log.Fatalf("-tol %v: must be finite and >= 0", *tol)
	}
	if *cweight < 0 {
		log.Fatalf("-cweight %d: must be >= 0", *cweight)
	}
	if *maxp < 0 || *maxi < 0 {
		log.Fatalf("-maxp/-maxi must be >= 0 (0 = auto), got %d/%d", *maxp, *maxi)
	}
	if _, err := backend.Lookup(*backendF); err != nil {
		log.Fatal(err)
	}

	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				log.Print(err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProf); err != nil {
				log.Print(err)
			}
		}()
	}
	col := obs.New()
	reportObs := func() {
		if *phases {
			fmt.Println("\nPer-phase timings:")
			col.Report().WriteTable(os.Stdout)
		}
		if *obsPath != "" {
			if err := col.Report().WriteJSONFile(*obsPath); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote observability report to %s\n", *obsPath)
		}
	}

	if *benchJSON != "" {
		if err := benchPartition(*graphPath, *meshPath, *k, *seed, *imbalance, *workers, *benchRuns, *benchSnap, *benchJSON); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *graphPath != "" {
		partitionGraphFile(*graphPath, *k, *method, *seed, *imbalance, col)
		reportObs()
		return
	}
	if *meshPath == "" {
		log.Fatal("one of -mesh or -graph is required")
	}
	m, err := mesh.LoadFile(*meshPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d nodes, %d elements, %d surface elements, %d contact nodes\n",
		m.NumNodes(), m.NumElems(), len(m.Surface), len(m.ContactNodes()))

	switch *algo {
	case "mcmldt":
		nodal := mesh.DefaultNodalOptions()
		nodal.ContactEdgeWeight = int32(*cweight)
		d, err := core.Decompose(m, core.Config{
			K: *k, Seed: *seed, Imbalance: *imbalance,
			Nodal: nodal, MaxPure: *maxp, MaxImpure: *maxi, Parallel: true,
			Backend: *backendF,
			Obs:     col,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := d.Stats()
		name := "MCML+DT"
		if *backendF != "" && *backendF != "multilevel" {
			name = fmt.Sprintf("MCML+DT[%s]", *backendF)
		}
		fmt.Printf("%s %d-way (max_p=%d, max_i=%d):\n", name, *k, d.Cfg.MaxPure, d.Cfg.MaxImpure)
		fmt.Printf("  FEComm (comm volume)   %d\n", s.FEComm)
		fmt.Printf("  EdgeCut                %d\n", s.EdgeCut)
		fmt.Printf("  LoadImbalance          FE %.4f, contact %.4f\n", s.Imbalance[0], s.Imbalance[1])
		fmt.Printf("  NTNodes                %d (height %d)\n", s.NTNodes, s.TreeHeight)
		fmt.Printf("  NRemote                %d\n", d.NRemote(m, *tol))
	case "mlrcb":
		st, err := mlrcb.Decompose(m, mlrcb.Config{K: *k, Seed: *seed, Imbalance: *imbalance})
		if err != nil {
			log.Fatal(err)
		}
		imb := metrics.LoadImbalance(st.Graph, st.MeshLabels, *k)
		m2m, err := st.M2MComm(st.MeshLabels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ML+RCB %d-way:\n", *k)
		fmt.Printf("  FEComm (comm volume)   %d\n", metrics.CommVolume(st.Graph, st.MeshLabels, *k))
		fmt.Printf("  EdgeCut                %d\n", metrics.EdgeCut(st.Graph, st.MeshLabels))
		fmt.Printf("  LoadImbalance          FE %.4f\n", imb[0])
		fmt.Printf("  M2MComm                %d (of %d contact points)\n", m2m, len(st.ContactNodes))
		fmt.Printf("  NRemote                %d\n", st.NRemote(m, *tol))
	default:
		log.Fatalf("unknown -algo %q (want mcmldt or mlrcb)", *algo)
	}
	reportObs()
}

// benchLeg is one side of the serial-vs-parallel comparison.
type benchLeg struct {
	BestNS  int64 `json:"best_ns"`
	EdgeCut int64 `json:"edgecut"`
	Tasks   int64 `json:"rb_tasks,omitempty"`
	MaxWork int64 `json:"rb_workers_max,omitempty"`
}

// benchReport is the BENCH_partition.json schema.
type benchReport struct {
	Graph struct {
		NV, NE, NCon int
		Source       string `json:"source"`
	} `json:"graph"`
	K               int            `json:"k"`
	Seed            int64          `json:"seed"`
	Runs            int            `json:"runs"`
	GOMAXPROCS      int            `json:"gomaxprocs"`
	Workers         int            `json:"workers"`
	Serial          benchLeg       `json:"serial"`
	Parallel        benchLeg       `json:"parallel"`
	LabelsIdentical bool           `json:"labels_identical"`
	Speedup         float64        `json:"speedup"`
	Snapshots       *snapshotBench `json:"snapshots,omitempty"`
}

// snapshotLeg is one strategy's amortized cost/quality over a
// deforming snapshot sequence.
type snapshotLeg struct {
	TotalNS      int64   `json:"total_ns"`
	PerSnapshot  int64   `json:"ns_per_snapshot"`
	FinalCut     int64   `json:"final_cut"`
	MaxImbalance float64 `json:"max_imbalance"`
	Kept         int     `json:"kept,omitempty"`
	Diffused     int     `json:"diffused,omitempty"`
	Full         int     `json:"full,omitempty"`
	Migrated     int     `json:"migrated,omitempty"`
}

// snapshotBench compares adaptive warm-start repartitioning against
// partitioning every snapshot from scratch, on the same sequence of
// nodal graphs.
type snapshotBench struct {
	N           int         `json:"n"`
	Incremental snapshotLeg `json:"incremental"`
	Scratch     snapshotLeg `json:"scratch"`
	Speedup     float64     `json:"speedup"`
	CutRatio    float64     `json:"cut_ratio"`
}

// benchGraph loads the benchmark graph: an explicit -graph file, the
// nodal graph of an explicit -mesh, or (default) the projectile scene
// at Refine=2 — large enough (~60k nodes) to cross the parallel
// recursion cutoff of 1<<14.
func benchGraph(graphPath, meshPath string) (*graph.Graph, string, error) {
	switch {
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := graph.ReadMetis(f)
		return g, graphPath, err
	case meshPath != "":
		m, err := mesh.LoadFile(meshPath)
		if err != nil {
			return nil, "", err
		}
		return m.NodalGraph(mesh.DefaultNodalOptions()), meshPath, nil
	default:
		cfg := meshgen.DefaultScene()
		cfg.Refine = 2
		m, si, err := meshgen.ProjectileScene(cfg)
		if err != nil {
			return nil, "", err
		}
		meshgen.DesignateContact(m, si)
		return m.NodalGraph(mesh.DefaultNodalOptions()), "meshgen:projectile-refine2", nil
	}
}

// benchPartition times the strictly serial KWay recursion against the
// pooled one on the same graph and writes a JSON report. Labels must
// come out byte-identical; the report records whether they did.
func benchPartition(graphPath, meshPath string, k int, seed int64, imbalance float64, workers, runs, benchSnap int, outPath string) error {
	g, source, err := benchGraph(graphPath, meshPath)
	if err != nil {
		return err
	}
	if runs < 1 {
		runs = 1
	}
	fmt.Printf("bench graph: %d vertices, %d edges, %d constraints (%s)\n", g.NV(), g.NE(), g.NCon, source)

	var rep benchReport
	rep.Graph.NV, rep.Graph.NE, rep.Graph.NCon, rep.Graph.Source = g.NV(), g.NE(), g.NCon, source
	rep.K, rep.Seed, rep.Runs = k, seed, runs
	rep.GOMAXPROCS, rep.Workers = runtime.GOMAXPROCS(0), workers

	leg := func(opt partition.Options) (benchLeg, []int32, error) {
		var l benchLeg
		var labels []int32
		for i := 0; i < runs; i++ {
			col := obs.New()
			opt.Obs = col
			t0 := time.Now()
			out, err := partition.KWay(g, opt)
			if err != nil {
				return l, nil, err
			}
			if ns := time.Since(t0).Nanoseconds(); l.BestNS == 0 || ns < l.BestNS {
				l.BestNS = ns
			}
			labels = out
			rep := col.Report()
			for _, c := range rep.Counters {
				if c.Name == "partition_rb_tasks" {
					l.Tasks = c.Value
				}
			}
			for _, g := range rep.Gauges {
				if g.Name == "partition_rb_workers_max" {
					l.MaxWork = g.Value
				}
			}
		}
		l.EdgeCut = partition.EdgeCut(g, labels)
		return l, labels, nil
	}

	base := partition.Options{K: k, Seed: seed, Imbalance: imbalance, Workers: workers}
	serialOpt := base
	serialOpt.ParallelCutoff = -1
	var serialLabels, parLabels []int32
	if rep.Serial, serialLabels, err = leg(serialOpt); err != nil {
		return err
	}
	if rep.Parallel, parLabels, err = leg(base); err != nil {
		return err
	}

	rep.LabelsIdentical = true
	for v := range serialLabels {
		if serialLabels[v] != parLabels[v] {
			rep.LabelsIdentical = false
			break
		}
	}
	if rep.Parallel.BestNS > 0 {
		rep.Speedup = float64(rep.Serial.BestNS) / float64(rep.Parallel.BestNS)
	}

	fmt.Printf("serial   best %12d ns  edgecut %d\n", rep.Serial.BestNS, rep.Serial.EdgeCut)
	fmt.Printf("parallel best %12d ns  edgecut %d  (tasks %d, peak workers %d)\n",
		rep.Parallel.BestNS, rep.Parallel.EdgeCut, rep.Parallel.Tasks, rep.Parallel.MaxWork)
	fmt.Printf("speedup %.2fx on GOMAXPROCS=%d, labels identical: %v\n",
		rep.Speedup, rep.GOMAXPROCS, rep.LabelsIdentical)
	if !rep.LabelsIdentical {
		return fmt.Errorf("benchmark violated the determinism contract: serial and parallel labels differ")
	}

	if benchSnap > 1 {
		sb, err := benchSnapshots(k, seed, imbalance, benchSnap)
		if err != nil {
			return err
		}
		rep.Snapshots = sb
		fmt.Printf("snapshot sweep (%d snapshots): incremental %d ns/snapshot (kept %d, diffused %d, full %d, migrated %d), scratch %d ns/snapshot\n",
			sb.N, sb.Incremental.PerSnapshot, sb.Incremental.Kept, sb.Incremental.Diffused,
			sb.Incremental.Full, sb.Incremental.Migrated, sb.Scratch.PerSnapshot)
		fmt.Printf("snapshot sweep speedup %.2fx, final cut ratio %.3f (incremental/scratch), max imbalance %.3f vs %.3f\n",
			sb.Speedup, sb.CutRatio, sb.Incremental.MaxImbalance, sb.Scratch.MaxImbalance)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// benchSnapshots amortizes adaptive warm-start repartitioning against
// from-scratch partitioning over a deforming snapshot sequence. Nodal
// graphs are built up front so both legs time only partitioning work.
func benchSnapshots(k int, seed int64, eps float64, n int) (*snapshotBench, error) {
	cfg := sim.DefaultConfig()
	cfg.Snapshots = n
	cfg.Steps = 10 * n
	snaps, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	graphs := make([]*graph.Graph, len(snaps))
	for i := range snaps {
		graphs[i] = snaps[i].Mesh.NodalGraph(mesh.DefaultNodalOptions())
	}
	opt := partition.Options{K: k, Seed: seed, Imbalance: eps}
	thr := partition.DriftThresholds{}.WithDefaults(eps)

	worstImb := func(g *graph.Graph, labels []int32) float64 {
		worst := 1.0
		for _, x := range partition.LoadImbalances(g, labels, k) {
			worst = math.Max(worst, x)
		}
		return worst
	}
	// carry maps snapshot t's labels onto snapshot t+1's vertices via
	// the persistent node ids; nodes born between snapshots inherit
	// partition 0 and are rebalanced by the repartitioner.
	carry := func(prev []int32, from, to int) []int32 {
		byID := make(map[int64]int32, len(prev))
		for v, id := range snaps[from].NodeID {
			byID[id] = prev[v]
		}
		next := make([]int32, graphs[to].NV())
		for v, id := range snaps[to].NodeID {
			next[v] = byID[id]
		}
		return next
	}

	bench := &snapshotBench{N: len(snaps)}

	// Scratch leg: full multilevel partition of every snapshot.
	t0 := time.Now()
	var scratchLabels []int32
	for _, g := range graphs {
		if scratchLabels, err = partition.Partition(g, opt); err != nil {
			return nil, err
		}
		bench.Scratch.MaxImbalance = math.Max(bench.Scratch.MaxImbalance, worstImb(g, scratchLabels))
	}
	bench.Scratch.TotalNS = time.Since(t0).Nanoseconds()
	bench.Scratch.FinalCut = partition.EdgeCut(graphs[len(graphs)-1], scratchLabels)

	// Incremental leg: warm-start each snapshot from the previous
	// labels and let the drift policy choose keep/diffuse/full.
	t0 = time.Now()
	labels, err := partition.Partition(graphs[0], opt)
	if err != nil {
		return nil, err
	}
	bench.Incremental.MaxImbalance = worstImb(graphs[0], labels)
	baseCut := partition.EdgeCut(graphs[0], labels)
	for t := 1; t < len(graphs); t++ {
		g := graphs[t]
		labels = carry(labels, t-1, t)
		cur := partition.MeasureDrift(g, labels, k)
		switch thr.Decide(cur, baseCut, eps) {
		case partition.DriftKeep:
			bench.Incremental.Kept++
			bench.Incremental.MaxImbalance = math.Max(bench.Incremental.MaxImbalance, cur.Imbalance)
			continue // baseline cut stays pinned to the last repair
		case partition.DriftDiffuse:
			bench.Incremental.Diffused++
			migrated, err := partition.Repartition(g, labels, partition.RepartitionOptions{Options: opt})
			if err != nil {
				return nil, err
			}
			bench.Incremental.Migrated += migrated
		case partition.DriftFull:
			bench.Incremental.Full++
			prev := labels
			if labels, err = partition.Partition(g, opt); err != nil {
				return nil, err
			}
			bench.Incremental.Migrated += len(prev) - partition.Overlap(prev, labels)
		}
		baseCut = partition.EdgeCut(g, labels)
		bench.Incremental.MaxImbalance = math.Max(bench.Incremental.MaxImbalance, worstImb(g, labels))
	}
	bench.Incremental.TotalNS = time.Since(t0).Nanoseconds()
	bench.Incremental.FinalCut = partition.EdgeCut(graphs[len(graphs)-1], labels)

	bench.Scratch.PerSnapshot = bench.Scratch.TotalNS / int64(len(snaps))
	bench.Incremental.PerSnapshot = bench.Incremental.TotalNS / int64(len(snaps))
	if bench.Incremental.TotalNS > 0 {
		bench.Speedup = float64(bench.Scratch.TotalNS) / float64(bench.Incremental.TotalNS)
	}
	if bench.Scratch.FinalCut > 0 {
		bench.CutRatio = float64(bench.Incremental.FinalCut) / float64(bench.Scratch.FinalCut)
	}
	return bench, nil
}

// partitionGraphFile partitions a raw METIS graph file and prints the
// quality metrics.
func partitionGraphFile(path string, k int, method string, seed int64, imbalance float64, col *obs.Collector) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.ReadMetis(f)
	_ = f.Close() // read-only; a close error after a successful read carries no data
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %d constraints\n", g.NV(), g.NE(), g.NCon)
	opt := partition.Options{K: k, Seed: seed, Imbalance: imbalance}
	var labels []int32
	stopPart := col.Start("partition")
	switch method {
	case "rb":
		labels, err = partition.Partition(g, opt)
	case "direct":
		labels, err = partition.PartitionDirect(g, opt)
	default:
		log.Fatalf("unknown -method %q", method)
	}
	stopPart()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %d-way:\n", method, k)
	fmt.Printf("  EdgeCut                %d\n", metrics.EdgeCut(g, labels))
	fmt.Printf("  CommVolume             %d\n", metrics.CommVolume(g, labels, k))
	imb := metrics.LoadImbalance(g, labels, k)
	for j, x := range imb {
		fmt.Printf("  LoadImbalance[%d]       %.4f\n", j, x)
	}
}
