// Command partition decomposes a single mesh file with either MCML+DT
// (the paper's algorithm) or the ML+RCB baseline and prints the
// partition-quality metrics of Section 5.1.
//
// Usage:
//
//	partition -mesh FILE -k N [-algo mcmldt|mlrcb] [-seed N]
//	          [-imbalance F] [-cweight N] [-maxp N] [-maxi N] [-tol F]
//	partition -graph FILE.graph -k N [-method rb|direct]   # raw METIS graph
//	partition ... -phases -obs rep.json                    # per-phase timings
//	partition ... -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/mlrcb"
	"repro/internal/obs"
	"repro/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("partition: ")
	var (
		meshPath  = flag.String("mesh", "", "mesh file (from cmd/meshgen)")
		graphPath = flag.String("graph", "", "METIS .graph file (partition a raw graph instead of a mesh)")
		method    = flag.String("method", "rb", "graph partitioning method: rb (recursive bisection) or direct (multilevel k-way)")
		k         = flag.Int("k", 25, "number of partitions")
		algo      = flag.String("algo", "mcmldt", "algorithm: mcmldt or mlrcb")
		seed      = flag.Int64("seed", 1, "random seed")
		imbalance = flag.Float64("imbalance", 0.05, "per-constraint load imbalance tolerance")
		cweight   = flag.Int("cweight", 5, "contact-contact edge weight (mcmldt)")
		maxp      = flag.Int("maxp", 0, "guidance-tree max_p (0 = auto)")
		maxi      = flag.Int("maxi", 0, "guidance-tree max_i (0 = auto)")
		tol       = flag.Float64("tol", 0.5, "contact search proximity tolerance")
		phases    = flag.Bool("phases", false, "print the per-phase timing table")
		obsPath   = flag.String("obs", "", "write the per-phase observability report (JSON) to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a runtime/pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				log.Print(err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProf); err != nil {
				log.Print(err)
			}
		}()
	}
	col := obs.New()
	reportObs := func() {
		if *phases {
			fmt.Println("\nPer-phase timings:")
			col.Report().WriteTable(os.Stdout)
		}
		if *obsPath != "" {
			if err := col.Report().WriteJSONFile(*obsPath); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote observability report to %s\n", *obsPath)
		}
	}

	if *graphPath != "" {
		partitionGraphFile(*graphPath, *k, *method, *seed, *imbalance, col)
		reportObs()
		return
	}
	if *meshPath == "" {
		log.Fatal("one of -mesh or -graph is required")
	}
	m, err := mesh.LoadFile(*meshPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d nodes, %d elements, %d surface elements, %d contact nodes\n",
		m.NumNodes(), m.NumElems(), len(m.Surface), len(m.ContactNodes()))

	switch *algo {
	case "mcmldt":
		nodal := mesh.DefaultNodalOptions()
		nodal.ContactEdgeWeight = int32(*cweight)
		d, err := core.Decompose(m, core.Config{
			K: *k, Seed: *seed, Imbalance: *imbalance,
			Nodal: nodal, MaxPure: *maxp, MaxImpure: *maxi, Parallel: true,
			Obs: col,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := d.Stats()
		fmt.Printf("MCML+DT %d-way (max_p=%d, max_i=%d):\n", *k, d.Cfg.MaxPure, d.Cfg.MaxImpure)
		fmt.Printf("  FEComm (comm volume)   %d\n", s.FEComm)
		fmt.Printf("  EdgeCut                %d\n", s.EdgeCut)
		fmt.Printf("  LoadImbalance          FE %.4f, contact %.4f\n", s.Imbalance[0], s.Imbalance[1])
		fmt.Printf("  NTNodes                %d (height %d)\n", s.NTNodes, s.TreeHeight)
		fmt.Printf("  NRemote                %d\n", d.NRemote(m, *tol))
	case "mlrcb":
		st, err := mlrcb.Decompose(m, mlrcb.Config{K: *k, Seed: *seed, Imbalance: *imbalance})
		if err != nil {
			log.Fatal(err)
		}
		imb := metrics.LoadImbalance(st.Graph, st.MeshLabels, *k)
		m2m, err := st.M2MComm(st.MeshLabels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ML+RCB %d-way:\n", *k)
		fmt.Printf("  FEComm (comm volume)   %d\n", metrics.CommVolume(st.Graph, st.MeshLabels, *k))
		fmt.Printf("  EdgeCut                %d\n", metrics.EdgeCut(st.Graph, st.MeshLabels))
		fmt.Printf("  LoadImbalance          FE %.4f\n", imb[0])
		fmt.Printf("  M2MComm                %d (of %d contact points)\n", m2m, len(st.ContactNodes))
		fmt.Printf("  NRemote                %d\n", st.NRemote(m, *tol))
	default:
		log.Fatalf("unknown -algo %q (want mcmldt or mlrcb)", *algo)
	}
	reportObs()
}

// partitionGraphFile partitions a raw METIS graph file and prints the
// quality metrics.
func partitionGraphFile(path string, k int, method string, seed int64, imbalance float64, col *obs.Collector) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.ReadMetis(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %d constraints\n", g.NV(), g.NE(), g.NCon)
	opt := partition.Options{K: k, Seed: seed, Imbalance: imbalance}
	var labels []int32
	stopPart := col.Start("partition")
	switch method {
	case "rb":
		labels, err = partition.Partition(g, opt)
	case "direct":
		labels, err = partition.PartitionDirect(g, opt)
	default:
		log.Fatalf("unknown -method %q", method)
	}
	stopPart()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %d-way:\n", method, k)
	fmt.Printf("  EdgeCut                %d\n", metrics.EdgeCut(g, labels))
	fmt.Printf("  CommVolume             %d\n", metrics.CommVolume(g, labels, k))
	imb := metrics.LoadImbalance(g, labels, k)
	for j, x := range imb {
		fmt.Printf("  LoadImbalance[%d]       %.4f\n", j, x)
	}
}
