package main

// The live observability endpoint (-http): while a sweep runs, a
// background HTTP server exposes
//
//	/metrics          the obs report (phases, counters, gauges,
//	                  histograms) plus runtime/metrics samples (heap,
//	                  GC, goroutines) as JSON; ?format=prom switches
//	                  to Prometheus text exposition
//	/progress         the sweep cursor: per experiment, snapshot i of N
//	/debug/pprof/*    the standard net/http/pprof handlers
//
// The server binds before the sweep starts (so the printed URL is
// usable immediately) and is shut down gracefully when the run
// finishes.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"runtime/metrics"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

// runtimeSamples reads a fixed set of runtime/metrics samples into a
// name -> value map for the /metrics body.
func runtimeSamples() map[string]any {
	names := []string{
		"/memory/classes/heap/objects:bytes",
		"/memory/classes/total:bytes",
		"/gc/cycles/total:gc-cycles",
		"/gc/heap/allocs:bytes",
		"/sched/goroutines:goroutines",
	}
	samples := make([]metrics.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	metrics.Read(samples)
	out := make(map[string]any, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = s.Value.Uint64()
		case metrics.KindFloat64:
			out[s.Name] = s.Value.Float64()
		}
	}
	return out
}

// startServer binds addr and serves the observability endpoints in a
// background goroutine. Returns the resolved listen address (":0"
// picks a free port) and a shutdown function that stops accepting
// connections and waits briefly for in-flight responses to finish.
//
// The server carries read-header/read/idle timeouts so a slow or
// stalled client (slowloris) cannot pin connections open for the life
// of the sweep. WriteTimeout stays 0 on purpose: pprof profile
// endpoints stream for a caller-chosen duration.
func startServer(addr string, col *obs.Collector, prog *harness.Progress) (string, func(), error) {
	mux := http.DefaultServeMux // net/http/pprof registered itself here
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			// A scrape's connection is the only sink for write errors.
			_ = col.Report().WritePrometheus(w)
			_ = obs.WritePrometheusRuntime(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(struct {
			Obs     obs.Report     `json:"obs"`
			Runtime map[string]any `json:"runtime"`
		}{col.Report(), runtimeSamples()})
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = prog.WriteJSON(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("contactbench: -http %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = srv.Serve(ln) }() // Serve always returns ErrServerClosed on Shutdown
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Past the grace period: close whatever is left rather
			// than hang process exit on a stuck client.
			_ = srv.Close()
		}
	}
	return ln.Addr().String(), shutdown, nil
}
