// Command contactbench reproduces the paper's evaluation (Section 5):
// it runs the synthetic projectile/two-plate sequence through MCML+DT
// and ML+RCB and prints Table 1 (the six metrics averaged over the
// snapshot sequence) plus the derived communication-ratio claims.
//
// Usage:
//
//	contactbench                       # Table 1 at the paper profile
//	contactbench -quick                # small scene, few snapshots
//	contactbench -k 25,100 -snapshots 100
//	contactbench -ablate               # design-choice ablations
//	contactbench -sweep                # Section 4.2 max_p/max_i sweep
//	contactbench -workers 8            # concurrent k-sweep on 8 workers
//	contactbench -phases -obs rep.json # per-phase timing table + JSON report
//	contactbench -cpuprofile cpu.pprof -memprofile mem.pprof
//	contactbench -checkpoint sweep.ckpt           # checkpoint after every snapshot
//	contactbench -checkpoint sweep.ckpt -resume   # continue a killed sweep
//
// SIGINT/SIGTERM interrupt the sweep gracefully: completed snapshots
// stay durable in the checkpoint, the observability report (if
// requested) is still written, and the process exits with status 130.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/sim"
)

func main() {
	// The real work lives in run so deferred cleanups (profile
	// writers) execute before the explicit exit code.
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("contactbench: ")
	var (
		kList      = flag.String("k", "25,100", "comma-separated partition counts")
		refine     = flag.Int("refine", 0, "override scene refinement")
		snapshots  = flag.Int("snapshots", 0, "override snapshot count")
		quick      = flag.Bool("quick", false, "small scene and 10 snapshots (seconds instead of minutes)")
		seed       = flag.Int64("seed", 1, "random seed")
		ablate     = flag.Bool("ablate", false, "also run the design-choice ablations")
		sweep      = flag.Bool("sweep", false, "run the Section 4.2 max_p/max_i sensitivity sweep")
		csvPath    = flag.String("csv", "", "also write per-snapshot metric rows to this CSV file")
		workers    = flag.Int("workers", 0, "worker-pool size for the concurrent k-sweep (0 = GOMAXPROCS)")
		phases     = flag.Bool("phases", false, "print the per-phase timing/counter table")
		obsPath    = flag.String("obs", "", "write the per-phase observability report (JSON) to this file")
		promPath   = flag.String("prom", "", "write the final observability report as Prometheus text exposition to this file")
		cpuProf    = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a runtime/pprof heap profile to this file")
		ckptPath   = flag.String("checkpoint", "", "checkpoint sweep progress to this file after every snapshot")
		resume     = flag.Bool("resume", false, "resume the sweep from the -checkpoint file")
		tracePath  = flag.String("trace", "", "write a Chrome trace-event JSON timeline (Perfetto/chrome://tracing) to this file")
		httpAddr   = flag.String("http", "", "serve /metrics, /progress, and /debug/pprof/* on this address during the run (e.g. :6060)")
		seriesPath = flag.String("series", "", "write the per-snapshot metric/eval-time series to this file (.csv for CSV, else JSON)")
		engineLeg  = flag.Bool("engine", false, "also run one resilient engine iteration per k on the first snapshot")
		chaosSeed  = flag.Int64("chaos", 0, "with -engine: inject deterministic first-attempt transport faults from this seed (0 = off)")

		backendF     = flag.String("backend", "", "MCML+DT partitioning backend: multilevel (default), rcb, sfc, or bkmeans")
		backendsJSON = flag.String("backends-json", "", "run the 4-way backend comparison (MCML+DT, ML+RCB, SFC, BKMeans) per k and write the crossover table to this JSON file")
		backendsRuns = flag.Int("backends-runs", 3, "with -backends-json: timing passes per backend (best wins)")
		adaptive     = flag.Bool("adaptive", false, "adaptive warm-start repartitioning: keep/diffuse/full per snapshot by drift policy")
		repartEvery  = flag.Int("repart-every", 0, "repartition the MCML+DT side every N snapshots (0 = every snapshot from scratch)")
		incremental  = flag.Bool("incremental", false, "with -repart-every: warm-start via diffusion instead of from scratch")
		driftCut     = flag.Float64("drift-cut", 0, "with -adaptive: relative cut-drift that triggers a diffusion repair (0 = default)")
		driftFullCut = flag.Float64("drift-full-cut", 0, "with -adaptive: relative cut-drift that forces a full repartition (0 = default)")
		driftImb     = flag.Float64("drift-imb", 0, "with -adaptive: imbalance that forces a full repartition (0 = default)")
	)
	flag.Parse()
	if *resume && *ckptPath == "" {
		log.Print("-resume requires -checkpoint")
		return 2
	}

	// A first SIGINT/SIGTERM cancels the sweep context (the harness
	// stops at the next snapshot boundary, with everything completed so
	// far already checkpointed); a second signal kills the process the
	// default way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				log.Print(err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProf); err != nil {
				log.Print(err)
			}
		}()
	}

	ks, err := parseKs(*kList)
	if err != nil {
		log.Print(err)
		return 2
	}

	cfg := sim.PaperConfig()
	if *quick {
		cfg = sim.DefaultConfig()
		cfg.Snapshots = 10
		cfg.Steps = 100
	}
	if *refine > 0 {
		cfg.Scene.Refine = *refine
	}
	if *snapshots > 0 {
		cfg.Snapshots = *snapshots
		if cfg.Steps < cfg.Snapshots {
			cfg.Steps = 4 * cfg.Snapshots
		}
	}

	t0 := time.Now()
	snaps, err := sim.Run(cfg)
	if err != nil {
		log.Print(err)
		return 1
	}
	if ctx.Err() != nil {
		log.Print("interrupted during snapshot generation")
		return 130
	}
	m0 := snaps[0].Mesh
	fmt.Printf("sequence: %d snapshots; initial mesh %d nodes, %d elements, %d contact surfaces, %d contact nodes (%.1f%%) [%.1fs]\n\n",
		len(snaps), m0.NumNodes(), m0.NumElems(), len(m0.Surface), len(m0.ContactNodes()),
		100*float64(len(m0.ContactNodes()))/float64(m0.NumNodes()), time.Since(t0).Seconds())

	if *sweep {
		runSweep(snaps, ks[0], *seed)
		return 0
	}

	col := obs.New()
	if *backendsJSON != "" {
		if err := runBackendCompare(ctx, snaps, ks, *seed, *backendsRuns, *backendsJSON, col); err != nil {
			log.Print(err)
			return 1
		}
		if *phases {
			fmt.Println("\nPer-phase timings and counters:")
			col.Report().WriteTable(os.Stdout)
		}
		return 0
	}
	var tracer *obs.Tracer
	var rootSpan *obs.Span
	if *tracePath != "" {
		tracer = obs.NewTracer()
		rootSpan = tracer.Root("contactbench")
	}
	// writeObs flushes the observability outputs; it runs on success
	// AND on interruption so a killed sweep still leaves its report
	// and trace.
	writeObs := func() int {
		if *phases {
			fmt.Println("\nPer-phase timings and counters:")
			col.Report().WriteTable(os.Stdout)
		}
		if *obsPath != "" {
			if err := col.Report().WriteJSONFile(*obsPath); err != nil {
				log.Print(err)
				return 1
			}
			fmt.Printf("wrote observability report to %s\n", *obsPath)
		}
		if *promPath != "" {
			f, err := os.Create(*promPath)
			if err == nil {
				err = col.Report().WritePrometheus(f)
				if err == nil {
					err = obs.WritePrometheusRuntime(f)
				}
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				log.Print(err)
				return 1
			}
			fmt.Printf("wrote Prometheus exposition to %s\n", *promPath)
		}
		if tracer != nil {
			rootSpan.End()
			if err := tracer.WriteTraceFile(*tracePath); err != nil {
				log.Print(err)
				return 1
			}
			fmt.Printf("wrote trace to %s\n", *tracePath)
		}
		return 0
	}

	cfgs := make([]harness.Config, len(ks))
	for i, k := range ks {
		cfgs[i] = harness.Config{
			K: k, Seed: *seed, Obs: col,
			Backend:          *backendF,
			Adaptive:         *adaptive,
			RepartitionEvery: *repartEvery,
			Incremental:      *incremental,
			Drift: partition.DriftThresholds{
				CutDrift:      *driftCut,
				FullCutDrift:  *driftFullCut,
				FullImbalance: *driftImb,
			},
		}
	}
	var ck *harness.Checkpointer
	if *ckptPath != "" {
		if *resume {
			loaded, lerr := harness.LoadCheckpoint(*ckptPath, snaps, cfgs)
			switch {
			case lerr == nil:
				ck = loaded
				fmt.Println("resuming from checkpoint:")
				ck.WriteSummary(os.Stdout, cfgs)
				// Fold the previous run's observability report into the
				// live collector so the final report covers the whole
				// sweep, not just the post-resume part.
				if rep := ck.SavedObs(); rep != nil {
					if err := col.Merge(*rep); err != nil {
						log.Print(err)
						return 1
					}
				}
			case errors.Is(lerr, os.ErrNotExist):
				log.Printf("no checkpoint at %s; starting fresh", *ckptPath)
			default:
				log.Print(lerr)
				return 1
			}
		}
		if ck == nil {
			ck = harness.NewCheckpointer(*ckptPath, snaps, cfgs)
		}
		ck.Obs = col
	}

	prog := harness.NewProgress(len(snaps), cfgs)
	if *httpAddr != "" {
		// The serve path logs structured JSON like partsrv does, so a
		// collector can ingest both binaries' stderr the same way.
		slg := obs.NewLogger(os.Stderr, nil)
		addr, stopServer, err := startServer(*httpAddr, col, prog)
		if err != nil {
			slg.Error("metrics server failed", "addr", *httpAddr, "err", err.Error())
			return 1
		}
		defer stopServer()
		fmt.Printf("serving /metrics, /progress, /debug/pprof on http://%s\n", addr)
		slg.Info("metrics server up", "addr", addr)
	}

	t1 := time.Now()
	results, err := harness.RunSweep(ctx, snaps, cfgs, harness.SweepOptions{
		Workers:    *workers,
		Checkpoint: ck,
		Progress:   prog,
		Span:       rootSpan,
	})
	if err != nil {
		if ctx.Err() != nil {
			if ck != nil {
				log.Print("interrupted; completed snapshots are saved in the checkpoint:")
				ck.WriteSummary(os.Stderr, cfgs)
				log.Printf("rerun with -checkpoint %s -resume to continue", *ckptPath)
			} else {
				log.Print("interrupted (run with -checkpoint FILE to make sweeps resumable)")
			}
			writeObs()
			return 130
		}
		log.Print(err)
		return 1
	}
	fmt.Printf("[k-sweep %v done in %.1fs on %d workers]\n", ks, time.Since(t1).Seconds(), pool.Workers(*workers))
	for _, r := range results {
		fmt.Printf("[%d-way: MCML+DT avg imbalance FE %.3f / contact %.3f]\n",
			r.K, r.Avg.MCImbalanceFE, r.Avg.MCImbalanceContact)
	}
	fmt.Println("\nTable 1 (averages over the snapshot sequence):")
	harness.WriteTable(os.Stdout, results)
	fmt.Println()
	harness.WriteDerived(os.Stdout, results)
	if *adaptive || *repartEvery > 0 {
		writeRepartSummary(os.Stdout, results)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := harness.WriteCSV(f, results); err != nil {
			log.Print(err)
			return 1
		}
		if err := f.Close(); err != nil {
			log.Print(err)
			return 1
		}
		fmt.Printf("\nwrote per-snapshot rows to %s\n", *csvPath)
	}

	if *seriesPath != "" {
		f, err := os.Create(*seriesPath)
		if err != nil {
			log.Print(err)
			return 1
		}
		if strings.HasSuffix(*seriesPath, ".csv") {
			err = harness.WriteSeriesCSV(f, results)
		} else {
			err = harness.WriteSeriesJSON(f, results)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Print(err)
			return 1
		}
		fmt.Printf("wrote per-snapshot series to %s\n", *seriesPath)
	}

	if *engineLeg {
		if err := runEngineLeg(snaps[0], ks, *seed, *chaosSeed, col, rootSpan); err != nil {
			log.Print(err)
			return 1
		}
	}

	if *ablate {
		runAblations(snaps, ks, *seed)
	}

	return writeObs()
}

// writeRepartSummary prints, per experiment, how the drift policy (or
// the fixed -repart-every cadence) decided across the sweep and how
// many nodes those decisions moved. Derived entirely from the recorded
// series, so the output is deterministic.
func writeRepartSummary(w io.Writer, results []*harness.Result) {
	fmt.Fprintln(w, "\nRepartitioning decisions:")
	byK := map[int]*struct{ kept, diffused, full, migrated int64 }{}
	var order []int
	for _, p := range harness.Series(results) {
		c := byK[p.K]
		if c == nil {
			c = &struct{ kept, diffused, full, migrated int64 }{}
			byK[p.K] = c
			order = append(order, p.K)
		}
		switch p.MCRepart {
		case "keep":
			c.kept++
		case "diffuse":
			c.diffused++
		case "full":
			c.full++
		}
		c.migrated += p.MCMigrated
	}
	for _, k := range order {
		c := byK[k]
		fmt.Fprintf(w, "  %d-way: kept %d, diffused %d, full %d; %d nodes migrated\n",
			k, c.kept, c.diffused, c.full, c.migrated)
	}
}

// backendsReport is the BENCH_backends.json schema: one 4-way
// comparison per k — the crossover table of cut, per-constraint
// imbalance, NRemote, and ns/partition versus k.
type backendsReport struct {
	Nodes       int                          `json:"nodes"`
	Snapshots   int                          `json:"snapshots"`
	Seed        int64                        `json:"seed"`
	Runs        int                          `json:"runs"`
	Comparisons []*harness.BackendComparison `json:"comparisons"`
}

// runBackendCompare runs the 4-way backend comparison for every k,
// prints the crossover table, and writes the JSON report.
func runBackendCompare(ctx context.Context, snaps []sim.Snapshot, ks []int, seed int64, runs int, path string, col *obs.Collector) error {
	rep := backendsReport{
		Nodes:     snaps[0].Mesh.NumNodes(),
		Snapshots: len(snaps),
		Seed:      seed,
		Runs:      runs,
	}
	fmt.Println("Backend comparison (averages over the snapshot sequence; partition time best-of-runs):")
	for _, k := range ks {
		t0 := time.Now()
		cmp, err := harness.CompareBackends(ctx, snaps, harness.Config{K: k, Seed: seed, Obs: col}, runs)
		if err != nil {
			return err
		}
		rep.Comparisons = append(rep.Comparisons, cmp)
		fmt.Printf("\n  k=%d [%.1fs]:\n", k, time.Since(t0).Seconds())
		fmt.Printf("  %-10s %12s %8s %8s %10s %14s %10s\n",
			"leg", "cut", "imbFE", "imbC", "NRemote", "partition_ns", "speedup")
		base := cmp.Rows[0].PartitionNS
		for _, row := range cmp.Rows {
			speedup := 0.0
			if row.PartitionNS > 0 {
				speedup = float64(base) / float64(row.PartitionNS)
			}
			fmt.Printf("  %-10s %12.0f %8.3f %8.3f %10.0f %14d %9.1fx\n",
				row.Leg, row.Cut, row.ImbalanceFE, row.ImbalanceContact,
				row.NRemote, row.PartitionNS, speedup)
		}
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

func parseKs(s string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad -k element %q", part)
		}
		ks = append(ks, k)
	}
	return ks, nil
}

// runAblations measures the design choices DESIGN.md calls out:
// contact-edge weight 1 vs 5, reshaping on/off, tight vs loose tree
// filter, and descriptor-only vs hybrid updates.
func runAblations(snaps []sim.Snapshot, ks []int, seed int64) {
	fmt.Println("\nAblations:")
	type variant struct {
		name string
		cfg  func(harness.Config) harness.Config
	}
	variants := []variant{
		{"baseline (w=5, reshape, tight filter)", func(c harness.Config) harness.Config { return c }},
		{"contact edge weight 1", func(c harness.Config) harness.Config { c.ContactEdgeWeight = 1; return c }},
		{"no boundary reshaping", func(c harness.Config) harness.Config { c.SkipReshape = true; return c }},
		{"loose tree filter (raw leaf rectangles)", func(c harness.Config) harness.Config { c.LooseTreeFilter = true; return c }},
		{"hybrid updates (repartition every 10)", func(c harness.Config) harness.Config { c.RepartitionEvery = 10; return c }},
		{"geometric MC-RCB pipeline (future work)", func(c harness.Config) harness.Config { c.Backend = "rcb"; return c }},
		{"margin-aware tree splits (future work)", func(c harness.Config) harness.Config { c.WideGaps = true; return c }},
	}
	for _, k := range ks {
		fmt.Printf("\n  %d-way:\n", k)
		fmt.Printf("  %-42s %10s %9s %9s %9s\n", "variant", "MCFEComm", "NTNodes", "MCNRem", "imbC")
		for _, v := range variants {
			cfg := v.cfg(harness.Config{K: k, Seed: seed})
			r, err := harness.Run(snaps, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-42s %10.0f %9.0f %9.0f %9.3f\n",
				v.name, r.Avg.MCFEComm, r.Avg.MCNTNodes, r.Avg.MCNRemote, r.Avg.MCImbalanceContact)
		}
	}
}

// runSweep reproduces the Section 4.2 parameter study: max_p and max_i
// above, inside, and below the recommended ranges.
func runSweep(snaps []sim.Snapshot, k int, seed int64) {
	m := snaps[0].Mesh
	n := float64(m.NumNodes())
	kf := float64(k)
	maxPs := []int{int(n / kf / 2), int(n / math.Pow(kf, 1.25)), int(n / math.Pow(kf, 1.5)), int(n * 2 / kf)}
	maxIs := []int{2, int(n / math.Pow(kf, 2.25)), int(n / (kf * kf)), int(n / kf)}

	fmt.Printf("Section 4.2 sweep at k=%d (n=%d; recommended: max_p in [%.0f, %.0f], max_i in [%.0f, %.0f]):\n",
		k, int(n), n/math.Pow(kf, 1.5), n/kf, n/math.Pow(kf, 2.5), n/(kf*kf))
	fmt.Printf("%8s %8s %10s %9s %9s %8s %8s\n", "max_p", "max_i", "FEComm", "NTNodes", "NRemote", "imbFE", "imbC")
	for _, mp := range maxPs {
		for _, mi := range maxIs {
			if mp < 4 || mi < 2 || mi > mp {
				continue
			}
			r, err := harness.Run(snaps[:1], harness.Config{K: k, Seed: seed, MaxPure: mp, MaxImpure: mi})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d %8d %10.0f %9.0f %9.0f %8.3f %8.3f\n",
				mp, mi, r.Avg.MCFEComm, r.Avg.MCNTNodes, r.Avg.MCNRemote,
				r.Avg.MCImbalanceFE, r.Avg.MCImbalanceContact)
		}
	}
}
