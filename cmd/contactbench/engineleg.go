package main

// The optional engine leg (-engine): one resilient parallel engine
// iteration per k on the first snapshot, so a single contactbench run
// exercises — and one trace file shows — all four layers of the
// pipeline: harness snapshots, engine rank phases, transport
// exchanges (with injected faults and retries when -chaos is set),
// and the partitioner's bisection tasks.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// runEngineLeg decomposes the snapshot and runs one engine iteration
// for each k. chaosSeed != 0 wraps the transport in a deterministic
// fault plan whose drops are restricted to first attempts, so every
// injected fault is recovered by retry (visible as "retry" events in
// the trace) and the results stay identical to a fault-free run.
func runEngineLeg(sn sim.Snapshot, ks []int, seed, chaosSeed int64, col *obs.Collector, parent *obs.Span) error {
	fmt.Println()
	for _, k := range ks {
		span := parent.Child("engine_iter", obs.Int("k", int64(k)))
		d, err := core.Decompose(sn.Mesh, core.Config{K: k, Seed: seed, Obs: col, Span: span})
		if err != nil {
			span.End()
			return fmt.Errorf("engine leg k=%d: %w", k, err)
		}
		var plan *fault.Plan
		if chaosSeed != 0 {
			plan = &fault.Plan{
				Seed: chaosSeed, DropProb: 0.25, DupProb: 0.05,
				FirstAttemptOnly: true,
			}
		}
		st, err := engine.RunOpts(sn.Mesh, d, 0.5, engine.Options{
			Obs: col, Span: span, Fault: plan,
		})
		span.End()
		if err != nil {
			return fmt.Errorf("engine leg k=%d: %w", k, err)
		}
		fmt.Printf("[engine k=%d: %d pairs, %d ghost units, %d elems shipped, degraded=%t]\n",
			k, len(st.Pairs), st.GhostUnits, st.ElemsShipped, st.Degraded)
	}
	return nil
}
