package main

// The serving benchmark (-bench): an in-process partsrv driven over
// real HTTP by concurrent clients. It measures what the daemon
// promises — sustained job throughput and client-observed latency
// under backpressure — and writes BENCH_serve.json.
//
// The workload is submit-heavy: every client submits small multilevel
// graph jobs (distinct seeds, so no result-cache shortcuts), retries
// 429s after the advertised backoff, and blocks on ?wait=1 until its
// job is terminal. Latency is measured from first submit attempt to
// terminal status, so queue wait and shed/retry cycles count against
// the service, as they do for a real client.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// benchGridSpec builds the benchmark's unit-weight nx x ny grid graph
// in wire form.
func benchGridSpec(nx, ny int) *server.GraphSpec {
	nv := nx * ny
	xadj := make([]int32, 1, nv+1)
	var adj []int32
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				ux, uy := x+d[0], y+d[1]
				if ux >= 0 && ux < nx && uy >= 0 && uy < ny {
					adj = append(adj, int32(uy*nx+ux))
				}
			}
			xadj = append(xadj, int32(len(adj)))
		}
	}
	return &server.GraphSpec{NCon: 1, Xadj: xadj, Adj: adj}
}

// benchResult is the BENCH_serve.json schema.
type benchResult struct {
	Jobs       int     `json:"jobs"`
	Clients    int     `json:"clients"`
	Workers    int     `json:"workers"`
	QueueDepth int     `json:"queue_depth"`
	WallS      float64 `json:"wall_s"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// Client-observed latency (submit attempt -> terminal), ns.
	LatencyP50NS int64 `json:"latency_p50_ns"`
	LatencyP90NS int64 `json:"latency_p90_ns"`
	LatencyP99NS int64 `json:"latency_p99_ns"`
	// Server-side job wall clock from the obs histogram layer
	// (the "serve_job_wall" phase: queue wait + execution), ns.
	ServeWallP50NS int64 `json:"serve_wall_p50_ns"`
	ServeWallP90NS int64 `json:"serve_wall_p90_ns"`
	ServeWallP99NS int64 `json:"serve_wall_p99_ns"`
	// Retries is the number of 429-shed submit attempts that were
	// retried; the accounting ledger is the server's own view.
	Retries    int64             `json:"retries_429"`
	Accounting server.Accounting `json:"accounting"`
	// Observability under load: a scraper polls /metrics?format=prom
	// while the storm runs (every scrape is validated) and its
	// request latency is recorded, plus the rolling-window job-wall
	// p99 as the window saw it at the end of the run.
	Scrapes     int64 `json:"scrapes"`
	ScrapeP50NS int64 `json:"scrape_p50_ns"`
	ScrapeP99NS int64 `json:"scrape_p99_ns"`
	WindowP99NS int64 `json:"window_p99_ns"`
}

func runBench(opt server.Options, jobs int, outPath string) error {
	srv := server.New(opt)
	httpSrv := server.NewHTTPServer("", srv.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 2 * time.Minute}

	const clients = 8
	grid := benchGridSpec(48, 48)
	latencies := make([]int64, jobs)
	var retries int64
	var mu sync.Mutex
	var wg sync.WaitGroup

	// Scrape loop: a monitoring client polling the Prometheus endpoint
	// while the job storm runs, as a real deployment would. Each scrape
	// is validated, and its latency lands in the bench result — a
	// scrape that slows down under load is an operational regression.
	stopScrape := make(chan struct{})
	var scrapeWg sync.WaitGroup
	var scrapeNS []int64 // owned by the scraper; read after join
	scrapeWg.Add(1)
	go func() {
		defer scrapeWg.Done()
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			s0 := time.Now()
			resp, err := client.Get(base + "/metrics?format=prom")
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench scrape: %v\n", err)
				return
			}
			_, verr := obs.ValidateProm(resp.Body)
			_ = resp.Body.Close() // validation already consumed the payload
			if verr != nil {
				fmt.Fprintf(os.Stderr, "bench scrape invalid: %v\n", verr)
			}
			scrapeNS = append(scrapeNS, time.Since(s0).Nanoseconds())
			time.Sleep(50 * time.Millisecond)
		}
	}()

	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < jobs; i += clients {
				spec := server.JobSpec{
					Kind: server.KindGraph, Graph: grid,
					K: 8, Seed: int64(i), // distinct seeds: no cache hits
				}
				lat, nretry, err := submitAndWait(client, base, spec)
				mu.Lock()
				latencies[i] = int64(lat)
				retries += nretry
				mu.Unlock()
				if err != nil {
					fmt.Fprintf(os.Stderr, "bench job %d: %v\n", i, err)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0)
	close(stopScrape)
	scrapeWg.Wait()
	window := srv.Window() // before drain: the window only sees done jobs
	_ = httpSrv.Close()
	if err := drainQuiesced(srv); err != nil {
		return err
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) int64 { return latencies[int(p*float64(len(latencies)-1))] }
	res := benchResult{
		Jobs: jobs, Clients: clients,
		Workers: opt.Workers, QueueDepth: opt.QueueDepth,
		WallS:        wall.Seconds(),
		JobsPerSec:   float64(jobs) / wall.Seconds(),
		LatencyP50NS: pct(0.50), LatencyP90NS: pct(0.90), LatencyP99NS: pct(0.99),
		Retries:     retries,
		Accounting:  srv.Accounting(),
		Scrapes:     int64(len(scrapeNS)),
		WindowP99NS: window.P99,
	}
	for _, h := range opt.Obs.Report().Hists {
		if h.Name == "serve_job_wall" {
			res.ServeWallP50NS, res.ServeWallP90NS, res.ServeWallP99NS = h.P50, h.P90, h.P99
		}
	}
	if len(scrapeNS) > 0 {
		sort.Slice(scrapeNS, func(i, j int) bool { return scrapeNS[i] < scrapeNS[j] })
		spct := func(p float64) int64 { return scrapeNS[int(p*float64(len(scrapeNS)-1))] }
		res.ScrapeP50NS, res.ScrapeP99NS = spct(0.50), spct(0.99)
	}
	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: %d jobs on %d clients in %.2fs (%.1f jobs/s, p50 %s p99 %s, %d retries, %d scrapes p99 %s) -> %s\n",
		res.Jobs, res.Clients, res.WallS, res.JobsPerSec,
		time.Duration(res.LatencyP50NS), time.Duration(res.LatencyP99NS), res.Retries,
		res.Scrapes, time.Duration(res.ScrapeP99NS), outPath)
	return nil
}

// submitAndWait pushes one job through the API, retrying 429 sheds
// after the advertised Retry-After (capped small: the benchmark wants
// to observe recovery, not sleep through it). Returns the
// first-attempt-to-terminal latency and the retry count.
func submitAndWait(client *http.Client, base string, spec server.JobSpec) (time.Duration, int64, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	var retries int64
	var view server.JobView
	for {
		resp, err := client.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return time.Since(t0), retries, err
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		_ = resp.Body.Close() // decode already consumed the payload
		if resp.StatusCode == http.StatusTooManyRequests {
			retries++
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return time.Since(t0), retries, fmt.Errorf("submit: HTTP %d (%s)", resp.StatusCode, view.Error)
		}
		if err != nil {
			return time.Since(t0), retries, err
		}
		break
	}
	resp, err := client.Get(base + "/api/v1/jobs/" + view.ID + "?wait=1")
	if err != nil {
		return time.Since(t0), retries, err
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	_ = resp.Body.Close() // decode already consumed the payload
	if err != nil {
		return time.Since(t0), retries, err
	}
	if view.Status != server.StatusDone {
		return time.Since(t0), retries, fmt.Errorf("job %s finished %s: %s", view.ID, view.Status, view.Error)
	}
	return time.Since(t0), retries, nil
}

// drainQuiesced drains a server the benchmark believes is idle; a
// hang here means leaked jobs, which the benchmark should surface.
func drainQuiesced(srv *server.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Drain(ctx)
}
