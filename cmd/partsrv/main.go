// Command partsrv is the partitioning-as-a-service daemon: it serves
// the internal/server job API over HTTP and stays up until told to
// stop.
//
//	partsrv -addr :8080 -workers 4 -queue 64 -spool /var/spool/partsrv
//
// Operational contract:
//
//   - backpressure: the job queue is bounded; past capacity, submits
//     get 429 + Retry-After instead of unbounded buffering;
//   - deadlines: every job runs under a wall-clock budget
//     (-timeout default, -max-timeout ceiling) whose expiry actually
//     stops the partitioning recursion;
//   - isolation: a panicking job fails that job, not the daemon;
//   - drain: SIGTERM/SIGINT stops intake, marks still-queued jobs
//     drained_queued, checkpoints in-flight sweeps to the spool at a
//     snapshot boundary, then shuts the HTTP listener down
//     gracefully. A restarted daemon resumes a resubmitted sweep from
//     the spool to byte-identical results.
//
// -bench runs the self-contained serving benchmark instead (an
// in-process server driven by concurrent HTTP clients) and writes the
// result JSON to -bench-json.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		workers    = flag.Int("workers", 2, "concurrent job executors")
		jobWorkers = flag.Int("job-workers", 0, "worker pool inside one job (0 = 1; results never depend on it)")
		queue      = flag.Int("queue", 16, "job queue depth; submits past it get 429")
		timeout    = flag.Duration("timeout", time.Minute, "default per-job wall-clock budget")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "ceiling on client-requested job timeouts")
		cache      = flag.Int("cache", 64, "result cache entries (LRU by spec hash)")
		spool      = flag.String("spool", "", "sweep checkpoint directory (empty = no checkpointing)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "how long a drain waits for in-flight jobs to checkpoint and stop")
		bench      = flag.Bool("bench", false, "run the serving benchmark instead of the daemon")
		benchJSON  = flag.String("bench-json", "BENCH_serve.json", "benchmark output path (with -bench)")
		benchJobs  = flag.Int("bench-jobs", 300, "jobs submitted by the benchmark (with -bench)")
	)
	flag.Parse()

	if *spool != "" {
		if err := os.MkdirAll(*spool, 0o755); err != nil {
			log.Print(err)
			return 1
		}
	}
	col := obs.New()
	opt := server.Options{
		Workers:        *workers,
		JobWorkers:     *jobWorkers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CacheEntries:   *cache,
		SpoolDir:       *spool,
		Obs:            col,
	}

	if *bench {
		if err := runBench(opt, *benchJobs, *benchJSON); err != nil {
			log.Print(err)
			return 1
		}
		return 0
	}

	srv := server.New(opt)
	httpSrv := server.NewHTTPServer(*addr, srv.Handler())
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	fmt.Printf("partsrv serving on http://%s (workers=%d queue=%d spool=%q)\n",
		ln.Addr(), *workers, *queue, *spool)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		fmt.Printf("partsrv: %s: draining (grace %s)\n", got, *drainGrace)
	case err := <-serveErr:
		log.Printf("partsrv: listener failed: %v", err)
		return 1
	}

	// Drain order matters: stop the job engine first so in-flight
	// sweeps checkpoint and queued jobs get their terminal status,
	// then close the HTTP side so clients can read those statuses
	// until the end of the grace period.
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	code := 0
	if err := srv.Drain(ctx); err != nil {
		log.Printf("partsrv: %v", err)
		code = 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("partsrv: http shutdown: %v", err)
		_ = httpSrv.Close() // grace expired; refuse to hang exit
		code = 1
	}
	a := srv.Accounting()
	fmt.Printf("partsrv: drained. accepted=%d completed=%d failed=%d canceled=%d drained=%d drained_queued=%d rejected_full=%d\n",
		a.Accepted, a.Completed, a.Failed, a.Canceled, a.Drained, a.DrainedQueued, a.RejectedFull)
	return code
}
