// Command partsrv is the partitioning-as-a-service daemon: it serves
// the internal/server job API over HTTP and stays up until told to
// stop.
//
//	partsrv -addr :8080 -workers 4 -queue 64 -spool /var/spool/partsrv
//
// Operational contract:
//
//   - backpressure: the job queue is bounded; past capacity, submits
//     get 429 + Retry-After instead of unbounded buffering;
//   - deadlines: every job runs under a wall-clock budget
//     (-timeout default, -max-timeout ceiling) whose expiry actually
//     stops the partitioning recursion;
//   - isolation: a panicking job fails that job, not the daemon;
//   - drain: SIGTERM/SIGINT stops intake, marks still-queued jobs
//     drained_queued, checkpoints in-flight sweeps to the spool at a
//     snapshot boundary, then shuts the HTTP listener down
//     gracefully. A restarted daemon resumes a resubmitted sweep from
//     the spool to byte-identical results;
//   - observability: structured JSON logs on stderr (one line per
//     request and per job lifecycle event), GET /metrics?format=prom
//     for Prometheus scrapes, per-job traces on
//     GET /api/v1/jobs/{id}/trace (ring sized by -trace-ring), a
//     flight recorder on GET /debug/events, and rolling-window
//     latency/SLO accounting (-slo, -slo-window) surfaced in /metrics
//     and /healthz. SIGQUIT dumps the flight recorder to stderr and
//     keeps serving.
//
// -bench runs the self-contained serving benchmark instead (an
// in-process server driven by concurrent HTTP clients) and writes the
// result JSON to -bench-json.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		workers    = flag.Int("workers", 2, "concurrent job executors")
		jobWorkers = flag.Int("job-workers", 0, "worker pool inside one job (0 = 1; results never depend on it)")
		queue      = flag.Int("queue", 16, "job queue depth; submits past it get 429")
		timeout    = flag.Duration("timeout", time.Minute, "default per-job wall-clock budget")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "ceiling on client-requested job timeouts")
		cache      = flag.Int("cache", 64, "result cache entries (LRU by spec hash)")
		spool      = flag.String("spool", "", "sweep checkpoint directory (empty = no checkpointing)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "how long a drain waits for in-flight jobs to checkpoint and stop")
		bench      = flag.Bool("bench", false, "run the serving benchmark instead of the daemon")
		benchJSON  = flag.String("bench-json", "BENCH_serve.json", "benchmark output path (with -bench)")
		benchJobs  = flag.Int("bench-jobs", 300, "jobs submitted by the benchmark (with -bench)")
		traceRing  = flag.Int("trace-ring", 64, "completed-job traces retained for GET /api/v1/jobs/{id}/trace (0 = off)")
		events     = flag.Int("events", 256, "flight-recorder ring capacity (GET /debug/events)")
		slo        = flag.Duration("slo", 0, "per-job wall-clock latency objective; 0 disables SLO violation accounting")
		sloWindow  = flag.Duration("slo-window", time.Minute, "rolling window for the p50/p99 and violation figures in /metrics and /healthz")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, nil)
	if *spool != "" {
		if err := os.MkdirAll(*spool, 0o755); err != nil {
			logger.Error("spool setup failed", "err", err)
			return 1
		}
	}
	col := obs.New()
	opt := server.Options{
		Workers:        *workers,
		JobWorkers:     *jobWorkers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CacheEntries:   *cache,
		SpoolDir:       *spool,
		Obs:            col,
		Log:            logger,
		TraceRing:      *traceRing,
		FlightEvents:   *events,
		FlightDump:     os.Stderr,
		WindowSlots:    6,
		WindowSlot:     *sloWindow / 6,
		SLOTarget:      *slo,
	}

	if *bench {
		// The benchmark keeps the logging path hot but discards the
		// lines: stderr stays readable for the bench summary.
		opt.Log = obs.NewLogger(io.Discard, nil)
		if err := runBench(opt, *benchJobs, *benchJSON); err != nil {
			logger.Error("bench failed", "err", err)
			return 1
		}
		return 0
	}

	srv := server.New(opt)
	httpSrv := server.NewHTTPServer(*addr, srv.Handler())
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	fmt.Printf("partsrv serving on http://%s (workers=%d queue=%d spool=%q)\n",
		ln.Addr(), *workers, *queue, *spool)
	logger.Info("serving", "addr", ln.Addr().String(), "workers", *workers,
		"queue", *queue, "spool", *spool, "trace_ring", *traceRing,
		"slo", slo.String(), "slo_window", sloWindow.String())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT, syscall.SIGQUIT)
	var cause os.Signal
signals:
	for {
		select {
		case got := <-sig:
			if got == syscall.SIGQUIT {
				// The operator's "what just happened": dump the flight
				// recorder to stderr and keep serving.
				srv.Flight().WriteText(os.Stderr)
				continue
			}
			cause = got
			break signals
		case err := <-serveErr:
			logger.Error("listener failed", "err", err)
			return 1
		}
	}
	fmt.Printf("partsrv: %s: draining (grace %s)\n", cause, *drainGrace)
	logger.Info("draining", "signal", cause.String(), "grace", drainGrace.String())

	// Drain order matters: stop the job engine first so in-flight
	// sweeps checkpoint and queued jobs get their terminal status,
	// then close the HTTP side so clients can read those statuses
	// until the end of the grace period.
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	code := 0
	if err := srv.Drain(ctx); err != nil {
		logger.Error("drain failed", "err", err)
		code = 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("http shutdown failed", "err", err)
		_ = httpSrv.Close() // grace expired; refuse to hang exit
		code = 1
	}
	a := srv.Accounting()
	fmt.Printf("partsrv: drained. accepted=%d completed=%d failed=%d canceled=%d drained=%d drained_queued=%d rejected_full=%d\n",
		a.Accepted, a.Completed, a.Failed, a.Canceled, a.Drained, a.DrainedQueued, a.RejectedFull)
	return code
}
