// Command treedemo reproduces the paper's illustrative figures:
//
//	-fig 1: a 3-way partitioning of 45 contact points (Figure 1) —
//	        induces the decision tree, prints it, and renders the
//	        axis-parallel rectangles each subdomain decomposes into.
//	-fig 2: a 2-way partitioning of 28 points along a diagonal
//	        boundary (Figure 2) — shows the tree-size blowup that
//	        motivates the decision-tree-friendly reshaping step.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/dtree"
	"repro/internal/geom"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("treedemo: ")
	fig := flag.Int("fig", 1, "figure to reproduce (1 or 2)")
	svgPath := flag.String("svg", "", "also write the figure as an SVG file")
	flag.Parse()
	switch *fig {
	case 1:
		figure1(*svgPath)
	case 2:
		figure2(*svgPath)
	default:
		log.Fatalf("unknown figure %d", *fig)
	}
}

// writeSVG renders points + tree leaf rectangles to path.
func writeSVG(path string, pts []geom.Point, labels []int32, tree *dtree.Tree) {
	regions := tree.LeafRegions(geom.BoxOf(pts))
	var leafBoxes []geom.AABB
	var leafParts []int32
	for i := range tree.Nodes {
		if tree.Nodes[i].IsLeaf() {
			leafBoxes = append(leafBoxes, regions[i])
			leafParts = append(leafParts, tree.Nodes[i].Part)
		}
	}
	c := viz.PartitionedPoints(pts, labels, leafBoxes, leafParts, 640, 480)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// figure1 lays out 45 contact points in three clustered groups (the
// paper's triangle/circle/square partitions), induces the descriptor
// tree, and renders the resulting space partition.
func figure1(svgPath string) {
	r := rand.New(rand.NewSource(7))
	var pts []geom.Point
	var labels []int32
	// Three clusters with axis-parallel-ish boundaries: partition 0
	// bottom-left, partition 1 top, partition 2 bottom-right.
	for i := 0; i < 15; i++ {
		pts = append(pts, geom.P2(r.Float64()*4.2, r.Float64()*4.2))
		labels = append(labels, 0)
	}
	for i := 0; i < 15; i++ {
		pts = append(pts, geom.P2(r.Float64()*10, 5.2+r.Float64()*4.5))
		labels = append(labels, 1)
	}
	for i := 0; i < 15; i++ {
		pts = append(pts, geom.P2(5.2+r.Float64()*4.5, r.Float64()*4.2))
		labels = append(labels, 2)
	}
	tree, err := dtree.Build(pts, labels, 2, 3, dtree.Options{Mode: dtree.Descriptor})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 1: 3-way partitioning of %d contact points\n", len(pts))
	fmt.Printf("decision tree: %d nodes, %d leaves, height %d\n\n", tree.NumNodes(), tree.NumLeaves(), tree.Height())
	render(pts, labels, tree, 3)
	if svgPath != "" {
		writeSVG(svgPath, pts, labels, tree)
	}
	fmt.Println("\ndecision tree (yes = left branch):")
	printTree(tree, 0, "")
	fmt.Println("\nsubdomain descriptors (leaf rectangles per partition):")
	regions := tree.LeafRegions(geom.BoxOf(pts))
	name := 'A'
	for i := range tree.Nodes {
		if tree.Nodes[i].IsLeaf() {
			fmt.Printf("  (%c) partition %d: %v\n", name, tree.Nodes[i].Part, regions[i])
			name++
		}
	}
}

// figure2 compares the tree induced on an axis-parallel 2-way split
// with the tree induced on the same points split along the diagonal.
func figure2(svgPath string) {
	r := rand.New(rand.NewSource(11))
	n := 28
	pts := make([]geom.Point, n)
	diag := make([]int32, n)
	axis := make([]int32, n)
	for i := range pts {
		x, y := r.Float64()*10, r.Float64()*10
		pts[i] = geom.P2(x, y)
		if y > x {
			diag[i] = 1
		}
		if y > 5 {
			axis[i] = 1
		}
	}
	aTree, err := dtree.Build(pts, axis, 2, 2, dtree.Options{Mode: dtree.Descriptor})
	if err != nil {
		log.Fatal(err)
	}
	dTree, err := dtree.Build(pts, diag, 2, 2, dtree.Options{Mode: dtree.Descriptor})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 2: 2-way partitioning of %d contact points\n\n", n)
	fmt.Printf("axis-parallel boundary: tree has %d nodes (%d leaves)\n", aTree.NumNodes(), aTree.NumLeaves())
	fmt.Printf("diagonal boundary:      tree has %d nodes (%d leaves)\n\n", dTree.NumNodes(), dTree.NumLeaves())
	fmt.Println("diagonal-boundary space partition (fine-grained staircase):")
	render(pts, diag, dTree, 2)
	if svgPath != "" {
		writeSVG(svgPath, pts, diag, dTree)
	}
	fmt.Println("\nThis mismatch between subdomain geometry and axis-parallel")
	fmt.Println("hyperplanes is why MCML+DT reshapes the partition (Section 4.2).")
}

// render draws the points (digits = partition) and the tree's leaf
// rectangle boundaries ('|', '-') on an ASCII canvas.
func render(pts []geom.Point, labels []int32, tree *dtree.Tree, k int) {
	const w, h = 72, 28
	box := geom.BoxOf(pts)
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = make([]byte, w)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	toCell := func(p geom.Point) (int, int) {
		c := int((p[0] - box.Min[0]) / (box.Max[0] - box.Min[0]) * (w - 1))
		r := int((box.Max[1] - p[1]) / (box.Max[1] - box.Min[1]) * (h - 1))
		return r, c
	}
	// Rectangle edges.
	regions := tree.LeafRegions(box)
	for i := range tree.Nodes {
		if !tree.Nodes[i].IsLeaf() {
			continue
		}
		reg := regions[i]
		r0, c0 := toCell(geom.P2(reg.Min[0], reg.Max[1]))
		r1, c1 := toCell(geom.P2(reg.Max[0], reg.Min[1]))
		for c := c0; c <= c1; c++ {
			grid[r0][c], grid[r1][c] = '-', '-'
		}
		for r := r0; r <= r1; r++ {
			grid[r][c0], grid[r][c1] = '|', '|'
		}
	}
	// Points on top.
	for i, p := range pts {
		r, c := toCell(p)
		grid[r][c] = byte('0' + labels[i]%10)
	}
	for _, row := range grid {
		fmt.Printf("  %s\n", row)
	}
}

// printTree prints the decision tree with indentation.
func printTree(t *dtree.Tree, idx int32, indent string) {
	n := &t.Nodes[idx]
	if n.IsLeaf() {
		fmt.Printf("%sleaf: partition %d (%d points)\n", indent, n.Part, n.Hi-n.Lo)
		return
	}
	dim := "x"
	if n.SplitDim == 1 {
		dim = "y"
	} else if n.SplitDim == 2 {
		dim = "z"
	}
	fmt.Printf("%s%s <= %.2f ?\n", indent, dim, n.Cut)
	printTree(t, n.Left, indent+"  ")
	printTree(t, n.Right, indent+"  ")
}
