package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart does: scene -> decompose -> stats -> experiment -> table.
func TestFacadeEndToEnd(t *testing.T) {
	scene := repro.DefaultScene()
	scene.PlateNX, scene.PlateNY, scene.PlateNZ = 10, 10, 2
	scene.ProjN, scene.ProjLen = 2, 6
	scene.ContactRadius = 3
	m, info, err := repro.ProjectileScene(scene)
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || m.NumNodes() == 0 {
		t.Fatal("scene generation failed")
	}

	d, err := repro.Decompose(m, repro.DecomposeConfig{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.FEComm <= 0 || s.NTNodes <= 0 {
		t.Fatalf("stats: %+v", s)
	}
	if nr := d.NRemote(m, 0.5); nr < 0 {
		t.Fatalf("NRemote = %d", nr)
	}

	simCfg := repro.DefaultSimConfig()
	simCfg.Scene = scene
	simCfg.Steps, simCfg.Snapshots = 20, 2
	snaps, err := repro.RunSimulation(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunExperiment(snaps, repro.ExperimentConfig{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	repro.WriteTable(&buf, []*repro.ExperimentResult{res})
	repro.WriteDerived(&buf, []*repro.ExperimentResult{res})
	out := buf.String()
	if !strings.Contains(out, "4-way") || !strings.Contains(out, "MCML+DT") {
		t.Errorf("table output: %s", out)
	}
}

func TestFacadePaperProfileShape(t *testing.T) {
	cfg := repro.PaperSimConfig()
	if cfg.Snapshots != 100 {
		t.Errorf("paper profile snapshots = %d", cfg.Snapshots)
	}
	if !cfg.Scene.FullFaces {
		t.Error("paper profile must designate full plate faces")
	}
	if cfg.Scene.Refine < 2 {
		t.Errorf("paper profile refine = %d", cfg.Scene.Refine)
	}
}

func TestFacadeParallelIteration(t *testing.T) {
	scene := repro.DefaultScene()
	scene.PlateNX, scene.PlateNY, scene.PlateNZ = 10, 10, 2
	scene.ProjN, scene.ProjLen = 2, 6
	scene.ContactRadius = 3
	simCfg := repro.DefaultSimConfig()
	simCfg.Scene = scene
	simCfg.Steps, simCfg.Snapshots = 30, 2
	snaps, err := repro.RunSimulation(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := snaps[len(snaps)-1].Mesh
	d, err := repro.Decompose(m, repro.DecomposeConfig{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := repro.RunParallelIteration(m, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	serial := repro.DetectContacts(m, 0.5)
	if len(st.Pairs) != len(serial) {
		t.Fatalf("parallel %d pairs vs serial %d", len(st.Pairs), len(serial))
	}
}
