package repro_test

import (
	"fmt"

	"repro"
)

// Example decomposes a small impact scene with MCML+DT and reports the
// balance of the two computational phases.
func Example() {
	scene := repro.DefaultScene()
	scene.PlateNX, scene.PlateNY, scene.PlateNZ = 12, 12, 2
	scene.ProjN, scene.ProjLen = 2, 6
	scene.ContactRadius = 4
	m, _, err := repro.ProjectileScene(scene)
	if err != nil {
		panic(err)
	}
	d, err := repro.Decompose(m, repro.DecomposeConfig{K: 4, Seed: 42})
	if err != nil {
		panic(err)
	}
	s := d.Stats()
	fmt.Printf("partitions: %d\n", d.Cfg.K)
	fmt.Printf("FE-phase imbalance under 1.10: %v\n", s.Imbalance[0] < 1.10)
	fmt.Printf("contact-phase imbalance under 1.30: %v\n", s.Imbalance[1] < 1.30)
	fmt.Printf("descriptor leaves are pure: %v\n", s.NTNodes == 2*d.Descriptor.NumLeaves()-1)
	// Output:
	// partitions: 4
	// FE-phase imbalance under 1.10: true
	// contact-phase imbalance under 1.30: true
	// descriptor leaves are pure: true
}

// ExampleRunExperiment reproduces one row of the paper's Table 1 at a
// reduced scale and checks the headline relation: the decoupled
// ML+RCB baseline pays more total pre-search communication
// (FEComm + 2*M2MComm + UpdComm) than MCML+DT's FEComm.
func ExampleRunExperiment() {
	cfg := repro.DefaultSimConfig()
	cfg.Scene.PlateNX, cfg.Scene.PlateNY, cfg.Scene.PlateNZ = 12, 12, 2
	cfg.Scene.ProjN, cfg.Scene.ProjLen = 2, 6
	cfg.Scene.ContactRadius = 4
	cfg.Steps, cfg.Snapshots = 40, 4
	snaps, err := repro.RunSimulation(cfg)
	if err != nil {
		panic(err)
	}
	res, err := repro.RunExperiment(snaps, repro.ExperimentConfig{K: 8, Seed: 1})
	if err != nil {
		panic(err)
	}
	mlTotal := res.Avg.MLFEComm + 2*res.Avg.MLM2MComm + res.Avg.MLUpdComm
	fmt.Printf("ML+RCB pays more pre-search communication: %v\n", mlTotal > res.Avg.MCFEComm)
	// Output:
	// ML+RCB pays more pre-search communication: true
}
