// Crashsim: run a full projectile-penetration sequence with the hybrid
// update strategy of Section 4.3 — the mesh partition is recomputed
// every R snapshots (so work stays balanced as elements erode) and the
// geometric descriptors are refreshed by re-inducing the contact-point
// decision tree at every snapshot.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)

	cfg := sim.DefaultConfig()
	cfg.Snapshots = 20
	cfg.Steps = 200
	snaps, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d snapshots (%d nodes at t=0)\n\n", len(snaps), snaps[0].Mesh.NumNodes())

	const (
		k          = 16
		repartEach = 5 // hybrid: full repartition every 5 snapshots
	)
	coreCfg := core.Config{K: k, Seed: 7, Parallel: true}

	var byID map[int64]int32
	fmt.Printf("%4s %10s %9s %9s %8s %8s   %s\n",
		"snap", "FEComm", "NTNodes", "NRemote", "imbFE", "imbC", "action")
	for t, sn := range snaps {
		m := sn.Mesh

		if t%repartEach == 0 {
			// Full MCML+DT repartition (multi-constraint partition +
			// boundary reshaping + fresh descriptors).
			d, err := core.Decompose(m, coreCfg)
			if err != nil {
				log.Fatal(err)
			}
			byID = make(map[int64]int32, len(sn.NodeID))
			for v, id := range sn.NodeID {
				byID[id] = d.Labels[v]
			}
		}

		// Carry the partition to this snapshot via persistent node ids
		// and refresh only the descriptor tree (the cheap update).
		labels := make([]int32, m.NumNodes())
		for v, id := range sn.NodeID {
			labels[v] = byID[id]
		}
		desc, _, contactPts, contactLabels, err := core.DescriptorFor(m, labels, coreCfg)
		if err != nil {
			log.Fatal(err)
		}

		g := m.NodalGraph(mesh.NodalGraphOptions{NCon: 2})
		imb := metrics.LoadImbalance(g, labels, k)
		nr := core.NRemote(m, labels, desc, contactPts, contactLabels, 0.5, true)
		action := "descriptor update"
		if t%repartEach == 0 {
			action = "FULL REPARTITION"
		}
		fmt.Printf("%4d %10d %9d %9d %8.3f %8.3f   %s\n",
			t, metrics.CommVolume(g, labels, k), desc.NumNodes(), nr, imb[0], imb[1], action)
	}

	fmt.Println("\nNote how load imbalance drifts between repartitions as elements")
	fmt.Println("erode, and snaps back each time the hybrid strategy repartitions.")
}
