// Diagonal: the Figure 2 phenomenon, end to end. A partition whose
// boundary runs diagonally through the contact points forces the
// decision tree into a fine staircase of rectangles; the MCML+DT
// reshaping step (guidance tree + majority reassignment + G'
// refinement) straightens the boundary and shrinks the tree, at a
// small cost in edge cut.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/meshgen"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)

	// A 2D quad sheet whose whole bottom half is a contact surface,
	// so the contact points form a dense 2D region.
	const n = 48
	m, err := meshgen.StructuredQuadGrid(meshgen.Grid2DSpec{Nx: n, Ny: n, H: geom.P2(1, 1)})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range m.BoundaryFacets() {
		if m.Coords[f.Nodes[0]][1] == 0 && m.Coords[f.Nodes[1]][1] == 0 {
			m.Surface = append(m.Surface, f)
		}
	}
	// Designate every element edge in the bottom half as surface too,
	// giving a thick band of contact points.
	for e := 0; e < m.NumElems(); e++ {
		nodes := m.ElemNodes(e)
		cy := (m.Coords[nodes[0]][1] + m.Coords[nodes[2]][1]) / 2
		if cy < n/3 {
			m.Surface = append(m.Surface, mesh.SurfaceElem{Nodes: []int32{nodes[0], nodes[1]}, Elem: int32(e)})
		}
	}
	fmt.Printf("mesh: %d nodes, %d contact nodes\n\n", m.NumNodes(), len(m.ContactNodes()))

	// Hand-build a deliberately diagonal 2-way partition.
	diagonal := make([]int32, m.NumNodes())
	for v := range diagonal {
		p := m.Coords[v]
		if p[1] > p[0] {
			diagonal[v] = 1
		}
	}
	g := m.NodalGraph(mesh.DefaultNodalOptions())
	contacts := m.ContactNodes()
	descFor := func(labels []int32) *dtree.Tree {
		pts := make([]geom.Point, len(contacts))
		cl := make([]int32, len(contacts))
		for i, c := range contacts {
			pts[i] = m.Coords[c]
			cl[i] = labels[c]
		}
		t, err := dtree.Build(pts, cl, 2, 2, dtree.Options{Mode: dtree.Descriptor})
		if err != nil {
			log.Fatal(err)
		}
		return t
	}

	dt := descFor(diagonal)
	fmt.Printf("hand-made diagonal partition:\n")
	fmt.Printf("  edge cut %5d, comm volume %5d, descriptor tree %4d nodes\n\n",
		metrics.EdgeCut(g, diagonal), metrics.CommVolume(g, diagonal, 2), dt.NumNodes())

	// Now let the full MCML+DT pipeline partition the same mesh: the
	// reshaping step produces axis-parallel boundaries and a small tree.
	d, err := core.Decompose(m, core.Config{K: 2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	s := d.Stats()
	fmt.Printf("MCML+DT partition (with reshaping):\n")
	fmt.Printf("  edge cut %5d, comm volume %5d, descriptor tree %4d nodes\n\n",
		s.EdgeCut, s.FEComm, s.NTNodes)

	// And the ablation: same pipeline, reshaping disabled.
	raw, err := core.Decompose(m, core.Config{K: 2, Seed: 3, SkipReshape: true})
	if err != nil {
		log.Fatal(err)
	}
	rs := raw.Stats()
	fmt.Printf("MCML+DT without reshaping (ablation):\n")
	fmt.Printf("  edge cut %5d, comm volume %5d, descriptor tree %4d nodes\n\n",
		rs.EdgeCut, rs.FEComm, rs.NTNodes)

	fmt.Printf("The diagonal boundary needs a %dx larger tree than the reshaped\n",
		dt.NumNodes()/max(1, s.NTNodes))
	fmt.Println("partition — the cost the paper's Figure 2 illustrates.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
