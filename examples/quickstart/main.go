// Quickstart: generate a small impact scene, decompose it with
// MCML+DT, and run a global contact search — the minimal end-to-end
// use of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/meshgen"
)

func main() {
	log.SetFlags(0)

	// 1. Build a mesh. Any mesh.Mesh with a designated contact surface
	//    works; here we use the built-in projectile/two-plate scene at
	//    a small resolution.
	scene := meshgen.DefaultScene()
	scene.PlateNX, scene.PlateNY, scene.PlateNZ = 16, 16, 3
	scene.ProjN, scene.ProjLen = 3, 8
	scene.ContactRadius = 6
	m, _, err := meshgen.ProjectileScene(scene)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d nodes, %d elements, %d contact surfaces, %d contact nodes\n",
		m.NumNodes(), m.NumElems(), len(m.Surface), len(m.ContactNodes()))

	// 2. Decompose for 8 processors. Decompose runs the whole MCML+DT
	//    pipeline: two-constraint partitioning, decision-tree-guided
	//    boundary reshaping, and descriptor-tree induction.
	d, err := core.Decompose(m, core.Config{K: 8, Seed: 42, Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	s := d.Stats()
	fmt.Printf("\nMCML+DT 8-way decomposition:\n")
	fmt.Printf("  communication volume (FEComm): %d\n", s.FEComm)
	fmt.Printf("  edge cut:                      %d\n", s.EdgeCut)
	fmt.Printf("  load imbalance:                FE %.3f, contact %.3f\n", s.Imbalance[0], s.Imbalance[1])
	fmt.Printf("  descriptor tree:               %d nodes, height %d\n", s.NTNodes, s.TreeHeight)

	// 3. Global contact search: for each surface element, find the
	//    partitions it must be shipped to.
	owners := contact.SurfaceOwners(m, d.Labels)
	boxes := contact.SurfaceBoxes(m, 0.5)
	filter := &contact.TreeFilter{
		Tree:       d.Descriptor,
		Labels:     d.ContactLabels,
		TightBoxes: d.Descriptor.PointBoxes(d.ContactPoints),
	}
	sets := contact.CandidateSets(boxes, owners, filter)
	remote := 0
	for _, set := range sets {
		remote += len(set)
	}
	fmt.Printf("\nglobal search: %d of %d surface elements stay local; %d remote sends (NRemote)\n",
		countEmpty(sets), len(sets), remote)

	// A concrete example: where does surface element 0 go?
	fmt.Printf("surface element 0 (owner partition %d) is sent to partitions %v\n",
		owners[0], sets[0])
}

func countEmpty(sets [][]int32) int {
	n := 0
	for _, s := range sets {
		if len(s) == 0 {
			n++
		}
	}
	return n
}
