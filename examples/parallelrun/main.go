// Parallelrun: execute one iteration of the parallel contact/impact
// computation on k message-passing workers, showing the communication
// the MCML+DT decomposition actually generates — ghost-node exchange
// in the FE phase, decision-tree broadcast, and surface-element
// shipping in the global search phase — verifying the detected
// contacts against serial detection, and printing the per-phase
// timing/counter breakdown the observability layer records.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)

	// Simulate to mid-penetration so real cross-body contacts exist.
	cfg := sim.DefaultConfig()
	cfg.Steps = 200
	cfg.Snapshots = 2
	snaps, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m := snaps[0].Mesh
	fmt.Printf("mesh: %d nodes, %d surface elements\n\n", m.NumNodes(), len(m.Surface))

	const tol = 0.5
	serial := contact.DetectContacts(m, tol)
	fmt.Printf("serial contact detection: %d pairs\n\n", len(serial))

	col := obs.New()
	for _, k := range []int{4, 16} {
		d, err := core.Decompose(m, core.Config{K: k, Seed: 1, Parallel: true, Obs: col})
		if err != nil {
			log.Fatal(err)
		}
		st, err := engine.RunObserved(m, d, tol, col)
		if err != nil {
			log.Fatal(err)
		}
		match := "MATCHES serial"
		if len(st.Pairs) != len(serial) {
			match = fmt.Sprintf("MISMATCH (serial %d)", len(serial))
		}
		fmt.Printf("k=%d workers:\n", k)
		fmt.Printf("  descriptor tree broadcast: %d bytes to each of %d ranks\n", st.TreeBytes, k)
		fmt.Printf("  FE phase ghost units:      %d\n", st.GhostUnits)
		fmt.Printf("  surface elements shipped:  %d\n", st.ElemsShipped)
		fmt.Printf("  contacts detected:         %d  (%s)\n", len(st.Pairs), match)
		var maxSent int64
		for _, ws := range st.PerWorker {
			if ws.ElemsSent > maxSent {
				maxSent = ws.ElemsSent
			}
		}
		fmt.Printf("  busiest rank shipped:      %d elements\n\n", maxSent)
	}

	fmt.Println("per-phase breakdown (both runs; worker phases count once per rank):")
	col.Report().WriteTable(os.Stdout)
}
