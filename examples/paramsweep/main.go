// Paramsweep: the Section 4.2 sensitivity study. The guidance-tree
// thresholds max_p and max_i control the granularity of the region
// graph G': small values give the post-refinement step fine-grained
// regions (easy to balance, good cut) but many regions per subdomain
// (bigger descriptor trees); large values give few chunky regions that
// the balancer cannot move. The paper recommends
//
//	n/k^1.5 <= max_p <= n/k   and   n/k^2.5 <= max_i <= n/k^2.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)

	cfg := sim.DefaultConfig()
	cfg.Snapshots = 1
	cfg.Steps = 4
	snaps, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m := snaps[0].Mesh

	const k = 16
	n := float64(m.NumNodes())
	kf := float64(k)
	loP, hiP := n/math.Pow(kf, 1.5), n/kf
	loI, hiI := n/math.Pow(kf, 2.5), n/(kf*kf)
	fmt.Printf("n = %d, k = %d\n", m.NumNodes(), k)
	fmt.Printf("recommended: max_p in [%.0f, %.0f], max_i in [%.0f, %.0f]\n\n", loP, hiP, loI, hiI)

	maxPs := []int{int(loP / 4), int(loP), int(math.Sqrt(loP * hiP)), int(hiP), int(hiP * 4)}
	maxIs := []int{2, int(math.Sqrt(loI*hiI)) + 2, int(hiI) + 2, int(hiI * 8)}

	fmt.Printf("%8s %8s | %9s %9s %8s %8s %9s\n",
		"max_p", "max_i", "FEComm", "NTNodes", "imbFE", "imbC", "in range")
	for _, mp := range maxPs {
		for _, mi := range maxIs {
			if mi > mp {
				continue
			}
			d, err := core.Decompose(m, core.Config{
				K: k, Seed: 5, MaxPure: mp, MaxImpure: mi, Parallel: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			s := d.Stats()
			in := " "
			if float64(mp) >= loP && float64(mp) <= hiP && float64(mi) >= loI && float64(mi) <= hiI {
				in = "*"
			}
			fmt.Printf("%8d %8d | %9d %9d %8.3f %8.3f %6s\n",
				mp, mi, s.FEComm, s.NTNodes, s.Imbalance[0], s.Imbalance[1], in)
		}
	}
	fmt.Println("\n(*) = both thresholds inside the paper's recommended ranges.")
	fmt.Println("Expect: tiny max_p -> big NTNodes; huge max_p/max_i -> imbalance")
	fmt.Println("the post-refinement step cannot repair.")
}
