// Command tracecheck validates Chrome trace-event JSON files as
// produced by contactbench -trace: well-formed JSON, non-negative and
// per-lane monotonic timestamps, and strictly balanced B/E span pairs
// with matching names. It can additionally require that named spans
// or events are present, which is how `make trace` asserts that a
// trace covers every layer of the pipeline (harness snapshots, engine
// rank phases, transport exchanges, bisection tasks).
//
// Usage:
//
//	tracecheck [-require name,name,...] trace.json [more.json...]
//
// Exit status 0 when every file validates and every required name
// appears (in every file); 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	require := flag.String("require", "", "comma-separated span/event names that must appear in each trace")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Print("usage: tracecheck [-require name,...] trace.json [more.json...]")
		os.Exit(2)
	}
	var required []string
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name != "" {
			required = append(required, name)
		}
	}

	failed := false
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Print(err)
			failed = true
			continue
		}
		sum, err := obs.ValidateTrace(f)
		_ = f.Close() // read-only; a close error after validation carries no data
		if err != nil {
			log.Printf("%s: INVALID: %v", path, err)
			failed = true
			continue
		}
		var missing []string
		for _, name := range required {
			if sum.Names[name] == 0 {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			log.Printf("%s: valid but missing required span(s): %s", path, strings.Join(missing, ", "))
			failed = true
			continue
		}
		fmt.Printf("%s: OK — %d events, %d spans on %d lanes\n", path, sum.Events, sum.Spans, sum.Tracks)
	}
	if failed {
		os.Exit(1)
	}
}
