// Command promcheck validates Prometheus text exposition as served
// from GET /metrics?format=prom: parseable sample lines, legal metric
// and label names, TYPE discipline (one TYPE per family, declared
// before its samples), non-negative counters, and — the property the
// obs histogram renderer must uphold — histogram families with
// strictly increasing le bounds, non-decreasing cumulative bucket
// counts, and a final +Inf bucket equal to _count. It can
// additionally require that named families are present, which is how
// `make obs` asserts that a scrape covers the serving metrics.
//
// Usage:
//
//	promcheck [-require name,name,...] metrics.prom [more.prom...]
//
// Exit status 0 when every file validates and every required family
// appears (in every file); 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("promcheck: ")
	require := flag.String("require", "", "comma-separated metric family names that must appear in each file")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Print("usage: promcheck [-require name,...] metrics.prom [more.prom...]")
		os.Exit(2)
	}
	var required []string
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name != "" {
			required = append(required, name)
		}
	}

	failed := false
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Print(err)
			failed = true
			continue
		}
		sum, err := obs.ValidateProm(f)
		_ = f.Close() // read-only; a close error after validation carries no data
		if err != nil {
			log.Printf("%s: INVALID: %v", path, err)
			failed = true
			continue
		}
		var missing []string
		for _, name := range required {
			if sum.Names[name] == 0 {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			log.Printf("%s: valid but missing required famil(ies): %s", path, strings.Join(missing, ", "))
			failed = true
			continue
		}
		fmt.Printf("%s: OK — %d samples across %d families (%d histograms)\n",
			path, sum.Lines, sum.Families, sum.Histograms)
	}
	if failed {
		os.Exit(1)
	}
}
