package main

import (
	"strings"
	"testing"
)

// TestRunExitCodes pins the CLI contract: 0 clean, 1 diagnostics,
// 2 load or usage failure. The dirty case lints a golden fixture
// directly — explicit testdata paths are not skipped, only recursive
// walks prune them — so the test needs no scratch package.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean tree", []string{"./internal/mesh"}, 0},
		{"diagnostics found", []string{"./internal/lint/testdata/src/errdrop"}, 1},
		{"fixture with subset", []string{"-analyzers", "lockheld", "./internal/lint/testdata/src/lockheld"}, 1},
		{"count only still fails", []string{"-count", "./internal/lint/testdata/src/errdrop"}, 1},
		{"bad pattern", []string{"./does/not/exist/..."}, 2},
		{"unknown analyzer", []string{"-analyzers", "nosuch"}, 2},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"list", []string{"-list"}, 0},
		{"fixtures", []string{"-fixtures"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestRunCountOutput checks -count prints a bare integer matching the
// diagnostic total for a fixture with a known count.
func TestRunCountOutput(t *testing.T) {
	var stdout, stderr strings.Builder
	run([]string{"-count", "-analyzers", "goroleak", "./internal/lint/testdata/src/goroleak"}, &stdout, &stderr)
	if got := strings.TrimSpace(stdout.String()); got != "2" {
		t.Errorf("-count printed %q, want \"2\"", got)
	}
}

// TestRunFixturesListing checks every analyzer (plus the directives
// suite) reports a present fixture directory.
func TestRunFixturesListing(t *testing.T) {
	var stdout, stderr strings.Builder
	if got := run([]string{"-fixtures"}, &stdout, &stderr); got != 0 {
		t.Fatalf("-fixtures exited %d\n%s", got, stdout.String())
	}
	out := stdout.String()
	if strings.Contains(out, "MISSING") {
		t.Errorf("-fixtures reports a missing directory:\n%s", out)
	}
	for _, name := range []string{"directives", "lockheld", "goroleak", "ctxflow", "slogkey", "metricname"} {
		if !strings.Contains(out, name) {
			t.Errorf("-fixtures output lacks %q:\n%s", name, out)
		}
	}
}

// TestRunStats checks -stats emits one stderr row per analyzer with
// its diagnostic count.
func TestRunStats(t *testing.T) {
	var stdout, stderr strings.Builder
	run([]string{"-stats", "-analyzers", "slogkey", "./internal/lint/testdata/src/slogkey"}, &stdout, &stderr)
	if !strings.Contains(stderr.String(), "slogkey") || !strings.Contains(stderr.String(), "diagnostics") {
		t.Errorf("-stats stderr lacks the analyzer table:\n%s", stderr.String())
	}
}
