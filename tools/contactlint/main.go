// Command contactlint runs the repo's static-analysis suite
// (internal/lint): project-specific analyzers that turn the
// determinism and observability contracts into build-breaking
// diagnostics. It is stdlib-only — packages are loaded with go/parser
// and type-checked with go/types, no golang.org/x/tools.
//
// Usage:
//
//	go run ./tools/contactlint [-json] [-analyzers a,b] [-list] [packages...]
//
// With no package arguments it lints the default gate:
// ./internal/... ./cmd/... ./tools/... . Patterns follow the go
// tool's forms ("./dir", "./dir/...").
//
// Exit status: 0 when the tree is clean, 1 when any diagnostic is
// reported, 2 when packages fail to load or type-check. Output is
// sorted by file/line/column/analyzer/message, so two runs over the
// same tree are byte-identical; -json emits the same order as a JSON
// array for CI and tooling.
//
// Suppress a deliberate violation at its line (or the line above)
// with:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	sel := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *sel != "" {
		byName := make(map[string]*lint.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*sel, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "contactlint: unknown analyzer %q (run with -list to see the set)\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/...", "./tools/..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "contactlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "contactlint:", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "contactlint:", err)
			os.Exit(2)
		}
	} else {
		lint.WriteText(os.Stdout, diags)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// moduleRoot finds the enclosing module by walking up from the
// working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
