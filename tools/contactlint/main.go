// Command contactlint runs the repo's static-analysis suite
// (internal/lint): project-specific analyzers that turn the
// determinism, observability, and serving contracts into
// build-breaking diagnostics. It is stdlib-only — packages are loaded
// with go/parser and type-checked with go/types, no golang.org/x/tools.
//
// Usage:
//
//	go run ./tools/contactlint [-json] [-analyzers a,b] [-list] [-fixtures] [-count] [-stats] [packages...]
//
// With no package arguments it lints the default gate:
// ./internal/... ./cmd/... ./tools/... ./examples/... . Patterns
// follow the go tool's forms ("./dir", "./dir/...").
//
// Exit status: 0 when the tree is clean, 1 when any diagnostic is
// reported, 2 when packages fail to load or type-check (or the flags
// are invalid). Output is sorted by
// file/line/column/analyzer/message, so two runs over the same tree
// are byte-identical; -json emits the same order as a JSON array for
// CI and tooling. -count prints only the diagnostic total; -stats
// adds a per-analyzer count and wall-time table on stderr.
//
// Suppress a deliberate violation at its line (or the line above)
// with:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("contactlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	sel := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fixtures := fs.Bool("fixtures", false, "list each analyzer's golden fixture directory and exit")
	countOnly := fs.Bool("count", false, "print only the diagnostic count")
	stats := fs.Bool("stats", false, "print per-analyzer diagnostic counts and wall time on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "contactlint:", err)
		return 2
	}

	if *fixtures {
		// The directives dir exercises the suppression machinery and
		// belongs to the "lint" pseudo-analyzer.
		names := []string{"directives"}
		for _, a := range analyzers {
			names = append(names, a.Name)
		}
		missing := 0
		for _, name := range names {
			dir := filepath.Join(root, "internal", "lint", "testdata", "src", name)
			rel, _ := filepath.Rel(root, dir)
			if _, err := os.Stat(dir); err != nil {
				fmt.Fprintf(stdout, "%-12s MISSING %s\n", name, filepath.ToSlash(rel))
				missing++
				continue
			}
			fmt.Fprintf(stdout, "%-12s %s\n", name, filepath.ToSlash(rel))
		}
		if missing > 0 {
			return 1
		}
		return 0
	}

	if *sel != "" {
		byName := make(map[string]*lint.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*sel, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "contactlint: unknown analyzer %q (run with -list to see the set)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/...", "./tools/...", "./examples/..."}
	}

	pkgs, err := lint.Load(root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "contactlint:", err)
		return 2
	}
	diags, perAnalyzer := lint.RunAnalyzersStats(pkgs, analyzers)

	switch {
	case *countOnly:
		fmt.Fprintln(stdout, len(diags))
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "contactlint:", err)
			return 2
		}
	default:
		lint.WriteText(stdout, diags)
	}
	if *stats {
		for _, s := range perAnalyzer {
			fmt.Fprintf(stderr, "%-12s %4d diagnostics  %8.1fms\n",
				s.Name, s.Diags, float64(s.Elapsed.Microseconds())/1000.0)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// moduleRoot finds the enclosing module by walking up from the
// working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
