// Command mkcorpus regenerates the checked-in fuzz seed corpora under
// internal/partition/testdata/fuzz, internal/dtree/testdata/fuzz,
// internal/sfc/testdata/fuzz, and internal/bkmeans/testdata/fuzz.
// Run from the repo root: go run ./tools/mkcorpus
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/dtree"
	"repro/internal/geom"
)

func write(dir, name string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}

func main() {
	kwayDir := filepath.Join("internal", "partition", "testdata", "fuzz", "FuzzKWay")
	// Mirrors the f.Add seeds: a mid-size graph, a tiny one, and a chain
	// with explicit edges.
	write(kwayDir, "seed-dense", []byte("@\x02\x04\x2a0123456789abcdefghij"))
	write(kwayDir, "seed-tiny", []byte("\x10\x01\x02\x07kwaykwaykway"))
	write(kwayDir, "seed-chain", []byte{8, 2, 3, 1, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7})

	treeDir := filepath.Join("internal", "dtree", "testdata", "fuzz", "FuzzTreeDeserialize")
	r := rand.New(rand.NewSource(11))
	pts := make([]geom.Point, 40)
	labels := make([]int32, 40)
	for i := range pts {
		pts[i] = geom.P3(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		labels[i] = int32(r.Intn(3))
	}
	tree, err := dtree.Build(pts, labels, 3, 3, dtree.Options{Mode: dtree.Descriptor})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	write(treeDir, "seed-valid", buf.Bytes())
	write(treeDir, "seed-truncated", buf.Bytes()[:buf.Len()/2])
	write(treeDir, "seed-magic-only", []byte("ERTD"))

	// Mirrors sfc.FuzzHilbertKey's f.Add seeds: (dims, bits) selectors
	// followed by big-endian coordinate bytes.
	sfcDir := filepath.Join("internal", "sfc", "testdata", "fuzz", "FuzzHilbertKey")
	write(sfcDir, "seed-2d", []byte{2, 4, 1, 2, 3, 4, 5, 6, 7, 8})
	write(sfcDir, "seed-3d", []byte{3, 7, 0xff, 0x01, 0x80, 0x7f, 0xaa, 0x55, 0x10, 0x20})
	write(sfcDir, "seed-deep", []byte{3, 21, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})

	// Mirrors bkmeans.FuzzBKMeansAssign's f.Add seeds: a cluster-count
	// byte followed by (x, y, weight) triples.
	bkDir := filepath.Join("internal", "bkmeans", "testdata", "fuzz", "FuzzBKMeansAssign")
	write(bkDir, "seed-small", []byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	write(bkDir, "seed-heavy", []byte{1, 0xff, 0xff, 0xff, 0x01, 0x02})
	write(bkDir, "seed-coincident", []byte{8, 5, 5, 5, 5, 9, 9, 9, 9, 1, 1, 1, 1, 200, 200, 0, 0})
}
