// Package repro is a from-scratch Go implementation of
//
//	George Karypis, "Multi-Constraint Mesh Partitioning for
//	Contact/Impact Computations", SC'03,
//
// including the paper's MCML+DT decomposition pipeline, the ML+RCB
// baseline it is evaluated against, and every substrate both depend
// on: a multilevel multi-constraint graph partitioner, recursive
// coordinate bisection, C4.5-style decision-tree induction with the
// paper's modified gini splitting index, finite-element mesh data
// structures, a synthetic contact/impact simulation standing in for
// the proprietary EPIC dataset, and the Section 5.1 measurement
// harness.
//
// This package is the public facade: it re-exports the types and
// entry points a downstream user needs. The implementation lives in
// the internal/ packages (one per subsystem); see DESIGN.md for the
// full inventory and EXPERIMENTS.md for the paper-vs-measured results.
//
// # Quick use
//
//	m, _, err := repro.ProjectileScene(repro.DefaultScene()) // or build your own mesh.Mesh
//	d, err := repro.Decompose(m, repro.DecomposeConfig{K: 8, Seed: 1})
//	fmt.Println(d.Stats())                                   // FEComm, cut, imbalance, NTNodes
//	n := d.NRemote(m, 0.5)                                   // global-search volume
//
// To reproduce Table 1, run the harness over a simulated snapshot
// sequence (or use cmd/contactbench):
//
//	snaps, err := repro.RunSimulation(repro.PaperSimConfig())
//	res, err := repro.RunExperiment(snaps, repro.ExperimentConfig{K: 25, Seed: 1})
package repro

import (
	"io"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/mesh"
	"repro/internal/meshgen"
	"repro/internal/sim"
)

// Mesh is a finite-element mesh with designated contact surfaces.
type Mesh = mesh.Mesh

// SurfaceElem is one contact surface facet.
type SurfaceElem = mesh.SurfaceElem

// SceneConfig parameterizes the projectile/two-plate scene generator.
type SceneConfig = meshgen.SceneConfig

// DefaultScene returns the small (~10k node) scene configuration.
func DefaultScene() SceneConfig { return meshgen.DefaultScene() }

// ProjectileScene builds the projectile/two-plate mesh.
func ProjectileScene(cfg SceneConfig) (*Mesh, *meshgen.SceneInfo, error) {
	return meshgen.ProjectileScene(cfg)
}

// DecomposeConfig configures the MCML+DT pipeline.
type DecomposeConfig = core.Config

// Decomposition is the result of the MCML+DT pipeline: the reshaped
// multi-constraint partition P” and the contact-point decision tree.
type Decomposition = core.Decomposition

// Decompose runs the full MCML+DT pipeline of Section 4 on a mesh.
func Decompose(m *Mesh, cfg DecomposeConfig) (*Decomposition, error) {
	return core.Decompose(m, cfg)
}

// SimConfig parameterizes the synthetic contact/impact simulation.
type SimConfig = sim.Config

// Snapshot is one emitted simulation state with persistent node ids.
type Snapshot = sim.Snapshot

// DefaultSimConfig returns the fast simulation profile.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// PaperSimConfig returns the Table 1 reproduction profile (~70k nodes,
// ~13% contact nodes, 100 snapshots).
func PaperSimConfig() SimConfig { return sim.PaperConfig() }

// RunSimulation executes the kinematic penetration run and returns the
// snapshot sequence.
func RunSimulation(cfg SimConfig) ([]Snapshot, error) { return sim.Run(cfg) }

// ExperimentConfig configures a Table 1 experiment (one k).
type ExperimentConfig = harness.Config

// ExperimentResult holds the six Section 5.1 metrics per snapshot and
// their averages.
type ExperimentResult = harness.Result

// RunExperiment measures MCML+DT and ML+RCB over a snapshot sequence.
func RunExperiment(snaps []Snapshot, cfg ExperimentConfig) (*ExperimentResult, error) {
	return harness.Run(snaps, cfg)
}

// WriteTable renders experiment results in the layout of Table 1.
func WriteTable(w io.Writer, results []*ExperimentResult) { harness.WriteTable(w, results) }

// WriteDerived prints the paper's derived communication-ratio claims.
func WriteDerived(w io.Writer, results []*ExperimentResult) { harness.WriteDerived(w, results) }

// ContactPair is a detected contact between two surface elements.
type ContactPair = contact.Pair

// DetectContacts runs the full serial contact-detection pipeline (BVH
// broad phase + exact facet-distance narrow phase) and returns every
// pair of surface elements within tol, excluding node-sharing pairs.
func DetectContacts(m *Mesh, tol float64) []ContactPair {
	return contact.DetectContacts(m, tol)
}

// ParallelStats is the outcome of one parallel iteration: realized
// ghost traffic, element shipments, and the detected contacts.
type ParallelStats = engine.Stats

// RunParallelIteration executes one iteration of the decomposed
// contact/impact computation on K message-passing workers (ghost
// exchange, descriptor broadcast, element shipping, local search).
func RunParallelIteration(m *Mesh, d *Decomposition, tol float64) (*ParallelStats, error) {
	return engine.Run(m, d, tol)
}
