// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md and micro-benchmarks of the substrates. Metric values are
// attached to each benchmark via b.ReportMetric, so `go test -bench=.`
// both times the pipeline and reprints the evaluation numbers.
//
// The benchmarks run at a reduced scale (~10k-node scene, 6
// snapshots) so the suite finishes in minutes; cmd/contactbench
// regenerates Table 1 at the paper profile (~70k nodes, 100
// snapshots).
package repro_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro"
	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/matching"
	"repro/internal/mesh"
	"repro/internal/partition"
	"repro/internal/rcb"
	"repro/internal/sim"
)

var (
	seqOnce sync.Once
	seq     []repro.Snapshot
)

// benchSnapshots lazily builds the shared benchmark sequence.
func benchSnapshots(b *testing.B) []repro.Snapshot {
	b.Helper()
	seqOnce.Do(func() {
		cfg := repro.DefaultSimConfig()
		cfg.Snapshots = 6
		cfg.Steps = 60
		var err error
		seq, err = repro.RunSimulation(cfg)
		if err != nil {
			panic(err)
		}
	})
	return seq
}

// BenchmarkTable1 regenerates the paper's Table 1: the six Section 5.1
// metrics for MCML+DT and ML+RCB at 25 and 100 partitions, averaged
// over the snapshot sequence.
func BenchmarkTable1(b *testing.B) {
	for _, k := range []int{25, 100} {
		b.Run(ksuffix(k), func(b *testing.B) {
			snaps := benchSnapshots(b)
			var last *repro.ExperimentResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := repro.RunExperiment(snaps, repro.ExperimentConfig{K: k, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.Avg.MCFEComm, "MC-FEComm")
			b.ReportMetric(last.Avg.MCNTNodes, "MC-NTNodes")
			b.ReportMetric(last.Avg.MCNRemote, "MC-NRemote")
			b.ReportMetric(last.Avg.MLFEComm, "ML-FEComm")
			b.ReportMetric(last.Avg.MLM2MComm, "ML-M2MComm")
			b.ReportMetric(last.Avg.MLUpdComm, "ML-UpdComm")
			b.ReportMetric(last.Avg.MLNRemote, "ML-NRemote")
		})
	}
}

// BenchmarkTable1Derived reports the paper's headline claim: the total
// pre-search communication of ML+RCB (FEComm + 2*M2MComm + UpdComm)
// relative to MCML+DT's FEComm, in percent. At this reduced benchmark
// scale the percentage is much smaller than at the paper profile (the
// contact-node fraction and M2MComm shrink with the scene); see
// results/table1_paper_profile.txt and EXPERIMENTS.md for the
// full-scale numbers.
func BenchmarkTable1Derived(b *testing.B) {
	for _, k := range []int{25, 100} {
		b.Run(ksuffix(k), func(b *testing.B) {
			snaps := benchSnapshots(b)
			var pct float64
			for i := 0; i < b.N; i++ {
				r, err := repro.RunExperiment(snaps, repro.ExperimentConfig{K: k, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				ml := r.Avg.MLFEComm + 2*r.Avg.MLM2MComm + r.Avg.MLUpdComm
				pct = 100 * (ml - r.Avg.MCFEComm) / r.Avg.MCFEComm
			}
			b.ReportMetric(pct, "ML-extra-comm-%")
		})
	}
}

// BenchmarkFigure1 regenerates Figure 1: decision-tree induction over
// a 3-way partitioning of 45 clustered contact points, reporting the
// tree size (5 nodes for the paper's axis-parallel layout).
func BenchmarkFigure1(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	var pts []geom.Point
	var labels []int32
	for i := 0; i < 15; i++ {
		pts = append(pts, geom.P2(r.Float64()*4.2, r.Float64()*4.2))
		labels = append(labels, 0)
	}
	for i := 0; i < 15; i++ {
		pts = append(pts, geom.P2(r.Float64()*10, 5.2+r.Float64()*4.5))
		labels = append(labels, 1)
	}
	for i := 0; i < 15; i++ {
		pts = append(pts, geom.P2(5.2+r.Float64()*4.5, r.Float64()*4.2))
		labels = append(labels, 2)
	}
	var nodes int
	for i := 0; i < b.N; i++ {
		t, err := dtree.Build(pts, labels, 2, 3, dtree.Options{Mode: dtree.Descriptor})
		if err != nil {
			b.Fatal(err)
		}
		nodes = t.NumNodes()
	}
	b.ReportMetric(float64(nodes), "NTNodes")
}

// BenchmarkFigure2 regenerates Figure 2: the tree-size blowup of a
// diagonal subdomain boundary versus an axis-parallel one over the
// same 28 points.
func BenchmarkFigure2(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	n := 28
	pts := make([]geom.Point, n)
	diag := make([]int32, n)
	axis := make([]int32, n)
	for i := range pts {
		x, y := r.Float64()*10, r.Float64()*10
		pts[i] = geom.P2(x, y)
		if y > x {
			diag[i] = 1
		}
		if y > 5 {
			axis[i] = 1
		}
	}
	var aN, dN int
	for i := 0; i < b.N; i++ {
		at, err := dtree.Build(pts, axis, 2, 2, dtree.Options{Mode: dtree.Descriptor})
		if err != nil {
			b.Fatal(err)
		}
		dt, err := dtree.Build(pts, diag, 2, 2, dtree.Options{Mode: dtree.Descriptor})
		if err != nil {
			b.Fatal(err)
		}
		aN, dN = at.NumNodes(), dt.NumNodes()
	}
	b.ReportMetric(float64(aN), "axis-NTNodes")
	b.ReportMetric(float64(dN), "diag-NTNodes")
}

// BenchmarkFigure3 regenerates Figure 3's underlying data: the full
// kinematic penetration simulation (node motion, crater deformation,
// element erosion, contact re-designation).
func BenchmarkFigure3(b *testing.B) {
	cfg := repro.DefaultSimConfig()
	cfg.Snapshots = 6
	cfg.Steps = 60
	var eroded int
	for i := 0; i < b.N; i++ {
		snaps, err := repro.RunSimulation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		eroded = snaps[0].Mesh.NumElems() - snaps[len(snaps)-1].Mesh.NumElems()
	}
	b.ReportMetric(float64(eroded), "eroded-elements")
}

// BenchmarkSection42Sweep regenerates the Section 4.2 parameter study
// at three (max_p, max_i) operating points: below, inside, and above
// the recommended ranges.
func BenchmarkSection42Sweep(b *testing.B) {
	snaps := benchSnapshots(b)
	m := snaps[0].Mesh
	n := m.NumNodes()
	const k = 16
	cases := []struct {
		name       string
		maxP, maxI int
	}{
		{"below", 8, 2},
		{"inside", n / 64, n/256 + 2}, // ~ n/k^1.5, n/k^2
		{"above", n / 4, n / 16},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var s core.Stats
			for i := 0; i < b.N; i++ {
				d, err := core.Decompose(m, core.Config{
					K: k, Seed: 5, MaxPure: c.maxP, MaxImpure: c.maxI, Parallel: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				s = d.Stats()
			}
			b.ReportMetric(float64(s.NTNodes), "NTNodes")
			b.ReportMetric(s.Imbalance[1], "contact-imbalance")
		})
	}
}

// BenchmarkAblationReshape measures the decision-tree-friendly
// boundary reshaping (Section 4.2) on vs off: reshaping should shrink
// the descriptor tree at a small FEComm cost.
func BenchmarkAblationReshape(b *testing.B) {
	snaps := benchSnapshots(b)
	m := snaps[0].Mesh
	for _, skip := range []bool{false, true} {
		name := "reshape-on"
		if skip {
			name = "reshape-off"
		}
		b.Run(name, func(b *testing.B) {
			var s core.Stats
			for i := 0; i < b.N; i++ {
				d, err := core.Decompose(m, core.Config{K: 25, Seed: 1, SkipReshape: skip, Parallel: true})
				if err != nil {
					b.Fatal(err)
				}
				s = d.Stats()
			}
			b.ReportMetric(float64(s.NTNodes), "NTNodes")
			b.ReportMetric(float64(s.FEComm), "FEComm")
		})
	}
}

// BenchmarkAblationTreeFilter compares the raw leaf-rectangle filter
// (the paper's descriptor) against the tight per-leaf point-box
// refinement during global search.
func BenchmarkAblationTreeFilter(b *testing.B) {
	snaps := benchSnapshots(b)
	m := snaps[0].Mesh
	d, err := core.Decompose(m, core.Config{K: 25, Seed: 1, Parallel: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, tight := range []bool{false, true} {
		name := "loose"
		if tight {
			name = "tight"
		}
		b.Run(name, func(b *testing.B) {
			var nr int64
			for i := 0; i < b.N; i++ {
				nr = core.NRemote(m, d.Labels, d.Descriptor, d.ContactPoints, d.ContactLabels, 0.5, tight)
			}
			b.ReportMetric(float64(nr), "NRemote")
		})
	}
}

// BenchmarkAblationEdgeWeight compares contact-contact edge weight 1
// vs the paper's 5.
func BenchmarkAblationEdgeWeight(b *testing.B) {
	snaps := benchSnapshots(b)
	m := snaps[0].Mesh
	for _, w := range []int32{1, 5} {
		b.Run("w"+string(rune('0'+w)), func(b *testing.B) {
			nodal := mesh.DefaultNodalOptions()
			nodal.ContactEdgeWeight = w
			var s core.Stats
			for i := 0; i < b.N; i++ {
				d, err := core.Decompose(m, core.Config{K: 25, Seed: 1, Nodal: nodal, Parallel: true})
				if err != nil {
					b.Fatal(err)
				}
				s = d.Stats()
			}
			b.ReportMetric(float64(s.EdgeCut), "EdgeCut")
			b.ReportMetric(float64(s.FEComm), "FEComm")
		})
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkPartitionMultiConstraint times the multilevel
// multi-constraint partitioner on the benchmark mesh's nodal graph.
func BenchmarkPartitionMultiConstraint(b *testing.B) {
	snaps := benchSnapshots(b)
	g := snaps[0].Mesh.NodalGraph(mesh.DefaultNodalOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Partition(g, partition.Options{K: 25, Seed: int64(i), Imbalance: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDescriptorTree times contact-point decision-tree induction
// (the per-time-step update cost of MCML+DT).
func BenchmarkDescriptorTree(b *testing.B) {
	snaps := benchSnapshots(b)
	m := snaps[0].Mesh
	d, err := core.Decompose(m, core.Config{K: 25, Seed: 1, Parallel: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dtree.Build(d.ContactPoints, d.ContactLabels, 3, 25,
			dtree.Options{Mode: dtree.Descriptor, Parallel: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRCBUpdate times the ML+RCB incremental repartitioning step.
func BenchmarkRCBUpdate(b *testing.B) {
	snaps := benchSnapshots(b)
	m := snaps[0].Mesh
	nodes := m.ContactNodes()
	pts := make([]geom.Point, len(nodes))
	for i, n := range nodes {
		pts[i] = m.Coords[n]
	}
	tree, _, err := rcb.Build(pts, 3, 25)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Update(pts)
	}
}

// BenchmarkGlobalSearch times the parallel surface-element sweep
// against the decision-tree descriptor.
func BenchmarkGlobalSearch(b *testing.B) {
	snaps := benchSnapshots(b)
	m := snaps[0].Mesh
	d, err := core.Decompose(m, core.Config{K: 25, Seed: 1, Parallel: true})
	if err != nil {
		b.Fatal(err)
	}
	owners := contact.SurfaceOwners(m, d.Labels)
	boxes := contact.SurfaceBoxes(m, 0.5)
	f := &contact.TreeFilter{
		Tree:       d.Descriptor,
		Labels:     d.ContactLabels,
		TightBoxes: d.Descriptor.PointBoxes(d.ContactPoints),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		contact.NRemote(boxes, owners, f)
	}
}

// BenchmarkHungarian times the k x k maximum-weight matching used for
// the M2MComm partition mapping.
func BenchmarkHungarian(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const k = 100
	w := make([][]int64, k)
	for i := range w {
		w[i] = make([]int64, k)
		for j := range w[i] {
			w[i][j] = int64(r.Intn(1000))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := matching.MaxWeightAssign(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimStep times one kinematic simulation step.
func BenchmarkSimStep(b *testing.B) {
	cfg := repro.DefaultSimConfig()
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func ksuffix(k int) string {
	if k == 25 {
		return "k25"
	}
	return "k100"
}

// BenchmarkAblationGeometric compares the multilevel MCML+DT pipeline
// with the geometric backends the paper's conclusions propose (box or
// curve-segment subdomains, minimal trees, worse cut): multi-constraint
// RCB, Hilbert-curve splitting, and balanced k-means.
func BenchmarkAblationGeometric(b *testing.B) {
	snaps := benchSnapshots(b)
	m := snaps[0].Mesh
	for _, be := range []string{"multilevel", "rcb", "sfc", "bkmeans"} {
		b.Run(be, func(b *testing.B) {
			var s core.Stats
			for i := 0; i < b.N; i++ {
				d, err := core.Decompose(m, core.Config{K: 25, Seed: 1, Backend: be, Parallel: true})
				if err != nil {
					b.Fatal(err)
				}
				s = d.Stats()
			}
			b.ReportMetric(float64(s.NTNodes), "NTNodes")
			b.ReportMetric(float64(s.FEComm), "FEComm")
			b.ReportMetric(s.Imbalance[1], "contact-imbalance")
		})
	}
}

// BenchmarkParallelIteration times one full parallel iteration of the
// decomposed computation (ghost exchange + tree broadcast + element
// shipping + local search) on k message-passing workers.
func BenchmarkParallelIteration(b *testing.B) {
	snaps := benchSnapshots(b)
	m := snaps[len(snaps)-1].Mesh
	d, err := core.Decompose(m, core.Config{K: 16, Seed: 1, Parallel: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var st *engine.Stats
	for i := 0; i < b.N; i++ {
		st, err = engine.Run(m, d, 0.5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.GhostUnits), "ghost-units")
	b.ReportMetric(float64(st.ElemsShipped), "elems-shipped")
	b.ReportMetric(float64(len(st.Pairs)), "contact-pairs")
}
