// Package matching implements maximum-weight bipartite matching
// (the Hungarian / Kuhn–Munkres algorithm). The ML+RCB baseline uses it
// to relabel the contact-phase (RCB) partitions against the FE-phase
// partitions so that the number of contact points living on a different
// processor in the two decompositions — the paper's M2MComm metric —
// is minimized ("we used a maximal weight matching algorithm to
// optimize the mapping between the two partitions", Section 5.1).
package matching

import "fmt"

// MaxWeightAssign solves the n x n assignment problem: given
// w[i][j] >= 0, it returns an assignment match with match[i] = j
// maximizing the total weight, and that total. The matrix may be
// rectangular (rows <= cols); every row is assigned a distinct column.
//
// The implementation is the O(rows²·cols) potential-based Hungarian
// algorithm (Jonker–Volgenant style shortest augmenting paths).
func MaxWeightAssign(w [][]int64) (match []int, total int64, err error) {
	n := len(w)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(w[0])
	if m < n {
		return nil, 0, fmt.Errorf("matching: %d rows > %d cols", n, m)
	}
	var maxW int64
	for i := range w {
		if len(w[i]) != m {
			return nil, 0, fmt.Errorf("matching: ragged matrix (row %d has %d cols, want %d)", i, len(w[i]), m)
		}
		for _, v := range w[i] {
			if v < 0 {
				return nil, 0, fmt.Errorf("matching: negative weight %d", v)
			}
			if v > maxW {
				maxW = v
			}
		}
	}

	// Convert to a min-cost problem: cost = maxW - w.
	// Standard JV with 1-based virtual row/col 0.
	const inf = int64(1) << 62
	u := make([]int64, n+1)
	v := make([]int64, m+1)
	p := make([]int, m+1) // p[j] = row matched to column j (0 = none)
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			var delta int64 = inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cost := maxW - w[i0-1][j-1]
				cur := cost - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	match = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			match[p[j]-1] = j - 1
			total += w[p[j]-1][j-1]
		}
	}
	return match, total, nil
}

// OverlapRelabel computes, for two k-way labelings a and b of the same
// item set, the permutation perm of b's labels that maximizes the
// number of items with a[i] == perm[b[i]], and returns perm together
// with the number of items that still disagree after relabeling.
//
// This is exactly the M2MComm computation: a = FE-phase partition of
// the contact points, b = RCB contact-phase partition.
func OverlapRelabel(a, b []int32, k int) (perm []int32, mismatched int, err error) {
	if len(a) != len(b) {
		return nil, 0, fmt.Errorf("matching: label slices differ in length: %d vs %d", len(a), len(b))
	}
	overlap := make([][]int64, k)
	for i := range overlap {
		overlap[i] = make([]int64, k)
	}
	for i := range a {
		la, lb := a[i], b[i]
		if la < 0 || int(la) >= k || lb < 0 || int(lb) >= k {
			return nil, 0, fmt.Errorf("matching: label out of range at %d: %d/%d", i, la, lb)
		}
		overlap[lb][la]++ // rows: b's labels; cols: a's labels
	}
	match, agree, err := MaxWeightAssign(overlap)
	if err != nil {
		return nil, 0, err
	}
	perm = make([]int32, k)
	for bl, al := range match {
		perm[bl] = int32(al)
	}
	return perm, len(a) - int(agree), nil
}
