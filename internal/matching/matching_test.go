package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTinyAssignments(t *testing.T) {
	cases := []struct {
		w     [][]int64
		total int64
	}{
		{[][]int64{{5}}, 5},
		{[][]int64{{1, 2}, {3, 4}}, 1 + 4}, // diag {1,4}=5 vs anti {2,3}=5: both 5
		{[][]int64{{10, 1}, {1, 10}}, 20},
		{[][]int64{{0, 0, 9}, {0, 9, 0}, {9, 0, 0}}, 27},
		{[][]int64{{7, 7, 7}, {7, 7, 7}, {7, 7, 7}}, 21},
	}
	for i, c := range cases {
		match, total, err := MaxWeightAssign(c.w)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if total != c.total {
			t.Errorf("case %d: total = %d, want %d (match %v)", i, total, c.total, match)
		}
		// The match must be a permutation of distinct columns.
		seen := map[int]bool{}
		for _, j := range match {
			if seen[j] {
				t.Errorf("case %d: column %d assigned twice", i, j)
			}
			seen[j] = true
		}
	}
}

func TestRectangular(t *testing.T) {
	// 2 rows, 3 columns: pick the best 2 columns.
	w := [][]int64{
		{1, 5, 2},
		{4, 6, 3},
	}
	match, total, err := MaxWeightAssign(w)
	if err != nil {
		t.Fatal(err)
	}
	// Best: row0->col1 (5), row1->col0 (4) = 9.
	if total != 9 {
		t.Errorf("total = %d, want 9 (match %v)", total, match)
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := MaxWeightAssign([][]int64{{1, 2}, {3}}); err == nil {
		t.Error("accepted ragged matrix")
	}
	if _, _, err := MaxWeightAssign([][]int64{{-1}}); err == nil {
		t.Error("accepted negative weight")
	}
	if _, _, err := MaxWeightAssign([][]int64{{1}, {2}}); err == nil {
		t.Error("accepted more rows than cols")
	}
	if m, total, err := MaxWeightAssign(nil); err != nil || m != nil || total != 0 {
		t.Error("empty input should be trivially fine")
	}
}

// bruteForce finds the optimal assignment by trying all permutations.
func bruteForce(w [][]int64) int64 {
	n := len(w)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var best int64 = -1
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			var s int64
			for r, c := range perm {
				s += w[r][c]
			}
			if s > best {
				best = s
			}
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		w := make([][]int64, n)
		for i := range w {
			w[i] = make([]int64, n)
			for j := range w[i] {
				w[i][j] = int64(r.Intn(50))
			}
		}
		_, total, err := MaxWeightAssign(w)
		if err != nil {
			return false
		}
		return total == bruteForce(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOverlapRelabelPerfect(t *testing.T) {
	// b is a relabeled copy of a: mismatch must be 0.
	a := []int32{0, 0, 1, 1, 2, 2}
	b := []int32{2, 2, 0, 0, 1, 1}
	perm, mismatch, err := OverlapRelabel(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mismatch != 0 {
		t.Fatalf("mismatch = %d, want 0", mismatch)
	}
	for i := range a {
		if perm[b[i]] != a[i] {
			t.Fatalf("perm does not realize the relabeling at %d", i)
		}
	}
}

func TestOverlapRelabelPartial(t *testing.T) {
	// One stray point: mismatch exactly 1.
	a := []int32{0, 0, 0, 1, 1, 1}
	b := []int32{1, 1, 1, 0, 0, 1} // b=1 mostly maps to a=0, except the last
	_, mismatch, err := OverlapRelabel(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mismatch != 1 {
		t.Fatalf("mismatch = %d, want 1", mismatch)
	}
}

func TestOverlapRelabelErrors(t *testing.T) {
	if _, _, err := OverlapRelabel([]int32{0}, []int32{0, 1}, 2); err == nil {
		t.Error("accepted length mismatch")
	}
	if _, _, err := OverlapRelabel([]int32{5}, []int32{0}, 2); err == nil {
		t.Error("accepted out-of-range label")
	}
}

// Property: OverlapRelabel never does worse than the identity mapping.
func TestQuickRelabelBeatsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		k := 1 + r.Intn(8)
		a := make([]int32, n)
		b := make([]int32, n)
		for i := range a {
			a[i] = int32(r.Intn(k))
			b[i] = int32(r.Intn(k))
		}
		_, mismatch, err := OverlapRelabel(a, b, k)
		if err != nil {
			return false
		}
		identity := 0
		for i := range a {
			if a[i] != b[i] {
				identity++
			}
		}
		return mismatch <= identity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
