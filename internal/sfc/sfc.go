package sfc

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Options configures Partition.
type Options struct {
	// K is the number of partitions.
	K int
	// Bits is the quantization resolution per axis (0 = MaxBits(dim)).
	Bits int
	// Workers bounds the worker pool for key computation and the merge
	// sort (<= 0 = GOMAXPROCS). Labels are identical for every value.
	Workers int
	// Obs, when non-nil, receives the sfc_keys/sfc_sort/sfc_split phase
	// timers and the sfc_sort_chunks counter. Observational only.
	Obs *obs.Collector
	// Span, when non-nil, records one "sfc" child span over the run.
	Span *obs.Span
}

// parallelCutoff is the point count below which keys are computed and
// sorted on the calling goroutine (chunking overhead dominates under
// it). A variable so tests can force the chunked path on small inputs.
var parallelCutoff = 1 << 13

// Partition splits pts into k contiguous segments of the Hilbert curve.
// wgts carries ncon weights per point (flat, stride ncon); segment
// boundaries are chosen by a prefix-sum scan that minimizes the worst
// per-constraint relative deviation from the proportional target, so
// multi-constraint balance is honored as far as contiguous curve
// segments allow. Every part is non-empty whenever len(pts) >= k.
// Deterministic for any Options.Workers.
func Partition(pts []geom.Point, wgts []int32, ncon, dim, k int, opt Options) ([]int32, error) {
	bits := opt.Bits
	if bits == 0 {
		bits = MaxBits(dim)
	}
	if err := validateCurve(dim, bits); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("sfc: k = %d, want >= 1", k)
	}
	if ncon < 1 {
		return nil, fmt.Errorf("sfc: ncon = %d, want >= 1", ncon)
	}
	if len(wgts) != len(pts)*ncon {
		return nil, fmt.Errorf("sfc: %d weights for %d points with ncon=%d", len(wgts), len(pts), ncon)
	}
	span := opt.Span.Child("sfc",
		obs.Int("k", int64(k)), obs.Int("n", int64(len(pts))), obs.Int("bits", int64(bits)))
	defer span.End()

	labels := make([]int32, len(pts))
	if k == 1 || len(pts) == 0 {
		return labels, nil
	}

	stopKeys := opt.Obs.Start("sfc_keys")
	recs := curveKeys(pts, dim, bits, opt.Workers)
	stopKeys()

	stopSort := opt.Obs.Start("sfc_sort")
	sortKeys(recs, opt.Workers, opt.Obs)
	stopSort()

	stopSplit := opt.Obs.Start("sfc_split")
	splitCurve(recs, wgts, ncon, k, labels)
	stopSplit()
	return labels, nil
}

// rec is one point's position on the curve. idx breaks key ties, which
// makes the sort order strict and the whole pipeline deterministic.
type rec struct {
	key uint64
	idx int32
}

// curveKeys quantizes every point onto the 2^bits grid of the point
// set's bounding box and encodes its Hilbert index, chunked over the
// worker pool above the parallel cutoff. Chunks write disjoint ranges
// of a pre-sized slice, so the values are identical for every chunking.
func curveKeys(pts []geom.Point, dim, bits int, workers int) []rec {
	box := geom.BoxOf(pts)
	limit := float64(uint32(1)<<uint(bits) - 1)
	var scale [3]float64
	for d := 0; d < dim; d++ {
		if ext := box.Max[d] - box.Min[d]; ext > 0 {
			scale[d] = limit / ext
		}
	}
	recs := make([]rec, len(pts))
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var axes [3]uint32
			for d := 0; d < dim; d++ {
				axes[d] = uint32((pts[i][d] - box.Min[d]) * scale[d])
			}
			recs[i] = rec{key: Encode(axes, dim, bits), idx: int32(i)}
		}
	}
	w := pool.Workers(workers)
	if w <= 1 || len(pts) < parallelCutoff {
		fill(0, len(pts))
		return recs
	}
	fns := make([]func() error, 0, w)
	step := (len(pts) + w - 1) / w
	for lo := 0; lo < len(pts); lo += step {
		lo, hi := lo, lo+step
		if hi > len(pts) {
			hi = len(pts)
		}
		fns = append(fns, func() error { fill(lo, hi); return nil })
	}
	// The closures cannot fail; pool.Run only surfaces panics, which
	// would have crashed the serial path just the same.
	_ = pool.Run(w, fns...)
	return recs
}

// sortKeys sorts recs in place by (key, idx): chunk-local sorts fan out
// over the pool, then adjacent runs are pair-merged level by level.
// The order (key, idx) is a strict total order, so the result is the
// unique sorted permutation regardless of worker count or chunking.
func sortKeys(recs []rec, workers int, col *obs.Collector) {
	n := len(recs)
	w := pool.Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 || n < parallelCutoff {
		sort.Slice(recs, func(i, j int) bool { return less(recs[i], recs[j]) })
		col.Add("sfc_sort_chunks", 1)
		return
	}

	// Chunk-local sorts.
	step := (n + w - 1) / w
	var bounds []int
	for lo := 0; lo <= n; lo += step {
		bounds = append(bounds, lo)
	}
	if bounds[len(bounds)-1] != n {
		bounds = append(bounds, n)
	}
	fns := make([]func() error, 0, len(bounds)-1)
	for c := 0; c+1 < len(bounds); c++ {
		lo, hi := bounds[c], bounds[c+1]
		fns = append(fns, func() error {
			sort.Slice(recs[lo:hi], func(i, j int) bool { return less(recs[lo+i], recs[lo+j]) })
			return nil
		})
	}
	_ = pool.Run(w, fns...)
	col.Add("sfc_sort_chunks", int64(len(fns)))

	// Pairwise merge levels until one run remains. src and dst swap
	// between the original slice and one scratch buffer.
	src, dst := recs, make([]rec, n)
	for len(bounds) > 2 {
		var next []int
		var merges []func() error
		next = append(next, 0)
		for c := 0; c+1 < len(bounds); c += 2 {
			lo, mid := bounds[c], bounds[c+1]
			hi := n
			if c+2 < len(bounds) {
				hi = bounds[c+2]
			}
			s, d := src, dst
			merges = append(merges, func() error {
				mergeRuns(s[lo:mid], s[mid:hi], d[lo:hi])
				return nil
			})
			next = append(next, hi)
		}
		_ = pool.Run(w, merges...)
		bounds = next
		src, dst = dst, src
	}
	if &src[0] != &recs[0] {
		copy(recs, src)
	}
}

func less(a, b rec) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.idx < b.idx
}

// mergeRuns merges two sorted runs into dst (len(dst) = len(a)+len(b)).
func mergeRuns(a, b, dst []rec) {
	i, j := 0, 0
	for o := range dst {
		switch {
		case i == len(a):
			dst[o] = b[j]
			j++
		case j == len(b):
			dst[o] = a[i]
			i++
		case less(b[j], a[i]):
			dst[o] = b[j]
			j++
		default:
			dst[o] = a[i]
			i++
		}
	}
}

// splitCurve cuts the sorted curve into k segments. For segment
// boundary s the target is the proportional prefix s/k of every
// constraint's total; the cut index is the local minimum of the worst
// relative deviation across constraints — each constraint's deviation
// is monotone-down-then-up in the cut index, so their max is
// quasiconvex and the first local minimum is global. Bounds keep every
// segment non-empty (when n >= k) and leave room for the segments
// still to come.
func splitCurve(recs []rec, wgts []int32, ncon, k int, labels []int32) {
	n := len(recs)
	total := make([]float64, ncon)
	for i := 0; i < n; i++ {
		for j := 0; j < ncon; j++ {
			total[j] += float64(wgts[int(recs[i].idx)*ncon+j])
		}
	}
	active := false
	for j := 0; j < ncon; j++ {
		if total[j] > 0 {
			active = true
		}
	}

	// dev is the worst relative deviation of a candidate prefix from
	// the boundary-s target. With no positive constraint totals it
	// falls back to count balance so the split stays proportional.
	dev := func(prefix []float64, count, s int) float64 {
		if !active {
			d := float64(count) - float64(s)*float64(n)/float64(k)
			if d < 0 {
				d = -d
			}
			return d / float64(n)
		}
		worst := 0.0
		for j := 0; j < ncon; j++ {
			if total[j] == 0 {
				continue
			}
			d := prefix[j] - float64(s)*total[j]/float64(k)
			if d < 0 {
				d = -d
			}
			if rd := d / total[j]; rd > worst {
				worst = rd
			}
		}
		return worst
	}

	prefix := make([]float64, ncon) // weights of recs[:cut]
	cand := make([]float64, ncon)   // prefix if one more point joins
	cut := 0
	cuts := make([]int, 0, k-1)
	for s := 1; s < k; s++ {
		lo := cut + 1     // at least one point in segment s-1
		hi := n - (k - s) // leave one point per remaining segment
		if hi < lo {
			hi = lo
		}
		if hi > n {
			hi = n // fewer points than segments: the tail stays empty
		}
		for cut < lo && cut < n {
			for j := 0; j < ncon; j++ {
				prefix[j] += float64(wgts[int(recs[cut].idx)*ncon+j])
			}
			cut++
		}
		best := dev(prefix, cut, s)
		for cut < hi {
			for j := 0; j < ncon; j++ {
				cand[j] = prefix[j] + float64(wgts[int(recs[cut].idx)*ncon+j])
			}
			if d := dev(cand, cut+1, s); d > best {
				break // first non-improvement = global minimum
			} else {
				best = d
			}
			copy(prefix, cand)
			cut++
		}
		cuts = append(cuts, cut)
	}

	seg, at := int32(0), 0
	for i := 0; i < n; i++ {
		for at < len(cuts) && i >= cuts[at] {
			seg++
			at++
		}
		labels[recs[i].idx] = seg
	}
}
