package sfc

import "testing"

// FuzzHilbertKey drives the curve encoding through arbitrary
// (dims, bits, coordinate) tuples decoded from fuzzer bytes and checks
// the two properties everything else in the package rests on:
//
//  1. round trip: Decode(Encode(x)) == x and Encode(Decode(h)) == h
//     (the mapping is a bijection on the grid);
//  2. locality monotonicity: consecutive curve indices decode to grid
//     cells at Manhattan distance exactly 1 (curve continuity), so
//     sorting by key orders points along one unbroken walk of the grid.
func FuzzHilbertKey(f *testing.F) {
	f.Add([]byte{2, 4, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{3, 7, 0xff, 0x01, 0x80, 0x7f, 0xaa, 0x55, 0x10, 0x20})
	f.Add([]byte{3, 21, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		dims := 2 + int(data[0])%2
		bits := 1 + int(data[1])%MaxBits(dims)
		rest := data[2:]
		var axes [3]uint32
		for i := 0; i < dims; i++ {
			var v uint32
			for b := 0; b < 4 && i*4+b < len(rest); b++ {
				v = v<<8 | uint32(rest[i*4+b])
			}
			axes[i] = v & (1<<uint(bits) - 1)
		}

		h := Encode(axes, dims, bits)
		if max := uint64(1) << uint(dims*bits); h >= max {
			t.Fatalf("dims=%d bits=%d: Encode(%v) = %d >= %d", dims, bits, axes, h, max)
		}
		back := Decode(h, dims, bits)
		if back != axes {
			t.Fatalf("dims=%d bits=%d: Decode(Encode(%v)) = %v", dims, bits, axes, back)
		}
		if h2 := Encode(back, dims, bits); h2 != h {
			t.Fatalf("dims=%d bits=%d: Encode(Decode(%d)) = %d", dims, bits, h, h2)
		}

		if h+1 < uint64(1)<<uint(dims*bits) {
			next := Decode(h+1, dims, bits)
			if manhattan(back, next) != 1 {
				t.Fatalf("dims=%d bits=%d: curve jumps from %v (key %d) to %v (key %d)",
					dims, bits, back, h, next, h+1)
			}
		}
	})
}
