package sfc

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestHilbertBijectionExhaustive walks every cell of small 2D and 3D
// grids: the keys must be a permutation of [0, 2^(dims*bits)) and
// Decode must invert Encode exactly.
func TestHilbertBijectionExhaustive(t *testing.T) {
	cases := []struct{ dims, bits int }{{2, 1}, {2, 3}, {3, 1}, {3, 2}, {3, 3}}
	for _, c := range cases {
		side := 1 << uint(c.bits)
		cells := 1
		for i := 0; i < c.dims; i++ {
			cells *= side
		}
		seen := make([]bool, cells)
		var walk func(axes [3]uint32, d int)
		walk = func(axes [3]uint32, d int) {
			if d == c.dims {
				h := Encode(axes, c.dims, c.bits)
				if h >= uint64(cells) {
					t.Fatalf("dims=%d bits=%d: key %d out of range for %v", c.dims, c.bits, h, axes)
				}
				if seen[h] {
					t.Fatalf("dims=%d bits=%d: duplicate key %d at %v", c.dims, c.bits, h, axes)
				}
				seen[h] = true
				if back := Decode(h, c.dims, c.bits); back != axes {
					t.Fatalf("dims=%d bits=%d: Decode(Encode(%v)) = %v", c.dims, c.bits, axes, back)
				}
				return
			}
			for v := 0; v < side; v++ {
				axes[d] = uint32(v)
				walk(axes, d+1)
			}
		}
		walk([3]uint32{}, 0)
		for h, ok := range seen {
			if !ok {
				t.Fatalf("dims=%d bits=%d: key %d never produced", c.dims, c.bits, h)
			}
		}
	}
}

// TestHilbertAdjacency pins the curve-continuity property on a full
// small grid: consecutive curve positions are grid neighbors (Manhattan
// distance exactly 1).
func TestHilbertAdjacency(t *testing.T) {
	for _, c := range []struct{ dims, bits int }{{2, 4}, {3, 3}} {
		cells := uint64(1) << uint(c.dims*c.bits)
		prev := Decode(0, c.dims, c.bits)
		for h := uint64(1); h < cells; h++ {
			cur := Decode(h, c.dims, c.bits)
			if manhattan(prev, cur) != 1 {
				t.Fatalf("dims=%d bits=%d: positions %d→%d jump from %v to %v",
					c.dims, c.bits, h-1, h, prev, cur)
			}
			prev = cur
		}
	}
}

func manhattan(a, b [3]uint32) int {
	d := 0
	for i := range a {
		if a[i] > b[i] {
			d += int(a[i] - b[i])
		} else {
			d += int(b[i] - a[i])
		}
	}
	return d
}

// randPoints builds a clustered 3D point cloud with ncon weights
// (first component always >= 1, the precondition for non-empty parts).
func randPoints(r *rand.Rand, n, ncon int) ([]geom.Point, []int32) {
	pts := make([]geom.Point, n)
	wgts := make([]int32, n*ncon)
	for i := range pts {
		pts[i] = geom.P3(r.Float64()*40, r.Float64()*10, r.Float64()*25)
		wgts[i*ncon] = 1 + int32(r.Intn(3))
		for j := 1; j < ncon; j++ {
			if r.Intn(3) == 0 {
				wgts[i*ncon+j] = int32(r.Intn(4))
			}
		}
	}
	return pts, wgts
}

func TestPartitionBalanceAndCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, k := range []int{2, 5, 16} {
		for _, ncon := range []int{1, 2} {
			pts, wgts := randPoints(r, 3000, ncon)
			labels, err := Partition(pts, wgts, ncon, 3, k, Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			counts := make([]int, k)
			loads := make([]int64, k)
			var total int64
			for i, l := range labels {
				if l < 0 || int(l) >= k {
					t.Fatalf("k=%d: label %d out of range", k, l)
				}
				counts[l]++
				loads[l] += int64(wgts[i*ncon])
				total += int64(wgts[i*ncon])
			}
			avg := float64(total) / float64(k)
			// Single-constraint splits land within 10% + one-vertex
			// granularity; with a second constraint the cut compromises
			// between components, so only a looser bound is guaranteed.
			slack := 1.1*avg + 3
			if ncon > 1 {
				slack = 1.35*avg + 3
			}
			for p := 0; p < k; p++ {
				if counts[p] == 0 {
					t.Fatalf("k=%d ncon=%d: part %d empty", k, ncon, p)
				}
				if float64(loads[p]) > slack {
					t.Errorf("k=%d ncon=%d: part %d load %d vs avg %.1f", k, ncon, p, loads[p], avg)
				}
			}
		}
	}
}

// TestPartitionLocality: curve segments should be spatially compact —
// every part's bounding box must be far smaller than the domain.
func TestPartitionLocality(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts, wgts := randPoints(r, 4000, 1)
	k := 8
	labels, err := Partition(pts, wgts, 1, 3, k, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	whole := geom.BoxOf(pts)
	wholeVol := (whole.Max[0] - whole.Min[0]) * (whole.Max[1] - whole.Min[1]) * (whole.Max[2] - whole.Min[2])
	var sum float64
	for p := 0; p < k; p++ {
		b := geom.Empty()
		for i, l := range labels {
			if int(l) == p {
				b = b.Extend(pts[i])
			}
		}
		sum += (b.Max[0] - b.Min[0]) * (b.Max[1] - b.Min[1]) * (b.Max[2] - b.Min[2])
	}
	// Random labeling would give ~k*wholeVol; Hilbert segments stay
	// compact. Allow generous slack for segment wraparound.
	if sum > 2.5*wholeVol {
		t.Errorf("total part-box volume %.1f vs domain %.1f: no locality", sum, wholeVol)
	}
}

// TestPartitionWorkerDeterminism: byte-identical labels for every
// worker count and for forced chunked paths, mirroring
// partition.TestKWaySerialParallelIdentical.
func TestPartitionWorkerDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pts, wgts := randPoints(r, 5000, 2)
	base, err := Partition(pts, wgts, 2, 3, 12, Options{K: 12, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	saved := parallelCutoff
	defer func() { parallelCutoff = saved }()
	for _, cutoff := range []int{saved, 1} {
		parallelCutoff = cutoff
		for _, w := range []int{1, 2, 3, 8} {
			got, err := Partition(pts, wgts, 2, 3, 12, Options{K: 12, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("cutoff=%d workers=%d: label[%d] = %d, want %d", cutoff, w, i, got[i], base[i])
				}
			}
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	pts := []geom.Point{geom.P3(0, 0, 0)}
	if _, err := Partition(pts, []int32{1}, 1, 4, 2, Options{}); err == nil {
		t.Error("accepted dim=4")
	}
	if _, err := Partition(pts, []int32{1}, 1, 3, 0, Options{}); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Partition(pts, []int32{1, 1}, 2, 3, 2, Options{Bits: 40}); err == nil {
		t.Error("accepted bits=40 in 3D")
	}
	if _, err := Partition(pts, []int32{1, 1, 1}, 2, 3, 2, Options{}); err == nil {
		t.Error("accepted mismatched weight length")
	}
	// Degenerate geometry (all points coincident) still partitions.
	same := make([]geom.Point, 10)
	w := make([]int32, 10)
	for i := range w {
		w[i] = 1
	}
	labels, err := Partition(same, w, 1, 3, 3, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 3)
	for _, l := range labels {
		seen[l] = true
	}
	for p, ok := range seen {
		if !ok {
			t.Errorf("coincident points: part %d empty", p)
		}
	}
}
