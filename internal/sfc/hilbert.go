// Package sfc implements a Hilbert space-filling-curve partitioner
// (Borrell et al., arXiv:2007.03518): node coordinates are quantized
// onto a 2^bits grid, mapped to their position along the Hilbert
// curve, sorted, and the curve is split into k contiguous segments by
// a multi-constraint prefix-sum scan. The result is a near-linear-time
// geometric partitioning — the "answer in milliseconds" fast path next
// to the multilevel multi-constraint pipeline — with locality inherited
// from the curve instead of from edge-cut refinement.
//
// Everything in this package is deterministic: the curve encoding is a
// pure function, the sort has a strict total order (key, then index),
// and parallelism (chunked key computation and merge sort on
// internal/pool) never changes the output for any worker count.
package sfc

import "fmt"

// MaxBits returns the largest supported bits-per-axis for a dims-
// dimensional curve: the full Hilbert index must fit in 64 bits.
func MaxBits(dims int) int { return 63 / dims }

// Encode maps a dims-dimensional grid coordinate (bits bits per axis,
// dims*bits <= 63) to its index along the Hilbert curve. Axes beyond
// dims are ignored. The mapping is a bijection between the grid and
// [0, 2^(dims*bits)): Decode inverts it exactly.
//
// The implementation is Skilling's transpose algorithm ("Programming
// the Hilbert curve", AIP 2004): convert the axes to the transposed
// bit-interleaved form in place, then gather the interleaved bits into
// a single integer.
func Encode(axes [3]uint32, dims, bits int) uint64 {
	x := axes
	axesToTranspose(x[:dims], bits)
	// Interleave: the index's most significant bit is x[0]'s MSB, then
	// x[1]'s MSB, ..., x[dims-1]'s MSB, then x[0]'s next bit, and so on.
	var h uint64
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < dims; i++ {
			h = h<<1 | uint64(x[i]>>uint(b)&1)
		}
	}
	return h
}

// Decode is the inverse of Encode: it maps a Hilbert index back to the
// grid coordinate it encodes.
func Decode(h uint64, dims, bits int) [3]uint32 {
	var x [3]uint32
	// De-interleave, consuming the index from its most significant
	// (dims*bits)-bit downwards.
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < dims; i++ {
			x[i] |= uint32(h>>uint((b*dims)+(dims-1-i))&1) << uint(b)
		}
	}
	transposeToAxes(x[:dims], bits)
	return x
}

// axesToTranspose converts grid coordinates to the transposed Hilbert
// index form in place (Skilling's AxestoTranspose).
func axesToTranspose(x []uint32, bits int) {
	n := len(x)
	m := uint32(1) << uint(bits-1)
	// Inverse undo excess work.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts the transposed Hilbert index form back to
// grid coordinates in place (Skilling's TransposetoAxes).
func transposeToAxes(x []uint32, bits int) {
	n := len(x)
	end := uint32(2) << uint(bits-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != end; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// validateCurve checks the (dims, bits) parameters shared by Encode,
// Decode, and the partitioner.
func validateCurve(dims, bits int) error {
	if dims != 2 && dims != 3 {
		return fmt.Errorf("sfc: dims = %d, want 2 or 3", dims)
	}
	if bits < 1 || bits > MaxBits(dims) {
		return fmt.Errorf("sfc: bits = %d, want 1..%d for %d dims", bits, MaxBits(dims), dims)
	}
	return nil
}
