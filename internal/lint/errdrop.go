package lint

// errdrop flags expression-statement calls that discard a non-nil
// error result in non-test files: a silently dropped error from an
// encoder, a Flush, a Close on a written file, or a checkpoint write
// turns a hard failure into corrupted-but-plausible output.
//
// Allowlisted sinks, where ignoring the error is the established
// idiom and failure is either impossible or consciously best-effort:
//
//   - the fmt print family (fmt.Print*, fmt.Fprint* — stdout-style
//     human output is best-effort by design here; errors from the
//     underlying writer surface at Flush/Close, which are checked);
//   - methods on strings.Builder and bytes.Buffer, documented to
//     never return a non-nil error;
//   - the write methods of bufio.Writer (not Flush): its error is
//     sticky, so intermediate write errors resurface at Flush — which
//     this analyzer does require to be handled;
//   - pool.Group.Submit / Fork, which are owned by the syncmisuse
//     analyzer so one violation yields one diagnostic.
//
// Deliberate discards are written as `_ = f()` — visible in review —
// or carry //lint:ignore errdrop <reason>.

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrDrop returns the errdrop analyzer.
func ErrDrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "flag expression statements that silently discard an error result",
		Run:  runErrDrop,
	}
}

func runErrDrop(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok || !callReturnsError(p, call) || errDropAllowed(p, call) {
				return true
			}
			out = append(out, Finding{Pos: stmt.Pos(), Message: fmt.Sprintf(
				"%s discards its error result; handle it, assign to _, or annotate with //lint:ignore errdrop <reason>",
				callName(p, call))})
			return true
		})
	}
	return out
}

// callReturnsError reports whether the call's results include an
// error.
func callReturnsError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errDropAllowed applies the allowlist.
func errDropAllowed(p *Package, call *ast.CallExpr) bool {
	fn := calleeOf(p, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	switch {
	case pkgSuffixIs(fn, "fmt") && (name == "Print" || name == "Printf" || name == "Println" ||
		name == "Fprint" || name == "Fprintf" || name == "Fprintln"):
		return true
	case recvNameOf(fn) == "Builder" && pkgSuffixIs(fn, "strings"):
		return true
	case recvNameOf(fn) == "Buffer" && pkgSuffixIs(fn, "bytes"):
		return true
	case recvNameOf(fn) == "Writer" && pkgSuffixIs(fn, "bufio") &&
		(name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune"):
		return true
	case isMethod(fn, "internal/pool", "Group", "Submit"), isMethod(fn, "internal/pool", "Group", "Fork"):
		return true // syncmisuse owns these
	}
	return false
}

// callName renders a short name for the call ("json.NewEncoder(w).Encode").
func callName(p *Package, call *ast.CallExpr) string {
	if fn := calleeOf(p, call); fn != nil {
		if recv := recvNameOf(fn); recv != "" {
			return fmt.Sprintf("(%s).%s", recv, fn.Name())
		}
		if fn.Pkg() != nil {
			return fmt.Sprintf("%s.%s", fn.Pkg().Name(), fn.Name())
		}
		return fn.Name()
	}
	return "call"
}
