package lint

// Package loading without golang.org/x/tools: walk the module's
// directories, parse every .go file with go/parser, and type-check
// with go/types. Imports inside the module are resolved by
// type-checking the imported directory's non-test sources (cached,
// recursive); standard-library imports fall back to go/importer's
// default (gc export data). The result is full type information for
// every linted package while go.mod stays stdlib-only.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked lint unit: either a directory's package
// (in-package _test.go files included, so test helpers are linted
// too) or the directory's external _test package.
type Package struct {
	Path  string // import path ("<module>/internal/partition"); "_test" suffix for external test units
	Name  string // package name as declared ("partition", "partition_test", "main")
	Root  string // module root directory (for relative file names)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// relFile returns filename relative to the module root, with forward
// slashes, for stable cross-machine diagnostics.
func (p *Package) relFile(filename string) string {
	if rel, err := filepath.Rel(p.Root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// BaseName returns the package name with any external-test "_test"
// suffix stripped, so analyzers scoped by package (detrand's
// determinism-critical set) cover a package's external tests too.
func (p *Package) BaseName() string {
	return strings.TrimSuffix(p.Name, "_test")
}

// IsTestFile reports whether the file containing pos is a _test.go
// file.
func (p *Package) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// loader resolves imports for type-checking. It implements
// types.Importer: module-internal paths are type-checked from source
// (non-test files only) and cached; everything else (the standard
// library) goes through the default gc importer.
type loader struct {
	root     string
	modPath  string
	fset     *token.FileSet
	fallback types.Importer
	cache    map[string]*types.Package
	loading  map[string]bool // import-cycle guard
}

func newLoader(root, modPath string) *loader {
	return &loader{
		root:     root,
		modPath:  modPath,
		fset:     token.NewFileSet(),
		fallback: importer.Default(),
		cache:    map[string]*types.Package{},
		loading:  map[string]bool{},
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if l.loading[path] {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)

		dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
		files, err := l.parseDir(dir, func(name string) bool {
			return !strings.HasSuffix(name, "_test.go")
		})
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("lint: no Go files for %q in %s", path, dir)
		}
		pkg, err := l.check(path, files, nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.fallback.Import(path)
}

// parseDir parses every .go file in dir whose base name passes keep,
// in sorted name order (determinism). Files beginning with "_" or "."
// are skipped, as the go tool does.
func (l *loader) parseDir(dir string, keep func(name string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if keep != nil && !keep(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks files as the package at path. When info is nil a
// throwaway Info is used (dependency loads don't need one).
func (l *loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	conf := types.Config{Importer: l}
	if info == nil {
		info = newInfo()
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// Load parses and type-checks the packages matched by patterns
// (relative to the module at root). Supported pattern forms mirror the
// go tool's: "./dir" for one directory, "./dir/..." for a directory
// tree, "." / "./..." for the root. Directories named "testdata",
// hidden directories, and directories without .go files are skipped.
//
// Each matched directory yields up to two Packages: the directory's
// package including its in-package _test.go files, and — when present
// — the external "<pkg>_test" package.
func Load(root string, patterns []string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

// LoadDir type-checks a single directory outside the normal pattern
// walk (the golden-file testdata fixtures). Imports that start with
// the module path of moduleRoot resolve against that module, so
// fixtures may import the repo's real packages.
func LoadDir(moduleRoot, dir string) ([]*Package, error) {
	moduleRoot, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(moduleRoot)
	if err != nil {
		return nil, err
	}
	l := newLoader(moduleRoot, modPath)
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadDir(abs)
}

// loadDir builds the lint units for one directory.
func (l *loader) loadDir(dir string) ([]*Package, error) {
	all, err := l.parseDir(dir, nil)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	importPath := l.modPath
	if rel, err := filepath.Rel(l.root, dir); err == nil && rel != "." && !strings.HasPrefix(rel, "..") {
		importPath = l.modPath + "/" + filepath.ToSlash(rel)
	}

	// Split the directory into the main unit (package P, _test.go
	// included) and the external test unit (package P_test). The main
	// package name is the one declared by a non-test file; an all-test
	// directory falls back to the first name seen.
	var mainName string
	for _, f := range all {
		name := f.Name.Name
		fname := l.fset.Position(f.Package).Filename
		if !strings.HasSuffix(fname, "_test.go") && !strings.HasSuffix(name, "_test") {
			mainName = name
			break
		}
	}
	if mainName == "" {
		mainName = strings.TrimSuffix(all[0].Name.Name, "_test")
	}
	var mainFiles, extFiles []*ast.File
	for _, f := range all {
		if f.Name.Name == mainName+"_test" {
			extFiles = append(extFiles, f)
		} else {
			mainFiles = append(mainFiles, f)
		}
	}

	var out []*Package
	if len(mainFiles) > 0 {
		info := newInfo()
		tpkg, err := l.check(importPath, mainFiles, info)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			Path: importPath, Name: tpkg.Name(), Root: l.root,
			Fset: l.fset, Files: mainFiles, Types: tpkg, Info: info,
		})
	}
	if len(extFiles) > 0 {
		info := newInfo()
		tpkg, err := l.check(importPath+"_test", extFiles, info)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			Path: importPath + "_test", Name: tpkg.Name(), Root: l.root,
			Fset: l.fset, Files: extFiles, Types: tpkg, Info: info,
		})
	}
	return out, nil
}

// expandPatterns resolves go-tool-style package patterns to a sorted,
// de-duplicated list of absolute directories containing .go files.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		fi, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			}
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasPrefix(name, "_") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
