package lint

// goroleak flags `go` statements with no visible lifecycle owner. The
// serving chaos test audits zero leaked goroutines after drain; that
// property holds because every goroutine in the tree is joined or
// signalled by something — a WaitGroup, a done channel, a result
// send, a pool.Group, or an http.Server whose Shutdown is the join.
// A `go` statement with none of those is a goroutine the drain cannot
// account for.
//
// Ownership evidence, checked structurally:
//
//   - the spawned function literal's body calls sync.WaitGroup.Done,
//     closes a channel, or sends on a channel (a rendezvous with a
//     receiver is a join);
//   - the literal's body calls (http.Server).Serve / ListenAndServe /
//     ListenAndServeTLS (Shutdown/Close joins those);
//   - the enclosing function calls sync.WaitGroup.Add lexically
//     before the go statement (the `wg.Add(n); for ... { go ... }`
//     idiom, where Done lives in the spawned named method).
//
// Goroutines whose lifecycle is managed elsewhere (a worker joined by
// a custom condition-variable protocol, a deliberate
// process-lifetime helper) carry a reasoned //lint:ignore goroleak.
// Non-test files only; test goroutines are the leak audit's job.

import (
	"go/ast"
	"go/types"
)

// GoroLeak returns the goroleak analyzer.
func GoroLeak() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc:  "flag go statements with no visible lifecycle owner (WaitGroup, done channel, result send, http.Server)",
		Run:  runGoroLeak,
	}
}

func runGoroLeak(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, body := range funcBodies(f) {
			inspectShallow(body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if goStmtOwned(p, body, g) {
					return true
				}
				out = append(out, Finding{Pos: g.Pos(), Message: "go statement has no visible lifecycle owner " +
					"(no WaitGroup Add/Done, done-channel close or send, or http.Server serve loop) — " +
					"a goroutine the drain cannot join leaks past shutdown"})
				return true
			})
		}
	}
	return out
}

// goStmtOwned reports whether the go statement shows any ownership
// evidence.
func goStmtOwned(p *Package, body *ast.BlockStmt, g *ast.GoStmt) bool {
	// wg.Add(...) lexically before the spawn in the same body.
	addBefore := false
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() {
			return true
		}
		if isMethod(calleeOf(p, call), "sync", "WaitGroup", "Add") {
			addBefore = true
		}
		return !addBefore
	})
	if addBefore {
		return true
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	// Ownership signals anywhere in the spawned literal, nested
	// literals included (a deferred closure calling Done counts).
	owned := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			owned = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					owned = true // builtin close: a done-channel broadcast
				}
			}
			fn := calleeOf(p, n)
			switch {
			case isMethod(fn, "sync", "WaitGroup", "Done"):
				owned = true
			case isMethod(fn, "net/http", "Server", "Serve"),
				isMethod(fn, "net/http", "Server", "ListenAndServe"),
				isMethod(fn, "net/http", "Server", "ListenAndServeTLS"):
				owned = true
			}
		}
		return !owned
	})
	return owned
}
