package lint

// slogkey enforces the structured-logging contract behind the
// log-derived dashboards: every slog attribute key is a constant
// snake_case string literal, no call repeats a key, and no key is
// left without a value. A dynamic key fractures every query written
// against the field; a duplicate silently shadows; a dangling key
// shifts the whole tail into `!BADKEY` pairs at runtime.
//
// Sinks: the slog.Logger output methods (Debug/Info/Warn/Error, their
// *Context forms, Log, LogAttrs) plus With, the package-level
// equivalents, and the server's logEvent wrapper. Positional
// arguments before the key/value tail (ctx, level, the message) are
// skipped; slog.Attr-typed arguments consume one slot, and the attr
// constructors (slog.String, slog.Int, ...) have their key argument
// checked the same way. Calls that splat a []any (args...) are not
// analyzable and are skipped — the one splat site is the logEvent
// wrapper, whose call sites are all checked. Non-test files only.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// snakeCaseRE is the sanctioned key shape (also prom-safe, so log
// fields and metric names share one grammar).
var snakeCaseRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// SlogKey returns the slogkey analyzer.
func SlogKey() *Analyzer {
	return &Analyzer{
		Name: "slogkey",
		Doc:  "require constant snake_case slog keys, no duplicates in a call, no dangling key",
		Run:  runSlogKey,
	}
}

func runSlogKey(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kvStart, isSink := slogSink(p, call)
			if !isSink || call.Ellipsis.IsValid() {
				return true
			}
			out = append(out, checkKVTail(p, call.Args, kvStart)...)
			return true
		})
	}
	return out
}

// slogSink classifies a call as a structured-logging sink and returns
// the index where its key/value tail starts.
func slogSink(p *Package, call *ast.CallExpr) (kvStart int, ok bool) {
	fn := calleeOf(p, call)
	if fn == nil {
		return 0, false
	}
	onLogger := recvNameOf(fn) == "Logger" && pkgSuffixIs(fn, "log/slog")
	pkgLevel := recvNameOf(fn) == "" && pkgSuffixIs(fn, "log/slog")
	switch fn.Name() {
	case "Debug", "Info", "Warn", "Error":
		if onLogger || pkgLevel {
			return 1, true // (msg, kv...)
		}
	case "DebugContext", "InfoContext", "WarnContext", "ErrorContext":
		if onLogger || pkgLevel {
			return 2, true // (ctx, msg, kv...)
		}
	case "Log":
		if onLogger || pkgLevel {
			return 3, true // (ctx, level, msg, kv...)
		}
	case "With":
		if onLogger || pkgLevel {
			return 0, true // (kv...)
		}
	case "Group":
		if pkgLevel {
			return 1, true // (key, kv...); the key itself is arg 0
		}
	}
	if isMethod(fn, "internal/server", "Server", "logEvent") {
		return 1, true // (event, kv...)
	}
	return 0, false
}

// slogAttrConstructors are the package-level helpers whose first
// argument is a key.
var slogAttrConstructors = map[string]bool{
	"String": true, "Int": true, "Int64": true, "Uint64": true,
	"Float64": true, "Bool": true, "Time": true, "Duration": true,
	"Any": true, "Group": true,
}

// checkKVTail validates args[kvStart:] as an alternating key/value
// tail with slog.Attr values consuming one slot.
func checkKVTail(p *Package, args []ast.Expr, kvStart int) []Finding {
	var out []Finding
	seen := map[string]bool{}
	for i := kvStart; i < len(args); {
		arg := args[i]
		if isSlogAttr(p, arg) {
			if call, ok := ast.Unparen(arg).(*ast.CallExpr); ok && len(call.Args) > 0 {
				fn := calleeOf(p, call)
				if fn != nil && recvNameOf(fn) == "" && pkgSuffixIs(fn, "log/slog") && slogAttrConstructors[fn.Name()] {
					out = append(out, checkKey(p, call.Args[0], seen)...)
				}
			}
			i++
			continue
		}
		out = append(out, checkKey(p, arg, seen)...)
		if i+1 >= len(args) {
			out = append(out, Finding{Pos: arg.Pos(), Message: "slog key has no value (odd-length key/value tail); at runtime the tail degrades into !BADKEY pairs"})
		}
		i += 2
	}
	return out
}

// checkKey validates one key expression: constant, snake_case, and
// not yet seen in this call.
func checkKey(p *Package, key ast.Expr, seen map[string]bool) []Finding {
	tv, ok := p.Info.Types[key]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return []Finding{{Pos: key.Pos(), Message: fmt.Sprintf(
			"slog key must be a constant string (got %s) — a dynamic key fractures every dashboard query written against the field",
			exprText(p.Fset, key))}}
	}
	k := constant.StringVal(tv.Value)
	var out []Finding
	if !snakeCaseRE.MatchString(k) {
		out = append(out, Finding{Pos: key.Pos(), Message: fmt.Sprintf(
			"slog key %q is not snake_case (want %s)", k, snakeCaseRE.String())})
	}
	if seen[k] {
		out = append(out, Finding{Pos: key.Pos(), Message: fmt.Sprintf(
			"duplicate slog key %q in one call; the handler keeps both and queries see either", k)})
	}
	seen[k] = true
	return out
}

// isSlogAttr reports whether the expression's type is log/slog.Attr.
func isSlogAttr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Attr" && obj.Pkg() != nil && obj.Pkg().Path() == "log/slog"
}
