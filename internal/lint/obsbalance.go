package lint

// obsbalance enforces the start/stop discipline of the observability
// layer: every obs.Collector.Start timer must have its stop function
// invoked, and every span created by obs.StartSpan / Tracer.Root /
// Span.Child must reach a matching End. An unbalanced timer silently
// loses a phase from every report; an un-Ended span vanishes from the
// trace and breaks the B/E balance tracecheck relies on.
//
// The check is structural rather than fully path-sensitive:
//
//   - discarding the handle (expression statement, or assigning the
//     span to _) is always a violation — nothing can ever close it;
//   - `defer c.Start("x")` (missing the trailing call) starts the
//     timer at function exit and is flagged specially;
//   - a handle held in a variable must be closed somewhere in the
//     enclosing function — a deferred close (directly or inside a
//     deferred closure) balances every path, while a plain close with
//     an intervening early `return` between start and close is
//     flagged as leaking on that path;
//   - handles that escape (returned, passed to another function,
//     stored in a field or composite) are assumed closed elsewhere.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ObsBalance returns the obsbalance analyzer.
func ObsBalance() *Analyzer {
	return &Analyzer{
		Name: "obsbalance",
		Doc:  "every obs timer start and span must be stopped/ended on all paths",
		Run:  runObsBalance,
	}
}

func runObsBalance(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, body := range funcBodies(f) {
			out = append(out, obsBalanceInFunc(p, body)...)
		}
	}
	return out
}

// obsKind distinguishes the two handle shapes.
type obsKind int

const (
	obsTimer obsKind = iota // c.Start(...) -> func()
	obsSpan                 // StartSpan/Root/Child -> *obs.Span
)

// obsCreation is one timer/span creation bound to a variable, with
// the closing obligation to discharge.
type obsCreation struct {
	pos  token.Pos
	kind obsKind
	what string // "timer \"x\"" or "span \"y\"" for messages
	obj  types.Object
}

func obsBalanceInFunc(p *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	var creations []obsCreation

	record := func(kind obsKind, what string, lhs ast.Expr, pos token.Pos) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return // stored into a field/index: escapes, closed elsewhere
		}
		if id.Name == "_" {
			out = append(out, Finding{Pos: pos, Message: fmt.Sprintf("%s is assigned to _ and can never be %s", what, closeVerb(kind))})
			return
		}
		obj := objOf(p, id)
		if obj == nil {
			return
		}
		creations = append(creations, obsCreation{pos: pos, kind: kind, what: what, obj: obj})
	}

	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if kind, what, ok := obsCreationCall(p, n.X); ok {
				out = append(out, Finding{Pos: n.Pos(), Message: fmt.Sprintf("%s is discarded; it can never be %s", what, closeVerb(kind))})
			}
		case *ast.DeferStmt:
			if kind, what, ok := obsCreationCall(p, n.Call); ok && kind == obsTimer {
				out = append(out, Finding{Pos: n.Pos(), Message: fmt.Sprintf("defer starts %s at function exit and discards the stop; write `defer c.Start(...)()`", what)})
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if kind, what, ok := obsCreationCall(p, n.Rhs[0]); ok {
					switch {
					case kind == obsSpan && len(n.Lhs) == 2:
						record(kind, what, n.Lhs[1], n.Rhs[0].Pos()) // ctx, span := obs.StartSpan(...)
					case len(n.Lhs) == 1:
						record(kind, what, n.Lhs[0], n.Rhs[0].Pos())
					}
				}
			}
		}
		return true
	})

	for _, c := range creations {
		out = append(out, checkObligation(p, body, c)...)
	}
	return out
}

func closeVerb(kind obsKind) string {
	if kind == obsTimer {
		return "stopped"
	}
	return "ended"
}

// obsCreationCall recognizes expressions that open a timer or span.
// For spans it distinguishes the two-result StartSpan (handled by the
// caller via the second assignment slot) from the single-result
// Root/Child.
func obsCreationCall(p *Package, e ast.Expr) (obsKind, string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return 0, "", false
	}
	fn := calleeOf(p, call)
	if fn == nil {
		return 0, "", false
	}
	label := func(kind string) string {
		if len(call.Args) > 0 {
			if lit, ok := ast.Unparen(nameArgOf(fn, call)).(*ast.BasicLit); ok {
				return fmt.Sprintf("%s %s", kind, lit.Value)
			}
		}
		return kind
	}
	switch {
	case isMethod(fn, "internal/obs", "Collector", "Start"):
		return obsTimer, label("obs timer"), true
	case isPkgFunc(fn, "internal/obs", "StartSpan"),
		isMethod(fn, "internal/obs", "Tracer", "Root"),
		isMethod(fn, "internal/obs", "Span", "Child"):
		return obsSpan, label("span"), true
	}
	return 0, "", false
}

// nameArgOf picks the argument holding the phase/span name: the
// second for StartSpan(ctx, name, ...), the first otherwise.
func nameArgOf(fn *types.Func, call *ast.CallExpr) ast.Expr {
	if fn.Name() == "StartSpan" && len(call.Args) > 1 {
		return call.Args[1]
	}
	return call.Args[0]
}

// checkObligation verifies that the handle bound in c is closed:
// stop() called for timers, .End() called for spans. Deferred closes
// (defer stmt or inside a deferred closure) balance all paths; a plain
// close is accepted unless an early return sits between the creation
// and the first close. Any other use of the handle counts as an
// escape and discharges the obligation.
func checkObligation(p *Package, body *ast.BlockStmt, c obsCreation) []Finding {
	deferredFns := deferredFuncLits(body)

	var plainClose, deferredClose, escaped bool
	firstPlain := token.NoPos

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if closesHandle(p, n.Call, c) {
				deferredClose = true
				return false
			}
		case *ast.CallExpr:
			if closesHandle(p, n, c) {
				if inDeferredLit(n.Pos(), deferredFns) {
					deferredClose = true
				} else {
					plainClose = true
					if firstPlain == token.NoPos || n.Pos() < firstPlain {
						firstPlain = n.Pos()
					}
				}
				return true
			}
		case *ast.Ident:
			if n.Pos() > c.pos && objOf(p, n) == c.obj && !identUseExempt(p, n, c) {
				escaped = true
			}
		}
		return true
	})

	if escaped || deferredClose {
		return nil
	}
	if !plainClose {
		return []Finding{{Pos: c.pos, Message: fmt.Sprintf("%s is never %s in this function", c.what, closeVerb(c.kind))}}
	}
	// Plain close only: an early return between creation and close
	// leaks the handle on that path.
	var bad token.Pos
	inspectShallow(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if ok && bad == token.NoPos && ret.Pos() > c.pos && ret.Pos() < firstPlain {
			bad = ret.Pos()
		}
		return true
	})
	if bad != token.NoPos {
		return []Finding{{Pos: bad, Message: fmt.Sprintf("return may skip closing %s started earlier; close it with defer", c.what)}}
	}
	return nil
}

// closesHandle reports whether call is `handle()` (timer) or
// `handle.End()` (span) for the tracked object.
func closesHandle(p *Package, call *ast.CallExpr, c obsCreation) bool {
	switch c.kind {
	case obsTimer:
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && objOf(p, id) == c.obj
	case obsSpan:
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		return ok && objOf(p, id) == c.obj
	}
	return false
}

// identUseExempt reports whether this use of the handle cannot
// transfer the close obligation elsewhere: the handle's own close
// call (`stop()`, `span.End()`) or any method call with the handle in
// receiver position (`span.Event(...)` records but does not end).
// Every other use — argument, return value, store — is an escape and
// the obligation is assumed discharged by the new owner.
func identUseExempt(p *Package, id *ast.Ident, c obsCreation) bool {
	path := nodePath(p, id)
	if len(path) < 2 {
		return false
	}
	parent := path[len(path)-2]
	if call, ok := parent.(*ast.CallExpr); ok && call.Fun == ast.Expr(id) {
		return closesHandle(p, call, c)
	}
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) && len(path) >= 3 {
		if call, ok := path[len(path)-3].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
			return true // method call on the handle
		}
	}
	return false
}

// nodePath returns the chain of enclosing nodes for the identifier
// within its file, outermost first and the identifier itself last.
func nodePath(p *Package, id *ast.Ident) []ast.Node {
	var file *ast.File
	for _, f := range p.Files {
		if within(id.Pos(), f) {
			file = f
			break
		}
	}
	if file == nil {
		return nil
	}
	var path []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || !within(id.Pos(), n) {
			return false
		}
		path = append(path, n)
		return true
	})
	return path
}

// deferredFuncLits collects function literals invoked directly by a
// defer statement (`defer func(){ ... }()`): closes inside them run on
// every path, like a direct defer.
func deferredFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

func inDeferredLit(pos token.Pos, lits []*ast.FuncLit) bool {
	for _, lit := range lits {
		if within(pos, lit) {
			return true
		}
	}
	return false
}
