package lint

// Shared AST/type-resolution helpers used by the analyzers. Package
// identity is matched by import-path suffix ("internal/obs") rather
// than the full module path, so the checks keep working if the module
// is ever renamed and so testdata fixtures importing the real
// packages resolve identically.

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// calleeOf resolves the statically-known function or method a call
// invokes, or nil (builtins, calls through function values,
// conversions).
func calleeOf(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// pkgSuffixIs reports whether fn is declared in a package whose import
// path is suffix or ends in "/"+suffix.
func pkgSuffixIs(fn *types.Func, suffix string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// recvNameOf returns the name of fn's receiver's named type ("" for
// package-level functions).
func recvNameOf(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// isMethod reports whether fn is the method recvName.name declared in
// a package whose path ends in pkgSuffix.
func isMethod(fn *types.Func, pkgSuffix, recvName, name string) bool {
	return fn != nil && fn.Name() == name && recvNameOf(fn) == recvName && pkgSuffixIs(fn, pkgSuffix)
}

// isPkgFunc reports whether fn is the package-level function
// pkgSuffix.name.
func isPkgFunc(fn *types.Func, pkgSuffix, name string) bool {
	return fn != nil && fn.Name() == name && recvNameOf(fn) == "" && pkgSuffixIs(fn, pkgSuffix)
}

// importedPkgOf returns the imported package a selector's base names
// (e.g. the "rand" in rand.Intn), or nil when the base is not a
// package name.
func importedPkgOf(p *Package, x ast.Expr) *types.Package {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// exprText renders an expression back to source, for comparing "the
// slice appended to" with "the slice sorted" textually.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// inspectShallow walks n in source order like ast.Inspect but does not
// descend into nested function literals, so a function body can be
// analyzed without seeing statements that execute in a different
// function.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok && node != n {
			return false
		}
		return fn(node)
	})
}

// funcBodies returns every function body in the file — declarations
// and literals — in source order.
func funcBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// objOf resolves an identifier to its object (defs or uses).
func objOf(p *Package, id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// within reports whether pos lies inside node's source range.
func within(pos token.Pos, node ast.Node) bool {
	return node.Pos() <= pos && pos < node.End()
}
