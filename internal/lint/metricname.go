package lint

// metricname statically guarantees WritePrometheus family stability:
// every obs.Collector metric name (Start/Observe/Add/Max/Hist) must
// be a constant prom-safe literal, and the exposition families those
// names render to must not collide across categories. The renderer
// maps a counter `name` to family `name_total`, a gauge to `name`,
// and a histogram (Start/Observe/Hist) to `name` plus `name_bucket`,
// `name_sum`, `name_count` — so a counter "x" and a gauge "x_total"
// would silently merge on the scrape side, and nothing at runtime
// would notice.
//
// The same-name/same-category case is a merge, not a collision: many
// call sites feeding one counter is the normal shape. Dynamic names
// (built with + or Sprintf) are flagged; a handful of bounded,
// registry-derived dynamic names carry reasoned ignores. The full
// constant-name inventory is checked into metricnames.txt and pinned
// by TestLintSelfMetricRegistry, so a rename shows up in review as a
// registry diff, not as a silent dashboard break. Non-test files
// only.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"sort"
)

// metricUse is one Collector call with a constant name.
type metricUse struct {
	name     string
	category string // "counter", "gauge", "hist"
	pos      ast.Node
}

// metricCategories maps Collector method -> rendered category.
var metricCategories = map[string]string{
	"Add":     "counter",
	"Max":     "gauge",
	"Start":   "hist",
	"Observe": "hist",
	"Hist":    "hist",
}

// renderedFamilies returns the Prometheus family names a metric
// reserves, mirroring Report.WritePrometheus.
func renderedFamilies(name, category string) []string {
	switch category {
	case "counter":
		return []string{name + "_total"}
	case "gauge":
		return []string{name}
	default: // hist
		return []string{name, name + "_bucket", name + "_sum", name + "_count"}
	}
}

// MetricName returns the metricname analyzer. The returned instance
// carries the cross-package family table, so one instance sees the
// whole run (Analyzers() constructs a fresh instance per run).
func MetricName() *Analyzer {
	type famOwner struct {
		name, category, site string
	}
	families := map[string]famOwner{}
	return &Analyzer{
		Name: "metricname",
		Doc:  "require constant prom-safe Collector metric names with collision-free exposition families",
		Run: func(p *Package) []Finding {
			var out []Finding
			uses, bad := collectorMetrics(p)
			out = append(out, bad...)
			for _, u := range uses {
				if !snakeCaseRE.MatchString(u.name) {
					out = append(out, Finding{Pos: u.pos.Pos(), Message: fmt.Sprintf(
						"metric name %q is not prom-safe (want %s)", u.name, snakeCaseRE.String())})
					continue
				}
				site := fmt.Sprintf("%s:%d", p.relFile(p.Fset.Position(u.pos.Pos()).Filename), p.Fset.Position(u.pos.Pos()).Line)
				for _, fam := range renderedFamilies(u.name, u.category) {
					owner, taken := families[fam]
					if !taken {
						families[fam] = famOwner{name: u.name, category: u.category, site: site}
						continue
					}
					if owner.name == u.name && owner.category == u.category {
						continue // same metric, another call site: a merge
					}
					out = append(out, Finding{Pos: u.pos.Pos(), Message: fmt.Sprintf(
						"%s %q renders Prometheus family %q, already reserved by %s %q at %s — the scrape side would silently merge them",
						u.category, u.name, fam, owner.category, owner.name, owner.site)})
				}
			}
			return out
		},
	}
}

// collectorMetrics extracts every obs.Collector metric call in p's
// non-test files: constant-named uses, plus findings for dynamic
// names.
func collectorMetrics(p *Package) (uses []metricUse, bad []Finding) {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeOf(p, call)
			if fn == nil || !isMethod(fn, "internal/obs", "Collector", fn.Name()) {
				return true
			}
			category, ok := metricCategories[fn.Name()]
			if !ok {
				return true
			}
			nameArg := call.Args[0]
			tv, ok := p.Info.Types[nameArg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				bad = append(bad, Finding{Pos: nameArg.Pos(), Message: fmt.Sprintf(
					"metric name must be a constant string (got %s) — a dynamic name creates unbounded Prometheus families",
					exprText(p.Fset, nameArg))})
				return true
			}
			uses = append(uses, metricUse{name: constant.StringVal(tv.Value), category: category, pos: nameArg})
			return true
		})
	}
	return uses, bad
}

// MetricNames returns the sorted, de-duplicated "<category> <name>"
// inventory of every constant Collector metric in pkgs — the registry
// that metricnames.txt pins. Dynamic and non-prom-safe names are the
// analyzer's business and are excluded here.
func MetricNames(pkgs []*Package) []string {
	seen := map[string]bool{}
	for _, p := range pkgs {
		uses, _ := collectorMetrics(p)
		for _, u := range uses {
			if snakeCaseRE.MatchString(u.name) {
				seen[u.category+" "+u.name] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
