package lint

// detrand enforces the sanctioned-randomness rule of the determinism
// contract (DESIGN.md §9): inside the determinism-critical packages —
// the ones whose outputs must be byte-identical across runs, worker
// counts, and resume boundaries — the only source of randomness is a
// seeded *rand.Rand threaded through options, and wall-clock time
// never feeds an algorithm. Concretely it forbids, in those packages:
//
//   - the global top-level math/rand (and math/rand/v2) convenience
//     functions (rand.Intn, rand.Shuffle, rand.Seed, ...), whose
//     process-global source makes output depend on call interleaving;
//   - rand.New with no arguments (math/rand/v2's auto-seeded form);
//   - time.Now and time.Since, which smuggle the wall clock in.
//
// Timing-only uses (phase timers that never influence results) are
// annotated at the call site with //lint:ignore detrand <reason>.

import (
	"fmt"
	"go/ast"
)

// detRandCritical is the set of determinism-critical package names:
// everything on the partition→tree→measurement path whose output the
// paper comparison depends on. External test packages ("partition_test")
// are covered via Package.BaseName.
var detRandCritical = map[string]bool{
	"partition": true,
	"rcb":       true,
	"dtree":     true,
	"matching":  true,
	"mlrcb":     true,
	"meshgen":   true,
	"sim":       true,
	"graph":     true,
	"sfc":       true,
	"bkmeans":   true,
}

// detRandGlobals are the math/rand (v1 and v2) top-level functions
// backed by the process-global source.
var detRandGlobals = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

// DetRand returns the detrand analyzer.
func DetRand() *Analyzer {
	return &Analyzer{
		Name: "detrand",
		Doc:  "forbid global math/rand and wall-clock time in determinism-critical packages",
		Run:  runDetRand,
	}
}

func runDetRand(p *Package) []Finding {
	if !detRandCritical[p.BaseName()] {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg := importedPkgOf(p, sel.X)
			if pkg == nil {
				return true
			}
			switch pkg.Path() {
			case "math/rand", "math/rand/v2":
				if detRandGlobals[sel.Sel.Name] {
					out = append(out, Finding{Pos: sel.Pos(), Message: fmt.Sprintf(
						"%s.%s uses the process-global random source; thread a seeded *rand.Rand through options instead",
						pkg.Name(), sel.Sel.Name)})
				}
			case "time":
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					out = append(out, Finding{Pos: sel.Pos(), Message: fmt.Sprintf(
						"time.%s reads the wall clock inside determinism-critical package %q; results must not depend on time",
						sel.Sel.Name, p.BaseName())})
				}
			}
			return true
		})
		// rand.New() with no arguments (math/rand/v2 auto-seeds it):
		// a fresh unseeded generator is as nondeterministic as the
		// global one.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "New" || len(call.Args) != 0 {
				return true
			}
			if pkg := importedPkgOf(p, sel.X); pkg != nil &&
				(pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") {
				out = append(out, Finding{Pos: call.Pos(), Message: "rand.New with no explicit Source is auto-seeded and nondeterministic; construct it from a seed carried in options"})
			}
			return true
		})
	}
	return out
}
