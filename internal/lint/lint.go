// Package lint is a project-specific static-analysis framework built
// purely on the standard library (go/parser + go/types + go/ast, no
// golang.org/x/tools): it turns the repo's determinism and
// observability contracts — seeded randomness only in the partitioning
// pipeline, no order-dependent map iteration, every obs timer/span
// stopped, no silently dropped errors, no pool misuse — into
// build-breaking diagnostics enforced by `make lint`.
//
// The model is deliberately small. A Package is one type-checked unit
// (a directory's files, or its external _test package). An Analyzer
// inspects one Package and returns Findings (a token.Pos plus a
// message). The framework resolves positions, applies
// `//lint:ignore <analyzer> <reason>` suppression comments, and sorts
// diagnostics by file/line/column/analyzer/message so two runs over
// the same tree produce byte-identical output.
package lint

import (
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
	"time"
)

// Finding is one raw analyzer report, positioned by token.Pos within
// the package's FileSet. The framework turns Findings into
// Diagnostics.
type Finding struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one named check. Run inspects a single type-checked
// package and returns its findings; it must be deterministic (walk
// syntax in file order, never range over a map into output).
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:ignore
	Doc  string // one-line description of the contract enforced
	Run  func(p *Package) []Finding
}

// Diagnostic is one resolved, user-facing report. File is
// slash-separated and relative to the module root.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional
// file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in its fixed, documented order.
// The order never affects output (diagnostics are sorted), only the
// registry of names valid in //lint:ignore directives.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetRand(),
		MapIter(),
		ObsBalance(),
		ErrDrop(),
		SyncMisuse(),
		LockHeld(),
		GoroLeak(),
		CtxFlow(),
		SlogKey(),
		MetricName(),
	}
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int // line the comment ends on
	analyzer string
	reason   string
	bad      string // non-empty: malformed, this is the complaint
}

// parseIgnores extracts every //lint:ignore directive from the
// package's comments. A directive suppresses diagnostics of the named
// analyzer on its own line and on the line immediately below, so both
// trailing and preceding-line placement work:
//
//	t0 := time.Now() //lint:ignore detrand timing only, never branches
//
//	//lint:ignore detrand timing only, never branches
//	t0 := time.Now()
func parseIgnores(p *Package) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.End())
				d := ignoreDirective{file: pos.Filename, line: pos.Line}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					d.bad = "malformed //lint:ignore directive: want `//lint:ignore <analyzer> <reason>`"
				} else {
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// AnalyzerStat is one analyzer's share of a run: post-suppression
// diagnostic count and accumulated wall time across all packages. The
// pseudo-analyzer "lint" (directive hygiene) reports a count only.
type AnalyzerStat struct {
	Name    string
	Diags   int
	Elapsed time.Duration
}

// RunAnalyzers runs every analyzer over every package, applies
// suppression directives, and returns the sorted diagnostic list.
// Malformed directives and directives naming an unknown analyzer are
// themselves diagnostics (analyzer "lint"), so a typo cannot silently
// disable a check.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunAnalyzersStats(pkgs, analyzers)
	return diags
}

// RunAnalyzersStats is RunAnalyzers plus per-analyzer accounting, in
// registration order with the "lint" pseudo-analyzer appended. The
// stats (wall time) are for the operator; the diagnostics stay
// byte-identical across runs.
func RunAnalyzersStats(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerStat) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	type lineKey struct {
		file string
		line int
	}
	suppressed := map[lineKey]map[string]bool{}
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, d := range parseIgnores(p) {
			rel := p.relFile(d.file)
			if d.bad != "" {
				diags = append(diags, Diagnostic{File: rel, Line: d.line, Col: 1, Analyzer: "lint", Message: d.bad})
				continue
			}
			if !known[d.analyzer] {
				diags = append(diags, Diagnostic{File: rel, Line: d.line, Col: 1, Analyzer: "lint",
					Message: fmt.Sprintf("//lint:ignore names unknown analyzer %q", d.analyzer)})
				continue
			}
			k := lineKey{file: d.file, line: d.line}
			if suppressed[k] == nil {
				suppressed[k] = map[string]bool{}
			}
			suppressed[k][d.analyzer] = true
		}
	}

	elapsed := make([]time.Duration, len(analyzers))
	for _, p := range pkgs {
		for i, a := range analyzers {
			t0 := time.Now()
			findings := a.Run(p)
			elapsed[i] += time.Since(t0)
			for _, f := range findings {
				pos := p.Fset.Position(f.Pos)
				if byName := suppressed[lineKey{pos.Filename, pos.Line}]; byName[a.Name] {
					continue
				}
				if byName := suppressed[lineKey{pos.Filename, pos.Line - 1}]; byName[a.Name] {
					continue
				}
				diags = append(diags, Diagnostic{
					File: p.relFile(pos.Filename), Line: pos.Line, Col: pos.Column,
					Analyzer: a.Name, Message: f.Message,
				})
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	stats := make([]AnalyzerStat, 0, len(analyzers)+1)
	for i, a := range analyzers {
		stats = append(stats, AnalyzerStat{Name: a.Name, Diags: counts[a.Name], Elapsed: elapsed[i]})
	}
	stats = append(stats, AnalyzerStat{Name: "lint", Diags: counts["lint"]})
	return diags, stats
}

// WriteText prints one diagnostic per line in file:line:col form.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}
