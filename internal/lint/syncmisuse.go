package lint

// syncmisuse flags three concurrency foot-guns the pipeline has been
// bitten by or must never be bitten by:
//
//  1. copying a sync.Mutex / RWMutex / WaitGroup / Once / Cond by
//     value (parameter, range copy, or plain assignment): the copy
//     has its own lock state, so the original's exclusion silently
//     stops applying;
//  2. `go func(){...}()` inside a loop capturing the loop variable:
//     correct under Go 1.22 per-iteration semantics, but silently
//     wrong if the file is ever built or vendored with an older
//     toolchain — pass the variable as an argument instead, which is
//     equally clear and portable;
//  3. ignoring the error returned by pool.Group.Submit / Fork: on a
//     cancelled group the task is dropped without running, so the
//     submitting branch must propagate the error (or discard it with
//     `_ =` plus a reason) or it will wait on work that never
//     happened.
//
// Unlike errdrop, the Submit/Fork check covers _test.go files too —
// the tests are where fork-join patterns get copied from.

import (
	"fmt"
	"go/ast"
	"go/types"
)

// SyncMisuse returns the syncmisuse analyzer.
func SyncMisuse() *Analyzer {
	return &Analyzer{
		Name: "syncmisuse",
		Doc:  "flag lock copies, non-portable loop-variable captures in go statements, and ignored pool submissions",
		Run:  runSyncMisuse,
	}
}

func runSyncMisuse(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		out = append(out, lockCopies(p, f)...)
		out = append(out, goLoopCaptures(p, f)...)
		out = append(out, ignoredSubmits(p, f)...)
	}
	return out
}

// ---- check 1: locks copied by value ----

// containsLock reports whether t held by value embeds sync state that
// must not be copied.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return true
			}
		}
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func lockTypeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func lockCopies(p *Package, f *ast.File) []Finding {
	var out []Finding
	flag := func(pos ast.Node, t types.Type, how string) {
		out = append(out, Finding{Pos: pos.Pos(), Message: fmt.Sprintf(
			"%s copies %s by value; the copy carries its own lock state — use a pointer", how, lockTypeName(t))})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(p, n.Type.Params, flag)
			checkFieldList(p, n.Recv, flag)
		case *ast.FuncLit:
			checkFieldList(p, n.Type.Params, flag)
		case *ast.RangeStmt:
			if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
				if obj := objOf(p, id); obj != nil && containsLock(obj.Type(), nil) {
					flag(n.Value, obj.Type(), "range value")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				switch ast.Unparen(rhs).(type) {
				case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				default:
					continue // fresh values (composite literals, calls) are moves, not copies
				}
				if tv, ok := p.Info.Types[rhs]; ok && tv.Type != nil && containsLock(tv.Type, nil) {
					flag(rhs, tv.Type, "assignment")
				}
			}
		}
		return true
	})
	return out
}

func checkFieldList(p *Package, fl *ast.FieldList, flag func(ast.Node, types.Type, string)) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			continue
		}
		if containsLock(tv.Type, nil) {
			flag(field.Type, tv.Type, "parameter")
		}
	}
}

// ---- check 2: go statements capturing loop variables ----

func goLoopCaptures(p *Package, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		vars := enclosingLoopVars(p, f, g)
		if len(vars) == 0 {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := p.Info.Uses[id]; obj != nil && vars[obj] {
				out = append(out, Finding{Pos: id.Pos(), Message: fmt.Sprintf(
					"go statement captures loop variable %s; under pre-Go-1.22 semantics every goroutine sees the last iteration — pass it as an argument", id.Name)})
			}
			return true
		})
		return true
	})
	return out
}

// enclosingLoopVars collects the loop variables of every for/range
// statement whose body encloses the go statement.
func enclosingLoopVars(p *Package, f *ast.File, g *ast.GoStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !within(g.Pos(), n) {
			return false
		}
		switch loop := n.(type) {
		case *ast.ForStmt:
			if within(g.Pos(), loop.Body) {
				if init, ok := loop.Init.(*ast.AssignStmt); ok {
					for _, lhs := range init.Lhs {
						addIdent(lhs)
					}
				}
			}
		case *ast.RangeStmt:
			if within(g.Pos(), loop.Body) {
				addIdent(loop.Key)
				addIdent(loop.Value)
			}
		}
		return true
	})
	return vars
}

// ---- check 3: ignored pool.Group.Submit / Fork errors ----

func ignoredSubmits(p *Package, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(p, call)
		if isMethod(fn, "internal/pool", "Group", "Submit") || isMethod(fn, "internal/pool", "Group", "Fork") {
			out = append(out, Finding{Pos: stmt.Pos(), Message: fmt.Sprintf(
				"(%s).%s error ignored: a cancelled group drops the task without running it — propagate the error or discard it explicitly with `_ =` and a reason",
				"pool.Group", fn.Name())})
		}
		return true
	})
	return out
}
