// Fixture for metricname: Collector metric names must be constant,
// prom-safe, and collision-free across rendered exposition families
// (counter name -> name_total, gauge -> name, hist -> name plus
// _bucket/_sum/_count).
package metricname

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// dynamic builds a name at runtime: an unbounded family set.
func dynamic(col *obs.Collector, leg string) {
	col.Add(fmt.Sprintf("compare_%s_runs", leg), 1)
}

// notPromSafe would be rewritten by the exposition layer.
func notPromSafe(col *obs.Collector) {
	col.Max("QueueDepth", 3)
}

// collide: a gauge landing on a counter's rendered family, and a
// gauge landing on a histogram's _count family.
func collide(col *obs.Collector) {
	col.Add("fx_queue_depth", 1)
	col.Max("fx_queue_depth_total", 2)
	col.Observe("fx_queue_wait", time.Millisecond)
	col.Max("fx_queue_wait_count", 4)
}

// merge is the normal shape: one counter fed from two sites.
func merge(col *obs.Collector) {
	col.Add("fx_jobs", 1)
	col.Add("fx_jobs", 2)
}

// hists: Start, Observe, and Hist on one name are the same family.
func hists(col *obs.Collector) {
	stop := col.Start("fx_phase")
	col.Observe("fx_phase", time.Millisecond)
	col.Hist("fx_phase", 7)
	stop()
}

// suppressed: a bounded dynamic name with a reason.
func suppressed(col *obs.Collector, leg string) {
	//lint:ignore metricname fixture: bounded by a fixed registry
	col.Add("compare_"+leg+"_runs", 1)
}
