// Fixture for the errdrop analyzer: expression statements that
// silently discard an error, and the allowlisted sinks.
package errdrop

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// bad drops errors from a file close, an encoder, and a flush.
func bad(f *os.File, w io.Writer, bw *bufio.Writer) {
	f.Close()                    // want: Close
	json.NewEncoder(w).Encode(1) // want: Encode
	bw.Flush()                   // want: Flush
}

// allowlisted sinks: fmt print family, infallible builders, and
// bufio's sticky-error write methods.
func allowlisted(w io.Writer, bw *bufio.Writer, sb *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("hi")
	fmt.Fprintf(w, "x")
	bw.WriteString("x")
	bw.WriteByte('x')
	sb.WriteString("x")
	buf.WriteString("x")
}

// handled and blanked are the two accepted treatments.
func handled(f *os.File) error {
	return f.Close()
}

func blanked(f *os.File) {
	_ = f.Close()
}

// suppressed carries the reason at the site.
func suppressed(f *os.File) {
	//lint:ignore errdrop read-only handle; the close error carries no data
	f.Close()
}
