// Test files are exempt from errdrop: dropping an error in a test
// helper fails the test elsewhere, not the pipeline.
package errdrop

import "os"

func dropInTest(f *os.File) {
	f.Close() // clean: _test.go files are out of scope
}
