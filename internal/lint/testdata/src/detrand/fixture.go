// Fixture for the detrand analyzer. The package is named
// "partition" so it falls inside the determinism-critical set; the
// directory name is what ties it to the analyzer's golden test.
package partition

import (
	"math/rand"
	"time"
)

// bad exercises every forbidden form: wall-clock reads and the
// global math/rand convenience functions.
func bad(n int) int {
	t0 := time.Now()                   // want: time.Now
	d := time.Since(t0)                // want: time.Since
	rand.Shuffle(n, func(i, j int) {}) // want: global rand
	return rand.Intn(n) + int(d)       // want: global rand
}

// suppressed shows the sanctioned escape hatch for timing-only uses.
func suppressed() int64 {
	//lint:ignore detrand phase timing only; the duration never feeds a result
	t0 := time.Now()
	return t0.UnixNano()
}

// clean threads a seeded generator, the only sanctioned source.
func clean(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
