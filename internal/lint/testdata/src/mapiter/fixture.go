// Fixture for the mapiter analyzer: order-dependent effects inside
// range-over-map loops, and the idioms that make them deterministic.
package mapiter

import (
	"bytes"
	"fmt"
	"sort"
)

// badAppend collects map keys without sorting afterwards.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want: append without later sort
	}
	return keys
}

// goodSorted is the collect-then-sort idiom and must not be flagged.
func goodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// badPrint emits lines in map order.
func badPrint(m map[int]int) {
	for k, v := range m {
		fmt.Println(k, v) // want: fmt output
	}
}

// badWrite buffers bytes in map order.
func badWrite(buf *bytes.Buffer, m map[string]string) {
	for k := range m {
		buf.WriteString(k) // want: buffer write
	}
}

// badSend delivers map entries in iteration order.
func badSend(ch chan int, m map[int]bool) {
	for k := range m {
		ch <- k // want: channel send
	}
}

// loopLocal appends only into a slice scoped to the iteration; no
// order can leak out.
func loopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}

// aggregate is commutative and clean.
func aggregate(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// suppressed documents a deliberately order-free consumer.
func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:ignore mapiter consumer treats this as a set; order is irrelevant
		keys = append(keys, k)
	}
	return keys
}
