// Fixture for the suppression machinery itself: malformed and
// unknown-analyzer //lint:ignore directives are diagnostics, so a
// typo cannot silently disable a check.
package directives

import "os"

// missingReason has an analyzer but no reason.
func missingReason(f *os.File) {
	//lint:ignore errdrop
	f.Close() // still flagged: the directive above is malformed
}

// unknownAnalyzer names a check that does not exist.
func unknownAnalyzer(f *os.File) {
	//lint:ignore errdorp typo in the analyzer name
	f.Close() // still flagged: the directive suppresses nothing
}

// sameLine suppresses from a trailing comment.
func sameLine(f *os.File) {
	f.Close() //lint:ignore errdrop read-only handle, close error carries no data
}

// lineAbove suppresses from the preceding line.
func lineAbove(f *os.File) {
	//lint:ignore errdrop read-only handle, close error carries no data
	f.Close()
}
