// Fixture for the suppression machinery itself: malformed and
// unknown-analyzer //lint:ignore directives are diagnostics, so a
// typo cannot silently disable a check.
package directives

import (
	"context"
	"fmt"
	"log/slog"
	"os"
)

// missingReason has an analyzer but no reason.
func missingReason(f *os.File) {
	//lint:ignore errdrop
	f.Close() // still flagged: the directive above is malformed
}

// unknownAnalyzer names a check that does not exist.
func unknownAnalyzer(f *os.File) {
	//lint:ignore errdorp typo in the analyzer name
	f.Close() // still flagged: the directive suppresses nothing
}

// sameLine suppresses from a trailing comment.
func sameLine(f *os.File) {
	f.Close() //lint:ignore errdrop read-only handle, close error carries no data
}

// lineAbove suppresses from the preceding line.
func lineAbove(f *os.File) {
	//lint:ignore errdrop read-only handle, close error carries no data
	f.Close()
}

// v2Suppressions: the serving-contract analyzers honor the same
// directive grammar.
func v2Suppressions() context.Context {
	go fmt.Println("fire and forget") //lint:ignore goroleak deliberate one-shot print
	//lint:ignore ctxflow this helper is a documented lifecycle root
	return context.Background()
}

// v2MissingReason: a malformed directive leaves the slogkey
// diagnostic live.
func v2MissingReason(l *slog.Logger, k string) {
	//lint:ignore slogkey
	l.Info("event", k, 1) // still flagged: the directive above is malformed
}
