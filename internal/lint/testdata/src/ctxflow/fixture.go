// Fixture for ctxflow: library-minted root contexts, misplaced ctx
// parameters, and for-select loops with no way out.
package ctxflow

import "context"

// libraryRoot mints a root context in library code.
func libraryRoot() context.Context {
	return context.Background()
}

// todoRoot is no better.
func todoRoot() context.Context {
	return context.TODO()
}

// defaulted is the tolerated nil-guard idiom: the caller explicitly
// opted out.
func defaulted(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// first is the conventional signature.
func first(ctx context.Context, n int) {
	_ = n
	<-ctx.Done()
}

// misplaced buries ctx in second position.
func misplaced(name string, ctx context.Context) {
	_ = name
	<-ctx.Done()
}

// uncancellable receives a context but its event loop has no Done
// arm.
func uncancellable(ctx context.Context, in <-chan int) {
	for {
		select {
		case v := <-in:
			_ = v
		}
	}
}

// cancellable is the sanctioned loop shape.
func cancellable(ctx context.Context, in <-chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			_ = v
		}
	}
}

// suppressed is an annotated lifecycle root.
func suppressed() context.Context {
	//lint:ignore ctxflow fixture: true lifecycle root
	return context.Background()
}
