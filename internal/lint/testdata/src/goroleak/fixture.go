// Fixture for goroleak: go statements need a visible lifecycle owner
// — a WaitGroup, a done-channel close or send, or an http.Server
// serve loop joined by Shutdown.
package goroleak

import (
	"net"
	"net/http"
	"sync"
)

type worker struct{}

func (worker) run() {}

// leakyLit spawns a literal with no ownership signal in its body.
func leakyLit(in <-chan int) {
	go func() {
		for range in {
		}
	}()
}

// leakyNamed spawns a named method with no WaitGroup.Add before it.
func leakyNamed(w worker) {
	go w.run()
}

// ownedDone joins through a deferred Done.
func ownedDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// ownedAddBefore: the Add-then-spawn idiom, Done living in the named
// method.
func ownedAddBefore(w worker, wg *sync.WaitGroup) {
	wg.Add(1)
	go w.run()
}

// ownedClose broadcasts completion on a done channel.
func ownedClose() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	return done
}

// ownedSend rendezvouses its result with a receiver.
func ownedSend() <-chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return errc
}

// ownedServe: the serve loop is joined by Shutdown/Close.
func ownedServe(srv *http.Server, ln net.Listener) {
	go func() { _ = srv.Serve(ln) }()
}

// suppressed is a deliberate process-lifetime helper.
func suppressed(in <-chan int) {
	//lint:ignore goroleak fixture: deliberate process-lifetime helper
	go func() {
		for range in {
		}
	}()
}
