// Fixture for the obsbalance analyzer: obs timers and spans must be
// stopped/ended on every path.
package obsbal

import (
	"context"

	"repro/internal/obs"
)

// discardedTimer drops the stop function on the floor.
func discardedTimer(c *obs.Collector) {
	c.Start("phase") // want: discarded
}

// deferredStart is the classic typo: the timer starts at function
// exit and is never stopped.
func deferredStart(c *obs.Collector) {
	defer c.Start("phase") // want: defer starts at exit
}

// balancedDefer and balancedVar are the two sanctioned shapes.
func balancedDefer(c *obs.Collector) {
	defer c.Start("phase")()
}

func balancedVar(c *obs.Collector) {
	stop := c.Start("phase")
	stop()
}

// earlyReturn stops the timer on only one path.
func earlyReturn(c *obs.Collector, cond bool) {
	stop := c.Start("phase")
	if cond {
		return // want: return skips the stop
	}
	stop()
}

// spanDiscardedStmt opens a span nothing can ever end.
func spanDiscardedStmt(ctx context.Context) {
	obs.StartSpan(ctx, "snapshot") // want: discarded
}

// spanBlank assigns the span to _.
func spanBlank(ctx context.Context) context.Context {
	ctx2, _ := obs.StartSpan(ctx, "snapshot") // want: assigned to _
	return ctx2
}

// spanNeverEnded records events but never ends; the receiver-position
// uses must not count as escapes.
func spanNeverEnded(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "snapshot") // want: never ended
	span.Event("retry")
}

// spanDeferEnd and endInDeferredClosure balance every path.
func spanDeferEnd(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "snapshot")
	defer span.End()
}

func endInDeferredClosure(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "snapshot")
	defer func() {
		span.End()
	}()
}

// rootAndChild: the leaked child is flagged, the balanced root is not.
func rootAndChild(tr *obs.Tracer) {
	root := tr.Root("experiment")
	defer root.End()
	child := root.Child("leg") // want: never ended
	child.Event("e")
}

// escapes hands the span to another owner; the obligation moves with
// it.
func escapes(ctx context.Context) context.Context {
	_, span := obs.StartSpan(ctx, "snapshot")
	return obs.ContextWithSpan(ctx, span)
}

// suppressed documents a deliberate leak (the process exits
// immediately after, so the report is never read).
func suppressed(c *obs.Collector) {
	//lint:ignore obsbalance crash-path instrumentation; the process exits before reporting
	c.Start("phase")
}
