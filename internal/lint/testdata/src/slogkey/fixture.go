// Fixture for slogkey: slog attribute keys must be constant
// snake_case literals, unique within a call, and paired with values.
package slogkey

import "log/slog"

// dynamicKey fractures every dashboard query on the field.
func dynamicKey(l *slog.Logger, k string) {
	l.Info("event", k, 1)
}

// badCase is not snake_case.
func badCase(l *slog.Logger) {
	l.Warn("event", "DurMS", 3)
}

// duplicate repeats a key in one call.
func duplicate(l *slog.Logger) {
	l.Error("event", "job", 1, "job", 2)
}

// dangling leaves the last key without a value.
func dangling(l *slog.Logger) {
	l.Info("event", "job", 1, "cause")
}

// attrs: constructor keys are checked the same way.
func attrs(l *slog.Logger, k string) {
	l.Info("event", slog.String("ok_key", "v"), slog.Int(k, 2))
}

// clean mixes plain pairs and constructors, all constant snake_case.
func clean(l *slog.Logger, cause string) {
	l.Info("event", "job", "job-000001", "wall_ms", 12, slog.String("cause", cause))
}

// suppressed carries a reasoned ignore.
func suppressed(l *slog.Logger, k string) {
	//lint:ignore slogkey fixture: deliberate dynamic key
	l.Info("event", k, 1)
}
