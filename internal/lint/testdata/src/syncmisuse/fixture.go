// Fixture for the syncmisuse analyzer: lock copies, loop-variable
// captures in go statements, and ignored pool submissions.
package syncmisuse

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/pool"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

// copyMutexParam and copyStructParam take lock state by value.
func copyMutexParam(mu sync.Mutex) { // want: parameter copies Mutex
	mu.Lock()
}

func copyStructParam(g guarded) int { // want: parameter copies guarded
	return g.n
}

// ptrParam is the correct shape.
func ptrParam(g *guarded) int {
	return g.n
}

// rangeCopy copies each element's lock into the loop variable.
func rangeCopy(gs []guarded) int { // want: range value copies guarded
	n := 0
	for _, g := range gs {
		n += g.n
	}
	return n
}

// assignCopy duplicates lock state through a dereference.
func assignCopy(gp *guarded) int {
	cp := *gp // want: assignment copies guarded
	return cp.n
}

// goCapture closes over the loop variable by reference.
func goCapture(xs []int) {
	for _, x := range xs {
		go func() {
			fmt.Println(x) // want: captures loop variable x
		}()
	}
}

// goParam passes the loop variable as an argument — portable under
// any toolchain semantics.
func goParam(xs []int) {
	for _, x := range xs {
		go func(v int) {
			fmt.Println(v)
		}(x)
	}
}

// ignoredSubmit and ignoredFork drop the cancellation signal.
func ignoredSubmit(g *pool.Group) {
	g.Submit(func(ctx context.Context) error { return nil }) // want: Submit error ignored
}

func ignoredFork(g *pool.Group) {
	g.Fork(100, 10, func(ctx context.Context) error { return nil }) // want: Fork error ignored
}

// handledSubmit propagates; blankedSubmit discards visibly.
func handledSubmit(g *pool.Group) error {
	return g.Submit(func(ctx context.Context) error { return nil })
}

func blankedSubmit(g *pool.Group) {
	_ = g.Submit(func(ctx context.Context) error { return nil })
}

// suppressed documents why the drop is safe.
func suppressed(g *pool.Group) {
	//lint:ignore syncmisuse fresh group, cannot be cancelled before this enqueue
	g.Submit(func(ctx context.Context) error { return nil })
}
