// Fixture for lockheld: blocking operations reachable between a
// mutex Lock and its Unlock are flagged; non-blocking shapes
// (select-with-default, TryLock, Cond.Wait, code after Unlock) are
// tolerated.
package lockheld

import (
	"context"
	"log/slog"
	"os"
	"sync"
	"time"

	"repro/internal/pool"
)

type srv struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	ch   chan int
	wg   sync.WaitGroup
	log  *slog.Logger
}

// sendUnderLock blocks on a bare channel send with the mutex held.
func (s *srv) sendUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1
}

// recvUnderLock blocks on a receive with a read lock held.
func (s *srv) recvUnderLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.ch
}

// selectUnderLock blocks in a select with no default case.
func (s *srv) selectUnderLock() {
	s.mu.Lock()
	select {
	case v := <-s.ch:
		_ = v
	case s.ch <- 2:
	}
	s.mu.Unlock()
}

// waitAndIO piles four more blocking shapes into one critical section.
func (s *srv) waitAndIO(g *pool.Group) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait()
	s.log.Info("held", "key", 1)
	time.Sleep(time.Millisecond)
	if _, err := os.ReadFile("x"); err != nil {
		return err
	}
	return g.Submit(func(ctx context.Context) error { return nil })
}

// nonBlocking shapes are tolerated: TryLock opens no region, a select
// with a default sheds instead of waiting, and after Unlock nothing
// is held.
func (s *srv) nonBlocking() bool {
	if !s.mu.TryLock() {
		return false
	}
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
	s.ch <- 2
	return true
}

// condWait is the sanctioned wait-under-lock: Cond.Wait releases the
// very mutex it guards while it sleeps.
func (s *srv) condWait() {
	s.mu.Lock()
	for len(s.ch) == 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// explicitUnlock closes the region mid-body; the send after it is
// clean.
func (s *srv) explicitUnlock() {
	s.mu.Lock()
	n := len(s.ch)
	s.mu.Unlock()
	if n == 0 {
		s.ch <- 4
	}
}

// suppressed carries a reasoned ignore.
func (s *srv) suppressed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockheld fixture: deliberate send under lock
	s.ch <- 3
}
