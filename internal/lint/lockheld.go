package lint

// lockheld flags blocking operations reachable between a mutex Lock
// and its Unlock. The admission path of the serving layer is a single
// mutex; one blocking call under it (a channel rendezvous, a slog
// line to a slow stderr pipe, file I/O) stalls every submitter and
// every health probe at once. The contract: critical sections compute
// and assign, they do not wait.
//
// The analysis is structural and intra-procedural, like obsbalance:
// each function body is scanned in source order, lock regions are
// tracked per receiver expression ("s.mu"), and a blocking operation
// whose position falls inside an open region is flagged.
//
//   - `mu.Lock()` / `mu.RLock()` opens a region for "mu";
//     `mu.Unlock()` / `mu.RUnlock()` closes it at its own position;
//     `defer mu.Unlock()` leaves it open to the end of the body
//     (the lock really is held until return).
//   - `mu.TryLock()` never opens a region.
//   - Blocking operations: channel send and receive (except as a
//     comm case of a `select` that has a `default`), `select` with no
//     default, sync.WaitGroup.Wait, pool.Group.Submit/Fork/Wait,
//     time.Sleep, every slog output method (plus the server's
//     logEvent wrapper), and a curated set of file/network I/O calls.
//   - sync.Cond.Wait is deliberately NOT blocking here: it releases
//     the very mutex being tracked while it sleeps — that is the
//     sanctioned way to wait under a lock.
//
// Calls into methods that themselves block are not traced
// (intra-procedural); name such helpers "...Locked" and keep them
// free of blocking operations. Non-test files only: this is a
// production-path contract.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld returns the lockheld analyzer.
func LockHeld() *Analyzer {
	return &Analyzer{
		Name: "lockheld",
		Doc:  "flag blocking operations (channel ops, selects, Wait, I/O, slog) executed while a mutex is held",
		Run:  runLockHeld,
	}
}

func runLockHeld(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, body := range funcBodies(f) {
			out = append(out, lockHeldBody(p, body)...)
		}
	}
	return out
}

// lockRegion is one held interval of a specific mutex expression.
type lockRegion struct {
	key   string    // receiver expression text, e.g. "s.mu"
	start token.Pos // position of the Lock call
	end   token.Pos // position of the Unlock, or body end for defer/none
}

// lockHeldBody scans one function body (not descending into nested
// function literals, which execute elsewhere) and reports blocking
// operations inside lock regions.
func lockHeldBody(p *Package, body *ast.BlockStmt) []Finding {
	regions := lockRegions(p, body)
	if len(regions) == 0 {
		return nil
	}

	// Sends/receives that are the comm clause of a select with a
	// default case are non-blocking by construction; receives inside
	// any select comm are subsumed by the select's own verdict.
	nonBlocking := map[ast.Node]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			nonBlocking[comm.Comm] = true
			if assign, ok := comm.Comm.(*ast.AssignStmt); ok && len(assign.Rhs) == 1 {
				nonBlocking[assign.Rhs[0]] = true
			}
			if expr, ok := comm.Comm.(*ast.ExprStmt); ok {
				nonBlocking[expr.X] = true
			}
		}
		return true
	})

	var out []Finding
	flag := func(pos token.Pos, desc string) {
		for _, r := range regions {
			if pos > r.start && pos < r.end {
				out = append(out, Finding{Pos: pos, Message: fmt.Sprintf(
					"%s while %s is held (locked at line %d); blocking under a lock stalls every contender — shrink the critical section or move the operation after Unlock",
					desc, r.key, p.Fset.Position(r.start).Line)})
				return // one report per operation, innermost-first region
			}
		}
	}

	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !nonBlocking[n] {
				flag(n.Arrow, "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonBlocking[n] && !insideSelectComm(body, n) {
				flag(n.OpPos, "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				flag(n.Select, "select with no default case")
			}
		case *ast.CallExpr:
			if desc := blockingCallDesc(p, n); desc != "" {
				flag(n.Pos(), desc)
			}
		}
		return true
	})
	return out
}

// lockRegions collects the held intervals of every mutex expression
// in the body, in source order.
func lockRegions(p *Package, body *ast.BlockStmt) []lockRegion {
	var regions []lockRegion
	open := map[string][]int{} // key -> indices of regions still open
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, key := mutexOp(p, call)
		if name == "" {
			return true
		}
		deferred := inDefer(body, call)
		switch name {
		case "Lock", "RLock":
			if deferred {
				return true // deferred lock: runs at exit, opens nothing here
			}
			open[key] = append(open[key], len(regions))
			regions = append(regions, lockRegion{key: key, start: call.Pos(), end: body.End()})
		case "Unlock", "RUnlock":
			if deferred {
				return true // defer Unlock: the region stays open to body end
			}
			if idxs := open[key]; len(idxs) > 0 {
				regions[idxs[len(idxs)-1]].end = call.Pos()
				open[key] = idxs[:len(idxs)-1]
			}
		}
		return true
	})
	return regions
}

// mutexOp reports the lock-protocol method a call invokes on a
// sync.Mutex / sync.RWMutex ("" for anything else) and the receiver
// expression's text, the region key. TryLock/TryRLock return "" —
// they never hold on failure, so they open no region.
func mutexOp(p *Package, call *ast.CallExpr) (name, key string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || !pkgSuffixIs(fn, "sync") {
		return "", ""
	}
	recv := recvNameOf(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return fn.Name(), exprText(p.Fset, sel.X)
	}
	return "", ""
}

// inDefer reports whether call is the immediate call of a defer
// statement in body.
func inDefer(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call == call {
			found = true
		}
		return !found
	})
	return found
}

// insideSelectComm reports whether the receive expression sits inside
// a select comm clause (the select statement itself carries the
// blocking verdict there).
func insideSelectComm(body *ast.BlockStmt, e ast.Expr) bool {
	inside := false
	inspectShallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			if comm, ok := clause.(*ast.CommClause); ok && comm.Comm != nil && within(e.Pos(), comm.Comm) {
				inside = true
			}
		}
		return true
	})
	return inside
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if comm, ok := clause.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// slogOutputMethods are the slog.Logger methods that emit a record
// (and therefore write to the handler's sink, usually a pipe).
var slogOutputMethods = map[string]bool{
	"Debug": true, "Info": true, "Warn": true, "Error": true,
	"DebugContext": true, "InfoContext": true, "WarnContext": true,
	"ErrorContext": true, "Log": true, "LogAttrs": true,
}

// blockingIOFuncs is the curated set of package-level functions that
// hit the filesystem or the network.
var blockingIOFuncs = map[string]map[string]bool{
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "ReadFile": true,
		"WriteFile": true, "Remove": true, "RemoveAll": true, "Rename": true,
		"Mkdir": true, "MkdirAll": true, "ReadDir": true, "Stat": true,
	},
	"net":      {"Dial": true, "DialTimeout": true, "Listen": true},
	"net/http": {"Get": true, "Post": true, "PostForm": true, "Head": true},
	"io":       {"Copy": true, "CopyN": true, "ReadAll": true, "WriteString": true},
	"fmt":      {"Fprint": true, "Fprintf": true, "Fprintln": true},
	"time":     {"Sleep": true},
}

// blockingCallDesc classifies a call as blocking, returning a
// description for the diagnostic ("" when the call is not in the
// blocking set).
func blockingCallDesc(p *Package, call *ast.CallExpr) string {
	fn := calleeOf(p, call)
	if fn == nil {
		return ""
	}
	switch {
	case isMethod(fn, "sync", "WaitGroup", "Wait"):
		return "(sync.WaitGroup).Wait"
	case isMethod(fn, "internal/pool", "Group", "Submit"),
		isMethod(fn, "internal/pool", "Group", "Fork"),
		isMethod(fn, "internal/pool", "Group", "Wait"):
		return "(pool.Group)." + fn.Name()
	case isMethod(fn, "internal/server", "Server", "logEvent"):
		return "(server.Server).logEvent (a slog write)"
	case recvNameOf(fn) == "Logger" && pkgSuffixIs(fn, "log/slog") && slogOutputMethods[fn.Name()]:
		return "(slog.Logger)." + fn.Name()
	case recvNameOf(fn) == "" && pkgSuffixIs(fn, "log/slog") && slogOutputMethods[fn.Name()]:
		return "slog." + fn.Name()
	case isMethod(fn, "net/http", "Client", "Do"),
		isMethod(fn, "net/http", "Client", "Get"),
		isMethod(fn, "net/http", "Client", "Post"),
		isMethod(fn, "net/http", "Client", "PostForm"):
		return "(http.Client)." + fn.Name()
	}
	if recvNameOf(fn) == "" && fn.Pkg() != nil {
		if set, ok := blockingIOFuncs[fn.Pkg().Path()]; ok && set[fn.Name()] {
			return fn.Pkg().Name() + "." + fn.Name()
		}
	}
	return ""
}
