package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the test's working directory to the module
// root (the directory holding go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// formatDiags renders diagnostics with base filenames so golden files
// are independent of the checkout path.
func formatDiags(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "%s:%d:%d: %s: %s\n",
			filepath.Base(d.File), d.Line, d.Col, d.Analyzer, d.Message)
	}
	return sb.String()
}

func checkGolden(t *testing.T, fixtureDir string, diags []Diagnostic) {
	t.Helper()
	got := formatDiags(diags)
	goldenPath := filepath.Join(fixtureDir, "expected.txt")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v\ngot diagnostics:\n%s", err, got)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch for %s\ngot:\n%s\nwant:\n%s",
			fixtureDir, got, string(want))
	}
}

// TestGoldenAnalyzers runs each analyzer alone over its fixture
// package and compares against the checked-in expected.txt. Every
// fixture holds positive, suppressed, and clean cases.
func TestGoldenAnalyzers(t *testing.T) {
	root := repoRoot(t)
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "lint", "testdata", "src", a.Name)
			pkgs, err := LoadDir(root, dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := RunAnalyzers(pkgs, []*Analyzer{a})
			checkGolden(t, dir, diags)
		})
	}
}

// TestDirectives exercises the suppression machinery itself: the
// fixture holds malformed and unknown-analyzer //lint:ignore
// directives, which must surface as "lint" diagnostics rather than
// silently disabling a check. The full analyzer set runs so the
// valid suppressions in the same file are also proven to work.
func TestDirectives(t *testing.T) {
	root := repoRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "directives")
	pkgs, err := LoadDir(root, dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunAnalyzers(pkgs, Analyzers())
	checkGolden(t, dir, diags)
}

var selfPatterns = []string{"./internal/...", "./cmd/...", "./tools/..."}

// TestLintSelf pins the committed zero-diagnostic baseline: the whole
// tree, including the linter itself, must be clean.
func TestLintSelf(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := Load(root, selfPatterns)
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	diags := RunAnalyzers(pkgs, Analyzers())
	if len(diags) != 0 {
		var sb strings.Builder
		WriteText(&sb, diags)
		t.Errorf("expected zero diagnostics on the repo, got %d:\n%s",
			len(diags), sb.String())
	}
}

// TestDeterministicOutput loads and analyzes the repo twice from
// scratch and requires byte-identical formatted output — the linter
// must obey the same determinism contract it enforces.
func TestDeterministicOutput(t *testing.T) {
	root := repoRoot(t)
	run := func() string {
		pkgs, err := Load(root, selfPatterns)
		if err != nil {
			t.Fatalf("loading repo: %v", err)
		}
		diags := RunAnalyzers(pkgs, Analyzers())
		var sb strings.Builder
		WriteText(&sb, diags)
		// Also fold in the package inventory, unsorted, so
		// load-order nondeterminism is caught even on a clean tree.
		for _, p := range pkgs {
			sb.WriteString(p.Path + " " + p.Name + "\n")
		}
		return sb.String()
	}
	first := run()
	second := run()
	if first != second {
		t.Errorf("two runs produced different output\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}
