package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the test's working directory to the module
// root (the directory holding go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// formatDiags renders diagnostics with base filenames so golden files
// are independent of the checkout path.
func formatDiags(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "%s:%d:%d: %s: %s\n",
			filepath.Base(d.File), d.Line, d.Col, d.Analyzer, d.Message)
	}
	return sb.String()
}

func checkGolden(t *testing.T, fixtureDir string, diags []Diagnostic) {
	t.Helper()
	got := formatDiags(diags)
	goldenPath := filepath.Join(fixtureDir, "expected.txt")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v\ngot diagnostics:\n%s", err, got)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch for %s\ngot:\n%s\nwant:\n%s",
			fixtureDir, got, string(want))
	}
}

// TestGoldenAnalyzers runs each analyzer alone over its fixture
// package and compares against the checked-in expected.txt. Every
// fixture holds positive, suppressed, and clean cases.
func TestGoldenAnalyzers(t *testing.T) {
	root := repoRoot(t)
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "lint", "testdata", "src", a.Name)
			pkgs, err := LoadDir(root, dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := RunAnalyzers(pkgs, []*Analyzer{a})
			checkGolden(t, dir, diags)
		})
	}
}

// TestDirectives exercises the suppression machinery itself: the
// fixture holds malformed and unknown-analyzer //lint:ignore
// directives, which must surface as "lint" diagnostics rather than
// silently disabling a check. The full analyzer set runs so the
// valid suppressions in the same file are also proven to work.
func TestDirectives(t *testing.T) {
	root := repoRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "directives")
	pkgs, err := LoadDir(root, dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunAnalyzers(pkgs, Analyzers())
	checkGolden(t, dir, diags)
}

var selfPatterns = []string{"./internal/...", "./cmd/...", "./tools/...", "./examples/..."}

// TestLintSelf pins the committed zero-diagnostic baseline: the whole
// tree, including the linter itself, must be clean.
func TestLintSelf(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := Load(root, selfPatterns)
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	diags := RunAnalyzers(pkgs, Analyzers())
	if len(diags) != 0 {
		var sb strings.Builder
		WriteText(&sb, diags)
		t.Errorf("expected zero diagnostics on the repo, got %d:\n%s",
			len(diags), sb.String())
	}
}

// TestDeterministicOutput loads and analyzes the repo twice from
// scratch and requires byte-identical formatted output — the linter
// must obey the same determinism contract it enforces.
func TestDeterministicOutput(t *testing.T) {
	root := repoRoot(t)
	run := func() string {
		pkgs, err := Load(root, selfPatterns)
		if err != nil {
			t.Fatalf("loading repo: %v", err)
		}
		diags := RunAnalyzers(pkgs, Analyzers())
		var sb strings.Builder
		WriteText(&sb, diags)
		// Also fold in the package inventory, unsorted, so
		// load-order nondeterminism is caught even on a clean tree.
		for _, p := range pkgs {
			sb.WriteString(p.Path + " " + p.Name + "\n")
		}
		return sb.String()
	}
	first := run()
	second := run()
	if first != second {
		t.Errorf("two runs produced different output\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

// TestDeterministicFixtureOutput runs the full analyzer set over the
// serving-contract fixtures twice — directories with diagnostics, so
// determinism is proven over non-empty output, not a vacuously empty
// clean tree. The v2 analyzers carry cross-call state (metricname's
// family registry, lockheld's region list), which must reset and
// re-order identically between runs.
func TestDeterministicFixtureOutput(t *testing.T) {
	root := repoRoot(t)
	fixtures := []string{"lockheld", "goroleak", "ctxflow", "slogkey", "metricname"}
	run := func() string {
		var sb strings.Builder
		for _, name := range fixtures {
			dir := filepath.Join(root, "internal", "lint", "testdata", "src", name)
			pkgs, err := LoadDir(root, dir)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", name, err)
			}
			diags := RunAnalyzers(pkgs, Analyzers())
			WriteText(&sb, diags)
		}
		return sb.String()
	}
	first := run()
	if first == "" {
		t.Fatal("fixture run produced no diagnostics; the determinism check is vacuous")
	}
	second := run()
	if first != second {
		t.Errorf("two fixture runs produced different output\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

// TestLintSelfMetricRegistry pins the repo's Prometheus family
// inventory: every constant metric name the Collector sees, one
// "category name" line each, sorted. Run with LINT_UPDATE=1 to
// regenerate after adding a metric.
func TestLintSelfMetricRegistry(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := Load(root, selfPatterns)
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	got := strings.Join(MetricNames(pkgs), "\n") + "\n"
	regPath := filepath.Join(root, "internal", "lint", "metricnames.txt")
	if os.Getenv("LINT_UPDATE") != "" {
		if err := os.WriteFile(regPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(regPath)
	if err != nil {
		t.Fatalf("reading metric registry (run with LINT_UPDATE=1 to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric registry drift — rerun with LINT_UPDATE=1 and review the diff\ngot:\n%s\nwant:\n%s",
			got, string(want))
	}
}

// TestSeededViolations plants the three marquee serving-era bugs —
// a channel send under an admission mutex, an unowned go statement,
// and a dynamic slog key — in a scratch package and proves the full
// analyzer set rejects each one. This is the end-to-end guarantee the
// zero-diagnostic baseline rests on.
func TestSeededViolations(t *testing.T) {
	root := repoRoot(t)
	dir := t.TempDir()
	src := `package seeded

import (
	"log/slog"
	"sync"
)

type admission struct {
	mu    sync.Mutex
	queue chan int
}

func (a *admission) enqueue(v int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queue <- v
}

func spawn() {
	go func() {
		select {}
	}()
}

func logDynamic(l *slog.Logger, field string) {
	l.Info("event", field, 1)
}
`
	if err := os.WriteFile(filepath.Join(dir, "seeded.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadDir(root, dir)
	if err != nil {
		t.Fatalf("loading seeded package: %v", err)
	}
	diags := RunAnalyzers(pkgs, Analyzers())
	fired := map[string]bool{}
	for _, d := range diags {
		fired[d.Analyzer] = true
	}
	for _, want := range []string{"lockheld", "goroleak", "slogkey"} {
		if !fired[want] {
			var sb strings.Builder
			WriteText(&sb, diags)
			t.Errorf("seeded violation for %s not caught; diagnostics:\n%s", want, sb.String())
		}
	}
}
