package lint

// mapiter flags `range` over a map whose body has order-dependent
// effects — the exact bug class behind nondeterministic reports,
// traces, and messages: Go randomizes map iteration order, so
// appending to a slice, writing to a stream/builder, sending on a
// channel, or recording ordered observability events from inside the
// loop produces output that differs run to run.
//
// An append into a slice is tolerated when the same slice is passed to
// a sort (package sort or slices) later in the same function — the
// collect-then-sort idiom restores determinism. Everything else
// (writes, sends, span events, transport calls) has no such repair and
// is always flagged; loops that are genuinely order-independent for a
// deeper reason carry a //lint:ignore mapiter <reason>.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter returns the mapiter analyzer.
func MapIter() *Analyzer {
	return &Analyzer{
		Name: "mapiter",
		Doc:  "flag order-dependent effects inside range-over-map loops",
		Run:  runMapIter,
	}
}

func runMapIter(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, body := range funcBodies(f) {
			out = append(out, mapIterInFunc(p, body)...)
		}
	}
	return out
}

// mapIterInFunc checks the range-over-map loops whose statements
// belong directly to this function body (nested function literals are
// separate funcBodies entries).
func mapIterInFunc(p *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	inspectShallow(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, eff := range mapIterEffects(p, rs) {
			if eff.sortable != "" && sortedAfter(p, body, rs, eff.sortable) {
				continue
			}
			out = append(out, Finding{Pos: eff.pos, Message: eff.msg})
		}
		return true
	})
	return out
}

// effect is one order-dependent action found inside a map-range body.
// sortable names the appended-to slice (as source text) when a
// later sort can repair the order; "" means unsortable.
type effect struct {
	pos      token.Pos
	msg      string
	sortable string
}

func mapIterEffects(p *Package, rs *ast.RangeStmt) []effect {
	var effs []effect
	// The body scan includes nested function literals: a closure
	// executed per iteration has the same ordering hazard. (A closure
	// merely *defined* per iteration and run later is rare enough to
	// accept the false positive and annotate.)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			effs = append(effs, effect{pos: n.Pos(), msg: "channel send inside range over a map: receive order depends on map iteration order"})
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" || p.Info.Uses[id] != nil && p.Info.Uses[id].Parent() != types.Universe {
					continue
				}
				if i >= len(n.Lhs) {
					continue
				}
				target := n.Lhs[i]
				if declaredWithin(p, target, rs.Body) {
					continue // loop-local scratch; order can't leak out
				}
				effs = append(effs, effect{
					pos:      n.Pos(),
					msg:      fmt.Sprintf("append to %s inside range over a map without a later sort: element order depends on map iteration order", exprText(p.Fset, target)),
					sortable: exprText(p.Fset, target),
				})
			}
		case *ast.CallExpr:
			if eff, ok := callEffect(p, n); ok {
				effs = append(effs, eff)
			}
		}
		return true
	})
	return effs
}

// callEffect classifies calls that emit in iteration order: stream
// writes, observability span records, transport sends.
func callEffect(p *Package, call *ast.CallExpr) (effect, bool) {
	fn := calleeOf(p, call)
	if fn == nil {
		return effect{}, false
	}
	name := fn.Name()
	switch {
	case pkgSuffixIs(fn, "fmt") && (name == "Print" || name == "Printf" || name == "Println" ||
		name == "Fprint" || name == "Fprintf" || name == "Fprintln"):
		return effect{pos: call.Pos(), msg: "fmt output inside range over a map: line order depends on map iteration order"}, true
	case recvNameOf(fn) != "" && (name == "Write" || name == "WriteString" || name == "WriteByte" ||
		name == "WriteRune" || name == "Encode"):
		return effect{pos: call.Pos(), msg: fmt.Sprintf("%s.%s inside range over a map: output order depends on map iteration order", recvNameOf(fn), name)}, true
	case pkgSuffixIs(fn, "internal/obs") && (isMethod(fn, "internal/obs", "Span", "Event") ||
		isMethod(fn, "internal/obs", "Span", "Child") || isPkgFunc(fn, "internal/obs", "StartSpan")):
		return effect{pos: call.Pos(), msg: "span recorded inside range over a map: trace event order depends on map iteration order"}, true
	case pkgSuffixIs(fn, "internal/transport"):
		return effect{pos: call.Pos(), msg: fmt.Sprintf("transport call %s inside range over a map: message order depends on map iteration order", name)}, true
	}
	return effect{}, false
}

// declaredWithin reports whether the expression's base identifier is
// declared inside node (a loop-local variable).
func declaredWithin(p *Package, e ast.Expr, node ast.Node) bool {
	id := baseIdent(e)
	if id == nil {
		return false
	}
	obj := objOf(p, id)
	return obj != nil && within(obj.Pos(), node)
}

// baseIdent unwraps selectors/indexes to the root identifier of an
// assignable expression (rows, r.Phases, out[i] -> rows, r, out).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether, after the range statement and within
// the same function body, the named expression is passed to a sort
// (package sort or slices) — the collect-then-sort idiom.
func sortedAfter(p *Package, body *ast.BlockStmt, rs *ast.RangeStmt, target string) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeOf(p, call)
		if fn == nil || !(pkgSuffixIs(fn, "sort") || pkgSuffixIs(fn, "slices")) {
			return true
		}
		for _, arg := range call.Args {
			if exprText(p.Fset, arg) == target || exprText(p.Fset, arg) == "&"+target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
