package lint

// ctxflow enforces the context-plumbing discipline that makes drain
// and deadlines actually work: cancellation flows from the caller
// down, so library code must not mint its own root contexts, must
// accept ctx in the conventional first position, and must give its
// event loops a way out.
//
//  1. context.Background() / context.TODO() outside package main:
//     a library-minted root context detaches everything under it from
//     the caller's drain. The one tolerated shape is the nil-guard
//     default (`if ctx == nil { ctx = context.Background() }`), which
//     only fires when the caller explicitly opted out. True lifecycle
//     roots (a daemon's base context) carry a reasoned ignore.
//  2. a context.Context parameter anywhere but first: the convention
//     is load-bearing — grep, wrappers, and reviewers all assume
//     `f(ctx, ...)`.
//  3. `for { select { ... } }` event loops with no `<-ctx.Done()` arm
//     in a function that receives a context: the loop outlives the
//     cancellation it was handed.
//
// Non-test files only: tests are their own lifecycle roots.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow returns the ctxflow analyzer.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "flag library-minted root contexts, misplaced ctx parameters, and uncancellable for-select loops",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		if p.BaseName() != "main" {
			out = append(out, rootContexts(p, f)...)
		}
		out = append(out, ctxParamPositions(p, f)...)
		out = append(out, unCancellableLoops(p, f)...)
	}
	return out
}

// ---- check 1: library-minted root contexts ----

func rootContexts(p *Package, f *ast.File) []Finding {
	// Collect the ranges of if-statements whose condition compares
	// something to nil: `if ctx == nil { ctx = context.Background() }`
	// is the sanctioned defaulting idiom.
	var nilGuards []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if cmp, ok := ifStmt.Cond.(*ast.BinaryExpr); ok &&
			(cmp.Op == token.EQL || cmp.Op == token.NEQ) &&
			(isNilIdent(cmp.X) || isNilIdent(cmp.Y)) {
			nilGuards = append(nilGuards, ifStmt)
		}
		return true
	})

	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(p, call)
		if !isPkgFunc(fn, "context", "Background") && !isPkgFunc(fn, "context", "TODO") {
			return true
		}
		for _, guard := range nilGuards {
			if within(call.Pos(), guard) {
				return true
			}
		}
		out = append(out, Finding{Pos: call.Pos(), Message: fmt.Sprintf(
			"context.%s() in library code detaches this call tree from the caller's cancellation — accept a ctx parameter (annotate a true lifecycle root with //lint:ignore ctxflow <reason>)",
			fn.Name())})
		return true
	})
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// ---- check 2: ctx parameter position ----

func ctxParamPositions(p *Package, f *ast.File) []Finding {
	var out []Finding
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Type.Params == nil {
			continue
		}
		idx := 0
		for _, field := range fd.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if isContextType(p, field.Type) && idx > 0 {
				out = append(out, Finding{Pos: field.Type.Pos(), Message: fmt.Sprintf(
					"context.Context is parameter %d of %s; by convention ctx is always the first parameter", idx+1, fd.Name.Name)})
			}
			idx += n
		}
	}
	return out
}

func isContextType(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ---- check 3: for { select } with no ctx.Done() arm ----

func unCancellableLoops(p *Package, f *ast.File) []Finding {
	var out []Finding
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !funcHasCtxParam(p, fd) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
				return true
			}
			sel := soleSelect(loop.Body)
			if sel == nil {
				return true
			}
			if !selectHasDoneArm(p, sel) {
				out = append(out, Finding{Pos: loop.For, Message: "for { select } loop in a function that receives a context has no <-ctx.Done() arm — the loop outlives its cancellation"})
			}
			return true
		})
	}
	return out
}

func funcHasCtxParam(p *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(p, field.Type) {
			return true
		}
	}
	return false
}

// soleSelect returns the select statement when the loop body is
// exactly one select (the event-loop shape), nil otherwise.
func soleSelect(body *ast.BlockStmt) *ast.SelectStmt {
	if len(body.List) != 1 {
		return nil
	}
	sel, _ := body.List[0].(*ast.SelectStmt)
	return sel
}

// selectHasDoneArm reports whether any comm clause receives from a
// Done() call on a context.
func selectHasDoneArm(p *Package, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		var recvExpr ast.Expr
		switch c := comm.Comm.(type) {
		case *ast.ExprStmt:
			recvExpr = c.X
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				recvExpr = c.Rhs[0]
			}
		}
		unary, ok := ast.Unparen(recvExpr).(*ast.UnaryExpr)
		if !ok || unary.Op != token.ARROW {
			continue
		}
		call, ok := ast.Unparen(unary.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		if isMethod(calleeOf(p, call), "context", "Context", "Done") {
			return true
		}
	}
	return false
}
