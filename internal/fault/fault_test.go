package fault

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestMessageActionDeterministic: the action for a given message
// identity is a pure function of the plan seed — independent of call
// order, so goroutine scheduling cannot perturb a chaos schedule.
func TestMessageActionDeterministic(t *testing.T) {
	p := &Plan{Seed: 42, DropProb: 0.3, DelayProb: 0.2, DupProb: 0.1}
	var first []Action
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			first = append(first, p.MessageAction(from, to, 1, 0, 0))
		}
	}
	// Re-query in reverse order; answers must not change.
	i := len(first) - 1
	for from := 3; from >= 0; from-- {
		for to := 3; to >= 0; to-- {
			if a := p.MessageAction(from, to, 1, 0, 0); a != first[i] {
				t.Fatalf("action for (%d,%d) changed between queries: %v vs %v", from, to, first[i], a)
			}
			i--
		}
	}
}

func TestMessageActionSeedSensitivity(t *testing.T) {
	a := &Plan{Seed: 1, DropProb: 0.5}
	b := &Plan{Seed: 2, DropProb: 0.5}
	same := true
	for from := 0; from < 8 && same; from++ {
		for to := 0; to < 8; to++ {
			if a.MessageAction(from, to, 1, 0, 0) != b.MessageAction(from, to, 1, 0, 0) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("64 message actions identical across different seeds")
	}
}

// TestFirstAttemptOnly guarantees retry recovery: resends (attempt >
// 0) are never molested.
func TestFirstAttemptOnly(t *testing.T) {
	p := &Plan{Seed: 7, DropProb: 1.0, FirstAttemptOnly: true}
	if a := p.MessageAction(0, 1, 1, 0, 0); a != Drop {
		t.Fatalf("attempt 0 with DropProb=1: %v, want Drop", a)
	}
	for attempt := 1; attempt < 5; attempt++ {
		if a := p.MessageAction(0, 1, 1, 0, attempt); a != None {
			t.Fatalf("attempt %d molested (%v) despite FirstAttemptOnly", attempt, a)
		}
	}
}

func TestProbabilitiesRoughlyHonored(t *testing.T) {
	p := &Plan{Seed: 3, DropProb: 0.5}
	drops := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if p.MessageAction(i%16, (i/16)%16, 1+i%3, 0, 0) == Drop {
			drops++
		}
	}
	if frac := float64(drops) / n; frac < 0.4 || frac > 0.6 {
		t.Errorf("drop fraction %.3f for DropProb=0.5", frac)
	}
}

func recoverPanic(f func()) (v any) {
	defer func() { v = recover() }()
	f()
	return nil
}

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.Active() {
		t.Error("nil plan active")
	}
	if a := p.MessageAction(0, 1, 1, 0, 0); a != None {
		t.Errorf("nil plan action %v", a)
	}
	if d := p.Latency(Delay); d != 0 {
		t.Errorf("nil plan latency %v", d)
	}
	if v := recoverPanic(func() { p.MaybePanic(0, 1) }); v != nil {
		t.Errorf("nil plan panicked: %v", v)
	}
	done := make(chan struct{})
	go func() {
		p.MaybeStall(context.Background(), 0, 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("nil plan stalled")
	}
	b := []byte{1, 2, 3}
	if got := p.CorruptTreeBytes(0, b); !bytes.Equal(got, b) {
		t.Errorf("nil plan corrupted bytes: %v", got)
	}
}

func TestMaybePanic(t *testing.T) {
	p := &Plan{PanicRank: map[int]int{2: 1}}
	if v := recoverPanic(func() { p.MaybePanic(2, 1) }); v == nil {
		t.Error("no panic for the scheduled rank/phase")
	} else if ip, ok := v.(InjectedPanic); !ok {
		t.Errorf("panic value %T, want InjectedPanic", v)
	} else if ip.Rank != 2 || ip.Phase != 1 {
		t.Errorf("panic value %+v", ip)
	}
	if v := recoverPanic(func() { p.MaybePanic(2, 2) }); v != nil {
		t.Error("panicked at the wrong phase")
	}
	if v := recoverPanic(func() { p.MaybePanic(1, 1) }); v != nil {
		t.Error("panicked at the wrong rank")
	}
}

// TestMaybeStallRespectsContext: a stalled rank wakes up as soon as
// the phase deadline cancels its context, not after the full stall.
func TestMaybeStallRespectsContext(t *testing.T) {
	p := &Plan{StallRank: map[int]Stall{0: {Phase: 2, For: time.Hour}}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	p.MaybeStall(ctx, 0, 2)
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("stall held for %v after context cancellation", d)
	}
	// Wrong phase: returns immediately even with a live context.
	done := make(chan struct{})
	go func() {
		p.MaybeStall(context.Background(), 0, 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stalled at a phase with no scheduled stall")
	}
}

// TestCorruptTreeBytes: corruption is undecodable-by-construction
// (truncation + bit flip), deterministic, and never mutates the
// caller's buffer.
func TestCorruptTreeBytes(t *testing.T) {
	p := &Plan{CorruptTree: map[int]bool{1: true}}
	orig := make([]byte, 64)
	for i := range orig {
		orig[i] = byte(i)
	}
	saved := append([]byte(nil), orig...)
	got := p.CorruptTreeBytes(1, orig)
	if !bytes.Equal(orig, saved) {
		t.Fatal("CorruptTreeBytes mutated the input buffer")
	}
	if bytes.Equal(got, orig) || len(got) >= len(orig) {
		t.Fatalf("corruption is a no-op: %d bytes out of %d", len(got), len(orig))
	}
	if again := p.CorruptTreeBytes(1, orig); !bytes.Equal(again, got) {
		t.Fatal("corruption not deterministic")
	}
	// Non-corrupting rank passes through untouched (same backing array).
	if through := p.CorruptTreeBytes(0, orig); !bytes.Equal(through, orig) {
		t.Fatal("rank 0 bytes were corrupted")
	}
}

func TestLatencyDefaults(t *testing.T) {
	p := &Plan{Seed: 1, DelayProb: 1}
	if d := p.Latency(Delay); d <= 0 {
		t.Errorf("default delay latency %v", d)
	}
	if d := p.Latency(Reorder); d <= 0 {
		t.Errorf("default reorder latency %v", d)
	}
	if d := p.Latency(None); d != 0 {
		t.Errorf("latency for None = %v", d)
	}
	q := &Plan{DelayFor: 5 * time.Millisecond}
	if d := q.Latency(Delay); d != 5*time.Millisecond {
		t.Errorf("explicit DelayFor ignored: %v", d)
	}
}

func TestActive(t *testing.T) {
	if (&Plan{Seed: 99}).Active() {
		t.Error("plan with only a seed reported active")
	}
	for name, p := range map[string]*Plan{
		"drop":    {DropProb: 0.1},
		"panic":   {PanicRank: map[int]int{0: 1}},
		"stall":   {StallRank: map[int]Stall{0: {Phase: 1, For: time.Millisecond}}},
		"corrupt": {CorruptTree: map[int]bool{0: true}},
	} {
		if !p.Active() {
			t.Errorf("%s plan reported inactive", name)
		}
	}
}
