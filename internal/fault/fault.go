// Package fault provides deterministic, seed-driven fault schedules
// for chaos-testing the parallel engine's message transport. A Plan
// decides, purely from a message's identity (sender, receiver, phase,
// kind, delivery attempt) and the plan's seed, whether that message is
// dropped, delayed, duplicated, or reordered — so a schedule is fully
// reproducible regardless of goroutine interleaving. Plans can also
// inject rank-level failures: a panic or a stall at a given engine
// phase, or corruption of the serialized descriptor-tree broadcast a
// rank receives. The engine's recovery machinery (retries, serial
// degrade) must make every recovering schedule invisible in the
// results; the chaos test matrix asserts exactly that.
package fault

import (
	"context"
	"fmt"
	"time"
)

// Action is the injected fate of one message send.
type Action uint8

const (
	// None delivers the message normally.
	None Action = iota
	// Drop silently discards the message.
	Drop
	// Delay delivers the message after Plan.DelayFor.
	Delay
	// Duplicate delivers the message twice.
	Duplicate
	// Reorder delivers the message after Plan.ReorderFor — long enough
	// that later messages from the same sender overtake it, short
	// enough not to look like a drop.
	Reorder
)

func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Duplicate:
		return "duplicate"
	case Reorder:
		return "reorder"
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// Stall describes an injected rank stall: the rank sleeps For (or
// until the iteration is cancelled) at the start of the given engine
// phase, so its peers' phase deadlines expire.
type Stall struct {
	Phase int
	For   time.Duration
}

// An InjectedPanic is the value a fault-injected rank panics with; the
// engine's per-worker recovery turns it into a per-rank error.
type InjectedPanic struct {
	Rank, Phase int
}

func (p InjectedPanic) Error() string {
	return fmt.Sprintf("fault: injected panic at rank %d, phase %d", p.Rank, p.Phase)
}

// Plan is a deterministic fault schedule. The zero value injects
// nothing; a nil *Plan is valid everywhere and injects nothing.
//
// Message-level probabilities are per send attempt and are decided by
// hashing (Seed, from, to, phase, kind, attempt) — two runs of the
// same schedule make identical decisions for identical messages, and
// a retried message (higher attempt) rolls a fresh, equally
// deterministic coin, which is what lets bounded retries recover from
// Drop schedules.
type Plan struct {
	Seed int64

	// Per-attempt probabilities, cumulative order Drop, Delay,
	// Duplicate, Reorder. Their sum should be <= 1.
	DropProb, DelayProb, DupProb, ReorderProb float64

	// FirstAttemptOnly restricts message faults to attempt 0, so the
	// first resend always goes through and retry recovery is
	// guaranteed (no serial degrade). When false, a sufficiently
	// unlucky schedule can exhaust the retry budget, which the engine
	// answers with the serial-degrade path instead.
	FirstAttemptOnly bool

	// DelayFor / ReorderFor are the injected latencies (defaults 2ms /
	// 500µs).
	DelayFor, ReorderFor time.Duration

	// PanicRank maps rank -> engine phase at which that rank panics.
	PanicRank map[int]int
	// StallRank maps rank -> injected stall.
	StallRank map[int]Stall
	// CorruptTree marks ranks whose received copy of the serialized
	// descriptor tree is truncated and bit-flipped in transit.
	CorruptTree map[int]bool
}

// splitmix64 is the finalizer used to hash message identities; it is
// stable across runs and platforms.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll returns a uniform [0,1) draw determined by the plan seed and
// the message identity.
func (p *Plan) roll(from, to, phase, kind, attempt int) float64 {
	h := uint64(p.Seed)
	for _, v := range [...]int{from, to, phase, kind, attempt} {
		h = splitmix64(h ^ uint64(int64(v)))
	}
	return float64(h>>11) / float64(1<<53)
}

// MessageAction decides the fate of one message send attempt. It is a
// pure function of the plan and the message identity.
func (p *Plan) MessageAction(from, to, phase, kind, attempt int) Action {
	if p == nil {
		return None
	}
	if p.FirstAttemptOnly && attempt > 0 {
		return None
	}
	u := p.roll(from, to, phase, kind, attempt)
	for _, c := range [...]struct {
		prob   float64
		action Action
	}{
		{p.DropProb, Drop},
		{p.DelayProb, Delay},
		{p.DupProb, Duplicate},
		{p.ReorderProb, Reorder},
	} {
		if u < c.prob {
			return c.action
		}
		u -= c.prob
	}
	return None
}

// Latency returns the injected delivery delay for an action (zero for
// non-latency actions).
func (p *Plan) Latency(a Action) time.Duration {
	if p == nil {
		return 0
	}
	switch a {
	case Delay:
		if p.DelayFor > 0 {
			return p.DelayFor
		}
		return 2 * time.Millisecond
	case Reorder:
		if p.ReorderFor > 0 {
			return p.ReorderFor
		}
		return 500 * time.Microsecond
	}
	return 0
}

// MaybePanic panics with an InjectedPanic if the plan schedules one
// for this rank and phase.
func (p *Plan) MaybePanic(rank, phase int) {
	if p == nil {
		return
	}
	if ph, ok := p.PanicRank[rank]; ok && ph == phase {
		panic(InjectedPanic{Rank: rank, Phase: phase})
	}
}

// MaybeStall sleeps for the scheduled stall (if any), returning early
// when ctx is cancelled — a stalled rank must still notice that the
// iteration has been abandoned.
func (p *Plan) MaybeStall(ctx context.Context, rank, phase int) {
	if p == nil {
		return
	}
	st, ok := p.StallRank[rank]
	if !ok || st.Phase != phase {
		return
	}
	t := time.NewTimer(st.For)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// CorruptTreeBytes returns the descriptor-tree bytes rank actually
// receives: the original slice when the rank is not scheduled for
// corruption, otherwise a truncated copy with a flipped byte. The
// input is never modified.
func (p *Plan) CorruptTreeBytes(rank int, b []byte) []byte {
	if p == nil || !p.CorruptTree[rank] {
		return b
	}
	n := len(b) / 2
	if n == 0 {
		n = len(b)
	}
	c := make([]byte, n)
	copy(c, b[:n])
	if n > 8 {
		c[n/2] ^= 0xff
	}
	return c
}

// Active reports whether the plan can inject anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.DropProb > 0 || p.DelayProb > 0 || p.DupProb > 0 || p.ReorderProb > 0 ||
		len(p.PanicRank) > 0 || len(p.StallRank) > 0 || len(p.CorruptTree) > 0
}
