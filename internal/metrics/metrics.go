// Package metrics computes the partition-quality quantities reported
// in the paper's evaluation (Section 5.1): total communication volume
// (FEComm), edge cut, and per-constraint load imbalance.
package metrics

import (
	"repro/internal/graph"
)

// CommVolume returns the total communication volume of a k-way
// partitioning of g: the sum over vertices v of the number of distinct
// partitions other than v's own that contain a neighbor of v. This is
// exactly how many copies of nodal data must cross partition
// boundaries each iteration, and is the paper's FEComm metric.
func CommVolume(g *graph.Graph, labels []int32, k int) int64 {
	var vol int64
	seen := make([]int32, k) // stamp per partition
	stamp := int32(0)
	for v := 0; v < g.NV(); v++ {
		stamp++
		own := labels[v]
		for _, u := range g.Neighbors(v) {
			if p := labels[u]; p != own && seen[p] != stamp {
				seen[p] = stamp
				vol++
			}
		}
	}
	return vol
}

// EdgeCut returns the total weight of edges whose endpoints lie in
// different partitions.
func EdgeCut(g *graph.Graph, labels []int32) int64 {
	var cut int64
	for v := 0; v < g.NV(); v++ {
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for i, u := range adj {
			if int(u) > v && labels[u] != labels[v] {
				cut += int64(wgt[i])
			}
		}
	}
	return cut
}

// LoadImbalance returns max_i w_j(V_i) / (w_j(V)/k) for each weight
// component j (1.0 for components with zero total weight).
func LoadImbalance(g *graph.Graph, labels []int32, k int) []float64 {
	pw := make([][]int64, k)
	for p := range pw {
		pw[p] = make([]int64, g.NCon)
	}
	for v := 0; v < g.NV(); v++ {
		w := g.Weights(v)
		for j, wj := range w {
			pw[labels[v]][j] += int64(wj)
		}
	}
	total := g.TotalWeights()
	out := make([]float64, g.NCon)
	for j := range out {
		if total[j] == 0 {
			out[j] = 1
			continue
		}
		var worst int64
		for p := 0; p < k; p++ {
			if pw[p][j] > worst {
				worst = pw[p][j]
			}
		}
		out[j] = float64(worst) * float64(k) / float64(total[j])
	}
	return out
}

// PartitionSizes returns the number of vertices per partition.
func PartitionSizes(labels []int32, k int) []int {
	s := make([]int, k)
	for _, l := range labels {
		s[l]++
	}
	return s
}
