package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// star builds a star graph: center 0 with n leaves.
func star(n int) *graph.Graph {
	b := graph.NewBuilder(n+1, 1)
	for v := 0; v <= n; v++ {
		b.SetWeight(v, 0, 1)
	}
	for v := 1; v <= n; v++ {
		b.AddEdge(0, v, 1)
	}
	return b.Build()
}

func TestCommVolumeStar(t *testing.T) {
	g := star(6)
	// Center in partition 0, leaves alternate 1 and 2.
	labels := []int32{0, 1, 2, 1, 2, 1, 2}
	// Center must be sent to partitions 1 and 2 (2 units); every leaf
	// has its lone neighbor in partition 0 (6 units).
	if got := CommVolume(g, labels, 3); got != 8 {
		t.Errorf("CommVolume = %d, want 8", got)
	}
	// One partition: zero volume.
	zero := make([]int32, 7)
	if got := CommVolume(g, zero, 1); got != 0 {
		t.Errorf("CommVolume = %d, want 0", got)
	}
}

func TestCommVolumeVsEdgeCut(t *testing.T) {
	// Communication volume counts each (vertex, partition) pair once,
	// so it is at most twice the number of cut edges (for unit-weight
	// edges) and can be far less.
	g := star(10)
	labels := make([]int32, 11)
	for v := 1; v <= 10; v++ {
		labels[v] = 1
	}
	// One boundary vertex (the center) vs 10 cut edges.
	if got := CommVolume(g, labels, 2); got != 11 {
		// center->1 (1) + each leaf->0 (10)
		t.Errorf("CommVolume = %d, want 11", got)
	}
	if got := EdgeCut(g, labels); got != 10 {
		t.Errorf("EdgeCut = %d, want 10", got)
	}
}

func TestEdgeCutWeighted(t *testing.T) {
	b := graph.NewBuilder(3, 1)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 3)
	g := b.Build()
	if got := EdgeCut(g, []int32{0, 0, 1}); got != 3 {
		t.Errorf("EdgeCut = %d, want 3", got)
	}
	if got := EdgeCut(g, []int32{0, 1, 0}); got != 8 {
		t.Errorf("EdgeCut = %d, want 8", got)
	}
}

func TestLoadImbalance(t *testing.T) {
	b := graph.NewBuilder(4, 2)
	b.SetWeights(0, []int32{1, 0})
	b.SetWeights(1, []int32{1, 0})
	b.SetWeights(2, []int32{1, 2})
	b.SetWeights(3, []int32{1, 2})
	g := b.Build()
	// Partition {0,1} vs {2,3}: first constraint perfectly balanced,
	// second constraint all on one side.
	imb := LoadImbalance(g, []int32{0, 0, 1, 1}, 2)
	if imb[0] != 1.0 {
		t.Errorf("imb[0] = %v", imb[0])
	}
	if imb[1] != 2.0 {
		t.Errorf("imb[1] = %v", imb[1])
	}
}

func TestPartitionSizes(t *testing.T) {
	s := PartitionSizes([]int32{0, 1, 1, 2, 2, 2}, 4)
	want := []int{1, 2, 3, 0}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", s, want)
		}
	}
}

// Property: CommVolume <= 2 * number of cut edges (unit edge weights),
// and CommVolume == 0 iff EdgeCut == 0.
func TestQuickVolumeCutRelation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		k := 1 + r.Intn(5)
		b := graph.NewBuilder(n, 1)
		for v := 0; v < n; v++ {
			b.SetWeight(v, 0, 1)
		}
		for i := 0; i < 3*n; i++ {
			b.AddEdge(r.Intn(n), r.Intn(n), 1)
		}
		g := b.Build()
		labels := make([]int32, n)
		for v := range labels {
			labels[v] = int32(r.Intn(k))
		}
		vol := CommVolume(g, labels, k)
		// Cut in edge count (all built weights deduplicate to >= 1).
		var cutEdges int64
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(v) {
				if int(u) > v && labels[u] != labels[v] {
					cutEdges++
				}
			}
		}
		if vol > 2*cutEdges {
			return false
		}
		return (vol == 0) == (cutEdges == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
