package contact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtree"
	"repro/internal/geom"
	"repro/internal/mesh"
)

func TestBoxFilter(t *testing.T) {
	f := &BoxFilter{
		Dim: 2,
		Boxes: []geom.AABB{
			{Min: geom.P2(0, 0), Max: geom.P2(1, 1)},
			{Min: geom.P2(2, 2), Max: geom.P2(3, 3)},
			geom.Empty(),
		},
	}
	mark := make([]bool, 3)
	f.PartsFor(geom.AABB{Min: geom.P2(0.5, 0.5), Max: geom.P2(2.5, 2.5)}, mark)
	if !mark[0] || !mark[1] {
		t.Errorf("mark = %v, want both real boxes", mark)
	}
	if mark[2] {
		t.Error("empty box matched")
	}
	mark = make([]bool, 3)
	f.PartsFor(geom.AABB{Min: geom.P2(5, 5), Max: geom.P2(6, 6)}, mark)
	if mark[0] || mark[1] || mark[2] {
		t.Errorf("distant box matched: %v", mark)
	}
}

func TestSurfaceOwnersMajority(t *testing.T) {
	m := &mesh.Mesh{
		Dim: 2,
		Coords: []geom.Point{
			geom.P2(0, 0), geom.P2(1, 0), geom.P2(2, 0), geom.P2(3, 0),
		},
		EPtr: []int32{0},
		Surface: []mesh.SurfaceElem{
			{Nodes: []int32{0, 1}, Elem: -1},
			{Nodes: []int32{1, 2}, Elem: -1},
			{Nodes: []int32{0, 1, 2}, Elem: -1},
		},
	}
	labels := []int32{0, 1, 1, 1}
	owners := SurfaceOwners(m, labels)
	if owners[0] != 0 { // tie {0,1}: smaller id wins
		t.Errorf("owner[0] = %d, want 0", owners[0])
	}
	if owners[1] != 1 {
		t.Errorf("owner[1] = %d, want 1", owners[1])
	}
	if owners[2] != 1 { // majority 1
		t.Errorf("owner[2] = %d, want 1", owners[2])
	}
}

func TestSurfaceBoxesInflate(t *testing.T) {
	m := &mesh.Mesh{
		Dim:     2,
		Coords:  []geom.Point{geom.P2(0, 0), geom.P2(2, 0)},
		EPtr:    []int32{0},
		Surface: []mesh.SurfaceElem{{Nodes: []int32{0, 1}, Elem: -1}},
	}
	b := SurfaceBoxes(m, 0.5)[0]
	if b.Min != geom.P2(-0.5, -0.5) || b.Max != geom.P2(2.5, 0.5) {
		t.Errorf("inflated box = %v", b)
	}
}

// scatterScene builds a random 2-partition point cloud plus surface
// element boxes around random points.
func scatterScene(r *rand.Rand, n, k int) (pts []geom.Point, labels []int32, boxes []geom.AABB, owners []int32) {
	pts = make([]geom.Point, n)
	labels = make([]int32, n)
	for i := range pts {
		pts[i] = geom.P2(r.Float64()*10, r.Float64()*10)
		labels[i] = int32(r.Intn(k))
	}
	ne := n / 2
	boxes = make([]geom.AABB, ne)
	owners = make([]int32, ne)
	for i := range boxes {
		c := pts[r.Intn(n)]
		h := 0.2 + r.Float64()
		boxes[i] = geom.AABB{Min: c.Sub(geom.P2(h, h)), Max: c.Add(geom.P2(h, h))}
		owners[i] = int32(r.Intn(k))
	}
	return
}

func TestNRemoteMatchesCandidateSets(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts, labels, boxes, owners := scatterScene(r, 400, 5)
	tree, err := dtree.Build(pts, labels, 2, 5, dtree.Options{Mode: dtree.Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	f := &TreeFilter{Tree: tree, Labels: labels}
	nr := NRemote(boxes, owners, f)
	sets := CandidateSets(boxes, owners, f)
	var sum int64
	for _, s := range sets {
		sum += int64(len(s))
	}
	if nr != sum {
		t.Errorf("NRemote = %d, CandidateSets total = %d", nr, sum)
	}
	if nr == 0 {
		t.Error("expected some remote sends in a scattered scene")
	}
}

func TestNoFalseNegativesBothFilters(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(5)
		pts, labels, boxes, owners := scatterScene(r, 100+r.Intn(200), k)

		// Subdomain bounding boxes.
		sub := make([]geom.AABB, k)
		for p := range sub {
			sub[p] = geom.Empty()
		}
		for i, p := range pts {
			sub[labels[i]] = sub[labels[i]].Extend(p)
		}
		bf := &BoxFilter{Boxes: sub, Dim: 2}
		if MissedContacts(boxes, owners, bf, pts, labels, 2) != 0 {
			return false
		}

		tree, err := dtree.Build(pts, labels, 2, k, dtree.Options{Mode: dtree.Descriptor})
		if err != nil {
			return false
		}
		tf := &TreeFilter{Tree: tree, Labels: labels}
		return MissedContacts(boxes, owners, tf, pts, labels, 2) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTreeFilterTighterThanBoxFilterOnInterleaved(t *testing.T) {
	// Two partitions interleaved in stripes: each subdomain's bounding
	// box covers everything (box filter sends every element to both),
	// while tree leaves isolate the stripes.
	r := rand.New(rand.NewSource(3))
	var pts []geom.Point
	var labels []int32
	for s := 0; s < 8; s++ {
		for i := 0; i < 40; i++ {
			x := float64(s) + 0.05 + r.Float64()*0.9
			y := r.Float64() * 10
			pts = append(pts, geom.P2(x, y))
			labels = append(labels, int32(s%2))
		}
	}
	var boxes []geom.AABB
	owners := make([]int32, 0)
	for i := 0; i < 100; i++ {
		c := pts[r.Intn(len(pts))]
		h := 0.1
		boxes = append(boxes, geom.AABB{Min: c.Sub(geom.P2(h, h)), Max: c.Add(geom.P2(h, h))})
		owners = append(owners, labels[i%len(labels)])
	}

	sub := make([]geom.AABB, 2)
	sub[0], sub[1] = geom.Empty(), geom.Empty()
	for i, p := range pts {
		sub[labels[i]] = sub[labels[i]].Extend(p)
	}
	bf := &BoxFilter{Boxes: sub, Dim: 2}
	tree, err := dtree.Build(pts, labels, 2, 2, dtree.Options{Mode: dtree.Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	tf := &TreeFilter{Tree: tree, Labels: labels}

	nrBox := NRemote(boxes, owners, bf)
	nrTree := NRemote(boxes, owners, tf)
	if nrTree >= nrBox {
		t.Errorf("tree filter (%d) not tighter than box filter (%d) on interleaved stripes", nrTree, nrBox)
	}
}

func TestNRemoteParallelDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts, labels, boxes, owners := scatterScene(r, 2000, 8)
	tree, err := dtree.Build(pts, labels, 2, 8, dtree.Options{Mode: dtree.Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	f := &TreeFilter{Tree: tree, Labels: labels}
	a := NRemote(boxes, owners, f)
	b := NRemote(boxes, owners, f)
	if a != b {
		t.Errorf("NRemote not deterministic: %d vs %d", a, b)
	}
}

func TestNRemoteEmptyInputs(t *testing.T) {
	f := &BoxFilter{Boxes: []geom.AABB{geom.Empty()}, Dim: 2}
	if NRemote(nil, nil, f) != 0 {
		t.Error("empty element list should have zero NRemote")
	}
}

func TestMaxFacetDiameterKnown(t *testing.T) {
	m := &mesh.Mesh{
		Dim:    3,
		Coords: []geom.Point{geom.P3(0, 0, 0), geom.P3(3, 4, 0), geom.P3(0, 0, 1), geom.P3(1, 0, 1)},
		EPtr:   []int32{0},
		Surface: []mesh.SurfaceElem{
			{Nodes: []int32{0, 1}, Elem: -1}, // diagonal 5 in xy
			{Nodes: []int32{2, 3}, Elem: -1}, // length 1
		},
	}
	if got := MaxFacetDiameter(m); got != 5 {
		t.Errorf("MaxFacetDiameter = %v, want 5", got)
	}
	empty := &mesh.Mesh{Dim: 3, EPtr: []int32{0}}
	if got := MaxFacetDiameter(empty); got != 0 {
		t.Errorf("MaxFacetDiameter(empty) = %v", got)
	}
}

func TestCandidateSetsOwnerExcluded(t *testing.T) {
	boxes := []geom.AABB{{Min: geom.P2(0, 0), Max: geom.P2(1, 1)}}
	owners := []int32{0}
	f := &BoxFilter{Dim: 2, Boxes: []geom.AABB{
		{Min: geom.P2(0, 0), Max: geom.P2(2, 2)}, // own partition: excluded
		{Min: geom.P2(0.5, 0.5), Max: geom.P2(3, 3)},
	}}
	sets := CandidateSets(boxes, owners, f)
	if len(sets[0]) != 1 || sets[0][0] != 1 {
		t.Errorf("sets = %v, want [[1]]", sets)
	}
}
