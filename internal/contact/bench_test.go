package contact

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func benchBoxes(n int) []geom.AABB {
	r := rand.New(rand.NewSource(1))
	boxes := make([]geom.AABB, n)
	for i := range boxes {
		c := geom.P3(r.Float64()*100, r.Float64()*100, r.Float64()*10)
		h := geom.P3(0.5+r.Float64(), 0.5+r.Float64(), 0.2)
		boxes[i] = geom.AABB{Min: c.Sub(h), Max: c.Add(h)}
	}
	return boxes
}

func BenchmarkBVHBuild(b *testing.B) {
	boxes := benchBoxes(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewBVH(boxes, 3)
	}
}

func BenchmarkBVHQuery(b *testing.B) {
	boxes := benchBoxes(20000)
	bvh := NewBVH(boxes, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		bvh.Query(boxes, boxes[i%len(boxes)], func(int32) { count++ })
	}
}

func BenchmarkBoxFilter(b *testing.B) {
	boxes := benchBoxes(100) // k=100 subdomain boxes
	f := &BoxFilter{Boxes: boxes[:100], Dim: 3}
	q := benchBoxes(1)[0]
	mark := make([]bool, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PartsFor(q, mark)
		for p := range mark {
			mark[p] = false
		}
	}
}
