package contact

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// This file implements the full serial contact-detection pipeline:
// BVH broad phase over inflated surface-element boxes, then the
// narrow-phase ("local search") exact facet-distance test. The paper
// only evaluates the global (inter-processor) search, but the local
// phase is what the global phase feeds, and having it lets the tests
// verify end-to-end that no filter ever loses a real contact.

// Pair is a detected contact: two surface-element indices (A < B) and
// their exact minimum distance.
type Pair struct {
	A, B int32
	Dist float64
}

// DetectContacts finds every pair of surface elements of m whose exact
// distance is at most tol, excluding pairs that share a mesh node
// (adjacent facets of the same surface are always "in contact" and are
// never interesting). The sweep is parallel over elements.
func DetectContacts(m *mesh.Mesh, tol float64) []Pair {
	ne := len(m.Surface)
	boxes := SurfaceBoxes(m, tol/2) // half on each side => centers within tol
	bvh := NewBVH(boxes, m.Dim)

	facet := func(i int32) []geom.Point {
		s := m.Surface[i]
		pts := make([]geom.Point, len(s.Nodes))
		for j, n := range s.Nodes {
			pts[j] = m.Coords[n]
		}
		return pts
	}
	shareNode := func(a, b int32) bool {
		for _, na := range m.Surface[a].Nodes {
			for _, nb := range m.Surface[b].Nodes {
				if na == nb {
					return true
				}
			}
		}
		return false
	}

	nw := runtime.GOMAXPROCS(0)
	if nw > ne {
		nw = 1
	}
	var mu sync.Mutex
	var out []Pair
	var wg sync.WaitGroup
	chunk := (ne + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > ne {
			hi = ne
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var local []Pair
			for i := lo; i < hi; i++ {
				fi := facet(int32(i))
				bvh.Query(boxes, boxes[i], func(j int32) {
					if j <= int32(i) || shareNode(int32(i), j) {
						return
					}
					d := geom.FacetDist(fi, facet(j))
					if d <= tol {
						local = append(local, Pair{A: int32(i), B: j, Dist: d})
					}
				})
			}
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Collect merges per-rank pair reports into the canonical global
// list: duplicates folded (the engine's fallback reporting rule can
// make both owners report the same pair) and sorted by (A, B). It is
// the collector both the concurrent engine and its serial-degrade
// path feed, which is what makes their outputs comparable
// byte-for-byte.
func Collect(lists [][]Pair) []Pair {
	dedup := map[[2]int32]float64{}
	for _, l := range lists {
		for _, pr := range l {
			dedup[[2]int32{pr.A, pr.B}] = pr.Dist
		}
	}
	out := make([]Pair, 0, len(dedup))
	for ab, dist := range dedup {
		out = append(out, Pair{A: ab[0], B: ab[1], Dist: dist})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// LostContacts verifies a partition-aware global-search setup against
// the ground-truth contact pairs: for every detected contact between
// elements owned by different partitions, at least one side's filter
// candidate set must include the other side's owner (otherwise the
// parallel contact search would silently miss a real contact). It
// returns the number of lost pairs — zero for any correct filter.
func LostContacts(pairs []Pair, owners []int32, sets [][]int32) int {
	lost := 0
	for _, p := range pairs {
		oa, ob := owners[p.A], owners[p.B]
		if oa == ob {
			continue
		}
		if !containsPart(sets[p.A], ob) && !containsPart(sets[p.B], oa) {
			lost++
		}
	}
	return lost
}

func containsPart(set []int32, p int32) bool {
	for _, s := range set {
		if s == p {
			return true
		}
	}
	return false
}
