// Package contact implements the parallel global contact search of
// Section 4: every surface element, approximated by its bounding box,
// is tested against a geometric descriptor of each subdomain to decide
// which partitions it must be sent to. Two descriptor families are
// provided, matching the two algorithms the paper compares:
//
//   - BoxFilter: one bounding box per subdomain (the ML+RCB filter and
//     the classic scheme of Plimpton et al.);
//   - TreeFilter: the decision-tree space partition of Section 4.1
//     whose leaf regions contain contact points of a single partition
//     (the MCML+DT filter).
//
// The package also computes the paper's NRemote metric: the total
// number of surface elements that must be shipped to partitions other
// than their owner.
package contact

import (
	"runtime"
	"sync"

	"repro/internal/dtree"
	"repro/internal/geom"
	"repro/internal/mesh"
)

// Filter marks, for a query box, every partition whose descriptor
// intersects it. mark has length k and is left true at marked indices;
// the caller zeroes it between queries.
type Filter interface {
	PartsFor(b geom.AABB, mark []bool)
	K() int
}

// BoxFilter filters by per-subdomain bounding boxes.
type BoxFilter struct {
	Boxes []geom.AABB
	Dim   int
}

// PartsFor marks every subdomain whose box intersects b.
func (f *BoxFilter) PartsFor(b geom.AABB, mark []bool) {
	for p, box := range f.Boxes {
		if !box.IsEmpty(f.Dim) && box.Intersects(b, f.Dim) {
			mark[p] = true
		}
	}
}

// K returns the number of subdomains.
func (f *BoxFilter) K() int { return len(f.Boxes) }

// TreeFilter filters by the decision-tree descriptor: partitions whose
// leaf regions intersect the query box. Labels are the contact-point
// partition labels the tree was induced on (needed for impure leaves).
// When TightBoxes is set (from dtree.Tree.PointBoxes), each leaf is
// additionally clipped to the bounding box of its own points, pruning
// the empty parts of leaf rectangles without losing completeness.
type TreeFilter struct {
	Tree       *dtree.Tree
	Labels     []int32
	TightBoxes []geom.AABB
}

// PartsFor marks every partition present in a leaf region that
// intersects b.
func (f *TreeFilter) PartsFor(b geom.AABB, mark []bool) {
	if f.TightBoxes != nil {
		f.Tree.PartsIntersectingTight(b, f.Labels, f.TightBoxes, mark)
		return
	}
	f.Tree.PartsIntersecting(b, f.Labels, mark)
}

// K returns the number of partitions the tree was induced over.
func (f *TreeFilter) K() int { return f.Tree.K }

// SurfaceOwners assigns each surface element to the partition owning
// the majority of its nodes (ties to the smaller partition id), given
// the nodal partition labels. This is where a surface element's
// contact computations happen in MCML+DT.
func SurfaceOwners(m *mesh.Mesh, labels []int32) []int32 {
	owners := make([]int32, len(m.Surface))
	counts := map[int32]int{}
	for i, s := range m.Surface {
		for k := range counts {
			delete(counts, k)
		}
		best, bestN := int32(0), -1
		for _, n := range s.Nodes {
			p := labels[n]
			counts[p]++
			if c := counts[p]; c > bestN || (c == bestN && p < best) {
				best, bestN = p, c
			}
		}
		owners[i] = best
	}
	return owners
}

// SurfaceBoxes returns the bounding box of every surface element,
// inflated by tol on each side (the contact-proximity tolerance).
func SurfaceBoxes(m *mesh.Mesh, tol float64) []geom.AABB {
	out := make([]geom.AABB, len(m.Surface))
	for i := range m.Surface {
		out[i] = m.SurfaceBox(i).Inflate(tol, m.Dim)
	}
	return out
}

// MaxFacetDiameter returns the largest bounding-box diagonal over the
// mesh's surface elements. Point-based descriptors (subdomain boxes of
// contact points, decision-tree leaves) are *sound* — guaranteed to
// ship every element that has a real contact within tol — only when
// the query boxes are inflated by at least tol + MaxFacetDiameter:
// the closest approach between two facets can occur mid-facet, up to a
// facet diameter away from every contact node.
func MaxFacetDiameter(m *mesh.Mesh) float64 {
	worst := 0.0
	for i := range m.Surface {
		b := m.SurfaceBox(i)
		if d := b.Extent().Norm(); d > worst {
			worst = d
		}
	}
	return worst
}

// NRemote computes the paper's NRemote metric: for every surface
// element (by its query box), the number of partitions other than its
// owner whose descriptor the box intersects, summed over elements.
// The sweep over elements runs on all cores.
func NRemote(boxes []geom.AABB, owners []int32, f Filter) int64 {
	k := f.K()
	nw := runtime.GOMAXPROCS(0)
	if nw > len(boxes) {
		nw = 1
	}
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (len(boxes) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(boxes) {
			hi = len(boxes)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mark := make([]bool, k)
			var local int64
			for i := lo; i < hi; i++ {
				f.PartsFor(boxes[i], mark)
				for p := 0; p < k; p++ {
					if mark[p] {
						if int32(p) != owners[i] {
							local++
						}
						mark[p] = false
					}
				}
			}
			mu.Lock()
			total += local
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	return total
}

// CandidateSets returns, per surface element, the sorted list of
// partitions its box must be sent to (owner excluded). Used by tests
// and the examples; NRemote is the total length of these lists.
func CandidateSets(boxes []geom.AABB, owners []int32, f Filter) [][]int32 {
	k := f.K()
	mark := make([]bool, k)
	out := make([][]int32, len(boxes))
	for i, b := range boxes {
		f.PartsFor(b, mark)
		for p := 0; p < k; p++ {
			if mark[p] {
				if int32(p) != owners[i] {
					out[i] = append(out[i], int32(p))
				}
				mark[p] = false
			}
		}
	}
	return out
}

// MissedContacts verifies filter completeness against ground truth:
// for every contact point q lying inside a surface element's query
// box, the filter must have marked q's partition. It returns the
// number of (element, point) incidences the filter would have missed —
// zero for any correct descriptor.
func MissedContacts(boxes []geom.AABB, owners []int32, f Filter,
	pts []geom.Point, ptLabels []int32, dim int) int64 {
	k := f.K()
	mark := make([]bool, k)
	var missed int64
	for i, b := range boxes {
		f.PartsFor(b, mark)
		for j, q := range pts {
			if ptLabels[j] != owners[i] && b.Contains(q, dim) && !mark[ptLabels[j]] {
				missed++
			}
		}
		for p := range mark {
			mark[p] = false
		}
	}
	return missed
}
