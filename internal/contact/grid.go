package contact

import (
	"math"

	"repro/internal/geom"
)

// UniformGrid is the bucket-based spatial index alternative to the
// BVH (Section 4's "various volume partitioning (or spatial indexing)
// techniques"; cf. the position-code algorithm of Oldenburg & Nilsson
// that the paper cites). Boxes are binned by the cells their extents
// overlap; queries scan the cells the query box overlaps. For
// near-uniform element sizes — the common case for contact surfaces —
// it builds an order of magnitude faster than the BVH at a few times
// the per-query cost (see the benchmarks), the right trade when the
// index is rebuilt every time step.
type UniformGrid struct {
	dim     int
	origin  geom.Point
	cell    float64
	nx, ny  int
	nz      int
	buckets [][]int32
	indexed int
	// stamps/epoch implement allocation-free per-query dedup of boxes
	// spanning several cells: stamps[i] == epoch marks box i as already
	// visited by the current query.
	stamps []int32
	epoch  int32
}

// NewUniformGrid builds a grid over the boxes with a cell size of
// roughly twice the median box extent (clamped to produce at most
// ~4x len(boxes) cells).
func NewUniformGrid(boxes []geom.AABB, dim int) *UniformGrid {
	g := &UniformGrid{dim: dim, cell: 1, nx: 1, ny: 1, nz: 1}
	if len(boxes) == 0 {
		g.buckets = make([][]int32, 1)
		return g
	}
	world := geom.Empty()
	var sumExt float64
	for _, b := range boxes {
		world = world.Union(b)
		e := b.Extent()
		for d := 0; d < dim; d++ {
			sumExt += e[d]
		}
	}
	avgExt := sumExt / float64(len(boxes)*dim)
	cell := 2 * avgExt
	if cell <= 0 {
		cell = 1
	}
	// Clamp the total cell count.
	for {
		nx := gridCount(world.Min[0], world.Max[0], cell)
		ny := gridCount(world.Min[1], world.Max[1], cell)
		nz := 1
		if dim == 3 {
			nz = gridCount(world.Min[2], world.Max[2], cell)
		}
		if nx*ny*nz <= 4*len(boxes)+64 {
			g.nx, g.ny, g.nz = nx, ny, nz
			break
		}
		cell *= 2
	}
	g.cell = cell
	g.origin = world.Min
	g.stamps = make([]int32, len(boxes))
	g.buckets = make([][]int32, g.nx*g.ny*g.nz)
	for i, b := range boxes {
		g.eachCell(b, func(c int) {
			g.buckets[c] = append(g.buckets[c], int32(i))
		})
		g.indexed++
	}
	return g
}

// gridCount returns the number of cells covering [lo, hi] at the given
// cell size. A coordinate landing exactly on hi maps to index n via
// floor division; cellRange's clamp folds it into cell n-1, so no
// extra boundary row is needed.
func gridCount(lo, hi, cell float64) int {
	n := int(math.Ceil((hi - lo) / cell))
	if n < 1 {
		n = 1
	}
	return n
}

// cellRange clamps box extents to cell indices along one axis.
func (g *UniformGrid) cellRange(lo, hi, origin float64, n int) (int, int) {
	a := int(math.Floor((lo - origin) / g.cell))
	b := int(math.Floor((hi - origin) / g.cell))
	if a < 0 {
		a = 0
	}
	if a > n-1 {
		a = n - 1
	}
	if b < a {
		b = a
	}
	if b > n-1 {
		b = n - 1
	}
	return a, b
}

// eachCell calls fn with the flat index of every cell b overlaps.
func (g *UniformGrid) eachCell(b geom.AABB, fn func(cell int)) {
	x0, x1 := g.cellRange(b.Min[0], b.Max[0], g.origin[0], g.nx)
	y0, y1 := g.cellRange(b.Min[1], b.Max[1], g.origin[1], g.ny)
	z0, z1 := 0, 0
	if g.dim == 3 {
		z0, z1 = g.cellRange(b.Min[2], b.Max[2], g.origin[2], g.nz)
	}
	for z := z0; z <= z1; z++ {
		for y := y0; y <= y1; y++ {
			base := (z*g.ny + y) * g.nx
			for x := x0; x <= x1; x++ {
				fn(base + x)
			}
		}
	}
}

// Query calls visit for every indexed box intersecting q. A box
// spanning several cells is reported once per query (deduplicated with
// the grid's epoch stamps, so queries allocate nothing), and in
// ascending index order is NOT guaranteed. The stamp buffer is owned
// by the grid: Query must not be called concurrently on one grid.
func (g *UniformGrid) Query(boxes []geom.AABB, q geom.AABB, visit func(i int32)) {
	if g.indexed == 0 {
		return
	}
	g.epoch++
	if g.epoch <= 0 { // epoch wrapped: reset all stamps once
		for i := range g.stamps {
			g.stamps[i] = 0
		}
		g.epoch = 1
	}
	g.eachCell(q, func(c int) {
		for _, i := range g.buckets[c] {
			if g.stamps[i] == g.epoch {
				continue
			}
			g.stamps[i] = g.epoch
			if boxes[i].Intersects(q, g.dim) {
				visit(i)
			}
		}
	})
}
