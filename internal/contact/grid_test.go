package contact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestUniformGridMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		boxes := make([]geom.AABB, n)
		for i := range boxes {
			c := geom.P3(r.Float64()*20, r.Float64()*20, r.Float64()*20)
			h := geom.P3(r.Float64(), r.Float64(), r.Float64())
			boxes[i] = geom.AABB{Min: c.Sub(h), Max: c.Add(h)}
		}
		g := NewUniformGrid(boxes, 3)
		for trial := 0; trial < 5; trial++ {
			c := geom.P3(r.Float64()*20, r.Float64()*20, r.Float64()*20)
			h := geom.P3(r.Float64()*3, r.Float64()*3, r.Float64()*3)
			q := geom.AABB{Min: c.Sub(h), Max: c.Add(h)}
			got := map[int32]bool{}
			g.Query(boxes, q, func(i int32) {
				if got[i] {
					t.Errorf("duplicate visit of %d", i)
				}
				got[i] = true
			})
			for i, b := range boxes {
				if got[int32(i)] != b.Intersects(q, 3) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func gridRandBoxes(r *rand.Rand, n int) []geom.AABB {
	boxes := make([]geom.AABB, n)
	for i := range boxes {
		c := geom.P3(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		h := geom.P3(r.Float64(), r.Float64(), r.Float64())
		boxes[i] = geom.AABB{Min: c.Sub(h), Max: c.Add(h)}
	}
	return boxes
}

func TestUniformGridMatchesBVH(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	boxes := gridRandBoxes(r, 500)
	grid := NewUniformGrid(boxes, 3)
	bvh := NewBVH(boxes, 3)
	for trial := 0; trial < 20; trial++ {
		q := gridRandBoxes(r, 1)[0]
		a := map[int32]bool{}
		b := map[int32]bool{}
		grid.Query(boxes, q, func(i int32) { a[i] = true })
		bvh.Query(boxes, q, func(i int32) { b[i] = true })
		if len(a) != len(b) {
			t.Fatalf("trial %d: grid found %d, bvh %d", trial, len(a), len(b))
		}
		for i := range a {
			if !b[i] {
				t.Fatalf("trial %d: grid found %d, bvh did not", trial, i)
			}
		}
	}
}

func TestUniformGridEmpty(t *testing.T) {
	g := NewUniformGrid(nil, 3)
	g.Query(nil, geom.AABB{Min: geom.P3(0, 0, 0), Max: geom.P3(1, 1, 1)}, func(int32) {
		t.Error("empty grid visited something")
	})
}

func TestUniformGridQueryOutsideWorld(t *testing.T) {
	boxes := []geom.AABB{{Min: geom.P3(0, 0, 0), Max: geom.P3(1, 1, 1)}}
	g := NewUniformGrid(boxes, 3)
	// Far-away query clamps into boundary cells and finds nothing.
	found := false
	g.Query(boxes, geom.AABB{Min: geom.P3(100, 100, 100), Max: geom.P3(101, 101, 101)}, func(int32) {
		found = true
	})
	if found {
		t.Error("distant query matched")
	}
	// A huge query covering the world finds the box.
	g.Query(boxes, geom.AABB{Min: geom.P3(-100, -100, -100), Max: geom.P3(101, 101, 101)}, func(i int32) {
		found = true
	})
	if !found {
		t.Error("covering query missed the box")
	}
}

func TestUniformGridCoincidentBoxes(t *testing.T) {
	// Degenerate: all boxes identical points (zero extent).
	boxes := make([]geom.AABB, 20)
	for i := range boxes {
		p := geom.P3(1, 2, 3)
		boxes[i] = geom.AABB{Min: p, Max: p}
	}
	g := NewUniformGrid(boxes, 3)
	count := 0
	g.Query(boxes, geom.AABB{Min: geom.P3(0, 0, 0), Max: geom.P3(5, 5, 5)}, func(int32) { count++ })
	if count != 20 {
		t.Errorf("found %d of 20 coincident boxes", count)
	}
}

func TestUniformGridQueryAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	boxes := gridRandBoxes(r, 1000)
	g := NewUniformGrid(boxes, 3)
	queries := gridRandBoxes(r, 16)
	found := 0
	allocs := testing.AllocsPerRun(200, func() {
		for _, q := range queries {
			g.Query(boxes, q, func(int32) { found++ })
		}
	})
	if allocs != 0 {
		t.Errorf("Query allocated %.1f times per run, want 0", allocs)
	}
	if found == 0 {
		t.Error("queries found nothing; test is vacuous")
	}
}

func TestUniformGridCellCountNoExtraRow(t *testing.T) {
	// [0,10] at cell 5 is exactly two cells; the old code added a third
	// boundary row.
	if n := gridCount(0, 10, 5); n != 2 {
		t.Errorf("gridCount(0,10,5) = %d, want 2", n)
	}
	if n := gridCount(0, 9, 5); n != 2 {
		t.Errorf("gridCount(0,9,5) = %d, want 2", n)
	}
	// Degenerate extents still get one cell.
	if n := gridCount(3, 3, 5); n != 1 {
		t.Errorf("gridCount(3,3,5) = %d, want 1", n)
	}
	// Boxes on the exact upper boundary are still indexed and found.
	boxes := []geom.AABB{
		{Min: geom.P3(0, 0, 0), Max: geom.P3(1, 1, 1)},
		{Min: geom.P3(9, 9, 9), Max: geom.P3(10, 10, 10)},
	}
	g := NewUniformGrid(boxes, 3)
	hit := map[int32]bool{}
	g.Query(boxes, geom.AABB{Min: geom.P3(9.5, 9.5, 9.5), Max: geom.P3(12, 12, 12)}, func(i int32) {
		hit[i] = true
	})
	if !hit[1] || hit[0] {
		t.Errorf("boundary query hits: %v, want only box 1", hit)
	}
}

func TestUniformGridManyQueriesStampReuse(t *testing.T) {
	// Repeated queries must keep deduplicating correctly as the epoch
	// advances (each Query bumps it once).
	r := rand.New(rand.NewSource(11))
	boxes := gridRandBoxes(r, 300)
	g := NewUniformGrid(boxes, 3)
	for trial := 0; trial < 500; trial++ {
		q := gridRandBoxes(r, 1)[0]
		seen := map[int32]bool{}
		g.Query(boxes, q, func(i int32) {
			if seen[i] {
				t.Fatalf("trial %d: duplicate visit of %d", trial, i)
			}
			seen[i] = true
		})
		for i, b := range boxes {
			if seen[int32(i)] != b.Intersects(q, 3) {
				t.Fatalf("trial %d: box %d wrong", trial, i)
			}
		}
	}
}

func BenchmarkUniformGridBuild(b *testing.B) {
	boxes := benchBoxes(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewUniformGrid(boxes, 3)
	}
}

func BenchmarkUniformGridQuery(b *testing.B) {
	boxes := benchBoxes(20000)
	g := NewUniformGrid(boxes, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		g.Query(boxes, boxes[i%len(boxes)], func(int32) { count++ })
	}
}
