package contact_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/sim"
)

func randBoxes(r *rand.Rand, n int) []geom.AABB {
	boxes := make([]geom.AABB, n)
	for i := range boxes {
		c := geom.P3(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		h := geom.P3(r.Float64(), r.Float64(), r.Float64())
		boxes[i] = geom.AABB{Min: c.Sub(h), Max: c.Add(h)}
	}
	return boxes
}

func TestBVHQueryMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		boxes := randBoxes(r, n)
		bvh := contact.NewBVH(boxes, 3)
		for trial := 0; trial < 5; trial++ {
			q := randBoxes(r, 1)[0]
			got := map[int32]bool{}
			bvh.Query(boxes, q, func(i int32) {
				if got[i] {
					return // duplicates are allowed but harmless; dedup
				}
				got[i] = true
			})
			for i, b := range boxes {
				want := b.Intersects(q, 3)
				if got[int32(i)] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBVHEmpty(t *testing.T) {
	bvh := contact.NewBVH(nil, 3)
	bvh.Query(nil, geom.AABB{Min: geom.P3(0, 0, 0), Max: geom.P3(1, 1, 1)}, func(int32) {
		t.Error("empty BVH visited something")
	})
	if pairs := bvh.Pairs(nil); len(pairs) != 0 {
		t.Error("empty BVH has pairs")
	}
}

func TestBVHPairsMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	boxes := randBoxes(r, 120)
	bvh := contact.NewBVH(boxes, 3)
	got := map[[2]int32]bool{}
	for _, p := range bvh.Pairs(boxes) {
		got[p] = true
	}
	want := 0
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Intersects(boxes[j], 3) {
				want++
				if !got[[2]int32{int32(i), int32(j)}] {
					t.Fatalf("missing pair (%d,%d)", i, j)
				}
			}
		}
	}
	if len(got) != want {
		t.Fatalf("got %d pairs, want %d", len(got), want)
	}
}

// twoSheets builds a 2D mesh with two parallel horizontal contact
// lines a known distance apart.
func twoSheets(gap float64) *mesh.Mesh {
	m := &mesh.Mesh{Dim: 2, EPtr: []int32{0}}
	// Bottom line y=0 with nodes every 1, top line y=gap.
	const n = 6
	for i := 0; i <= n; i++ {
		m.Coords = append(m.Coords, geom.P2(float64(i), 0))
	}
	for i := 0; i <= n; i++ {
		m.Coords = append(m.Coords, geom.P2(float64(i), gap))
	}
	for i := 0; i < n; i++ {
		m.Surface = append(m.Surface,
			mesh.SurfaceElem{Nodes: []int32{int32(i), int32(i + 1)}, Elem: -1},
			mesh.SurfaceElem{Nodes: []int32{int32(n + 1 + i), int32(n + 2 + i)}, Elem: -1},
		)
	}
	return m
}

func TestDetectContactsKnownGap(t *testing.T) {
	m := twoSheets(1.0)
	// tol below the gap: no contacts (adjacent segments share nodes and
	// are excluded).
	if pairs := contact.DetectContacts(m, 0.5); len(pairs) != 0 {
		t.Fatalf("tol 0.5 found %d pairs across a gap of 1", len(pairs))
	}
	// tol above the gap: every bottom segment touches the facing top
	// segment (and diagonal neighbors within reach).
	pairs := contact.DetectContacts(m, 1.1)
	if len(pairs) == 0 {
		t.Fatal("tol 1.1 found no pairs across a gap of 1")
	}
	crossSheet := 0
	for _, p := range pairs {
		// Every detection is at the true distance: cross-sheet pairs at
		// the gap (1), same-sheet non-adjacent segments at spacing (1).
		if p.Dist < 0.99 || p.Dist > 1.01 {
			t.Fatalf("pair (%d,%d) distance %g, want ~1", p.A, p.B, p.Dist)
		}
		ya := m.Coords[m.Surface[p.A].Nodes[0]][1]
		yb := m.Coords[m.Surface[p.B].Nodes[0]][1]
		if ya != yb {
			crossSheet++
		}
	}
	if crossSheet == 0 {
		t.Fatal("no cross-sheet contacts detected at tol above the gap")
	}
}

func TestDetectContactsExcludesSharedNodes(t *testing.T) {
	m := twoSheets(0.5)
	pairs := contact.DetectContacts(m, 10)
	for _, p := range pairs {
		for _, na := range m.Surface[p.A].Nodes {
			for _, nb := range m.Surface[p.B].Nodes {
				if na == nb {
					t.Fatalf("pair (%d,%d) shares node %d", p.A, p.B, na)
				}
			}
		}
	}
}

func TestDetectContactsDeterministic(t *testing.T) {
	m := twoSheets(1.0)
	a := contact.DetectContacts(m, 1.5)
	b := contact.DetectContacts(m, 1.5)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pair lists differ between runs")
		}
	}
}

// TestEndToEndNoLostContacts is the pipeline's crown-jewel property:
// run the impact simulation to mid-penetration, decompose with
// MCML+DT, detect the *actual* contacts, and verify the decision-tree
// global search would have shipped every cross-partition contact pair
// to the right processor.
func TestEndToEndNoLostContacts(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Scene.PlateNX, cfg.Scene.PlateNY, cfg.Scene.PlateNZ = 12, 12, 2
	cfg.Scene.ProjN, cfg.Scene.ProjLen = 2, 6
	cfg.Scene.ContactRadius = 4
	cfg.Steps = 30
	cfg.Snapshots = 3
	snaps, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 0.6
	for _, sn := range snaps {
		m := sn.Mesh
		d, err := core.Decompose(m, core.Config{K: 6, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		pairs := contact.DetectContacts(m, tol)
		owners := contact.SurfaceOwners(m, d.Labels)
		// Soundness requires inflating by tol + the largest facet
		// diameter: the closest approach can be mid-facet, away from
		// every contact node (see MaxFacetDiameter).
		boxes := contact.SurfaceBoxes(m, tol+contact.MaxFacetDiameter(m))
		filter := &contact.TreeFilter{
			Tree:       d.Descriptor,
			Labels:     d.ContactLabels,
			TightBoxes: d.Descriptor.PointBoxes(d.ContactPoints),
		}
		sets := contact.CandidateSets(boxes, owners, filter)
		if lost := contact.LostContacts(pairs, owners, sets); lost != 0 {
			t.Fatalf("snapshot %d: %d of %d real contacts lost by the filter",
				sn.Index, lost, len(pairs))
		}
		t.Logf("snapshot %d: %d real contact pairs, all covered", sn.Index, len(pairs))
	}
}

func TestLostContactsCounts(t *testing.T) {
	pairs := []contact.Pair{{A: 0, B: 1}, {A: 0, B: 2}}
	owners := []int32{0, 1, 0}
	// Pair (0,1) crosses partitions; sets say element 0 is sent nowhere
	// and element 1 is sent nowhere -> lost. Pair (0,2) is same-owner.
	sets := [][]int32{nil, nil, nil}
	if got := contact.LostContacts(pairs, owners, sets); got != 1 {
		t.Fatalf("lost = %d, want 1", got)
	}
	// Cover it from one side.
	sets[0] = []int32{1}
	if got := contact.LostContacts(pairs, owners, sets); got != 0 {
		t.Fatalf("lost = %d, want 0", got)
	}
}
