package contact

import (
	"sort"

	"repro/internal/geom"
)

// BVH is a bounding-volume hierarchy over a set of boxes, the spatial
// index the paper's Section 4 describes for serial global search ("on
// serial computers, global search is done efficiently by representing
// each contact surface by its bounding box and using various volume
// partitioning (or spatial indexing) techniques"). It provides the
// ground-truth candidate enumeration the filter implementations are
// validated against, and the broad phase of full serial contact
// detection.
type BVH struct {
	dim   int
	nodes []bvhNode
	items []int32 // leaf item indices, grouped per leaf
}

type bvhNode struct {
	box         geom.AABB
	left, right int32 // children, or -1 for leaves
	lo, hi      int32 // leaves: items[lo:hi]
}

// bvhLeafSize is the maximum number of boxes per leaf.
const bvhLeafSize = 8

// NewBVH builds a hierarchy over boxes (indices into the given slice).
// Empty input yields an empty (but usable) tree.
func NewBVH(boxes []geom.AABB, dim int) *BVH {
	t := &BVH{dim: dim}
	if len(boxes) == 0 {
		return t
	}
	items := make([]int32, len(boxes))
	for i := range items {
		items[i] = int32(i)
	}
	centers := make([]geom.Point, len(boxes))
	for i, b := range boxes {
		centers[i] = b.Center()
	}
	t.items = items
	t.build(boxes, centers, 0, len(items))
	return t
}

// build recursively constructs the subtree over t.items[lo:hi] and
// returns its node index.
func (t *BVH) build(boxes []geom.AABB, centers []geom.Point, lo, hi int) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, bvhNode{left: -1, right: -1})

	box := geom.Empty()
	for _, it := range t.items[lo:hi] {
		box = box.Union(boxes[it])
	}
	t.nodes[idx].box = box

	if hi-lo <= bvhLeafSize {
		t.nodes[idx].lo, t.nodes[idx].hi = int32(lo), int32(hi)
		return idx
	}
	// Split at the median center along the widest centroid axis.
	cbox := geom.Empty()
	for _, it := range t.items[lo:hi] {
		cbox = cbox.Extend(centers[it])
	}
	d := cbox.LongestDim(t.dim)
	sub := t.items[lo:hi]
	sort.Slice(sub, func(i, j int) bool {
		ci, cj := centers[sub[i]][d], centers[sub[j]][d]
		if ci != cj {
			return ci < cj
		}
		return sub[i] < sub[j]
	})
	mid := lo + (hi-lo)/2
	l := t.build(boxes, centers, lo, mid)
	r := t.build(boxes, centers, mid, hi)
	t.nodes[idx].left, t.nodes[idx].right = l, r
	return idx
}

// Query calls visit with the index of every indexed box intersecting q.
func (t *BVH) Query(boxes []geom.AABB, q geom.AABB, visit func(i int32)) {
	if len(t.nodes) == 0 {
		return
	}
	var stack [64]int32
	sp := 0
	stack[sp] = 0
	sp++
	for sp > 0 {
		sp--
		n := &t.nodes[stack[sp]]
		if !n.box.Intersects(q, t.dim) {
			continue
		}
		if n.left < 0 {
			for _, it := range t.items[n.lo:n.hi] {
				if boxes[it].Intersects(q, t.dim) {
					visit(it)
				}
			}
			continue
		}
		if sp+2 <= len(stack) {
			stack[sp] = n.left
			stack[sp+1] = n.right
			sp += 2
		} else {
			t.queryFrom(boxes, n.left, q, visit)
			t.queryFrom(boxes, n.right, q, visit)
		}
	}
}

func (t *BVH) queryFrom(boxes []geom.AABB, i int32, q geom.AABB, visit func(int32)) {
	n := &t.nodes[i]
	if !n.box.Intersects(q, t.dim) {
		return
	}
	if n.left < 0 {
		for _, it := range t.items[n.lo:n.hi] {
			if boxes[it].Intersects(q, t.dim) {
				visit(it)
			}
		}
		return
	}
	t.queryFrom(boxes, n.left, q, visit)
	t.queryFrom(boxes, n.right, q, visit)
}

// Pairs returns all unordered pairs (i < j) of indexed boxes that
// intersect each other — the broad-phase candidate set of serial
// contact detection.
func (t *BVH) Pairs(boxes []geom.AABB) [][2]int32 {
	var out [][2]int32
	for i := range boxes {
		t.Query(boxes, boxes[i], func(j int32) {
			if int32(i) < j {
				out = append(out, [2]int32{int32(i), j})
			}
		})
	}
	return out
}
