// Package pool provides the small bounded-concurrency substrate the
// evaluation pipeline runs on: fan a fixed set of independent jobs out
// over at most W workers, capture panics as errors instead of killing
// the process, and return results in submission order so concurrent
// execution is observationally identical to a serial loop.
//
// The package is deliberately tiny — two entry points — because every
// layer above it (the harness k-sweep, the per-snapshot measurement
// legs, future sharded backends) needs exactly this contract:
// deterministic outputs, bounded parallelism, no lost failures.
package pool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Workers resolves a worker-count request: n > 0 is used as given,
// anything else selects runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// A PanicError wraps a panic recovered from a pool job.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: job panicked: %v\n%s", e.Value, e.Stack)
}

// Map runs fn(0..n-1) on at most Workers(workers) goroutines and
// returns the results in index order: out[i] = fn(i). All n jobs run
// even after a failure (jobs are independent by contract); the first
// error in index order is returned. A panicking job is reported as a
// *PanicError rather than crashing the process.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	run(workers, n, func(i int) {
		out[i], errs[i] = safely(fn, i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Run executes the given functions concurrently on at most
// Workers(workers) goroutines and waits for all of them. The first
// error in argument order (panics included, as *PanicError) is
// returned.
func Run(workers int, fns ...func() error) error {
	errs := make([]error, len(fns))
	run(workers, len(fns), func(i int) {
		_, errs[i] = safely(func(i int) (struct{}, error) {
			return struct{}{}, fns[i]()
		}, i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// safely invokes fn(i), converting a panic into a *PanicError.
func safely[T any](fn func(i int) (T, error), i int) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// run is the shared scheduler: n jobs, min(Workers(workers), n)
// goroutines pulling indices from a channel. job must not panic
// (callers wrap with safely) and records its own result at its index,
// which is what makes the output ordering deterministic.
func run(workers, n int, job func(i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
