// Package pool provides the small bounded-concurrency substrate the
// evaluation pipeline runs on: fan a fixed set of independent jobs out
// over at most W workers, capture panics as errors instead of killing
// the process, and return results in submission order so concurrent
// execution is observationally identical to a serial loop.
//
// Two shapes of concurrency live here. Map and Run fan out a set of
// jobs known up front (the harness k-sweep, per-snapshot measurement
// legs). Group is the fork–join counterpart for recursive fan-out —
// tasks that discover and submit further tasks, like the children of a
// recursive-bisection node — with cancellation: the first failing task
// cancels the group, and queued-but-unstarted tasks are dropped
// instead of leaking work.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Workers resolves a worker-count request: n > 0 is used as given,
// anything else selects runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// A PanicError wraps a panic recovered from a pool job.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: job panicked: %v\n%s", e.Value, e.Stack)
}

// Map runs fn(0..n-1) on at most Workers(workers) goroutines and
// returns the results in index order: out[i] = fn(i). All n jobs run
// even after a failure (jobs are independent by contract); the first
// error in index order is returned. A panicking job is reported as a
// *PanicError rather than crashing the process.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	run(workers, n, func(i int) {
		out[i], errs[i] = safely(fn, i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Run executes the given functions concurrently on at most
// Workers(workers) goroutines and waits for all of them. The first
// error in argument order (panics included, as *PanicError) is
// returned.
func Run(workers int, fns ...func() error) error {
	errs := make([]error, len(fns))
	run(workers, len(fns), func(i int) {
		_, errs[i] = safely(func(i int) (struct{}, error) {
			return struct{}{}, fns[i]()
		}, i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Group is a cancellable fork–join task group on a fixed set of
// workers. Tasks are func(ctx) error and may Submit further tasks
// (recursive fan-out); tasks must never block on each other, which is
// what makes a fixed worker count deadlock-free. The first task error
// or panic cancels the group's context, and every task still sitting
// in the queue is dropped without running — a failed branch cancels
// its siblings instead of leaking their work. Wait blocks until no
// task is queued or running and returns the first failure.
//
// Output determinism is the caller's contract: tasks write to disjoint
// state (e.g. disjoint label ranges keyed by submission position), so
// scheduling order cannot be observed in the results.
type Group struct {
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []func(ctx context.Context) error
	pending int // queued + running tasks
	closed  bool
	err     error

	tasks   int64 // tasks executed
	dropped int64 // tasks dropped by cancellation
	busy    int   // workers currently running a task
	maxBusy int   // peak of busy (worker occupancy)
}

// GroupStats is a snapshot of a group's scheduling counters, for
// observability: how many tasks ran, how many were dropped by
// cancellation, and the peak number of simultaneously busy workers.
type GroupStats struct {
	Tasks      int64
	Dropped    int64
	MaxWorkers int
}

// NewGroup starts a group with Workers(workers) worker goroutines.
// The workers exit after Wait; a Group is single-use.
func NewGroup(ctx context.Context, workers int) *Group {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &Group{}
	g.cond = sync.NewCond(&g.mu)
	g.ctx, g.cancel = context.WithCancel(ctx)
	for i := 0; i < Workers(workers); i++ {
		//lint:ignore goroleak workers are joined by Wait through the cond/pending protocol, not a WaitGroup
		go g.worker()
	}
	return g
}

// Submit enqueues fn as a group task. Safe from inside other tasks.
// If the group is already cancelled the task is counted as dropped and
// Submit returns the context error instead of silently queueing work
// that would never run — the submitter learns immediately that its
// branch is dead. Submitting after Wait has returned panics.
func (g *Group) Submit(fn func(ctx context.Context) error) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		panic("pool: Submit on a finished Group")
	}
	if err := g.ctx.Err(); err != nil {
		g.dropped++
		g.mu.Unlock()
		return err
	}
	g.pending++
	g.queue = append(g.queue, fn)
	g.cond.Broadcast()
	g.mu.Unlock()
	return nil
}

// Fork is the cutoff-gated scheduling helper shared by the recursive
// partitioners (graph recursive bisection, geometric RCB): a
// subproblem of size >= cutoff is submitted as its own task (Fork
// returns nil immediately), anything smaller runs inline on the
// calling goroutine so small subtrees don't pay scheduling overhead.
// The inline path returns fn's error; callers propagate it so the
// group cancels exactly as it would for a submitted task. On a
// cancelled group Fork returns the context error without running or
// queueing fn (the recursion is already dead; starting more of it
// only delays Wait). Inline panics are not intercepted here — when
// Fork is called from inside a task the worker's recovery catches
// them, and on the strictly serial path (nil *Group, also valid) they
// reach the caller unchanged.
func (g *Group) Fork(size, cutoff int, fn func(ctx context.Context) error) error {
	if g != nil && size >= cutoff {
		return g.Submit(fn)
	}
	//lint:ignore ctxflow the nil-Group serial path runs inline on the caller's stack; there is no group context to inherit
	ctx := context.Background()
	if g != nil {
		if err := g.ctx.Err(); err != nil {
			return err
		}
		ctx = g.ctx
	}
	return fn(ctx)
}

// Wait blocks until every submitted task has run or been dropped,
// shuts the workers down, and returns the first task failure (panics
// included, as *PanicError). If the parent context was cancelled and
// tasks were dropped because of it, Wait returns that context error.
func (g *Group) Wait() error {
	g.mu.Lock()
	for g.pending > 0 {
		g.cond.Wait()
	}
	g.closed = true
	g.cond.Broadcast()
	err := g.err
	dropped := g.dropped
	g.mu.Unlock()
	g.cancel()
	if err == nil && dropped > 0 {
		err = g.ctx.Err()
	}
	return err
}

// Stats reports the group's scheduling counters.
func (g *Group) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GroupStats{Tasks: g.tasks, Dropped: g.dropped, MaxWorkers: g.maxBusy}
}

func (g *Group) worker() {
	g.mu.Lock()
	for {
		for len(g.queue) == 0 && !g.closed {
			g.cond.Wait()
		}
		if len(g.queue) == 0 {
			g.mu.Unlock()
			return
		}
		fn := g.queue[0]
		g.queue = g.queue[1:]
		if g.ctx.Err() != nil {
			g.dropped++
			g.finishLocked()
			continue
		}
		g.tasks++
		g.busy++
		if g.busy > g.maxBusy {
			g.maxBusy = g.busy
		}
		g.mu.Unlock()
		_, err := safely(func(int) (struct{}, error) { return struct{}{}, fn(g.ctx) }, 0)
		g.mu.Lock()
		g.busy--
		if err != nil && g.err == nil {
			g.err = err
			g.cancel()
		}
		g.finishLocked()
	}
}

// finishLocked retires one task and wakes Wait when the group drains.
func (g *Group) finishLocked() {
	g.pending--
	if g.pending == 0 {
		g.cond.Broadcast()
	}
}

// safely invokes fn(i), converting a panic into a *PanicError.
func safely[T any](fn func(i int) (T, error), i int) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// run is the shared scheduler: n jobs, min(Workers(workers), n)
// goroutines pulling indices from a channel. job must not panic
// (callers wrap with safely) and records its own result at its index,
// which is what makes the output ordering deterministic.
func run(workers, n int, job func(i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
