package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		out, err := Map(workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(workers, 50, func(i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, cap %d", p, workers)
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := Map(4, 10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errA
		case 7:
			return 0, errB
		}
		return i, nil
	})
	if err != errA {
		t.Errorf("got %v, want first error in index order", err)
	}
}

func TestMapRunsAllJobsDespiteError(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(2, 20, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if n := ran.Load(); n != 20 {
		t.Errorf("ran %d of 20 jobs", n)
	}
}

func TestMapPanicCapture(t *testing.T) {
	out, err := Map(4, 8, func(i int) (int, error) {
		if i == 5 {
			panic(fmt.Sprintf("job %d exploded", i))
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Value != "job 5 exploded" || len(pe.Stack) == 0 {
		t.Errorf("panic payload: %+v", pe.Value)
	}
	// Healthy jobs still produced their results.
	if out[7] != 7 {
		t.Errorf("out[7] = %d", out[7])
	}
}

func TestRunConcurrentAndOrdered(t *testing.T) {
	var mu sync.Mutex
	got := map[string]bool{}
	err := Run(0,
		func() error { mu.Lock(); got["a"] = true; mu.Unlock(); return nil },
		func() error { mu.Lock(); got["b"] = true; mu.Unlock(); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if !got["a"] || !got["b"] {
		t.Errorf("jobs missed: %v", got)
	}
}

func TestRunErrorAndPanic(t *testing.T) {
	errX := errors.New("x")
	if err := Run(2, func() error { return nil }, func() error { return errX }); err != errX {
		t.Errorf("got %v", err)
	}
	err := Run(2, func() error { panic("bad") }, func() error { return errX })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Errorf("first-by-order error should be the panic, got %v", err)
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(4); err != nil {
		t.Fatal(err)
	}
	out, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v %v", out, err)
	}
}

func TestGroupRecursiveFanOut(t *testing.T) {
	// Tasks submit subtasks, fork-join style: sum 1..n by binary
	// splitting, each leaf adding its value. Exercises Submit from
	// inside tasks and Wait draining a growing queue.
	g := NewGroup(context.Background(), 4)
	var sum atomic.Int64
	var split func(lo, hi int) func(context.Context) error
	split = func(lo, hi int) func(context.Context) error {
		return func(ctx context.Context) error {
			if hi-lo == 1 {
				sum.Add(int64(lo))
				return nil
			}
			mid := (lo + hi) / 2
			if err := g.Submit(split(lo, mid)); err != nil {
				return err
			}
			return split(mid, hi)(ctx)
		}
	}
	if err := g.Submit(split(1, 101)); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if s := sum.Load(); s != 5050 {
		t.Errorf("sum = %d, want 5050", s)
	}
	st := g.Stats()
	if st.Tasks == 0 || st.Dropped != 0 || st.MaxWorkers < 1 || st.MaxWorkers > 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGroupErrorCancelsQueuedSiblings(t *testing.T) {
	// One worker: the failing task runs first, so everything queued
	// behind it must be dropped, not run.
	g := NewGroup(context.Background(), 1)
	boom := errors.New("boom")
	var ran atomic.Int64
	if err := g.Submit(func(ctx context.Context) error { return boom }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		// The boom task may already have cancelled the group, making
		// Submit legitimately return the context error; either way the
		// task counts as dropped, which is what the test asserts.
		_ = g.Submit(func(ctx context.Context) error {
			ran.Add(1)
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d queued siblings ran after the failure", n)
	}
	if st := g.Stats(); st.Dropped != 50 {
		t.Errorf("dropped = %d, want 50", st.Dropped)
	}
}

func TestGroupExternalCancellationStopsQueuedTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	var ran atomic.Int64
	if err := g.Submit(func(ctx context.Context) error {
		close(started)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := g.Submit(func(ctx context.Context) error {
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err) // cancel() has not been called yet; Submit cannot fail
		}
	}
	<-started // the blocker occupies the only worker; the rest are queued
	cancel()
	close(release)
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d queued tasks ran after cancellation", n)
	}
}

func TestGroupSubmitAfterCancelReturnsError(t *testing.T) {
	// Regression: Submit on a cancelled group used to queue the task
	// silently (it would be dropped later without the submitter ever
	// learning); it must return the context error immediately.
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx, 2)
	cancel()
	ran := false
	err := g.Submit(func(ctx context.Context) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit after cancel = %v, want context.Canceled", err)
	}
	if werr := g.Wait(); !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", werr)
	}
	if ran {
		t.Error("task submitted after cancellation ran")
	}
	if st := g.Stats(); st.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", st.Dropped)
	}
}

func TestGroupCancellationMidFork(t *testing.T) {
	// Regression: a recursive task whose group is cancelled mid-fork
	// must get the context error back from Fork — on both the submit
	// path (size >= cutoff) and the inline path — instead of silently
	// continuing the recursion.
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx, 2)
	forkErrs := make(chan error, 2)
	ran := make(chan struct{}, 2)
	if err := g.Submit(func(ctx context.Context) error {
		cancel() // the "failure" happens while this task is mid-recursion
		forkErrs <- g.Fork(100, 10, func(ctx context.Context) error {
			ran <- struct{}{}
			return nil
		})
		forkErrs <- g.Fork(1, 10, func(ctx context.Context) error {
			ran <- struct{}{}
			return nil
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	g.Wait()
	for i := 0; i < 2; i++ {
		if err := <-forkErrs; !errors.Is(err, context.Canceled) {
			t.Errorf("Fork %d after cancel = %v, want context.Canceled", i, err)
		}
	}
	select {
	case <-ran:
		t.Error("forked task ran after cancellation")
	default:
	}
}

func TestGroupPanicBecomesError(t *testing.T) {
	g := NewGroup(context.Background(), 2)
	if err := g.Submit(func(ctx context.Context) error { panic("kaboom") }); err != nil {
		t.Fatal(err)
	}
	err := g.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Fatalf("Wait = %v, want *PanicError(kaboom)", err)
	}
}

func TestGroupForkCutoff(t *testing.T) {
	g := NewGroup(context.Background(), 2)
	var forked, inline atomic.Int64
	// The group is fresh and cannot be cancelled before this enqueue;
	// the inline Fork failure below is delivered through Wait.
	_ = g.Submit(func(ctx context.Context) error {
		// Above cutoff: scheduled as a task, returns nil immediately.
		if err := g.Fork(100, 10, func(ctx context.Context) error {
			forked.Add(1)
			return nil
		}); err != nil {
			return err
		}
		// Below cutoff: runs inline, error comes straight back.
		return g.Fork(5, 10, func(ctx context.Context) error {
			inline.Add(1)
			return errors.New("inline failure")
		})
	})
	if err := g.Wait(); err == nil {
		t.Fatal("inline Fork error lost")
	}
	if inline.Load() != 1 {
		t.Error("inline path did not run")
	}
}

func TestGroupForkNilRunsInline(t *testing.T) {
	// A nil group is the strictly serial path: everything inline.
	var g *Group
	ran := false
	if err := g.Fork(1<<30, 1, func(ctx context.Context) error {
		ran = true
		return nil
	}); err != nil || !ran {
		t.Fatalf("nil-group Fork: ran=%v err=%v", ran, err)
	}
}

func TestGroupWaitEmpty(t *testing.T) {
	g := NewGroup(context.Background(), 3)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("explicit count ignored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Error("default should be GOMAXPROCS")
	}
}
