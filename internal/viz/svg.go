// Package viz renders the paper's 2D figures (point sets, decision-tree
// leaf rectangles, RCB regions) as standalone SVG documents, using only
// the standard library. cmd/treedemo uses it for -svg output.
package viz

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/geom"
)

// palette holds visually distinct fill colors, cycled per partition.
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// Color returns the SVG color for partition p.
func Color(p int32) string { return palette[int(p)%len(palette)] }

// Canvas accumulates SVG elements in data coordinates and writes a
// scaled document. The y axis is flipped so larger y draws upward,
// matching the math convention of the figures.
type Canvas struct {
	box    geom.AABB
	width  float64
	height float64
	body   strings.Builder
}

// NewCanvas creates a canvas mapping box to a width x height pixel
// viewport (with a small margin).
func NewCanvas(box geom.AABB, width, height float64) *Canvas {
	return &Canvas{box: box, width: width, height: height}
}

const margin = 12.0

func (c *Canvas) sx(x float64) float64 {
	w := c.box.Max[0] - c.box.Min[0]
	if w == 0 {
		w = 1
	}
	return margin + (x-c.box.Min[0])/w*(c.width-2*margin)
}

func (c *Canvas) sy(y float64) float64 {
	h := c.box.Max[1] - c.box.Min[1]
	if h == 0 {
		h = 1
	}
	return c.height - margin - (y-c.box.Min[1])/h*(c.height-2*margin)
}

// Rect draws an axis-aligned rectangle with the given fill (use "none"
// for outline only) and stroke color.
func (c *Canvas) Rect(b geom.AABB, fill, stroke string, opacity float64) {
	x0, y0 := c.sx(b.Min[0]), c.sy(b.Max[1])
	x1, y1 := c.sx(b.Max[0]), c.sy(b.Min[1])
	fmt.Fprintf(&c.body,
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.2f" stroke="%s" stroke-width="1"/>`+"\n",
		x0, y0, x1-x0, y1-y0, fill, opacity, stroke)
}

// Point draws a filled circle at p.
func (c *Canvas) Point(p geom.Point, color string, r float64) {
	fmt.Fprintf(&c.body, `<circle cx="%.2f" cy="%.2f" r="%.1f" fill="%s"/>`+"\n",
		c.sx(p[0]), c.sy(p[1]), r, color)
}

// Line draws a line segment from a to b.
func (c *Canvas) Line(a, b geom.Point, color string, width float64) {
	fmt.Fprintf(&c.body, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		c.sx(a[0]), c.sy(a[1]), c.sx(b[0]), c.sy(b[1]), color, width)
}

// Text draws a label at p.
func (c *Canvas) Text(p geom.Point, s string) {
	fmt.Fprintf(&c.body, `<text x="%.2f" y="%.2f" font-size="11" font-family="sans-serif">%s</text>`+"\n",
		c.sx(p[0]), c.sy(p[1]), escape(s))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// WriteTo emits the SVG document. It implements io.WriterTo.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		c.width, c.height, c.width, c.height)
	total += int64(n)
	if err != nil {
		return total, err
	}
	n, err = io.WriteString(w, c.body.String())
	total += int64(n)
	if err != nil {
		return total, err
	}
	n, err = io.WriteString(w, "</svg>\n")
	total += int64(n)
	return total, err
}

// PartitionedPoints renders labeled points plus a set of region
// rectangles colored by region label — the standard layout of
// Figures 1(b) and 2(a).
func PartitionedPoints(pts []geom.Point, labels []int32, regions []geom.AABB, regionLabels []int32, width, height float64) *Canvas {
	box := geom.BoxOf(pts)
	for _, r := range regions {
		box = box.Union(r)
	}
	c := NewCanvas(box, width, height)
	for i, r := range regions {
		c.Rect(r, Color(regionLabels[i]), "#333333", 0.15)
	}
	for i, p := range pts {
		c.Point(p, Color(labels[i]), 3)
	}
	return c
}
