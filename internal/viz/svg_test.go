package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestCanvasProducesValidSVG(t *testing.T) {
	box := geom.AABB{Min: geom.P2(0, 0), Max: geom.P2(10, 10)}
	c := NewCanvas(box, 400, 300)
	c.Rect(geom.AABB{Min: geom.P2(1, 1), Max: geom.P2(4, 4)}, Color(0), "#000", 0.3)
	c.Point(geom.P2(2, 2), Color(1), 3)
	c.Line(geom.P2(0, 0), geom.P2(10, 10), "#888", 1)
	c.Text(geom.P2(5, 5), "A < 3 & \"x\"")
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<rect", "<circle", "<line", "<text", "&lt;", "&amp;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in SVG output", want)
		}
	}
	if strings.Contains(out, "A < 3") {
		t.Error("unescaped text in SVG")
	}
}

func TestCoordinateMapping(t *testing.T) {
	box := geom.AABB{Min: geom.P2(0, 0), Max: geom.P2(10, 10)}
	c := NewCanvas(box, 100, 100)
	// Data origin maps to bottom-left (y flipped): sy(0) > sy(10).
	if c.sy(0) <= c.sy(10) {
		t.Error("y axis not flipped")
	}
	if c.sx(0) >= c.sx(10) {
		t.Error("x axis reversed")
	}
	// Extremes stay inside the viewport.
	for _, v := range []float64{c.sx(0), c.sx(10)} {
		if v < 0 || v > 100 {
			t.Errorf("x coordinate %v outside viewport", v)
		}
	}
}

func TestDegenerateBox(t *testing.T) {
	// Zero-extent boxes must not divide by zero.
	box := geom.AABB{Min: geom.P2(5, 5), Max: geom.P2(5, 5)}
	c := NewCanvas(box, 100, 100)
	c.Point(geom.P2(5, 5), Color(0), 2)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("NaN in SVG output")
	}
}

func TestColorCycle(t *testing.T) {
	seen := map[string]bool{}
	for p := int32(0); p < 10; p++ {
		seen[Color(p)] = true
	}
	if len(seen) != 10 {
		t.Errorf("only %d distinct colors in first 10", len(seen))
	}
	if Color(0) != Color(10) {
		t.Error("palette does not cycle")
	}
}

func TestPartitionedPoints(t *testing.T) {
	pts := []geom.Point{geom.P2(0, 0), geom.P2(1, 1), geom.P2(2, 2)}
	labels := []int32{0, 1, 0}
	regions := []geom.AABB{
		{Min: geom.P2(0, 0), Max: geom.P2(1.5, 3)},
		{Min: geom.P2(1.5, 0), Max: geom.P2(3, 3)},
	}
	c := PartitionedPoints(pts, labels, regions, []int32{0, 1}, 300, 300)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<circle") != 3 {
		t.Errorf("want 3 circles, got %d", strings.Count(out, "<circle"))
	}
	if strings.Count(out, "<rect") != 2 {
		t.Errorf("want 2 rects, got %d", strings.Count(out, "<rect"))
	}
}
