package core

import (
	"math"
	"testing"

	"repro/internal/backend"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/meshgen"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim"
)

// testMesh returns a small projectile scene snapshot.
func testMesh(t *testing.T) *mesh.Mesh {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Scene.PlateNX, cfg.Scene.PlateNY, cfg.Scene.PlateNZ = 12, 12, 2
	cfg.Scene.ProjN, cfg.Scene.ProjLen = 2, 6
	cfg.Scene.ContactRadius = 4
	cfg.Steps = 20
	cfg.Snapshots = 2
	snaps, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snaps[0].Mesh
}

func TestDecomposeBasics(t *testing.T) {
	m := testMesh(t)
	d, err := Decompose(m, Config{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Labels) != m.NumNodes() {
		t.Fatalf("labels length %d", len(d.Labels))
	}
	for _, l := range d.Labels {
		if l < 0 || l >= 8 {
			t.Fatalf("label %d out of range", l)
		}
	}
	s := d.Stats()
	if s.Imbalance[0] > 1.15 || s.Imbalance[1] > 1.25 {
		t.Errorf("imbalance too high: %v", s.Imbalance)
	}
	if s.NTNodes < 1 {
		t.Error("descriptor tree empty")
	}
	if s.NumContacts == 0 {
		t.Error("no contact nodes")
	}
}

func TestDecomposeK1(t *testing.T) {
	m := testMesh(t)
	d, err := Decompose(m, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range d.Labels {
		if l != 0 {
			t.Fatal("K=1 must label everything 0")
		}
	}
	if d.Descriptor.NumNodes() != 1 {
		t.Errorf("K=1 descriptor has %d nodes, want 1 leaf", d.Descriptor.NumNodes())
	}
}

func TestDecomposeRejectsBadK(t *testing.T) {
	m := testMesh(t)
	if _, err := Decompose(m, Config{K: 0}); err == nil {
		t.Error("accepted K=0")
	}
}

func TestDescriptorLeavesPure(t *testing.T) {
	m := testMesh(t)
	d, err := Decompose(m, Config{K: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Descriptor.Nodes {
		n := &d.Descriptor.Nodes[i]
		if n.IsLeaf() && !n.Pure {
			// Only coincident contact points may stay impure.
			pts := d.Descriptor.LeafPoints(int32(i))
			first := d.ContactPoints[pts[0]]
			for _, p := range pts {
				if d.ContactPoints[p] != first {
					t.Fatalf("impure descriptor leaf %d with separable points", i)
				}
			}
		}
	}
}

func TestReshapeProducesAxisParallelRegions(t *testing.T) {
	// After reshaping, every guidance-tree leaf region must contain
	// nodes of a single partition (that is what "piecewise
	// axis-parallel boundaries" means operationally).
	m := testMesh(t)
	d, err := Decompose(m, Config{K: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.GuideTree == nil {
		t.Fatal("no guidance tree")
	}
	for i := range d.GuideTree.Nodes {
		n := &d.GuideTree.Nodes[i]
		if !n.IsLeaf() {
			continue
		}
		pts := d.GuideTree.LeafPoints(int32(i))
		first := d.Labels[pts[0]]
		for _, p := range pts {
			if d.Labels[p] != first {
				t.Fatalf("guide leaf %d spans partitions %d and %d", i, first, d.Labels[p])
			}
		}
	}
}

func TestReshapeReducesTreeSize(t *testing.T) {
	m := testMesh(t)
	reshaped, err := Decompose(m, Config{K: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Decompose(m, Config{K: 8, Seed: 4, SkipReshape: true})
	if err != nil {
		t.Fatal(err)
	}
	// The whole point of P -> P' -> P'': decision-tree-friendly
	// boundaries need fewer tree nodes.
	if reshaped.Descriptor.NumNodes() > raw.Descriptor.NumNodes() {
		t.Errorf("reshaped NTNodes %d > raw %d", reshaped.Descriptor.NumNodes(), raw.Descriptor.NumNodes())
	}
}

func TestDecomposeDeterminism(t *testing.T) {
	m := testMesh(t)
	a, err := Decompose(m, Config{K: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompose(m, Config{K: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Labels {
		if a.Labels[v] != b.Labels[v] {
			t.Fatal("same seed gave different decompositions")
		}
	}
	if a.Descriptor.NumNodes() != b.Descriptor.NumNodes() {
		t.Fatal("same seed gave different descriptor trees")
	}
}

func TestAutoThresholdsInPaperRanges(t *testing.T) {
	n, k := 100000, 25
	cfg := Config{K: k}.withDefaults(n)
	lowP := float64(n) / math.Pow(float64(k), 1.5)
	highP := float64(n) / float64(k)
	if float64(cfg.MaxPure) < lowP || float64(cfg.MaxPure) > highP {
		t.Errorf("MaxPure %d outside paper range [%.0f, %.0f]", cfg.MaxPure, lowP, highP)
	}
	lowI := float64(n) / math.Pow(float64(k), 2.5)
	highI := float64(n) / float64(k*k)
	if float64(cfg.MaxImpure) < lowI || float64(cfg.MaxImpure) > highI {
		t.Errorf("MaxImpure %d outside paper range [%.0f, %.0f]", cfg.MaxImpure, lowI, highI)
	}
}

func TestNRemoteTightNeverWorse(t *testing.T) {
	m := testMesh(t)
	d, err := Decompose(m, Config{K: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tight := NRemote(m, d.Labels, d.Descriptor, d.ContactPoints, d.ContactLabels, 0.5, true)
	loose := NRemote(m, d.Labels, d.Descriptor, d.ContactPoints, d.ContactLabels, 0.5, false)
	if tight > loose {
		t.Errorf("tight filter NRemote %d > loose %d", tight, loose)
	}
}

func TestDescriptorForMatchesUpdateSemantics(t *testing.T) {
	// Moving contact points and re-inducing must reuse the same labels
	// but reflect the new geometry.
	m := testMesh(t)
	d, err := Decompose(m, Config{K: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	m2 := m.Clone()
	for _, n := range m2.ContactNodes() {
		m2.Coords[n] = m2.Coords[n].Add(geom.P3(0.01, 0, 0))
	}
	tree, nodes, _, labels, err := DescriptorFor(m2, d.Labels, d.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != len(d.ContactNodes) {
		t.Fatalf("contact set changed: %d vs %d", len(nodes), len(d.ContactNodes))
	}
	for i := range labels {
		if labels[i] != d.ContactLabels[i] {
			t.Fatal("labels must be carried, not recomputed")
		}
	}
	if tree.NumNodes() < 1 {
		t.Fatal("empty updated tree")
	}
}

func TestStatsAgainstMetricsPackage(t *testing.T) {
	m := testMesh(t)
	d, err := Decompose(m, Config{K: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if want := metrics.CommVolume(d.Graph, d.Labels, 4); s.FEComm != want {
		t.Errorf("FEComm %d != %d", s.FEComm, want)
	}
	if want := metrics.EdgeCut(d.Graph, d.Labels); s.EdgeCut != want {
		t.Errorf("EdgeCut %d != %d", s.EdgeCut, want)
	}
}

func TestDecompose2DMesh(t *testing.T) {
	// The pipeline must handle 2D meshes end to end.
	m, err := meshgen.StructuredQuadGrid(meshgen.Grid2DSpec{Nx: 20, Ny: 20, H: geom.P2(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	// Bottom edge as contact surface.
	for _, f := range m.BoundaryFacets() {
		mid := (m.Coords[f.Nodes[0]][1] + m.Coords[f.Nodes[1]][1]) / 2
		if mid == 0 {
			m.Surface = append(m.Surface, f)
		}
	}
	if len(m.Surface) == 0 {
		t.Fatal("no surface designated")
	}
	d, err := Decompose(m, Config{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if d.Descriptor.Dim != 2 {
		t.Errorf("descriptor dim = %d", d.Descriptor.Dim)
	}
	if imb := d.Stats().Imbalance[0]; imb > 1.2 {
		t.Errorf("2D imbalance %v", imb)
	}
}

func TestDecomposeGeometric(t *testing.T) {
	m := testMesh(t)
	graphD, err := Decompose(m, Config{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sm := graphD.Stats()

	// Every geometric backend runs the same pipeline with its own
	// quality regime: rcb keeps box subdomains and both constraints
	// balanced; sfc balances both constraints best-effort along the
	// curve; bkmeans balances only the FE constraint.
	cases := []struct {
		backend  string
		ntFactor int64   // NTNodes bound, as a multiple of multilevel's (x10)
		imbFE    float64 // constraint-0 imbalance bound
		imbCt    float64 // constraint-1 bound (0 = unbalanced by design)
	}{
		{"rcb", 15, 1.5, 1.6},
		{"sfc", 40, 1.5, 0},
		{"bkmeans", 40, 1.4, 0},
	}
	for _, tc := range cases {
		t.Run(tc.backend, func(t *testing.T) {
			d, err := Decompose(m, Config{K: 8, Seed: 1, Backend: tc.backend})
			if err != nil {
				t.Fatal(err)
			}
			sg := d.Stats()
			if sg.NTNodes > int(int64(sm.NTNodes)*tc.ntFactor/10) {
				t.Errorf("%s NTNodes %d much larger than multilevel %d", tc.backend, sg.NTNodes, sm.NTNodes)
			}
			// The multilevel pipeline should win on communication volume.
			if sg.FEComm < sm.FEComm {
				t.Logf("note: %s FEComm %d < multilevel %d on this mesh", tc.backend, sg.FEComm, sm.FEComm)
			}
			if sg.Imbalance[0] > tc.imbFE {
				t.Errorf("%s FE imbalance %v", tc.backend, sg.Imbalance)
			}
			if tc.imbCt > 0 && sg.Imbalance[1] > tc.imbCt {
				t.Errorf("%s contact imbalance %v", tc.backend, sg.Imbalance)
			}
			t.Logf("%s: vol=%d NT=%d imb=%v; multilevel: vol=%d NT=%d imb=%v",
				tc.backend, sg.FEComm, sg.NTNodes, sg.Imbalance, sm.FEComm, sm.NTNodes, sm.Imbalance)
		})
	}
}

func TestRedecomposeMigratesBounded(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Scene.PlateNX, cfg.Scene.PlateNY, cfg.Scene.PlateNZ = 12, 12, 2
	cfg.Scene.ProjN, cfg.Scene.ProjLen = 2, 6
	cfg.Scene.ContactRadius = 4
	cfg.Steps = 40
	cfg.Snapshots = 4
	snaps, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d0, err := Decompose(snaps[0].Mesh, Config{K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Carry labels to the last snapshot via persistent ids.
	byID := map[int64]int32{}
	for v, id := range snaps[0].NodeID {
		byID[id] = d0.Labels[v]
	}
	last := snaps[len(snaps)-1]
	prev := make([]int32, last.Mesh.NumNodes())
	for v, id := range last.NodeID {
		prev[v] = byID[id]
	}
	d1, migrated, err := Redecompose(last.Mesh, prev, Config{K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if migrated > last.Mesh.NumNodes()/2 {
		t.Errorf("redecompose migrated %d of %d nodes", migrated, last.Mesh.NumNodes())
	}
	s := d1.Stats()
	if s.Imbalance[0] > 1.25 {
		t.Errorf("post-redecompose imbalance %v", s.Imbalance)
	}
	if d1.Descriptor.NumNodes() < 1 {
		t.Error("no descriptor after redecompose")
	}
}

func TestRedecomposeValidates(t *testing.T) {
	m := testMesh(t)
	if _, _, err := Redecompose(m, nil, Config{K: 4}); err == nil {
		t.Error("accepted wrong label length")
	}
	if _, _, err := Redecompose(m, make([]int32, m.NumNodes()), Config{K: 0}); err == nil {
		t.Error("accepted K=0")
	}
}

func TestWideGapsDescriptorStillSound(t *testing.T) {
	m := testMesh(t)
	d, err := Decompose(m, Config{K: 6, Seed: 11, WideGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	// The margin-aware tree classifies identically to the labels.
	for i, p := range d.ContactPoints {
		if d.Descriptor.PartOf(p) != d.ContactLabels[i] {
			t.Fatal("wide-gap tree misclassifies a contact point")
		}
	}
	base, err := Decompose(m, Config{K: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Same labels, so the trees have equal leaf populations even if
	// cuts differ.
	if d.Descriptor.NumLeaves() == 0 || base.Descriptor.NumLeaves() == 0 {
		t.Fatal("degenerate trees")
	}
	t.Logf("wide-gap NT=%d baseline NT=%d", d.Descriptor.NumNodes(), base.Descriptor.NumNodes())
}

func TestReshapeActuallyChangesLabels(t *testing.T) {
	m := testMesh(t)
	d, err := Decompose(m, Config{K: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for v := range d.Labels {
		if d.Labels[v] != d.RawLabels[v] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("reshaping changed no labels (guidance thresholds too small?)")
	}
	if changed > m.NumNodes()/2 {
		t.Errorf("reshaping rewrote %d of %d labels", changed, m.NumNodes())
	}
}

func TestNRemoteMonotoneInTolerance(t *testing.T) {
	m := testMesh(t)
	d, err := Decompose(m, Config{K: 6, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	small := d.NRemote(m, 0.1)
	big := d.NRemote(m, 2.0)
	if big < small {
		t.Errorf("NRemote not monotone in tolerance: %d at 0.1, %d at 2.0", small, big)
	}
}

// adaptiveSnaps builds a short deforming sequence for the adaptive
// warm-start tests.
func adaptiveSnaps(t *testing.T, n int) []sim.Snapshot {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Scene.PlateNX, cfg.Scene.PlateNY, cfg.Scene.PlateNZ = 12, 12, 2
	cfg.Scene.ProjN, cfg.Scene.ProjLen = 2, 6
	cfg.Scene.ContactRadius = 4
	cfg.Steps = 10 * n
	cfg.Snapshots = n
	snaps, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

func TestAdaptiveDecomposeKeepReturnsNil(t *testing.T) {
	m := testMesh(t)
	// A generous eps: reshape can push the final labels a little past a
	// tight balance cap, and this test exercises the keep path's
	// mechanics, not the threshold boundary (drift_test.go covers that).
	cfg := Config{K: 4, Seed: 1, Imbalance: 0.5}
	d, err := Decompose(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := d.Stats().EdgeCut
	// Same mesh, same labels: zero drift, zero imbalance change — the
	// policy must keep the decomposition and spend no partitioning work.
	nd, out, err := AdaptiveDecompose(m, d.Labels, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Decision != partition.DriftKeep {
		t.Fatalf("decision %v on an undrifted snapshot, want keep", out.Decision)
	}
	if nd != nil {
		t.Error("keep returned a new decomposition")
	}
	if out.Migrated != 0 {
		t.Errorf("keep migrated %d nodes", out.Migrated)
	}
	if out.BaselineCut != base {
		t.Errorf("keep changed the baseline cut: %d -> %d", base, out.BaselineCut)
	}
}

func TestAdaptiveDecomposeRepairsDrift(t *testing.T) {
	snaps := adaptiveSnaps(t, 4)
	cfg := Config{K: 6, Seed: 1}
	d0, err := Decompose(snaps[0].Mesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int64]int32{}
	for v, id := range snaps[0].NodeID {
		byID[id] = d0.Labels[v]
	}
	last := snaps[len(snaps)-1]
	prev := make([]int32, last.Mesh.NumNodes())
	for v, id := range last.NodeID {
		prev[v] = byID[id]
	}
	// Force a repair with paranoid thresholds, then check the outcome
	// is a usable decomposition with accurate bookkeeping.
	cfg.Drift = partition.DriftThresholds{CutDrift: 1e-9, FullCutDrift: 1e9, FullImbalance: 1e9}
	nd, out, err := AdaptiveDecompose(last.Mesh, prev, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Decision == partition.DriftKeep {
		t.Fatal("kept despite a near-zero drift threshold")
	}
	if nd == nil {
		t.Fatal("repair returned no decomposition")
	}
	if got := partition.EdgeCut(nd.Graph, nd.Labels); out.BaselineCut != got {
		t.Errorf("baseline cut %d, final labels cut %d", out.BaselineCut, got)
	}
	want := len(prev) - partition.Overlap(prev, nd.Labels)
	if out.Migrated != want {
		t.Errorf("migrated %d, label diff says %d", out.Migrated, want)
	}
	if nd.Descriptor.NumNodes() < 1 {
		t.Error("no descriptor after adaptive repair")
	}
}

func TestAdaptiveDecomposeValidates(t *testing.T) {
	m := testMesh(t)
	if _, _, err := AdaptiveDecompose(m, nil, 0, Config{K: 4}); err == nil {
		t.Error("accepted wrong label length")
	}
	if _, _, err := AdaptiveDecompose(m, make([]int32, m.NumNodes()), 0, Config{K: 0}); err == nil {
		t.Error("accepted K=0")
	}
	if _, _, err := AdaptiveDecompose(m, make([]int32, m.NumNodes()), 0, Config{K: 4, Backend: "quadtree"}); err == nil {
		t.Error("accepted unknown backend")
	}
}

// TestWarmstartCapabilityGate pins the capability-flag regression: the
// warm-started update paths accept exactly the backends that declare
// Warmstart, and reject the geometric ones with an error naming the
// capability rather than a hard-coded backend check.
func TestWarmstartCapabilityGate(t *testing.T) {
	m := testMesh(t)
	prev := make([]int32, m.NumNodes())
	for _, name := range backend.Names() {
		be, err := backend.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		_, _, adErr := AdaptiveDecompose(m, prev, 0, Config{K: 4, Seed: 1, Backend: name})
		_, _, rdErr := Redecompose(m, prev, Config{K: 4, Seed: 1, Backend: name})
		if be.Caps().Warmstart {
			if adErr != nil {
				t.Errorf("%s: AdaptiveDecompose rejected warm-start-capable backend: %v", name, adErr)
			}
			if rdErr != nil {
				t.Errorf("%s: Redecompose rejected warm-start-capable backend: %v", name, rdErr)
			}
			continue
		}
		if adErr == nil {
			t.Errorf("%s: AdaptiveDecompose accepted a backend without Warmstart", name)
		}
		if rdErr == nil {
			t.Errorf("%s: Redecompose accepted a backend without Warmstart", name)
		}
	}
}
