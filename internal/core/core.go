// Package core implements the paper's contribution, the MCML+DT
// decomposition pipeline of Section 4:
//
//  1. model the mesh as a nodal graph with two vertex weights (FE phase,
//     contact-search phase) and boosted weights on contact-contact edges;
//  2. compute a multilevel multi-constraint k-way partitioning P;
//  3. induce a decision tree over *all* mesh nodes (Guidance mode with
//     the max_p/max_i thresholds) and reassign every leaf's nodes to the
//     leaf's majority partition, yielding P' whose subdomain boundaries
//     are piecewise axis-parallel;
//  4. collapse the tree leaves into the region graph G' and run
//     multi-constraint k-way refinement on it to restore the balance
//     that the reassignment broke, yielding P”;
//  5. induce the contact-point decision tree (Descriptor mode) on P”
//     — the geometric subdomain descriptors used by global search.
//
// Between time steps the partition is kept and only step 5 re-runs
// (the paper's default update strategy); Hybrid updates re-run the
// whole pipeline every R steps.
package core

import (
	"fmt"
	"math"

	"repro/internal/backend"
	"repro/internal/contact"
	"repro/internal/dtree"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/partition"
)

// Config parameterizes Decompose.
type Config struct {
	// K is the number of partitions; Seed drives every randomized
	// phase deterministically.
	K    int
	Seed int64
	// Imbalance is the per-constraint tolerance epsilon (default 0.05).
	Imbalance float64
	// Nodal configures the two-constraint graph; zero value means
	// mesh.DefaultNodalOptions() (unit weights, contact edge weight 5).
	Nodal mesh.NodalGraphOptions
	// MaxPure/MaxImpure are the guidance-tree thresholds (max_p, max_i
	// of Section 4.2). Zero selects the geometric midpoint of the
	// paper's recommended ranges: max_p = n/k^1.25, max_i = n/k^2.25.
	MaxPure   int
	MaxImpure int
	// SkipReshape disables steps 3-4 (tree-guided reassignment and G'
	// refinement), leaving the raw multi-constraint partition — the
	// ablation showing why decision-tree-friendly boundaries matter.
	SkipReshape bool
	// Backend selects the partitioning algorithm for step 2 (see
	// internal/backend): "" or "multilevel" is the paper's multilevel
	// multi-constraint partitioner; "rcb", "sfc", and "bkmeans" are the
	// geometric alternatives from the paper's conclusions. Geometric
	// backends produce box-like subdomains by construction, so the
	// reshape steps 3-4 are skipped for them (gated on the backend's
	// Reshape capability, not its name); their edge cut and
	// communication volume are worse than the multilevel partitioner's
	// (see BENCH_backends.json for the measured crossover).
	Backend string
	// Parallel enables concurrent tree induction.
	Parallel bool
	// WideGaps selects margin-aware hyperplanes in the descriptor tree
	// (dtree.Options.PreferWideGaps) — the tree-induction improvement
	// of the paper's future-work section.
	WideGaps bool
	// Drift tunes the warm-start policy of AdaptiveDecompose (zero
	// value selects the partition.DriftThresholds defaults). Ignored by
	// Decompose and Redecompose.
	Drift partition.DriftThresholds
	// Obs, when non-nil, receives per-phase wall-clock timings
	// ("partition", "tree_induction") for every pipeline run.
	Obs *obs.Collector
	// Span, when non-nil, is the parent trace span: the pipeline
	// records "partition" and "tree_induction" child spans under it,
	// and the partitioner's bisection tasks record "rb_task" spans on
	// the "rb" track. Nil disables tracing at zero cost.
	Span *obs.Span
}

func (c Config) withDefaults(n int) Config {
	if c.Imbalance <= 0 {
		c.Imbalance = 0.05
	}
	if c.Nodal.NCon == 0 {
		c.Nodal = mesh.DefaultNodalOptions()
	}
	if c.MaxPure == 0 {
		c.MaxPure = autoThreshold(n, c.K, 1.25)
	}
	if c.MaxImpure == 0 {
		c.MaxImpure = autoThreshold(n, c.K, 2.25)
	}
	if c.MaxPure < 4 {
		c.MaxPure = 4
	}
	if c.MaxImpure < 2 {
		c.MaxImpure = 2
	}
	return c
}

// autoThreshold returns n / k^exp, the geometric midpoint of the
// paper's recommended [n/k^(exp+0.25), n/k^(exp-0.25)] ranges.
func autoThreshold(n, k int, exp float64) int {
	return int(float64(n) / math.Pow(float64(k), exp))
}

// requireWarmstart resolves the configured backend and rejects it when
// it lacks the Warmstart capability: the warm-started update paths
// repair inherited labels with the diffusion repartitioner, which only
// the multilevel backend implements.
func requireWarmstart(name, op string) error {
	be, err := backend.Lookup(name)
	if err != nil {
		return err
	}
	if !be.Caps().Warmstart {
		return fmt.Errorf("core: %s requires a warm-start-capable backend, %q is not (Caps().Warmstart=false)", op, be.Name())
	}
	return nil
}

// Decomposition is the output of the MCML+DT pipeline.
type Decomposition struct {
	Cfg   Config
	Graph *graph.Graph // the two-constraint nodal graph
	// Labels is P'': the final nodal partition.
	Labels []int32
	// RawLabels is P, the partition before tree-guided reshaping.
	RawLabels []int32
	// GuideTree is the full-node guidance tree (nil when SkipReshape).
	GuideTree *dtree.Tree
	// Descriptor is the contact-point decision tree used by global
	// search, with ContactLabels the labels it was induced on and
	// ContactNodes the mesh node ids of its points.
	Descriptor    *dtree.Tree
	ContactNodes  []int32
	ContactPoints []geom.Point
	ContactLabels []int32
}

// Decompose runs the full MCML+DT pipeline on a mesh.
func Decompose(m *mesh.Mesh, cfg Config) (*Decomposition, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("core: K = %d", cfg.K)
	}
	cfg = cfg.withDefaults(m.NumNodes())
	g := m.NodalGraph(cfg.Nodal)

	be, err := backend.Lookup(cfg.Backend)
	if err != nil {
		return nil, err
	}
	popt := partition.Options{K: cfg.K, Seed: cfg.Seed, Imbalance: cfg.Imbalance, Obs: cfg.Obs, Span: cfg.Span}
	stopPart := cfg.Obs.Start("partition")
	partSpan := cfg.Span.Child("partition",
		obs.Int("k", int64(cfg.K)), obs.Int("nv", int64(g.NV())), obs.Str("backend", be.Name()))
	raw, err := be.Partition(
		backend.Input{Graph: g, Coords: m.Coords, Dim: m.Dim},
		backend.Options{K: cfg.K, Seed: cfg.Seed, Imbalance: cfg.Imbalance, Obs: cfg.Obs, Span: cfg.Span})
	partSpan.End()
	stopPart()
	if err != nil {
		return nil, err
	}

	d := &Decomposition{
		Cfg:       cfg,
		Graph:     g,
		RawLabels: raw,
		Labels:    append([]int32(nil), raw...),
	}

	if !cfg.SkipReshape && be.Caps().Reshape && cfg.K > 1 {
		if err := d.reshape(m, popt); err != nil {
			return nil, err
		}
	}

	if err := d.induceDescriptor(m); err != nil {
		return nil, err
	}
	return d, nil
}

// Redecompose adapts a previous decomposition to an updated mesh: the
// multi-constraint *repartitioning* update of Section 4.3 ("the
// updated multi-constraint partitioning will be computed using a
// multi-constraint repartitioning algorithm [32]"). prevLabels maps
// every node of m to its previous partition (the caller carries labels
// across snapshots via persistent node ids). The repartitioner
// restores balance with bounded migration; the boundary reshaping and
// descriptor induction then run as in Decompose. Returns the new
// decomposition and the number of nodes that migrated.
func Redecompose(m *mesh.Mesh, prevLabels []int32, cfg Config) (*Decomposition, int, error) {
	if cfg.K < 1 {
		return nil, 0, fmt.Errorf("core: K = %d", cfg.K)
	}
	if len(prevLabels) != m.NumNodes() {
		return nil, 0, fmt.Errorf("core: %d previous labels for %d nodes", len(prevLabels), m.NumNodes())
	}
	if err := requireWarmstart(cfg.Backend, "Redecompose"); err != nil {
		return nil, 0, err
	}
	cfg = cfg.withDefaults(m.NumNodes())
	g := m.NodalGraph(cfg.Nodal)

	popt := partition.Options{K: cfg.K, Seed: cfg.Seed, Imbalance: cfg.Imbalance, Obs: cfg.Obs, Span: cfg.Span}
	stopPart := cfg.Obs.Start("partition")
	partSpan := cfg.Span.Child("partition", obs.Int("k", int64(cfg.K)), obs.Int("nv", int64(g.NV())))
	labels := append([]int32(nil), prevLabels...)
	migrated, err := partition.Repartition(g, labels, partition.RepartitionOptions{Options: popt})
	partSpan.End()
	stopPart()
	if err != nil {
		return nil, 0, err
	}

	d := &Decomposition{
		Cfg:       cfg,
		Graph:     g,
		RawLabels: append([]int32(nil), labels...),
		Labels:    labels,
	}
	if !cfg.SkipReshape && cfg.K > 1 {
		if err := d.reshape(m, popt); err != nil {
			return nil, 0, err
		}
	}
	if err := d.induceDescriptor(m); err != nil {
		return nil, 0, err
	}
	return d, migrated, nil
}

// AdaptiveOutcome reports what the drift policy did for one snapshot.
type AdaptiveOutcome struct {
	// Decision is the ladder rung that actually ran (a diffuse that
	// failed to repair the decay escalates and reports DriftFull).
	Decision partition.DriftDecision
	// Migrated counts nodes whose final label differs from prevLabels
	// (0 for a keep) — the Section 2 repartitioning objective.
	Migrated int
	// Cut and Imbalance are the inherited labels' measured quality on
	// the updated mesh, before any repair.
	Cut       int64
	Imbalance float64
	// BaselineCut is the caller's drift baseline for the next
	// snapshot: unchanged on keep (so slow decay keeps accumulating
	// against the last repair, not against yesterday's slightly worse
	// cut), refreshed to the repaired partition's cut otherwise.
	BaselineCut int64
}

// AdaptiveDecompose is the warm-started per-snapshot update of
// Section 4.3: it grades the inherited labels against the updated mesh
// with the drift policy (partition.DriftThresholds) and either keeps
// them (returning a nil Decomposition — the caller reuses its current
// one and only refreshes descriptors), repairs them with the diffusion
// repartitioner, or falls back to a full multilevel partition.
// baseCut is the edge cut measured right after the last repair (pass
// the initial Decompose's cut for snapshot 1); carry the returned
// BaselineCut forward. Deterministic: equal inputs give equal outputs
// for any worker count.
func AdaptiveDecompose(m *mesh.Mesh, prevLabels []int32, baseCut int64, cfg Config) (*Decomposition, AdaptiveOutcome, error) {
	var out AdaptiveOutcome
	if cfg.K < 1 {
		return nil, out, fmt.Errorf("core: K = %d", cfg.K)
	}
	if err := requireWarmstart(cfg.Backend, "AdaptiveDecompose"); err != nil {
		return nil, out, err
	}
	if len(prevLabels) != m.NumNodes() {
		return nil, out, fmt.Errorf("core: %d previous labels for %d nodes", len(prevLabels), m.NumNodes())
	}
	cfg = cfg.withDefaults(m.NumNodes())
	g := m.NodalGraph(cfg.Nodal)

	stopDrift := cfg.Obs.Start("drift_eval")
	cur := partition.MeasureDrift(g, prevLabels, cfg.K)
	out.Cut, out.Imbalance = cur.Cut, cur.Imbalance
	out.Decision = cfg.Drift.Decide(cur, baseCut, cfg.Imbalance)
	stopDrift()

	if out.Decision == partition.DriftKeep {
		out.BaselineCut = baseCut
		return nil, out, nil
	}

	popt := partition.Options{K: cfg.K, Seed: cfg.Seed, Imbalance: cfg.Imbalance, Obs: cfg.Obs, Span: cfg.Span}
	stopPart := cfg.Obs.Start("partition")
	partSpan := cfg.Span.Child("partition",
		obs.Int("k", int64(cfg.K)), obs.Int("nv", int64(g.NV())),
		obs.Str("mode", out.Decision.String()))
	labels := append([]int32(nil), prevLabels...)
	var err error
	if out.Decision == partition.DriftDiffuse {
		_, err = partition.Repartition(g, labels, partition.RepartitionOptions{Options: popt})
		if err == nil {
			// Escalate when diffusion could not actually repair the
			// decay: local moves cannot always fix a labeling that has
			// degraded structurally.
			post := partition.MeasureDrift(g, labels, cfg.K)
			if th := cfg.Drift.WithDefaults(cfg.Imbalance); post.Imbalance > th.FullImbalance {
				out.Decision = partition.DriftFull
			}
		}
	}
	if err == nil && out.Decision == partition.DriftFull {
		labels, err = partition.Partition(g, popt)
	}
	partSpan.End()
	stopPart()
	if err != nil {
		return nil, out, err
	}

	d := &Decomposition{
		Cfg:       cfg,
		Graph:     g,
		RawLabels: append([]int32(nil), labels...),
		Labels:    labels,
	}
	if !cfg.SkipReshape && cfg.K > 1 {
		if err := d.reshape(m, popt); err != nil {
			return nil, out, err
		}
	}
	if err := d.induceDescriptor(m); err != nil {
		return nil, out, err
	}
	out.Migrated = len(prevLabels) - partition.Overlap(prevLabels, d.Labels)
	out.BaselineCut = partition.EdgeCut(g, d.Labels)
	return d, out, nil
}

// reshape performs steps 3-4: guidance tree, majority reassignment,
// and G' refinement.
func (d *Decomposition) reshape(m *mesh.Mesh, popt partition.Options) error {
	cfg := d.Cfg
	stopTree := cfg.Obs.Start("tree_induction")
	treeSpan := cfg.Span.Child("tree_induction", obs.Str("mode", "guidance"))
	gt, err := dtree.Build(m.Coords, d.Labels, m.Dim, cfg.K, dtree.Options{
		Mode:      dtree.Guidance,
		MaxPure:   cfg.MaxPure,
		MaxImpure: cfg.MaxImpure,
		Parallel:  cfg.Parallel,
	})
	treeSpan.End()
	stopTree()
	if err != nil {
		return err
	}
	d.GuideTree = gt

	// Dense leaf numbering, majority label per leaf.
	leafGroup := make([]int32, len(gt.Nodes))
	for i := range leafGroup {
		leafGroup[i] = -1
	}
	var groupPart []int32
	for i := range gt.Nodes {
		if gt.Nodes[i].IsLeaf() {
			leafGroup[i] = int32(len(groupPart))
			groupPart = append(groupPart, gt.Nodes[i].Part)
		}
	}

	// P': every node takes its leaf's majority partition. Build the
	// region graph G' at the same time.
	group := make([]int32, m.NumNodes())
	for v := range group {
		group[v] = leafGroup[gt.LeafOf[v]]
		d.Labels[v] = groupPart[group[v]]
	}
	gq := d.Graph.Collapse(group, len(groupPart))

	// Multi-constraint k-way refinement on G' restores balance while
	// moving whole box-shaped regions, so P'' keeps axis-parallel
	// boundaries.
	partition.RefineKWay(gq, groupPart, popt)
	for v := range group {
		d.Labels[v] = groupPart[group[v]]
	}
	return nil
}

// induceDescriptor runs step 5 for the decomposition's own mesh.
func (d *Decomposition) induceDescriptor(m *mesh.Mesh) error {
	tree, nodes, pts, labels, err := DescriptorFor(m, d.Labels, d.Cfg)
	if err != nil {
		return err
	}
	d.Descriptor = tree
	d.ContactNodes = nodes
	d.ContactPoints = pts
	d.ContactLabels = labels
	return nil
}

// DescriptorFor induces the contact-point descriptor tree for a mesh
// under the given nodal partition labels. This is the cheap per-step
// update of Section 4.3: the partition stays, the tree is rebuilt for
// the new contact-point positions.
func DescriptorFor(m *mesh.Mesh, labels []int32, cfg Config) (*dtree.Tree, []int32, []geom.Point, []int32, error) {
	nodes := m.ContactNodes()
	pts := make([]geom.Point, len(nodes))
	cl := make([]int32, len(nodes))
	for i, n := range nodes {
		pts[i] = m.Coords[n]
		cl[i] = labels[n]
	}
	k := cfg.K
	if k < 1 {
		k = 1
	}
	stopTree := cfg.Obs.Start("tree_induction")
	treeSpan := cfg.Span.Child("tree_induction", obs.Str("mode", "descriptor"))
	tree, err := dtree.Build(pts, cl, m.Dim, k, dtree.Options{
		Mode:           dtree.Descriptor,
		Parallel:       cfg.Parallel,
		PreferWideGaps: cfg.WideGaps,
	})
	treeSpan.End()
	stopTree()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return tree, nodes, pts, cl, nil
}

// Stats summarizes a decomposition for reporting.
type Stats struct {
	FEComm      int64
	EdgeCut     int64
	NTNodes     int
	TreeHeight  int
	Imbalance   []float64
	NumContacts int
}

// Stats computes the decomposition's headline numbers against its own
// graph.
func (d *Decomposition) Stats() Stats {
	return Stats{
		FEComm:      metrics.CommVolume(d.Graph, d.Labels, d.Cfg.K),
		EdgeCut:     metrics.EdgeCut(d.Graph, d.Labels),
		NTNodes:     d.Descriptor.NumNodes(),
		TreeHeight:  d.Descriptor.Height(),
		Imbalance:   metrics.LoadImbalance(d.Graph, d.Labels, d.Cfg.K),
		NumContacts: len(d.ContactNodes),
	}
}

// NRemote runs the global search for mesh m with this decomposition's
// descriptor tree and returns the paper's NRemote metric. tol inflates
// every surface element's bounding box (the proximity tolerance).
func (d *Decomposition) NRemote(m *mesh.Mesh, tol float64) int64 {
	return NRemote(m, d.Labels, d.Descriptor, d.ContactPoints, d.ContactLabels, tol, true)
}

// NRemote computes the MCML+DT global-search volume for any mesh,
// labels, and descriptor tree combination. tight clips each leaf
// region to its points' bounding box (the production setting); pass
// false to measure the raw space-partition filter (ablation).
func NRemote(m *mesh.Mesh, labels []int32, desc *dtree.Tree, contactPts []geom.Point, contactLabels []int32, tol float64, tight bool) int64 {
	owners := contact.SurfaceOwners(m, labels)
	boxes := contact.SurfaceBoxes(m, tol)
	f := &contact.TreeFilter{Tree: desc, Labels: contactLabels}
	if tight {
		f.TightBoxes = desc.PointBoxes(contactPts)
	}
	return contact.NRemote(boxes, owners, f)
}
