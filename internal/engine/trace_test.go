package engine

// Integration test for span coverage of the engine layers: one traced
// RunOpts with first-attempt-only fault injection must produce a trace
// that validates (balanced, monotonic) and contains the canonical span
// and event names for every layer the engine touches — rank phases,
// transport exchanges, retries, and the injected faults themselves.

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

func TestEngineTraceCoversAllLayers(t *testing.T) {
	const k = 5
	sn, d := testSetup(t, k, 30)

	// Fault-free reference.
	ref, err := Run(sn.Mesh, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer()
	root := tr.Root("engine_test")
	st, err := RunOpts(sn.Mesh, d, 0.5, Options{
		Obs:  obs.New(),
		Span: root,
		Fault: &fault.Plan{
			Seed:             42,
			DropProb:         0.3,
			DupProb:          0.05,
			FirstAttemptOnly: true,
		},
	})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	// First-attempt-only faults must be fully recovered by retries.
	if st.Degraded {
		t.Fatal("engine degraded under first-attempt-only faults")
	}
	if len(st.Pairs) != len(ref.Pairs) {
		t.Fatalf("faulted run found %d pairs, fault-free %d", len(st.Pairs), len(ref.Pairs))
	}

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}

	// Every rank contributes a span on its own track plus the three
	// phase spans beneath it.
	for name, want := range map[string]int{
		"rank":           k,
		"ghost_exchange": k,
		"global_search":  k,
		"local_search":   k,
	} {
		if sum.Names[name] != want {
			t.Errorf("span %q appears %d times, want %d", name, sum.Names[name], want)
		}
	}
	// Transport exchanges happen at least once per rank per exchanging
	// phase; with drops injected, retries and fault events must show.
	for _, name := range []string{"transport_exchange", "retry", "fault_drop"} {
		if sum.Names[name] == 0 {
			t.Errorf("trace has no %q span/event", name)
		}
	}
	// One lane per rank track plus the main track.
	if sum.Tracks < k+1 {
		t.Errorf("trace has %d lanes, want at least %d (k ranks + main)", sum.Tracks, k+1)
	}
}
