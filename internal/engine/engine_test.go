package engine

import (
	"testing"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

func testSetup(t *testing.T, k int, steps int) (*sim.Snapshot, *core.Decomposition) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Scene.PlateNX, cfg.Scene.PlateNY, cfg.Scene.PlateNZ = 12, 12, 2
	cfg.Scene.ProjN, cfg.Scene.ProjLen = 2, 6
	cfg.Scene.ContactRadius = 4
	cfg.Steps = steps
	cfg.Snapshots = 2
	snaps, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sn := snaps[len(snaps)-1]
	d, err := core.Decompose(sn.Mesh, core.Config{K: k, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &sn, d
}

func TestGhostTrafficEqualsCommVolume(t *testing.T) {
	sn, d := testSetup(t, 6, 30)
	st, err := Run(sn.Mesh, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := metrics.CommVolume(d.Graph, d.Labels, 6)
	if st.GhostUnits != want {
		t.Errorf("ghost units %d != CommVolume %d", st.GhostUnits, want)
	}
	// Sent must equal received in aggregate.
	var recv int64
	for _, ws := range st.PerWorker {
		recv += ws.GhostsRecv
	}
	if recv != st.GhostUnits {
		t.Errorf("received %d != sent %d", recv, st.GhostUnits)
	}
}

func TestElementTrafficEqualsNRemote(t *testing.T) {
	sn, d := testSetup(t, 6, 30)
	const tol = 0.5
	st, err := Run(sn.Mesh, d, tol)
	if err != nil {
		t.Fatal(err)
	}
	searchTol := tol + contact.MaxFacetDiameter(sn.Mesh)
	owners := contact.SurfaceOwners(sn.Mesh, d.Labels)
	boxes := contact.SurfaceBoxes(sn.Mesh, searchTol)
	f := &contact.TreeFilter{
		Tree:       d.Descriptor,
		Labels:     d.ContactLabels,
		TightBoxes: d.Descriptor.PointBoxes(d.ContactPoints),
	}
	want := contact.NRemote(boxes, owners, f)
	if st.ElemsShipped != want {
		t.Errorf("elements shipped %d != NRemote %d", st.ElemsShipped, want)
	}
}

func TestParallelDetectionMatchesSerial(t *testing.T) {
	for _, k := range []int{2, 6, 13} {
		sn, d := testSetup(t, k, 30)
		const tol = 0.5
		st, err := Run(sn.Mesh, d, tol)
		if err != nil {
			t.Fatal(err)
		}
		serial := contact.DetectContacts(sn.Mesh, tol)
		if len(st.Pairs) != len(serial) {
			t.Fatalf("k=%d: parallel found %d pairs, serial %d", k, len(st.Pairs), len(serial))
		}
		for i := range serial {
			if st.Pairs[i].A != serial[i].A || st.Pairs[i].B != serial[i].B {
				t.Fatalf("k=%d: pair %d differs: (%d,%d) vs (%d,%d)",
					k, i, st.Pairs[i].A, st.Pairs[i].B, serial[i].A, serial[i].B)
			}
		}
		t.Logf("k=%d: %d pairs, ghosts=%d, shipped=%d, tree=%dB",
			k, len(st.Pairs), st.GhostUnits, st.ElemsShipped, st.TreeBytes)
	}
}

// TestAsymmetricShippingRegression pins the localSearch reporting-rule
// fix: when the tree filter ships element A to owner(B) without
// shipping B to owner(A), the canonical owner of A never sees the
// pair, and only the fallback rule ("rank owns B and A was received
// here") reports it. The decomposition is built by hand so the
// asymmetry is guaranteed: partition 0's contact point sits far from
// both facets, so nothing is ever shipped to rank 0, while partition
// 1's contact point sits between the facets, so A ships to rank 1.
// Before the fix, engine.Run returned zero pairs here while serial
// detection finds one.
func TestAsymmetricShippingRegression(t *testing.T) {
	// Two unit segments on the x-axis, 0.2 apart: facet A (nodes 0-1,
	// partition 0) and facet B (nodes 2-3, partition 1).
	m := &mesh.Mesh{
		Dim: 2,
		Coords: []geom.Point{
			geom.P2(0, 0), geom.P2(1, 0),
			geom.P2(1.2, 0), geom.P2(2.2, 0),
		},
		EPtr: []int32{0},
		Surface: []mesh.SurfaceElem{
			{Nodes: []int32{0, 1}, Elem: -1},
			{Nodes: []int32{2, 3}, Elem: -1},
		},
	}
	labels := []int32{0, 0, 1, 1}

	// Descriptor tree over one contact point per partition. Partition
	// 0's point is far left: its tight leaf box intersects neither
	// inflated facet box, so the filter never ships anything to rank 0.
	// Partition 1's point lies between the facets, so A's box reaches
	// it and A ships to rank 1.
	pts := []geom.Point{geom.P2(-10, 0), geom.P2(1.5, 0)}
	ptLabels := []int32{0, 1}
	tree, err := dtree.Build(pts, ptLabels, 2, 2, dtree.Options{Mode: dtree.Descriptor})
	if err != nil {
		t.Fatal(err)
	}

	d := &core.Decomposition{
		Cfg:           core.Config{K: 2},
		Graph:         graph.NewBuilder(m.NumNodes(), 1).Build(),
		Labels:        labels,
		Descriptor:    tree,
		ContactPoints: pts,
		ContactLabels: ptLabels,
	}

	const tol = 0.3
	serial := contact.DetectContacts(m, tol)
	if len(serial) != 1 {
		t.Fatalf("scene construction broken: serial found %d pairs, want 1", len(serial))
	}

	st, err := Run(m, d, tol)
	if err != nil {
		t.Fatal(err)
	}
	// The shipping really is asymmetric: exactly one element shipped
	// (A to rank 1), nothing to rank 0.
	if st.ElemsShipped != 1 || st.PerWorker[0].ElemsRecv != 0 {
		t.Fatalf("shipping not asymmetric: shipped=%d, rank0 received=%d",
			st.ElemsShipped, st.PerWorker[0].ElemsRecv)
	}
	if len(st.Pairs) != 1 {
		t.Fatalf("parallel detection dropped the asymmetric pair: got %d pairs, want 1", len(st.Pairs))
	}
	if st.Pairs[0] != serial[0] {
		t.Errorf("pair differs: parallel %+v, serial %+v", st.Pairs[0], serial[0])
	}
}

// TestFallbackDoesNotDuplicate: when shipping is symmetric both owners
// report the pair, and the collector must fold the duplicates.
func TestFallbackDoesNotDuplicate(t *testing.T) {
	for _, k := range []int{3, 8} {
		sn, d := testSetup(t, k, 30)
		const tol = 0.5
		st, err := Run(sn.Mesh, d, tol)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[[2]int32]bool{}
		for _, pr := range st.Pairs {
			key := [2]int32{pr.A, pr.B}
			if seen[key] {
				t.Fatalf("k=%d: duplicate pair (%d,%d)", k, pr.A, pr.B)
			}
			seen[key] = true
		}
		serial := contact.DetectContacts(sn.Mesh, tol)
		if len(st.Pairs) != len(serial) {
			t.Fatalf("k=%d: %d pairs vs serial %d", k, len(st.Pairs), len(serial))
		}
	}
}

func TestRunObservedRecordsPhases(t *testing.T) {
	sn, d := testSetup(t, 4, 30)
	col := obs.New()
	st, err := RunObserved(sn.Mesh, d, 0.5, col)
	if err != nil {
		t.Fatal(err)
	}
	r := col.Report()
	phases := map[string]obs.PhaseStat{}
	for _, p := range r.Phases {
		phases[p.Name] = p
	}
	for _, name := range []string{"global_search", "local_search"} {
		p, ok := phases[name]
		if !ok {
			t.Fatalf("phase %q not recorded: %+v", name, r.Phases)
		}
		if p.Count != 4 {
			t.Errorf("%s count %d, want one per worker", name, p.Count)
		}
	}
	counters := map[string]int64{}
	for _, c := range r.Counters {
		counters[c.Name] = c.Value
	}
	if counters["elems_shipped"] != st.ElemsShipped {
		t.Errorf("elems_shipped counter %d != %d", counters["elems_shipped"], st.ElemsShipped)
	}
	if counters["pairs_detected"] != int64(len(st.Pairs)) {
		t.Errorf("pairs counter %d != %d", counters["pairs_detected"], len(st.Pairs))
	}
}

func TestRunK1NoTraffic(t *testing.T) {
	sn, d := testSetup(t, 1, 30)
	st, err := Run(sn.Mesh, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if st.GhostUnits != 0 || st.ElemsShipped != 0 {
		t.Errorf("k=1 had traffic: ghosts=%d elems=%d", st.GhostUnits, st.ElemsShipped)
	}
	serial := contact.DetectContacts(sn.Mesh, 0.5)
	if len(st.Pairs) != len(serial) {
		t.Errorf("k=1 pairs %d != serial %d", len(st.Pairs), len(serial))
	}
}

func TestWorkerStatsConsistent(t *testing.T) {
	sn, d := testSetup(t, 5, 30)
	st, err := Run(sn.Mesh, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var nodes, elems int
	for _, ws := range st.PerWorker {
		nodes += ws.OwnedNodes
		elems += ws.OwnedElems
	}
	if nodes != sn.Mesh.NumNodes() {
		t.Errorf("owned nodes %d != %d", nodes, sn.Mesh.NumNodes())
	}
	if elems != len(sn.Mesh.Surface) {
		t.Errorf("owned elems %d != %d", elems, len(sn.Mesh.Surface))
	}
	if st.TreeBytes <= 0 {
		t.Error("no tree broadcast")
	}
}

func TestRunDeterministicPairs(t *testing.T) {
	sn, d := testSetup(t, 4, 30)
	a, err := Run(sn.Mesh, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sn.Mesh, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatal("pairs differ between runs")
		}
	}
}
