package engine

import (
	"testing"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func testSetup(t *testing.T, k int, steps int) (*sim.Snapshot, *core.Decomposition) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Scene.PlateNX, cfg.Scene.PlateNY, cfg.Scene.PlateNZ = 12, 12, 2
	cfg.Scene.ProjN, cfg.Scene.ProjLen = 2, 6
	cfg.Scene.ContactRadius = 4
	cfg.Steps = steps
	cfg.Snapshots = 2
	snaps, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sn := snaps[len(snaps)-1]
	d, err := core.Decompose(sn.Mesh, core.Config{K: k, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &sn, d
}

func TestGhostTrafficEqualsCommVolume(t *testing.T) {
	sn, d := testSetup(t, 6, 30)
	st, err := Run(sn.Mesh, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := metrics.CommVolume(d.Graph, d.Labels, 6)
	if st.GhostUnits != want {
		t.Errorf("ghost units %d != CommVolume %d", st.GhostUnits, want)
	}
	// Sent must equal received in aggregate.
	var recv int64
	for _, ws := range st.PerWorker {
		recv += ws.GhostsRecv
	}
	if recv != st.GhostUnits {
		t.Errorf("received %d != sent %d", recv, st.GhostUnits)
	}
}

func TestElementTrafficEqualsNRemote(t *testing.T) {
	sn, d := testSetup(t, 6, 30)
	const tol = 0.5
	st, err := Run(sn.Mesh, d, tol)
	if err != nil {
		t.Fatal(err)
	}
	searchTol := tol + contact.MaxFacetDiameter(sn.Mesh)
	owners := contact.SurfaceOwners(sn.Mesh, d.Labels)
	boxes := contact.SurfaceBoxes(sn.Mesh, searchTol)
	f := &contact.TreeFilter{
		Tree:       d.Descriptor,
		Labels:     d.ContactLabels,
		TightBoxes: d.Descriptor.PointBoxes(d.ContactPoints),
	}
	want := contact.NRemote(boxes, owners, f)
	if st.ElemsShipped != want {
		t.Errorf("elements shipped %d != NRemote %d", st.ElemsShipped, want)
	}
}

func TestParallelDetectionMatchesSerial(t *testing.T) {
	for _, k := range []int{2, 6, 13} {
		sn, d := testSetup(t, k, 30)
		const tol = 0.5
		st, err := Run(sn.Mesh, d, tol)
		if err != nil {
			t.Fatal(err)
		}
		serial := contact.DetectContacts(sn.Mesh, tol)
		if len(st.Pairs) != len(serial) {
			t.Fatalf("k=%d: parallel found %d pairs, serial %d", k, len(st.Pairs), len(serial))
		}
		for i := range serial {
			if st.Pairs[i].A != serial[i].A || st.Pairs[i].B != serial[i].B {
				t.Fatalf("k=%d: pair %d differs: (%d,%d) vs (%d,%d)",
					k, i, st.Pairs[i].A, st.Pairs[i].B, serial[i].A, serial[i].B)
			}
		}
		t.Logf("k=%d: %d pairs, ghosts=%d, shipped=%d, tree=%dB",
			k, len(st.Pairs), st.GhostUnits, st.ElemsShipped, st.TreeBytes)
	}
}

func TestRunK1NoTraffic(t *testing.T) {
	sn, d := testSetup(t, 1, 30)
	st, err := Run(sn.Mesh, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if st.GhostUnits != 0 || st.ElemsShipped != 0 {
		t.Errorf("k=1 had traffic: ghosts=%d elems=%d", st.GhostUnits, st.ElemsShipped)
	}
	serial := contact.DetectContacts(sn.Mesh, 0.5)
	if len(st.Pairs) != len(serial) {
		t.Errorf("k=1 pairs %d != serial %d", len(st.Pairs), len(serial))
	}
}

func TestWorkerStatsConsistent(t *testing.T) {
	sn, d := testSetup(t, 5, 30)
	st, err := Run(sn.Mesh, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var nodes, elems int
	for _, ws := range st.PerWorker {
		nodes += ws.OwnedNodes
		elems += ws.OwnedElems
	}
	if nodes != sn.Mesh.NumNodes() {
		t.Errorf("owned nodes %d != %d", nodes, sn.Mesh.NumNodes())
	}
	if elems != len(sn.Mesh.Surface) {
		t.Errorf("owned elems %d != %d", elems, len(sn.Mesh.Surface))
	}
	if st.TreeBytes <= 0 {
		t.Error("no tree broadcast")
	}
}

func TestRunDeterministicPairs(t *testing.T) {
	sn, d := testSetup(t, 4, 30)
	a, err := Run(sn.Mesh, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sn.Mesh, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatal("pairs differ between runs")
		}
	}
}
