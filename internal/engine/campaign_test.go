package engine

import (
	"testing"

	"repro/internal/contact"
	"repro/internal/sim"
)

func campaignSnaps(t *testing.T) []sim.Snapshot {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Scene.PlateNX, cfg.Scene.PlateNY, cfg.Scene.PlateNZ = 10, 10, 2
	cfg.Scene.ProjN, cfg.Scene.ProjLen = 2, 6
	cfg.Scene.ContactRadius = 3
	cfg.Steps = 40
	cfg.Snapshots = 4
	snaps, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

func TestCampaignRuns(t *testing.T) {
	snaps := campaignSnaps(t)
	res, err := RunCampaign(snaps, CampaignConfig{K: 5, Seed: 1, Tol: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshots != 4 || len(res.PerSnapshot) != 4 {
		t.Fatalf("snapshots = %d", res.Snapshots)
	}
	if res.GhostUnits <= 0 || res.TreeBytes <= 0 {
		t.Errorf("missing traffic: %+v", res)
	}
	// Every per-snapshot detection must match serial detection.
	for i, st := range res.PerSnapshot {
		serial := contact.DetectContacts(snaps[i].Mesh, 0.5)
		if len(st.Pairs) != len(serial) {
			t.Fatalf("snapshot %d: parallel %d pairs, serial %d", i, len(st.Pairs), len(serial))
		}
	}
}

func TestCampaignWithRepartitioning(t *testing.T) {
	snaps := campaignSnaps(t)
	res, err := RunCampaign(snaps, CampaignConfig{K: 4, Seed: 2, Tol: 0.5, RepartitionEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshots != 4 {
		t.Fatalf("snapshots = %d", res.Snapshots)
	}
}

func TestCampaignEmpty(t *testing.T) {
	if _, err := RunCampaign(nil, CampaignConfig{K: 2, Tol: 0.5}); err == nil {
		t.Error("accepted empty sequence")
	}
}
