// Package engine executes one iteration of the parallel contact/impact
// computation that the paper's decompositions exist to serve, using k
// concurrent workers that communicate only by message passing
// (channels standing in for MPI ranks):
//
//	phase 1 (FE):       each worker updates its own nodes and sends
//	                    ghost copies of boundary nodes to the
//	                    partitions that neighbor them — the traffic
//	                    FEComm predicts;
//	phase 2 (global search): the contact-point decision tree is
//	                    *broadcast* (serialized and re-parsed per
//	                    worker, as Section 4.1.1 requires), each worker
//	                    filters its surface elements through it and
//	                    ships them to candidate partitions — the
//	                    traffic NRemote predicts;
//	phase 3 (local search): each worker runs exact narrow-phase
//	                    detection between its own and received
//	                    elements.
//
// The engine reports the realized communication volumes so tests can
// assert they equal the analytic metrics, and the detected contact
// pairs so tests can assert parity with serial detection.
package engine

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/obs"
)

// Stats is the outcome of one parallel iteration.
type Stats struct {
	K int
	// GhostUnits counts (node, destination-partition) copies sent in
	// phase 1; it equals metrics.CommVolume of the nodal partition.
	GhostUnits int64
	// ElemsShipped counts (surface element, destination) shipments in
	// phase 2; it equals the NRemote metric for the same filter.
	ElemsShipped int64
	// TreeBytes is the size of the serialized descriptor broadcast to
	// every worker.
	TreeBytes int64
	// Pairs are the contacts detected across all workers, deduplicated
	// and sorted (A < B).
	Pairs []contact.Pair
	// PerWorker holds per-rank tallies.
	PerWorker []WorkerStats
}

// WorkerStats tallies one worker's traffic.
type WorkerStats struct {
	OwnedNodes    int
	OwnedElems    int
	GhostsSent    int64
	GhostsRecv    int64
	ElemsSent     int64
	ElemsRecv     int64
	PairsDetected int
}

// ghostMsg carries boundary-node data from one rank to another.
type ghostMsg struct {
	from  int
	nodes []int32 // node ids (payload stands in for coordinates/forces)
}

// elemMsg carries shipped surface elements.
type elemMsg struct {
	from  int
	elems []int32 // surface element indices
}

// Run executes one iteration for the decomposition d of mesh m.
// tol is the narrow-phase contact tolerance; element shipping uses the
// sound inflation tol + MaxFacetDiameter so no contact can be lost.
func Run(m *mesh.Mesh, d *core.Decomposition, tol float64) (*Stats, error) {
	return RunObserved(m, d, tol, nil)
}

// RunObserved is Run with per-phase observability: each worker's
// global-search and local-search wall time is recorded under the
// canonical "global_search" / "local_search" phases (count = k,
// total = aggregate busy time across workers), plus the realized
// traffic counters. col may be nil.
func RunObserved(m *mesh.Mesh, d *core.Decomposition, tol float64, col *obs.Collector) (*Stats, error) {
	k := d.Cfg.K
	if k < 1 {
		return nil, fmt.Errorf("engine: k = %d", k)
	}
	labels := d.Labels

	// Broadcast the descriptor tree: serialize once, parse per worker.
	var treeBuf bytes.Buffer
	if _, err := d.Descriptor.WriteTo(&treeBuf); err != nil {
		return nil, err
	}
	treeBytes := int64(treeBuf.Len())

	owners := contact.SurfaceOwners(m, labels)
	searchTol := tol + contact.MaxFacetDiameter(m)
	boxes := contact.SurfaceBoxes(m, searchTol)

	// Ownership tables.
	nodesOf := make([][]int32, k)
	for v := 0; v < m.NumNodes(); v++ {
		p := labels[v]
		nodesOf[p] = append(nodesOf[p], int32(v))
	}
	elemsOf := make([][]int32, k)
	for e, p := range owners {
		elemsOf[p] = append(elemsOf[p], int32(e))
	}

	// Phase-1 send lists: node v goes to every distinct neighbor
	// partition (computed from the nodal graph adjacency).
	g := d.Graph
	ghostSend := make([][][]int32, k) // [from][to] -> nodes
	for p := 0; p < k; p++ {
		ghostSend[p] = make([][]int32, k)
	}
	seen := make([]int32, k)
	stamp := int32(0)
	for v := 0; v < m.NumNodes(); v++ {
		own := labels[v]
		stamp++
		for _, u := range g.Neighbors(v) {
			if p := labels[u]; p != own && seen[p] != stamp {
				seen[p] = stamp
				ghostSend[own][p] = append(ghostSend[own][p], int32(v))
			}
		}
	}

	// Channels: one inbox per worker per phase, buffered for all ranks.
	ghostIn := make([]chan ghostMsg, k)
	elemIn := make([]chan elemMsg, k)
	for p := 0; p < k; p++ {
		ghostIn[p] = make(chan ghostMsg, k)
		elemIn[p] = make(chan elemMsg, k)
	}

	stats := &Stats{K: k, TreeBytes: treeBytes, PerWorker: make([]WorkerStats, k)}
	pairsCh := make(chan []contact.Pair, k)
	errCh := make(chan error, k)
	var wg sync.WaitGroup

	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ws := &stats.PerWorker[rank]
			ws.OwnedNodes = len(nodesOf[rank])
			ws.OwnedElems = len(elemsOf[rank])

			// --- Phase 1: ghost exchange (all-to-all personalized). ---
			for to := 0; to < k; to++ {
				if to == rank {
					continue
				}
				msg := ghostMsg{from: rank, nodes: ghostSend[rank][to]}
				ws.GhostsSent += int64(len(msg.nodes))
				ghostIn[to] <- msg
			}
			for i := 0; i < k-1; i++ {
				msg := <-ghostIn[rank]
				ws.GhostsRecv += int64(len(msg.nodes))
			}

			// --- Phase 2: global search. Parse the broadcast tree and
			// filter our own surface elements through it. ---
			stopGlobal := col.Start("global_search")
			tree, err := dtree.ReadTree(bytes.NewReader(treeBuf.Bytes()))
			if err != nil {
				errCh <- err
				// Keep the all-to-all pattern alive so peers don't block.
				for to := 0; to < k; to++ {
					if to != rank {
						elemIn[to] <- elemMsg{from: rank}
					}
				}
				for i := 0; i < k-1; i++ {
					<-elemIn[rank]
				}
				pairsCh <- nil
				return
			}
			filter := &contact.TreeFilter{
				Tree:       tree,
				Labels:     d.ContactLabels,
				TightBoxes: tree.PointBoxes(d.ContactPoints),
			}
			sendElems := make([][]int32, k)
			mark := make([]bool, k)
			for _, e := range elemsOf[rank] {
				filter.PartsFor(boxes[e], mark)
				for to := 0; to < k; to++ {
					if mark[to] {
						if to != rank {
							sendElems[to] = append(sendElems[to], e)
						}
						mark[to] = false
					}
				}
			}
			var received []int32
			for to := 0; to < k; to++ {
				if to == rank {
					continue
				}
				ws.ElemsSent += int64(len(sendElems[to]))
				elemIn[to] <- elemMsg{from: rank, elems: sendElems[to]}
			}
			for i := 0; i < k-1; i++ {
				msg := <-elemIn[rank]
				ws.ElemsRecv += int64(len(msg.elems))
				received = append(received, msg.elems...)
			}
			stopGlobal()

			// --- Phase 3: local search over own + received elements,
			// reported under the duplicate-free ownership rule (see
			// localSearch). ---
			stopLocal := col.Start("local_search")
			pairs := localSearch(m, boxes, owners, elemsOf[rank], received, rank, tol)
			stopLocal()
			ws.PairsDetected = len(pairs)
			pairsCh <- pairs
		}(p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}

	// Collect and deduplicate pairs.
	dedup := map[[2]int32]float64{}
	for p := 0; p < k; p++ {
		for _, pr := range <-pairsCh {
			dedup[[2]int32{pr.A, pr.B}] = pr.Dist
		}
	}
	for ab, dist := range dedup {
		stats.Pairs = append(stats.Pairs, contact.Pair{A: ab[0], B: ab[1], Dist: dist})
	}
	sort.Slice(stats.Pairs, func(i, j int) bool {
		if stats.Pairs[i].A != stats.Pairs[j].A {
			return stats.Pairs[i].A < stats.Pairs[j].A
		}
		return stats.Pairs[i].B < stats.Pairs[j].B
	})

	for p := 0; p < k; p++ {
		stats.GhostUnits += stats.PerWorker[p].GhostsSent
		stats.ElemsShipped += stats.PerWorker[p].ElemsSent
	}
	col.Add("ghost_units", stats.GhostUnits)
	col.Add("elems_shipped", stats.ElemsShipped)
	col.Add("tree_bytes", stats.TreeBytes)
	col.Add("pairs_detected", int64(len(stats.Pairs)))
	return stats, nil
}

// localSearch runs the narrow phase at one rank: every pair of
// elements among own ∪ received whose inflated boxes intersect is
// tested exactly; a pair is reported when its exact distance is within
// tol, it does not share mesh nodes, and the reporting rule selects
// this rank. The primary rule — the rank owning the pair's canonical A
// side (the smaller element id) reports — makes the union over ranks
// duplicate-free, but it is only complete when the canonical owner saw
// both elements; the tree filter may ship A to owner(B) without
// shipping B to owner(A). The fallback covers that asymmetry: the rank
// owning B also reports when A was received here. When both owners saw
// both elements the pair is reported twice and the collector's dedup
// map folds the copies.
func localSearch(m *mesh.Mesh, boxes []geom.AABB, owners []int32, own, received []int32, rank int, tol float64) []contact.Pair {
	all := make([]int32, 0, len(own)+len(received))
	all = append(all, own...)
	all = append(all, received...)
	// The received-set: which elements arrived at this rank in phase 2.
	// The fallback rule needs it to know that owner(B) can stand in for
	// an owner(A) that never saw B.
	recv := make([]bool, len(m.Surface))
	for _, e := range received {
		recv[e] = true
	}
	sub := make([]geom.AABB, len(all))
	for i, e := range all {
		sub[i] = boxes[e]
	}
	bvh := contact.NewBVH(sub, m.Dim)

	facet := func(i int32) []geom.Point {
		s := m.Surface[i]
		pts := make([]geom.Point, len(s.Nodes))
		for j, n := range s.Nodes {
			pts[j] = m.Coords[n]
		}
		return pts
	}
	shareNode := func(a, b int32) bool {
		for _, na := range m.Surface[a].Nodes {
			for _, nb := range m.Surface[b].Nodes {
				if na == nb {
					return true
				}
			}
		}
		return false
	}

	var out []contact.Pair
	for i, ea := range all {
		fa := facet(ea)
		bvh.Query(sub, sub[i], func(j int32) {
			eb := all[j]
			if eb <= ea || shareNode(ea, eb) {
				return
			}
			// Reporting rule: the rank owning the smaller element id
			// reports; the rank owning the larger id also reports when
			// the smaller one was shipped here (the canonical owner may
			// never have seen B — the collector dedups the overlap).
			ownsA := int(owners[ea]) == rank
			ownsB := int(owners[eb]) == rank
			if !ownsA && !(ownsB && recv[ea]) {
				return
			}
			da := geom.FacetDist(fa, facet(eb))
			if da <= tol {
				out = append(out, contact.Pair{A: ea, B: eb, Dist: da})
			}
		})
	}
	return out
}
