// Package engine executes one iteration of the parallel contact/impact
// computation that the paper's decompositions exist to serve, using k
// concurrent workers that communicate only by message passing (an
// abstract rank-to-rank Transport standing in for MPI):
//
//	phase 1 (FE):       each worker updates its own nodes and sends
//	                    ghost copies of boundary nodes to the
//	                    partitions that neighbor them — the traffic
//	                    FEComm predicts;
//	phase 2 (global search): the contact-point decision tree is
//	                    *broadcast* (serialized and re-parsed per
//	                    worker, as Section 4.1.1 requires), each worker
//	                    filters its surface elements through it and
//	                    ships them to candidate partitions — the
//	                    traffic NRemote predicts;
//	phase 3 (local search): each worker runs exact narrow-phase
//	                    detection between its own and received
//	                    elements.
//
// The engine reports the realized communication volumes so tests can
// assert they equal the analytic metrics, and the detected contact
// pairs so tests can assert parity with serial detection.
//
// On top of the transport the engine layers fault tolerance (see
// resilient.go): per-phase deadlines, sequence-numbered batches with
// acknowledgement and bounded-backoff resend (receiver-side dedup
// keeps retries invisible in Stats), and rank-failure detection that
// degrades gracefully — when a rank is unrecoverable the iteration is
// re-executed serially and the Stats are marked Degraded/Recovered
// instead of the whole run erroring.
package engine

import (
	"bytes"
	"fmt"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/obs"
)

// Stats is the outcome of one parallel iteration.
type Stats struct {
	K int
	// GhostUnits counts (node, destination-partition) copies sent in
	// phase 1; it equals metrics.CommVolume of the nodal partition.
	GhostUnits int64
	// ElemsShipped counts (surface element, destination) shipments in
	// phase 2; it equals the NRemote metric for the same filter.
	ElemsShipped int64
	// TreeBytes is the size of the serialized descriptor broadcast to
	// every worker.
	TreeBytes int64
	// Pairs are the contacts detected across all workers, deduplicated
	// and sorted (A < B).
	Pairs []contact.Pair
	// PerWorker holds per-rank tallies.
	PerWorker []WorkerStats
	// Degraded records that the concurrent iteration failed (a rank
	// panicked, stalled past its deadline, or received a corrupt
	// broadcast) and Recovered that the serial re-execution salvaged
	// it; FailedRanks lists the ranks that caused the failure. The
	// numeric results of a recovered iteration are identical to a
	// fault-free run.
	Degraded    bool
	Recovered   bool
	FailedRanks []int
}

// WorkerStats tallies one worker's traffic. All counts are logical:
// a batch retransmitted by the fault-tolerance layer is counted once,
// so Stats are identical whether or not retries happened.
type WorkerStats struct {
	OwnedNodes    int
	OwnedElems    int
	GhostsSent    int64
	GhostsRecv    int64
	ElemsSent     int64
	ElemsRecv     int64
	PairsDetected int
}

// Run executes one iteration for the decomposition d of mesh m.
// tol is the narrow-phase contact tolerance; element shipping uses the
// sound inflation tol + MaxFacetDiameter so no contact can be lost.
func Run(m *mesh.Mesh, d *core.Decomposition, tol float64) (*Stats, error) {
	return RunOpts(m, d, tol, Options{})
}

// RunObserved is Run with per-phase observability: each worker's
// global-search and local-search wall time is recorded under the
// canonical "global_search" / "local_search" phases (count = k,
// total = aggregate busy time across workers), plus the realized
// traffic counters. col may be nil.
func RunObserved(m *mesh.Mesh, d *core.Decomposition, tol float64, col *obs.Collector) (*Stats, error) {
	return RunOpts(m, d, tol, Options{Obs: col})
}

// RunOpts is Run with explicit resilience options (transport, fault
// injection, deadlines, retry budget); see Options.
func RunOpts(m *mesh.Mesh, d *core.Decomposition, tol float64, opts Options) (*Stats, error) {
	if d.Cfg.K < 1 {
		return nil, fmt.Errorf("engine: k = %d", d.Cfg.K)
	}
	it, err := buildIteration(m, d, tol)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	st, failed, perr := it.runParallel(opts)
	if perr == nil {
		st.finalize(opts.Obs)
		return st, nil
	}
	if opts.NoDegrade {
		return nil, perr
	}

	// Graceful degradation: re-execute the iteration serially from the
	// pristine inputs. The serial path computes the same logical
	// traffic and the same pairs, so a recovered iteration is
	// numerically indistinguishable from a fault-free one.
	opts.Obs.Add("engine_degraded_iters", 1)
	opts.Span.Event("serial_degrade", obs.Int("failed_ranks", int64(len(failed))))
	st, serr := it.runSerial(opts)
	if serr != nil {
		return nil, fmt.Errorf("engine: parallel iteration failed (%v) and serial recovery failed: %w", perr, serr)
	}
	st.Degraded = true
	st.Recovered = true
	st.FailedRanks = failed
	st.finalize(opts.Obs)
	return st, nil
}

// finalize derives the aggregate counters from the per-worker tallies
// and reports them to the collector.
func (st *Stats) finalize(col *obs.Collector) {
	st.GhostUnits, st.ElemsShipped = 0, 0
	for p := range st.PerWorker {
		st.GhostUnits += st.PerWorker[p].GhostsSent
		st.ElemsShipped += st.PerWorker[p].ElemsSent
		col.Hist("rank_pairs", int64(st.PerWorker[p].PairsDetected))
	}
	col.Add("ghost_units", st.GhostUnits)
	col.Add("elems_shipped", st.ElemsShipped)
	col.Add("tree_bytes", st.TreeBytes)
	col.Add("pairs_detected", int64(len(st.Pairs)))
}

// iteration is the immutable per-iteration state shared by the
// concurrent attempt and the serial fallback: the serialized broadcast
// tree, the ownership tables, and the phase-1 send lists. Building it
// up front means the fallback re-executes from pristine inputs no
// matter what the fault injection did to the concurrent attempt.
type iteration struct {
	m       *mesh.Mesh
	d       *core.Decomposition
	tol     float64
	k       int
	treeBuf []byte
	owners  []int32
	boxes   []geom.AABB
	nodesOf [][]int32
	elemsOf [][]int32
	// ghostSend[from][to] lists the boundary nodes from sends to in
	// phase 1 (computed from the nodal graph adjacency).
	ghostSend [][][]int32
}

func buildIteration(m *mesh.Mesh, d *core.Decomposition, tol float64) (*iteration, error) {
	k := d.Cfg.K
	labels := d.Labels

	// Broadcast the descriptor tree: serialize once, parse per worker.
	var treeBuf bytes.Buffer
	if _, err := d.Descriptor.WriteTo(&treeBuf); err != nil {
		return nil, err
	}

	it := &iteration{
		m: m, d: d, tol: tol, k: k,
		treeBuf: treeBuf.Bytes(),
		owners:  contact.SurfaceOwners(m, labels),
	}
	searchTol := tol + contact.MaxFacetDiameter(m)
	it.boxes = contact.SurfaceBoxes(m, searchTol)

	// Ownership tables.
	it.nodesOf = make([][]int32, k)
	for v := 0; v < m.NumNodes(); v++ {
		p := labels[v]
		it.nodesOf[p] = append(it.nodesOf[p], int32(v))
	}
	it.elemsOf = make([][]int32, k)
	for e, p := range it.owners {
		it.elemsOf[p] = append(it.elemsOf[p], int32(e))
	}

	// Phase-1 send lists: node v goes to every distinct neighbor
	// partition.
	g := d.Graph
	it.ghostSend = make([][][]int32, k)
	for p := 0; p < k; p++ {
		it.ghostSend[p] = make([][]int32, k)
	}
	seen := make([]int32, k)
	stamp := int32(0)
	for v := 0; v < m.NumNodes(); v++ {
		own := labels[v]
		stamp++
		for _, u := range g.Neighbors(v) {
			if p := labels[u]; p != own && seen[p] != stamp {
				seen[p] = stamp
				it.ghostSend[own][p] = append(it.ghostSend[own][p], int32(v))
			}
		}
	}
	return it, nil
}

// sendElemsFor runs the phase-2 global search for one rank: its owned
// surface elements are filtered through the (already parsed) tree and
// binned by candidate destination partition.
func (it *iteration) sendElemsFor(rank int, filter contact.Filter, mark []bool) [][]int32 {
	send := make([][]int32, it.k)
	for _, e := range it.elemsOf[rank] {
		filter.PartsFor(it.boxes[e], mark)
		for to := 0; to < it.k; to++ {
			if mark[to] {
				if to != rank {
					send[to] = append(send[to], e)
				}
				mark[to] = false
			}
		}
	}
	return send
}

// localSearch runs the narrow phase at one rank: every pair of
// elements among own ∪ received whose inflated boxes intersect is
// tested exactly; a pair is reported when its exact distance is within
// tol, it does not share mesh nodes, and the reporting rule selects
// this rank. The primary rule — the rank owning the pair's canonical A
// side (the smaller element id) reports — makes the union over ranks
// duplicate-free, but it is only complete when the canonical owner saw
// both elements; the tree filter may ship A to owner(B) without
// shipping B to owner(A). The fallback covers that asymmetry: the rank
// owning B also reports when A was received here. When both owners saw
// both elements the pair is reported twice and the collector's dedup
// folds the copies.
func localSearch(m *mesh.Mesh, boxes []geom.AABB, owners []int32, own, received []int32, rank int, tol float64) []contact.Pair {
	all := make([]int32, 0, len(own)+len(received))
	all = append(all, own...)
	all = append(all, received...)
	// The received-set: which elements arrived at this rank in phase 2.
	// The fallback rule needs it to know that owner(B) can stand in for
	// an owner(A) that never saw B.
	recv := make([]bool, len(m.Surface))
	for _, e := range received {
		recv[e] = true
	}
	sub := make([]geom.AABB, len(all))
	for i, e := range all {
		sub[i] = boxes[e]
	}
	bvh := contact.NewBVH(sub, m.Dim)

	facet := func(i int32) []geom.Point {
		s := m.Surface[i]
		pts := make([]geom.Point, len(s.Nodes))
		for j, n := range s.Nodes {
			pts[j] = m.Coords[n]
		}
		return pts
	}
	shareNode := func(a, b int32) bool {
		for _, na := range m.Surface[a].Nodes {
			for _, nb := range m.Surface[b].Nodes {
				if na == nb {
					return true
				}
			}
		}
		return false
	}

	var out []contact.Pair
	for i, ea := range all {
		fa := facet(ea)
		bvh.Query(sub, sub[i], func(j int32) {
			eb := all[j]
			if eb <= ea || shareNode(ea, eb) {
				return
			}
			// Reporting rule: the rank owning the smaller element id
			// reports; the rank owning the larger id also reports when
			// the smaller one was shipped here (the canonical owner may
			// never have seen B — the collector dedups the overlap).
			ownsA := int(owners[ea]) == rank
			ownsB := int(owners[eb]) == rank
			if !ownsA && !(ownsB && recv[ea]) {
				return
			}
			da := geom.FacetDist(fa, facet(eb))
			if da <= tol {
				out = append(out, contact.Pair{A: ea, B: eb, Dist: da})
			}
		})
	}
	return out
}
