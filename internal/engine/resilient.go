package engine

// This file is the fault-tolerance layer of the engine: the workers'
// transport-based all-to-all exchange with acknowledgements, bounded
// backoff resend and receiver-side dedup; per-phase deadlines; and the
// serial re-execution path used when a rank is unrecoverable.
//
// Resilience invariant: WorkerStats count logical batches (each
// logical (from, to, phase) batch once), and receivers deduplicate by
// (from, phase), so a recovering schedule — whether it recovers by
// retransmission or by serial degrade — yields Pairs and Stats
// identical to a fault-free run.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/contact"
	"repro/internal/dtree"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Engine phases carried in message headers.
const (
	phaseGhost = 1 // phase 1: ghost-node exchange
	phaseElems = 2 // phase 2: element shipping
	phaseLocal = 3 // phase 3: local search (no exchange; fault hook only)
	numPhases  = 4
)

// Options configures the resilience layer of one engine iteration.
// The zero value reproduces the seed engine's semantics: a direct
// in-memory transport, no fault injection, and no deadlines (a hung
// rank hangs the iteration, exactly like the raw-channel engine).
type Options struct {
	// Transport carries the rank-to-rank traffic; nil selects an
	// in-memory Direct transport sized for the iteration.
	Transport transport.Transport
	// Fault, when non-nil and active, wraps the transport in a
	// deterministic fault injector and enables the plan's rank-level
	// panic/stall/corrupt-broadcast injections.
	Fault *fault.Plan
	// PhaseTimeout bounds each exchange phase per rank; 0 means no
	// deadline unless a fault plan is active (then 2s, so injected
	// failures are detected instead of deadlocking).
	PhaseTimeout time.Duration
	// MaxRetries bounds the resend attempts per phase (default 4).
	MaxRetries int
	// RetryBackoff is the first resend delay, doubling per attempt
	// (default 5ms).
	RetryBackoff time.Duration
	// NoDegrade disables the serial-recovery path: a rank failure
	// surfaces as an error from RunOpts instead.
	NoDegrade bool
	// Obs receives phase timers and the resilience counters
	// (transport_retries, transport_*_injected, engine_degraded_iters).
	Obs *obs.Collector
	// Span, when non-nil, is the parent span of this iteration: each
	// rank gets a child span on its own "rank<r>" track, each engine
	// phase a nested span, each exchange a "transport_exchange" span
	// with "retry" instant events, and injected faults appear as
	// events on the exchange timeline. Nil disables tracing at zero
	// cost.
	Span *obs.Span
}

func (o Options) withDefaults() Options {
	if o.PhaseTimeout == 0 && o.Fault.Active() {
		o.PhaseTimeout = 2 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	return o
}

// A RankError is a per-rank failure detected during the concurrent
// iteration: a phase deadline expired, the rank's broadcast copy was
// undecodable, or the rank panicked.
type RankError struct {
	Rank  int
	Phase int
	Err   error
}

func (e *RankError) Error() string {
	return fmt.Sprintf("engine: rank %d failed in phase %d: %v", e.Rank, e.Phase, e.Err)
}

func (e *RankError) Unwrap() error { return e.Err }

// worker is one rank's view of the exchange: its transport endpoint,
// the per-phase dedup state, and the stash of messages that arrived
// ahead of the phase that consumes them.
type worker struct {
	rank, k int
	tp      transport.Transport
	opts    *Options
	// seen[phase][from] records that from's phase batch was received
	// (receiver-side dedup: retransmits are acked but never
	// re-counted).
	seen [numPhases][]bool
	// pending[phase] stashes messages that arrived while the worker
	// was still in an earlier phase.
	pending [numPhases][]transport.Message
	// retries counts resend rounds this worker initiated.
	retries int64
}

func newWorker(rank, k int, tp transport.Transport, opts *Options) *worker {
	w := &worker{rank: rank, k: k, tp: tp, opts: opts}
	for p := 1; p < numPhases; p++ {
		w.seen[p] = make([]bool, k)
	}
	return w
}

// sendAck acknowledges a data message (echoing its attempt so the
// fault layer rolls an independent coin per retransmit round).
func (w *worker) sendAck(ctx context.Context, data transport.Message) error {
	return w.tp.Send(ctx, transport.Message{
		From: w.rank, To: data.From, Phase: data.Phase,
		Kind: transport.Ack, Attempt: data.Attempt,
	})
}

// recvPhase returns the next message of the wanted phase, serving the
// stash first. Messages for other phases are stashed (unseen data) or
// answered in place: a duplicate of an already-consumed batch is
// re-acked — its original ack must have been lost — and stale acks are
// dropped.
func (w *worker) recvPhase(ctx context.Context, phase int) (transport.Message, error) {
	if q := w.pending[phase]; len(q) > 0 {
		msg := q[0]
		w.pending[phase] = q[1:]
		return msg, nil
	}
	for {
		msg, err := w.tp.Recv(ctx, w.rank)
		if err != nil {
			return transport.Message{}, err
		}
		if msg.Phase == phase {
			return msg, nil
		}
		if msg.Phase < 1 || msg.Phase >= numPhases || msg.From < 0 || msg.From >= w.k {
			continue // malformed; ignore
		}
		if msg.Kind == transport.Data {
			if w.seen[msg.Phase][msg.From] {
				if err := w.sendAck(ctx, msg); err != nil {
					return transport.Message{}, err
				}
				continue
			}
			w.pending[msg.Phase] = append(w.pending[msg.Phase], msg)
		}
		// Acks are only solicited by our own sends, which happen in
		// phase order — an ack for another phase is stale; drop it.
	}
}

// exchange performs one all-to-all personalized exchange: batches[to]
// goes to each peer, and each peer's batch comes back. Delivery is
// reliable up to the retry budget: unacknowledged batches are resent
// with doubling backoff, duplicates are acked-and-ignored, and a peer
// that produces neither data nor ack by the phase deadline turns into
// a *RankError. The returned slice is indexed by sender rank.
func (w *worker) exchange(ctx context.Context, phase int, batches [][]int32) ([][]int32, error) {
	k := w.k
	got := make([][]int32, k)
	if k == 1 {
		return got, nil
	}
	ctx, xs := obs.StartSpan(ctx, "transport_exchange", obs.Int("phase", int64(phase)))
	defer xs.End()
	for to := 0; to < k; to++ {
		if to != w.rank {
			w.opts.Obs.Hist("transport_msg_items", int64(len(batches[to])))
		}
	}
	gotFrom := w.seen[phase]
	gotFrom[w.rank] = true
	acked := make([]bool, k)
	acked[w.rank] = true
	nGot, nAck := 1, 1

	send := func(attempt int) error {
		for to := 0; to < k; to++ {
			if to == w.rank || acked[to] {
				continue
			}
			err := w.tp.Send(ctx, transport.Message{
				From: w.rank, To: to, Phase: phase,
				Kind: transport.Data, Attempt: attempt, Payload: batches[to],
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := send(0); err != nil {
		return nil, err
	}

	hasDeadline := w.opts.PhaseTimeout > 0
	var phaseDeadline time.Time
	if hasDeadline {
		phaseDeadline = time.Now().Add(w.opts.PhaseTimeout)
	}
	attempt := 0
	backoff := w.opts.RetryBackoff

	for nGot < k || nAck < k {
		rctx := ctx
		var rcancel context.CancelFunc
		if hasDeadline {
			next := phaseDeadline
			if attempt < w.opts.MaxRetries {
				if t := time.Now().Add(backoff); t.Before(next) {
					next = t
				}
			}
			rctx, rcancel = context.WithDeadline(ctx, next)
		}
		msg, err := w.recvPhase(rctx, phase)
		if rcancel != nil {
			rcancel()
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err() // iteration abandoned
			}
			if !hasDeadline {
				return nil, err
			}
			if time.Now().Before(phaseDeadline) && attempt < w.opts.MaxRetries {
				// Retry round: resend every unacknowledged batch.
				attempt++
				w.retries++
				xs.Event("retry",
					obs.Int("attempt", int64(attempt)),
					obs.Int("unacked", int64(k-nAck)))
				backoff *= 2
				if err := send(attempt); err != nil {
					return nil, err
				}
				continue
			}
			return nil, &RankError{Rank: w.rank, Phase: phase, Err: fmt.Errorf(
				"exchange timed out after %d retries: %d/%d batches received, %d/%d acked",
				attempt, nGot-1, k-1, nAck-1, k-1)}
		}
		switch msg.Kind {
		case transport.Ack:
			if msg.From >= 0 && msg.From < k && !acked[msg.From] {
				acked[msg.From] = true
				nAck++
			}
		case transport.Data:
			if msg.From < 0 || msg.From >= k {
				continue
			}
			// Always ack — the sender retries until it hears us, and
			// the previous ack may have been dropped.
			if err := w.sendAck(ctx, msg); err != nil {
				return nil, err
			}
			if !gotFrom[msg.From] {
				gotFrom[msg.From] = true
				got[msg.From] = msg.Payload
				nGot++
			}
		}
	}
	return got, nil
}

// drain keeps answering late retransmits with acks after this worker
// has finished its phases, so a peer whose ack was lost can still
// complete by resending instead of forcing a serial degrade. It runs
// until the iteration-wide drain context is cancelled (all workers
// done or the iteration abandoned).
func (w *worker) drain(ctx context.Context) {
	for {
		msg, err := w.tp.Recv(ctx, w.rank)
		if err != nil {
			return
		}
		if msg.Kind == transport.Data {
			_ = w.sendAck(ctx, msg)
		}
	}
}

// runWorker executes one rank's three phases over the transport.
// Panics (including injected ones) are recovered into per-rank errors
// so a crashing rank degrades the iteration instead of the process.
func (it *iteration) runWorker(ctx context.Context, w *worker, opts Options, ws *WorkerStats) (pairs []contact.Pair, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = &RankError{Rank: w.rank, Phase: 0, Err: fmt.Errorf("panic: %w", e)}
			} else {
				err = &RankError{Rank: w.rank, Phase: 0, Err: fmt.Errorf("panic: %v", r)}
			}
		}
	}()
	rank := w.rank
	ws.OwnedNodes = len(it.nodesOf[rank])
	ws.OwnedElems = len(it.elemsOf[rank])

	// --- Phase 1: ghost exchange (all-to-all personalized). ---
	opts.Fault.MaybePanic(rank, phaseGhost)
	opts.Fault.MaybeStall(ctx, rank, phaseGhost)
	gctx, gs := obs.StartSpan(ctx, "ghost_exchange")
	ghosts, err := w.exchange(gctx, phaseGhost, it.ghostSend[rank])
	gs.End()
	if err != nil {
		return nil, err
	}
	for to, batch := range it.ghostSend[rank] {
		if to != rank {
			ws.GhostsSent += int64(len(batch))
		}
	}
	for _, b := range ghosts {
		ws.GhostsRecv += int64(len(b))
	}

	// --- Phase 2: global search. Parse the broadcast tree and filter
	// our own surface elements through it. ---
	opts.Fault.MaybePanic(rank, phaseElems)
	opts.Fault.MaybeStall(ctx, rank, phaseElems)
	stopGlobal := opts.Obs.Start("global_search")
	gsCtx, gsSpan := obs.StartSpan(ctx, "global_search")
	defer gsSpan.End() // idempotent; covers the error exits
	defer func() {
		if stopGlobal != nil {
			stopGlobal()
		}
	}()
	raw := opts.Fault.CorruptTreeBytes(rank, it.treeBuf)
	tree, terr := dtree.ReadTree(bytes.NewReader(raw))
	if terr != nil {
		// The broadcast this rank received is undecodable. Surface a
		// per-rank error; the serial-degrade path re-reads the
		// pristine bytes.
		return nil, &RankError{Rank: rank, Phase: phaseElems, Err: terr}
	}
	filter := &contact.TreeFilter{
		Tree:       tree,
		Labels:     it.d.ContactLabels,
		TightBoxes: tree.PointBoxes(it.d.ContactPoints),
	}
	var sendElems [][]int32
	pprof.Do(gsCtx, pprof.Labels("phase", "global_search"), func(context.Context) {
		sendElems = it.sendElemsFor(rank, filter, make([]bool, it.k))
	})
	gotElems, err := w.exchange(gsCtx, phaseElems, sendElems)
	if err != nil {
		return nil, err
	}
	var received []int32
	for from := 0; from < it.k; from++ {
		if from == rank {
			continue
		}
		ws.ElemsSent += int64(len(sendElems[from]))
		ws.ElemsRecv += int64(len(gotElems[from]))
		received = append(received, gotElems[from]...)
	}
	stopGlobal()
	stopGlobal = nil
	gsSpan.End()

	// --- Phase 3: local search over own + received elements. ---
	opts.Fault.MaybePanic(rank, phaseLocal)
	stopLocal := opts.Obs.Start("local_search")
	_, lsSpan := obs.StartSpan(ctx, "local_search")
	pprof.Do(ctx, pprof.Labels("phase", "local_search"), func(context.Context) {
		pairs = localSearch(it.m, it.boxes, it.owners, it.elemsOf[rank], received, rank, it.tol)
	})
	lsSpan.End()
	stopLocal()
	ws.PairsDetected = len(pairs)
	return pairs, nil
}

// runParallel attempts the concurrent iteration over the transport.
// On failure it returns the ranks that failed plus the root-cause
// error (per-rank errors preferred over the cascade of context
// cancellations they trigger).
func (it *iteration) runParallel(opts Options) (*Stats, []int, error) {
	k := it.k
	tp := opts.Transport
	if tp == nil {
		// Capacity covers the full two-phase all-to-all with the whole
		// retry budget (data + acks + injected duplicates), so sends
		// never block and workers cannot deadlock on a full inbox.
		tp = transport.NewDirect(k, 8*(k+1)*(opts.MaxRetries+2))
	}
	if opts.Fault.Active() {
		ft := transport.NewFaulty(tp, opts.Fault, opts.Obs)
		defer ft.Close()
		tp = ft
	}

	//lint:ignore ctxflow the engine run owns this lifecycle end to end; cancel is deferred in this function
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drainCtx, drainCancel := context.WithCancel(ctx)
	defer drainCancel()

	stats := &Stats{K: k, TreeBytes: int64(len(it.treeBuf)), PerWorker: make([]WorkerStats, k)}
	pairs := make([][]contact.Pair, k)
	errs := make([]error, k)
	var retries int64
	var retriesMu sync.Mutex

	var mainWG, allWG sync.WaitGroup
	mainWG.Add(k)
	allWG.Add(k)
	for p := 0; p < k; p++ {
		go func(rank int) {
			defer allWG.Done()
			pprof.Do(ctx, pprof.Labels("rank", strconv.Itoa(rank)), func(ctx context.Context) {
				rankSpan := opts.Span.Child("rank",
					obs.Int("rank", int64(rank)),
					obs.Track(fmt.Sprintf("rank%d", rank)))
				ctx = obs.ContextWithSpan(ctx, rankSpan)
				w := newWorker(rank, k, tp, &opts)
				prs, err := it.runWorker(ctx, w, opts, &stats.PerWorker[rank])
				rankSpan.End()
				pairs[rank] = prs
				errs[rank] = err
				retriesMu.Lock()
				retries += w.retries
				retriesMu.Unlock()
				if err != nil {
					cancel() // abandon the iteration; peers unblock via ctx
				}
				mainWG.Done()
				// Keep acking late retransmits until everyone is done.
				w.drain(drainCtx)
			})
		}(p)
	}
	mainWG.Wait()
	drainCancel()
	allWG.Wait()
	opts.Obs.Add("transport_retries", retries)

	// Root cause: per-rank errors beat the context-cancellation
	// cascade they caused.
	var failed []int
	var firstErr, firstRankErr error
	for rank, e := range errs {
		if e == nil {
			continue
		}
		if firstErr == nil {
			firstErr = e
		}
		if !errors.Is(e, context.Canceled) {
			failed = append(failed, rank)
			if firstRankErr == nil {
				firstRankErr = e
			}
		}
	}
	if firstRankErr != nil {
		return nil, failed, firstRankErr
	}
	if firstErr != nil {
		return nil, failed, firstErr
	}
	stats.Pairs = contact.Collect(pairs)
	return stats, nil, nil
}

// runSerial re-executes the iteration without concurrency or
// transport, from the pristine inputs captured in it: the recovery
// path when a rank is unrecoverable. It produces exactly the Stats a
// fault-free concurrent run would (all counts are logical), which is
// what makes graceful degradation invisible in the results.
func (it *iteration) runSerial(opts Options) (*Stats, error) {
	k := it.k
	stats := &Stats{K: k, TreeBytes: int64(len(it.treeBuf)), PerWorker: make([]WorkerStats, k)}

	tree, err := dtree.ReadTree(bytes.NewReader(it.treeBuf))
	if err != nil {
		return nil, err
	}
	filter := &contact.TreeFilter{
		Tree:       tree,
		Labels:     it.d.ContactLabels,
		TightBoxes: tree.PointBoxes(it.d.ContactPoints),
	}

	for rank := 0; rank < k; rank++ {
		ws := &stats.PerWorker[rank]
		ws.OwnedNodes = len(it.nodesOf[rank])
		ws.OwnedElems = len(it.elemsOf[rank])
	}

	// Phase 1: the ghost exchange is fully determined by the send
	// lists.
	for from := 0; from < k; from++ {
		for to := 0; to < k; to++ {
			if to == from {
				continue
			}
			n := int64(len(it.ghostSend[from][to]))
			stats.PerWorker[from].GhostsSent += n
			stats.PerWorker[to].GhostsRecv += n
		}
	}

	// Phase 2: filter and "ship" each rank's elements in rank order.
	received := make([][]int32, k)
	mark := make([]bool, k)
	for rank := 0; rank < k; rank++ {
		stopGlobal := opts.Obs.Start("global_search")
		send := it.sendElemsFor(rank, filter, mark)
		for to := 0; to < k; to++ {
			if to == rank {
				continue
			}
			n := int64(len(send[to]))
			stats.PerWorker[rank].ElemsSent += n
			stats.PerWorker[to].ElemsRecv += n
			received[to] = append(received[to], send[to]...)
		}
		stopGlobal()
	}

	// Phase 3: local search per rank.
	pairs := make([][]contact.Pair, k)
	for rank := 0; rank < k; rank++ {
		stopLocal := opts.Obs.Start("local_search")
		prs := localSearch(it.m, it.boxes, it.owners, it.elemsOf[rank], received[rank], rank, it.tol)
		stopLocal()
		stats.PerWorker[rank].PairsDetected = len(prs)
		pairs[rank] = prs
	}
	stats.Pairs = contact.Collect(pairs)
	return stats, nil
}
