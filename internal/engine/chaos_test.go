package engine

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/dtree"
	"repro/internal/fault"
	"repro/internal/obs"
)

// chaosSeeds is the short deterministic seed list the `make chaos`
// target runs the matrix over.
var chaosSeeds = []int64{1, 7, 42}

// chaosPlans enumerates the fault kinds of the matrix. Each entry
// either recovers by retransmission (message-level faults) or by the
// serial-degrade path (rank-level faults); in both cases the results
// must be identical to the fault-free run.
func chaosPlans(seed int64) []struct {
	name        string
	plan        *fault.Plan
	wantDegrade bool // rank-level faults always degrade
} {
	return []struct {
		name        string
		plan        *fault.Plan
		wantDegrade bool
	}{
		{"drop_first_attempt", &fault.Plan{Seed: seed, DropProb: 0.3, FirstAttemptOnly: true}, false},
		{"delay", &fault.Plan{Seed: seed, DelayProb: 0.3, DelayFor: 2 * time.Millisecond}, false},
		{"duplicate", &fault.Plan{Seed: seed, DupProb: 0.4}, false},
		{"reorder", &fault.Plan{Seed: seed, ReorderProb: 0.4}, false},
		{"mixed", &fault.Plan{Seed: seed, DropProb: 0.15, DelayProb: 0.1, DupProb: 0.1, ReorderProb: 0.1, FirstAttemptOnly: true}, false},
		// Unrestricted drops can exhaust the retry budget; the run may
		// recover by retry or by degrade, and either must be exact.
		{"drop_any_attempt", &fault.Plan{Seed: seed, DropProb: 0.25}, false},
		{"panic_rank1_phase1", &fault.Plan{Seed: seed, PanicRank: map[int]int{1: 1}}, true},
		{"panic_rank0_phase2", &fault.Plan{Seed: seed, PanicRank: map[int]int{0: 2}}, true},
		{"stall_rank1_phase2", &fault.Plan{Seed: seed, StallRank: map[int]fault.Stall{1: {Phase: 2, For: 30 * time.Second}}}, true},
		{"corrupt_tree_rank1", &fault.Plan{Seed: seed, CorruptTree: map[int]bool{1: true}}, true},
	}
}

// assertStatsIdentical compares everything numeric about two runs:
// pairs, aggregate traffic, and the per-worker tallies. The
// Degraded/Recovered markers are intentionally excluded — they are
// the only allowed difference.
func assertStatsIdentical(t *testing.T, name string, want, got *Stats) {
	t.Helper()
	if got.K != want.K || got.GhostUnits != want.GhostUnits ||
		got.ElemsShipped != want.ElemsShipped || got.TreeBytes != want.TreeBytes {
		t.Fatalf("%s: aggregates differ: got {K:%d G:%d E:%d T:%d}, want {K:%d G:%d E:%d T:%d}",
			name, got.K, got.GhostUnits, got.ElemsShipped, got.TreeBytes,
			want.K, want.GhostUnits, want.ElemsShipped, want.TreeBytes)
	}
	if len(got.PerWorker) != len(want.PerWorker) {
		t.Fatalf("%s: per-worker lengths differ", name)
	}
	for i := range want.PerWorker {
		if got.PerWorker[i] != want.PerWorker[i] {
			t.Fatalf("%s: worker %d stats differ: got %+v, want %+v",
				name, i, got.PerWorker[i], want.PerWorker[i])
		}
	}
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: pair counts differ: got %d, want %d", name, len(got.Pairs), len(want.Pairs))
	}
	for i := range want.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("%s: pair %d differs: got %+v, want %+v", name, i, got.Pairs[i], want.Pairs[i])
		}
	}
}

// TestChaosMatrix is the chaos determinism gate: for every seed ×
// fault kind × k, engine.RunOpts under injected faults must produce
// Pairs and communication Stats identical to the fault-free run —
// whether it recovered by retransmission or by serial degrade.
func TestChaosMatrix(t *testing.T) {
	for _, k := range []int{2, 5} {
		sn, d := testSetup(t, k, 30)
		const tol = 0.5
		baseline, err := Run(sn.Mesh, d, tol)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range chaosSeeds {
			for _, c := range chaosPlans(seed) {
				if c.wantDegrade && k < 2 {
					continue
				}
				name := c.name
				plan := c.plan
				wantDegrade := c.wantDegrade
				t.Run(name, func(t *testing.T) {
					col := obs.New()
					// The deadline only has to outlast the retry
					// schedule (5+10+20+40+80ms); keeping it tight
					// keeps the stall/exhausted-drop cases fast. A
					// spurious timeout under load just degrades, which
					// the identity assertion still covers.
					st, err := RunOpts(sn.Mesh, d, tol, Options{
						Fault:        plan,
						PhaseTimeout: 800 * time.Millisecond,
						RetryBackoff: 5 * time.Millisecond,
						Obs:          col,
					})
					if err != nil {
						t.Fatalf("k=%d seed=%d %s: run failed instead of recovering: %v", k, seed, name, err)
					}
					assertStatsIdentical(t, name, baseline, st)
					if wantDegrade {
						if !st.Degraded || !st.Recovered {
							t.Fatalf("k=%d seed=%d %s: expected serial degrade, got Degraded=%v Recovered=%v",
								k, seed, name, st.Degraded, st.Recovered)
						}
						if len(st.FailedRanks) == 0 {
							t.Errorf("%s: degraded run reports no failed ranks", name)
						}
						counters := counterMap(col)
						if counters["engine_degraded_iters"] != 1 {
							t.Errorf("%s: engine_degraded_iters = %d, want 1", name, counters["engine_degraded_iters"])
						}
					}
				})
			}
		}
	}
}

func counterMap(col *obs.Collector) map[string]int64 {
	m := map[string]int64{}
	for _, c := range col.Report().Counters {
		m[c.Name] = c.Value
	}
	return m
}

// TestChaosRetriesVisible asserts the recovery machinery is
// observable: a schedule that drops every first attempt must show
// injected drops and retries on the collector while still recovering
// exactly.
func TestChaosRetriesVisible(t *testing.T) {
	sn, d := testSetup(t, 4, 30)
	const tol = 0.5
	baseline, err := Run(sn.Mesh, d, tol)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.New()
	st, err := RunOpts(sn.Mesh, d, tol, Options{
		Fault:        &fault.Plan{Seed: 3, DropProb: 0.5, FirstAttemptOnly: true},
		PhaseTimeout: 2 * time.Second,
		RetryBackoff: 2 * time.Millisecond,
		Obs:          col,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertStatsIdentical(t, "drop_visible", baseline, st)
	counters := counterMap(col)
	if counters["transport_drops_injected"] == 0 {
		t.Error("no drops recorded despite DropProb=0.5")
	}
	if !st.Degraded && counters["transport_retries"] == 0 {
		t.Error("drops recovered without any recorded retry")
	}
}

// TestCorruptTreeBroadcastDegrades pins the dtree-under-fault
// contract: a truncated/corrupted serialized tree received by one
// worker must surface as a per-rank error that triggers the serial
// degrade path — never a panic, and never a corrupted result.
func TestCorruptTreeBroadcastDegrades(t *testing.T) {
	sn, d := testSetup(t, 3, 30)
	const tol = 0.5
	baseline, err := Run(sn.Mesh, d, tol)
	if err != nil {
		t.Fatal(err)
	}

	// The corruption the plan injects really is undecodable.
	var buf bytes.Buffer
	if _, err := d.Descriptor.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{CorruptTree: map[int]bool{2: true}}
	if _, err := dtree.ReadTree(bytes.NewReader(plan.CorruptTreeBytes(2, buf.Bytes()))); err == nil {
		t.Fatal("corrupted tree bytes decoded cleanly; fault injection is a no-op")
	}

	st, err := RunOpts(sn.Mesh, d, tol, Options{Fault: plan, PhaseTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("corrupt broadcast was not recovered: %v", err)
	}
	if !st.Degraded || !st.Recovered {
		t.Fatalf("expected degrade+recover, got Degraded=%v Recovered=%v", st.Degraded, st.Recovered)
	}
	assertStatsIdentical(t, "corrupt_tree", baseline, st)

	// With degradation disabled the same failure must surface as a
	// typed per-rank error, not a panic.
	_, err = RunOpts(sn.Mesh, d, tol, Options{Fault: plan, PhaseTimeout: 2 * time.Second, NoDegrade: true})
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("NoDegrade error = %v, want *RankError", err)
	}
	if re.Rank != 2 || re.Phase != phaseElems {
		t.Errorf("RankError = rank %d phase %d, want rank 2 phase %d", re.Rank, re.Phase, phaseElems)
	}
}

// TestZeroOptionsMatchesSeedSemantics: the default path (no faults,
// no deadline) must behave exactly like the seed engine.
func TestZeroOptionsMatchesSeedSemantics(t *testing.T) {
	sn, d := testSetup(t, 6, 30)
	a, err := Run(sn.Mesh, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Degraded || a.Recovered || a.FailedRanks != nil {
		t.Errorf("fault-free run marked degraded: %+v", a)
	}
	b, err := RunOpts(sn.Mesh, d, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertStatsIdentical(t, "zero_options", a, b)
}
