package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// CampaignConfig drives a whole snapshot sequence through the parallel
// engine, using the paper's update strategies between iterations.
type CampaignConfig struct {
	K    int
	Seed int64
	// Tol is the narrow-phase contact tolerance.
	Tol float64
	// RepartitionEvery re-runs the full MCML+DT pipeline every R
	// snapshots (0 = only at snapshot 0); between repartitions the
	// partition is carried via persistent node ids and only the
	// descriptor tree is re-induced (Section 4.3).
	RepartitionEvery int
}

// CampaignResult aggregates the engine runs over the sequence.
type CampaignResult struct {
	Snapshots    int
	GhostUnits   int64
	ElemsShipped int64
	TreeBytes    int64
	PairsTotal   int64
	// PerSnapshot keeps each iteration's stats for inspection.
	PerSnapshot []*Stats
}

// RunCampaign executes one parallel iteration per snapshot.
func RunCampaign(snaps []sim.Snapshot, cfg CampaignConfig) (*CampaignResult, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("engine: no snapshots")
	}
	coreCfg := core.Config{K: cfg.K, Seed: cfg.Seed, Parallel: true}

	var byID map[int64]int32
	decompose := func(sn sim.Snapshot) (*core.Decomposition, error) {
		d, err := core.Decompose(sn.Mesh, coreCfg)
		if err != nil {
			return nil, err
		}
		byID = make(map[int64]int32, len(sn.NodeID))
		for v, id := range sn.NodeID {
			byID[id] = d.Labels[v]
		}
		return d, nil
	}

	res := &CampaignResult{Snapshots: len(snaps)}
	var d *core.Decomposition
	var err error
	for t, sn := range snaps {
		if t == 0 || (cfg.RepartitionEvery > 0 && t%cfg.RepartitionEvery == 0) {
			d, err = decompose(sn)
			if err != nil {
				return nil, err
			}
		} else {
			// Carry the partition, refresh only the descriptors —
			// rebuilding a lightweight Decomposition for this mesh.
			labels := make([]int32, sn.Mesh.NumNodes())
			for v, id := range sn.NodeID {
				labels[v] = byID[id]
			}
			tree, nodes, pts, cl, derr := core.DescriptorFor(sn.Mesh, labels, coreCfg)
			if derr != nil {
				return nil, derr
			}
			d = &core.Decomposition{
				Cfg:           d.Cfg,
				Graph:         sn.Mesh.NodalGraph(d.Cfg.Nodal),
				Labels:        labels,
				Descriptor:    tree,
				ContactNodes:  nodes,
				ContactPoints: pts,
				ContactLabels: cl,
			}
		}
		st, err := Run(sn.Mesh, d, cfg.Tol)
		if err != nil {
			return nil, err
		}
		res.GhostUnits += st.GhostUnits
		res.ElemsShipped += st.ElemsShipped
		res.TreeBytes += st.TreeBytes
		res.PairsTotal += int64(len(st.Pairs))
		res.PerSnapshot = append(res.PerSnapshot, st)
	}
	return res, nil
}
