package sim

import (
	"testing"

	"repro/internal/meshgen"
)

// smallConfig returns a fast configuration for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Scene.PlateNX, cfg.Scene.PlateNY, cfg.Scene.PlateNZ = 10, 10, 2
	cfg.Scene.ProjN, cfg.Scene.ProjLen = 2, 6
	cfg.Scene.ContactRadius = 3
	cfg.Steps = 60
	cfg.Snapshots = 12
	return cfg
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Steps = 0
	if _, err := New(cfg); err == nil {
		t.Error("accepted Steps=0")
	}
	cfg = smallConfig()
	cfg.Snapshots = cfg.Steps + 1
	if _, err := New(cfg); err == nil {
		t.Error("accepted Snapshots > Steps")
	}
}

func TestProjectileDescends(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	z0 := s.TipZ()
	for i := 0; i < 10; i++ {
		s.Step()
	}
	if s.TipZ() >= z0 {
		t.Fatalf("tip did not descend: %g -> %g", z0, s.TipZ())
	}
}

func TestRunSequence(t *testing.T) {
	cfg := smallConfig()
	snaps, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != cfg.Snapshots {
		t.Fatalf("got %d snapshots, want %d", len(snaps), cfg.Snapshots)
	}
	for i, sn := range snaps {
		if err := sn.Mesh.Validate(); err != nil {
			t.Fatalf("snapshot %d invalid: %v", i, err)
		}
		if len(sn.NodeID) != sn.Mesh.NumNodes() {
			t.Fatalf("snapshot %d: %d node ids for %d nodes", i, len(sn.NodeID), sn.Mesh.NumNodes())
		}
		if len(sn.Mesh.Surface) == 0 {
			t.Fatalf("snapshot %d has no contact surface", i)
		}
		if i > 0 && sn.TipZ >= snaps[i-1].TipZ {
			t.Fatalf("snapshot %d: tip not descending", i)
		}
	}
}

func TestErosionRemovesElements(t *testing.T) {
	snaps, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, last := snaps[0].Mesh, snaps[len(snaps)-1].Mesh
	if last.NumElems() >= first.NumElems() {
		t.Fatalf("no erosion: %d -> %d elements", first.NumElems(), last.NumElems())
	}
	// The projectile must have fully traversed both plates by the end.
	if got := snaps[len(snaps)-1].TipZ; got > 0 {
		t.Errorf("final tip z = %g, want < 0 (past plate2 bottom)", got)
	}
}

func TestNodeIDsArePersistent(t *testing.T) {
	snaps, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Persistent ids never repeat within a snapshot and only ever
	// disappear (never reappear) across snapshots.
	prev := map[int64]bool{}
	for _, id := range snaps[0].NodeID {
		if prev[id] {
			t.Fatal("duplicate id in snapshot 0")
		}
		prev[id] = true
	}
	for i := 1; i < len(snaps); i++ {
		cur := map[int64]bool{}
		for _, id := range snaps[i].NodeID {
			if cur[id] {
				t.Fatalf("duplicate id in snapshot %d", i)
			}
			cur[id] = true
			if !prev[id] {
				t.Fatalf("snapshot %d: id %d appeared from nowhere", i, id)
			}
		}
		prev = cur
	}
}

func TestDeformationIsBounded(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Record original positions by persistent id.
	orig := map[int64][3]float64{}
	for v, id := range s.nodeID {
		orig[id] = s.m.Coords[v]
	}
	for i := 0; i < cfg.Steps; i++ {
		s.Step()
	}
	sn := s.Snapshot(0)
	cell := cfg.Scene.Cell / float64(cfg.Scene.Refine)
	for v, id := range sn.NodeID {
		if s.bodyOfNode(v) == meshgen.Projectile {
			continue
		}
		o := orig[id]
		d := sn.Mesh.Coords[v]
		dx := [3]float64{d[0] - o[0], d[1] - o[1], d[2] - o[2]}
		norm := dx[0]*dx[0] + dx[1]*dx[1] + dx[2]*dx[2]
		if norm > (cell/2)*(cell/2)*1.0001 {
			t.Fatalf("plate node %d moved %v, beyond half cell", id, dx)
		}
	}
}

func TestContactSurfaceEvolves(t *testing.T) {
	snaps, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Erosion must expose new plate facets: the set of contact surface
	// element counts should not be constant across the run.
	counts := map[int]bool{}
	for _, sn := range snaps {
		counts[len(sn.Mesh.Surface)] = true
	}
	if len(counts) < 2 {
		t.Error("contact surface never changed across the run")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot(0)
	before := sn.Mesh.Coords[0]
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if sn.Mesh.Coords[0] != before {
		t.Error("snapshot mesh mutated by later steps")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Mesh.NumNodes() != b[i].Mesh.NumNodes() ||
			a[i].Mesh.NumElems() != b[i].Mesh.NumElems() ||
			len(a[i].Mesh.Surface) != len(b[i].Mesh.Surface) {
			t.Fatalf("snapshot %d differs between runs", i)
		}
		for v := range a[i].Mesh.Coords {
			if a[i].Mesh.Coords[v] != b[i].Mesh.Coords[v] {
				t.Fatalf("snapshot %d node %d coordinates differ", i, v)
			}
		}
	}
}

func TestSimulationNeverInvertsElements(t *testing.T) {
	// The crater deformation caps displacements at half a cell, so no
	// element may ever invert over the full run.
	snaps, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range snaps {
		if n := sn.Mesh.CountInverted(); n != 0 {
			t.Fatalf("snapshot %d has %d inverted elements", sn.Index, n)
		}
	}
}

func TestErosionReducesTotalVolume(t *testing.T) {
	// With the crater bump disabled (it dilates elements around the
	// channel), erosion must monotonically remove material.
	cfg := smallConfig()
	cfg.CraterAmp = 0
	snaps, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := snaps[0].Mesh.TotalMeasure()
	for _, sn := range snaps[1:] {
		cur := sn.Mesh.TotalMeasure()
		if cur > prev+1e-9 {
			t.Fatalf("snapshot %d: volume grew %g -> %g without deformation", sn.Index, prev, cur)
		}
		prev = cur
	}
	if first, last := snaps[0].Mesh.TotalMeasure(), prev; last >= first {
		t.Errorf("total volume %g -> %g: erosion removed nothing", first, last)
	}
}
