// Package sim implements a kinematic contact/impact simulation that
// stands in for the EPIC projectile-penetration run of the paper's
// evaluation (Section 5). It is not a structural solver: it reproduces
// exactly the aspects of the real simulation that the partitioning
// experiments consume — a projectile advancing through two plates,
// plate nodes deforming into a crater, elements eroding away (changing
// the mesh topology), and the contact surface evolving — and emits a
// sequence of mesh snapshots with persistent node identities so that
// the ML+RCB update metrics (UpdComm) can be measured across steps.
package sim

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/meshgen"
)

// Config parameterizes a run. Zero value is unusable; start from
// DefaultConfig().
type Config struct {
	Scene meshgen.SceneConfig
	// Steps is the number of kinematic time steps; Snapshots how many
	// evenly spaced mesh snapshots to emit (the paper instruments EPIC
	// to dump ~every 37 of 3768 steps, giving 100 snapshots).
	Steps     int
	Snapshots int
	// ExitMargin is how far past the lower plate's bottom the
	// projectile travels by the end of the run.
	ExitMargin float64
	// CraterAmp scales the plate deformation; CraterDecay is the
	// radial decay length of the crater bump (in cells).
	CraterAmp   float64
	CraterDecay float64
	// ErodeMargin widens the eroded channel beyond the projectile's
	// half-width, in units of the cell size.
	ErodeMargin float64
}

// DefaultConfig returns the fast configuration: the default scene
// (~10k nodes) with 100 snapshots over 400 steps.
func DefaultConfig() Config {
	return Config{
		Scene:       meshgen.DefaultScene(),
		Steps:       400,
		Snapshots:   100,
		ExitMargin:  2.0,
		CraterAmp:   0.35,
		CraterDecay: 3.0,
		ErodeMargin: 0.3,
	}
}

// PaperConfig returns the profile used to reproduce Table 1: a ~70k
// node scene whose contact-node fraction (~13%) matches the EPIC
// dataset's 20,262 of 156,601, with 100 snapshots. (Refine=3 reaches
// the paper's full node count at ~8x the run time.)
func PaperConfig() Config {
	c := DefaultConfig()
	c.Scene.Refine = 2
	c.Scene.PlateNZ = 8       // thicker plates: volume/surface ratio of EPIC
	c.Scene.FullFaces = true  // whole plate faces are slide surfaces
	c.Scene.ContactRadius = 4 // + the erosion-exposed crater walls
	return c
}

// Snapshot is one emitted state of the simulation.
type Snapshot struct {
	// Index is the snapshot number (0-based); Step the time step it was
	// taken at; TipZ the projectile tip's z coordinate.
	Index int
	Step  int
	TipZ  float64
	// Mesh is a self-contained copy (compacted: eroded elements and
	// orphaned nodes removed).
	Mesh *mesh.Mesh
	// NodeID[v] is the persistent identity of node v, stable across
	// snapshots even as nodes are deleted and renumbered.
	NodeID []int64
}

// Sim is the running simulation state.
type Sim struct {
	cfg  Config
	m    *mesh.Mesh
	info *meshgen.SceneInfo

	nodeID   []int64        // persistent ids parallel to m.Coords
	elemBody []meshgen.Body // body of each current element
	disp     []geom.Point   // cumulative plate-node displacement (capped)

	step     int
	speed    float64 // projectile z-advance per step
	tipZ     float64
	projHalf float64 // projectile half-width in xy
	cell     float64 // refined cell size
}

// New builds the scene and returns a simulator at step 0.
func New(cfg Config) (*Sim, error) {
	if cfg.Steps < 1 || cfg.Snapshots < 1 || cfg.Snapshots > cfg.Steps {
		return nil, fmt.Errorf("sim: Steps=%d Snapshots=%d invalid", cfg.Steps, cfg.Snapshots)
	}
	m, info, err := meshgen.ProjectileScene(cfg.Scene)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:      cfg,
		m:        m,
		info:     info,
		nodeID:   make([]int64, m.NumNodes()),
		elemBody: make([]meshgen.Body, m.NumElems()),
		disp:     make([]geom.Point, m.NumNodes()),
		tipZ:     info.ProjTip,
		projHalf: float64(cfg.Scene.ProjN) * cfg.Scene.Cell / 2,
		cell:     cfg.Scene.Cell / float64(cfg.Scene.Refine),
	}
	for v := range s.nodeID {
		s.nodeID[v] = int64(v)
	}
	for e := range s.elemBody {
		b, ok := info.BodyOfElem(int32(e))
		if !ok {
			return nil, fmt.Errorf("sim: element %d outside every scene body", e)
		}
		s.elemBody[e] = b
	}
	travel := (info.ProjTip - info.Plate2Bot) + cfg.ExitMargin
	s.speed = travel / float64(cfg.Steps)
	return s, nil
}

// Step advances one kinematic time step: the projectile moves down and
// the plates deform around the penetration channel.
func (s *Sim) Step() {
	s.step++
	dz := s.speed
	s.tipZ -= dz
	// Advance every projectile node.
	for v := 0; v < s.m.NumNodes(); v++ {
		if s.bodyOfNode(v) == meshgen.Projectile {
			s.m.Coords[v][2] -= dz
		}
	}
	s.deformPlates()
}

// bodyOfNode returns the body a node belongs to. Persistent node ids
// are exactly the node's original scene index, so the original scene
// ranges remain valid even after erosion renumbers the mesh.
func (s *Sim) bodyOfNode(v int) meshgen.Body {
	for b := meshgen.Plate1; b <= meshgen.Projectile; b++ {
		if s.info.Nodes[b].Contains(int32(s.nodeBodyKey(v))) {
			return b
		}
	}
	panic(fmt.Sprintf("sim: node %d outside all bodies", v))
}

// nodeBodyKey returns the original node id used against the scene
// ranges (persistent ids are exactly the original indices).
func (s *Sim) nodeBodyKey(v int) int64 { return s.nodeID[v] }

// deformPlates applies the crater bump to plate nodes near the axis:
// nodes within the decay radius of the channel are pushed radially
// outward and slightly downward as the tip passes their depth.
// Displacement accumulates but is capped at half a cell so elements
// stay usable.
func (s *Sim) deformPlates() {
	amp := s.cfg.CraterAmp * s.speed
	decay := s.cfg.CraterDecay * s.cfg.Scene.Cell
	capd := s.cell / 2
	ax, ay := s.info.Axis[0], s.info.Axis[1]
	for v := 0; v < s.m.NumNodes(); v++ {
		if s.bodyOfNode(v) == meshgen.Projectile {
			continue
		}
		p := s.m.Coords[v]
		// Only nodes near the tip's current depth deform.
		if math.Abs(p[2]-s.tipZ) > 3*s.cfg.Scene.Cell {
			continue
		}
		dx, dy := p[0]-ax, p[1]-ay
		r := math.Sqrt(dx*dx + dy*dy)
		if r > s.projHalf+4*decay || r < 1e-12 {
			continue
		}
		bump := amp * math.Exp(-math.Max(0, r-s.projHalf)/decay)
		ur := bump        // radial push
		uz := -0.5 * bump // downward dishing
		d := s.disp[v]
		d[0] += ur * dx / r
		d[1] += ur * dy / r
		d[2] += uz
		// Cap cumulative displacement.
		n := d.Norm()
		if n > capd {
			d = d.Scale(capd / n)
		}
		delta := d.Sub(s.disp[v])
		s.disp[v] = d
		s.m.Coords[v] = p.Add(delta)
	}
}

// erode removes plate elements swallowed by the penetration channel:
// elements whose centroid lies inside the (slightly widened) square
// channel and above the current tip depth.
func (s *Sim) erode() {
	half := s.projHalf + s.cfg.ErodeMargin*s.cell
	ax, ay := s.info.Axis[0], s.info.Axis[1]
	alive := make([]bool, s.m.NumElems())
	removed := 0
	for e := 0; e < s.m.NumElems(); e++ {
		alive[e] = true
		if s.elemBody[e] == meshgen.Projectile {
			continue
		}
		nodes := s.m.ElemNodes(e)
		var cx, cy, cz float64
		for _, n := range nodes {
			cx += s.m.Coords[n][0]
			cy += s.m.Coords[n][1]
			cz += s.m.Coords[n][2]
		}
		k := float64(len(nodes))
		cx, cy, cz = cx/k, cy/k, cz/k
		if math.Abs(cx-ax) <= half && math.Abs(cy-ay) <= half && cz >= s.tipZ {
			alive[e] = false
			removed++
		}
	}
	if removed == 0 {
		return
	}
	s.compact(alive)
}

// compact rebuilds the mesh keeping only alive elements and the nodes
// they reference, preserving persistent node ids.
func (s *Sim) compact(alive []bool) {
	old := s.m
	newIdx := make([]int32, old.NumNodes())
	for i := range newIdx {
		newIdx[i] = -1
	}
	nm := &mesh.Mesh{Dim: old.Dim, EPtr: []int32{0}}
	var nodeID []int64
	var disp []geom.Point
	var elemBody []meshgen.Body
	for e := 0; e < old.NumElems(); e++ {
		if !alive[e] {
			continue
		}
		nm.Types = append(nm.Types, old.Types[e])
		for _, n := range old.ElemNodes(e) {
			if newIdx[n] < 0 {
				newIdx[n] = int32(len(nm.Coords))
				nm.Coords = append(nm.Coords, old.Coords[n])
				nodeID = append(nodeID, s.nodeID[n])
				disp = append(disp, s.disp[n])
			}
			nm.ENodes = append(nm.ENodes, newIdx[n])
		}
		nm.EPtr = append(nm.EPtr, int32(len(nm.ENodes)))
		elemBody = append(elemBody, s.elemBody[e])
	}
	s.m = nm
	s.nodeID = nodeID
	s.disp = disp
	s.elemBody = elemBody
}

// Snapshot erodes, re-designates the contact surface, and returns a
// deep copy of the current state.
func (s *Sim) Snapshot(index int) Snapshot {
	s.erode()
	meshgen.DesignateContactBy(s.m, s.info.Axis, s.cfg.Scene.ContactRadius, s.cfg.Scene.FullFaces, func(e int32) bool {
		return s.elemBody[e] == meshgen.Projectile
	})
	return Snapshot{
		Index:  index,
		Step:   s.step,
		TipZ:   s.tipZ,
		Mesh:   s.m.Clone(),
		NodeID: append([]int64(nil), s.nodeID...),
	}
}

// TipZ returns the projectile tip's current depth.
func (s *Sim) TipZ() float64 { return s.tipZ }

// Mesh returns the live mesh (mutated by Step; callers must not hold it
// across steps).
func (s *Sim) Mesh() *mesh.Mesh { return s.m }

// Info returns the scene bookkeeping.
func (s *Sim) Info() *meshgen.SceneInfo { return s.info }

// Run executes the full simulation and returns the snapshot sequence.
func Run(cfg Config) ([]Snapshot, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	snaps := make([]Snapshot, 0, cfg.Snapshots)
	interval := cfg.Steps / cfg.Snapshots
	for t := 1; t <= cfg.Steps; t++ {
		s.Step()
		if t%interval == 0 && len(snaps) < cfg.Snapshots {
			snaps = append(snaps, s.Snapshot(len(snaps)))
		}
	}
	for len(snaps) < cfg.Snapshots {
		snaps = append(snaps, s.Snapshot(len(snaps)))
	}
	return snaps, nil
}
