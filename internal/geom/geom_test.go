package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArith(t *testing.T) {
	p := P3(1, 2, 3)
	q := P3(4, 5, 6)
	if got := p.Add(q); got != (Point{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := P3(3, 4, 0).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := P2(0, 0).Dist(P2(3, 4)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestEmptyBox(t *testing.T) {
	e := Empty()
	if !e.IsEmpty(2) || !e.IsEmpty(3) {
		t.Fatal("Empty() not empty")
	}
	if e.Volume(3) != 0 {
		t.Errorf("empty volume = %v", e.Volume(3))
	}
	// Extending the empty box with one point gives a degenerate box
	// containing exactly that point.
	p := P3(1, 2, 3)
	b := e.Extend(p)
	if b.IsEmpty(3) {
		t.Fatal("extended box still empty")
	}
	if !b.Contains(p, 3) {
		t.Fatal("extended box does not contain its point")
	}
	if b.Min != p || b.Max != p {
		t.Errorf("degenerate box = %v", b)
	}
}

func TestBoxOf(t *testing.T) {
	pts := []Point{P2(1, 5), P2(-2, 3), P2(4, -1)}
	b := BoxOf(pts)
	want := AABB{Min: Point{-2, -1, 0}, Max: Point{4, 5, 0}}
	if b != want {
		t.Errorf("BoxOf = %v, want %v", b, want)
	}
	if got := BoxOf(nil); !got.IsEmpty(2) {
		t.Error("BoxOf(nil) not empty")
	}
}

func TestIntersects(t *testing.T) {
	a := AABB{Min: P2(0, 0), Max: P2(2, 2)}
	cases := []struct {
		b    AABB
		dim  int
		want bool
	}{
		{AABB{Min: P2(1, 1), Max: P2(3, 3)}, 2, true},
		{AABB{Min: P2(2, 0), Max: P2(4, 2)}, 2, true}, // touching faces count
		{AABB{Min: P2(2.01, 0), Max: P2(4, 2)}, 2, false},
		{AABB{Min: P2(0, 3), Max: P2(2, 4)}, 2, false},
		{AABB{Min: Point{1, 1, 10}, Max: Point{3, 3, 11}}, 2, true}, // z ignored in 2D
		{AABB{Min: Point{1, 1, 10}, Max: Point{3, 3, 11}}, 3, false},
	}
	for i, c := range cases {
		if got := a.Intersects(c.b, c.dim); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	b := AABB{Min: P3(0, 0, 0), Max: P3(1, 1, 1)}
	if !b.Contains(P3(0.5, 0.5, 0.5), 3) {
		t.Error("interior point not contained")
	}
	if !b.Contains(P3(1, 1, 1), 3) {
		t.Error("boundary point not contained (closed box)")
	}
	if b.Contains(P3(1.1, 0.5, 0.5), 3) {
		t.Error("exterior point contained")
	}
	if !b.ContainsBox(AABB{Min: P3(0.2, 0.2, 0.2), Max: P3(0.8, 0.8, 0.8)}, 3) {
		t.Error("inner box not contained")
	}
	if b.ContainsBox(AABB{Min: P3(0.2, 0.2, 0.2), Max: P3(1.8, 0.8, 0.8)}, 3) {
		t.Error("overflowing box contained")
	}
}

func TestLongestDim(t *testing.T) {
	b := AABB{Min: P3(0, 0, 0), Max: P3(1, 5, 3)}
	if got := b.LongestDim(3); got != 1 {
		t.Errorf("LongestDim(3) = %d, want 1", got)
	}
	if got := b.LongestDim(2); got != 1 {
		t.Errorf("LongestDim(2) = %d, want 1", got)
	}
	b2 := AABB{Min: P3(0, 0, 0), Max: P3(1, 0.5, 9)}
	if got := b2.LongestDim(2); got != 0 {
		t.Errorf("LongestDim(2) = %d, want 0 (z must be ignored)", got)
	}
}

func TestVolumeAndCenter(t *testing.T) {
	b := AABB{Min: P3(0, 0, 0), Max: P3(2, 3, 4)}
	if got := b.Volume(3); got != 24 {
		t.Errorf("Volume(3) = %v", got)
	}
	if got := b.Volume(2); got != 6 {
		t.Errorf("Volume(2) = %v", got)
	}
	if got := b.Center(); got != (Point{1, 1.5, 2}) {
		t.Errorf("Center = %v", got)
	}
}

func TestInflate(t *testing.T) {
	b := AABB{Min: P2(0, 0), Max: P2(1, 1)}
	g := b.Inflate(0.5, 2)
	want := AABB{Min: P2(-0.5, -0.5), Max: P2(1.5, 1.5)}
	if g != want {
		t.Errorf("Inflate = %v, want %v", g, want)
	}
	if g.Min[2] != 0 || g.Max[2] != 0 {
		t.Error("Inflate touched the z dimension in 2D mode")
	}
}

func TestIntersection(t *testing.T) {
	a := AABB{Min: P2(0, 0), Max: P2(2, 2)}
	b := AABB{Min: P2(1, 1), Max: P2(3, 3)}
	got := a.Intersection(b)
	want := AABB{Min: P2(1, 1), Max: P2(2, 2)}
	if got != want {
		t.Errorf("Intersection = %v, want %v", got, want)
	}
	c := AABB{Min: P2(5, 5), Max: P2(6, 6)}
	if !a.Intersection(c).IsEmpty(2) {
		t.Error("disjoint intersection not empty")
	}
}

func randPoint(r *rand.Rand) Point {
	return Point{r.Float64()*20 - 10, r.Float64()*20 - 10, r.Float64()*20 - 10}
}

func randBox(r *rand.Rand) AABB {
	p, q := randPoint(r), randPoint(r)
	b := Empty()
	return b.Extend(p).Extend(q)
}

// Property: Union contains both operands.
func TestQuickUnionContains(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r), randBox(r)
		u := a.Union(b)
		return u.ContainsBox(a, 3) && u.ContainsBox(b, 3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intersects is symmetric and agrees with a non-empty Intersection.
func TestQuickIntersectSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r), randBox(r)
		s1 := a.Intersects(b, 3)
		s2 := b.Intersects(a, 3)
		s3 := !a.Intersection(b).IsEmpty(3)
		return s1 == s2 && s1 == s3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a box contains every point it was built from, and BoxOf is
// invariant under permutation-ish reorderings (reverse).
func TestQuickBoxOfContainsAll(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = randPoint(r)
		}
		b := BoxOf(pts)
		for _, p := range pts {
			if !b.Contains(p, 3) {
				return false
			}
		}
		rev := make([]Point, n)
		for i, p := range pts {
			rev[n-1-i] = p
		}
		return BoxOf(rev) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Inflate by eps then checking containment of points within
// eps of the box boundary succeeds.
func TestQuickInflateContains(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := randBox(r)
		eps := r.Float64()
		g := b.Inflate(eps, 3)
		// Corner pushed outward by slightly less than eps stays inside.
		d := eps * 0.99
		p := Point{b.Max[0] + d, b.Max[1] + d, b.Max[2] + d}
		return g.Contains(p, 3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtentString(t *testing.T) {
	b := AABB{Min: P3(0, 1, 2), Max: P3(3, 5, 9)}
	if got := b.Extent(); got != (Point{3, 4, 7}) {
		t.Errorf("Extent = %v", got)
	}
	if b.String() == "" {
		t.Error("String empty")
	}
}

func TestDegenerateVolume(t *testing.T) {
	// Flat box: zero volume in 3D, positive area in 2D.
	b := AABB{Min: P3(0, 0, 1), Max: P3(2, 2, 1)}
	if got := b.Volume(3); got != 0 {
		t.Errorf("flat Volume(3) = %v", got)
	}
	if got := b.Volume(2); got != 4 {
		t.Errorf("flat Volume(2) = %v", got)
	}
	if math.IsNaN(Empty().Volume(2)) {
		t.Error("empty volume NaN")
	}
}
