package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointSegmentDist(t *testing.T) {
	a, b := P3(0, 0, 0), P3(2, 0, 0)
	cases := []struct {
		p    Point
		want float64
	}{
		{P3(1, 1, 0), 1},    // above middle
		{P3(-1, 0, 0), 1},   // beyond a
		{P3(3, 0, 0), 1},    // beyond b
		{P3(1, 0, 0), 0},    // on segment
		{P3(0, 3, 4), 5},    // off endpoint a
		{P3(1, -2, 0), 2},   // below middle
		{P3(2, 0, 0.5), .5}, // above endpoint b
	}
	for i, c := range cases {
		if got := PointSegmentDist(c.p, a, b); !almostEq(got, c.want) {
			t.Errorf("case %d: dist = %v, want %v", i, got, c.want)
		}
	}
	// Degenerate zero-length segment.
	if got := PointSegmentDist(P3(1, 0, 0), a, a); !almostEq(got, 1) {
		t.Errorf("degenerate segment dist = %v", got)
	}
}

func TestSegSegDist(t *testing.T) {
	cases := []struct {
		p1, q1, p2, q2 Point
		want           float64
	}{
		// Parallel horizontal segments one apart.
		{P3(0, 0, 0), P3(2, 0, 0), P3(0, 1, 0), P3(2, 1, 0), 1},
		// Crossing segments (in projection) separated in z.
		{P3(-1, 0, 1), P3(1, 0, 1), P3(0, -1, 0), P3(0, 1, 0), 1},
		// Actually intersecting.
		{P3(-1, 0, 0), P3(1, 0, 0), P3(0, -1, 0), P3(0, 1, 0), 0},
		// Collinear, disjoint.
		{P3(0, 0, 0), P3(1, 0, 0), P3(3, 0, 0), P3(4, 0, 0), 2},
		// Degenerate: two points.
		{P3(0, 0, 0), P3(0, 0, 0), P3(0, 3, 4), P3(0, 3, 4), 5},
	}
	for i, c := range cases {
		if got := SegSegDist(c.p1, c.q1, c.p2, c.q2); !almostEq(got, c.want) {
			t.Errorf("case %d: dist = %v, want %v", i, got, c.want)
		}
	}
}

// Property: SegSegDist is symmetric and matches dense sampling.
func TestQuickSegSegAgainstSampling(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p1, q1, p2, q2 := randPoint(r), randPoint(r), randPoint(r), randPoint(r)
		got := SegSegDist(p1, q1, p2, q2)
		if sym := SegSegDist(p2, q2, p1, q1); !almostEq(got, sym) {
			return false
		}
		// Dense sampling can only be >= the true minimum.
		const n = 60
		sample := math.Inf(1)
		for i := 0; i <= n; i++ {
			a := p1.Add(q1.Sub(p1).Scale(float64(i) / n))
			for j := 0; j <= n; j++ {
				b := p2.Add(q2.Sub(p2).Scale(float64(j) / n))
				if d := a.Dist(b); d < sample {
					sample = d
				}
			}
		}
		// got <= sample (+slack), and sample converges to got.
		return got <= sample+1e-9 && sample-got < 0.6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPointTriangleDist(t *testing.T) {
	a, b, c := P3(0, 0, 0), P3(2, 0, 0), P3(0, 2, 0)
	cases := []struct {
		p    Point
		want float64
	}{
		{P3(0.5, 0.5, 1), 1},        // above interior
		{P3(0.5, 0.5, 0), 0},        // in plane, inside
		{P3(-1, -1, 0), math.Sqrt2}, // nearest vertex a
		{P3(3, 0, 0), 1},            // beyond vertex b along x
		{P3(1, -1, 0), 1},           // below edge ab
		{P3(2, 2, 0), math.Sqrt2},   // outside hypotenuse
	}
	for i, q := range cases {
		if got := PointTriangleDist(q.p, a, b, c); !almostEq(got, q.want) {
			t.Errorf("case %d: dist = %v, want %v", i, got, q.want)
		}
	}
}

// Property: ClosestOnTriangle returns a point whose distance matches
// and that lies in the triangle's plane bounding box (loose sanity),
// and dense barycentric sampling never beats it.
func TestQuickPointTriangleAgainstSampling(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c, p := randPoint(r), randPoint(r), randPoint(r), randPoint(r)
		got := PointTriangleDist(p, a, b, c)
		const n = 50
		sample := math.Inf(1)
		for i := 0; i <= n; i++ {
			for j := 0; j <= n-i; j++ {
				u := float64(i) / n
				v := float64(j) / n
				q := a.Scale(1 - u - v).Add(b.Scale(u)).Add(c.Scale(v))
				if d := p.Dist(q); d < sample {
					sample = d
				}
			}
		}
		return got <= sample+1e-9 && sample-got < 0.6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTriTriDist(t *testing.T) {
	t1 := [3]Point{P3(0, 0, 0), P3(1, 0, 0), P3(0, 1, 0)}
	t2 := [3]Point{P3(0, 0, 2), P3(1, 0, 2), P3(0, 1, 2)}
	if got := TriTriDist(t1, t2); !almostEq(got, 2) {
		t.Errorf("parallel triangles dist = %v, want 2", got)
	}
	// Shared vertex.
	t3 := [3]Point{P3(0, 0, 0), P3(-1, 0, 0), P3(0, -1, 0)}
	if got := TriTriDist(t1, t3); !almostEq(got, 0) {
		t.Errorf("touching triangles dist = %v, want 0", got)
	}
	// Edge-edge closest feature (crossing slabs separated in z).
	t4 := [3]Point{P3(-5, 0.2, 1), P3(5, 0.2, 1), P3(0, 10, 1)}
	if got := TriTriDist(t1, t4); !almostEq(got, 1) {
		t.Errorf("edge-edge dist = %v, want 1", got)
	}
}

func TestFacetDist(t *testing.T) {
	// Two parallel quads distance 3 apart.
	qa := []Point{P3(0, 0, 0), P3(1, 0, 0), P3(1, 1, 0), P3(0, 1, 0)}
	qb := []Point{P3(0, 0, 3), P3(1, 0, 3), P3(1, 1, 3), P3(0, 1, 3)}
	if got := FacetDist(qa, qb); !almostEq(got, 3) {
		t.Errorf("quad-quad dist = %v, want 3", got)
	}
	// Segment vs segment (2D contact facets).
	sa := []Point{P2(0, 0), P2(1, 0)}
	sb := []Point{P2(0, 2), P2(1, 2)}
	if got := FacetDist(sa, sb); !almostEq(got, 2) {
		t.Errorf("seg-seg dist = %v, want 2", got)
	}
	// Segment vs triangle.
	tri := []Point{P3(0, 0, 1), P3(1, 0, 1), P3(0, 1, 1)}
	sc := []Point{P3(0.2, 0.2, 0), P3(0.3, 0.3, 0)}
	if got := FacetDist(sc, tri); !almostEq(got, 1) {
		t.Errorf("seg-tri dist = %v, want 1", got)
	}
}

func TestFacetDistSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func(n int) []Point {
			pts := make([]Point, n)
			for i := range pts {
				pts[i] = randPoint(r)
			}
			return pts
		}
		a := mk(2 + r.Intn(3))
		b := mk(2 + r.Intn(3))
		return almostEq(FacetDist(a, b), FacetDist(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
