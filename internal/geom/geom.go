// Package geom provides the small geometric vocabulary shared by the
// mesh, RCB, decision-tree, and contact-search packages: points in 2 or
// 3 dimensions and axis-aligned bounding boxes.
//
// Both 2D and 3D data are stored in fixed [3]float64 arrays; the number
// of meaningful coordinates is carried separately (by the structures
// that own collections of points) so that the hot loops over
// coordinates never allocate.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in 2D or 3D space. For 2D data the Z component is
// zero and ignored.
type Point [3]float64

// P2 returns a 2D point.
func P2(x, y float64) Point { return Point{x, y, 0} }

// P3 returns a 3D point.
func P3(x, y, z float64) Point { return Point{x, y, z} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p[0] + q[0], p[1] + q[1], p[2] + q[2]} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p[0] - q[0], p[1] - q[1], p[2] - q[2]} }

// Scale returns s*p.
func (p Point) Scale(s float64) Point { return Point{s * p[0], s * p[1], s * p[2]} }

// Dot returns the dot product of p and q.
func (p Point) Dot(q Point) float64 { return p[0]*q[0] + p[1]*q[1] + p[2]*q[2] }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// AABB is an axis-aligned bounding box. An AABB with Min[d] > Max[d] in
// any dimension is empty; Empty() constructs the canonical empty box.
type AABB struct {
	Min, Max Point
}

// Empty returns the canonical empty box, suitable as the identity for
// Extend/Union folds.
func Empty() AABB {
	inf := math.Inf(1)
	return AABB{
		Min: Point{inf, inf, inf},
		Max: Point{-inf, -inf, -inf},
	}
}

// BoxOf returns the tightest box containing pts (Empty() if pts is empty).
func BoxOf(pts []Point) AABB {
	b := Empty()
	for _, p := range pts {
		b = b.Extend(p)
	}
	return b
}

// IsEmpty reports whether b contains no points in the first dim dimensions.
func (b AABB) IsEmpty(dim int) bool {
	for d := 0; d < dim; d++ {
		if b.Min[d] > b.Max[d] {
			return true
		}
	}
	return false
}

// Extend returns the smallest box containing both b and p.
func (b AABB) Extend(p Point) AABB {
	for d := 0; d < 3; d++ {
		if p[d] < b.Min[d] {
			b.Min[d] = p[d]
		}
		if p[d] > b.Max[d] {
			b.Max[d] = p[d]
		}
	}
	return b
}

// Union returns the smallest box containing both b and c.
func (b AABB) Union(c AABB) AABB {
	for d := 0; d < 3; d++ {
		if c.Min[d] < b.Min[d] {
			b.Min[d] = c.Min[d]
		}
		if c.Max[d] > b.Max[d] {
			b.Max[d] = c.Max[d]
		}
	}
	return b
}

// Inflate returns b grown by eps on every side in the first dim dimensions.
func (b AABB) Inflate(eps float64, dim int) AABB {
	for d := 0; d < dim; d++ {
		b.Min[d] -= eps
		b.Max[d] += eps
	}
	return b
}

// Intersects reports whether b and c overlap (closed boxes: touching
// faces count as intersecting) in the first dim dimensions.
func (b AABB) Intersects(c AABB, dim int) bool {
	for d := 0; d < dim; d++ {
		if b.Max[d] < c.Min[d] || c.Max[d] < b.Min[d] {
			return false
		}
	}
	return true
}

// Contains reports whether p lies inside b (closed) in the first dim
// dimensions.
func (b AABB) Contains(p Point, dim int) bool {
	for d := 0; d < dim; d++ {
		if p[d] < b.Min[d] || p[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether c lies entirely inside b in the first dim
// dimensions.
func (b AABB) ContainsBox(c AABB, dim int) bool {
	for d := 0; d < dim; d++ {
		if c.Min[d] < b.Min[d] || c.Max[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// Center returns the midpoint of b.
func (b AABB) Center() Point {
	return Point{
		(b.Min[0] + b.Max[0]) / 2,
		(b.Min[1] + b.Max[1]) / 2,
		(b.Min[2] + b.Max[2]) / 2,
	}
}

// Extent returns Max[d]-Min[d] per dimension as a Point.
func (b AABB) Extent() Point {
	return b.Max.Sub(b.Min)
}

// LongestDim returns the dimension (0..dim-1) with the largest extent.
func (b AABB) LongestDim(dim int) int {
	best, bestLen := 0, math.Inf(-1)
	for d := 0; d < dim; d++ {
		if l := b.Max[d] - b.Min[d]; l > bestLen {
			best, bestLen = d, l
		}
	}
	return best
}

// Volume returns the dim-dimensional volume of b (0 for empty boxes).
func (b AABB) Volume(dim int) float64 {
	v := 1.0
	for d := 0; d < dim; d++ {
		l := b.Max[d] - b.Min[d]
		if l < 0 {
			return 0
		}
		v *= l
	}
	return v
}

// Intersection returns the overlap of b and c; the result may be empty.
func (b AABB) Intersection(c AABB) AABB {
	for d := 0; d < 3; d++ {
		if c.Min[d] > b.Min[d] {
			b.Min[d] = c.Min[d]
		}
		if c.Max[d] < b.Max[d] {
			b.Max[d] = c.Max[d]
		}
	}
	return b
}

func (b AABB) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]x[%g,%g]",
		b.Min[0], b.Max[0], b.Min[1], b.Max[1], b.Min[2], b.Max[2])
}
