package geom

import "math"

// Distance primitives used by the narrow-phase ("local search") stage
// of contact detection: exact minimum distances between points,
// segments, and triangles in 3D (2D inputs work unchanged with z = 0).

// ClosestOnSegment returns the point on segment [a,b] closest to p.
func ClosestOnSegment(p, a, b Point) Point {
	ab := b.Sub(a)
	denom := ab.Dot(ab)
	if denom == 0 {
		return a // degenerate segment
	}
	t := p.Sub(a).Dot(ab) / denom
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return a.Add(ab.Scale(t))
}

// PointSegmentDist returns the distance from p to segment [a,b].
func PointSegmentDist(p, a, b Point) float64 {
	return p.Dist(ClosestOnSegment(p, a, b))
}

// SegSegDist returns the minimum distance between segments [p1,q1] and
// [p2,q2] (Ericson, Real-Time Collision Detection, §5.1.9).
func SegSegDist(p1, q1, p2, q2 Point) float64 {
	d1 := q1.Sub(p1)
	d2 := q2.Sub(p2)
	r := p1.Sub(p2)
	a := d1.Dot(d1)
	e := d2.Dot(d2)
	f := d2.Dot(r)

	var s, t float64
	const eps = 1e-15
	switch {
	case a <= eps && e <= eps:
		return p1.Dist(p2)
	case a <= eps:
		s = 0
		t = clamp01(f / e)
	default:
		c := d1.Dot(r)
		if e <= eps {
			t = 0
			s = clamp01(-c / a)
		} else {
			b := d1.Dot(d2)
			denom := a*e - b*b
			if denom != 0 {
				s = clamp01((b*f - c*e) / denom)
			}
			t = (b*s + f) / e
			if t < 0 {
				t = 0
				s = clamp01(-c / a)
			} else if t > 1 {
				t = 1
				s = clamp01((b - c) / a)
			}
		}
	}
	c1 := p1.Add(d1.Scale(s))
	c2 := p2.Add(d2.Scale(t))
	return c1.Dist(c2)
}

// ClosestOnTriangle returns the point of triangle (a,b,c) closest to p
// (Ericson §5.1.5).
func ClosestOnTriangle(p, a, b, c Point) Point {
	ab := b.Sub(a)
	ac := c.Sub(a)
	ap := p.Sub(a)
	d1 := ab.Dot(ap)
	d2 := ac.Dot(ap)
	if d1 <= 0 && d2 <= 0 {
		return a
	}
	bp := p.Sub(b)
	d3 := ab.Dot(bp)
	d4 := ac.Dot(bp)
	if d3 >= 0 && d4 <= d3 {
		return b
	}
	vc := d1*d4 - d3*d2
	if vc <= 0 && d1 >= 0 && d3 <= 0 {
		v := d1 / (d1 - d3)
		return a.Add(ab.Scale(v))
	}
	cp := p.Sub(c)
	d5 := ab.Dot(cp)
	d6 := ac.Dot(cp)
	if d6 >= 0 && d5 <= d6 {
		return c
	}
	vb := d5*d2 - d1*d6
	if vb <= 0 && d2 >= 0 && d6 <= 0 {
		w := d2 / (d2 - d6)
		return a.Add(ac.Scale(w))
	}
	va := d3*d6 - d5*d4
	if va <= 0 && (d4-d3) >= 0 && (d5-d6) >= 0 {
		w := (d4 - d3) / ((d4 - d3) + (d5 - d6))
		return b.Add(c.Sub(b).Scale(w))
	}
	denom := va + vb + vc
	if denom == 0 {
		// Degenerate (collinear) triangle: fall back to edges.
		best := ClosestOnSegment(p, a, b)
		if q := ClosestOnSegment(p, b, c); p.Dist(q) < p.Dist(best) {
			best = q
		}
		if q := ClosestOnSegment(p, c, a); p.Dist(q) < p.Dist(best) {
			best = q
		}
		return best
	}
	v := vb / denom
	w := vc / denom
	return a.Add(ab.Scale(v)).Add(ac.Scale(w))
}

// PointTriangleDist returns the distance from p to triangle (a,b,c).
func PointTriangleDist(p, a, b, c Point) float64 {
	return p.Dist(ClosestOnTriangle(p, a, b, c))
}

// TriTriDist returns the minimum distance between triangles t1 and t2.
// For disjoint triangles this is exact (the minimum is attained at a
// vertex-face or edge-edge pair); intersecting triangles return 0 up
// to the resolution of the edge-edge tests.
func TriTriDist(t1, t2 [3]Point) float64 {
	best := math.Inf(1)
	for _, p := range t1 {
		if d := PointTriangleDist(p, t2[0], t2[1], t2[2]); d < best {
			best = d
		}
	}
	for _, p := range t2 {
		if d := PointTriangleDist(p, t1[0], t1[1], t1[2]); d < best {
			best = d
		}
	}
	edges := [3][2]int{{0, 1}, {1, 2}, {2, 0}}
	for _, e1 := range edges {
		for _, e2 := range edges {
			if d := SegSegDist(t1[e1[0]], t1[e1[1]], t2[e2[0]], t2[e2[1]]); d < best {
				best = d
			}
		}
	}
	return best
}

// FacetDist returns the minimum distance between two facets given as
// vertex lists: segments (2 nodes), triangles (3), or quads (4, split
// into two triangles). This is the narrow-phase kernel of local
// contact search.
func FacetDist(a, b []Point) float64 {
	ta := facetTris(a)
	tb := facetTris(b)
	best := math.Inf(1)
	for _, x := range ta {
		for _, y := range tb {
			var d float64
			switch {
			case x[2] == x[1] && y[2] == y[1]: // segment vs segment
				d = SegSegDist(x[0], x[1], y[0], y[1])
			case x[2] == x[1]: // segment vs triangle
				d = segTriDist(x[0], x[1], y)
			case y[2] == y[1]:
				d = segTriDist(y[0], y[1], x)
			default:
				d = TriTriDist(x, y)
			}
			if d < best {
				best = d
			}
		}
	}
	return best
}

// facetTris normalizes a facet into triangles; segments are encoded as
// a degenerate triangle with the last vertex repeated.
func facetTris(f []Point) [][3]Point {
	switch len(f) {
	case 2:
		return [][3]Point{{f[0], f[1], f[1]}}
	case 3:
		return [][3]Point{{f[0], f[1], f[2]}}
	case 4:
		return [][3]Point{{f[0], f[1], f[2]}, {f[0], f[2], f[3]}}
	default:
		// Fan triangulation for anything larger.
		var out [][3]Point
		for i := 2; i < len(f); i++ {
			out = append(out, [3]Point{f[0], f[i-1], f[i]})
		}
		return out
	}
}

// segTriDist returns the distance between segment [a,b] and a triangle.
func segTriDist(a, b Point, t [3]Point) float64 {
	best := PointTriangleDist(a, t[0], t[1], t[2])
	if d := PointTriangleDist(b, t[0], t[1], t[2]); d < best {
		best = d
	}
	edges := [3][2]int{{0, 1}, {1, 2}, {2, 0}}
	for _, e := range edges {
		if d := SegSegDist(a, b, t[e[0]], t[e[1]]); d < best {
			best = d
		}
	}
	return best
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
