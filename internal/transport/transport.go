// Package transport abstracts the rank-to-rank message exchange the
// parallel engine runs on. The engine's k workers stand in for MPI
// ranks; a Transport carries their phase-1 ghost batches and phase-2
// element shipments (plus the acknowledgements the resilience layer
// adds) between ranks, honoring context deadlines so a slow or dead
// peer surfaces as an error instead of a deadlock.
//
// Direct is the in-memory implementation: one buffered channel per
// rank, reproducing the seed engine's channel semantics bit-for-bit.
// Faulty decorates any Transport with a deterministic fault.Plan —
// dropped, delayed, duplicated, and reordered deliveries — for chaos
// testing the recovery machinery above it.
package transport

import (
	"context"
	"fmt"
)

// Kind distinguishes payload messages from acknowledgements.
type Kind uint8

const (
	// Data carries a phase batch (ghost nodes or shipped elements).
	Data Kind = iota
	// Ack acknowledges receipt of a Data message.
	Ack
)

func (k Kind) String() string {
	if k == Ack {
		return "ack"
	}
	return "data"
}

// Message is one rank-to-rank datagram. Attempt numbers retransmits
// of the same logical batch: (From, Phase, Kind) identifies the
// logical message, so receivers deduplicate retries by that key and
// retried deliveries can never change the computation's results.
type Message struct {
	From, To int
	Phase    int
	Kind     Kind
	Attempt  int
	Payload  []int32
}

// Transport moves messages between ranks. Implementations must be
// safe for concurrent use by all ranks, and Send must not block
// indefinitely when the receiver's inbox has capacity.
type Transport interface {
	// Send delivers msg toward rank msg.To, honoring ctx cancellation
	// and deadline.
	Send(ctx context.Context, msg Message) error
	// Recv takes the next message addressed to rank, honoring ctx
	// cancellation and deadline.
	Recv(ctx context.Context, rank int) (Message, error)
}

// Direct is the in-memory Transport: one buffered channel per rank.
type Direct struct {
	inbox []chan Message
}

// NewDirect creates a Direct transport for k ranks with the given
// per-rank inbox capacity (capacity < 1 selects a safe default large
// enough for a full two-phase all-to-all exchange with retries).
func NewDirect(k, capacity int) *Direct {
	if capacity < 1 {
		capacity = 16 * (k + 1)
	}
	d := &Direct{inbox: make([]chan Message, k)}
	for i := range d.inbox {
		d.inbox[i] = make(chan Message, capacity)
	}
	return d
}

// Send implements Transport.
func (d *Direct) Send(ctx context.Context, msg Message) error {
	if msg.To < 0 || msg.To >= len(d.inbox) {
		return fmt.Errorf("transport: send to rank %d of %d", msg.To, len(d.inbox))
	}
	select {
	case d.inbox[msg.To] <- msg:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Recv implements Transport.
func (d *Direct) Recv(ctx context.Context, rank int) (Message, error) {
	if rank < 0 || rank >= len(d.inbox) {
		return Message{}, fmt.Errorf("transport: recv at rank %d of %d", rank, len(d.inbox))
	}
	select {
	case msg := <-d.inbox[rank]:
		return msg, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}
