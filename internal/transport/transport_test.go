package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

func TestDirectSendRecv(t *testing.T) {
	d := NewDirect(3, 0)
	ctx := context.Background()
	want := Message{From: 0, To: 2, Phase: 1, Kind: Data, Payload: []int32{7, 8, 9}}
	if err := d.Send(ctx, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.Recv(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 0 || got.To != 2 || got.Phase != 1 || got.Kind != Data || len(got.Payload) != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestDirectFIFOPerRank(t *testing.T) {
	d := NewDirect(2, 0)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := d.Send(ctx, Message{From: 0, To: 1, Phase: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := d.Recv(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.Phase != i {
			t.Fatalf("message %d arrived with phase %d: not FIFO", i, m.Phase)
		}
	}
}

func TestDirectRecvHonorsDeadline(t *testing.T) {
	d := NewDirect(2, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := d.Recv(ctx, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Recv on empty inbox: %v, want DeadlineExceeded", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("Recv blocked %v past its deadline", d)
	}
}

func TestDirectSendHonorsCancellation(t *testing.T) {
	d := NewDirect(1, 1)
	ctx := context.Background()
	if err := d.Send(ctx, Message{To: 0}); err != nil {
		t.Fatal(err) // fills the capacity-1 inbox
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.Send(cctx, Message{To: 0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Send to full inbox with cancelled ctx: %v, want Canceled", err)
	}
}

func TestDirectRejectsBadRank(t *testing.T) {
	d := NewDirect(2, 0)
	ctx := context.Background()
	if err := d.Send(ctx, Message{To: 5}); err == nil {
		t.Error("Send to out-of-range rank accepted")
	}
	if err := d.Send(ctx, Message{To: -1}); err == nil {
		t.Error("Send to negative rank accepted")
	}
	if _, err := d.Recv(ctx, 2); err == nil {
		t.Error("Recv at out-of-range rank accepted")
	}
}

// counter reads an obs counter by name from the report.
func counter(t *testing.T, col *obs.Collector, name string) int64 {
	t.Helper()
	for _, c := range col.Report().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

func TestFaultyDropCounted(t *testing.T) {
	col := obs.New()
	f := NewFaulty(NewDirect(2, 0), &fault.Plan{DropProb: 1}, col)
	defer f.Close()
	ctx := context.Background()
	if err := f.Send(ctx, Message{From: 0, To: 1, Phase: 1}); err != nil {
		t.Fatal(err)
	}
	rctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := f.Recv(rctx, 1); err == nil {
		t.Fatal("dropped message was delivered")
	}
	if n := counter(t, col, "transport_drops_injected"); n != 1 {
		t.Errorf("transport_drops_injected = %d, want 1", n)
	}
}

func TestFaultyDuplicateDeliversTwice(t *testing.T) {
	col := obs.New()
	f := NewFaulty(NewDirect(2, 0), &fault.Plan{DupProb: 1}, col)
	defer f.Close()
	ctx := context.Background()
	if err := f.Send(ctx, Message{From: 0, To: 1, Phase: 2, Attempt: 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m, err := f.Recv(ctx, 1)
		if err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
		if m.Phase != 2 {
			t.Fatalf("copy %d: %+v", i, m)
		}
	}
	if n := counter(t, col, "transport_dups_injected"); n != 1 {
		t.Errorf("transport_dups_injected = %d, want 1", n)
	}
}

func TestFaultyDelayStillDelivers(t *testing.T) {
	col := obs.New()
	f := NewFaulty(NewDirect(2, 0), &fault.Plan{DelayProb: 1, DelayFor: time.Millisecond}, col)
	defer f.Close()
	ctx := context.Background()
	if err := f.Send(ctx, Message{From: 0, To: 1, Phase: 3}); err != nil {
		t.Fatal(err)
	}
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	m, err := f.Recv(rctx, 1)
	if err != nil {
		t.Fatalf("delayed message never arrived: %v", err)
	}
	if m.Phase != 3 {
		t.Fatalf("got %+v", m)
	}
	if n := counter(t, col, "transport_delays_injected"); n != 1 {
		t.Errorf("transport_delays_injected = %d, want 1", n)
	}
}

// TestFaultyCloseReapsInFlight: Close returns even with an hour-long
// delayed delivery pending, and the message is never delivered after.
func TestFaultyCloseReapsInFlight(t *testing.T) {
	inner := NewDirect(2, 0)
	f := NewFaulty(inner, &fault.Plan{DelayProb: 1, DelayFor: time.Hour}, nil)
	if err := f.Send(context.Background(), Message{From: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		f.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not reap the in-flight delayed delivery")
	}
	rctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := inner.Recv(rctx, 1); err == nil {
		t.Error("reaped delivery still arrived")
	}
}

// TestFaultyNilPlanPassthrough: a Faulty with a nil plan and nil
// collector behaves exactly like the inner transport.
func TestFaultyNilPlanPassthrough(t *testing.T) {
	f := NewFaulty(NewDirect(2, 0), nil, nil)
	defer f.Close()
	ctx := context.Background()
	if err := f.Send(ctx, Message{From: 1, To: 0, Phase: 9}); err != nil {
		t.Fatal(err)
	}
	m, err := f.Recv(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Phase != 9 {
		t.Fatalf("got %+v", m)
	}
}

func TestKindString(t *testing.T) {
	if Data.String() != "data" || Ack.String() != "ack" {
		t.Errorf("Kind strings: %q, %q", Data.String(), Ack.String())
	}
}
