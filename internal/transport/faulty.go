package transport

import (
	"context"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Faulty decorates a Transport with a deterministic fault.Plan: each
// Send consults the plan and is then delivered, dropped, delivered
// twice, or delivered late (Delay and Reorder both hold the message
// in a timer goroutine; Reorder's shorter latency lets the sender's
// next message overtake it). Recv passes through unchanged — faults
// are injected on the send side so a dropped message is never
// observable anywhere.
//
// Every injection is counted on the obs collector:
// transport_drops_injected, transport_delays_injected,
// transport_dups_injected, transport_reorders_injected.
type Faulty struct {
	inner Transport
	plan  *fault.Plan
	col   *obs.Collector

	ctx    context.Context // bounds in-flight delayed deliveries
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewFaulty wraps inner with the plan. col may be nil. Close must be
// called when the exchange is over to reap in-flight delayed
// deliveries.
func NewFaulty(inner Transport, plan *fault.Plan, col *obs.Collector) *Faulty {
	f := &Faulty{inner: inner, plan: plan, col: col}
	//lint:ignore ctxflow Close cancels this context; the wrapper owns its delayed-delivery lifecycle
	f.ctx, f.cancel = context.WithCancel(context.Background())
	return f
}

// Send implements Transport, applying the plan's action for this
// message attempt. Injections are counted on the obs collector and,
// when the context carries a span, recorded as instant events
// ("fault_drop", "fault_dup", ...) on the caller's trace timeline.
func (f *Faulty) Send(ctx context.Context, msg Message) error {
	action := f.plan.MessageAction(msg.From, msg.To, msg.Phase, int(msg.Kind), msg.Attempt)
	event := func(name string) {
		obs.SpanFromContext(ctx).Event(name,
			obs.Int("from", int64(msg.From)), obs.Int("to", int64(msg.To)),
			obs.Int("phase", int64(msg.Phase)), obs.Int("attempt", int64(msg.Attempt)))
	}
	switch action {
	case fault.Drop:
		f.col.Add("transport_drops_injected", 1)
		event("fault_drop")
		return nil
	case fault.Duplicate:
		f.col.Add("transport_dups_injected", 1)
		event("fault_dup")
		if err := f.inner.Send(ctx, msg); err != nil {
			return err
		}
		return f.inner.Send(ctx, msg)
	case fault.Delay, fault.Reorder:
		if action == fault.Delay {
			f.col.Add("transport_delays_injected", 1)
			event("fault_delay")
		} else {
			f.col.Add("transport_reorders_injected", 1)
			event("fault_reorder")
		}
		f.deliverLate(msg, f.plan.Latency(action))
		return nil
	}
	return f.inner.Send(ctx, msg)
}

// deliverLate hands msg to a timer goroutine that completes the send
// after d, unless Close has reaped the transport first.
func (f *Faulty) deliverLate(msg Message, d time.Duration) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			_ = f.inner.Send(f.ctx, msg) // best-effort: late send races Close
		case <-f.ctx.Done():
		}
	}()
}

// Recv implements Transport.
func (f *Faulty) Recv(ctx context.Context, rank int) (Message, error) {
	return f.inner.Recv(ctx, rank)
}

// Close cancels in-flight delayed deliveries and waits for their
// goroutines to exit. The transport must not be used afterwards.
func (f *Faulty) Close() {
	f.cancel()
	f.wg.Wait()
}
