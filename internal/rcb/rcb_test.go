package rcb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func randPoints(r *rand.Rand, n, dim int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i][0] = r.Float64() * 10
		pts[i][1] = r.Float64() * 10
		if dim == 3 {
			pts[i][2] = r.Float64() * 10
		}
	}
	return pts
}

func sizes(labels []int32, k int) []int {
	s := make([]int, k)
	for _, l := range labels {
		s[l]++
	}
	return s
}

func TestBuildBalance(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 3, 5, 8, 25} {
		pts := randPoints(r, 1000, 2)
		_, labels, err := Build(pts, 2, k)
		if err != nil {
			t.Fatal(err)
		}
		s := sizes(labels, k)
		lo, hi := 1000/k-k, 1000/k+k // proportional splitting: off by <= 1 per level
		for p, n := range s {
			if n < lo || n > hi {
				t.Errorf("k=%d: partition %d has %d points, want ~%d", k, p, n, 1000/k)
			}
		}
	}
}

// TestBuildDeterministicAcrossCutoff: subtree forking happens only
// above parallelBuildCutoff; for the same input the labels and cut
// structure must be identical whether every branch is forced parallel
// (cutoff 1) or strictly serial (cutoff out of reach), and stable
// across repeated parallel runs.
func TestBuildDeterministicAcrossCutoff(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 5000, 3)
	saved := parallelBuildCutoff
	defer func() { parallelBuildCutoff = saved }()

	for _, k := range []int{2, 5, 16} {
		parallelBuildCutoff = 1 // every split forks
		tPar, par1, err := Build(pts, 3, k)
		if err != nil {
			t.Fatal(err)
		}
		_, par2, err := Build(pts, 3, k)
		if err != nil {
			t.Fatal(err)
		}
		parallelBuildCutoff = len(pts) + 1 // strictly serial
		tSer, ser, err := Build(pts, 3, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ser {
			if par1[i] != par2[i] {
				t.Fatalf("k=%d point %d: parallel runs disagree (%d vs %d)", k, i, par1[i], par2[i])
			}
			if par1[i] != ser[i] {
				t.Fatalf("k=%d point %d: parallel %d != serial %d", k, i, par1[i], ser[i])
			}
		}
		if tPar.Depth() != tSer.Depth() {
			t.Fatalf("k=%d: tree depth %d (parallel) != %d (serial)", k, tPar.Depth(), tSer.Depth())
		}
		// The cut trees must agree node for node, not just label for
		// label: PartOf walks the tree, so compare classifications.
		for _, p := range pts[:200] {
			if tPar.PartOf(p) != tSer.PartOf(p) {
				t.Fatalf("k=%d: PartOf differs between parallel and serial trees", k)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	pts := []geom.Point{geom.P2(0, 0)}
	if _, _, err := Build(pts, 1, 2); err == nil {
		t.Error("accepted dim=1")
	}
	if _, _, err := Build(pts, 2, 0); err == nil {
		t.Error("accepted k=0")
	}
}

func TestPartOfAgreesWithLabels(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 500, 3)
	tree, labels, err := Build(pts, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if got := tree.PartOf(p); got != labels[i] {
			// Coincident coordinates on a cut plane can legitimately
			// differ only if two points share the cut coordinate; RCB
			// assigns by sorted order, PartOf by <=. Accept only that case.
			t.Errorf("point %d: PartOf = %d, label = %d", i, got, labels[i])
		}
	}
}

func TestRegionsPartitionRootBox(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 300, 2)
	tree, labels, err := Build(pts, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	root := geom.BoxOf(pts)
	regs := tree.Regions(root)
	if len(regs) != 6 {
		t.Fatalf("got %d regions", len(regs))
	}
	// Every point is inside its own region.
	for i, p := range pts {
		if !regs[labels[i]].Contains(p, 2) {
			t.Errorf("point %d not in region of its partition", i)
		}
	}
	// Region areas sum to the root area (disjoint cover).
	var sum float64
	for _, b := range regs {
		sum += b.Volume(2)
	}
	if root.Volume(2) == 0 {
		t.Fatal("degenerate root box")
	}
	if diff := sum - root.Volume(2); diff > 1e-9*root.Volume(2) || diff < -1e-9*root.Volume(2) {
		t.Errorf("region areas sum to %g, root is %g", sum, root.Volume(2))
	}
}

func TestUpdatePreservesBalance(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 800, 2)
	tree, _, err := Build(pts, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Move all points slightly and drop some (simulating erosion).
	moved := make([]geom.Point, 0, len(pts))
	for i, p := range pts {
		if i%17 == 0 {
			continue
		}
		moved = append(moved, p.Add(geom.P2(r.Float64()*0.1, r.Float64()*0.1)))
	}
	labels := tree.Update(moved)
	s := sizes(labels, 10)
	n := len(moved)
	for p, c := range s {
		if c < n/10-10 || c > n/10+10 {
			t.Errorf("after update partition %d has %d points, want ~%d", p, c, n/10)
		}
	}
}

func TestUpdateMovesFewPointsForSmallMotion(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 2000, 3)
	tree, labels, err := Build(pts, 3, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny jitter: only points adjacent to cut planes should migrate.
	jit := make([]geom.Point, len(pts))
	for i, p := range pts {
		jit[i] = p.Add(geom.P3(r.Float64()*0.01, r.Float64()*0.01, r.Float64()*0.01))
	}
	newLabels := tree.Update(jit)
	movedCount := 0
	for i := range labels {
		if labels[i] != newLabels[i] {
			movedCount++
		}
	}
	if movedCount > len(pts)/10 {
		t.Errorf("small motion moved %d/%d points between partitions", movedCount, len(pts))
	}
}

func TestSubdomainBoxes(t *testing.T) {
	pts := []geom.Point{geom.P2(0, 0), geom.P2(1, 1), geom.P2(5, 5), geom.P2(6, 6)}
	labels := []int32{0, 0, 1, 1}
	boxes := SubdomainBoxes(pts, labels, 3)
	if boxes[0].Min != geom.P2(0, 0) || boxes[0].Max != geom.P2(1, 1) {
		t.Errorf("box 0 = %v", boxes[0])
	}
	if boxes[1].Min != geom.P2(5, 5) || boxes[1].Max != geom.P2(6, 6) {
		t.Errorf("box 1 = %v", boxes[1])
	}
	if !boxes[2].IsEmpty(2) {
		t.Error("empty partition box not empty")
	}
}

func TestDegenerateInputs(t *testing.T) {
	// k > n: some partitions empty, but no panic and labels valid.
	pts := []geom.Point{geom.P2(0, 0), geom.P2(1, 0)}
	tree, labels, err := Build(pts, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if l < 0 || l >= 5 {
			t.Fatalf("label %d out of range", l)
		}
	}
	if tree.Depth() < 1 {
		t.Error("depth < 1")
	}
	// All points coincident.
	same := []geom.Point{geom.P2(1, 1), geom.P2(1, 1), geom.P2(1, 1), geom.P2(1, 1)}
	_, labels2, err := Build(same, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := sizes(labels2, 2)
	if s[0] != 2 || s[1] != 2 {
		t.Errorf("coincident points split %v, want [2 2]", s)
	}
	// Empty input.
	_, labels3, err := Build(nil, 2, 4)
	if err != nil || len(labels3) != 0 {
		t.Errorf("empty input: %v, %v", labels3, err)
	}
}

func TestDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := randPoints(r, 400, 2)
	_, l1, _ := Build(pts, 2, 9)
	_, l2, _ := Build(pts, 2, 9)
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("Build not deterministic")
		}
	}
}

// Property: every partition's points lie inside its Regions() box, and
// partition sizes deviate from n/k by at most log2(k)+1.
func TestQuickBuildInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(500)
		k := 1 + r.Intn(16)
		dim := 2 + r.Intn(2)
		pts := randPoints(r, n, dim)
		tree, labels, err := Build(pts, dim, k)
		if err != nil {
			return false
		}
		regs := tree.Regions(geom.BoxOf(pts))
		for i, p := range pts {
			if labels[i] < 0 || int(labels[i]) >= k {
				return false
			}
			if !regs[labels[i]].Contains(p, dim) {
				return false
			}
		}
		s := sizes(labels, k)
		for _, c := range s {
			if c < n/k-5-k || c > n/k+5+k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUpdateWithEmptyAndShrunkenSets(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 300, 2)
	tree, _, err := Build(pts, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Update with an empty set: all partitions empty, no panic.
	labels := tree.Update(nil)
	if len(labels) != 0 {
		t.Fatalf("labels = %v", labels)
	}
	// Update with fewer points than partitions.
	few := pts[:3]
	labels = tree.Update(few)
	for _, l := range labels {
		if l < 0 || l >= 6 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestRegionsDegenerateK1(t *testing.T) {
	pts := []geom.Point{geom.P2(1, 1), geom.P2(2, 2)}
	tree, labels, err := Build(pts, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatal("k=1 wrong label")
		}
	}
	regs := tree.Regions(geom.BoxOf(pts))
	if len(regs) != 1 {
		t.Fatalf("%d regions", len(regs))
	}
}
