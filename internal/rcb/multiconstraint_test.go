package rcb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// mcScene builds points where the second weight is concentrated in a
// horizontal band (like contact nodes on a plate face).
func mcScene(r *rand.Rand, n int) ([]geom.Point, []int32) {
	pts := make([]geom.Point, n)
	wgts := make([]int32, 2*n)
	for i := range pts {
		pts[i] = geom.P2(r.Float64()*10, r.Float64()*10)
		wgts[2*i] = 1
		if pts[i][1] < 2 {
			wgts[2*i+1] = 1
		}
	}
	return pts, wgts
}

func TestBuildMCBalancesBothConstraints(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts, wgts := mcScene(r, 2000)
	for _, k := range []int{4, 8, 16} {
		_, labels, err := BuildMC(pts, wgts, 2, 2, k)
		if err != nil {
			t.Fatal(err)
		}
		var tot0, tot1 int64
		p0 := make([]int64, k)
		p1 := make([]int64, k)
		for i := range pts {
			p0[labels[i]] += int64(wgts[2*i])
			p1[labels[i]] += int64(wgts[2*i+1])
			tot0 += int64(wgts[2*i])
			tot1 += int64(wgts[2*i+1])
		}
		// A one-shot geometric bisection has no refinement pass, so
		// deviations compound with depth; anything far from the ~7x
		// blowup of balance-blind dimension choice is acceptable.
		for p := 0; p < k; p++ {
			if f := float64(p0[p]) * float64(k) / float64(tot0); f > 1.4 {
				t.Errorf("k=%d: constraint 0 load %f at partition %d", k, f, p)
			}
			if f := float64(p1[p]) * float64(k) / float64(tot1); f > 1.5 {
				t.Errorf("k=%d: constraint 1 load %f at partition %d", k, f, p)
			}
		}
	}
}

func TestBuildMCValidation(t *testing.T) {
	pts := []geom.Point{geom.P2(0, 0)}
	if _, _, err := BuildMC(pts, []int32{1}, 1, 5, 2); err == nil {
		t.Error("accepted dim=5")
	}
	if _, _, err := BuildMC(pts, []int32{1}, 1, 2, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, _, err := BuildMC(pts, []int32{1, 2, 3}, 2, 2, 2); err == nil {
		t.Error("accepted weight length mismatch")
	}
	if _, _, err := BuildMC(pts, nil, 0, 2, 1); err == nil {
		t.Error("accepted ncon=0")
	}
}

func TestBuildMCMatchesPlainRCBForUnitWeights(t *testing.T) {
	// With a single unit weight, BuildMC is plain RCB up to the choice
	// of split index (count median) — partition sizes must match.
	r := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 500)
	wgts := make([]int32, 500)
	for i := range pts {
		pts[i] = geom.P2(r.Float64()*10, r.Float64()*10)
		wgts[i] = 1
	}
	_, l1, err := Build(pts, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, l2, err := BuildMC(pts, wgts, 1, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := sizes(l1, 8), sizes(l2, 8)
	for p := range s1 {
		if s1[p] != s2[p] {
			t.Fatalf("sizes differ: %v vs %v", s1, s2)
		}
	}
}

func TestBuildMCRegionsAreBoxes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts, wgts := mcScene(r, 600)
	tree, labels, err := BuildMC(pts, wgts, 2, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	regs := tree.Regions(geom.BoxOf(pts))
	for i, p := range pts {
		if !regs[labels[i]].Contains(p, 2) {
			t.Fatalf("point %d outside its region box", i)
		}
	}
}

// Property: labels valid, all points covered, tree PartOf agrees.
func TestQuickBuildMCInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(300)
		k := 1 + r.Intn(10)
		ncon := 1 + r.Intn(3)
		pts := make([]geom.Point, n)
		wgts := make([]int32, n*ncon)
		for i := range pts {
			pts[i] = geom.P3(r.Float64()*10, r.Float64()*10, r.Float64()*10)
			for j := 0; j < ncon; j++ {
				wgts[i*ncon+j] = int32(r.Intn(3))
			}
		}
		tree, labels, err := BuildMC(pts, wgts, ncon, 3, k)
		if err != nil {
			return false
		}
		for i, p := range pts {
			if labels[i] < 0 || int(labels[i]) >= k {
				return false
			}
			if tree.PartOf(p) != labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
