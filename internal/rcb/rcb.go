// Package rcb implements recursive coordinate bisection of point sets,
// the geometric partitioner that the ML+RCB baseline (Plimpton et al.;
// Brown et al.) uses for the contact-search phase. A Tree retains the
// cut structure so successive time steps can be repartitioned
// *incrementally*: the cut planes shift to rebalance the moved points
// while the recursion structure (cut dimensions and subtree processor
// counts) stays fixed, which keeps the number of points that migrate
// between partitions small — exactly the repartitioning strategy the
// paper's UpdComm metric measures.
package rcb

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/pool"
)

// node is one bisection in the cut tree.
type node struct {
	dim         int     // cut dimension
	cut         float64 // points with coord <= cut go left
	kLeft       int     // partitions assigned to the left subtree
	left, right *node
	part        int32 // leaf: partition id (when left == nil)
}

// Tree is a k-way RCB decomposition of a point set. Build creates it;
// Update re-fits the cuts to a new point set of the same k.
type Tree struct {
	Dim  int
	K    int
	root *node
}

// parallelBuildCutoff is the point-subset size above which the two
// subtrees of a cut are built as concurrent pool tasks (the same
// fork-with-cutoff pattern as the graph partitioner's recursive
// bisection; both share pool.Group.Fork). Subtrees sort and label
// disjoint index ranges, so the tree and labels are identical to the
// serial recursion. A variable so tests can pin either path.
var parallelBuildCutoff = 1 << 14

// Build computes a k-way recursive coordinate bisection of pts in dim
// dimensions and returns the tree together with the partition label of
// every point. Partition sizes differ by at most 1 after every level
// of proportional splitting. k must be >= 1; pts may be empty.
func Build(pts []geom.Point, dim, k int) (*Tree, []int32, error) {
	if dim != 2 && dim != 3 {
		return nil, nil, fmt.Errorf("rcb: dim = %d", dim)
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("rcb: k = %d", k)
	}
	t := &Tree{Dim: dim, K: k}
	labels := make([]int32, len(pts))
	idx := make([]int32, len(pts))
	for i := range idx {
		idx[i] = int32(i)
	}
	if k > 1 && len(pts) >= parallelBuildCutoff {
		//lint:ignore ctxflow fork-join group created and joined in this function; no caller cancellation crosses it
		grp := pool.NewGroup(context.Background(), 0)
		t.root = build(grp, pts, idx, labels, dim, 0, k)
		if err := grp.Wait(); err != nil {
			return nil, nil, err
		}
	} else {
		t.root = build(nil, pts, idx, labels, dim, 0, k)
	}
	return t, labels, nil
}

// build recursively bisects idx (point indices) into k partitions whose
// ids start at base, forking the left subtree onto grp when the subset
// is large enough (grp == nil means strictly serial). The returned
// node's children are fully populated only after grp.Wait.
func build(grp *pool.Group, pts []geom.Point, idx []int32, labels []int32, dim, base, k int) *node {
	if k == 1 {
		for _, i := range idx {
			labels[i] = int32(base)
		}
		return &node{part: int32(base)}
	}
	kL := (k + 1) / 2
	nL := len(idx) * kL / k

	d := splitDim(pts, idx, dim)
	sortAlong(pts, idx, d)

	cut := cutBetween(pts, idx, d, nL)
	n := &node{dim: d, cut: cut, kLeft: kL}
	left := idx[:nL]
	if err := grp.Fork(len(idx), parallelBuildCutoff, func(ctx context.Context) error {
		n.left = build(grp, pts, left, labels, dim, base, kL)
		return nil
	}); err != nil {
		// The group is cancelled: Wait will surface the cause and the
		// partial tree is discarded, so stop recursing here.
		return n
	}
	n.right = build(grp, pts, idx[nL:], labels, dim, base+kL, k-kL)
	return n
}

// splitDim picks the dimension with the largest coordinate spread of
// the current subset (the classic RCB heuristic).
func splitDim(pts []geom.Point, idx []int32, dim int) int {
	b := geom.Empty()
	for _, i := range idx {
		b = b.Extend(pts[i])
	}
	if len(idx) == 0 {
		return 0
	}
	return b.LongestDim(dim)
}

// sortAlong orders idx by coordinate d, breaking ties by point index so
// results are deterministic.
func sortAlong(pts []geom.Point, idx []int32, d int) {
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]][d], pts[idx[b]][d]
		if pa != pb {
			return pa < pb
		}
		return idx[a] < idx[b]
	})
}

// cutBetween returns the cut coordinate separating the first nL sorted
// points from the rest: the midpoint between the bracketing
// coordinates (or the shared coordinate when they tie).
func cutBetween(pts []geom.Point, idx []int32, d, nL int) float64 {
	switch {
	case len(idx) == 0:
		return 0
	case nL <= 0:
		return pts[idx[0]][d]
	case nL >= len(idx):
		return pts[idx[len(idx)-1]][d]
	}
	lo, hi := pts[idx[nL-1]][d], pts[idx[nL]][d]
	return (lo + hi) / 2
}

// Update re-fits the tree's cut positions to a new point set (same k,
// possibly different size): each node keeps its cut dimension and
// processor split but re-selects the median so the proportional counts
// stay exact. Returns the new labels.
func (t *Tree) Update(pts []geom.Point) []int32 {
	labels := make([]int32, len(pts))
	idx := make([]int32, len(pts))
	for i := range idx {
		idx[i] = int32(i)
	}
	update(t.root, pts, idx, labels, t.K)
	return labels
}

func update(n *node, pts []geom.Point, idx []int32, labels []int32, k int) {
	if n.left == nil {
		for _, i := range idx {
			labels[i] = n.part
		}
		return
	}
	nL := len(idx) * n.kLeft / k
	sortAlong(pts, idx, n.dim)
	n.cut = cutBetween(pts, idx, n.dim, nL)
	update(n.left, pts, idx[:nL], labels, n.kLeft)
	update(n.right, pts, idx[nL:], labels, k-n.kLeft)
}

// PartOf locates the partition whose region contains p (ties on a cut
// plane go left, matching the <= convention used when building).
func (t *Tree) PartOf(p geom.Point) int32 {
	n := t.root
	for n.left != nil {
		if p[n.dim] <= n.cut {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.part
}

// Depth returns the height of the cut tree (1 for k=1).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	if n.left == nil {
		return 1
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Regions returns the axis-aligned region of every partition implied by
// the cut tree, clipped to the given root box. Regions partition the
// root box (they are disjoint up to shared faces).
func (t *Tree) Regions(root geom.AABB) []geom.AABB {
	out := make([]geom.AABB, t.K)
	var walk func(n *node, b geom.AABB)
	walk = func(n *node, b geom.AABB) {
		if n.left == nil {
			out[n.part] = b
			return
		}
		lb, rb := b, b
		lb.Max[n.dim] = n.cut
		rb.Min[n.dim] = n.cut
		walk(n.left, lb)
		walk(n.right, rb)
	}
	walk(t.root, root)
	return out
}

// SubdomainBoxes returns the tight bounding box of each partition's
// points (Empty() for partitions with no points) — the geometric
// descriptors the ML+RCB global search broadcasts.
func SubdomainBoxes(pts []geom.Point, labels []int32, k int) []geom.AABB {
	boxes := make([]geom.AABB, k)
	for i := range boxes {
		boxes[i] = geom.Empty()
	}
	for i, p := range pts {
		boxes[labels[i]] = boxes[labels[i]].Extend(p)
	}
	return boxes
}
