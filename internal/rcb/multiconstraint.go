package rcb

import (
	"fmt"

	"repro/internal/geom"
)

// BuildMC computes a k-way *multi-constraint* recursive coordinate
// bisection: points carry a vector of ncon weights (flat, stride
// ncon), and every cut position is chosen to simultaneously balance
// all weight components instead of the point count. This is a concrete
// instance of the "geometry-aware multi-constraint partitioning
// algorithm" the paper's conclusions call for: the subdomains are
// boxes by construction, so the decision-tree descriptors are as small
// as they can possibly be, at the cost of a worse edge cut than the
// multilevel graph partitioner.
//
// The split index at each node minimizes the worst relative deviation
// from the proportional target across constraints.
func BuildMC(pts []geom.Point, wgts []int32, ncon, dim, k int) (*Tree, []int32, error) {
	if dim != 2 && dim != 3 {
		return nil, nil, fmt.Errorf("rcb: dim = %d", dim)
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("rcb: k = %d", k)
	}
	if ncon < 1 {
		return nil, nil, fmt.Errorf("rcb: ncon = %d", ncon)
	}
	if len(wgts) != len(pts)*ncon {
		return nil, nil, fmt.Errorf("rcb: %d weights for %d points with ncon=%d", len(wgts), len(pts), ncon)
	}
	t := &Tree{Dim: dim, K: k}
	labels := make([]int32, len(pts))
	idx := make([]int32, len(pts))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.root = buildMC(pts, wgts, ncon, idx, labels, dim, 0, k)
	return t, labels, nil
}

func buildMC(pts []geom.Point, wgts []int32, ncon int, idx []int32, labels []int32, dim, base, k int) *node {
	if k == 1 {
		for _, i := range idx {
			labels[i] = int32(base)
		}
		return &node{part: int32(base)}
	}
	kL := (k + 1) / 2
	frac := float64(kL) / float64(k)

	// Unlike plain RCB, the cut dimension is chosen by achievable
	// balance, not extent: a dimension along which one constraint is
	// stratified (e.g. contact nodes in a thin band) cannot balance
	// both constraints, while another dimension often can.
	bestDim, nL, bestDev := 0, len(idx)/2, 1e300
	for d := 0; d < dim; d++ {
		sortAlong(pts, idx, d)
		i, dev := splitIndexMC(pts, wgts, ncon, idx, frac)
		if dev < bestDev {
			bestDim, nL, bestDev = d, i, dev
		}
	}
	d := bestDim
	if d != dim-1 {
		sortAlong(pts, idx, d) // restore the chosen dimension's order
	}

	cut := cutBetween(pts, idx, d, nL)
	n := &node{dim: d, cut: cut, kLeft: kL}
	n.left = buildMC(pts, wgts, ncon, idx[:nL], labels, dim, base, kL)
	n.right = buildMC(pts, wgts, ncon, idx[nL:], labels, dim, base+kL, k-kL)
	return n
}

// splitIndexMC returns the prefix length whose per-constraint weight
// sums deviate least (in the worst constraint, relatively) from
// frac * total, and that deviation. Constraints with zero total are
// ignored.
func splitIndexMC(pts []geom.Point, wgts []int32, ncon int, idx []int32, frac float64) (int, float64) {
	n := len(idx)
	if n <= 1 {
		return n, 0
	}
	total := make([]float64, ncon)
	for _, i := range idx {
		for j := 0; j < ncon; j++ {
			total[j] += float64(wgts[int(i)*ncon+j])
		}
	}
	target := make([]float64, ncon)
	for j := range target {
		target[j] = frac * total[j]
	}
	prefix := make([]float64, ncon)
	best, bestDev := 1, 1e300
	for i := 1; i < n; i++ {
		p := idx[i-1]
		for j := 0; j < ncon; j++ {
			prefix[j] += float64(wgts[int(p)*ncon+j])
		}
		dev := 0.0
		for j := 0; j < ncon; j++ {
			if total[j] == 0 {
				continue
			}
			d := prefix[j] - target[j]
			if d < 0 {
				d = -d
			}
			if rd := d / total[j]; rd > dev {
				dev = rd
			}
		}
		if dev < bestDev {
			best, bestDev = i, dev
		}
	}
	return best, bestDev
}
