package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// METIS graph-file format support (the format of the METIS 4.0 manual
// the paper builds on), so graphs can be exchanged with
// METIS/ParMETIS/Chaco tooling:
//
//	<nv> <ne> [<fmt> [<ncon>]]
//	v1-line: [w1 w2 ... wncon] n1 [e1] n2 [e2] ...
//
// fmt is a 3-digit string: 1xx = vertex sizes (unsupported), x1x =
// vertex weights, xx1 = edge weights. Vertex ids are 1-based. Comment
// lines start with '%'.

// WriteMetis encodes g in METIS format, always emitting vertex and
// edge weights (fmt "011").
func (g *Graph) WriteMetis(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d 011 %d\n", g.NV(), g.NE(), g.NCon)
	for v := 0; v < g.NV(); v++ {
		first := true
		for _, wj := range g.Weights(v) {
			if !first {
				bw.WriteByte(' ')
			}
			bw.WriteString(strconv.Itoa(int(wj)))
			first = false
		}
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for i, u := range adj {
			fmt.Fprintf(bw, " %d %d", u+1, wgt[i])
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadMetis decodes a METIS graph file.
func ReadMetis(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	// next returns the fields of the next non-comment line. Blank
	// lines are significant in the body (an isolated vertex has an
	// empty adjacency line), so only the header read skips them.
	next := func(skipBlank bool) ([]string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if strings.HasPrefix(line, "%") || (skipBlank && line == "") {
				continue
			}
			return strings.Fields(line), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}

	header, err := next(true)
	if err != nil {
		return nil, fmt.Errorf("graph: metis: missing header: %w", err)
	}
	if len(header) < 2 || len(header) > 4 {
		return nil, fmt.Errorf("graph: metis: malformed header %v", header)
	}
	nv, err1 := strconv.Atoi(header[0])
	ne, err2 := strconv.Atoi(header[1])
	if err1 != nil || err2 != nil || nv < 0 || ne < 0 {
		return nil, fmt.Errorf("graph: metis: bad counts in header %v", header)
	}
	hasVWgt, hasEWgt := false, false
	ncon := 1
	if len(header) >= 3 {
		f := header[2]
		if len(f) != 3 || strings.Trim(f, "01") != "" {
			return nil, fmt.Errorf("graph: metis: bad fmt field %q", f)
		}
		if f[0] == '1' {
			return nil, fmt.Errorf("graph: metis: vertex sizes not supported")
		}
		hasVWgt = f[1] == '1'
		hasEWgt = f[2] == '1'
	}
	if len(header) == 4 {
		ncon, err = strconv.Atoi(header[3])
		if err != nil || ncon < 1 {
			return nil, fmt.Errorf("graph: metis: bad ncon %q", header[3])
		}
	}
	if !hasVWgt {
		ncon = 1
	}

	b := NewBuilder(nv, ncon)
	type ekey struct{ u, v int32 }
	seen := make(map[ekey]struct{}, ne)
	for v := 0; v < nv; v++ {
		fields, err := next(false)
		if err != nil {
			return nil, fmt.Errorf("graph: metis: vertex %d: %w", v+1, err)
		}
		pos := 0
		if hasVWgt {
			if len(fields) < ncon {
				return nil, fmt.Errorf("graph: metis: vertex %d: missing weights", v+1)
			}
			for j := 0; j < ncon; j++ {
				wj, err := strconv.Atoi(fields[j])
				if err != nil || wj < 0 {
					return nil, fmt.Errorf("graph: metis: vertex %d: bad weight %q", v+1, fields[j])
				}
				b.SetWeight(v, j, int32(wj))
			}
			pos = ncon
		} else {
			b.SetWeight(v, 0, 1)
		}
		stride := 1
		if hasEWgt {
			stride = 2
		}
		if (len(fields)-pos)%stride != 0 {
			return nil, fmt.Errorf("graph: metis: vertex %d: dangling adjacency field", v+1)
		}
		for i := pos; i < len(fields); i += stride {
			u, err := strconv.Atoi(fields[i])
			if err != nil || u < 1 || u > nv {
				return nil, fmt.Errorf("graph: metis: vertex %d: bad neighbor %q", v+1, fields[i])
			}
			ew := int32(1)
			if hasEWgt {
				e, err := strconv.Atoi(fields[i+1])
				if err != nil || e < 1 {
					return nil, fmt.Errorf("graph: metis: vertex %d: bad edge weight %q", v+1, fields[i+1])
				}
				ew = int32(e)
			}
			// Each undirected edge normally appears in both endpoint
			// lines; deduplicate so weights are not doubled, while
			// still accepting files that list an edge only once.
			a, c := int32(v), int32(u-1)
			if a == c {
				continue
			}
			if a > c {
				a, c = c, a
			}
			if _, dup := seen[ekey{a, c}]; dup {
				continue
			}
			seen[ekey{a, c}] = struct{}{}
			b.AddEdge(int(a), int(c), ew)
		}
	}
	g := b.Build()
	if g.NE() != ne {
		return nil, fmt.Errorf("graph: metis: header says %d edges, file has %d", ne, g.NE())
	}
	return g, nil
}
