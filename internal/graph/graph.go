// Package graph implements the weighted undirected graph substrate used
// by the partitioner: a compressed-sparse-row (CSR) adjacency structure
// with a vector of integer weights per vertex (the multi-constraint
// formulation of Karypis & Kumar) and an integer weight per edge.
//
// Graphs are immutable once built; construction goes through Builder,
// which deduplicates parallel edges (summing their weights) and drops
// self-loops. The package also provides the quotient ("collapse")
// operation used to build the coarse region graph G' of the paper, and
// the coarsening contraction used by the multilevel partitioner.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected graph in CSR form.
//
// The adjacency of vertex v is Adj[Xadj[v]:Xadj[v+1]] with parallel edge
// weights in AdjWgt. Every undirected edge {u,v} is stored twice, once
// in each endpoint's list, with equal weights.
//
// VWgt holds NCon weights per vertex, laid out contiguously:
// VWgt[v*NCon : (v+1)*NCon].
type Graph struct {
	NCon   int     // number of vertex weight components (constraints)
	Xadj   []int32 // length NV()+1
	Adj    []int32 // concatenated adjacency lists
	AdjWgt []int32 // parallel to Adj
	VWgt   []int32 // NV()*NCon vertex weights
}

// NV returns the number of vertices.
func (g *Graph) NV() int { return len(g.Xadj) - 1 }

// NE returns the number of undirected edges.
func (g *Graph) NE() int { return len(g.Adj) / 2 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return int(g.Xadj[v+1] - g.Xadj[v]) }

// Neighbors returns the adjacency list of v (do not modify).
func (g *Graph) Neighbors(v int) []int32 {
	return g.Adj[g.Xadj[v]:g.Xadj[v+1]]
}

// EdgeWeights returns the edge weights parallel to Neighbors(v)
// (do not modify).
func (g *Graph) EdgeWeights(v int) []int32 {
	return g.AdjWgt[g.Xadj[v]:g.Xadj[v+1]]
}

// Weight returns the j-th weight component of vertex v.
func (g *Graph) Weight(v, j int) int32 { return g.VWgt[v*g.NCon+j] }

// Weights returns the weight vector of v (do not modify).
func (g *Graph) Weights(v int) []int32 {
	return g.VWgt[v*g.NCon : (v+1)*g.NCon]
}

// TotalWeights returns the sum of all vertex weight vectors.
func (g *Graph) TotalWeights() []int64 {
	tot := make([]int64, g.NCon)
	for v := 0; v < g.NV(); v++ {
		for j := 0; j < g.NCon; j++ {
			tot[j] += int64(g.Weight(v, j))
		}
	}
	return tot
}

// TotalEdgeWeight returns the sum of undirected edge weights.
func (g *Graph) TotalEdgeWeight() int64 {
	var s int64
	for _, w := range g.AdjWgt {
		s += int64(w)
	}
	return s / 2
}

// Validate checks the CSR invariants: monotone Xadj, in-range adjacency,
// no self loops, and symmetric adjacency with matching weights. It is
// intended for tests and for validating externally constructed graphs.
func (g *Graph) Validate() error {
	n := g.NV()
	if g.NCon < 1 {
		return fmt.Errorf("graph: NCon = %d, want >= 1", g.NCon)
	}
	if len(g.VWgt) != n*g.NCon {
		return fmt.Errorf("graph: len(VWgt) = %d, want %d", len(g.VWgt), n*g.NCon)
	}
	if len(g.Adj) != len(g.AdjWgt) {
		return fmt.Errorf("graph: len(Adj) = %d != len(AdjWgt) = %d", len(g.Adj), len(g.AdjWgt))
	}
	if g.Xadj[0] != 0 || int(g.Xadj[n]) != len(g.Adj) {
		return fmt.Errorf("graph: Xadj bounds [%d,%d], want [0,%d]", g.Xadj[0], g.Xadj[n], len(g.Adj))
	}
	type key struct{ u, v int32 }
	seen := make(map[key]int32, len(g.Adj))
	for v := 0; v < n; v++ {
		if g.Xadj[v] > g.Xadj[v+1] {
			return fmt.Errorf("graph: Xadj not monotone at %d", v)
		}
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adj[i]
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if int(u) == v {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if w := g.AdjWgt[i]; w <= 0 {
				return fmt.Errorf("graph: edge {%d,%d} has non-positive weight %d", v, u, w)
			}
			k := key{int32(v), u}
			if _, dup := seen[k]; dup {
				return fmt.Errorf("graph: duplicate edge {%d,%d}", v, u)
			}
			seen[k] = g.AdjWgt[i]
		}
	}
	for k, w := range seen {
		if w2, ok := seen[key{k.v, k.u}]; !ok {
			return fmt.Errorf("graph: edge {%d,%d} missing reverse", k.u, k.v)
		} else if w2 != w {
			return fmt.Errorf("graph: edge {%d,%d} weight %d != reverse %d", k.u, k.v, w, w2)
		}
	}
	return nil
}

// Builder accumulates edges and produces a Graph. Edges may be added in
// any order and in either direction; parallel edges have their weights
// summed; self-loops are dropped.
type Builder struct {
	nv   int
	ncon int
	vwgt []int32
	us   []int32
	vs   []int32
	ws   []int32
}

// NewBuilder creates a builder for a graph with nv vertices and ncon
// weight components per vertex. All vertex weights start at zero.
func NewBuilder(nv, ncon int) *Builder {
	if nv < 0 || ncon < 1 {
		panic(fmt.Sprintf("graph: NewBuilder(%d, %d)", nv, ncon))
	}
	return &Builder{nv: nv, ncon: ncon, vwgt: make([]int32, nv*ncon)}
}

// SetWeight sets the j-th weight component of vertex v.
func (b *Builder) SetWeight(v, j int, w int32) { b.vwgt[v*b.ncon+j] = w }

// SetWeights sets the whole weight vector of vertex v.
func (b *Builder) SetWeights(v int, w []int32) {
	copy(b.vwgt[v*b.ncon:(v+1)*b.ncon], w)
}

// AddEdge records an undirected edge {u,v} with weight w. Edges with
// u == v are ignored; calling AddEdge(u, v, a) and AddEdge(v, u, b)
// yields a single edge of weight a+b.
func (b *Builder) AddEdge(u, v int, w int32) {
	if u == v {
		return
	}
	if u < 0 || u >= b.nv || v < 0 || v >= b.nv {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0,%d)", u, v, b.nv))
	}
	if u > v {
		u, v = v, u
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	b.ws = append(b.ws, w)
}

// Build produces the immutable Graph. The builder can be reused only by
// discarding it; Build is not idempotent with further AddEdge calls.
func (b *Builder) Build() *Graph {
	// Sort the (u,v) pairs (packed into one key per edge) to
	// deduplicate parallel edges, summing their weights.
	m := len(b.us)
	type packed struct {
		key uint64
		w   int32
	}
	recs := make([]packed, m)
	for i := range recs {
		recs[i] = packed{key: uint64(b.us[i])<<32 | uint64(uint32(b.vs[i])), w: b.ws[i]}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })

	type edge struct {
		u, v, w int32
	}
	uniq := make([]edge, 0, m)
	for _, r := range recs {
		u, v := int32(r.key>>32), int32(uint32(r.key))
		if n := len(uniq); n > 0 && uniq[n-1].u == u && uniq[n-1].v == v {
			uniq[n-1].w += r.w
			continue
		}
		uniq = append(uniq, edge{u, v, r.w})
	}

	g := &Graph{
		NCon: b.ncon,
		Xadj: make([]int32, b.nv+1),
		VWgt: append([]int32(nil), b.vwgt...),
	}
	deg := make([]int32, b.nv)
	for _, e := range uniq {
		deg[e.u]++
		deg[e.v]++
	}
	for v := 0; v < b.nv; v++ {
		g.Xadj[v+1] = g.Xadj[v] + deg[v]
	}
	g.Adj = make([]int32, 2*len(uniq))
	g.AdjWgt = make([]int32, 2*len(uniq))
	pos := make([]int32, b.nv)
	copy(pos, g.Xadj[:b.nv])
	for _, e := range uniq {
		g.Adj[pos[e.u]], g.AdjWgt[pos[e.u]] = e.v, e.w
		pos[e.u]++
		g.Adj[pos[e.v]], g.AdjWgt[pos[e.v]] = e.u, e.w
		pos[e.v]++
	}
	return g
}

// Induce returns the subgraph induced by the vertex set vs (which must
// contain no duplicates): vertex i of the subgraph corresponds to
// vs[i], keeping its weight vector, with edges retained only when both
// endpoints lie in vs.
func (g *Graph) Induce(vs []int32) *Graph {
	newIdx := make(map[int32]int32, len(vs))
	for i, v := range vs {
		if _, dup := newIdx[v]; dup {
			panic(fmt.Sprintf("graph: Induce: duplicate vertex %d", v))
		}
		newIdx[v] = int32(i)
	}
	b := NewBuilder(len(vs), g.NCon)
	for i, v := range vs {
		b.SetWeights(i, g.Weights(int(v)))
		adj := g.Neighbors(int(v))
		wgt := g.EdgeWeights(int(v))
		for j, u := range adj {
			if u > v { // each undirected edge once
				if ui, ok := newIdx[u]; ok {
					b.AddEdge(i, int(ui), wgt[j])
				}
			}
		}
	}
	return b.Build()
}

// Components returns the connected component id of every vertex and the
// number of components. Ids are assigned in order of first discovery.
func (g *Graph) Components() (comp []int32, n int) {
	comp = make([]int32, g.NV())
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	for v := 0; v < g.NV(); v++ {
		if comp[v] >= 0 {
			continue
		}
		comp[v] = int32(n)
		stack = append(stack[:0], int32(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(int(u)) {
				if comp[w] < 0 {
					comp[w] = int32(n)
					stack = append(stack, w)
				}
			}
		}
		n++
	}
	return comp, n
}

// Collapse builds the quotient graph of g under the vertex labeling
// label (values in [0, ngroups)): one coarse vertex per group, weight
// vectors summed componentwise, and an edge between two groups with
// weight equal to the total weight of original edges between them.
// Groups with no vertices become isolated zero-weight vertices.
//
// It returns the quotient graph. This is both the multilevel
// contraction step (label = matching map) and the G' construction of
// Section 4.2 (label = decision-tree leaf ids).
func (g *Graph) Collapse(label []int32, ngroups int) *Graph {
	if len(label) != g.NV() {
		panic(fmt.Sprintf("graph: Collapse label length %d != NV %d", len(label), g.NV()))
	}
	b := NewBuilder(ngroups, g.NCon)
	for v := 0; v < g.NV(); v++ {
		lv := label[v]
		if lv < 0 || int(lv) >= ngroups {
			panic(fmt.Sprintf("graph: Collapse label[%d] = %d out of range [0,%d)", v, lv, ngroups))
		}
		for j := 0; j < g.NCon; j++ {
			b.vwgt[int(lv)*g.NCon+j] += g.Weight(v, j)
		}
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for i, u := range adj {
			if int(u) > v { // each undirected edge once
				if lu := label[u]; lu != lv {
					b.AddEdge(int(lv), int(lu), wgt[i])
				}
			}
		}
	}
	return b.Build()
}
