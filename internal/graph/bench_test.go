package graph

import (
	"math/rand"
	"testing"
)

// benchGraph builds a 3D-lattice-like random graph of n vertices.
func benchGraph(n, ncon int) *Graph {
	r := rand.New(rand.NewSource(1))
	b := NewBuilder(n, ncon)
	for v := 0; v < n; v++ {
		for j := 0; j < ncon; j++ {
			b.SetWeight(v, j, int32(1+r.Intn(3)))
		}
	}
	for v := 0; v < n; v++ {
		for d := 0; d < 6; d++ {
			u := r.Intn(n)
			if u != v {
				b.AddEdge(v, u, 1)
			}
		}
	}
	return b.Build()
}

func BenchmarkBuild50k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchGraph(50000, 2)
	}
}

func BenchmarkCollapse(b *testing.B) {
	g := benchGraph(50000, 2)
	r := rand.New(rand.NewSource(2))
	labels := make([]int32, g.NV())
	for v := range labels {
		labels[v] = int32(r.Intn(1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Collapse(labels, 1000)
	}
}

func BenchmarkInduceHalf(b *testing.B) {
	g := benchGraph(50000, 2)
	vs := make([]int32, 0, g.NV()/2)
	for v := 0; v < g.NV(); v += 2 {
		vs = append(vs, int32(v))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Induce(vs)
	}
}

func BenchmarkComponents(b *testing.B) {
	g := benchGraph(50000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Components()
	}
}
