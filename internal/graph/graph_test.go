package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// path builds the path graph 0-1-2-...-n-1 with unit weights.
func path(n int) *Graph {
	b := NewBuilder(n, 1)
	for v := 0; v < n; v++ {
		b.SetWeight(v, 0, 1)
	}
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1, 1)
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := path(4)
	if g.NV() != 4 || g.NE() != 3 {
		t.Fatalf("NV=%d NE=%d, want 4, 3", g.NV(), g.NE())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Errorf("degrees = %d, %d", g.Degree(0), g.Degree(1))
	}
	if g.TotalEdgeWeight() != 3 {
		t.Errorf("TotalEdgeWeight = %d", g.TotalEdgeWeight())
	}
}

func TestBuilderDedupAndSelfLoop(t *testing.T) {
	b := NewBuilder(3, 1)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 0, 3) // reverse direction merges
	b.AddEdge(1, 1, 7) // self loop dropped
	b.AddEdge(1, 2, 1)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NE() != 2 {
		t.Fatalf("NE = %d, want 2", g.NE())
	}
	// Find the merged weight of {0,1}.
	found := false
	for i, u := range g.Neighbors(0) {
		if u == 1 {
			found = true
			if w := g.EdgeWeights(0)[i]; w != 5 {
				t.Errorf("merged weight = %d, want 5", w)
			}
		}
	}
	if !found {
		t.Fatal("edge {0,1} missing")
	}
}

func TestWeightsVector(t *testing.T) {
	b := NewBuilder(2, 3)
	b.SetWeights(0, []int32{1, 2, 3})
	b.SetWeight(1, 2, 9)
	g := b.Build()
	if g.Weight(0, 1) != 2 || g.Weight(1, 2) != 9 || g.Weight(1, 0) != 0 {
		t.Errorf("weights wrong: %v", g.VWgt)
	}
	tot := g.TotalWeights()
	if tot[0] != 1 || tot[1] != 2 || tot[2] != 12 {
		t.Errorf("TotalWeights = %v", tot)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6, 1)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	g := b.Build()
	comp, n := g.Components()
	if n != 3 {
		t.Fatalf("n components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Error("3,4 should share a component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("5 should be isolated")
	}
}

func TestCollapsePath(t *testing.T) {
	g := path(6)
	// Groups: {0,1,2} and {3,4,5}. One cut edge {2,3}.
	label := []int32{0, 0, 0, 1, 1, 1}
	q := g.Collapse(label, 2)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.NV() != 2 || q.NE() != 1 {
		t.Fatalf("quotient NV=%d NE=%d, want 2, 1", q.NV(), q.NE())
	}
	if q.Weight(0, 0) != 3 || q.Weight(1, 0) != 3 {
		t.Errorf("quotient weights %v", q.VWgt)
	}
	if q.EdgeWeights(0)[0] != 1 {
		t.Errorf("quotient edge weight = %d", q.EdgeWeights(0)[0])
	}
}

func TestCollapseParallelEdgesSum(t *testing.T) {
	// Two groups joined by two unit edges -> one quotient edge weight 2.
	b := NewBuilder(4, 1)
	for v := 0; v < 4; v++ {
		b.SetWeight(v, 0, 1)
	}
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(0, 1, 5) // internal to group 0
	g := b.Build()
	q := g.Collapse([]int32{0, 0, 1, 1}, 2)
	if q.NE() != 1 {
		t.Fatalf("NE = %d, want 1", q.NE())
	}
	if w := q.EdgeWeights(0)[0]; w != 2 {
		t.Errorf("quotient edge weight = %d, want 2", w)
	}
}

func TestCollapseEmptyGroup(t *testing.T) {
	g := path(3)
	q := g.Collapse([]int32{0, 0, 2}, 3) // group 1 empty
	if q.NV() != 3 {
		t.Fatalf("NV = %d", q.NV())
	}
	if q.Weight(1, 0) != 0 || q.Degree(1) != 0 {
		t.Error("empty group should be an isolated zero-weight vertex")
	}
}

func randomGraph(r *rand.Rand, nv, ncon, ne int) *Graph {
	b := NewBuilder(nv, ncon)
	for v := 0; v < nv; v++ {
		for j := 0; j < ncon; j++ {
			b.SetWeight(v, j, int32(1+r.Intn(5)))
		}
	}
	for i := 0; i < ne; i++ {
		b.AddEdge(r.Intn(nv), r.Intn(nv), int32(1+r.Intn(4)))
	}
	return b.Build()
}

// Property: built graphs always satisfy Validate.
func TestQuickBuildValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + r.Intn(60)
		g := randomGraph(r, nv, 1+r.Intn(3), r.Intn(4*nv))
		return g.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Collapse conserves total vertex weight and total edge weight
// splits into (quotient edges) + (internal edges).
func TestQuickCollapseConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + r.Intn(50)
		g := randomGraph(r, nv, 2, 3*nv)
		ngroups := 1 + r.Intn(nv)
		label := make([]int32, nv)
		for v := range label {
			label[v] = int32(r.Intn(ngroups))
		}
		q := g.Collapse(label, ngroups)
		if q.Validate() != nil {
			return false
		}
		gt, qt := g.TotalWeights(), q.TotalWeights()
		for j := range gt {
			if gt[j] != qt[j] {
				return false
			}
		}
		// Quotient edge weight == weight of edges cut by the labeling.
		var cut int64
		for v := 0; v < nv; v++ {
			adj, wgt := g.Neighbors(v), g.EdgeWeights(v)
			for i, u := range adj {
				if int(u) > v && label[u] != label[v] {
					cut += int64(wgt[i])
				}
			}
		}
		return q.TotalEdgeWeight() == cut
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adjacency symmetry — u in N(v) iff v in N(u), with equal weight.
func TestQuickSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + r.Intn(40)
		g := randomGraph(r, nv, 1, 3*nv)
		for v := 0; v < nv; v++ {
			adj, wgt := g.Neighbors(v), g.EdgeWeights(v)
			for i, u := range adj {
				found := false
				radj, rwgt := g.Neighbors(int(u)), g.EdgeWeights(int(u))
				for j, w := range radj {
					if int(w) == v {
						found = rwgt[j] == wgt[i]
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := path(3)
	// Corrupt one direction's weight.
	g.AdjWgt[0] = 42
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted asymmetric weights")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0, 1).Build()
	if g.NV() != 0 || g.NE() != 0 {
		t.Fatal("empty graph wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	_, n := g.Components()
	if n != 0 {
		t.Errorf("components = %d", n)
	}
}
