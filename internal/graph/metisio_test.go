package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMetisRoundTrip(t *testing.T) {
	b := NewBuilder(4, 2)
	b.SetWeights(0, []int32{1, 0})
	b.SetWeights(1, []int32{2, 1})
	b.SetWeights(2, []int32{1, 1})
	b.SetWeights(3, []int32{3, 0})
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 2)
	g := b.Build()

	var buf bytes.Buffer
	if err := g.WriteMetis(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NV() != g.NV() || got.NE() != g.NE() || got.NCon != g.NCon {
		t.Fatalf("round trip: NV=%d NE=%d NCon=%d", got.NV(), got.NE(), got.NCon)
	}
	for v := 0; v < g.NV(); v++ {
		for j := 0; j < g.NCon; j++ {
			if got.Weight(v, j) != g.Weight(v, j) {
				t.Fatalf("vertex %d weight %d differs", v, j)
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edge weight preserved.
	for i, u := range got.Neighbors(0) {
		if u == 1 && got.EdgeWeights(0)[i] != 5 {
			t.Errorf("edge {0,1} weight = %d", got.EdgeWeights(0)[i])
		}
	}
}

func TestReadMetisPlainFormat(t *testing.T) {
	// The minimal header: no weights at all.
	src := `% tiny triangle
3 3
2 3
1 3
1 2
`
	g, err := ReadMetis(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NV() != 3 || g.NE() != 3 {
		t.Fatalf("NV=%d NE=%d", g.NV(), g.NE())
	}
	for v := 0; v < 3; v++ {
		if g.Weight(v, 0) != 1 {
			t.Error("default vertex weight should be 1")
		}
	}
}

func TestReadMetisEdgeWeightsOnly(t *testing.T) {
	src := `2 1 001
2 7
1 7
`
	g, err := ReadMetis(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NE() != 1 || g.EdgeWeights(0)[0] != 7 {
		t.Fatalf("edge weight lost: %v", g.AdjWgt)
	}
}

func TestReadMetisSingleListedEdge(t *testing.T) {
	// Non-conforming file that lists the edge only on one side.
	src := `2 1 001
2 4

`
	g, err := ReadMetis(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NE() != 1 {
		t.Fatalf("NE = %d, want 1", g.NE())
	}
}

func TestReadMetisErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"vertex sizes unsupported", "2 1 100\n2\n1\n"},
		{"bad fmt", "2 1 0x1\n2\n1\n"},
		{"neighbor out of range", "2 1\n3\n1\n"},
		{"missing vertex line", "3 2\n2\n"},
		{"edge count mismatch", "3 5\n2\n1 3\n2\n"},
		{"dangling edge weight", "2 1 001\n2\n1 7 9\n"},
		{"bad ncon", "2 1 011 0\n1 2 1\n1 1 1\n"},
	}
	for _, c := range cases {
		if _, err := ReadMetis(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// Property: WriteMetis/ReadMetis is the identity on random graphs.
func TestQuickMetisRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + r.Intn(30)
		g := randomGraph(r, nv, 1+r.Intn(3), 3*nv)
		var buf bytes.Buffer
		if err := g.WriteMetis(&buf); err != nil {
			return false
		}
		got, err := ReadMetis(&buf)
		if err != nil {
			return false
		}
		if got.NV() != g.NV() || got.NE() != g.NE() || got.NCon != g.NCon {
			return false
		}
		// Compare total weights and edge weight sums (structure is
		// checked by Validate inside the round trip).
		a, b := g.TotalWeights(), got.TotalWeights()
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
		return g.TotalEdgeWeight() == got.TotalEdgeWeight() && got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
