// Package bkmeans implements balanced k-means partitioning (von Looz,
// Tzovas & Meyerhenke, arXiv:1805.01208): Lloyd iterations whose
// assignment step is capacity-constrained, so every cluster's load on
// the primary weight component stays under an explicit cap while
// points still go to near centroids. It is the higher-quality
// geometric fast path next to the Hilbert-curve partitioner: clusters
// are compact and convex-ish rather than curve segments, at the cost
// of a few O(n·k) sweeps instead of one sort.
//
// Everything is deterministic for a fixed Options.Seed: centroid
// initialization uses a seeded k-means++ draw, the assignment order is
// a strict total order (capacity pressure, then index), and
// parallelism only computes pure per-point values in fixed-size chunks.
package bkmeans

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Options configures Partition.
type Options struct {
	// K is the number of clusters.
	K int
	// Seed drives the k-means++ centroid initialization.
	Seed int64
	// Imbalance is the capacity slack epsilon on the primary weight
	// component (default 0.05); the hard cap additionally includes one
	// heaviest-point granularity so the greedy assignment always
	// terminates with every point placed.
	Imbalance float64
	// MaxIters bounds the Lloyd iterations (default 8; convergence
	// usually stops earlier).
	MaxIters int
	// Workers bounds the worker pool for the per-point distance sweeps
	// (<= 0 = GOMAXPROCS). Labels are identical for every value.
	Workers int
	// Obs, when non-nil, receives bkmeans_init/bkmeans_assign phase
	// timers and the bkmeans_iters counter. Observational only.
	Obs *obs.Collector
	// Span, when non-nil, records one "bkmeans" child span.
	Span *obs.Span
}

func (opt Options) withDefaults() Options {
	if opt.Imbalance <= 0 {
		opt.Imbalance = 0.05
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 8
	}
	return opt
}

// Partition clusters pts into k capacity-balanced groups. wgts carries
// ncon weights per point (flat, stride ncon); the capacity constraint
// applies to component 0 (the FE load), further components are not
// balanced — callers that need full multi-constraint balance should
// use the multilevel partitioner. Every part is non-empty whenever
// len(pts) >= k. Deterministic for fixed (Seed, K); Workers never
// changes the labels.
func Partition(pts []geom.Point, wgts []int32, ncon, dim, k int, opt Options) ([]int32, error) {
	if dim != 2 && dim != 3 {
		return nil, fmt.Errorf("bkmeans: dim = %d, want 2 or 3", dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("bkmeans: k = %d, want >= 1", k)
	}
	if ncon < 1 {
		return nil, fmt.Errorf("bkmeans: ncon = %d, want >= 1", ncon)
	}
	if len(wgts) != len(pts)*ncon {
		return nil, fmt.Errorf("bkmeans: %d weights for %d points with ncon=%d", len(wgts), len(pts), ncon)
	}
	opt = opt.withDefaults()
	span := opt.Span.Child("bkmeans", obs.Int("k", int64(k)), obs.Int("n", int64(len(pts))))
	defer span.End()

	n := len(pts)
	labels := make([]int32, n)
	if k == 1 || n == 0 {
		return labels, nil
	}

	// Primary weights and the feasible capacity: (1+eps)·avg plus one
	// heaviest point. caps sum to >= total + k·maxw, which is exactly
	// what guarantees the greedy assignment never strands a point (at
	// any step the cluster with the most remaining room has >= maxw).
	w := make([]int64, n)
	var total, maxw int64
	for i := 0; i < n; i++ {
		w[i] = int64(wgts[i*ncon])
		total += w[i]
		if w[i] > maxw {
			maxw = w[i]
		}
	}
	cap0 := int64(float64(total)/float64(k)*(1+opt.Imbalance)) + 1 + maxw
	caps := make([]int64, k)
	for p := range caps {
		caps[p] = cap0
	}

	stopInit := opt.Obs.Start("bkmeans_init")
	cents := initCentroids(pts, w, k, opt.Seed)
	stopInit()

	stopAssign := opt.Obs.Start("bkmeans_assign")
	defer stopAssign()
	var iters int64
	for it := 0; it < opt.MaxIters; it++ {
		iters++
		next, err := assign(pts, w, cents, caps, opt.Workers)
		if err != nil {
			return nil, err // unreachable with the feasible caps above
		}
		same := true
		for i := range next {
			if next[i] != labels[i] {
				same = false
			}
		}
		labels = next
		if same && it > 0 {
			break
		}
		moveCentroids(pts, w, labels, cents)
	}
	opt.Obs.Add("bkmeans_iters", iters)

	repairEmpty(pts, w, labels, cents, caps, k)
	return labels, nil
}

// initCentroids is the seeded k-means++ draw: the first centroid is a
// uniformly random point, each further one is drawn with probability
// proportional to its squared distance from the nearest centroid so
// far. Fully deterministic for a fixed seed.
func initCentroids(pts []geom.Point, w []int64, k int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	n := len(pts)
	cents := make([]geom.Point, 0, k)
	cents = append(cents, pts[rng.Intn(n)])
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = dist2(pts[i], cents[0])
	}
	for len(cents) < k {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var pick int
		if sum <= 0 {
			// All points coincide with a centroid (duplicates or tiny
			// inputs): fall back to a uniform draw.
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * sum
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		c := pts[pick]
		cents = append(cents, c)
		for i := range d2 {
			if d := dist2(pts[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return cents
}

// assignChunk is the fixed chunk size of the parallel distance sweep.
// Chunks are pure per-point computations into disjoint slices, so the
// worker count cannot influence any value.
const assignChunk = 1 << 13

// assign is the capacity-constrained assignment step: points are
// processed most-constrained-first (largest gap between their nearest
// and second-nearest centroid, ties by index) and greedily placed in
// the nearest centroid whose remaining capacity fits them, falling
// back to the cluster with the most remaining room (ties by index).
// An error is returned only when even that cluster cannot fit the
// point — impossible when sum(caps) >= total + k·max(w).
func assign(pts []geom.Point, w []int64, cents []geom.Point, caps []int64, workers int) ([]int32, error) {
	n, k := len(pts), len(cents)
	// gap[i] = d2(second nearest) - d2(nearest): how much point i loses
	// if its first choice is full.
	gap := make([]float64, n)
	sweep := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			best, second := -1.0, -1.0
			for _, c := range cents {
				d := dist2(pts[i], c)
				switch {
				case best < 0 || d < best:
					best, second = d, best
				case second < 0 || d < second:
					second = d
				}
			}
			gap[i] = second - best
		}
	}
	if n < assignChunk || pool.Workers(workers) <= 1 {
		sweep(0, n)
	} else {
		var fns []func() error
		for lo := 0; lo < n; lo += assignChunk {
			lo, hi := lo, lo+assignChunk
			if hi > n {
				hi = n
			}
			fns = append(fns, func() error { sweep(lo, hi); return nil })
		}
		// The closures cannot fail; pool.Run only surfaces panics.
		_ = pool.Run(workers, fns...)
	}

	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if gap[order[a]] != gap[order[b]] {
			return gap[order[a]] > gap[order[b]]
		}
		return order[a] < order[b]
	})

	labels := make([]int32, n)
	load := make([]int64, k)
	pref := make([]int32, k)
	d := make([]float64, k)
	for _, i := range order {
		// Centroid preference of this point: ascending distance, ties
		// by cluster index.
		for p := range cents {
			d[p] = dist2(pts[i], cents[p])
			pref[p] = int32(p)
		}
		sort.Slice(pref, func(a, b int) bool {
			if d[pref[a]] != d[pref[b]] {
				return d[pref[a]] < d[pref[b]]
			}
			return pref[a] < pref[b]
		})
		placed := false
		for _, p := range pref {
			if load[p]+w[i] <= caps[p] {
				labels[i] = p
				load[p] += w[i]
				placed = true
				break
			}
		}
		if !placed {
			// Most remaining room, ties by index.
			best := 0
			for p := 1; p < k; p++ {
				if caps[p]-load[p] > caps[best]-load[best] {
					best = p
				}
			}
			if load[best]+w[i] > caps[best] {
				return nil, fmt.Errorf("bkmeans: point %d (weight %d) fits no cluster", i, w[i])
			}
			labels[i] = int32(best)
			load[best] += w[i]
		}
	}
	return labels, nil
}

// Assign exposes the capacity-constrained assignment step for property
// testing and fuzzing: given centroids and per-cluster capacities with
// sum(caps) >= sum(w) + len(cents)·max(w), it places every point
// without exceeding any capacity.
func Assign(pts []geom.Point, w []int64, cents []geom.Point, caps []int64) ([]int32, error) {
	if len(w) != len(pts) {
		return nil, fmt.Errorf("bkmeans: %d weights for %d points", len(w), len(pts))
	}
	if len(caps) != len(cents) {
		return nil, fmt.Errorf("bkmeans: %d caps for %d centroids", len(caps), len(cents))
	}
	if len(cents) == 0 {
		return nil, fmt.Errorf("bkmeans: no centroids")
	}
	return assign(pts, w, cents, caps, 1)
}

// moveCentroids recomputes every cluster's centroid as the weighted
// mean of its points; a cluster with no points (or zero total weight)
// keeps its previous centroid so it can still attract points next
// iteration. Serial on purpose: it is O(n) and the accumulation order
// must not depend on the worker count.
func moveCentroids(pts []geom.Point, w []int64, labels []int32, cents []geom.Point) {
	k := len(cents)
	sum := make([]geom.Point, k)
	wsum := make([]float64, k)
	for i, p := range pts {
		l := labels[i]
		f := float64(w[i])
		if f == 0 {
			f = 1 // zero-weight points still pull their centroid
		}
		sum[l] = sum[l].Add(p.Scale(f))
		wsum[l] += f
	}
	for p := 0; p < k; p++ {
		if wsum[p] > 0 {
			cents[p] = sum[p].Scale(1 / wsum[p])
		}
	}
}

// repairEmpty guarantees the non-empty-parts invariant: every empty
// cluster (ascending) steals, from the most populous cluster, the
// point nearest to its own centroid. Capacities stay respected: the
// stolen point's weight is at most max(w) <= every cap.
func repairEmpty(pts []geom.Point, w []int64, labels []int32, cents []geom.Point, caps []int64, k int) {
	n := len(pts)
	if n < k {
		return
	}
	counts := make([]int, k)
	load := make([]int64, k)
	for i, l := range labels {
		counts[l]++
		load[l] += w[i]
	}
	for p := 0; p < k; p++ {
		if counts[p] > 0 {
			continue
		}
		donor := -1
		for q := 0; q < k; q++ {
			if counts[q] > 1 && (donor < 0 || counts[q] > counts[donor]) {
				donor = q
			}
		}
		if donor < 0 {
			return // fewer multi-point clusters than holes; nothing to move
		}
		best, bestD := -1, 0.0
		for i, l := range labels {
			if int(l) != donor {
				continue
			}
			if d := dist2(pts[i], cents[p]); best < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		labels[best] = int32(p)
		counts[donor]--
		load[donor] -= w[best]
		counts[p]++
		load[p] += w[best]
	}
}

func dist2(a, b geom.Point) float64 {
	d := a.Sub(b)
	return d.Dot(d)
}
