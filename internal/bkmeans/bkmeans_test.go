package bkmeans

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randPoints builds a clustered 3D point cloud with ncon weights
// (first component always >= 1).
func randPoints(r *rand.Rand, n, ncon int) ([]geom.Point, []int32) {
	pts := make([]geom.Point, n)
	wgts := make([]int32, n*ncon)
	for i := range pts {
		cx := float64(r.Intn(4)) * 15
		pts[i] = geom.P3(cx+r.Float64()*10, r.Float64()*12, r.Float64()*20)
		wgts[i*ncon] = 1 + int32(r.Intn(3))
		for j := 1; j < ncon; j++ {
			if r.Intn(3) == 0 {
				wgts[i*ncon+j] = int32(r.Intn(4))
			}
		}
	}
	return pts, wgts
}

func TestPartitionBalanceAndCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, k := range []int{2, 6, 16} {
		pts, wgts := randPoints(r, 2500, 1)
		labels, err := Partition(pts, wgts, 1, 3, k, Options{K: k, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, k)
		loads := make([]int64, k)
		var total, maxw int64
		for i, l := range labels {
			if l < 0 || int(l) >= k {
				t.Fatalf("k=%d: label %d out of range", k, l)
			}
			counts[l]++
			loads[l] += int64(wgts[i])
			total += int64(wgts[i])
			if int64(wgts[i]) > maxw {
				maxw = int64(wgts[i])
			}
		}
		// The documented hard cap: (1+eps)·avg + 1 + max weight.
		cap0 := int64(float64(total)/float64(k)*1.05) + 1 + maxw
		for p := 0; p < k; p++ {
			if counts[p] == 0 {
				t.Fatalf("k=%d: part %d empty", k, p)
			}
			if loads[p] > cap0 {
				t.Errorf("k=%d: part %d load %d exceeds cap %d", k, p, loads[p], cap0)
			}
		}
	}
}

// TestPartitionCompactness: balanced k-means clusters should be
// spatially compact — the total part-box volume must stay well under
// k times the domain volume.
func TestPartitionCompactness(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts, wgts := randPoints(r, 3000, 1)
	k := 8
	labels, err := Partition(pts, wgts, 1, 3, k, Options{K: k, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	whole := geom.BoxOf(pts)
	wholeVol := (whole.Max[0] - whole.Min[0]) * (whole.Max[1] - whole.Min[1]) * (whole.Max[2] - whole.Min[2])
	var sum float64
	for p := 0; p < k; p++ {
		b := geom.Empty()
		for i, l := range labels {
			if int(l) == p {
				b = b.Extend(pts[i])
			}
		}
		sum += (b.Max[0] - b.Min[0]) * (b.Max[1] - b.Min[1]) * (b.Max[2] - b.Min[2])
	}
	if sum > 3*wholeVol {
		t.Errorf("total part-box volume %.1f vs domain %.1f: no compactness", sum, wholeVol)
	}
}

// TestPartitionWorkerDeterminism: byte-identical labels for every
// worker count and for the forced chunked assignment path.
func TestPartitionWorkerDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pts, wgts := randPoints(r, 9000, 2) // > assignChunk to exercise pool.Run
	base, err := Partition(pts, wgts, 2, 3, 10, Options{K: 10, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 3, 8} {
		got, err := Partition(pts, wgts, 2, 3, 10, Options{K: 10, Seed: 3, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: label[%d] = %d, want %d", w, i, got[i], base[i])
			}
		}
	}
}

// TestPartitionSeedSensitivity: different seeds are allowed to give
// different clusterings but the same seed must reproduce exactly.
func TestPartitionSeedSensitivity(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	pts, wgts := randPoints(r, 1200, 1)
	a, err := Partition(pts, wgts, 1, 3, 6, Options{K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(pts, wgts, 1, 3, 6, Options{K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	pts := []geom.Point{geom.P3(0, 0, 0)}
	if _, err := Partition(pts, []int32{1}, 1, 4, 2, Options{}); err == nil {
		t.Error("accepted dim=4")
	}
	if _, err := Partition(pts, []int32{1}, 1, 3, 0, Options{}); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Partition(pts, []int32{1, 1, 1}, 2, 3, 2, Options{}); err == nil {
		t.Error("accepted mismatched weight length")
	}
	// Degenerate geometry (all points coincident) still covers every part.
	same := make([]geom.Point, 12)
	w := make([]int32, 12)
	for i := range w {
		w[i] = 1
	}
	labels, err := Partition(same, w, 1, 3, 4, Options{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 4)
	for _, l := range labels {
		seen[l] = true
	}
	for p, ok := range seen {
		if !ok {
			t.Errorf("coincident points: part %d empty", p)
		}
	}
}

// TestAssignCapacityContract: the exported Assign never exceeds a cap
// and assigns every point when the feasibility precondition holds.
func TestAssignCapacityContract(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	pts := make([]geom.Point, 400)
	w := make([]int64, 400)
	var total, maxw int64
	for i := range pts {
		pts[i] = geom.P3(r.Float64()*30, r.Float64()*30, 0)
		w[i] = 1 + int64(r.Intn(5))
		total += w[i]
		if w[i] > maxw {
			maxw = w[i]
		}
	}
	k := 7
	cents := make([]geom.Point, k)
	for p := range cents {
		cents[p] = pts[r.Intn(len(pts))]
	}
	caps := make([]int64, k)
	for p := range caps {
		caps[p] = (total+int64(k)-1)/int64(k) + maxw
	}
	labels, err := Assign(pts, w, cents, caps)
	if err != nil {
		t.Fatal(err)
	}
	load := make([]int64, k)
	for i, l := range labels {
		if l < 0 || int(l) >= k {
			t.Fatalf("label %d out of range", l)
		}
		load[l] += w[i]
	}
	for p := 0; p < k; p++ {
		if load[p] > caps[p] {
			t.Errorf("cluster %d load %d exceeds cap %d", p, load[p], caps[p])
		}
	}
}
