package bkmeans

import (
	"testing"

	"repro/internal/geom"
)

// FuzzBKMeansAssign drives the capacity-constrained assignment step
// with arbitrary point clouds, weights, and centroid counts decoded
// from fuzzer bytes, under the documented feasibility precondition
// (per-cluster cap = ceil(total/k) + max weight), and checks the two
// contract properties:
//
//  1. every point is assigned a label in [0, k);
//  2. no cluster's load ever exceeds its capacity.
func FuzzBKMeansAssign(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0x01, 0x02})
	f.Add([]byte{8, 5, 5, 5, 5, 9, 9, 9, 9, 1, 1, 1, 1, 200, 200, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		k := 1 + int(data[0])%8
		rest := data[1:]
		// Three bytes per point: x, y, weight.
		n := len(rest) / 3
		if n == 0 {
			return
		}
		if n > 512 {
			n = 512
		}
		pts := make([]geom.Point, n)
		w := make([]int64, n)
		var total, maxw int64
		for i := 0; i < n; i++ {
			pts[i] = geom.P2(float64(rest[i*3]), float64(rest[i*3+1]))
			w[i] = 1 + int64(rest[i*3+2]%32)
			total += w[i]
			if w[i] > maxw {
				maxw = w[i]
			}
		}
		// Centroids are drawn from the points themselves (wrapping), so
		// ties and coincident centroids are exercised.
		cents := make([]geom.Point, k)
		for p := range cents {
			cents[p] = pts[p%n]
		}
		caps := make([]int64, k)
		for p := range caps {
			caps[p] = (total+int64(k)-1)/int64(k) + maxw
		}

		labels, err := Assign(pts, w, cents, caps)
		if err != nil {
			t.Fatalf("feasible instance rejected (n=%d k=%d total=%d maxw=%d): %v", n, k, total, maxw, err)
		}
		if len(labels) != n {
			t.Fatalf("%d labels for %d points", len(labels), n)
		}
		load := make([]int64, k)
		for i, l := range labels {
			if l < 0 || int(l) >= k {
				t.Fatalf("point %d: label %d out of [0,%d)", i, l, k)
			}
			load[l] += w[i]
		}
		for p := 0; p < k; p++ {
			if load[p] > caps[p] {
				t.Fatalf("cluster %d: load %d exceeds cap %d", p, load[p], caps[p])
			}
		}
	})
}
