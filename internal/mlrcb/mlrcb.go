// Package mlrcb implements the ML+RCB baseline (Plimpton et al. [27],
// Brown et al. [2]) that the paper compares MCML+DT against: the mesh
// is partitioned once with a single-constraint multilevel algorithm
// (the FE-phase decomposition) while the contact points are partitioned
// separately with recursive coordinate bisection (the contact-phase
// decomposition), updated incrementally each time step. Because the
// two decompositions are decoupled, surface-node data must be shipped
// between them before each phase — the M2MComm cost — and the RCB
// updates migrate points between contact partitions — the UpdComm
// cost. Global search filters candidate partitions through the RCB
// subdomains' bounding boxes.
package mlrcb

import (
	"fmt"

	"repro/internal/contact"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mesh"
	"repro/internal/partition"
	"repro/internal/rcb"
)

// Config parameterizes the baseline.
type Config struct {
	K         int
	Seed      int64
	Imbalance float64 // FE-partition tolerance (default 0.05)
}

// State carries the baseline's two decompositions across time steps.
type State struct {
	Cfg Config
	// Graph is the single-constraint nodal graph of the initial mesh;
	// MeshLabels its k-way FE-phase partition.
	Graph      *graph.Graph
	MeshLabels []int32
	// Tree is the RCB cut tree, updated in place each step.
	Tree *rcb.Tree
	// ContactNodes / ContactLabels are the current contact points and
	// their RCB partitions.
	ContactNodes  []int32
	ContactLabels []int32
}

// Decompose builds the initial two decompositions for a mesh.
func Decompose(m *mesh.Mesh, cfg Config) (*State, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("mlrcb: K = %d", cfg.K)
	}
	if cfg.Imbalance <= 0 {
		cfg.Imbalance = 0.05
	}
	g := m.NodalGraph(mesh.NodalGraphOptions{NCon: 1})
	labels, err := partition.Partition(g, partition.Options{
		K: cfg.K, Seed: cfg.Seed, Imbalance: cfg.Imbalance,
	})
	if err != nil {
		return nil, err
	}
	s := &State{Cfg: cfg, Graph: g, MeshLabels: labels}

	nodes := m.ContactNodes()
	pts := gatherPoints(m, nodes)
	tree, cl, err := rcb.Build(pts, m.Dim, cfg.K)
	if err != nil {
		return nil, err
	}
	s.Tree = tree
	s.ContactNodes = nodes
	s.ContactLabels = cl
	return s, nil
}

// Update refits the RCB decomposition to the mesh's current contact
// points (which may have moved, disappeared, or newly appeared) and
// replaces the state's contact bookkeeping. The cut tree's structure
// is preserved — only cut positions move — which is the incremental
// repartitioning strategy whose migration cost the UpdComm metric
// measures.
func (s *State) Update(m *mesh.Mesh) {
	nodes := m.ContactNodes()
	pts := gatherPoints(m, nodes)
	s.ContactLabels = s.Tree.Update(pts)
	s.ContactNodes = nodes
}

// M2MComm returns the number of contact points whose FE-phase
// partition differs from their contact-phase partition, after the
// optimal (maximum-weight matching) relabeling of the RCB partitions
// against the FE partitions. meshLabels must map every node of the
// *current* mesh to its FE partition.
func (s *State) M2MComm(meshLabels []int32) (int, error) {
	fe := make([]int32, len(s.ContactNodes))
	for i, n := range s.ContactNodes {
		fe[i] = meshLabels[n]
	}
	_, mismatched, err := matching.OverlapRelabel(fe, s.ContactLabels, s.Cfg.K)
	return mismatched, err
}

// NRemote runs the baseline's global search: each surface element
// (bounding box, inflated by tol) is tested against the bounding box
// of every RCB subdomain's contact points; the element is "remote" for
// every matching subdomain other than its own. A surface element's own
// contact partition is where the RCB tree places its box center.
func (s *State) NRemote(m *mesh.Mesh, tol float64) int64 {
	boxes := contact.SurfaceBoxes(m, tol)
	owners := make([]int32, len(boxes))
	for i := range boxes {
		owners[i] = s.Tree.PartOf(boxes[i].Center())
	}
	pts := gatherPoints(m, s.ContactNodes)
	sub := rcb.SubdomainBoxes(pts, s.ContactLabels, s.Cfg.K)
	f := &contact.BoxFilter{Boxes: sub, Dim: m.Dim}
	return contact.NRemote(boxes, owners, f)
}

func gatherPoints(m *mesh.Mesh, nodes []int32) []geom.Point {
	pts := make([]geom.Point, len(nodes))
	for i, n := range nodes {
		pts[i] = m.Coords[n]
	}
	return pts
}
