package mlrcb

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func testSnaps(t *testing.T, n int) []sim.Snapshot {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Scene.PlateNX, cfg.Scene.PlateNY, cfg.Scene.PlateNZ = 12, 12, 2
	cfg.Scene.ProjN, cfg.Scene.ProjLen = 2, 6
	cfg.Scene.ContactRadius = 4
	cfg.Steps = 10 * n
	cfg.Snapshots = n
	snaps, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

func TestDecomposeBasics(t *testing.T) {
	snaps := testSnaps(t, 2)
	m := snaps[0].Mesh
	s, err := Decompose(m, Config{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// FE partition balanced on node counts.
	imb := metrics.LoadImbalance(s.Graph, s.MeshLabels, 8)
	if imb[0] > 1.1 {
		t.Errorf("FE imbalance %v", imb)
	}
	// RCB partition of contact points balanced on counts.
	sizes := make([]int, 8)
	for _, l := range s.ContactLabels {
		sizes[l]++
	}
	n := len(s.ContactLabels)
	for p, c := range sizes {
		if c < n/8-8 || c > n/8+8 {
			t.Errorf("RCB partition %d has %d of %d points", p, c, n)
		}
	}
}

func TestDecomposeRejectsBadK(t *testing.T) {
	snaps := testSnaps(t, 2)
	if _, err := Decompose(snaps[0].Mesh, Config{K: 0}); err == nil {
		t.Error("accepted K=0")
	}
}

func TestM2MCommBounds(t *testing.T) {
	snaps := testSnaps(t, 2)
	m := snaps[0].Mesh
	s, err := Decompose(m, Config{K: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m2m, err := s.M2MComm(s.MeshLabels)
	if err != nil {
		t.Fatal(err)
	}
	if m2m < 0 || m2m > len(s.ContactNodes) {
		t.Fatalf("M2MComm = %d of %d contacts", m2m, len(s.ContactNodes))
	}
	// The two decompositions are genuinely decoupled, so a large
	// fraction of contact points should disagree (the paper sees ~60%).
	if m2m == 0 {
		t.Error("M2MComm = 0: decompositions should differ")
	}
}

func TestM2MCommPerfectWhenIdentical(t *testing.T) {
	// If the FE labels of the contact nodes are exactly the RCB labels,
	// M2MComm must be zero.
	snaps := testSnaps(t, 2)
	m := snaps[0].Mesh
	s, err := Decompose(m, Config{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fake := make([]int32, m.NumNodes())
	for i, n := range s.ContactNodes {
		fake[n] = s.ContactLabels[i]
	}
	m2m, err := s.M2MComm(fake)
	if err != nil {
		t.Fatal(err)
	}
	if m2m != 0 {
		t.Errorf("M2MComm = %d for identical labelings", m2m)
	}
}

func TestUpdateTracksContactSet(t *testing.T) {
	snaps := testSnaps(t, 4)
	s, err := Decompose(snaps[0].Mesh, Config{K: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range snaps[1:] {
		s.Update(sn.Mesh)
		if len(s.ContactLabels) != len(s.ContactNodes) {
			t.Fatal("labels/nodes length mismatch after update")
		}
		want := len(sn.Mesh.ContactNodes())
		if len(s.ContactNodes) != want {
			t.Fatalf("update kept %d contacts, mesh has %d", len(s.ContactNodes), want)
		}
		// Counts stay balanced after the incremental update.
		sizes := make([]int, 5)
		for _, l := range s.ContactLabels {
			sizes[l]++
		}
		n := len(s.ContactLabels)
		for p, c := range sizes {
			if c < n/5-6 || c > n/5+6 {
				t.Errorf("after update partition %d has %d of %d", p, c, n)
			}
		}
	}
}

func TestNRemotePositiveAndStable(t *testing.T) {
	snaps := testSnaps(t, 2)
	m := snaps[0].Mesh
	s, err := Decompose(m, Config{K: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := s.NRemote(m, 0.5)
	b := s.NRemote(m, 0.5)
	if a != b {
		t.Errorf("NRemote not deterministic: %d vs %d", a, b)
	}
	if a < 0 {
		t.Errorf("NRemote = %d", a)
	}
	// Larger tolerance can only increase candidate intersections.
	big := s.NRemote(m, 2.0)
	if big < a {
		t.Errorf("NRemote with larger tol %d < %d", big, a)
	}
}

func TestMeshLabelsCoverAllNodes(t *testing.T) {
	snaps := testSnaps(t, 2)
	m := snaps[0].Mesh
	s, err := Decompose(m, Config{K: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.MeshLabels) != m.NumNodes() {
		t.Fatalf("labels %d for %d nodes", len(s.MeshLabels), m.NumNodes())
	}
	_ = mesh.NodalGraphOptions{}
}
