package obs

// Structured tracing: a Span is one timed region of the pipeline —
// a harness snapshot, an engine rank phase, a transport exchange, a
// recursive-bisection task — with a name, key/value attributes,
// instant events (retries, injected faults), and a parent. Spans form
// trees; completed spans are recorded into the owning Tracer's sharded
// buffers (one mutex per shard, chosen by span id, so concurrent ranks
// and pool workers rarely contend) and exported as Chrome trace-event
// JSON (trace.go) loadable in Perfetto or chrome://tracing.
//
// The whole API is nil-safe and zero-allocation when tracing is off:
// a nil *Tracer produces nil *Spans, every method on a nil *Span is a
// no-op, and SpanFromContext on a context without a span returns nil —
// so instrumentation threads spans through unconditionally and the
// tracing-off path costs one nil check (TestDisabledPathsZeroAlloc
// enforces the no-allocation contract).

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Construct with Int, Str, or Track.
type Attr struct {
	Key string
	Str string
	Int int64
	// isInt selects which value field is live.
	isInt bool
}

// Int returns an integer-valued attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Int: v, isInt: true} }

// Str returns a string-valued attribute.
func Str(key, v string) Attr { return Attr{Key: key, Str: v} }

// trackAttrKey is the reserved attribute key consumed by StartSpan /
// Child: it names the timeline track (Chrome trace "thread") the span
// is grouped under instead of inheriting the parent's track.
const trackAttrKey = "\x00track"

// Track returns the reserved attribute that places a span on the
// named timeline track (e.g. "rank3", "rb"). Concurrent spans sharing
// a track name are fanned out to "name", "name #2", ... at export.
func Track(name string) Attr { return Attr{Key: trackAttrKey, Str: name} }

// spanEvent is one instant event inside a span (Chrome phase "i").
type spanEvent struct {
	name  string
	ts    int64 // ns since tracer base
	attrs []Attr
}

// Span is one timed region. A nil *Span is valid everywhere and
// records nothing.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64 // parent span id, 0 for roots
	name   string
	track  string
	start  int64 // ns since tracer base
	attrs  []Attr

	mu     sync.Mutex
	end    int64 // ns since tracer base; 0 = still open
	events []spanEvent
}

// Tracer collects completed spans. A nil *Tracer is valid and records
// nothing. Safe for concurrent use.
type Tracer struct {
	base   time.Time
	nextID atomic.Int64
	shards [traceShards]traceShard
}

const traceShards = 16

type traceShard struct {
	mu    sync.Mutex
	spans []*Span
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer { return &Tracer{base: time.Now()} }

// now returns nanoseconds since the tracer's base time (monotonic).
func (t *Tracer) now() int64 { return int64(time.Since(t.base)) }

// newSpan allocates and starts a span. attrs are copied; the Track
// attribute (if any) is split off into the track field.
func (t *Tracer) newSpan(name, parentTrack string, parent int64, attrs []Attr) *Span {
	s := &Span{
		tr:     t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		track:  parentTrack,
		start:  t.now(),
	}
	for _, a := range attrs {
		if a.Key == trackAttrKey {
			s.track = a.Str
			continue
		}
		s.attrs = append(s.attrs, a)
	}
	return s
}

// Root starts a top-level span. Returns nil on a nil tracer.
func (t *Tracer) Root(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, "main", 0, attrs)
}

// Child starts a span nested under s (same track unless a Track attr
// overrides it). Safe to call from multiple goroutines on the same
// parent. Returns nil on a nil span.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.track, s.id, attrs)
}

// Event records an instant event on s's timeline (rendered as an
// arrow-less marker in the trace viewer): a retry round, an injected
// fault, a recovery decision.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	var cp []Attr
	if len(attrs) > 0 {
		cp = make([]Attr, len(attrs))
		copy(cp, attrs)
	}
	ev := spanEvent{name: name, ts: s.tr.now(), attrs: cp}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// End completes the span and records it into the tracer. Calling End
// twice records the span once (the second call is ignored).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end != 0 {
		s.mu.Unlock()
		return
	}
	s.end = s.tr.now()
	if s.end == s.start {
		s.end++ // zero-length spans render poorly; give them 1ns
	}
	s.mu.Unlock()
	sh := &s.tr.shards[s.id%traceShards]
	sh.mu.Lock()
	sh.spans = append(sh.spans, s)
	sh.mu.Unlock()
}

// Name returns the span's name ("" for nil), for tests and tooling.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// spanContextKey keys the current span in a context.
type spanContextKey struct{}

// ContextWithSpan returns ctx carrying s as the current span. A nil
// span returns ctx unchanged, so tracing-off call sites allocate
// nothing.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanContextKey{}, s)
}

// SpanFromContext returns the current span, or nil when the context
// carries none (tracing off).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanContextKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's current span and returns
// a context carrying the child. When the context has no span (tracing
// off) it returns ctx unchanged and a nil span — the no-op path.
// Usage:
//
//	ctx, span := obs.StartSpan(ctx, "snapshot", obs.Int("t", t))
//	defer span.End()
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.Child(name, attrs...)
	return context.WithValue(ctx, spanContextKey{}, s), s
}

// snapshotSpans returns all completed spans in a deterministic order
// (by id). Open spans are not included.
func (t *Tracer) snapshotSpans() []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		out = append(out, sh.spans...)
		sh.mu.Unlock()
	}
	return out
}
