package obs

import (
	"strings"
	"testing"
	"time"
)

// Error-path coverage for the checkpoint-resume fold: Merge must
// reject reports whose histogram bucket indexes fall outside the
// fixed layout, and must stay exact on the good path.

func TestHistMergeRejectsBadBucketIndex(t *testing.T) {
	for _, idx := range []int{-1, numHistBuckets, numHistBuckets + 17} {
		var h hist
		err := h.merge(HistStat{
			Name: "serve_job_wall", Count: 1, Sum: 5, Min: 5, Max: 5,
			Buckets: []HistBucket{{Index: idx, Count: 1}},
		})
		if err == nil {
			t.Fatalf("merge accepted bucket index %d", idx)
		}
		if !strings.Contains(err.Error(), "bucket index") || !strings.Contains(err.Error(), "serve_job_wall") {
			t.Fatalf("error %q should name the histogram and the bad index", err)
		}
	}
}

func TestHistMergeEmptyStatIsNoop(t *testing.T) {
	var h hist
	h.observe(9)
	// Count == 0 short-circuits before the (bogus) buckets are read:
	// an empty checkpoint section merges as a no-op.
	if err := h.merge(HistStat{Name: "x", Buckets: []HistBucket{{Index: -5, Count: 1}}}); err != nil {
		t.Fatalf("empty stat merge: %v", err)
	}
	if h.count != 1 || h.sum != 9 {
		t.Fatalf("empty merge mutated state: count %d sum %d", h.count, h.sum)
	}
}

func TestCollectorMergePropagatesHistError(t *testing.T) {
	c := New()
	bad := Report{
		Counters: []CounterStat{{Name: "serve_jobs_accepted", Value: 3}},
		Hists: []HistStat{{
			Name: "latency", Count: 2, Sum: 10, Min: 3, Max: 7,
			Buckets: []HistBucket{{Index: numHistBuckets + 1, Count: 2}},
		}},
	}
	if err := c.Merge(bad); err == nil {
		t.Fatal("Merge accepted an out-of-range bucket index")
	}
	// The counter section merged before the histogram failed; Merge is
	// not transactional, and the resume path treats any error as fatal.
	r := c.Report()
	if len(r.Counters) != 1 || r.Counters[0].Value != 3 {
		t.Fatalf("counters after failed merge = %+v", r.Counters)
	}
}

func TestCollectorMergeNil(t *testing.T) {
	var c *Collector
	if err := c.Merge(Report{Hists: []HistStat{{Name: "x", Count: 1, Buckets: []HistBucket{{Index: -1, Count: 1}}}}}); err != nil {
		t.Fatalf("nil collector Merge: %v", err)
	}
}

// TestCollectorMergeRoundTrip pins the good path end to end: report,
// merge into a fresh collector, report again, identical stats.
func TestCollectorMergeRoundTrip(t *testing.T) {
	a := New()
	a.Observe("partition", 3*time.Millisecond)
	a.Observe("partition", 5*time.Millisecond)
	a.Add("cut", 17)
	a.Max("peak", 4)
	a.Hist("sizes", 100)
	a.Hist("sizes", 1000)

	b := New()
	if err := b.Merge(a.Report()); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	ra, rb := a.Report(), b.Report()
	if len(rb.Hists) != len(ra.Hists) {
		t.Fatalf("hist count %d != %d", len(rb.Hists), len(ra.Hists))
	}
	for i := range ra.Hists {
		ha, hb := ra.Hists[i], rb.Hists[i]
		if ha.Name != hb.Name || ha.Count != hb.Count || ha.Sum != hb.Sum ||
			ha.P50 != hb.P50 || ha.P99 != hb.P99 || len(ha.Buckets) != len(hb.Buckets) {
			t.Fatalf("hist %s diverged after merge:\n a %+v\n b %+v", ha.Name, ha, hb)
		}
	}
	if len(rb.Counters) != 1 || rb.Counters[0].Value != 17 {
		t.Fatalf("counters = %+v", rb.Counters)
	}
	if len(rb.Gauges) != 1 || rb.Gauges[0].Value != 4 {
		t.Fatalf("gauges = %+v", rb.Gauges)
	}
}
