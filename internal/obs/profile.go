package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a runtime/pprof CPU profile to path
// and returns the function that stops profiling and closes the file.
// It is the backing for the CLIs' -cpuprofile flags.
func StartCPUProfile(path string) (func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close() // already failing; the profile error is the one to report
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile captures a heap profile to path (after a GC, so the
// profile reflects live memory). It is the backing for the CLIs'
// -memprofile flags.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close() // already failing; the profile error is the one to report
		return fmt.Errorf("obs: write heap profile: %w", err)
	}
	return f.Close()
}

// WriteJSONFile writes the report to path as JSON (the -obs flag).
func (r Report) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		_ = f.Close() // already failing; the encode error is the one to report
		return err
	}
	return f.Close()
}
