package obs

// Chrome trace-event export and validation. WriteTrace renders every
// completed span as a balanced B/E ("duration begin/end") pair and
// every span event as an "i" (instant) event, in the JSON object
// format {"traceEvents": [...]} that Perfetto and chrome://tracing
// load directly. ValidateTrace is the inverse gate used by
// tools/tracecheck and the tests: well-formed JSON, monotonic
// timestamps per track, and strictly balanced B/E stacks.
//
// Track assignment: spans carry a track name (Track attr, inherited
// from the parent by default). Within one track, spans that overlap
// without nesting — concurrent pool tasks, the two harness legs — are
// fanned out first-fit onto extra lanes ("rb", "rb #2", ...), so every
// emitted lane is a properly nested stack and the B/E stream is
// balanced by construction.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// traceEvent is one Chrome trace-event entry.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// usec converts tracer nanoseconds to trace-event microseconds.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

func attrArgs(args map[string]any, attrs []Attr) map[string]any {
	for _, a := range attrs {
		if args == nil {
			args = make(map[string]any, len(attrs))
		}
		if a.isInt {
			args[a.Key] = a.Int
		} else {
			args[a.Key] = a.Str
		}
	}
	return args
}

// lane is one emitted timeline: a stack of properly nested spans.
type lane struct {
	name  string
	open  []*Span // simulation stack during assignment
	spans []*Span // assigned spans in (start asc, end desc) order
}

// assignLanes fans the track's spans (sorted by start asc, end desc,
// id asc) out to the minimum number of properly nested lanes,
// first-fit.
func assignLanes(track string, spans []*Span) []*lane {
	var lanes []*lane
	for _, s := range spans {
		placed := false
		for _, l := range lanes {
			// Spans are processed in start order, so anything that ended
			// before s starts can be popped for good.
			for len(l.open) > 0 && l.open[len(l.open)-1].end <= s.start {
				l.open = l.open[:len(l.open)-1]
			}
			if n := len(l.open); n == 0 || (l.open[n-1].start <= s.start && l.open[n-1].end >= s.end) {
				l.open = append(l.open, s)
				l.spans = append(l.spans, s)
				placed = true
				break
			}
		}
		if !placed {
			name := track
			if len(lanes) > 0 {
				name = fmt.Sprintf("%s #%d", track, len(lanes)+1)
			}
			lanes = append(lanes, &lane{name: name, open: []*Span{s}, spans: []*Span{s}})
		}
	}
	return lanes
}

// laneEvents renders one lane's spans as a balanced, monotonic
// B/E/i event stream.
func laneEvents(l *lane, pid, tid int64) []traceEvent {
	type ev struct {
		ts   int64
		rank int // E=0, i=1, B=2 at equal ts
		s    *Span
		ie   *spanEvent
	}
	var evs []ev
	for _, s := range l.spans {
		evs = append(evs, ev{ts: s.start, rank: 2, s: s}, ev{ts: s.end, rank: 0, s: s})
		for i := range s.events {
			evs = append(evs, ev{ts: s.events[i].ts, rank: 1, ie: &s.events[i]})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		switch a.rank {
		case 0: // both E: inner (later start) closes first
			if a.s.start != b.s.start {
				return a.s.start > b.s.start
			}
			return a.s.id > b.s.id
		case 2: // both B: outer (later end) opens first
			if a.s.end != b.s.end {
				return a.s.end > b.s.end
			}
			return a.s.id < b.s.id
		}
		return false
	})

	out := make([]traceEvent, 0, len(evs))
	for _, e := range evs {
		switch e.rank {
		case 2:
			args := map[string]any{"span_id": e.s.id}
			if e.s.parent != 0 {
				args["parent"] = e.s.parent
			}
			out = append(out, traceEvent{
				Name: e.s.name, Cat: "span", Ph: "B", TS: usec(e.s.start),
				Pid: pid, Tid: tid, Args: attrArgs(args, e.s.attrs),
			})
		case 0:
			out = append(out, traceEvent{
				Name: e.s.name, Cat: "span", Ph: "E", TS: usec(e.s.end),
				Pid: pid, Tid: tid,
			})
		case 1:
			out = append(out, traceEvent{
				Name: e.ie.name, Cat: "event", Ph: "i", TS: usec(e.ie.ts),
				Pid: pid, Tid: tid, S: "t", Args: attrArgs(nil, e.ie.attrs),
			})
		}
	}
	return out
}

// WriteTrace exports every completed span as Chrome trace-event JSON.
// The output is deterministic for a given set of recorded spans.
func (t *Tracer) WriteTrace(w io.Writer) error {
	spans := t.snapshotSpans()
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.end != b.end {
			return a.end > b.end
		}
		return a.id < b.id
	})

	byTrack := make(map[string][]*Span)
	var trackNames []string
	for _, s := range spans {
		if _, ok := byTrack[s.track]; !ok {
			trackNames = append(trackNames, s.track)
		}
		byTrack[s.track] = append(byTrack[s.track], s)
	}
	sort.Strings(trackNames)

	const pid = 0
	events := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": "repro"},
	}}
	tid := int64(0)
	for _, tn := range trackNames {
		for _, l := range assignLanes(tn, byTrack[tn]) {
			tid++
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": l.name},
			})
			events = append(events, laneEvents(l, pid, tid)...)
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"})
}

// WriteTraceFile writes the trace to path (the -trace flag).
func (t *Tracer) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteTrace(f); err != nil {
		_ = f.Close() // already failing; the encode error is the one to report
		return err
	}
	return f.Close()
}

// TraceSummary is what ValidateTrace learned about a trace.
type TraceSummary struct {
	Events int            // total trace events
	Tracks int            // distinct (pid, tid) lanes with B/E/i events
	Spans  int            // balanced B/E pairs
	Names  map[string]int // span and instant-event names -> occurrences
}

// ValidateTrace checks that r holds well-formed Chrome trace-event
// JSON (either the {"traceEvents": [...]} object or a bare array)
// with, per (pid, tid) lane: non-decreasing timestamps in file order
// and strictly balanced B/E pairs with matching names. It is the
// library behind tools/tracecheck and the trace tests.
func ValidateTrace(r io.Reader) (TraceSummary, error) {
	sum := TraceSummary{Names: map[string]int{}}
	data, err := io.ReadAll(r)
	if err != nil {
		return sum, err
	}
	var wrapper struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &wrapper); err == nil && wrapper.TraceEvents != nil {
		raw = wrapper.TraceEvents
	} else if err := json.Unmarshal(data, &raw); err != nil {
		return sum, fmt.Errorf("tracecheck: not trace-event JSON: %w", err)
	}

	type laneKey struct{ pid, tid int64 }
	type openSpan struct {
		name string
		idx  int
	}
	lastTS := map[laneKey]float64{}
	stacks := map[laneKey][]openSpan{}
	seen := map[laneKey]bool{}

	for i, msg := range raw {
		var e struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Pid  int64    `json:"pid"`
			Tid  int64    `json:"tid"`
		}
		if err := json.Unmarshal(msg, &e); err != nil {
			return sum, fmt.Errorf("tracecheck: event %d: %w", i, err)
		}
		sum.Events++
		switch e.Ph {
		case "M", "C", "X", "I":
			continue // metadata/counter/complete: no stack discipline
		case "B", "E", "i":
		default:
			return sum, fmt.Errorf("tracecheck: event %d: unsupported phase %q", i, e.Ph)
		}
		if e.TS == nil {
			return sum, fmt.Errorf("tracecheck: event %d (%s %q): missing ts", i, e.Ph, e.Name)
		}
		if *e.TS < 0 {
			return sum, fmt.Errorf("tracecheck: event %d (%s %q): negative ts %v", i, e.Ph, e.Name, *e.TS)
		}
		k := laneKey{e.Pid, e.Tid}
		if seen[k] && *e.TS < lastTS[k] {
			return sum, fmt.Errorf("tracecheck: event %d (%s %q): ts %v < previous %v on pid=%d tid=%d",
				i, e.Ph, e.Name, *e.TS, lastTS[k], e.Pid, e.Tid)
		}
		seen[k] = true
		lastTS[k] = *e.TS

		switch e.Ph {
		case "B":
			if e.Name == "" {
				return sum, fmt.Errorf("tracecheck: event %d: B with empty name", i)
			}
			stacks[k] = append(stacks[k], openSpan{name: e.Name, idx: i})
			sum.Names[e.Name]++
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return sum, fmt.Errorf("tracecheck: event %d: E %q with empty stack on pid=%d tid=%d", i, e.Name, e.Pid, e.Tid)
			}
			top := st[len(st)-1]
			if e.Name != "" && e.Name != top.name {
				return sum, fmt.Errorf("tracecheck: event %d: E %q does not match open B %q (event %d)", i, e.Name, top.name, top.idx)
			}
			stacks[k] = st[:len(st)-1]
			sum.Spans++
		case "i":
			sum.Names[e.Name]++
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return sum, fmt.Errorf("tracecheck: %d unclosed span(s) on pid=%d tid=%d; first open: %q (event %d)",
				len(st), k.pid, k.tid, st[len(st)-1].name, st[len(st)-1].idx)
		}
	}
	sum.Tracks = len(seen)
	return sum, nil
}
