package obs

// Flight recorder: a bounded, race-safe ring of recent lifecycle and
// admission events (sheds, panics, deadline expiries, drain
// transitions). Metrics tell you how often something happens; the
// flight recorder tells you what happened *just now*, in order, with
// job ids — so a post-mortem does not depend on a scrape having
// landed in the right 10 seconds. The ring overwrites oldest-first
// and never blocks or allocates per event beyond the detail strings
// the caller already built.
//
// A nil *FlightRecorder no-ops on every method (the disabled path,
// zero allocations), matching the Tracer/Collector contract.

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// FlightEvent is one recorded event. Seq is a global 1-based sequence
// number, so gaps reveal overwritten history.
type FlightEvent struct {
	Seq    int64     `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Job    string    `json:"job,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// FlightRecorder is a fixed-capacity ring of FlightEvents.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []FlightEvent
	seq   int64
	clock func() time.Time
}

// NewFlightRecorder builds a recorder holding the last cap events.
// clock may be nil (time.Now) or injected for deterministic tests.
func NewFlightRecorder(cap int, clock func() time.Time) *FlightRecorder {
	if cap <= 0 {
		cap = 256
	}
	if clock == nil {
		clock = time.Now
	}
	return &FlightRecorder{buf: make([]FlightEvent, 0, cap), clock: clock}
}

// Record appends one event, evicting the oldest when full.
func (f *FlightRecorder) Record(kind, job, detail string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	ev := FlightEvent{Seq: f.seq, Time: f.clock(), Kind: kind, Job: job, Detail: detail}
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[int((f.seq-1)%int64(cap(f.buf)))] = ev
	}
	f.mu.Unlock()
}

// Events returns the retained events oldest-first. Nil receiver
// returns nil.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.buf))
	if len(f.buf) < cap(f.buf) {
		out = append(out, f.buf...)
		return out
	}
	// Ring is full: oldest entry sits just past the newest.
	head := int(f.seq % int64(cap(f.buf)))
	out = append(out, f.buf[head:]...)
	out = append(out, f.buf[:head]...)
	return out
}

// flightDump is the /debug/events JSON shape.
type flightDump struct {
	Cap     int           `json:"cap"`
	Total   int64         `json:"total"`   // events ever recorded
	Dropped int64         `json:"dropped"` // overwritten by the ring
	Events  []FlightEvent `json:"events"`
}

// WriteJSON writes the retained events (oldest-first) plus ring
// metadata as one JSON document.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	d := flightDump{Events: []FlightEvent{}}
	if f != nil {
		d.Events = f.Events()
		f.mu.Lock()
		d.Cap = cap(f.buf)
		d.Total = f.seq
		f.mu.Unlock()
		d.Dropped = d.Total - int64(len(d.Events))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// WriteText dumps the retained events in a human-oriented form (the
// panic/SIGQUIT stderr path).
func (f *FlightRecorder) WriteText(w io.Writer) {
	if f == nil {
		return
	}
	evs := f.Events()
	f.mu.Lock()
	total, capN := f.seq, cap(f.buf)
	f.mu.Unlock()
	fmt.Fprintf(w, "flight recorder: %d of %d events retained (cap %d)\n", len(evs), total, capN)
	for _, ev := range evs {
		fmt.Fprintf(w, "  %6d %s %-16s %-12s %s\n",
			ev.Seq, ev.Time.Format(time.RFC3339Nano), ev.Kind, ev.Job, ev.Detail)
	}
}
