// Package obs is the observability layer of the evaluation pipeline:
// named wall-clock phase timers and monotonic counters that the
// decomposition pipeline (partition, tree induction), the parallel
// engine (global search, local search), and the measurement harness
// (metric evaluation) report into, exported as a machine-readable JSON
// report and a human table.
//
// A nil *Collector is valid everywhere and records nothing, so hot
// paths thread a collector through unconditionally and pay one nil
// check when observability is off. All methods are safe for concurrent
// use; the engine's workers and the harness's measurement legs report
// into one collector from many goroutines.
//
// Canonical phase names used across the repo (the per-phase breakdown
// of one end-to-end experiment):
//
//	partition       multilevel multi-constraint partitioning (core step 2)
//	tree_induction  guidance + descriptor decision trees (core steps 3, 5)
//	global_search   engine phase 2: tree filtering + element shipping
//	local_search    engine phase 3: narrow-phase detection
//	metric_eval     harness Section 5.1 metric computation
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"
	"time"
)

// Collector accumulates phase timings, counters, gauges, and
// histograms. The zero value is ready to use; so is nil (every method
// no-ops).
type Collector struct {
	mu       sync.Mutex
	timers   map[string]*timer
	counters map[string]int64
	maxes    map[string]int64
	hists    map[string]*hist
}

type timer struct {
	count int64
	total time.Duration
	max   time.Duration
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// Start begins timing one occurrence of the named phase and returns
// the function that stops it. Usage: defer c.Start("partition")().
func (c *Collector) Start(name string) func() {
	if c == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { c.Observe(name, time.Since(t0)) } //lint:ignore metricname forwarding the caller's name; Start call sites are checked
}

// Observe records one completed occurrence of the named phase. The
// duration also feeds a histogram of the same name (in nanoseconds),
// so every phase timer reports p50/p90/p99 latency for free.
func (c *Collector) Observe(name string, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.timers == nil {
		c.timers = map[string]*timer{}
	}
	t := c.timers[name]
	if t == nil {
		t = &timer{}
		c.timers[name] = t
	}
	t.count++
	t.total += d
	if d > t.max {
		t.max = d
	}
	c.histLocked(name, int64(d))
	c.mu.Unlock()
}

// Add increments the named counter by delta.
func (c *Collector) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.counters == nil {
		c.counters = map[string]int64{}
	}
	c.counters[name] += delta
	c.mu.Unlock()
}

// Max records the maximum of v seen under the named gauge (e.g. the
// peak number of busy partitioner workers). Gauges are reported in
// Report.Gauges, separate from Counters, so a counter and a gauge
// sharing a name can never collide into two same-named entries.
func (c *Collector) Max(name string, v int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.maxes == nil {
		c.maxes = map[string]int64{}
	}
	if v > c.maxes[name] {
		c.maxes[name] = v
	}
	c.mu.Unlock()
}

// PhaseStat is one phase's aggregate in a Report. Count is the number
// of observations (for phases run once per worker or once per
// snapshot, the fan-out); Total sums wall-clock across observations,
// so for phases timed inside concurrent workers it is aggregate busy
// time, not elapsed time.
type PhaseStat struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
	AvgNS   int64  `json:"avg_ns"`
	MaxNS   int64  `json:"max_ns"`
}

// CounterStat is one counter's value in a Report.
type CounterStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Report is the exportable snapshot of a collector. Every slice is
// sorted by name so reports are deterministic and diffable. Gauges
// (Collector.Max) are reported separately from Counters
// (Collector.Add): the two namespaces are independent, so a counter
// and a gauge sharing a name stay two distinct, unambiguous entries.
type Report struct {
	Phases   []PhaseStat   `json:"phases"`
	Counters []CounterStat `json:"counters"`
	Gauges   []CounterStat `json:"gauges,omitempty"`
	Hists    []HistStat    `json:"hists,omitempty"`
}

// Report snapshots the collector. Safe to call while recording
// continues; the snapshot is consistent.
func (c *Collector) Report() Report {
	var r Report
	if c == nil {
		return r
	}
	c.mu.Lock()
	for name, t := range c.timers {
		avg := int64(0)
		if t.count > 0 {
			avg = int64(t.total) / t.count
		}
		r.Phases = append(r.Phases, PhaseStat{
			Name: name, Count: t.count,
			TotalNS: int64(t.total), AvgNS: avg, MaxNS: int64(t.max),
		})
	}
	for name, v := range c.counters {
		r.Counters = append(r.Counters, CounterStat{Name: name, Value: v})
	}
	for name, v := range c.maxes {
		r.Gauges = append(r.Gauges, CounterStat{Name: name, Value: v})
	}
	for name, h := range c.hists {
		r.Hists = append(r.Hists, h.stat(name))
	}
	c.mu.Unlock()
	sort.Slice(r.Phases, func(i, j int) bool { return r.Phases[i].Name < r.Phases[j].Name })
	sort.Slice(r.Counters, func(i, j int) bool { return r.Counters[i].Name < r.Counters[j].Name })
	sort.Slice(r.Gauges, func(i, j int) bool { return r.Gauges[i].Name < r.Gauges[j].Name })
	sort.Slice(r.Hists, func(i, j int) bool { return r.Hists[i].Name < r.Hists[j].Name })
	return r
}

// Merge folds a previously exported report back into the collector:
// phase counts/totals and counters add, gauges and phase maxima take
// the larger value, histogram buckets add exactly (bucket indexes are
// part of the schema). It is the resume path for checkpointed sweeps —
// a merged collector reports cumulative numbers, not
// post-resume-only.
func (c *Collector) Merge(r Report) error {
	if c == nil {
		return nil
	}
	for _, p := range r.Phases {
		c.mu.Lock()
		if c.timers == nil {
			c.timers = map[string]*timer{}
		}
		t := c.timers[p.Name]
		if t == nil {
			t = &timer{}
			c.timers[p.Name] = t
		}
		t.count += p.Count
		t.total += time.Duration(p.TotalNS)
		if m := time.Duration(p.MaxNS); m > t.max {
			t.max = m
		}
		c.mu.Unlock()
	}
	for _, ct := range r.Counters {
		c.Add(ct.Name, ct.Value) //lint:ignore metricname merging an existing report; the originating call sites are checked
	}
	for _, g := range r.Gauges {
		c.Max(g.Name, g.Value) //lint:ignore metricname merging an existing report; the originating call sites are checked
	}
	for _, hs := range r.Hists {
		c.mu.Lock()
		if c.hists == nil {
			c.hists = map[string]*hist{}
		}
		h := c.hists[hs.Name]
		if h == nil {
			h = &hist{}
			c.hists[hs.Name] = h
		}
		err := h.merge(hs)
		c.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the report as indented JSON (the schema documented
// in README.md: {"phases":[{name,count,total_ns,avg_ns,max_ns}],
// "counters":[{name,value}], "gauges":[{name,value}],
// "hists":[{name,count,sum,min,max,p50,p90,p99,buckets}]}).
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the report for humans, including a
// sparkline-style rendering of each histogram's distribution.
// Histograms named after a phase hold nanoseconds and are rendered as
// durations; all others are raw values.
func (r Report) WriteTable(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(r.Phases) > 0 {
		fmt.Fprintln(tw, "phase\tcount\ttotal\tavg\tmax")
		for _, p := range r.Phases {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n", p.Name, p.Count,
				time.Duration(p.TotalNS).Round(time.Microsecond),
				time.Duration(p.AvgNS).Round(time.Microsecond),
				time.Duration(p.MaxNS).Round(time.Microsecond))
		}
	}
	if len(r.Counters) > 0 {
		fmt.Fprintln(tw, "counter\tvalue\t\t\t")
		for _, c := range r.Counters {
			fmt.Fprintf(tw, "%s\t%d\t\t\t\n", c.Name, c.Value)
		}
	}
	if len(r.Gauges) > 0 {
		fmt.Fprintln(tw, "gauge\tvalue\t\t\t")
		for _, g := range r.Gauges {
			fmt.Fprintf(tw, "%s\t%d\t\t\t\n", g.Name, g.Value)
		}
	}
	if len(r.Hists) > 0 {
		isPhase := make(map[string]bool, len(r.Phases))
		for _, p := range r.Phases {
			isPhase[p.Name] = true
		}
		fmtVal := func(name string, v int64) string {
			if isPhase[name] {
				return time.Duration(v).Round(time.Microsecond).String()
			}
			return fmt.Sprintf("%d", v)
		}
		fmt.Fprintln(tw, "histogram\tp50\tp90\tp99\tdist")
		for _, h := range r.Hists {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", h.Name,
				fmtVal(h.Name, h.P50), fmtVal(h.Name, h.P90), fmtVal(h.Name, h.P99),
				sparkline(h, 16))
		}
	}
	// Human-readable best-effort output, matching the fmt.Fprintf calls
	// above; a broken terminal is not an actionable error here.
	_ = tw.Flush()
}
