package obs

// Structured logging for the serving layer: one constructor so every
// binary emits the same slog JSON shape, with an injectable clock so
// tests can assert exact output. Timestamps are rewritten through the
// clock at handle time (slog stamps records with time.Now before the
// handler runs), which makes a fixed fake clock produce byte-stable
// log lines.

import (
	"io"
	"log/slog"
	"time"
)

// NewLogger returns a JSON slog logger writing to w. clock may be nil
// (real time) or injected; a fixed clock yields deterministic output
// for tests.
func NewLogger(w io.Writer, clock func() time.Time) *slog.Logger {
	opts := &slog.HandlerOptions{}
	if clock != nil {
		opts.ReplaceAttr = func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Time(slog.TimeKey, clock())
			}
			return a
		}
	}
	return slog.New(slog.NewJSONHandler(w, opts))
}
