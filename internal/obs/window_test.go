package obs

import (
	"testing"
	"time"
)

// fakeClock is a settable clock for deterministic window tests.
type fakeClock struct{ now time.Time }

func (f *fakeClock) time() time.Time         { return f.now }
func (f *fakeClock) advance(d time.Duration) { f.now = f.now.Add(d) }

func newWindowForTest(objective int64) (*WindowedHist, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	return NewWindowedHist(10*time.Second, 6, objective, clk.time), clk
}

// TestWindowedHistRolls checks the core property the cumulative
// histograms lack: observations age out after the window passes.
func TestWindowedHistRolls(t *testing.T) {
	w, clk := newWindowForTest(0)
	w.Observe(100)
	w.Observe(200)
	clk.advance(10 * time.Second) // next slot
	w.Observe(400)

	st := w.Snapshot()
	if st.Count != 3 || st.Sum != 700 || st.Min != 100 || st.Max != 400 {
		t.Fatalf("fresh window stat = %+v, want count 3 sum 700 min 100 max 400", st)
	}
	if st.WindowNS != int64(60*time.Second) || st.SlotNS != int64(10*time.Second) {
		t.Fatalf("window geometry = %+v", st)
	}
	if st.P50 < 100 || st.P99 < st.P50 {
		t.Fatalf("quantiles inconsistent: %+v", st)
	}

	// 50s later the first slot (2 obs) has aged out, the second (1
	// obs, epoch now-5) is the oldest still inside the 6-slot window.
	clk.advance(50 * time.Second)
	st = w.Snapshot()
	if st.Count != 1 || st.Sum != 400 {
		t.Fatalf("after 50s stat = %+v, want only the 400 observation", st)
	}

	// One more slot and the window is empty.
	clk.advance(10 * time.Second)
	if st = w.Snapshot(); st.Count != 0 || st.P99 != 0 {
		t.Fatalf("after 60s stat = %+v, want empty", st)
	}
}

// TestWindowedHistSlotReuse checks lazy invalidation: when the clock
// wraps all the way around the ring, a reused slot must not leak its
// previous epoch's counts.
func TestWindowedHistSlotReuse(t *testing.T) {
	w, clk := newWindowForTest(0)
	for i := 0; i < 10; i++ {
		w.Observe(int64(1000 + i))
	}
	clk.advance(60 * time.Second) // exactly one full ring revolution: same slot index
	w.Observe(7)
	st := w.Snapshot()
	if st.Count != 1 || st.Sum != 7 {
		t.Fatalf("reused slot stat = %+v, want the single fresh observation", st)
	}
}

// TestWindowedHistSLO checks the error-budget ledger: per-window
// violation counts age out, cumulative burn counters do not.
func TestWindowedHistSLO(t *testing.T) {
	w, clk := newWindowForTest(100)
	w.Observe(50)
	w.Observe(150)
	w.Observe(101)
	st := w.Snapshot()
	if st.ObjectiveNS != 100 {
		t.Fatalf("objective = %d, want 100", st.ObjectiveNS)
	}
	if st.WindowViolations != 2 || st.Violations != 2 || st.Observed != 3 {
		t.Fatalf("SLO stat = %+v, want 2 window / 2 total violations of 3 observed", st)
	}
	clk.advance(2 * time.Minute)
	st = w.Snapshot()
	if st.WindowViolations != 0 {
		t.Fatalf("window violations survived the window: %+v", st)
	}
	if st.Violations != 2 || st.Observed != 3 {
		t.Fatalf("cumulative SLO ledger reset: %+v", st)
	}
}

// TestWindowedHistDefaults exercises the nil-clock and zero-geometry
// defaults.
func TestWindowedHistDefaults(t *testing.T) {
	w := NewWindowedHist(0, 0, 0, nil)
	w.Observe(5)
	if st := w.Snapshot(); st.Count != 1 || st.SlotNS != int64(10*time.Second) {
		t.Fatalf("default window stat = %+v", st)
	}
}

// TestWindowedHistDisabledZeroAlloc pins the disabled path: a nil
// *WindowedHist (and nil *FlightRecorder) must not allocate, matching
// TestDisabledPathsZeroAlloc for the tracer and collector.
func TestWindowedHistDisabledZeroAlloc(t *testing.T) {
	var w *WindowedHist
	var f *FlightRecorder
	paths := map[string]func(){
		"window observe":  func() { w.Observe(42) },
		"window snapshot": func() { _ = w.Snapshot() },
		"flight record":   func() { f.Record("shed", "job-000001", "queue full") },
		"flight events":   func() { _ = f.Events() },
	}
	for name, fn := range paths {
		if avg := testing.AllocsPerRun(200, fn); avg != 0 {
			t.Errorf("%s: %v allocs/op on the disabled path, want 0", name, avg)
		}
	}
}

// TestWindowedHistConcurrent exercises the lock under -race.
func TestWindowedHistConcurrent(t *testing.T) {
	w := NewWindowedHist(time.Second, 4, 10, nil)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 500; i++ {
				w.Observe(int64(g*1000 + i))
				if i%50 == 0 {
					_ = w.Snapshot()
				}
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if st := w.Snapshot(); st.Observed != 2000 {
		t.Fatalf("observed %d, want 2000", st.Observed)
	}
}
