package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestFlightRecorderRing checks eviction order and the seq-gap
// contract: once the ring wraps, Events() is still oldest-first and
// the dropped count is visible in the JSON dump.
func TestFlightRecorderRing(t *testing.T) {
	clk := &fakeClock{now: time.Unix(42, 0)}
	f := NewFlightRecorder(4, clk.time)
	kinds := []string{"shed", "panic", "deadline", "drain_begin", "drained", "drain_end"}
	for i, k := range kinds {
		f.Record(k, "job-00000"+string(rune('0'+i)), "detail")
		clk.advance(time.Second)
	}

	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := int64(i + 3) // events 1,2 were evicted
		if ev.Seq != wantSeq || ev.Kind != kinds[wantSeq-1] {
			t.Fatalf("event %d = %+v, want seq %d kind %s", i, ev, wantSeq, kinds[wantSeq-1])
		}
	}
	if !evs[0].Time.Before(evs[3].Time) {
		t.Fatalf("events not in time order: %+v", evs)
	}

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var dump struct {
		Cap     int           `json:"cap"`
		Total   int64         `json:"total"`
		Dropped int64         `json:"dropped"`
		Events  []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump not JSON: %v\n%s", err, buf.String())
	}
	if dump.Cap != 4 || dump.Total != 6 || dump.Dropped != 2 || len(dump.Events) != 4 {
		t.Fatalf("dump metadata = cap %d total %d dropped %d events %d",
			dump.Cap, dump.Total, dump.Dropped, len(dump.Events))
	}
}

// TestFlightRecorderPartial covers the not-yet-full ring and the
// stderr text dump.
func TestFlightRecorderPartial(t *testing.T) {
	f := NewFlightRecorder(8, (&fakeClock{now: time.Unix(7, 0)}).time)
	f.Record("shed", "job-000000", "queue full (kind=graph)")
	f.Record("panic", "job-000001", "boom")

	evs := f.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("events = %+v", evs)
	}
	var sb strings.Builder
	f.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"2 of 2 events retained (cap 8)", "shed", "queue full", "panic", "boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}

// TestFlightRecorderNil: nil recorders dump an empty but valid JSON
// document (the /debug/events handler relies on this).
func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record("shed", "", "")
	if evs := f.Events(); evs != nil {
		t.Fatalf("nil recorder returned events: %+v", evs)
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on nil: %v", err)
	}
	if !strings.Contains(buf.String(), `"events": []`) {
		t.Fatalf("nil dump = %s", buf.String())
	}
	f.WriteText(&buf) // must not panic
}

// TestFlightRecorderConcurrent exercises the ring under -race.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32, nil)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 300; i++ {
				f.Record("shed", "job", "detail")
				if i%37 == 0 {
					_ = f.Events()
				}
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	evs := f.Events()
	if len(evs) != 32 {
		t.Fatalf("retained %d, want 32", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
