package obs

import (
	"testing"
)

func TestHistBucketRoundTrip(t *testing.T) {
	// Every probe value must land in a bucket whose bounds contain it.
	probes := []int64{-5, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 100,
		1000, 1 << 20, (1 << 40) + 12345, 1<<62 + 7}
	for _, v := range probes {
		b := histBucket(v)
		lo, hi := histBounds(b)
		if b == 0 {
			if v >= 1 {
				t.Errorf("v=%d landed in bucket 0", v)
			}
			continue
		}
		if v < lo || v >= hi {
			t.Errorf("v=%d -> bucket %d [%d,%d) does not contain it", v, b, lo, hi)
		}
	}
	// Bucket indexes are monotonic in v and bounds tile without gaps.
	prev := -1
	for b := 1; b < numHistBuckets; b++ {
		lo, hi := histBounds(b)
		if hi <= lo {
			t.Fatalf("bucket %d: empty range [%d,%d)", b, lo, hi)
		}
		if prevLo, prevHi := histBounds(b - 1); b > 1 && lo != prevHi {
			t.Fatalf("gap between bucket %d [%d,%d) and %d [%d,%d)", b-1, prevLo, prevHi, b, lo, hi)
		}
		if got := histBucket(lo); got != b {
			t.Fatalf("histBucket(lo=%d) = %d, want %d", lo, got, b)
		}
		_ = prev
	}
}

func TestHistQuantiles(t *testing.T) {
	var h hist
	for v := int64(1); v <= 1000; v++ {
		h.observe(v)
	}
	if h.count != 1000 || h.min != 1 || h.max != 1000 {
		t.Fatalf("stats: count=%d min=%d max=%d", h.count, h.min, h.max)
	}
	// Bucket quantiles overshoot by at most ~25% (one sub-bucket width).
	checks := []struct {
		q    float64
		want int64
	}{{0.50, 500}, {0.90, 900}, {0.99, 990}}
	for _, c := range checks {
		got := h.quantile(c.q)
		if got < c.want || float64(got) > float64(c.want)*1.30 {
			t.Errorf("q%.2f = %d, want in [%d, %d]", c.q, got, c.want, int64(float64(c.want)*1.30))
		}
	}
	if got := h.quantile(1.0); got != 1000 {
		t.Errorf("q1.00 = %d, want clamped to max 1000", got)
	}

	var single hist
	single.observe(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := single.quantile(q); got != 7 {
			t.Errorf("single-sample q%.2f = %d, want 7", q, got)
		}
	}
}

func TestHistMergeExact(t *testing.T) {
	// Merging a report into a fresh collector must reproduce the
	// original distribution exactly — the checkpoint-resume invariant.
	a := New()
	for v := int64(1); v <= 500; v += 3 {
		a.Hist("msg_items", v)
	}
	a.Hist("msg_items", 1<<30)

	b := New()
	for v := int64(2); v <= 500; v += 5 {
		b.Hist("msg_items", v)
	}

	merged := New()
	if err := merged.Merge(a.Report()); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(b.Report()); err != nil {
		t.Fatal(err)
	}

	// Reference: one collector fed both streams directly.
	ref := New()
	for v := int64(1); v <= 500; v += 3 {
		ref.Hist("msg_items", v)
	}
	ref.Hist("msg_items", 1<<30)
	for v := int64(2); v <= 500; v += 5 {
		ref.Hist("msg_items", v)
	}

	got, want := merged.Report().Hists, ref.Report().Hists
	if len(got) != 1 || len(want) != 1 {
		t.Fatalf("hists: got %d, want 1", len(got))
	}
	g, w := got[0], want[0]
	if g.Count != w.Count || g.Sum != w.Sum || g.Min != w.Min || g.Max != w.Max ||
		g.P50 != w.P50 || g.P90 != w.P90 || g.P99 != w.P99 {
		t.Errorf("merged stat mismatch:\n got %+v\nwant %+v", g, w)
	}
	if len(g.Buckets) != len(w.Buckets) {
		t.Fatalf("bucket count: got %d, want %d", len(g.Buckets), len(w.Buckets))
	}
	for i := range g.Buckets {
		if g.Buckets[i] != w.Buckets[i] {
			t.Errorf("bucket %d: got %+v, want %+v", i, g.Buckets[i], w.Buckets[i])
		}
	}
}

func TestHistMergeRejectsBadIndex(t *testing.T) {
	c := New()
	err := c.Merge(Report{Hists: []HistStat{{
		Name: "bad", Count: 1, Buckets: []HistBucket{{Index: numHistBuckets + 5, Count: 1}},
	}}})
	if err == nil {
		t.Fatal("out-of-range bucket index accepted")
	}
}

func TestObserveFeedsHistogram(t *testing.T) {
	c := New()
	c.Observe("global_search", 1000)
	c.Observe("global_search", 2000)
	r := c.Report()
	if len(r.Hists) != 1 || r.Hists[0].Name != "global_search" {
		t.Fatalf("phase timer did not feed a histogram: %+v", r.Hists)
	}
	h := r.Hists[0]
	if h.Count != 2 || h.Min != 1000 || h.Max != 2000 {
		t.Errorf("hist stat: %+v", h)
	}
	if h.P50 < 1000 || h.P99 < 1000 {
		t.Errorf("quantiles: %+v", h)
	}
}

func TestSparkline(t *testing.T) {
	c := New()
	for i := int64(0); i < 100; i++ {
		c.Hist("sizes", 10+i%50)
	}
	st := c.Report().Hists[0]
	line := sparkline(st, 16)
	if line == "" || len([]rune(line)) > 16 {
		t.Errorf("sparkline = %q (%d runes)", line, len([]rune(line)))
	}
	if sparkline(HistStat{}, 16) != "" {
		t.Error("empty histogram rendered a sparkline")
	}
}
