package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestNewLoggerDeterministic: with an injected fixed clock the JSON
// log line is byte-stable, which is what lets server tests assert
// lifecycle output exactly.
func TestNewLoggerDeterministic(t *testing.T) {
	clk := func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	var buf bytes.Buffer
	log := NewLogger(&buf, clk)
	log.Info("job done", "job", "job-000001", "wall_ms", 12)

	want := `{"time":"2026-08-08T12:00:00Z","level":"INFO","msg":"job done","job":"job-000001","wall_ms":12}` + "\n"
	if buf.String() != want {
		t.Fatalf("log line:\n got %q\nwant %q", buf.String(), want)
	}

	buf.Reset()
	log.Error("listen failed", "err", "address in use")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("error line not JSON: %v\n%s", err, buf.String())
	}
	if rec["level"] != "ERROR" || rec["err"] != "address in use" {
		t.Fatalf("error record = %v", rec)
	}
}

// TestNewLoggerRealClock: without an injected clock the handler still
// emits a parseable timestamp.
func TestNewLoggerRealClock(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, nil).Info("up")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	ts, ok := rec["time"].(string)
	if !ok {
		t.Fatalf("no time field: %v", rec)
	}
	if _, err := time.Parse(time.RFC3339Nano, ts); err != nil {
		t.Fatalf("unparseable time %q: %v", ts, err)
	}
}
