package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Start("x")()
	c.Observe("x", time.Second)
	c.Add("n", 3)
	r := c.Report()
	if len(r.Phases) != 0 || len(r.Counters) != 0 {
		t.Errorf("nil collector recorded something: %+v", r)
	}
}

func TestObserveAndAdd(t *testing.T) {
	c := New()
	c.Observe("phase", 2*time.Millisecond)
	c.Observe("phase", 4*time.Millisecond)
	c.Add("widgets", 5)
	c.Add("widgets", 7)
	r := c.Report()
	if len(r.Phases) != 1 || len(r.Counters) != 1 {
		t.Fatalf("report: %+v", r)
	}
	p := r.Phases[0]
	if p.Name != "phase" || p.Count != 2 {
		t.Errorf("phase: %+v", p)
	}
	if p.TotalNS != int64(6*time.Millisecond) || p.MaxNS != int64(4*time.Millisecond) {
		t.Errorf("timings: %+v", p)
	}
	if p.AvgNS != int64(3*time.Millisecond) {
		t.Errorf("avg: %d", p.AvgNS)
	}
	if r.Counters[0].Value != 12 {
		t.Errorf("counter: %+v", r.Counters[0])
	}
}

func TestStartStop(t *testing.T) {
	c := New()
	stop := c.Start("work")
	time.Sleep(time.Millisecond)
	stop()
	r := c.Report()
	if len(r.Phases) != 1 || r.Phases[0].TotalNS <= 0 {
		t.Errorf("timer did not record: %+v", r)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Observe("p", time.Microsecond)
				c.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	r := c.Report()
	if r.Phases[0].Count != 800 || r.Counters[0].Value != 800 {
		t.Errorf("lost updates: %+v", r)
	}
}

func TestReportSortedAndJSONSchema(t *testing.T) {
	c := New()
	c.Observe("zeta", time.Millisecond)
	c.Observe("alpha", time.Millisecond)
	c.Add("z_count", 1)
	c.Add("a_count", 2)
	r := c.Report()
	if r.Phases[0].Name != "alpha" || r.Phases[1].Name != "zeta" {
		t.Errorf("phases unsorted: %+v", r.Phases)
	}
	if r.Counters[0].Name != "a_count" {
		t.Errorf("counters unsorted: %+v", r.Counters)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Phases []struct {
			Name    string `json:"name"`
			Count   int64  `json:"count"`
			TotalNS int64  `json:"total_ns"`
			AvgNS   int64  `json:"avg_ns"`
			MaxNS   int64  `json:"max_ns"`
		} `json:"phases"`
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("schema: %v\n%s", err, buf.String())
	}
	if len(decoded.Phases) != 2 || decoded.Phases[0].Name != "alpha" || decoded.Counters[1].Value != 1 {
		t.Errorf("decoded: %+v", decoded)
	}
}

func TestWriteTable(t *testing.T) {
	c := New()
	c.Observe("partition", 3*time.Millisecond)
	c.Add("pairs", 42)
	var buf bytes.Buffer
	c.Report().WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"phase", "partition", "counter", "pairs", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestGaugeCounterNoCollision: a counter and a gauge sharing a name
// must surface as two distinct entries (Counters vs Gauges), never as
// two ambiguous same-named rows in one list.
func TestGaugeCounterNoCollision(t *testing.T) {
	c := New()
	c.Add("workers", 3)
	c.Max("workers", 8)
	r := c.Report()
	if len(r.Counters) != 1 || r.Counters[0].Name != "workers" || r.Counters[0].Value != 3 {
		t.Errorf("counters: %+v", r.Counters)
	}
	if len(r.Gauges) != 1 || r.Gauges[0].Name != "workers" || r.Gauges[0].Value != 8 {
		t.Errorf("gauges: %+v", r.Gauges)
	}
}

// TestConcurrentAllRecorders hammers every recording entry point from
// many goroutines; run under -race this is the collector's
// thread-safety gate.
func TestConcurrentAllRecorders(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Start("timed")()
				c.Observe("phase", time.Duration(i+1))
				c.Add("count", 1)
				c.Max("peak", int64(g*1000+i))
				c.Hist("dist", int64(i))
				if i%50 == 0 {
					_ = c.Report() // snapshots race recording
				}
			}
		}(g)
	}
	wg.Wait()
	r := c.Report()
	if r.Phases[0].Count != 1600 { // "phase": 8*200
		t.Errorf("lost phase updates: %+v", r.Phases)
	}
	var dist HistStat
	for _, h := range r.Hists {
		if h.Name == "dist" {
			dist = h
		}
	}
	if dist.Count != 1600 {
		t.Errorf("lost hist updates: %+v", dist)
	}
	if len(r.Gauges) != 1 || r.Gauges[0].Value != 7199 {
		t.Errorf("gauge: %+v", r.Gauges)
	}
}

// TestReportJSONDeterministic: identical recorded state must serialize
// to identical bytes regardless of insertion order — reports are
// diffed and checkpointed, so byte stability is part of the contract.
func TestReportJSONDeterministic(t *testing.T) {
	build := func(order []int) []byte {
		c := New()
		names := []string{"zeta", "alpha", "mid"}
		for _, i := range order {
			c.Observe(names[i], time.Duration(10*(i+1)))
			c.Add("c_"+names[i], int64(i+1))
			c.Max("g_"+names[i], int64(i+10))
			c.Hist("h_"+names[i], int64(i+100))
		}
		var buf bytes.Buffer
		if err := c.Report().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 1, 0})
	if !bytes.Equal(a, b) {
		t.Errorf("insertion order leaked into JSON:\n%s\nvs\n%s", a, b)
	}
}

// TestMergeCumulative: merging a saved report then recording more must
// report cumulative totals — the -resume path's obs contract.
func TestMergeCumulative(t *testing.T) {
	before := New()
	before.Observe("partition", 100)
	before.Add("checkpoint_writes", 4)
	before.Max("rb_workers", 6)

	after := New()
	if err := after.Merge(before.Report()); err != nil {
		t.Fatal(err)
	}
	after.Observe("partition", 300)
	after.Add("checkpoint_writes", 2)
	after.Max("rb_workers", 3)

	r := after.Report()
	if r.Phases[0].Count != 2 || r.Phases[0].TotalNS != 400 || r.Phases[0].MaxNS != 300 {
		t.Errorf("phases not cumulative: %+v", r.Phases[0])
	}
	if r.Counters[0].Value != 6 {
		t.Errorf("counter not cumulative: %+v", r.Counters[0])
	}
	if r.Gauges[0].Value != 6 {
		t.Errorf("gauge lost pre-resume max: %+v", r.Gauges[0])
	}
}
