package obs

// Fixed log-spaced-bucket histograms for latency and size
// distributions. Buckets are octaves of 2 subdivided into 4
// sub-buckets (two significant bits, ~25% relative resolution), so
// recording is a few shifts plus one array increment — no allocation
// after the histogram exists — and the layout is identical on every
// platform, which keeps reports byte-stable. Quantiles are reported
// as the upper bound of the bucket holding the target rank
// (deterministic, pessimistic by at most one bucket width).

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// numHistBuckets covers all of int64: bucket 0 is v <= 0, buckets
// 1..3 are exact small values, and 4 sub-buckets per octave follow
// (bit lengths 3..63, i.e. 61 octaves).
const numHistBuckets = 4 + 4*61

// hist is the in-collector histogram state.
type hist struct {
	count, sum int64
	min, max   int64
	buckets    [numHistBuckets]int64
}

// histBucket returns the bucket index for v.
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	if v < 4 {
		return int(v)
	}
	n := bits.Len64(uint64(v)) // >= 3
	sub := (v >> (n - 3)) & 3
	b := 4 + 4*(n-3) + int(sub)
	if b >= numHistBuckets {
		return numHistBuckets - 1
	}
	return b
}

// histBounds returns bucket b's value range [lo, hi): values v with
// lo <= v < hi land in b. Bucket 0 is (-inf, 1).
func histBounds(b int) (lo, hi int64) {
	switch {
	case b <= 0:
		return 0, 1
	case b < 4:
		return int64(b), int64(b) + 1
	}
	oct := (b - 4) / 4 // octave: values in [2^(oct+2), 2^(oct+3))
	sub := int64((b - 4) % 4)
	width := int64(1) << oct
	lo = (4 + sub) * width
	hi = lo + width
	if hi < lo { // top bucket: lo+width overflows int64
		hi = math.MaxInt64
	}
	return lo, hi
}

func (h *hist) observe(v int64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[histBucket(v)]++
}

// quantile returns the upper bound of the bucket holding the q-th
// quantile (0 <= q <= 1), clamped to the observed max.
func (h *hist) quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count-1))
	var seen int64
	for b := 0; b < numHistBuckets; b++ {
		seen += h.buckets[b]
		if seen > rank {
			_, hi := histBounds(b)
			v := hi - 1
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// HistBucket is one non-empty histogram bucket in a Report. Index is
// the internal bucket index (stable across platforms and versions of
// the fixed layout), Lo/Hi its value range [Lo, Hi), Count the
// observations in it.
type HistBucket struct {
	Index int   `json:"i"`
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"n"`
}

// HistStat is one histogram's aggregate in a Report. Values are
// unit-agnostic int64s; histograms fed by phase timers hold
// nanoseconds. P50/P90/P99 are bucket upper bounds (<= one bucket
// width above the true quantile).
type HistStat struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	P50     int64        `json:"p50"`
	P90     int64        `json:"p90"`
	P99     int64        `json:"p99"`
	Buckets []HistBucket `json:"buckets"`
}

// stat snapshots the histogram (caller holds the collector lock).
func (h *hist) stat(name string) HistStat {
	st := HistStat{
		Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		P50: h.quantile(0.50), P90: h.quantile(0.90), P99: h.quantile(0.99),
	}
	for b := 0; b < numHistBuckets; b++ {
		if n := h.buckets[b]; n > 0 {
			lo, hi := histBounds(b)
			st.Buckets = append(st.Buckets, HistBucket{Index: b, Lo: lo, Hi: hi, Count: n})
		}
	}
	return st
}

// Hist records one observation of the named distribution (a message
// size, a per-rank pair count, ...). Phase timers feed their
// durations (in nanoseconds) into a histogram of the same name
// automatically via Observe.
func (c *Collector) Hist(name string, v int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.histLocked(name, v)
	c.mu.Unlock()
}

// histLocked records into the named histogram; caller holds c.mu.
func (c *Collector) histLocked(name string, v int64) {
	if c.hists == nil {
		c.hists = map[string]*hist{}
	}
	h := c.hists[name]
	if h == nil {
		h = &hist{}
		c.hists[name] = h
	}
	h.observe(v)
}

// sparkline renders the histogram's non-empty bucket span as a
// fixed-width block-glyph distribution for WriteTable.
func sparkline(st HistStat, width int) string {
	if len(st.Buckets) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	first := st.Buckets[0].Index
	last := st.Buckets[len(st.Buckets)-1].Index
	span := last - first + 1
	if span < width {
		width = span
	}
	cells := make([]int64, width)
	for _, b := range st.Buckets {
		cell := (b.Index - first) * width / span
		cells[cell] += b.Count
	}
	var peak int64
	for _, n := range cells {
		if n > peak {
			peak = n
		}
	}
	var sb strings.Builder
	for _, n := range cells {
		if n == 0 {
			sb.WriteByte(' ')
			continue
		}
		g := int(int64(len(glyphs)-1) * n / peak)
		sb.WriteRune(glyphs[g])
	}
	return sb.String()
}

// mergeHistStat folds a reported histogram back into the collector's
// state (the checkpoint-resume path). Bucket indexes are part of the
// report schema, so the fold is exact.
func (h *hist) merge(st HistStat) error {
	if st.Count == 0 {
		return nil
	}
	if h.count == 0 || st.Min < h.min {
		h.min = st.Min
	}
	if h.count == 0 || st.Max > h.max {
		h.max = st.Max
	}
	h.count += st.Count
	h.sum += st.Sum
	for _, b := range st.Buckets {
		if b.Index < 0 || b.Index >= numHistBuckets {
			return fmt.Errorf("obs: histogram %q: bucket index %d out of range", st.Name, b.Index)
		}
		h.buckets[b.Index] += b.Count
	}
	return nil
}
