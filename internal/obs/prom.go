package obs

// Prometheus text exposition (format version 0.0.4) for the obs
// report, plus the stdlib-only validator behind tools/promcheck.
//
// WritePrometheus renders a Report deterministically: counters as
// <name>_total, gauges as <name>, and the fixed log-bucket histograms
// as cumulative <name>_bucket{le="..."} series with _sum and _count —
// the native Prometheus histogram shape, so rate() and
// histogram_quantile() work out of the box. Bucket upper bounds come
// from the report's [lo, hi) ranges: a bucket holding lo <= v < hi is
// exactly "v <= hi-1" for the integer-valued observations this layer
// records, so le = hi-1 is lossless. Only non-empty buckets are
// emitted (the fixed layout has 248; sparse cumulative output is
// valid exposition), closed by the mandatory +Inf bucket.
//
// WritePrometheusRuntime appends a small fixed set of runtime/metrics
// samples (heap, GC, goroutines) under go_* names, for scrapes that
// want process health next to the serving metrics.
//
// ValidateProm is the inverse gate: exposition-format parse, TYPE
// discipline, and — the property the histograms above must uphold —
// strictly increasing le bounds with non-decreasing cumulative counts
// ending in a +Inf bucket that equals _count.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
)

// promName sanitizes a metric name into the Prometheus alphabet
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// errWriter latches the first write error so the render loop stays
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

// WritePrometheus renders the report in Prometheus text exposition
// format. Output is deterministic: the report's slices are sorted by
// name, and bucket order follows the fixed histogram layout.
func (r Report) WritePrometheus(w io.Writer) error {
	ew := &errWriter{w: w}
	for _, c := range r.Counters {
		name := promName(c.Name) + "_total"
		ew.printf("# HELP %s obs counter %s\n", name, c.Name)
		ew.printf("# TYPE %s counter\n", name)
		ew.printf("%s %d\n", name, c.Value)
	}
	for _, g := range r.Gauges {
		name := promName(g.Name)
		ew.printf("# HELP %s obs gauge %s\n", name, g.Name)
		ew.printf("# TYPE %s gauge\n", name)
		ew.printf("%s %d\n", name, g.Value)
	}
	for _, h := range r.Hists {
		name := promName(h.Name)
		ew.printf("# HELP %s obs histogram %s (phase histograms hold nanoseconds)\n", name, h.Name)
		ew.printf("# TYPE %s histogram\n", name)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			// [lo, hi) over integers is exactly "<= hi-1".
			ew.printf("%s_bucket{le=\"%d\"} %d\n", name, b.Hi-1, cum)
		}
		ew.printf("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		ew.printf("%s_sum %d\n", name, h.Sum)
		ew.printf("%s_count %d\n", name, h.Count)
	}
	return ew.err
}

// runtimePromSamples is the fixed runtime/metrics set exported by
// WritePrometheusRuntime; counters (monotone totals) get a _total
// suffix and "counter" type.
var runtimePromSamples = []struct {
	metric  string
	counter bool
}{
	{"/memory/classes/heap/objects:bytes", false},
	{"/memory/classes/total:bytes", false},
	{"/gc/cycles/total:gc-cycles", true},
	{"/gc/heap/allocs:bytes", true},
	{"/sched/goroutines:goroutines", false},
}

// WritePrometheusRuntime appends the fixed runtime/metrics sample set
// as go_* series in exposition format.
func WritePrometheusRuntime(w io.Writer) error {
	samples := make([]metrics.Sample, len(runtimePromSamples))
	for i, s := range runtimePromSamples {
		samples[i].Name = s.metric
	}
	metrics.Read(samples)
	ew := &errWriter{w: w}
	runtimeRepl := strings.NewReplacer("/", "_", ":", "_", "-", "_")
	for i, s := range samples {
		name := "go_" + promName(runtimeRepl.Replace(strings.TrimPrefix(s.Name, "/")))
		typ := "gauge"
		if runtimePromSamples[i].counter {
			name += "_total"
			typ = "counter"
		}
		var v float64
		switch s.Value.Kind() {
		case metrics.KindUint64:
			v = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			v = s.Value.Float64()
		default:
			continue
		}
		ew.printf("# HELP %s runtime/metrics %s\n", name, s.Name)
		ew.printf("# TYPE %s %s\n", name, typ)
		ew.printf("%s %v\n", name, v)
	}
	return ew.err
}

// PromSummary is what ValidateProm learned about an exposition.
type PromSummary struct {
	Lines      int            // non-empty, non-comment sample lines
	Families   int            // distinct metric families seen
	Histograms int            // families typed histogram
	Names      map[string]int // family name -> sample count
}

// promHistCheck accumulates one histogram series (per family and
// per non-le label set) for the monotonicity checks.
type promHistCheck struct {
	family   string
	les      []float64
	cums     []float64
	sum      bool
	count    bool
	countVal float64
}

// ValidateProm checks that r holds well-formed Prometheus text
// exposition: valid metric/label names, parseable values, at most one
// TYPE per family declared before its samples, counters non-negative,
// and every histogram family with strictly increasing le bounds,
// non-decreasing cumulative bucket counts, and a final +Inf bucket
// equal to _count. It is the library behind tools/promcheck.
func ValidateProm(r io.Reader) (PromSummary, error) {
	sum := PromSummary{Names: map[string]int{}}
	types := map[string]string{}         // family -> declared type
	sampled := map[string]bool{}         // family -> has samples
	hists := map[string]*promHistCheck{} // family|labels -> series check
	var histOrder []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				if len(fields) < 3 || !validPromName(fields[2]) {
					return sum, fmt.Errorf("promcheck: line %d: %s without a valid metric name", lineNo, fields[1])
				}
				if fields[1] == "TYPE" {
					if len(fields) < 4 {
						return sum, fmt.Errorf("promcheck: line %d: TYPE %s without a type", lineNo, fields[2])
					}
					typ := strings.TrimSpace(fields[3])
					switch typ {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return sum, fmt.Errorf("promcheck: line %d: unknown TYPE %q for %s", lineNo, typ, fields[2])
					}
					if prev, ok := types[fields[2]]; ok {
						return sum, fmt.Errorf("promcheck: line %d: duplicate TYPE for %s (already %s)", lineNo, fields[2], prev)
					}
					if sampled[fields[2]] {
						return sum, fmt.Errorf("promcheck: line %d: TYPE for %s after its samples", lineNo, fields[2])
					}
					types[fields[2]] = typ
				}
			}
			continue // other comments are legal and ignored
		}

		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return sum, fmt.Errorf("promcheck: line %d: %w", lineNo, err)
		}
		sum.Lines++
		family, suffix := promFamily(name, types)
		sampled[family] = true
		sum.Names[family]++

		typ := types[family]
		if typ == "counter" && (math.IsNaN(value) || value < 0) {
			return sum, fmt.Errorf("promcheck: line %d: counter %s = %v, want finite >= 0", lineNo, name, value)
		}
		if typ == "histogram" {
			other, le, hasLE, err := splitLE(labels)
			if err != nil {
				return sum, fmt.Errorf("promcheck: line %d: %w", lineNo, err)
			}
			key := family + "\x00" + other
			hc := hists[key]
			if hc == nil {
				hc = &promHistCheck{family: family}
				hists[key] = hc
				histOrder = append(histOrder, key)
			}
			switch suffix {
			case "_bucket":
				if !hasLE {
					return sum, fmt.Errorf("promcheck: line %d: %s_bucket without le label", lineNo, family)
				}
				hc.les = append(hc.les, le)
				hc.cums = append(hc.cums, value)
			case "_sum":
				hc.sum = true
			case "_count":
				hc.count = true
				hc.countVal = value
			default:
				return sum, fmt.Errorf("promcheck: line %d: sample %s of histogram family %s is none of _bucket/_sum/_count", lineNo, name, family)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return sum, err
	}

	// Per-series histogram discipline, in first-appearance order.
	for _, key := range histOrder {
		hc := hists[key]
		if len(hc.les) == 0 {
			return sum, fmt.Errorf("promcheck: histogram %s has no buckets", hc.family)
		}
		for i := range hc.les {
			if i > 0 && !(hc.les[i] > hc.les[i-1]) {
				return sum, fmt.Errorf("promcheck: histogram %s: le %v after %v, want strictly increasing", hc.family, hc.les[i], hc.les[i-1])
			}
			if i > 0 && hc.cums[i] < hc.cums[i-1] {
				return sum, fmt.Errorf("promcheck: histogram %s: cumulative bucket count %v after %v, want non-decreasing", hc.family, hc.cums[i], hc.cums[i-1])
			}
		}
		last := hc.les[len(hc.les)-1]
		if !math.IsInf(last, +1) {
			return sum, fmt.Errorf("promcheck: histogram %s: last bucket le=%v, want +Inf", hc.family, last)
		}
		if !hc.sum || !hc.count {
			return sum, fmt.Errorf("promcheck: histogram %s missing _sum or _count", hc.family)
		}
		if inf := hc.cums[len(hc.cums)-1]; inf != hc.countVal {
			return sum, fmt.Errorf("promcheck: histogram %s: +Inf bucket %v != _count %v", hc.family, inf, hc.countVal)
		}
	}

	sum.Families = len(sampled)
	for _, t := range types {
		if t == "histogram" {
			sum.Histograms++
		}
	}
	return sum, nil
}

// promFamily strips the histogram/summary sample suffix when the base
// name was declared with a compound type.
func promFamily(name string, types map[string]string) (family, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if t := types[base]; t == "histogram" || t == "summary" {
			return base, suf
		}
	}
	return name, ""
}

// validPromName reports whether s is a legal metric name.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validPromLabel reports whether s is a legal label name.
func validPromLabel(s string) bool {
	if s == "" || !validPromName(s) {
		return false
	}
	return !strings.Contains(s, ":")
}

// parsePromSample parses one sample line: name[{labels}] value [ts].
// labels is returned in source order as a single canonical string
// (promcheck only needs it as a grouping key plus the le value).
func parsePromSample(line string) (name, labels string, value float64, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name = line[:i]
	if !validPromName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := scanLabels(rest)
		if err != nil {
			return "", "", 0, fmt.Errorf("%s: %w", name, err)
		}
		labels = rest[1 : end-1]
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("%s: want value [timestamp], got %q", name, strings.TrimSpace(rest))
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("%s: bad value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", "", 0, fmt.Errorf("%s: bad timestamp %q", name, fields[1])
		}
	}
	return name, labels, value, nil
}

// scanLabels returns the index just past the closing '}' of a label
// block starting at s[0] == '{', validating pair syntax.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		j := i
		for j < len(s) && s[j] != '=' && s[j] != '}' {
			j++
		}
		if j >= len(s) || s[j] != '=' {
			return 0, fmt.Errorf("label without '='")
		}
		if !validPromLabel(strings.TrimSpace(s[i:j])) {
			return 0, fmt.Errorf("invalid label name %q", s[i:j])
		}
		j++ // past '='
		if j >= len(s) || s[j] != '"' {
			return 0, fmt.Errorf("label value not quoted")
		}
		j++
		for j < len(s) && s[j] != '"' {
			if s[j] == '\\' {
				j++
			}
			j++
		}
		if j >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		j++ // past closing quote
		if j < len(s) && s[j] == ',' {
			j++
		}
		i = j
	}
}

// splitLE separates the le label from the rest of a label block,
// returning the remaining labels as a canonical (sorted) key.
func splitLE(labels string) (other string, le float64, hasLE bool, err error) {
	if labels == "" {
		return "", 0, false, nil
	}
	var rest []string
	for _, pair := range splitLabelPairs(labels) {
		eq := strings.IndexByte(pair, '=')
		k := strings.TrimSpace(pair[:eq])
		v := strings.Trim(pair[eq+1:], `"`)
		if k == "le" {
			le, err = strconv.ParseFloat(v, 64)
			if err != nil {
				return "", 0, false, fmt.Errorf("bad le %q", v)
			}
			hasLE = true
			continue
		}
		rest = append(rest, pair)
	}
	sort.Strings(rest)
	return strings.Join(rest, ","), le, hasLE, nil
}

// splitLabelPairs splits "a=\"x\",b=\"y\"" on commas outside quotes.
func splitLabelPairs(labels string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		out = append(out, labels[start:])
	}
	return out
}
