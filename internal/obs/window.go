package obs

// Rolling-window latency tracking for the serving layer.
//
// The PR 4 histograms are cumulative since boot — fine for offline
// sweeps, useless for "what was p99 over the last minute" on a
// long-lived daemon. WindowedHist keeps a small ring of the same
// fixed log-bucket sub-histograms, one per time slot; an observation
// lands in the slot owned by the current epoch (clock time divided by
// the slot duration), and a snapshot merges only slots whose epoch is
// still inside the window. Slots are invalidated lazily: the first
// observation (or snapshot) that finds a slot tagged with a stale
// epoch resets it, so rotation needs no timer goroutine and the
// structure is fully deterministic under an injected clock.
//
// The window therefore covers between (slots-1) and slots full slot
// durations depending on phase within the current slot — standard
// ring-buffer windowing; callers size slots accordingly.
//
// SLO accounting rides along: observations above the objective are
// counted both cumulatively (error-budget burn since boot, exported
// as counters so Prometheus rate() works) and per window.
//
// A nil *WindowedHist is the disabled path: every method no-ops
// without allocating, matching the Tracer/Collector contract pinned
// by TestDisabledPathsZeroAlloc.

import (
	"sync"
	"time"
)

// windowSlot is one rotation slot: the epoch that owns it plus its
// sub-histogram and per-slot violation count.
type windowSlot struct {
	epoch int64
	viol  int64
	h     hist
}

// WindowedHist is a rolling window of log-bucket histograms with an
// optional latency objective. Safe for concurrent use.
type WindowedHist struct {
	mu        sync.Mutex
	slotDur   time.Duration
	slots     []windowSlot
	objective int64 // SLO threshold in observation units; 0 disables
	clock     func() time.Time
	totalObs  int64 // observations since creation
	totalViol int64 // observations above objective since creation
}

// NewWindowedHist builds a window of `slots` sub-histograms of
// `slot` duration each. objective is the latency objective in the
// same units as observations (nanoseconds for serve_job_wall); 0
// disables violation tracking. clock may be nil (time.Now) or
// injected for deterministic tests.
func NewWindowedHist(slot time.Duration, slots int, objective int64, clock func() time.Time) *WindowedHist {
	if slot <= 0 {
		slot = 10 * time.Second
	}
	if slots <= 0 {
		slots = 6
	}
	if clock == nil {
		clock = time.Now
	}
	w := &WindowedHist{
		slotDur:   slot,
		slots:     make([]windowSlot, slots),
		objective: objective,
		clock:     clock,
	}
	// Epoch 0 is a real epoch for a fake clock starting at the zero
	// time; mark fresh slots as never-owned instead.
	for i := range w.slots {
		w.slots[i].epoch = -1
	}
	return w
}

// Observe records one value into the current slot.
func (w *WindowedHist) Observe(v int64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	epoch := w.clock().UnixNano() / int64(w.slotDur)
	s := &w.slots[int(epoch%int64(len(w.slots)))]
	if s.epoch != epoch {
		s.h = hist{}
		s.viol = 0
		s.epoch = epoch
	}
	s.h.observe(v)
	w.totalObs++
	if w.objective > 0 && v > w.objective {
		s.viol++
		w.totalViol++
	}
	w.mu.Unlock()
}

// WindowStat is a point-in-time view of the rolling window plus the
// cumulative SLO ledger.
type WindowStat struct {
	WindowNS int64 `json:"window_ns"` // slot duration x slot count
	SlotNS   int64 `json:"slot_ns"`
	Count    int64 `json:"count"` // observations inside the window
	Sum      int64 `json:"sum"`
	Min      int64 `json:"min"`
	Max      int64 `json:"max"`
	P50      int64 `json:"p50"`
	P90      int64 `json:"p90"`
	P99      int64 `json:"p99"`
	// ObjectiveNS is the configured latency objective (0 = disabled).
	ObjectiveNS int64 `json:"objective_ns"`
	// WindowViolations counts in-window observations above the
	// objective; Observed/Violations are since-boot totals (the
	// error-budget burn counters).
	WindowViolations int64 `json:"window_violations"`
	Observed         int64 `json:"observed_total"`
	Violations       int64 `json:"violations_total"`
}

// Snapshot merges the live slots into one WindowStat. A nil receiver
// returns the zero value.
func (w *WindowedHist) Snapshot() WindowStat {
	if w == nil {
		return WindowStat{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	epoch := w.clock().UnixNano() / int64(w.slotDur)
	oldest := epoch - int64(len(w.slots)) + 1
	var merged hist
	st := WindowStat{
		WindowNS:    int64(w.slotDur) * int64(len(w.slots)),
		SlotNS:      int64(w.slotDur),
		ObjectiveNS: w.objective,
		Observed:    w.totalObs,
		Violations:  w.totalViol,
	}
	for i := range w.slots {
		s := &w.slots[i]
		if s.epoch < oldest || s.epoch > epoch {
			continue // stale (or never owned); reset lazily on next write
		}
		merged.count += s.h.count
		merged.sum += s.h.sum
		if merged.count == s.h.count || s.h.min < merged.min {
			merged.min = s.h.min
		}
		if s.h.max > merged.max {
			merged.max = s.h.max
		}
		for b := range s.h.buckets {
			merged.buckets[b] += s.h.buckets[b]
		}
		st.WindowViolations += s.viol
	}
	st.Count = merged.count
	if merged.count > 0 {
		st.Sum = merged.sum
		st.Min = merged.min
		st.Max = merged.max
		st.P50 = merged.quantile(0.50)
		st.P90 = merged.quantile(0.90)
		st.P99 = merged.quantile(0.99)
	}
	return st
}
