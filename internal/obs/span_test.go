package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	root := tr.Root("root", Int("k", 4))
	if root != nil {
		t.Fatalf("nil tracer produced a span")
	}
	child := root.Child("child")
	if child != nil {
		t.Fatalf("nil span produced a child")
	}
	child.Event("ev", Str("a", "b"))
	child.End()
	if got := root.Name(); got != "" {
		t.Errorf("nil span name = %q", got)
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if s := SpanFromContext(ctx); s != nil {
		t.Errorf("span from bare context = %v", s)
	}
	ctx2, s := StartSpan(ctx, "x")
	if s != nil || ctx2 != ctx {
		t.Errorf("StartSpan on span-less context allocated: %v", s)
	}
}

func TestSpanNestingAndContext(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("root", Track("main"))
	ctx := ContextWithSpan(context.Background(), root)

	ctx2, snap := StartSpan(ctx, "snapshot", Int("t", 3))
	if snap == nil || SpanFromContext(ctx2) != snap {
		t.Fatal("StartSpan did not thread the child through the context")
	}
	_, leg := StartSpan(ctx2, "mc_leg")
	leg.Event("retry", Int("attempt", 1))
	leg.End()
	snap.End()
	root.End()

	spans := tr.snapshotSpans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	byName := map[string]*Span{}
	for _, s := range spans {
		byName[s.name] = s
	}
	if byName["snapshot"].parent != byName["root"].id {
		t.Errorf("snapshot parent = %d, want root %d", byName["snapshot"].parent, byName["root"].id)
	}
	if byName["mc_leg"].parent != byName["snapshot"].id {
		t.Errorf("leg parent = %d, want snapshot %d", byName["mc_leg"].parent, byName["snapshot"].id)
	}
	if byName["mc_leg"].track != "main" {
		t.Errorf("leg track = %q, want inherited %q", byName["mc_leg"].track, "main")
	}
	if len(byName["mc_leg"].events) != 1 || byName["mc_leg"].events[0].name != "retry" {
		t.Errorf("leg events = %+v", byName["mc_leg"].events)
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer()
	s := tr.Root("once")
	s.End()
	s.End()
	if n := len(tr.snapshotSpans()); n != 1 {
		t.Errorf("double End recorded %d spans", n)
	}
}

// TestWriteTraceValidates: the exporter's own output must pass the
// validator — balanced B/E, monotonic timestamps — including under
// concurrent overlapping spans that force lane fan-out.
func TestWriteTraceValidates(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("sweep")
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rs := root.Child("rank", Int("rank", int64(rank)), Track("ranks"))
			for p := 0; p < 3; p++ {
				ps := rs.Child("phase", Int("phase", int64(p)))
				ps.Event("retry", Int("attempt", 1))
				ps.End()
			}
			rs.End()
		}(r)
	}
	wg.Wait()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported trace failed validation: %v\n%s", err, buf.String())
	}
	if sum.Spans != 1+4+12 {
		t.Errorf("validated %d spans, want 17", sum.Spans)
	}
	if sum.Names["retry"] != 12 {
		t.Errorf("retry events = %d, want 12", sum.Names["retry"])
	}
	if sum.Tracks < 2 {
		t.Errorf("overlapping rank spans were not fanned out: %d tracks", sum.Tracks)
	}
}

func TestValidateTraceRejectsBroken(t *testing.T) {
	cases := map[string]string{
		"unbalanced": `[{"name":"a","ph":"B","ts":1,"pid":0,"tid":1}]`,
		"mismatch": `[{"name":"a","ph":"B","ts":1,"pid":0,"tid":1},
		              {"name":"b","ph":"E","ts":2,"pid":0,"tid":1}]`,
		"backwards": `[{"name":"a","ph":"B","ts":5,"pid":0,"tid":1},
		               {"name":"a","ph":"E","ts":4,"pid":0,"tid":1}]`,
		"stray end": `[{"name":"a","ph":"E","ts":1,"pid":0,"tid":1}]`,
		"bad phase": `[{"name":"a","ph":"Q","ts":1,"pid":0,"tid":1}]`,
		"no ts":     `[{"name":"a","ph":"B","pid":0,"tid":1}]`,
		"not json":  `{"traceEvents": [}`,
	}
	for name, in := range cases {
		if _, err := ValidateTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated cleanly", name)
		}
	}
	ok := `{"traceEvents":[
	  {"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"x"}},
	  {"name":"a","ph":"B","ts":1,"pid":0,"tid":1},
	  {"name":"ev","ph":"i","ts":1.5,"pid":0,"tid":1,"s":"t"},
	  {"name":"a","ph":"E","ts":2,"pid":0,"tid":1}]}`
	sum, err := ValidateTrace(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if sum.Spans != 1 || sum.Events != 4 {
		t.Errorf("summary = %+v", sum)
	}
}

// TestDisabledPathsZeroAlloc is the benchmark guard of the tracing-off
// and nil-collector hot paths: threading observability through the
// engine and partitioner must cost nothing when it is switched off.
func TestDisabledPathsZeroAlloc(t *testing.T) {
	var col *Collector
	ctx := context.Background()
	var span *Span

	checks := map[string]func(){
		"nil collector Start":   func() { col.Start("p")() },
		"nil collector Observe": func() { col.Observe("p", 1) },
		"nil collector Add":     func() { col.Add("c", 1) },
		"nil collector Max":     func() { col.Max("g", 1) },
		"nil collector Hist":    func() { col.Hist("h", 1) },
		"SpanFromContext":       func() { _ = SpanFromContext(ctx) },
		//lint:ignore obsbalance the nil span's Child is nil; the no-op path is what this test pins
		"nil span Child":      func() { _ = span.Child("c") },
		"nil span Event":      func() { span.Event("e") },
		"nil span End":        func() { span.End() },
		"ContextWithSpan nil": func() { _ = ContextWithSpan(ctx, nil) },
		//lint:ignore obsbalance tracing is off, so the span is nil; the no-op path is what this test pins
		"StartSpan off": func() { _, _ = StartSpan(ctx, "s") },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", name, allocs)
		}
	}
}
