package obs

import (
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exact exposition rendered for a
// small fixed collector: counters as _total, gauges bare, histograms
// as cumulative sparse buckets closed by +Inf with _sum/_count.
func TestWritePrometheusGolden(t *testing.T) {
	c := New()
	c.Add("requests", 3)
	c.Max("peak_workers", 2)
	c.Hist("latency", 1)
	c.Hist("latency", 5)
	c.Hist("latency", 100)

	var sb strings.Builder
	if err := c.Report().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP requests_total obs counter requests
# TYPE requests_total counter
requests_total 3
# HELP peak_workers obs gauge peak_workers
# TYPE peak_workers gauge
peak_workers 2
# HELP latency obs histogram latency (phase histograms hold nanoseconds)
# TYPE latency histogram
latency_bucket{le="1"} 1
latency_bucket{le="5"} 2
latency_bucket{le="111"} 3
latency_bucket{le="+Inf"} 3
latency_sum 106
latency_count 3
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}

	sum, err := ValidateProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ValidateProm on own output: %v", err)
	}
	if sum.Histograms != 1 || sum.Families != 3 {
		t.Fatalf("summary = %+v, want 3 families / 1 histogram", sum)
	}
	if sum.Names["latency"] != 6 {
		t.Fatalf("latency sample count = %d, want 6 (4 buckets + sum + count)", sum.Names["latency"])
	}
}

// TestWritePrometheusPhases checks that a report with phase timers
// still validates: the phase's same-named histogram carries its
// count/sum, and the exposition stays parseable end to end.
func TestWritePrometheusPhases(t *testing.T) {
	c := New()
	c.Observe("partition", 5*time.Millisecond)
	c.Observe("partition", 7*time.Millisecond)
	c.Add("serve_jobs_accepted", 2)

	var sb strings.Builder
	if err := c.Report().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	sum, err := ValidateProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ValidateProm: %v\n%s", err, sb.String())
	}
	if sum.Names["partition"] == 0 {
		t.Fatalf("partition histogram missing from exposition:\n%s", sb.String())
	}
}

// TestWritePrometheusRuntime renders the runtime/metrics samples and
// revalidates them.
func TestWritePrometheusRuntime(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheusRuntime(&sb); err != nil {
		t.Fatalf("WritePrometheusRuntime: %v", err)
	}
	sum, err := ValidateProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ValidateProm: %v\n%s", err, sb.String())
	}
	for _, want := range []string{"go_sched_goroutines_goroutines", "go_gc_cycles_total_gc_cycles_total"} {
		if sum.Names[want] == 0 {
			t.Errorf("runtime exposition missing %s:\n%s", want, sb.String())
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve_job_wall":    "serve_job_wall",
		"serve/job wall:ns": "serve_job_wall:ns",
		"9lives":            "_9lives",
		"":                  "_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestValidatePromRejects drives the validator through the malformed
// expositions it exists to catch.
func TestValidatePromRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"bad metric name", "0bad 1\n", "invalid metric name"},
		{"bad value", "m notanumber\n", "bad value"},
		{"bad TYPE", "# TYPE m weird\nm 1\n", "unknown TYPE"},
		{"TYPE after samples", "m 1\n# TYPE m counter\n", "after its samples"},
		{"duplicate TYPE", "# TYPE m counter\n# TYPE m gauge\nm 1\n", "duplicate TYPE"},
		{"negative counter", "# TYPE m counter\nm -1\n", "want finite >= 0"},
		{"unterminated labels", `m{a="x` + "\n", "unterminated"},
		{"junk after label value", `m{a="x" 1` + "\n", "label without '='"},
		{"bad label name", `m{0a="x"} 1` + "\n", "invalid label name"},
		{
			"non-monotone le",
			"# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
			"strictly increasing",
		},
		{
			"decreasing cumulative",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 3\nh_count 3\n",
			"non-decreasing",
		},
		{
			"missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_sum 2\nh_count 1\n",
			"want +Inf",
		},
		{
			"+Inf != count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 2\nh_count 3\n",
			"!= _count",
		},
		{
			"bucket without le",
			"# TYPE h histogram\nh_bucket 2\nh_sum 2\nh_count 2\n",
			"without le label",
		},
		{
			"histogram without sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"missing _sum or _count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateProm(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ValidateProm accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidatePromAccepts covers legal corners: timestamps, escaped
// label values, bare comments, untyped samples, labeled histograms.
func TestValidatePromAccepts(t *testing.T) {
	in := `# scraped by test
# TYPE h histogram
h_bucket{job="a b",le="1"} 1
h_bucket{job="a b",le="+Inf"} 2
h_sum{job="a b"} 3
h_count{job="a b"} 2
untyped_metric{note="say \"hi\",ok"} 4.5 1700000000000
`
	sum, err := ValidateProm(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ValidateProm: %v", err)
	}
	if sum.Lines != 5 || sum.Families != 2 {
		t.Fatalf("summary = %+v, want 5 lines / 2 families", sum)
	}
}
