package dtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// quadrants builds a 2x2 axis-aligned arrangement: points in each
// quadrant of [0,10]^2 carry the quadrant's label — the friendliest
// possible input (the tree needs only 3 nodes... 2 cuts -> 7 nodes max,
// ideally 2 internal + ... exactly 2 cuts, so <= 7 nodes).
func quadrants(n int, r *rand.Rand) ([]geom.Point, []int32) {
	pts := make([]geom.Point, 0, n)
	labels := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		x, y := r.Float64()*10, r.Float64()*10
		// Keep a guard band around the axes so cuts are clean.
		if x > 4.8 && x < 5.2 {
			x += 0.5
		}
		if y > 4.8 && y < 5.2 {
			y += 0.5
		}
		l := int32(0)
		if x > 5 {
			l |= 1
		}
		if y > 5 {
			l |= 2
		}
		pts = append(pts, geom.P2(x, y))
		labels = append(labels, l)
	}
	return pts, labels
}

func TestDescriptorPureLeaves(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts, labels := quadrants(400, r)
	tree, err := Build(pts, labels, 2, 4, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		if !n.IsLeaf() {
			continue
		}
		if !n.Pure {
			t.Fatalf("descriptor leaf %d impure", i)
		}
		for _, p := range tree.LeafPoints(int32(i)) {
			if labels[p] != n.Part {
				t.Fatalf("leaf %d: point %d has label %d, leaf part %d", i, p, labels[p], n.Part)
			}
		}
	}
	// Axis-aligned quadrants need very few nodes.
	if tree.NumNodes() > 9 {
		t.Errorf("quadrants tree has %d nodes, want <= 9", tree.NumNodes())
	}
}

func TestLeafOfConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts, labels := quadrants(300, r)
	tree, err := Build(pts, labels, 2, 4, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if got := tree.LeafIndexOf(p); got != tree.LeafOf[i] {
			t.Fatalf("point %d: LeafIndexOf = %d, LeafOf = %d", i, got, tree.LeafOf[i])
		}
		if got := tree.PartOf(p); got != labels[i] {
			t.Fatalf("point %d: PartOf = %d, label = %d", i, got, labels[i])
		}
	}
}

func TestDiagonalBlowup(t *testing.T) {
	// Figure 2 of the paper: a diagonal boundary forces a fine-grained
	// space partition, so the tree on a diagonal split must be much
	// larger than on an axis-parallel split of the same points.
	n := 256
	pts := make([]geom.Point, n)
	diag := make([]int32, n)
	axis := make([]int32, n)
	r := rand.New(rand.NewSource(3))
	for i := range pts {
		x, y := r.Float64()*10, r.Float64()*10
		pts[i] = geom.P2(x, y)
		if y > x {
			diag[i] = 1
		}
		if y > 5 {
			axis[i] = 1
		}
	}
	dTree, err := Build(pts, diag, 2, 2, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	aTree, err := Build(pts, axis, 2, 2, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	if dTree.NumNodes() < 4*aTree.NumNodes() {
		t.Errorf("diagonal tree %d nodes vs axis tree %d nodes: expected a big blowup",
			dTree.NumNodes(), aTree.NumNodes())
	}
}

func TestGuidanceThresholds(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts, labels := quadrants(1000, r)
	// MaxPure small: pure regions keep splitting to below 50 points.
	tree, err := Build(pts, labels, 2, 4, Options{Mode: Guidance, MaxPure: 50, MaxImpure: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		if !n.IsLeaf() {
			continue
		}
		sz := int(n.Hi - n.Lo)
		if n.Pure && sz >= 50 {
			// Only allowed if the leaf was unsplittable (all coords equal).
			pset := tree.LeafPoints(int32(i))
			first := pts[pset[0]]
			for _, p := range pset {
				if pts[p] != first {
					t.Fatalf("pure leaf %d has %d >= MaxPure splittable points", i, sz)
				}
			}
		}
		if !n.Pure && sz >= 10 {
			// Impure leaves of >= MaxImpure points only if unsplittable.
			pset := tree.LeafPoints(int32(i))
			first := pts[pset[0]]
			for _, p := range pset {
				if pts[p] != first {
					t.Fatalf("impure leaf %d has %d >= MaxImpure splittable points", i, sz)
				}
			}
		}
	}
}

func TestGuidanceRequiresThresholds(t *testing.T) {
	pts := []geom.Point{geom.P2(0, 0), geom.P2(1, 1)}
	labels := []int32{0, 1}
	if _, err := Build(pts, labels, 2, 2, Options{Mode: Guidance}); err == nil {
		t.Error("guidance mode accepted zero thresholds")
	}
}

func TestBuildValidation(t *testing.T) {
	pts := []geom.Point{geom.P2(0, 0)}
	if _, err := Build(pts, []int32{0}, 4, 1, Options{}); err == nil {
		t.Error("accepted dim=4")
	}
	if _, err := Build(pts, []int32{0}, 2, 0, Options{}); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Build(pts, []int32{}, 2, 1, Options{}); err == nil {
		t.Error("accepted length mismatch")
	}
	if _, err := Build(pts, []int32{5}, 2, 2, Options{}); err == nil {
		t.Error("accepted out-of-range label")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	tree, err := Build(nil, nil, 2, 3, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 0 {
		t.Errorf("empty tree has %d nodes", tree.NumNodes())
	}
	tree.VisitLeavesIntersecting(geom.AABB{Min: geom.P2(0, 0), Max: geom.P2(1, 1)}, func(int32) {
		t.Error("empty tree visited a leaf")
	})

	tree1, err := Build([]geom.Point{geom.P2(1, 2)}, []int32{2}, 2, 3, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	if tree1.NumNodes() != 1 || !tree1.Nodes[0].IsLeaf() || tree1.Nodes[0].Part != 2 {
		t.Errorf("singleton tree wrong: %+v", tree1.Nodes)
	}
}

func TestCoincidentMixedLabels(t *testing.T) {
	// Identical coordinates with different labels cannot be separated:
	// the build must terminate with an impure leaf, and
	// PartsIntersecting must report *both* labels (no false negatives).
	pts := []geom.Point{geom.P2(1, 1), geom.P2(1, 1), geom.P2(3, 3)}
	labels := []int32{0, 1, 0}
	tree, err := Build(pts, labels, 2, 2, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]bool, 2)
	tree.PartsIntersecting(geom.AABB{Min: geom.P2(0.9, 0.9), Max: geom.P2(1.1, 1.1)}, labels, out)
	if !out[0] || !out[1] {
		t.Errorf("impure leaf query missed a label: %v", out)
	}
}

func TestVisitLeavesFindsContainingLeaf(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts, labels := quadrants(500, r)
	tree, err := Build(pts, labels, 2, 4, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	// A degenerate box at each point must visit that point's leaf.
	for i, p := range pts {
		found := false
		want := tree.LeafOf[i]
		tree.VisitLeavesIntersecting(geom.AABB{Min: p, Max: p}, func(leaf int32) {
			if leaf == want {
				found = true
			}
		})
		if !found {
			t.Fatalf("point %d: box query missed its own leaf", i)
		}
	}
}

func TestPartsIntersectingNoFalseNegatives(t *testing.T) {
	// Core search-correctness property: for any box, every label of a
	// point inside the box must be reported.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(200)
		k := 2 + r.Intn(6)
		dim := 2 + r.Intn(2)
		pts := make([]geom.Point, n)
		labels := make([]int32, n)
		for i := range pts {
			pts[i][0] = r.Float64() * 10
			pts[i][1] = r.Float64() * 10
			if dim == 3 {
				pts[i][2] = r.Float64() * 10
			}
			labels[i] = int32(r.Intn(k))
		}
		tree, err := Build(pts, labels, dim, k, Options{Mode: Descriptor})
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			var b geom.AABB
			c := pts[r.Intn(n)]
			half := r.Float64() * 3
			b.Min = c.Sub(geom.Point{half, half, half})
			b.Max = c.Add(geom.Point{half, half, half})
			if dim == 2 {
				b.Min[2], b.Max[2] = 0, 0
			}
			got := make([]bool, k)
			tree.PartsIntersecting(b, labels, got)
			for i, p := range pts {
				if b.Contains(p, dim) && !got[labels[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: leaf regions tile the root box and every point's leaf
// region contains it.
func TestQuickLeafRegionsTile(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(150)
		pts := make([]geom.Point, n)
		labels := make([]int32, n)
		for i := range pts {
			pts[i] = geom.P2(r.Float64()*8, r.Float64()*8)
			labels[i] = int32(r.Intn(3))
		}
		tree, err := Build(pts, labels, 2, 3, Options{Mode: Descriptor})
		if err != nil {
			return false
		}
		root := geom.BoxOf(pts)
		regions := tree.LeafRegions(root)
		var area float64
		for i := range tree.Nodes {
			if tree.Nodes[i].IsLeaf() {
				area += regions[i].Volume(2)
				for _, p := range tree.LeafPoints(int32(i)) {
					if !regions[i].Contains(pts[p], 2) {
						return false
					}
				}
			}
		}
		total := root.Volume(2)
		return area > total*(1-1e-9) && area < total*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 40000
	pts := make([]geom.Point, n)
	labels := make([]int32, n)
	for i := range pts {
		pts[i] = geom.P3(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		labels[i] = int32(r.Intn(8))
	}
	seq, err := Build(pts, labels, 3, 8, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(pts, labels, 3, 8, Options{Mode: Descriptor, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumNodes() != par.NumNodes() || seq.NumLeaves() != par.NumLeaves() {
		t.Fatalf("parallel build differs: %d/%d nodes vs %d/%d",
			par.NumNodes(), par.NumLeaves(), seq.NumNodes(), seq.NumLeaves())
	}
	for i := range pts {
		if seq.PartOf(pts[i]) != par.PartOf(pts[i]) {
			t.Fatal("parallel tree classifies differently")
		}
	}
}

func TestHeightAndLeafCount(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	pts, labels := quadrants(200, r)
	tree, err := Build(pts, labels, 2, 4, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	// Binary tree: nodes = 2*leaves - 1.
	if tree.NumNodes() != 2*tree.NumLeaves()-1 {
		t.Errorf("nodes = %d, leaves = %d", tree.NumNodes(), tree.NumLeaves())
	}
	if h := tree.Height(); h < 2 || h > tree.NumNodes() {
		t.Errorf("height = %d", h)
	}
}

func TestSplittingIndexAgainstBruteForce(t *testing.T) {
	// The incremental Eq.1 sweep must agree with a brute-force
	// evaluation of the chosen split.
	r := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 60)
	labels := make([]int32, 60)
	for i := range pts {
		pts[i] = geom.P2(r.Float64()*4, r.Float64()*4)
		labels[i] = int32(r.Intn(3))
	}
	tree, err := Build(pts, labels, 2, 3, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Nodes[0]
	if root.IsLeaf() {
		t.Skip("degenerate: root is a leaf")
	}
	// Brute force: evaluate Eq.1 for every candidate cut in both dims;
	// the root's chosen score must be maximal.
	score := func(d int, cut float64) float64 {
		var l, rr [3]float64
		for i, p := range pts {
			if p[d] <= cut {
				l[labels[i]]++
			} else {
				rr[labels[i]]++
			}
		}
		var sl, sr float64
		for i := 0; i < 3; i++ {
			sl += l[i] * l[i]
			sr += rr[i] * rr[i]
		}
		return math.Sqrt(sl) + math.Sqrt(sr)
	}
	best := 0.0
	for d := 0; d < 2; d++ {
		for _, p := range pts {
			if s := score(d, p[d]); s > best {
				best = s
			}
		}
	}
	got := score(int(root.SplitDim), root.Cut)
	if got < best-1e-9 {
		t.Errorf("root split score %g, brute force best %g", got, best)
	}
}

func TestPreferWideGaps(t *testing.T) {
	// Two clusters with a wide empty band between them; many candidate
	// cuts achieve a perfect split, and the gap-aware variant must pick
	// one inside the band, far from both clusters.
	var pts []geom.Point
	var labels []int32
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 40; i++ {
		pts = append(pts, geom.P2(r.Float64(), r.Float64()*10))
		labels = append(labels, 0)
	}
	for i := 0; i < 40; i++ {
		pts = append(pts, geom.P2(9+r.Float64(), r.Float64()*10))
		labels = append(labels, 1)
	}
	tree, err := Build(pts, labels, 2, 2, Options{Mode: Descriptor, PreferWideGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Nodes[0]
	if root.IsLeaf() {
		t.Fatal("no split")
	}
	if root.SplitDim != 0 {
		t.Fatalf("split dim %d, want 0", root.SplitDim)
	}
	// The wide-gap cut must fall well inside (1, 9).
	if root.Cut < 2 || root.Cut > 8 {
		t.Errorf("cut %g not centered in the empty band", root.Cut)
	}
	// The greedy default may cut anywhere that separates the clusters;
	// both trees must still classify every point correctly.
	def, err := Build(pts, labels, 2, 2, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if tree.PartOf(p) != labels[i] || def.PartOf(p) != labels[i] {
			t.Fatal("misclassification")
		}
	}
}

func TestPreferWideGapsReducesBoundaryOverlap(t *testing.T) {
	// A query box hugging cluster 0's edge should NOT reach the cut
	// when the cut sits mid-band.
	var pts []geom.Point
	var labels []int32
	for i := 0; i < 20; i++ {
		pts = append(pts, geom.P2(float64(i)*0.05, float64(i)))
		labels = append(labels, 0)
		pts = append(pts, geom.P2(10+float64(i)*0.05, float64(i)))
		labels = append(labels, 1)
	}
	wide, err := Build(pts, labels, 2, 2, Options{Mode: Descriptor, PreferWideGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	// Box just right of cluster 0, inflated by 2 (well short of the
	// mid-band cut at ~5.5).
	q := geom.AABB{Min: geom.P2(0.9, 0), Max: geom.P2(3, 19)}
	out := make([]bool, 2)
	wide.PartsIntersecting(q, labels, out)
	if out[1] {
		t.Error("wide-gap tree still reports the far partition for a near-boundary box")
	}
}

// Property: PreferWideGaps never changes what the tree classifies,
// only where the cuts sit.
func TestQuickWideGapsClassificationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(150)
		k := 2 + r.Intn(4)
		pts := make([]geom.Point, n)
		labels := make([]int32, n)
		for i := range pts {
			pts[i] = geom.P2(r.Float64()*10, r.Float64()*10)
			labels[i] = int32(r.Intn(k))
		}
		a, err := Build(pts, labels, 2, k, Options{Mode: Descriptor})
		if err != nil {
			return false
		}
		b, err := Build(pts, labels, 2, k, Options{Mode: Descriptor, PreferWideGaps: true})
		if err != nil {
			return false
		}
		for i, p := range pts {
			if a.PartOf(p) != labels[i] || b.PartOf(p) != labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLeafPointsPartitionPerm(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	pts, labels := quadrants(200, r)
	tree, err := Build(pts, labels, 2, 4, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	// Leaf point ranges tile Perm exactly once.
	seen := make([]bool, len(pts))
	for i := range tree.Nodes {
		if !tree.Nodes[i].IsLeaf() {
			continue
		}
		for _, p := range tree.LeafPoints(int32(i)) {
			if seen[p] {
				t.Fatalf("point %d in two leaves", p)
			}
			seen[p] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("point %d in no leaf", i)
		}
	}
}
