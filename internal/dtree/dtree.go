// Package dtree implements the C4.5-style axis-parallel decision-tree
// induction of Section 4.1.1 of the paper: given labeled points in 2D
// or 3D, it recursively bisects space with axis-parallel hyperplanes,
// choosing at every node the cut that maximizes the modified gini
// splitting index
//
//	index = sqrt(Σ_i |A1,i|²) + sqrt(Σ_i |A2,i|²)      (Eq. 1)
//
// over all hyperplanes passing between successive points along each
// dimension. Each candidate is scored in O(1) by maintaining the label
// histograms (and their sums of squares) incrementally over
// per-dimension sorted orders, and the sorted orders are maintained
// through the recursion by stable partitioning, so inducing the tree
// costs O(n log n) after the initial 2-3 sorts.
//
// Two termination policies are provided, matching the two trees the
// paper builds:
//
//   - Descriptor mode splits until every leaf is pure (contains points
//     from a single partition) — the global-search filter of Section 4.1.
//   - Guidance mode keeps splitting pure nodes of at least MaxPure
//     points and stops splitting impure nodes of fewer than MaxImpure
//     points — the tree that guides the partition reshaping P -> P' of
//     Section 4.2.
package dtree

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/geom"
)

// Mode selects the termination policy.
type Mode int

const (
	// Descriptor splits every impure node that can be split.
	Descriptor Mode = iota
	// Guidance applies the max_p/max_i thresholds of Section 4.2.
	Guidance
)

// Options configures induction.
type Options struct {
	Mode Mode
	// MaxPure (max_p): in Guidance mode, pure nodes with at least this
	// many points are still split (at the median of their longest
	// extent). Ignored in Descriptor mode.
	MaxPure int
	// MaxImpure (max_i): in Guidance mode, impure nodes with fewer than
	// this many points become (impure) leaves.
	MaxImpure int
	// Parallel enables concurrent subtree induction for nodes above an
	// internal size threshold.
	Parallel bool
	// PreferWideGaps implements the improvement proposed in the
	// paper's future-work section: among hyperplanes with the same
	// splitting-index value, prefer the one passing through the widest
	// empty gap (farthest from its nearest points), which shrinks the
	// false-positive band around subdomain boundaries during contact
	// search.
	PreferWideGaps bool
}

// Node is one tree node. Internal nodes (Left >= 0) test
// p[SplitDim] <= Cut: yes goes to Left, no to Right. Leaf nodes carry
// the majority partition and the covered point range.
type Node struct {
	SplitDim int8
	Pure     bool
	Cut      float64
	Left     int32 // -1 for leaves
	Right    int32
	Part     int32 // leaf: majority partition
	Lo, Hi   int32 // leaf: points are Tree.Perm[Lo:Hi]
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left < 0 }

// Tree is an induced decision tree. Nodes[0] is the root. Perm is the
// point permutation grouped by leaf: the points of leaf l are
// Perm[Nodes[l].Lo:Nodes[l].Hi].
type Tree struct {
	Dim   int
	K     int
	Nodes []Node
	Perm  []int32
	// LeafOf[i] is the node index of the leaf containing point i.
	LeafOf []int32
}

// NumNodes returns the paper's NTNodes metric: the total number of
// tree nodes (internal plus leaves).
func (t *Tree) NumNodes() int { return len(t.Nodes) }

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() {
			n++
		}
	}
	return n
}

// Height returns the tree height (1 for a single-leaf tree).
func (t *Tree) Height() int {
	var h func(i int32) int
	h = func(i int32) int {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			return 1
		}
		l, r := h(n.Left), h(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if len(t.Nodes) == 0 {
		return 0
	}
	return int(h(0))
}

// Build induces a decision tree over pts with partition labels in
// [0,k). Points and labels must have equal length; dim is 2 or 3.
func Build(pts []geom.Point, labels []int32, dim, k int, opt Options) (*Tree, error) {
	if dim != 2 && dim != 3 {
		return nil, fmt.Errorf("dtree: dim = %d", dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("dtree: k = %d", k)
	}
	if len(pts) != len(labels) {
		return nil, fmt.Errorf("dtree: %d points but %d labels", len(pts), len(labels))
	}
	for i, l := range labels {
		if l < 0 || int(l) >= k {
			return nil, fmt.Errorf("dtree: label[%d] = %d out of [0,%d)", i, l, k)
		}
	}
	if opt.Mode == Guidance {
		if opt.MaxPure < 1 || opt.MaxImpure < 1 {
			return nil, fmt.Errorf("dtree: guidance mode needs MaxPure, MaxImpure >= 1 (got %d, %d)", opt.MaxPure, opt.MaxImpure)
		}
	}

	b := &builder{pts: pts, labels: labels, dim: dim, k: k, opt: opt}
	n := len(pts)
	for d := 0; d < dim; d++ {
		ord := make([]int32, n)
		for i := range ord {
			ord[i] = int32(i)
		}
		sort.Slice(ord, func(a, c int) bool {
			pa, pc := pts[ord[a]][d], pts[ord[c]][d]
			if pa != pc {
				return pa < pc
			}
			return ord[a] < ord[c]
		})
		b.order[d] = ord
	}
	b.side = make([]bool, n)

	var root *bnode
	if n > 0 {
		root = b.build(0, n, newScratch(k))
	}

	t := &Tree{Dim: dim, K: k, Perm: b.order[0], LeafOf: make([]int32, n)}
	if root == nil {
		return t, nil
	}
	t.flatten(root)
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.IsLeaf() {
			for _, p := range t.Perm[nd.Lo:nd.Hi] {
				t.LeafOf[p] = int32(i)
			}
		}
	}
	return t, nil
}

// bnode is the pointer form used during construction (flattened after).
type bnode struct {
	splitDim    int8
	pure        bool
	cut         float64
	left, right *bnode
	part        int32
	lo, hi      int32
}

// scratch holds per-goroutine working memory.
type scratch struct {
	cnt  []int64 // label histogram
	left []int64 // left-side histogram during sweeps
}

func newScratch(k int) *scratch {
	return &scratch{cnt: make([]int64, k), left: make([]int64, k)}
}

type builder struct {
	pts    []geom.Point
	labels []int32
	dim, k int
	opt    Options
	order  [3][]int32
	side   []bool
}

// parallelCutoff is the subtree size above which children are induced
// concurrently.
const parallelCutoff = 1 << 14

// build induces the subtree covering order[*][lo:hi] and returns it.
// Scratch s is owned by this call; recursive children may get fresh
// scratch when running concurrently.
func (b *builder) build(lo, hi int, s *scratch) *bnode {
	n := hi - lo
	// Histogram of labels in range.
	for i := range s.cnt {
		s.cnt[i] = 0
	}
	major, majorCnt := int32(0), int64(-1)
	distinct := 0
	for _, p := range b.order[0][lo:hi] {
		l := b.labels[p]
		if s.cnt[l] == 0 {
			distinct++
		}
		s.cnt[l]++
		if s.cnt[l] > majorCnt || (s.cnt[l] == majorCnt && l < major) {
			major, majorCnt = l, s.cnt[l]
		}
	}
	pure := distinct <= 1

	leaf := func() *bnode {
		return &bnode{pure: pure, part: major, lo: int32(lo), hi: int32(hi)}
	}

	switch b.opt.Mode {
	case Descriptor:
		if pure {
			return leaf()
		}
	case Guidance:
		if pure && n < b.opt.MaxPure {
			return leaf()
		}
		if !pure && n < b.opt.MaxImpure {
			return leaf()
		}
	}

	var dim int
	var cut float64
	var nL int
	var ok bool
	if pure {
		// Guidance mode splitting of an oversized pure node: median of
		// the longest extent (the gini index is flat for pure sets).
		dim, cut, nL, ok = b.medianSplit(lo, hi)
	} else {
		dim, cut, nL, ok = b.bestGiniSplit(lo, hi, s)
		if !ok {
			// No separating hyperplane exists (coincident points with
			// mixed labels): fall back to a leaf.
			return leaf()
		}
	}
	if !ok {
		return leaf()
	}

	b.partition(lo, hi, dim, nL)

	nd := &bnode{splitDim: int8(dim), cut: cut, pure: pure, part: major}
	mid := lo + nL
	if b.opt.Parallel && n >= parallelCutoff {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			nd.left = b.build(lo, mid, newScratch(b.k))
		}()
		nd.right = b.build(mid, hi, s)
		wg.Wait()
	} else {
		nd.left = b.build(lo, mid, s)
		nd.right = b.build(mid, hi, s)
	}
	return nd
}

// bestGiniSplit sweeps every dimension's sorted order and returns the
// hyperplane maximizing Eq. 1, with the cut taken at the midpoint
// between the bracketing coordinates. nL is the number of points on
// the <= side. ok is false when all points are coincident in every
// dimension (no candidate exists).
func (b *builder) bestGiniSplit(lo, hi int, s *scratch) (dim int, cut float64, nL int, ok bool) {
	n := hi - lo
	var totalSq int64
	for _, c := range s.cnt {
		totalSq += c * c
	}
	bestScore := math.Inf(-1)
	bestGap := -1.0
	for d := 0; d < b.dim; d++ {
		for i := range s.left {
			s.left[i] = 0
		}
		var leftSq, rightSq int64 = 0, totalSq
		ord := b.order[d][lo:hi]
		for i := 0; i < n-1; i++ {
			p := ord[i]
			l := b.labels[p]
			// Move point p from right to left.
			leftSq += 2*s.left[l] + 1
			rightSq -= 2*(s.cnt[l]-s.left[l]) - 1
			s.left[l]++
			c0, c1 := b.pts[p][d], b.pts[ord[i+1]][d]
			if c0 == c1 {
				continue // not a valid hyperplane position
			}
			score := math.Sqrt(float64(leftSq)) + math.Sqrt(float64(rightSq))
			better := score > bestScore
			if !better && b.opt.PreferWideGaps && score == bestScore && c1-c0 > bestGap {
				better = true
			}
			if better {
				bestScore = score
				bestGap = c1 - c0
				dim, cut, nL = d, cutPoint(c0, c1), i+1
				ok = true
			}
		}
	}
	return dim, cut, nL, ok
}

// medianSplit cuts at the median of the dimension with the largest
// spread; used for oversized pure nodes in Guidance mode.
func (b *builder) medianSplit(lo, hi int) (dim int, cut float64, nL int, ok bool) {
	n := hi - lo
	bestSpread := 0.0
	for d := 0; d < b.dim; d++ {
		ord := b.order[d][lo:hi]
		spread := b.pts[ord[n-1]][d] - b.pts[ord[0]][d]
		if spread > bestSpread {
			bestSpread = spread
			dim = d
		}
	}
	if bestSpread == 0 {
		return 0, 0, 0, false
	}
	ord := b.order[dim][lo:hi]
	// Find a valid hyperplane position nearest to the median.
	mid := n / 2
	for off := 0; off < n; off++ {
		for _, i := range []int{mid - off, mid + off} {
			if i < 1 || i >= n {
				continue
			}
			c0, c1 := b.pts[ord[i-1]][dim], b.pts[ord[i]][dim]
			if c0 != c1 {
				return dim, cutPoint(c0, c1), i, true
			}
		}
	}
	return 0, 0, 0, false
}

// cutPoint returns a cut strictly inside [c0, c1): the midpoint, unless
// float rounding pushed it up to c1, in which case c0 is used so the
// "<= cut" convention keeps c0 on the left and c1 on the right.
func cutPoint(c0, c1 float64) float64 {
	mid := (c0 + c1) / 2
	if mid >= c1 {
		return c0
	}
	return mid
}

// partition stably splits all per-dimension sorted orders of [lo,hi)
// into the <=cut side (first nL entries) and the > side, preserving
// sortedness within each side. Side membership is taken from the split
// dimension's sorted position (the first nL entries), which by
// construction of cutPoint agrees with the "coord <= cut" test.
func (b *builder) partition(lo, hi, dim, nL int) {
	for i, p := range b.order[dim][lo:hi] {
		b.side[p] = i < nL
	}
	for d := 0; d < b.dim; d++ {
		ord := b.order[d][lo:hi]
		tmp := make([]int32, 0, len(ord)-nL)
		w := 0
		for _, p := range ord {
			if b.side[p] {
				ord[w] = p
				w++
			} else {
				tmp = append(tmp, p)
			}
		}
		copy(ord[w:], tmp)
	}
}

// flatten converts the pointer tree to the array form in preorder.
func (t *Tree) flatten(root *bnode) {
	var walk func(n *bnode) int32
	walk = func(n *bnode) int32 {
		idx := int32(len(t.Nodes))
		t.Nodes = append(t.Nodes, Node{
			SplitDim: n.splitDim,
			Pure:     n.pure,
			Cut:      n.cut,
			Left:     -1,
			Right:    -1,
			Part:     n.part,
			Lo:       n.lo,
			Hi:       n.hi,
		})
		if n.left != nil {
			l := walk(n.left)
			r := walk(n.right)
			t.Nodes[idx].Left = l
			t.Nodes[idx].Right = r
		}
		return idx
	}
	walk(root)
}

// LeafIndexOf locates the leaf whose region contains p.
func (t *Tree) LeafIndexOf(p geom.Point) int32 {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			return i
		}
		if p[n.SplitDim] <= n.Cut {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// PartOf returns the majority partition of the leaf containing p.
func (t *Tree) PartOf(p geom.Point) int32 {
	return t.Nodes[t.LeafIndexOf(p)].Part
}

// LeafPoints returns the point indices covered by leaf node l
// (do not modify).
func (t *Tree) LeafPoints(l int32) []int32 {
	n := &t.Nodes[l]
	return t.Perm[n.Lo:n.Hi]
}

// VisitLeavesIntersecting walks every leaf whose region intersects box
// b, calling visit with the leaf's node index. This is the global
// search primitive: a surface element's bounding box is pushed down
// the tree, descending left, right, or both of every decision
// hyperplane (Section 4.1).
func (t *Tree) VisitLeavesIntersecting(b geom.AABB, visit func(leaf int32)) {
	if len(t.Nodes) == 0 {
		return
	}
	var stack [64]int32
	sp := 0
	stack[sp] = 0
	sp++
	for sp > 0 {
		sp--
		i := stack[sp]
		for {
			n := &t.Nodes[i]
			if n.IsLeaf() {
				visit(i)
				break
			}
			goLeft := b.Min[n.SplitDim] <= n.Cut
			goRight := b.Max[n.SplitDim] > n.Cut
			switch {
			case goLeft && goRight:
				if sp < len(stack) {
					stack[sp] = n.Right
					sp++
					i = n.Left
				} else {
					// Extremely deep trees: recurse for the overflow.
					t.visitFrom(n.Right, b, visit)
					i = n.Left
				}
			case goLeft:
				i = n.Left
			default:
				i = n.Right
			}
		}
	}
}

func (t *Tree) visitFrom(i int32, b geom.AABB, visit func(leaf int32)) {
	n := &t.Nodes[i]
	if n.IsLeaf() {
		visit(i)
		return
	}
	if b.Min[n.SplitDim] <= n.Cut {
		t.visitFrom(n.Left, b, visit)
	}
	if b.Max[n.SplitDim] > n.Cut {
		t.visitFrom(n.Right, b, visit)
	}
}

// PartsIntersecting marks in out (length K) every partition that has a
// leaf region intersecting b. Impure leaves mark every partition
// present among their points (never a false negative). out must be
// zeroed by the caller; marked entries are set true.
func (t *Tree) PartsIntersecting(b geom.AABB, labels []int32, out []bool) {
	t.VisitLeavesIntersecting(b, func(leaf int32) {
		n := &t.Nodes[leaf]
		if n.Pure {
			out[n.Part] = true
			return
		}
		for _, p := range t.Perm[n.Lo:n.Hi] {
			out[labels[p]] = true
		}
	})
}

// PointBoxes returns, indexed by node, the tight bounding box of the
// points each *leaf* covers (internal nodes get Empty()). Clipping a
// leaf's region to this box is the refinement the paper's future-work
// section motivates: a leaf's rectangle may include large empty areas,
// and a query only risks contact with the leaf's partition where its
// points actually are. Filtering against the tight box keeps the
// no-false-negative guarantee (every point is inside its leaf's box).
func (t *Tree) PointBoxes(pts []geom.Point) []geom.AABB {
	out := make([]geom.AABB, len(t.Nodes))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if !n.IsLeaf() {
			out[i] = geom.Empty()
			continue
		}
		b := geom.Empty()
		for _, p := range t.Perm[n.Lo:n.Hi] {
			b = b.Extend(pts[p])
		}
		out[i] = b
	}
	return out
}

// PartsIntersectingTight behaves like PartsIntersecting but
// additionally requires the query box to intersect the leaf's tight
// point box (from PointBoxes).
func (t *Tree) PartsIntersectingTight(b geom.AABB, labels []int32, boxes []geom.AABB, out []bool) {
	t.VisitLeavesIntersecting(b, func(leaf int32) {
		if !boxes[leaf].Intersects(b, t.Dim) {
			return
		}
		n := &t.Nodes[leaf]
		if n.Pure {
			out[n.Part] = true
			return
		}
		for _, p := range t.Perm[n.Lo:n.Hi] {
			out[labels[p]] = true
		}
	})
}

// LeafRegions returns the axis-aligned region of every node (internal
// regions included), clipped to root. Regions of leaves partition root.
func (t *Tree) LeafRegions(root geom.AABB) []geom.AABB {
	out := make([]geom.AABB, len(t.Nodes))
	var walk func(i int32, b geom.AABB)
	walk = func(i int32, b geom.AABB) {
		out[i] = b
		n := &t.Nodes[i]
		if n.IsLeaf() {
			return
		}
		lb, rb := b, b
		lb.Max[n.SplitDim] = n.Cut
		rb.Min[n.SplitDim] = n.Cut
		walk(n.Left, lb)
		walk(n.Right, rb)
	}
	if len(t.Nodes) > 0 {
		walk(0, root)
	}
	return out
}
