package dtree

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func buildSample(t testing.TB, n, k int, seed int64) (*Tree, []geom.Point, []int32) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	labels := make([]int32, n)
	for i := range pts {
		pts[i] = geom.P3(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		labels[i] = int32(r.Intn(k))
	}
	tree, err := Build(pts, labels, 3, k, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	return tree, pts, labels
}

func TestTreeRoundTrip(t *testing.T) {
	tree, pts, labels := buildSample(t, 300, 5, 1)
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != tree.Dim || got.K != tree.K || got.NumNodes() != tree.NumNodes() {
		t.Fatalf("header mismatch: %d/%d/%d", got.Dim, got.K, got.NumNodes())
	}
	// Every point classifies identically, and box queries agree.
	for i, p := range pts {
		if got.LeafIndexOf(p) != tree.LeafIndexOf(p) {
			t.Fatalf("point %d lands in a different leaf after round trip", i)
		}
		if got.LeafOf[i] != tree.LeafOf[i] {
			t.Fatalf("LeafOf[%d] differs", i)
		}
	}
	q := geom.AABB{Min: geom.P3(2, 2, 2), Max: geom.P3(5, 5, 5)}
	a := make([]bool, 5)
	b := make([]bool, 5)
	tree.PartsIntersecting(q, labels, a)
	got.PartsIntersecting(q, labels, b)
	for p := range a {
		if a[p] != b[p] {
			t.Fatalf("box query differs at partition %d", p)
		}
	}
}

func TestTreeRoundTripEmpty(t *testing.T) {
	tree, err := Build(nil, nil, 2, 3, Options{Mode: Descriptor})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 {
		t.Fatalf("empty tree decoded with %d nodes", got.NumNodes())
	}
}

func TestReadTreeRejectsGarbage(t *testing.T) {
	if _, err := ReadTree(bytes.NewReader([]byte("junk junk junk junk junk"))); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := ReadTree(bytes.NewReader(nil)); err == nil {
		t.Error("accepted empty stream")
	}
	// Truncation.
	tree, _, _ := buildSample(t, 100, 3, 2)
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTree(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("accepted truncated stream")
	}
}

// FuzzTreeDeserialize feeds arbitrary bytes to ReadTree: corrupt or
// truncated input must come back as an error — never a panic, runaway
// allocation, or structurally invalid tree. Anything that decodes
// successfully must survive a re-encode/re-decode round trip with its
// shape intact (the broadcast wire format is self-describing).
func FuzzTreeDeserialize(f *testing.F) {
	tree, _, _ := buildSample(f, 40, 3, 11)
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:14])          // header only
	f.Add(buf.Bytes()[:buf.Len()/2]) // truncated mid-nodes
	f.Add([]byte("ERTD"))            // magic, nothing else
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTree(bytes.NewReader(data))
		if err != nil {
			if got != nil {
				t.Fatal("ReadTree returned a tree alongside an error")
			}
			return
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-encode of an accepted tree failed: %v", err)
		}
		again, err := ReadTree(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip of an accepted tree rejected: %v", err)
		}
		if again.NumNodes() != got.NumNodes() || len(again.Perm) != len(got.Perm) ||
			again.K != got.K || again.Dim != got.Dim {
			t.Fatal("round trip changed the tree's shape")
		}
	})
}

func TestReadTreeRejectsCorruptStructure(t *testing.T) {
	tree, _, _ := buildSample(t, 50, 3, 3)
	if tree.NumNodes() < 3 {
		t.Skip("degenerate tree")
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt a child pointer to point at itself (cycle): node records
	// start at offset 4+1+1+4+4 = 14; each is 1+1+8+4+4+4+4+4 = 30 bytes;
	// Left is at record offset 10.
	raw := append([]byte(nil), buf.Bytes()...)
	rec0 := 14
	leftOff := rec0 + 10
	raw[leftOff] = 0 // Left = 0 (the root itself)
	raw[leftOff+1] = 0
	raw[leftOff+2] = 0
	raw[leftOff+3] = 0
	if _, err := ReadTree(bytes.NewReader(raw)); err == nil {
		t.Error("accepted a self-referential root")
	}
}
