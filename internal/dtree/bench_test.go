package dtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func benchPoints(n, k int) ([]geom.Point, []int32) {
	r := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, n)
	labels := make([]int32, n)
	for i := range pts {
		pts[i] = geom.P3(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		// Spatially coherent labels (blocks), like a real partition.
		labels[i] = int32((int(pts[i][0]) + int(pts[i][1])*3) % k)
	}
	return pts, labels
}

func BenchmarkBuildDescriptor10k(b *testing.B) {
	pts, labels := benchPoints(10000, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts, labels, 3, 25, Options{Mode: Descriptor}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildDescriptor10kParallel(b *testing.B) {
	pts, labels := benchPoints(10000, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts, labels, 3, 25, Options{Mode: Descriptor, Parallel: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildGuidance50k(b *testing.B) {
	pts, labels := benchPoints(50000, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts, labels, 3, 25, Options{
			Mode: Guidance, MaxPure: 2000, MaxImpure: 80, Parallel: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBoxQuery(b *testing.B) {
	pts, labels := benchPoints(20000, 25)
	tree, err := Build(pts, labels, 3, 25, Options{Mode: Descriptor})
	if err != nil {
		b.Fatal(err)
	}
	q := geom.AABB{Min: geom.P3(4, 4, 4), Max: geom.P3(5, 5, 5)}
	out := make([]bool, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.PartsIntersecting(q, labels, out)
		for p := range out {
			out[p] = false
		}
	}
}

func BenchmarkPointLocate(b *testing.B) {
	pts, labels := benchPoints(20000, 25)
	tree, err := Build(pts, labels, 3, 25, Options{Mode: Descriptor})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.LeafIndexOf(pts[i%len(pts)])
	}
}
