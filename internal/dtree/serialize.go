package dtree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary encoding of a decision tree. Section 4.1.1 notes the tree
// must be "built in parallel and communicated to all the processors";
// this is the wire format for that broadcast. The encoding carries the
// node array plus the per-leaf point permutation, so impure-leaf
// queries keep working after a round trip (given the same labels).

const (
	treeMagic   = uint32(0x44545245) // "DTRE"
	treeVersion = uint8(1)
)

// WriteTo encodes the tree; it implements io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	le := binary.LittleEndian

	put32 := func(v uint32) {
		var b [4]byte
		le.PutUint32(b[:], v)
		bw.Write(b[:])
	}
	put64 := func(v uint64) {
		var b [8]byte
		le.PutUint64(b[:], v)
		bw.Write(b[:])
	}

	put32(treeMagic)
	bw.WriteByte(treeVersion)
	bw.WriteByte(uint8(t.Dim))
	put32(uint32(t.K))
	put32(uint32(len(t.Nodes)))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		bw.WriteByte(uint8(n.SplitDim))
		if n.Pure {
			bw.WriteByte(1)
		} else {
			bw.WriteByte(0)
		}
		put64(math.Float64bits(n.Cut))
		put32(uint32(n.Left))
		put32(uint32(n.Right))
		put32(uint32(n.Part))
		put32(uint32(n.Lo))
		put32(uint32(n.Hi))
	}
	put32(uint32(len(t.Perm)))
	for _, p := range t.Perm {
		put32(uint32(p))
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadTree decodes a tree written by WriteTo and rebuilds the LeafOf
// index.
func ReadTree(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var err error
	get32 := func() uint32 {
		if err != nil {
			return 0
		}
		var b [4]byte
		if _, e := io.ReadFull(br, b[:]); e != nil {
			err = e
			return 0
		}
		return le.Uint32(b[:])
	}
	get64 := func() uint64 {
		if err != nil {
			return 0
		}
		var b [8]byte
		if _, e := io.ReadFull(br, b[:]); e != nil {
			err = e
			return 0
		}
		return le.Uint64(b[:])
	}
	getByte := func() uint8 {
		if err != nil {
			return 0
		}
		b, e := br.ReadByte()
		if e != nil {
			err = e
			return 0
		}
		return b
	}

	if magic := get32(); err == nil && magic != treeMagic {
		return nil, fmt.Errorf("dtree: bad magic %#x", magic)
	}
	if v := getByte(); err == nil && v != treeVersion {
		return nil, fmt.Errorf("dtree: unsupported version %d", v)
	}
	t := &Tree{Dim: int(getByte()), K: int(get32())}
	if err == nil && (t.Dim < 2 || t.Dim > 3 || t.K < 1) {
		return nil, fmt.Errorf("dtree: bad header dim=%d k=%d", t.Dim, t.K)
	}
	const maxCount = 1 << 28
	nn := get32()
	if err == nil && nn > maxCount {
		return nil, fmt.Errorf("dtree: implausible node count %d", nn)
	}
	// The counts are attacker-controlled (this is the broadcast wire
	// format), so grow the slices as records actually decode instead
	// of allocating nn records up front: a corrupt header claiming
	// 2^28 nodes over a 10-byte stream must fail on truncation, not
	// allocate gigabytes first. The loops stop at the first read
	// error.
	t.Nodes = make([]Node, 0, min(int(nn), 4096))
	for i := uint32(0); i < nn && err == nil; i++ {
		var n Node
		n.SplitDim = int8(getByte())
		n.Pure = getByte() != 0
		n.Cut = math.Float64frombits(get64())
		n.Left = int32(get32())
		n.Right = int32(get32())
		n.Part = int32(get32())
		n.Lo = int32(get32())
		n.Hi = int32(get32())
		if err == nil {
			t.Nodes = append(t.Nodes, n)
		}
	}
	np := get32()
	if err == nil && np > maxCount {
		return nil, fmt.Errorf("dtree: implausible perm length %d", np)
	}
	t.Perm = make([]int32, 0, min(int(np), 4096))
	for i := uint32(0); i < np && err == nil; i++ {
		p := int32(get32())
		if err == nil {
			t.Perm = append(t.Perm, p)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("dtree: decode: %w", err)
	}

	// Structural validation + LeafOf reconstruction. Leaf ranges in a
	// valid tree are disjoint slices of Perm, so their lengths sum to at
	// most len(Perm); enforcing that keeps reconstruction linear even
	// for hostile inputs where every node claims the full range.
	t.LeafOf = make([]int32, len(t.Perm))
	covered := 0
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			if n.Lo < 0 || n.Hi < n.Lo || int(n.Hi) > len(t.Perm) {
				return nil, fmt.Errorf("dtree: leaf %d has range [%d,%d)", i, n.Lo, n.Hi)
			}
			if covered += int(n.Hi - n.Lo); covered > len(t.Perm) {
				return nil, fmt.Errorf("dtree: leaf ranges overlap at node %d", i)
			}
			for _, p := range t.Perm[n.Lo:n.Hi] {
				if p < 0 || int(p) >= len(t.Perm) {
					return nil, fmt.Errorf("dtree: leaf %d references point %d", i, p)
				}
				t.LeafOf[p] = int32(i)
			}
			continue
		}
		if n.Left <= 0 || n.Right <= 0 || int(n.Left) >= len(t.Nodes) || int(n.Right) >= len(t.Nodes) {
			return nil, fmt.Errorf("dtree: node %d has children %d, %d", i, n.Left, n.Right)
		}
		if int(n.SplitDim) < 0 || int(n.SplitDim) >= t.Dim {
			return nil, fmt.Errorf("dtree: node %d splits dim %d in %dD", i, n.SplitDim, t.Dim)
		}
	}
	return t, nil
}
