package backend

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
)

// gridInput builds a jittered nx×ny×nz grid graph with ncon vertex
// weights (component 0 always >= 1) and 6-neighborhood edges — a stand-
// in for a nodal mesh graph that every backend, graph-based or
// geometric, can partition.
func gridInput(r *rand.Rand, nx, ny, nz, ncon int) Input {
	n := nx * ny * nz
	b := graph.NewBuilder(n, ncon)
	coords := make([]geom.Point, n)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := id(x, y, z)
				coords[v] = geom.P3(
					float64(x)+0.3*r.Float64(),
					float64(y)+0.3*r.Float64(),
					float64(z)+0.3*r.Float64())
				b.SetWeight(v, 0, 1+int32(r.Intn(3)))
				for j := 1; j < ncon; j++ {
					if r.Intn(4) == 0 {
						b.SetWeight(v, j, int32(1+r.Intn(3)))
					}
				}
				if x > 0 {
					b.AddEdge(v, id(x-1, y, z), 1)
				}
				if y > 0 {
					b.AddEdge(v, id(x, y-1, z), 1)
				}
				if z > 0 {
					b.AddEdge(v, id(x, y, z-1), 1)
				}
			}
		}
	}
	return Input{Graph: b.Build(), Coords: coords, Dim: 3}
}

// oracleCut recomputes the edge cut straight off the CSR arrays — the
// independent oracle the per-backend suite compares against.
func oracleCut(g *graph.Graph, labels []int32) int64 {
	var cut int64
	for v := 0; v < g.NV(); v++ {
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			if u := g.Adj[i]; labels[v] != labels[u] {
				cut += int64(g.AdjWgt[i])
			}
		}
	}
	return cut / 2
}

// TestBackendInvariants runs the shared property suite against every
// registered backend through the Partitioner interface: labels in
// range, every part non-empty, deterministic reruns, and per-constraint
// load bounds scoped by the backend's capability flags.
func TestBackendInvariants(t *testing.T) {
	for _, name := range Names() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(29))
			for _, tc := range []struct{ k, ncon int }{{2, 1}, {4, 2}, {9, 2}} {
				in := gridInput(r, 12, 10, 8, tc.ncon)
				opt := Options{K: tc.k, Seed: 5, Imbalance: 0.05}
				labels, err := p.Partition(in, opt)
				if err != nil {
					t.Fatalf("k=%d ncon=%d: %v", tc.k, tc.ncon, err)
				}
				n := in.Graph.NV()
				if len(labels) != n {
					t.Fatalf("k=%d: %d labels for %d vertices", tc.k, len(labels), n)
				}
				counts := make([]int, tc.k)
				for v, l := range labels {
					if l < 0 || int(l) >= tc.k {
						t.Fatalf("k=%d: vertex %d label %d out of range", tc.k, v, l)
					}
					counts[l]++
				}
				for part, c := range counts {
					if c == 0 {
						t.Errorf("k=%d ncon=%d: part %d empty", tc.k, tc.ncon, part)
					}
				}

				checkLoads(t, in, labels, tc.k, p.Caps())

				if cut := oracleCut(in.Graph, labels); cut < 0 || (tc.k > 1 && cut == 0) {
					t.Errorf("k=%d: implausible edge cut %d", tc.k, cut)
				}

				again, err := p.Partition(in, opt)
				if err != nil {
					t.Fatal(err)
				}
				for v := range labels {
					if again[v] != labels[v] {
						t.Fatalf("k=%d ncon=%d: rerun diverged at vertex %d", tc.k, tc.ncon, v)
					}
				}
			}
		})
	}
}

// checkLoads asserts per-constraint balance: every component for
// MultiConstraint backends, only component 0 otherwise. The bound is
// deliberately loose — each backend has its own tight bound in its own
// package; here the property is "no part grossly overloaded".
func checkLoads(t *testing.T, in Input, labels []int32, k int, caps Caps) {
	t.Helper()
	g := in.Graph
	ncheck := 1
	if caps.MultiConstraint {
		ncheck = g.NCon
	}
	for j := 0; j < ncheck; j++ {
		loads := make([]int64, k)
		var total, maxw int64
		for v := 0; v < g.NV(); v++ {
			w := int64(g.Weight(v, j))
			loads[labels[v]] += w
			total += w
			if w > maxw {
				maxw = w
			}
		}
		if total == 0 {
			continue
		}
		limit := 1.5*float64(total)/float64(k) + float64(maxw) + 1
		for part := 0; part < k; part++ {
			if float64(loads[part]) > limit {
				t.Errorf("constraint %d: part %d load %d exceeds %.1f (avg %.1f)",
					j, part, loads[part], limit, float64(total)/float64(k))
			}
		}
	}
}

// TestBackendCutOracle cross-checks that, for every backend, the cut of
// the produced labels equals the oracle recomputation when measured
// twice (catches any backend returning aliased or mutated label
// slices).
func TestBackendCutOracle(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	in := gridInput(r, 10, 9, 7, 2)
	for _, name := range Names() {
		p, _ := Lookup(name)
		labels, err := p.Partition(in, Options{K: 6, Seed: 3, Imbalance: 0.05})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c1 := oracleCut(in.Graph, labels)
		c2 := oracleCut(in.Graph, labels)
		if c1 != c2 {
			t.Errorf("%s: oracle cut unstable: %d vs %d", name, c1, c2)
		}
	}
}

func TestLookup(t *testing.T) {
	def, err := Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != "multilevel" {
		t.Errorf("empty name resolved to %q, want multilevel", def.Name())
	}
	if _, err := Lookup("quadtree"); err == nil {
		t.Error("unknown backend accepted")
	}
	want := []string{"bkmeans", "multilevel", "rcb", "sfc"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestNeedsCoordsValidation(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	in := gridInput(r, 4, 4, 4, 1)
	in.Coords = nil
	for _, name := range Names() {
		p, _ := Lookup(name)
		_, err := p.Partition(in, Options{K: 2, Seed: 1})
		if p.Caps().NeedsCoords && err == nil {
			t.Errorf("%s: accepted nil coords", name)
		}
		if !p.Caps().NeedsCoords && err != nil {
			t.Errorf("%s: rejected nil coords: %v", name, err)
		}
	}
}
