// Package backend defines the Partitioner interface — the seam between
// the decomposition pipeline (core, harness, CLIs) and the concrete
// partitioning algorithms — and registers the four implementations:
//
//	multilevel  the multilevel multi-constraint k-way partitioner
//	            (internal/partition), the paper's step 2 and the only
//	            backend that supports warm-started repartitioning;
//	rcb         multi-constraint recursive coordinate bisection
//	            (internal/rcb), the geometric baseline of the paper's
//	            conclusions;
//	sfc         Hilbert space-filling-curve splitting (internal/sfc),
//	            the near-linear-time geometric fast path;
//	bkmeans     balanced k-means (internal/bkmeans), compact geometric
//	            clusters under a primary-weight capacity constraint.
//
// Capability flags (Caps) tell callers what each backend can honor, so
// the pipeline gates reshaping and warm-starting on capabilities
// instead of on backend identity.
package backend

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bkmeans"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/rcb"
	"repro/internal/sfc"
)

// Input carries everything a backend may consume: the weighted nodal
// graph (always present) and, for geometric backends, the node
// coordinates. len(Coords) == Graph.NV() whenever Coords is non-nil.
type Input struct {
	Graph  *graph.Graph
	Coords []geom.Point
	Dim    int
}

// Options are the backend-independent partitioning knobs. Backends
// ignore what they cannot use (e.g. rcb has no randomized phase, so
// Seed is a no-op there).
type Options struct {
	K         int
	Seed      int64
	Imbalance float64
	// Workers bounds worker pools in backends that parallelize (<= 0 =
	// GOMAXPROCS). Labels never depend on it.
	Workers int
	Obs     *obs.Collector
	Span    *obs.Span
	// Ctx, when non-nil, carries a per-call deadline/cancellation into
	// the backend: the multilevel partitioner stops its recursion
	// promptly and returns the context's error (partition.KWayCtx); the
	// near-linear geometric backends check it once at entry. Labels of
	// a run that completes never depend on Ctx. Nil means
	// context.Background() (never cancelled).
	Ctx context.Context
}

// ctx resolves the options' context, nil meaning Background.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	//lint:ignore ctxflow nil Ctx means the caller opted out of cancellation; this is the documented default
	return context.Background()
}

// Caps describes what a backend supports. Callers branch on these
// flags, never on the backend's name.
type Caps struct {
	// MultiConstraint: all vertex-weight components are balanced (sfc
	// honors them best-effort along the curve; bkmeans balances only
	// component 0 and reports false).
	MultiConstraint bool
	// NeedsCoords: Input.Coords must be non-nil.
	NeedsCoords bool
	// Reshape: the labels benefit from the tree-guided reshape steps
	// (3-4). Geometric backends produce box-like subdomains already, so
	// reshaping is skipped for them.
	Reshape bool
	// Warmstart: the backend supports drift-graded warm-started
	// repartitioning (core.AdaptiveDecompose).
	Warmstart bool
}

// Partitioner is one partitioning algorithm behind a uniform seam:
// labels and weights in, one label per graph vertex out.
type Partitioner interface {
	Name() string
	Caps() Caps
	Partition(in Input, opt Options) ([]int32, error)
}

// registry maps backend names to implementations. "" is an alias for
// "multilevel" so zero-value configs keep the paper's default pipeline.
var registry = map[string]Partitioner{
	"multilevel": multilevel{},
	"rcb":        rcbBackend{},
	"sfc":        sfcBackend{},
	"bkmeans":    bkmeansBackend{},
}

// Lookup resolves a backend name ("" = multilevel). Unknown names list
// the valid ones in the error.
func Lookup(name string) (Partitioner, error) {
	if name == "" {
		name = "multilevel"
	}
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("backend: unknown partitioner %q (valid: %v)", name, Names())
	}
	return p, nil
}

// Names returns the registered backend names in a fixed sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// checkInput validates the parts of Input every backend needs, plus
// coordinates when the backend requires them, and refuses to start
// work under an already-dead context.
func checkInput(in Input, caps Caps, name string, opt Options) error {
	if err := opt.ctx().Err(); err != nil {
		return err
	}
	if in.Graph == nil {
		return fmt.Errorf("backend/%s: nil graph", name)
	}
	if caps.NeedsCoords {
		if in.Coords == nil {
			return fmt.Errorf("backend/%s: geometric backend needs coordinates", name)
		}
		if len(in.Coords) != in.Graph.NV() {
			return fmt.Errorf("backend/%s: %d coords for %d vertices", name, len(in.Coords), in.Graph.NV())
		}
	}
	return nil
}

type multilevel struct{}

func (multilevel) Name() string { return "multilevel" }
func (multilevel) Caps() Caps {
	return Caps{MultiConstraint: true, Reshape: true, Warmstart: true}
}
func (b multilevel) Partition(in Input, opt Options) ([]int32, error) {
	if err := checkInput(in, b.Caps(), b.Name(), opt); err != nil {
		return nil, err
	}
	return partition.KWayCtx(opt.ctx(), in.Graph, partition.Options{
		K: opt.K, Seed: opt.Seed, Imbalance: opt.Imbalance,
		Workers: opt.Workers, Obs: opt.Obs, Span: opt.Span,
	})
}

type rcbBackend struct{}

func (rcbBackend) Name() string { return "rcb" }
func (rcbBackend) Caps() Caps {
	return Caps{MultiConstraint: true, NeedsCoords: true}
}
func (b rcbBackend) Partition(in Input, opt Options) ([]int32, error) {
	if err := checkInput(in, b.Caps(), b.Name(), opt); err != nil {
		return nil, err
	}
	_, labels, err := rcb.BuildMC(in.Coords, in.Graph.VWgt, in.Graph.NCon, in.Dim, opt.K)
	return labels, err
}

type sfcBackend struct{}

func (sfcBackend) Name() string { return "sfc" }
func (sfcBackend) Caps() Caps {
	// MultiConstraint is best-effort: the curve split minimizes the
	// worst per-constraint deviation reachable by contiguous segments.
	return Caps{MultiConstraint: true, NeedsCoords: true}
}
func (b sfcBackend) Partition(in Input, opt Options) ([]int32, error) {
	if err := checkInput(in, b.Caps(), b.Name(), opt); err != nil {
		return nil, err
	}
	return sfc.Partition(in.Coords, in.Graph.VWgt, in.Graph.NCon, in.Dim, opt.K, sfc.Options{
		K: opt.K, Workers: opt.Workers, Obs: opt.Obs, Span: opt.Span,
	})
}

type bkmeansBackend struct{}

func (bkmeansBackend) Name() string { return "bkmeans" }
func (bkmeansBackend) Caps() Caps {
	return Caps{NeedsCoords: true}
}
func (b bkmeansBackend) Partition(in Input, opt Options) ([]int32, error) {
	if err := checkInput(in, b.Caps(), b.Name(), opt); err != nil {
		return nil, err
	}
	return bkmeans.Partition(in.Coords, in.Graph.VWgt, in.Graph.NCon, in.Dim, opt.K, bkmeans.Options{
		K: opt.K, Seed: opt.Seed, Imbalance: opt.Imbalance,
		Workers: opt.Workers, Obs: opt.Obs, Span: opt.Span,
	})
}
