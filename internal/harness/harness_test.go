package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func testSnaps(t *testing.T, n int) []sim.Snapshot {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Scene.PlateNX, cfg.Scene.PlateNY, cfg.Scene.PlateNZ = 12, 12, 2
	cfg.Scene.ProjN, cfg.Scene.ProjLen = 2, 6
	cfg.Scene.ContactRadius = 4
	cfg.Steps = 10 * n
	cfg.Snapshots = n
	snaps, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

func TestRunProducesAllMetrics(t *testing.T) {
	snaps := testSnaps(t, 4)
	r, err := Run(snaps, Config{K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	a := r.Avg
	if a.MCFEComm <= 0 || a.MLFEComm <= 0 {
		t.Error("FEComm missing")
	}
	if a.MCNTNodes <= 0 {
		t.Error("NTNodes missing")
	}
	if a.MCNRemote < 0 || a.MLNRemote < 0 {
		t.Error("NRemote negative")
	}
	if a.MLM2MComm <= 0 {
		t.Error("M2MComm should be positive for decoupled decompositions")
	}
	if a.MLUpdComm < 0 {
		t.Error("UpdComm negative")
	}
	if a.MCImbalanceFE < 1 || a.MCImbalanceContact < 1 {
		t.Errorf("imbalances: %v %v", a.MCImbalanceFE, a.MCImbalanceContact)
	}
}

func TestRunEmptyInput(t *testing.T) {
	if _, err := Run(nil, Config{K: 4}); err == nil {
		t.Error("accepted empty snapshot list")
	}
}

func TestRunDeterministic(t *testing.T) {
	snaps := testSnaps(t, 3)
	a, err := Run(snaps, Config{K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(snaps, Config{K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

func TestUpdCommZeroAtFirstSnapshot(t *testing.T) {
	snaps := testSnaps(t, 3)
	r, err := Run(snaps, Config{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0].MLUpdComm != 0 {
		t.Errorf("snapshot 0 UpdComm = %d", r.Rows[0].MLUpdComm)
	}
}

func TestRepartitionEveryRuns(t *testing.T) {
	snaps := testSnaps(t, 4)
	r, err := Run(snaps, Config{K: 4, Seed: 4, RepartitionEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
}

func TestAblationFlagsChangeResults(t *testing.T) {
	snaps := testSnaps(t, 2)
	base, err := Run(snaps, Config{K: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(snaps, Config{K: 6, Seed: 5, LooseTreeFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Avg.MCNRemote < base.Avg.MCNRemote {
		t.Errorf("loose filter NRemote %.0f < tight %.0f", loose.Avg.MCNRemote, base.Avg.MCNRemote)
	}
	w1, err := Run(snaps, Config{K: 6, Seed: 5, ContactEdgeWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = w1 // just verifying the configuration path runs
}

func TestWriteTableFormat(t *testing.T) {
	snaps := testSnaps(t, 2)
	r, err := Run(snaps, Config{K: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteTable(&buf, []*Result{r})
	out := buf.String()
	for _, want := range []string{"MCML+DT", "ML+RCB", "FEComm", "NTNodes", "M2MComm", "UpdComm", "4-way"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	WriteDerived(&buf2, []*Result{r})
	if !strings.Contains(buf2.String(), "pre-search communication") {
		t.Errorf("derived output: %s", buf2.String())
	}
}

func TestWriteCSV(t *testing.T) {
	snaps := testSnaps(t, 2)
	r, err := Run(snaps, Config{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Result{r}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+2 { // header + 2 snapshots
		t.Fatalf("%d CSV lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "k,snapshot,mc_fecomm") {
		t.Errorf("header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "4,0,") {
		t.Errorf("row: %s", lines[1])
	}
}

func TestIncrementalRepartitionPath(t *testing.T) {
	snaps := testSnaps(t, 4)
	r, err := Run(snaps, Config{K: 4, Seed: 8, RepartitionEvery: 2, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// All metrics still produced.
	if r.Avg.MCFEComm <= 0 || r.Avg.MCNTNodes <= 0 {
		t.Errorf("incremental run lost metrics: %+v", r.Avg)
	}
}

func TestGeometricPipelinePath(t *testing.T) {
	snaps := testSnaps(t, 2)
	r, err := Run(snaps, Config{K: 4, Seed: 9, Geometric: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Avg.MCNTNodes <= 0 {
		t.Error("geometric run produced no tree")
	}
}

// TestTable1QualitativeShape pins the relations the paper's Table 1
// demonstrates, on the fast profile: the multi-constraint partition
// pays more FEComm than the single-constraint baseline; the decoupled
// baseline pays a large M2MComm (a sizable fraction of the contact
// nodes) and a small UpdComm; and the total pre-search communication
// favors MCML+DT.
func TestTable1QualitativeShape(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Steps = 60
	cfg.Snapshots = 6
	snaps, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(snaps, Config{K: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := r.Avg
	if a.MCFEComm <= a.MLFEComm {
		t.Errorf("MC FEComm %.0f should exceed ML %.0f (two constraints cost)", a.MCFEComm, a.MLFEComm)
	}
	contacts := float64(len(snaps[0].Mesh.ContactNodes()))
	if a.MLM2MComm < contacts/4 {
		t.Errorf("M2MComm %.0f suspiciously small for %d contacts", a.MLM2MComm, int(contacts))
	}
	if a.MLUpdComm >= a.MLM2MComm {
		t.Errorf("UpdComm %.0f should be far below M2MComm %.0f", a.MLUpdComm, a.MLM2MComm)
	}
	mlTotal := a.MLFEComm + 2*a.MLM2MComm + a.MLUpdComm
	if mlTotal <= a.MCFEComm {
		t.Errorf("headline inverted: ML total %.0f <= MC FEComm %.0f", mlTotal, a.MCFEComm)
	}
}

// TestLabelsCarriedAcrossErosion verifies the persistent-id label
// carry: on later snapshots every node must still have a label in
// range even after erosion removed and renumbered nodes.
func TestLabelsCarriedAcrossErosion(t *testing.T) {
	snaps := testSnaps(t, 5)
	// The mesh must actually have shrunk for this test to bite.
	if snaps[len(snaps)-1].Mesh.NumNodes() >= snaps[0].Mesh.NumNodes() {
		t.Skip("no erosion in this configuration")
	}
	r, err := Run(snaps, Config{K: 5, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Metrics on the last row must still be sane.
	last := r.Rows[len(r.Rows)-1]
	if last.MCFEComm <= 0 || last.MCNTNodes <= 0 {
		t.Errorf("last-row metrics degenerate: %+v", last)
	}
}
