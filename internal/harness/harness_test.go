package harness

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

func testSnaps(t *testing.T, n int) []sim.Snapshot {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Scene.PlateNX, cfg.Scene.PlateNY, cfg.Scene.PlateNZ = 12, 12, 2
	cfg.Scene.ProjN, cfg.Scene.ProjLen = 2, 6
	cfg.Scene.ContactRadius = 4
	cfg.Steps = 10 * n
	cfg.Snapshots = n
	snaps, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

func TestRunProducesAllMetrics(t *testing.T) {
	snaps := testSnaps(t, 4)
	r, err := Run(snaps, Config{K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	a := r.Avg
	if a.MCFEComm <= 0 || a.MLFEComm <= 0 {
		t.Error("FEComm missing")
	}
	if a.MCNTNodes <= 0 {
		t.Error("NTNodes missing")
	}
	if a.MCNRemote < 0 || a.MLNRemote < 0 {
		t.Error("NRemote negative")
	}
	if a.MLM2MComm <= 0 {
		t.Error("M2MComm should be positive for decoupled decompositions")
	}
	if a.MLUpdComm < 0 {
		t.Error("UpdComm negative")
	}
	if a.MCImbalanceFE < 1 || a.MCImbalanceContact < 1 {
		t.Errorf("imbalances: %v %v", a.MCImbalanceFE, a.MCImbalanceContact)
	}
}

func TestRunEmptyInput(t *testing.T) {
	if _, err := Run(nil, Config{K: 4}); err == nil {
		t.Error("accepted empty snapshot list")
	}
}

func TestRunDeterministic(t *testing.T) {
	snaps := testSnaps(t, 3)
	a, err := Run(snaps, Config{K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(snaps, Config{K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

func TestUpdCommZeroAtFirstSnapshot(t *testing.T) {
	snaps := testSnaps(t, 3)
	r, err := Run(snaps, Config{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0].MLUpdComm != 0 {
		t.Errorf("snapshot 0 UpdComm = %d", r.Rows[0].MLUpdComm)
	}
}

func TestRepartitionEveryRuns(t *testing.T) {
	snaps := testSnaps(t, 4)
	r, err := Run(snaps, Config{K: 4, Seed: 4, RepartitionEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
}

func TestAblationFlagsChangeResults(t *testing.T) {
	snaps := testSnaps(t, 2)
	base, err := Run(snaps, Config{K: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(snaps, Config{K: 6, Seed: 5, LooseTreeFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Avg.MCNRemote < base.Avg.MCNRemote {
		t.Errorf("loose filter NRemote %.0f < tight %.0f", loose.Avg.MCNRemote, base.Avg.MCNRemote)
	}
	w1, err := Run(snaps, Config{K: 6, Seed: 5, ContactEdgeWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = w1 // just verifying the configuration path runs
}

func TestWriteTableFormat(t *testing.T) {
	snaps := testSnaps(t, 2)
	r, err := Run(snaps, Config{K: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteTable(&buf, []*Result{r})
	out := buf.String()
	for _, want := range []string{"MCML+DT", "ML+RCB", "FEComm", "NTNodes", "M2MComm", "UpdComm", "4-way"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	WriteDerived(&buf2, []*Result{r})
	if !strings.Contains(buf2.String(), "pre-search communication") {
		t.Errorf("derived output: %s", buf2.String())
	}
}

func TestWriteCSV(t *testing.T) {
	snaps := testSnaps(t, 2)
	r, err := Run(snaps, Config{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Result{r}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+2 { // header + 2 snapshots
		t.Fatalf("%d CSV lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "k,snapshot,mc_fecomm") {
		t.Errorf("header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "4,0,") {
		t.Errorf("row: %s", lines[1])
	}
}

func TestIncrementalRepartitionPath(t *testing.T) {
	snaps := testSnaps(t, 4)
	r, err := Run(snaps, Config{K: 4, Seed: 8, RepartitionEvery: 2, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// All metrics still produced.
	if r.Avg.MCFEComm <= 0 || r.Avg.MCNTNodes <= 0 {
		t.Errorf("incremental run lost metrics: %+v", r.Avg)
	}
}

func TestGeometricPipelinePath(t *testing.T) {
	snaps := testSnaps(t, 2)
	for _, be := range []string{"rcb", "sfc", "bkmeans"} {
		r, err := Run(snaps, Config{K: 4, Seed: 9, Backend: be})
		if err != nil {
			t.Fatalf("%s: %v", be, err)
		}
		if r.Avg.MCNTNodes <= 0 {
			t.Errorf("%s run produced no tree", be)
		}
	}
}

// TestSerialLegsMatchConcurrentLegs: the per-snapshot MCML+DT and
// ML+RCB measurement legs run concurrently by default; the rows must
// be identical to the strictly serial evaluation.
func TestSerialLegsMatchConcurrentLegs(t *testing.T) {
	snaps := testSnaps(t, 4)
	conc, err := Run(snaps, Config{K: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := Run(snaps, Config{K: 6, Seed: 2, SerialLegs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(conc.Rows) != len(ser.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(conc.Rows), len(ser.Rows))
	}
	for i := range conc.Rows {
		if conc.Rows[i] != ser.Rows[i] {
			t.Errorf("row %d: concurrent %+v != serial %+v", i, conc.Rows[i], ser.Rows[i])
		}
	}
	if conc.Avg != ser.Avg {
		t.Errorf("averages differ:\nconcurrent %+v\nserial     %+v", conc.Avg, ser.Avg)
	}
}

// TestRunAllMatchesSerialSweep: the concurrent k-sweep must produce
// Result.Rows identical to running each config through Run in a loop.
func TestRunAllMatchesSerialSweep(t *testing.T) {
	snaps := testSnaps(t, 3)
	ks := []int{4, 8, 16}
	cfgs := make([]Config, len(ks))
	for i, k := range ks {
		cfgs[i] = Config{K: k, Seed: 3}
	}

	var serial []*Result
	for _, c := range cfgs {
		r, err := Run(snaps, c)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, r)
	}
	concurrent, err := RunAll(snaps, cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(concurrent) != len(serial) {
		t.Fatalf("%d results, want %d", len(concurrent), len(serial))
	}
	for i := range serial {
		if concurrent[i].K != serial[i].K {
			t.Fatalf("result %d out of order: k=%d want %d", i, concurrent[i].K, serial[i].K)
		}
		for j := range serial[i].Rows {
			if concurrent[i].Rows[j] != serial[i].Rows[j] {
				t.Errorf("k=%d row %d: %+v != %+v", serial[i].K, j,
					concurrent[i].Rows[j], serial[i].Rows[j])
			}
		}
		if concurrent[i].Avg != serial[i].Avg {
			t.Errorf("k=%d averages differ", serial[i].K)
		}
	}
}

// TestRunAllSpeedup measures the wall-clock win of the concurrent
// sweep; the acceptance bar is >1.5x on >= 4 cores. Timing is retried
// once to ride out scheduler noise on loaded hosts.
func TestRunAllSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("%d cores; speedup bar needs >= 4", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	snaps := testSnaps(t, 6)
	ks := []int{4, 8, 16}
	cfgs := make([]Config, len(ks))
	for i, k := range ks {
		// SerialLegs isolates the sweep-level speedup being measured.
		cfgs[i] = Config{K: k, Seed: 4, SerialLegs: true}
	}

	measure := func() (float64, error) {
		t0 := time.Now()
		for _, c := range cfgs {
			if _, err := Run(snaps, c); err != nil {
				return 0, err
			}
		}
		serialDur := time.Since(t0)
		t1 := time.Now()
		if _, err := RunAll(snaps, cfgs, 0); err != nil {
			return 0, err
		}
		concDur := time.Since(t1)
		t.Logf("serial %v, concurrent %v, speedup %.2fx",
			serialDur, concDur, float64(serialDur)/float64(concDur))
		return float64(serialDur) / float64(concDur), nil
	}

	best := 0.0
	for attempt := 0; attempt < 2; attempt++ {
		s, err := measure()
		if err != nil {
			t.Fatal(err)
		}
		if s > best {
			best = s
		}
		if best > 1.5 {
			return
		}
	}
	t.Errorf("concurrent sweep speedup %.2fx, want > 1.5x", best)
}

func TestRunRecordsObsPhases(t *testing.T) {
	snaps := testSnaps(t, 2)
	col := obs.New()
	if _, err := Run(snaps, Config{K: 4, Seed: 5, Obs: col}); err != nil {
		t.Fatal(err)
	}
	r := col.Report()
	got := map[string]obs.PhaseStat{}
	for _, p := range r.Phases {
		got[p.Name] = p
	}
	for _, name := range []string{"partition", "tree_induction", "metric_eval"} {
		if got[name].Count == 0 {
			t.Errorf("phase %q not recorded (report: %+v)", name, r.Phases)
		}
	}
	// metric_eval runs once per leg per snapshot.
	if got["metric_eval"].Count != int64(2*len(snaps)) {
		t.Errorf("metric_eval count %d, want %d", got["metric_eval"].Count, 2*len(snaps))
	}
}

// TestTable1QualitativeShape pins the relations the paper's Table 1
// demonstrates, on the fast profile: the multi-constraint partition
// pays more FEComm than the single-constraint baseline; the decoupled
// baseline pays a large M2MComm (a sizable fraction of the contact
// nodes) and a small UpdComm; and the total pre-search communication
// favors MCML+DT.
func TestTable1QualitativeShape(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Steps = 60
	cfg.Snapshots = 6
	snaps, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(snaps, Config{K: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := r.Avg
	if a.MCFEComm <= a.MLFEComm {
		t.Errorf("MC FEComm %.0f should exceed ML %.0f (two constraints cost)", a.MCFEComm, a.MLFEComm)
	}
	contacts := float64(len(snaps[0].Mesh.ContactNodes()))
	if a.MLM2MComm < contacts/4 {
		t.Errorf("M2MComm %.0f suspiciously small for %d contacts", a.MLM2MComm, int(contacts))
	}
	if a.MLUpdComm >= a.MLM2MComm {
		t.Errorf("UpdComm %.0f should be far below M2MComm %.0f", a.MLUpdComm, a.MLM2MComm)
	}
	mlTotal := a.MLFEComm + 2*a.MLM2MComm + a.MLUpdComm
	if mlTotal <= a.MCFEComm {
		t.Errorf("headline inverted: ML total %.0f <= MC FEComm %.0f", mlTotal, a.MCFEComm)
	}
}

// TestLabelsCarriedAcrossErosion verifies the persistent-id label
// carry: on later snapshots every node must still have a label in
// range even after erosion removed and renumbered nodes.
func TestLabelsCarriedAcrossErosion(t *testing.T) {
	snaps := testSnaps(t, 5)
	// The mesh must actually have shrunk for this test to bite.
	if snaps[len(snaps)-1].Mesh.NumNodes() >= snaps[0].Mesh.NumNodes() {
		t.Skip("no erosion in this configuration")
	}
	r, err := Run(snaps, Config{K: 5, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Metrics on the last row must still be sane.
	last := r.Rows[len(r.Rows)-1]
	if last.MCFEComm <= 0 || last.MCNTNodes <= 0 {
		t.Errorf("last-row metrics degenerate: %+v", last)
	}
}
