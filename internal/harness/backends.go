package harness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/mlrcb"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/sim"
)

// BackendRow is one leg of the backend crossover comparison: the
// snapshot-averaged quality metrics plus the partitioning speed of one
// algorithm at one k.
type BackendRow struct {
	// Leg identifies the pipeline: "mcml+dt" (multilevel + reshape),
	// "ml+rcb" (the paper's baseline), "sfc", or "bkmeans".
	Leg string `json:"leg"`
	// Cut is the average nodal-graph edge cut over the snapshots.
	Cut float64 `json:"cut"`
	// ImbalanceFE / ImbalanceContact are the average per-constraint
	// load imbalances (max/avg, 1.0 = perfect).
	ImbalanceFE      float64 `json:"imbalance_fe"`
	ImbalanceContact float64 `json:"imbalance_contact"`
	// NRemote is the average global-search volume.
	NRemote float64 `json:"nremote"`
	// PartitionNS is the best-of-runs wall time of one partitioning
	// call on the first snapshot (the leg's raw partitioner only, no
	// tree induction).
	PartitionNS int64 `json:"partition_ns"`
}

// BackendComparison is the 4-way comparison at one k — one element of
// the BENCH_backends.json crossover table.
type BackendComparison struct {
	K         int          `json:"k"`
	Snapshots int          `json:"snapshots"`
	Rows      []BackendRow `json:"rows"`
}

// backendLeg binds a display name to how the leg is evaluated: legs
// with a core backend run the core pipeline; the ml+rcb leg runs the
// mlrcb incremental pipeline. timeAs names the backend whose raw
// Partition call is timed for PartitionNS.
type backendLeg struct {
	name   string
	core   string // core.Config.Backend, "" = not a core leg
	timeAs string
}

var compareLegs = []backendLeg{
	{name: "mcml+dt", core: "multilevel", timeAs: "multilevel"},
	{name: "ml+rcb", timeAs: "rcb"},
	{name: "sfc", core: "sfc", timeAs: "sfc"},
	{name: "bkmeans", core: "bkmeans", timeAs: "bkmeans"},
}

// CompareBackends runs the 4-way backend comparison (MCML+DT, ML+RCB,
// SFC, BKMeans) over the snapshot sequence at cfg.K: every leg carries
// its snapshot-0 partition across the sequence via persistent node ids
// (the paper's update strategy), refreshes descriptors per snapshot,
// and averages cut, per-constraint imbalance, and NRemote. runs (>= 1)
// extra timing passes measure each leg's raw partitioner best-of-runs.
// Legs run concurrently on the pool (cfg.SerialLegs forces one at a
// time) and each records a "backend_leg" span and per-leg obs counters
// ("compare_<leg>_snapshots", "compare_<leg>_partition_ns"). Rows come
// back in the fixed leg order, deterministic apart from PartitionNS.
func CompareBackends(ctx context.Context, snaps []sim.Snapshot, cfg Config, runs int) (*BackendComparison, error) {
	cfg = cfg.withDefaults()
	if len(snaps) == 0 {
		return nil, fmt.Errorf("harness: no snapshots")
	}
	if runs < 1 {
		runs = 1
	}
	ctx, cmpSpan := obs.StartSpan(ctx, "backend_compare",
		obs.Int("k", int64(cfg.K)), obs.Track(fmt.Sprintf("compare k=%d", cfg.K)))
	defer cmpSpan.End()

	cmp := &BackendComparison{K: cfg.K, Snapshots: len(snaps), Rows: make([]BackendRow, len(compareLegs))}
	workers := len(compareLegs)
	if cfg.SerialLegs {
		workers = 1
	}
	fns := make([]func() error, len(compareLegs))
	for i, leg := range compareLegs {
		i, leg := i, leg
		fns[i] = func() error {
			_, legSpan := obs.StartSpan(ctx, "backend_leg", obs.Str("leg", leg.name))
			defer legSpan.End()
			var row BackendRow
			var err error
			if leg.core != "" {
				row, err = coreCompareLeg(snaps, cfg, leg, legSpan)
			} else {
				row, err = mlrcbCompareLeg(snaps, cfg, leg, legSpan)
			}
			if err != nil {
				return fmt.Errorf("harness: %s leg: %w", leg.name, err)
			}
			row.PartitionNS, err = timeBackend(snaps[0], cfg, leg.timeAs, runs)
			if err != nil {
				return fmt.Errorf("harness: %s timing: %w", leg.name, err)
			}
			cfg.Obs.Add(obsKey(leg.name)+"_snapshots", int64(len(snaps))) //lint:ignore metricname leg names come from the fixed backendLegs registry: bounded, lowercase families
			cfg.Obs.Add(obsKey(leg.name)+"_partition_ns", row.PartitionNS)
			cmp.Rows[i] = row
			return nil
		}
	}
	if err := pool.Run(workers, fns...); err != nil {
		return nil, err
	}
	return cmp, nil
}

// obsKey turns a display leg name into a counter-friendly key
// ("mcml+dt" -> "compare_mcmldt").
func obsKey(name string) string {
	out := []byte("compare_")
	for i := 0; i < len(name); i++ {
		if c := name[i]; c != '+' {
			out = append(out, c)
		}
	}
	return string(out)
}

// coreCompareLeg evaluates one core-pipeline leg: decompose snapshot 0
// with the leg's backend, keep the partition fixed across snapshots,
// refresh descriptors, and average the quality metrics.
func coreCompareLeg(snaps []sim.Snapshot, cfg Config, leg backendLeg, span *obs.Span) (BackendRow, error) {
	row := BackendRow{Leg: leg.name}
	coreCfg := core.Config{
		K:         cfg.K,
		Seed:      cfg.Seed,
		Imbalance: cfg.Imbalance,
		Nodal: mesh.NodalGraphOptions{
			NCon:              2,
			ContactEdgeWeight: cfg.ContactEdgeWeight,
			FEWeight:          1,
			ContactWeight:     1,
		},
		SkipReshape: cfg.SkipReshape,
		Backend:     leg.core,
		Parallel:    true,
		Obs:         cfg.Obs,
		Span:        span,
	}
	d0, err := core.Decompose(snaps[0].Mesh, coreCfg)
	if err != nil {
		return row, err
	}
	byID := labelMap(snaps[0].NodeID, d0.Labels)
	for _, sn := range snaps {
		m := sn.Mesh
		labels := lookupLabels(sn.NodeID, byID)
		g := m.NodalGraph(mesh.NodalGraphOptions{NCon: 2})
		row.Cut += float64(metrics.EdgeCut(g, labels))
		imb := metrics.LoadImbalance(g, labels, cfg.K)
		row.ImbalanceFE += imb[0]
		row.ImbalanceContact += imb[1]
		desc, _, contactPts, contactLabels, err := core.DescriptorFor(m, labels, coreCfg)
		if err != nil {
			return row, err
		}
		row.NRemote += float64(core.NRemote(m, labels, desc, contactPts, contactLabels, cfg.SearchTol, !cfg.LooseTreeFilter))
	}
	row.average(len(snaps))
	return row, nil
}

// mlrcbCompareLeg evaluates the ML+RCB baseline with its own
// incremental update pipeline.
func mlrcbCompareLeg(snaps []sim.Snapshot, cfg Config, leg backendLeg, span *obs.Span) (BackendRow, error) {
	row := BackendRow{Leg: leg.name}
	st, err := mlrcb.Decompose(snaps[0].Mesh, mlrcb.Config{K: cfg.K, Seed: cfg.Seed, Imbalance: cfg.Imbalance})
	if err != nil {
		return row, err
	}
	byID := labelMap(snaps[0].NodeID, st.MeshLabels)
	for t, sn := range snaps {
		m := sn.Mesh
		if t > 0 {
			st.Update(m)
		}
		labels := lookupLabels(sn.NodeID, byID)
		g := m.NodalGraph(mesh.NodalGraphOptions{NCon: 2})
		row.Cut += float64(metrics.EdgeCut(g, labels))
		imb := metrics.LoadImbalance(g, labels, cfg.K)
		row.ImbalanceFE += imb[0]
		row.ImbalanceContact += imb[1]
		row.NRemote += float64(st.NRemote(m, cfg.SearchTol))
	}
	row.average(len(snaps))
	return row, nil
}

func (r *BackendRow) average(n int) {
	f := float64(n)
	r.Cut /= f
	r.ImbalanceFE /= f
	r.ImbalanceContact /= f
	r.NRemote /= f
}

// timeBackend measures one raw backend Partition call on the first
// snapshot's nodal graph, best of runs passes.
func timeBackend(sn sim.Snapshot, cfg Config, name string, runs int) (int64, error) {
	be, err := backend.Lookup(name)
	if err != nil {
		return 0, err
	}
	m := sn.Mesh
	g := m.NodalGraph(mesh.NodalGraphOptions{
		NCon:              2,
		ContactEdgeWeight: cfg.ContactEdgeWeight,
		FEWeight:          1,
		ContactWeight:     1,
	})
	in := backend.Input{Graph: g, Coords: m.Coords, Dim: m.Dim}
	opt := backend.Options{K: cfg.K, Seed: cfg.Seed, Imbalance: cfg.Imbalance}
	best := int64(0)
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		if _, err := be.Partition(in, opt); err != nil {
			return 0, err
		}
		if ns := int64(time.Since(t0)); best == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}
