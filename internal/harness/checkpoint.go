package harness

// Checkpoint/restart for the evaluation sweep. A multi-hour RunAll
// must survive being killed: after every completed snapshot each
// experiment's rows-so-far, metric accumulators, and snapshot cursor
// are written to a versioned JSON checkpoint (atomically: temp file +
// rename), and a resumed run fast-forwards the deterministic
// partition/RCB state through the already-measured snapshots without
// re-paying the metric evaluation, producing byte-identical Rows and
// Avg to an uninterrupted run.
//
// The checkpoint is bound to its workload by a config hash (every
// result-affecting Config field plus the snapshot sequence shape);
// resuming against a different workload is refused rather than
// silently producing mixed results.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// CheckpointVersion is the format version written to and required
// from checkpoint files. Policy: the version bumps whenever the
// schema or the meaning of any field changes; older files are
// rejected with ErrCheckpointMismatch (a sweep is cheap to restart
// relative to the cost of silently mixing formats).
//
// Version history: 1 — cursor/rows/imbalance per experiment;
// 2 — adds per-snapshot leg eval times (experiments[].evals) and the
// cumulative observability report (obs).
const CheckpointVersion = 2

// ErrCheckpointMismatch reports a checkpoint that cannot resume the
// requested workload: wrong format version or wrong config hash.
var ErrCheckpointMismatch = errors.New("harness: checkpoint does not match this run")

// experimentState is one experiment's progress: Cursor snapshots are
// fully measured, with their rows and the running imbalance
// accumulators captured. (The partition/RCB state is NOT stored: it
// is deterministic from the config seed, so resume recomputes it by
// fast-forwarding, which keeps the checkpoint small and the format
// stable.)
type experimentState struct {
	Cursor     int         `json:"cursor"`
	Rows       []Row       `json:"rows"`
	Evals      []EvalTimes `json:"evals"`
	ImbFE      float64     `json:"imb_fe"`
	ImbContact float64     `json:"imb_contact"`
}

// checkpointFile is the on-disk schema. Obs is the cumulative
// observability report as of the last flush: a resumed run merges it
// into its live collector (Collector.Merge), so the final report
// covers the whole sweep, not just the post-resume part. One caveat:
// the report is captured just before each flush, so it cannot contain
// that flush's own checkpoint_write sample — a killed run loses
// exactly the in-flight write's record, nothing else.
type checkpointFile struct {
	Version     int               `json:"version"`
	ConfigHash  string            `json:"config_hash"`
	Experiments []experimentState `json:"experiments"`
	Obs         *obs.Report       `json:"obs,omitempty"`
}

// Checkpointer persists sweep progress. It is shared by the
// concurrently running experiments of a RunAll; every update rewrites
// the file atomically under a mutex.
type Checkpointer struct {
	// Obs, when non-nil, records the "checkpoint_write" phase timer
	// and the "checkpoint_writes" counter.
	Obs *obs.Collector
	// AfterFlush, when non-nil, is called after each atomic write
	// with the experiment index and its new cursor. Tests use it to
	// kill a run at an exact snapshot; tooling can use it for
	// progress reporting.
	AfterFlush func(exp, cursor int)

	path string
	mu   sync.Mutex
	file checkpointFile
}

// configHash binds a checkpoint to its workload: every Config field
// that affects Rows, plus the shape of the snapshot sequence.
func configHash(snaps []sim.Snapshot, cfgs []Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d snaps=%d", CheckpointVersion, len(snaps))
	if len(snaps) > 0 {
		fmt.Fprintf(h, " n0=%d e0=%d", snaps[0].Mesh.NumNodes(), snaps[0].Mesh.NumElems())
	}
	for _, c := range cfgs {
		c = c.withDefaults()
		// geo preserves the historical hash field from when the backend
		// selector was a single Geometric bool: "" / "multilevel" hash as
		// geo=false and "rcb" as geo=true, so every checkpoint written
		// before the selector existed still matches its workload.
		geo := c.Backend == "rcb"
		fmt.Fprintf(h, "|k=%d seed=%d imb=%g tol=%g cw=%d mp=%d mi=%d sr=%t lf=%t geo=%t wg=%t re=%d inc=%t",
			c.K, c.Seed, c.Imbalance, c.SearchTol, c.ContactEdgeWeight,
			c.MaxPure, c.MaxImpure, c.SkipReshape, c.LooseTreeFilter,
			geo, c.WideGaps, c.RepartitionEvery, c.Incremental)
		if !geo && c.Backend != "" && c.Backend != "multilevel" {
			// New backends append their name; configs expressible before
			// the selector keep byte-identical hash input.
			fmt.Fprintf(h, " be=%s", c.Backend)
		}
		if c.Adaptive {
			// Appended only for adaptive configs so every pre-existing
			// checkpoint (necessarily non-adaptive) keeps its hash.
			d := c.Drift.WithDefaults(c.Imbalance)
			fmt.Fprintf(h, " ad=%t dc=%g dfc=%g dfi=%g",
				c.Adaptive, d.CutDrift, d.FullCutDrift, d.FullImbalance)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// NewCheckpointer starts a fresh checkpoint for the workload at path.
// Nothing is written until the first snapshot completes.
func NewCheckpointer(path string, snaps []sim.Snapshot, cfgs []Config) *Checkpointer {
	return &Checkpointer{
		path: path,
		file: checkpointFile{
			Version:     CheckpointVersion,
			ConfigHash:  configHash(snaps, cfgs),
			Experiments: make([]experimentState, len(cfgs)),
		},
	}
}

// LoadCheckpoint opens an existing checkpoint and validates it
// against the workload. A version or config-hash mismatch returns
// ErrCheckpointMismatch (wrapped with detail).
func LoadCheckpoint(path string, snaps []sim.Snapshot, cfgs []Config) (*Checkpointer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: read checkpoint: %w", err)
	}
	var file checkpointFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("harness: parse checkpoint %s: %w", path, err)
	}
	if file.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: file version %d, supported %d",
			ErrCheckpointMismatch, file.Version, CheckpointVersion)
	}
	if want := configHash(snaps, cfgs); file.ConfigHash != want {
		return nil, fmt.Errorf("%w: config hash %.12s…, want %.12s…",
			ErrCheckpointMismatch, file.ConfigHash, want)
	}
	if len(file.Experiments) != len(cfgs) {
		return nil, fmt.Errorf("%w: %d experiments, want %d",
			ErrCheckpointMismatch, len(file.Experiments), len(cfgs))
	}
	for i, st := range file.Experiments {
		if st.Cursor < 0 || st.Cursor > len(snaps) || len(st.Rows) != st.Cursor || len(st.Evals) != st.Cursor {
			return nil, fmt.Errorf("%w: experiment %d has cursor %d with %d rows, %d evals over %d snapshots",
				ErrCheckpointMismatch, i, st.Cursor, len(st.Rows), len(st.Evals), len(snaps))
		}
	}
	return &Checkpointer{path: path, file: file}, nil
}

// state returns a copy of one experiment's saved progress.
func (c *Checkpointer) state(exp int) experimentState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.file.Experiments[exp]
	st.Rows = append([]Row(nil), st.Rows...)
	st.Evals = append([]EvalTimes(nil), st.Evals...)
	return st
}

// SavedObs returns the observability report persisted by the run that
// wrote the checkpoint (nil when absent). Merge it into the live
// collector before resuming so the final report is cumulative over
// the whole sweep.
func (c *Checkpointer) SavedObs() *obs.Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.file.Obs
}

// record appends one completed snapshot to an experiment and flushes
// the whole checkpoint atomically, together with the collector's
// current cumulative report (when Obs is set).
func (c *Checkpointer) record(exp, cursor int, row Row, ev EvalTimes, imbFE, imbContact float64) error {
	stop := c.Obs.Start("checkpoint_write")
	var rep *obs.Report
	if c.Obs != nil {
		r := c.Obs.Report()
		rep = &r
	}
	c.mu.Lock()
	st := &c.file.Experiments[exp]
	st.Rows = append(st.Rows, row)
	st.Evals = append(st.Evals, ev)
	st.Cursor = cursor
	st.ImbFE = imbFE
	st.ImbContact = imbContact
	if rep != nil {
		c.file.Obs = rep
	}
	err := c.flushLocked()
	c.mu.Unlock()
	stop()
	c.Obs.Add("checkpoint_writes", 1)
	if err == nil && c.AfterFlush != nil {
		c.AfterFlush(exp, cursor)
	}
	return err
}

// flushLocked writes the checkpoint atomically and durably: marshal,
// write to a temp file in the same directory, fsync, rename over the
// target, then fsync the parent directory. A crash mid-write leaves
// either the old complete file or the new complete file, never a torn
// one — and the directory fsync makes the rename itself survive a
// power cut, not just a process kill (without it the directory entry
// may still point at the old file, or at nothing, after the machine
// comes back).
func (c *Checkpointer) flushLocked() error {
	data, err := json.MarshalIndent(&c.file, "", " ")
	if err != nil {
		return err
	}
	tmp := c.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		_ = f.Close() // already failing; the write error is the one to report
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // already failing; the sync error is the one to report
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(c.path))
}

// syncDir fsyncs a directory so a just-renamed entry in it is durable.
// Platforms whose directory handles reject Sync (it is not required to
// work everywhere) report that error; callers treat checkpoint
// durability as part of the write contract.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // already failing; the sync error is the one to report
		return err
	}
	return d.Close()
}

// Done reports the per-experiment snapshot cursors (how much of the
// sweep is already measured).
func (c *Checkpointer) Done() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.file.Experiments))
	for i, st := range c.file.Experiments {
		out[i] = st.Cursor
	}
	return out
}

// WriteSummary prints a one-line resume summary per experiment.
func (c *Checkpointer) WriteSummary(w io.Writer, cfgs []Config) {
	for i, done := range c.Done() {
		k := 0
		if i < len(cfgs) {
			k = cfgs[i].K
		}
		fmt.Fprintf(w, "  experiment %d (k=%d): %d snapshots checkpointed\n", i, k, done)
	}
}
