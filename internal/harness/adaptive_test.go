package harness

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro/internal/obs"
	"repro/internal/partition"
)

// tightDrift forces the policy to repair aggressively: any measurable
// cut drift triggers a diffusion, and moderate drift escalates to a
// full repartition. Tests use it to make sure non-keep decisions
// actually occur on short sweeps.
func tightDrift() partition.DriftThresholds {
	return partition.DriftThresholds{CutDrift: 0.0001, FullCutDrift: 0.02, FullImbalance: 1.001}
}

// TestAdaptiveSweepRunsPolicy checks the adaptive warm-start path end
// to end: the sweep completes, every snapshot after the first records
// a drift decision in the series, and the decision counters add up to
// the number of decided snapshots.
func TestAdaptiveSweepRunsPolicy(t *testing.T) {
	snaps := testSnaps(t, 5)
	col := obs.New()
	r, err := Run(snaps, Config{K: 6, Seed: 1, Adaptive: true, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(snaps) {
		t.Fatalf("%d rows for %d snapshots", len(r.Rows), len(snaps))
	}
	decided := 0
	for t2, ev := range r.evals {
		switch ev.Repart {
		case "":
			if t2 > 0 {
				t.Errorf("snapshot %d: no drift decision recorded", t2)
			}
		case "keep", "diffuse", "full":
			decided++
			if ev.Repart == "keep" && ev.Migrated != 0 {
				t.Errorf("snapshot %d: keep migrated %d nodes", t2, ev.Migrated)
			}
		default:
			t.Errorf("snapshot %d: unknown decision %q", t2, ev.Repart)
		}
	}
	if decided != len(snaps)-1 {
		t.Errorf("%d decisions for %d snapshots", decided, len(snaps))
	}

	rep := col.Report()
	var counted int64
	for _, c := range rep.Counters {
		switch c.Name {
		case "repartition_kept", "repartition_diffused", "repartition_full":
			counted += c.Value
		}
	}
	if counted != int64(decided) {
		t.Errorf("decision counters sum to %d, want %d (counters: %v)", counted, decided, rep.Counters)
	}
	sawDrift := false
	for _, p := range rep.Phases {
		if p.Name == "drift_eval" {
			sawDrift = true
		}
	}
	if !sawDrift {
		t.Error("drift_eval timer missing from the report")
	}

	// The series view must carry the decision and migration columns.
	pts := Series([]*Result{r})
	for _, p := range pts {
		if p.Snapshot > 0 && p.MCRepart == "" {
			t.Errorf("series snapshot %d: missing mc_repart", p.Snapshot)
		}
	}
}

// TestAdaptiveSweepDeterministicAcrossWorkers: the adaptive sweep's
// results are byte-identical for serial legs, concurrent legs, and any
// experiment worker count.
func TestAdaptiveSweepDeterministicAcrossWorkers(t *testing.T) {
	snaps := testSnaps(t, 4)
	mk := func(serialLegs bool) []Config {
		return []Config{
			{K: 4, Seed: 1, Adaptive: true, SerialLegs: serialLegs},
			{K: 6, Seed: 1, Adaptive: true, SerialLegs: serialLegs,
				Drift: tightDrift()},
		}
	}
	want, err := RunAll(snaps, mk(true), 1)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := marshalResults(t, want)
	for _, workers := range []int{1, 2, 4} {
		got, err := RunAll(snaps, mk(false), workers)
		if err != nil {
			t.Fatal(err)
		}
		if gotJSON := marshalResults(t, got); !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("workers=%d: adaptive sweep results differ from serial run\n got: %s\nwant: %s",
				workers, gotJSON, wantJSON)
		}
	}
}

// TestAdaptiveResumeByteIdentical is the adaptive counterpart of
// TestCheckpointResumeByteIdentical: a killed-and-resumed adaptive
// sweep must replay the drift decisions deterministically and produce
// byte-identical results, including the per-snapshot decision series.
func TestAdaptiveResumeByteIdentical(t *testing.T) {
	snaps := testSnaps(t, 4)
	cfgs := []Config{
		{K: 5, Seed: 1, Adaptive: true, Drift: tightDrift()},
	}
	want, err := RunAll(snaps, cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := marshalResults(t, want)
	// Eval wall clocks differ run to run by nature; the decision series
	// (which snapshot kept/diffused/full, how many nodes moved) must
	// replay exactly.
	decisions := func(rs []*Result) []string {
		var out []string
		for _, p := range Series(rs) {
			out = append(out, fmt.Sprintf("%d:%s:%d", p.Snapshot, p.MCRepart, p.MCMigrated))
		}
		return out
	}
	wantDec := decisions(want)

	for killAt := 1; killAt < len(snaps); killAt++ {
		path := filepath.Join(t.TempDir(), "sweep.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		ck := NewCheckpointer(path, snaps, cfgs)
		ck.AfterFlush = func(exp, cursor int) {
			if cursor == killAt {
				cancel()
			}
		}
		if _, err := RunAllResumable(ctx, snaps, cfgs, 1, ck); err == nil {
			t.Fatalf("killAt=%d: interrupted sweep reported success", killAt)
		}
		cancel()
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("killAt=%d: no checkpoint written: %v", killAt, err)
		}

		ck2, err := LoadCheckpoint(path, snaps, cfgs)
		if err != nil {
			t.Fatalf("killAt=%d: %v", killAt, err)
		}
		got, err := RunAllResumable(context.Background(), snaps, cfgs, 1, ck2)
		if err != nil {
			t.Fatalf("killAt=%d: resume failed: %v", killAt, err)
		}
		if gotJSON := marshalResults(t, got); !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("killAt=%d: resumed adaptive results differ\n got: %s\nwant: %s",
				killAt, gotJSON, wantJSON)
		}
		if gotDec := decisions(got); !slices.Equal(gotDec, wantDec) {
			t.Fatalf("killAt=%d: resumed decision series differs\n got: %v\nwant: %v",
				killAt, gotDec, wantDec)
		}
	}
}

// TestAdaptiveCheckpointHashDistinct: an adaptive sweep must not
// resume from a non-adaptive checkpoint of the same k/seed (and vice
// versa) — the carried state differs.
func TestAdaptiveCheckpointHashDistinct(t *testing.T) {
	snaps := testSnaps(t, 2)
	plain := []Config{{K: 4, Seed: 1}}
	adaptive := []Config{{K: 4, Seed: 1, Adaptive: true}}
	if configHash(snaps, plain) == configHash(snaps, adaptive) {
		t.Fatal("adaptive and non-adaptive configs share a checkpoint hash")
	}
	// Distinct thresholds are distinct workloads too.
	tightened := []Config{{K: 4, Seed: 1, Adaptive: true, Drift: tightDrift()}}
	if configHash(snaps, adaptive) == configHash(snaps, tightened) {
		t.Fatal("different drift thresholds share a checkpoint hash")
	}
}
