package harness

// Live sweep progress. A Progress is shared between the concurrently
// running experiments of a sweep (each calls set after finishing a
// snapshot) and whoever wants to watch — contactbench's /progress
// endpoint serves Snapshot as JSON while the sweep runs. A nil
// *Progress is valid everywhere and records nothing.

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Progress tracks how far each experiment of a sweep has advanced.
type Progress struct {
	mu        sync.Mutex
	snapshots int
	ks        []int
	cursors   []int
	started   time.Time
}

// NewProgress sizes a tracker for a sweep of cfgs over snapshots
// snapshots each.
func NewProgress(snapshots int, cfgs []Config) *Progress {
	p := &Progress{
		snapshots: snapshots,
		ks:        make([]int, len(cfgs)),
		cursors:   make([]int, len(cfgs)),
		started:   time.Now(),
	}
	for i, c := range cfgs {
		p.ks[i] = c.K
	}
	return p
}

// set records that experiment exp has cursor snapshots fully measured
// (monotonic: a smaller cursor never overwrites a larger one).
func (p *Progress) set(exp, cursor int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if exp >= 0 && exp < len(p.cursors) && cursor > p.cursors[exp] {
		p.cursors[exp] = cursor
	}
	p.mu.Unlock()
}

// ExperimentProgress is one experiment's cursor in a ProgressSnapshot.
type ExperimentProgress struct {
	K    int `json:"k"`
	Done int `json:"done"`
}

// ProgressSnapshot is a consistent view of the sweep cursor: per
// experiment, snapshot Done of Snapshots is measured.
type ProgressSnapshot struct {
	Snapshots   int                  `json:"snapshots"`
	Done        int                  `json:"done"`
	Total       int                  `json:"total"`
	ElapsedSec  float64              `json:"elapsed_sec"`
	Experiments []ExperimentProgress `json:"experiments"`
}

// Snapshot returns the current cursor state. Safe to call while the
// sweep runs.
func (p *Progress) Snapshot() ProgressSnapshot {
	var s ProgressSnapshot
	if p == nil {
		return s
	}
	p.mu.Lock()
	s.Snapshots = p.snapshots
	s.Total = p.snapshots * len(p.cursors)
	s.ElapsedSec = time.Since(p.started).Seconds()
	s.Experiments = make([]ExperimentProgress, len(p.cursors))
	for i, c := range p.cursors {
		s.Experiments[i] = ExperimentProgress{K: p.ks[i], Done: c}
		s.Done += c
	}
	p.mu.Unlock()
	return s
}

// WriteJSON emits the current snapshot as JSON (the /progress
// endpoint's body).
func (p *Progress) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p.Snapshot())
}
