package harness

// Per-snapshot time series: every Section 5.1 metric plus the wall
// clock each measurement leg took, one point per (experiment,
// snapshot). Where Table 1 averages the sequence away, the series
// keeps it — this is the output to plot when asking how a metric
// evolves as the projectile deforms the plates, or where the eval
// time goes.

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// SeriesPoint is one (experiment, snapshot) sample.
type SeriesPoint struct {
	K        int `json:"k"`
	Snapshot int `json:"snapshot"`
	// The six Section 5.1 metrics (Row).
	MCFEComm  int64 `json:"mc_fecomm"`
	MCNTNodes int64 `json:"mc_ntnodes"`
	MCNRemote int64 `json:"mc_nremote"`
	MLFEComm  int64 `json:"ml_fecomm"`
	MLM2MComm int64 `json:"ml_m2mcomm"`
	MLUpdComm int64 `json:"ml_updcomm"`
	MLNRemote int64 `json:"ml_nremote"`
	// Wall clock of the two measurement legs for this snapshot, in
	// nanoseconds. For snapshots restored from a checkpoint these are
	// the times recorded by the run that measured them.
	MCEvalNS int64 `json:"mc_eval_ns"`
	MLEvalNS int64 `json:"ml_eval_ns"`
	// Repartitioning event before this snapshot's measurement: the
	// drift decision ("keep", "diffuse", "full"; empty when no event)
	// and the node migration volume it caused. Omitted from JSON for
	// sweeps that never repartition.
	MCRepart   string `json:"mc_repart,omitempty"`
	MCMigrated int64  `json:"mc_migrated,omitempty"`
}

// Series flattens results into one point per (experiment, snapshot),
// in experiment then snapshot order.
func Series(results []*Result) []SeriesPoint {
	var out []SeriesPoint
	for _, r := range results {
		if r == nil {
			continue
		}
		for t, row := range r.Rows {
			p := SeriesPoint{
				K: r.K, Snapshot: t,
				MCFEComm: row.MCFEComm, MCNTNodes: row.MCNTNodes, MCNRemote: row.MCNRemote,
				MLFEComm: row.MLFEComm, MLM2MComm: row.MLM2MComm,
				MLUpdComm: row.MLUpdComm, MLNRemote: row.MLNRemote,
			}
			if t < len(r.evals) {
				p.MCEvalNS = r.evals[t].MCNS
				p.MLEvalNS = r.evals[t].MLNS
				p.MCRepart = r.evals[t].Repart
				p.MCMigrated = r.evals[t].Migrated
			}
			out = append(out, p)
		}
	}
	return out
}

// WriteSeriesJSON emits the series as a JSON array.
func WriteSeriesJSON(w io.Writer, results []*Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(Series(results))
}

// WriteSeriesCSV emits the series as CSV, one line per point.
func WriteSeriesCSV(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)
	header := []string{"k", "snapshot",
		"mc_fecomm", "mc_ntnodes", "mc_nremote",
		"ml_fecomm", "ml_m2mcomm", "ml_updcomm", "ml_nremote",
		"mc_eval_ns", "ml_eval_ns", "mc_repart", "mc_migrated"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range Series(results) {
		rec := []string{
			strconv.Itoa(p.K), strconv.Itoa(p.Snapshot),
			strconv.FormatInt(p.MCFEComm, 10),
			strconv.FormatInt(p.MCNTNodes, 10),
			strconv.FormatInt(p.MCNRemote, 10),
			strconv.FormatInt(p.MLFEComm, 10),
			strconv.FormatInt(p.MLM2MComm, 10),
			strconv.FormatInt(p.MLUpdComm, 10),
			strconv.FormatInt(p.MLNRemote, 10),
			strconv.FormatInt(p.MCEvalNS, 10),
			strconv.FormatInt(p.MLEvalNS, 10),
			p.MCRepart,
			strconv.FormatInt(p.MCMigrated, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
