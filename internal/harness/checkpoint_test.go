package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// marshalResults renders results to canonical JSON so "byte-identical
// Rows/Avg" is literal, not approximate.
func marshalResults(t *testing.T, rs []*Result) []byte {
	t.Helper()
	b, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCheckpointResumeByteIdentical is the kill/resume fidelity gate:
// a sweep killed at every possible snapshot boundary and resumed from
// its checkpoint must emit Rows and Avg byte-identical to an
// uninterrupted run. The config set includes a repartitioning
// experiment so the fast-forward path has real carried state to
// replay.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	snaps := testSnaps(t, 4)
	cfgs := []Config{
		{K: 4, Seed: 1},
		{K: 5, Seed: 1, RepartitionEvery: 2, Incremental: true},
	}
	want, err := RunAll(snaps, cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := marshalResults(t, want)

	for killAt := 1; killAt < len(snaps); killAt++ {
		path := filepath.Join(t.TempDir(), "sweep.ckpt")

		// Phase 1: run until experiment 0 has flushed killAt snapshots,
		// then cancel — simulating a kill between snapshots.
		ctx, cancel := context.WithCancel(context.Background())
		ck := NewCheckpointer(path, snaps, cfgs)
		ck.AfterFlush = func(exp, cursor int) {
			if exp == 0 && cursor == killAt {
				cancel()
			}
		}
		if _, err := RunAllResumable(ctx, snaps, cfgs, 1, ck); err == nil {
			t.Fatalf("killAt=%d: interrupted sweep reported success", killAt)
		}
		cancel()
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("killAt=%d: no checkpoint written: %v", killAt, err)
		}
		if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("killAt=%d: temp file left behind", killAt)
		}

		// Phase 2: load the checkpoint in a fresh process-equivalent and
		// finish the sweep.
		ck2, err := LoadCheckpoint(path, snaps, cfgs)
		if err != nil {
			t.Fatalf("killAt=%d: %v", killAt, err)
		}
		if done := ck2.Done(); done[0] < killAt {
			t.Fatalf("killAt=%d: resumed cursor %d", killAt, done[0])
		}
		col := obs.New()
		ck2.Obs = col
		got, err := RunAllResumable(context.Background(), snaps, cfgs, 2, ck2)
		if err != nil {
			t.Fatalf("killAt=%d: resume failed: %v", killAt, err)
		}
		if gotJSON := marshalResults(t, got); !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("killAt=%d: resumed results differ from uninterrupted run\n got: %s\nwant: %s",
				killAt, gotJSON, wantJSON)
		}

		// Phase 3: resuming an already-complete checkpoint re-measures
		// nothing and still returns identical results.
		ck3, err := LoadCheckpoint(path, snaps, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		if done := ck3.Done(); done[0] != len(snaps) || done[1] != len(snaps) {
			t.Fatalf("killAt=%d: cursors after completion = %v", killAt, done)
		}
		again, err := RunAllResumable(context.Background(), snaps, cfgs, 2, ck3)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalResults(t, again), wantJSON) {
			t.Fatalf("killAt=%d: re-resumed results differ", killAt)
		}
	}
}

// TestCheckpointSkipsMeasuredLegs verifies resume actually skips the
// expensive metric evaluation for checkpointed snapshots instead of
// recomputing and discarding it.
func TestCheckpointSkipsMeasuredLegs(t *testing.T) {
	snaps := testSnaps(t, 3)
	cfgs := []Config{{K: 4, Seed: 1}}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	ck := NewCheckpointer(path, snaps, cfgs)
	ck.AfterFlush = func(exp, cursor int) {
		if cursor == 2 {
			cancel()
		}
	}
	if _, err := RunAllResumable(ctx, snaps, cfgs, 1, ck); err == nil {
		t.Fatal("interrupted sweep reported success")
	}
	cancel()

	ck2, err := LoadCheckpoint(path, snaps, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.New()
	cfgs[0].Obs = col
	// Obs participates in neither results nor the config hash, so
	// attaching it only on resume is legal... but the hash must agree.
	if _, err := RunAllResumable(context.Background(), snaps, cfgs, 1, ck2); err != nil {
		t.Fatal(err)
	}
	for _, ph := range col.Report().Phases {
		if ph.Name == "metric_eval" && ph.Count != 2 {
			// 1 remaining snapshot × 2 legs.
			t.Errorf("metric_eval ran %d times on resume, want 2", ph.Count)
		}
	}
}

// TestCheckpointMismatchRejected: a checkpoint must refuse to resume
// a different workload rather than silently mixing results.
func TestCheckpointMismatchRejected(t *testing.T) {
	snaps := testSnaps(t, 2)
	cfgs := []Config{{K: 4, Seed: 1}}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	ck := NewCheckpointer(path, snaps, cfgs)
	if _, err := RunAllResumable(context.Background(), snaps, cfgs, 1, ck); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadCheckpoint(path, snaps, []Config{{K: 8, Seed: 1}}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("different config: err = %v, want ErrCheckpointMismatch", err)
	}
	if _, err := LoadCheckpoint(path, snaps[:1], cfgs); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("different snapshot count: err = %v, want ErrCheckpointMismatch", err)
	}
	if _, err := LoadCheckpoint(path, snaps, append(cfgs, Config{K: 6, Seed: 1})); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("different experiment count: err = %v, want ErrCheckpointMismatch", err)
	}

	// Config changes that do not affect results must NOT invalidate
	// the checkpoint (Obs and SerialLegs are execution details).
	relaxed := []Config{{K: 4, Seed: 1, SerialLegs: true, Obs: obs.New()}}
	if _, err := LoadCheckpoint(path, snaps, relaxed); err != nil {
		t.Errorf("execution-detail config change rejected: %v", err)
	}

	// A wrong-version file is refused.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file checkpointFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	file.Version = CheckpointVersion + 1
	bumped, _ := json.Marshal(&file)
	if err := os.WriteFile(path, bumped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, snaps, cfgs); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("future version: err = %v, want ErrCheckpointMismatch", err)
	}

	// A truncated file is an error, not a panic or a silent restart.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, snaps, cfgs); err == nil {
		t.Error("truncated checkpoint loaded cleanly")
	}

	// An inconsistent cursor/rows combination is refused.
	file.Version = CheckpointVersion
	file.Experiments[0].Cursor = len(snaps) + 3
	inconsistent, _ := json.Marshal(&file)
	if err := os.WriteFile(path, inconsistent, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, snaps, cfgs); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("inconsistent cursor: err = %v, want ErrCheckpointMismatch", err)
	}
}

// TestCheckpointObsCounters: checkpoint writes are observable.
func TestCheckpointObsCounters(t *testing.T) {
	snaps := testSnaps(t, 2)
	cfgs := []Config{{K: 4, Seed: 1}}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	ck := NewCheckpointer(path, snaps, cfgs)
	col := obs.New()
	ck.Obs = col
	if _, err := RunAllResumable(context.Background(), snaps, cfgs, 1, ck); err != nil {
		t.Fatal(err)
	}
	rep := col.Report()
	found := false
	for _, ph := range rep.Phases {
		if ph.Name == "checkpoint_write" {
			found = true
			if ph.Count != int64(len(snaps)) {
				t.Errorf("checkpoint_write count = %d, want %d", ph.Count, len(snaps))
			}
		}
	}
	if !found {
		t.Error("no checkpoint_write phase recorded")
	}
	for _, c := range rep.Counters {
		if c.Name == "checkpoint_writes" && c.Value != int64(len(snaps)) {
			t.Errorf("checkpoint_writes = %d, want %d", c.Value, len(snaps))
		}
	}
}
