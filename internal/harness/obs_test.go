package harness

// Tests for the observability surface of the harness: the sweep span
// tree, the progress tracker, the per-snapshot series, and the
// cumulative obs report across checkpoint resume.

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestProgressTracker: monotonic cursors, consistent totals, and
// nil-safety (a nil *Progress must be usable everywhere).
func TestProgressTracker(t *testing.T) {
	var nilProg *Progress
	nilProg.set(0, 1) // must not panic
	if s := nilProg.Snapshot(); s.Total != 0 || s.Experiments != nil {
		t.Errorf("nil progress snapshot = %+v, want zero", s)
	}

	p := NewProgress(5, []Config{{K: 4}, {K: 8}})
	p.set(0, 2)
	p.set(1, 5)
	p.set(0, 1)  // stale update must not regress the cursor
	p.set(7, 3)  // out-of-range experiment must be ignored
	p.set(-1, 3) // negative experiment must be ignored
	s := p.Snapshot()
	if s.Snapshots != 5 || s.Total != 10 || s.Done != 7 {
		t.Errorf("snapshot = %+v, want snapshots=5 total=10 done=7", s)
	}
	if len(s.Experiments) != 2 || s.Experiments[0] != (ExperimentProgress{K: 4, Done: 2}) ||
		s.Experiments[1] != (ExperimentProgress{K: 8, Done: 5}) {
		t.Errorf("experiments = %+v", s.Experiments)
	}

	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"snapshots": 5`, `"done": 7`, `"total": 10`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("progress JSON missing %s:\n%s", want, buf.String())
		}
	}
}

// TestSweepTraceAndProgress: a traced RunSweep must produce a valid
// trace containing the harness span layers — one experiment span per
// config, one snapshot span and one leg span pair per measured
// snapshot — and drive the progress tracker to completion.
func TestSweepTraceAndProgress(t *testing.T) {
	snaps := testSnaps(t, 3)
	cfgs := []Config{{K: 4, Seed: 1}, {K: 6, Seed: 1}}

	tr := obs.NewTracer()
	root := tr.Root("sweep")
	prog := NewProgress(len(snaps), cfgs)
	results, err := RunSweep(context.Background(), snaps, cfgs, SweepOptions{
		Workers:  2,
		Progress: prog,
		Span:     root,
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if len(results) != len(cfgs) {
		t.Fatalf("got %d results, want %d", len(results), len(cfgs))
	}

	s := prog.Snapshot()
	if s.Done != s.Total || s.Total != len(snaps)*len(cfgs) {
		t.Errorf("progress after sweep: done=%d total=%d, want both %d",
			s.Done, s.Total, len(snaps)*len(cfgs))
	}

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("sweep trace does not validate: %v", err)
	}
	nMeasured := len(snaps) * len(cfgs)
	for name, want := range map[string]int{
		"experiment": len(cfgs),
		"snapshot":   nMeasured,
		"mc_leg":     nMeasured,
		"ml_leg":     nMeasured,
	} {
		if sum.Names[name] != want {
			t.Errorf("span %q appears %d times, want %d", name, sum.Names[name], want)
		}
	}
	// Each experiment runs on its own named track, plus the root's.
	if sum.Tracks < len(cfgs)+1 {
		t.Errorf("trace has %d lanes, want at least %d", sum.Tracks, len(cfgs)+1)
	}
}

// TestSeriesFromSweep: the per-snapshot series has one point per
// (experiment, snapshot) with every leg eval time populated, and both
// writers agree on the point count.
func TestSeriesFromSweep(t *testing.T) {
	snaps := testSnaps(t, 3)
	cfgs := []Config{{K: 4, Seed: 1}, {K: 6, Seed: 1}}
	results, err := RunAll(snaps, cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}

	pts := Series(results)
	if len(pts) != len(snaps)*len(cfgs) {
		t.Fatalf("series has %d points, want %d", len(pts), len(snaps)*len(cfgs))
	}
	for _, p := range pts {
		if p.MCEvalNS <= 0 || p.MLEvalNS <= 0 {
			t.Errorf("point k=%d t=%d has unpopulated eval times: mc=%d ml=%d",
				p.K, p.Snapshot, p.MCEvalNS, p.MLEvalNS)
		}
	}

	var csvBuf bytes.Buffer
	if err := WriteSeriesCSV(&csvBuf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 1+len(pts) {
		t.Errorf("CSV has %d lines, want header + %d points", len(lines), len(pts))
	}
	if !strings.HasPrefix(lines[0], "k,snapshot,mc_fecomm") {
		t.Errorf("CSV header = %q", lines[0])
	}

	var jsonBuf bytes.Buffer
	if err := WriteSeriesJSON(&jsonBuf, results); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(jsonBuf.String(), `"mc_eval_ns"`); n != len(pts) {
		t.Errorf("series JSON has %d points, want %d", n, len(pts))
	}
}

// TestResumeObsAndEvalsCumulative: a sweep killed mid-run and resumed
// must end with (a) an obs report covering the WHOLE sweep — the
// pre-kill report persisted in the checkpoint merged with the
// post-resume collector — and (b) a complete series, with the killed
// run's leg times restored from the checkpoint.
func TestResumeObsAndEvalsCumulative(t *testing.T) {
	snaps := testSnaps(t, 4)
	cfgs := []Config{{K: 4, Seed: 1}}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	const killAt = 2

	// Phase 1: record into one collector, kill after killAt snapshots.
	ctx, cancel := context.WithCancel(context.Background())
	col1 := obs.New()
	cfgs[0].Obs = col1
	ck := NewCheckpointer(path, snaps, cfgs)
	ck.Obs = col1
	ck.AfterFlush = func(exp, cursor int) {
		if cursor == killAt {
			cancel()
		}
	}
	if _, err := RunSweep(ctx, snaps, cfgs, SweepOptions{Workers: 1, Checkpoint: ck}); err == nil {
		t.Fatal("interrupted sweep reported success")
	}
	cancel()

	// Phase 2: fresh process-equivalent — new collector, merge the
	// persisted report, finish the sweep.
	ck2, err := LoadCheckpoint(path, snaps, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	saved := ck2.SavedObs()
	if saved == nil {
		t.Fatal("checkpoint has no persisted obs report")
	}
	col2 := obs.New()
	if err := col2.Merge(*saved); err != nil {
		t.Fatal(err)
	}
	cfgs[0].Obs = col2
	ck2.Obs = col2
	results, err := RunSweep(context.Background(), snaps, cfgs, SweepOptions{Workers: 1, Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}

	// The merged report covers the whole sweep: both legs of every
	// snapshot, and one checkpoint write per snapshot.
	rep := col2.Report()
	phases := map[string]int64{}
	for _, ph := range rep.Phases {
		phases[ph.Name] = ph.Count
	}
	if got, want := phases["metric_eval"], int64(2*len(snaps)); got != want {
		t.Errorf("cumulative metric_eval count = %d, want %d", got, want)
	}
	// The persisted report is captured just before each flush, so the
	// flush that the kill interrupted never recorded its own
	// checkpoint_write sample: exactly one is lost, nothing else.
	if got, want := phases["checkpoint_write"], int64(len(snaps)-1); got != want {
		t.Errorf("cumulative checkpoint_write count = %d, want %d", got, want)
	}
	for _, c := range rep.Counters {
		if c.Name == "checkpoint_writes" && c.Value != int64(len(snaps)-1) {
			t.Errorf("cumulative checkpoint_writes = %d, want %d", c.Value, len(snaps)-1)
		}
	}

	// The series is complete: the killed run's eval times for snapshots
	// [0, killAt) came back from the checkpoint.
	pts := Series(results)
	if len(pts) != len(snaps) {
		t.Fatalf("resumed series has %d points, want %d", len(pts), len(snaps))
	}
	for _, p := range pts {
		if p.MCEvalNS <= 0 || p.MLEvalNS <= 0 {
			t.Errorf("resumed series point t=%d missing eval times: mc=%d ml=%d",
				p.Snapshot, p.MCEvalNS, p.MLEvalNS)
		}
	}
}
