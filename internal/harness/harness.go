// Package harness drives the paper's evaluation (Section 5): it runs a
// snapshot sequence from the impact simulation through both MCML+DT
// and ML+RCB, carries each algorithm's mesh partition across snapshots
// via the simulator's persistent node ids (the paper's default update
// strategy keeps the partition fixed and only refreshes the geometric
// descriptors), measures the six metrics of Section 5.1 on every
// snapshot, and averages them into the rows of Table 1.
//
// The pipeline is concurrent at two levels, both on internal/pool:
// RunAll fans independent experiment configs (the k-sweep) out over a
// bounded worker pool, and within each experiment the two
// per-snapshot measurement legs (MCML+DT and ML+RCB) run in parallel.
// Both levels preserve the exact serial results: legs write disjoint
// Row fields, snapshots stay ordered, and RunAll returns results in
// config order.
package harness

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/mlrcb"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/sim"
)

// Config parameterizes one experiment (one k).
type Config struct {
	K         int
	Seed      int64
	Imbalance float64
	// SearchTol inflates surface-element boxes during global search
	// (contact proximity tolerance). Default 0.5.
	SearchTol float64
	// ContactEdgeWeight is the weight of contact-contact edges in the
	// MCML+DT graph (paper: 5). Zero selects 5.
	ContactEdgeWeight int32
	// MaxPure/MaxImpure override the guidance-tree thresholds
	// (0 = auto per Section 4.2 ranges).
	MaxPure   int
	MaxImpure int
	// SkipReshape ablates the tree-guided boundary reshaping.
	SkipReshape bool
	// LooseTreeFilter ablates the tight per-leaf point boxes in the
	// MCML+DT global search (uses raw leaf rectangles instead).
	LooseTreeFilter bool
	// Backend selects the MCML+DT side's partitioning backend (see
	// internal/backend): "" or "multilevel" is the paper's pipeline;
	// "rcb", "sfc", and "bkmeans" swap in a geometric partitioner
	// (reshaping is then skipped, per the backend's capabilities).
	Backend string
	// WideGaps selects margin-aware descriptor-tree hyperplanes
	// (future-work tree induction).
	WideGaps bool
	// RepartitionEvery > 0 recomputes both decompositions every that
	// many snapshots (the hybrid strategy of Section 4.3); 0 keeps the
	// snapshot-0 partitions throughout (the paper's evaluated setting).
	RepartitionEvery int
	// Incremental makes the periodic MCML+DT recomputation use the
	// multi-constraint repartitioner (bounded migration) instead of a
	// fresh partition. Only meaningful with RepartitionEvery > 0.
	Incremental bool
	// Adaptive enables the warm-started drift policy for the MCML+DT
	// side: every snapshot inherits the previous snapshot's labels via
	// the persistent node ids and core.AdaptiveDecompose decides
	// between keeping them, diffusion repair, and a full repartition
	// (Section 4.3). Takes precedence over RepartitionEvery for the
	// MCML+DT side; the ML+RCB side is unaffected. Off by default: the
	// paper's evaluated setting keeps the snapshot-0 partition.
	Adaptive bool
	// Drift tunes the adaptive policy's thresholds (zero value =
	// partition.DriftThresholds defaults). Only read when Adaptive.
	Drift partition.DriftThresholds
	// SerialLegs disables the concurrent per-snapshot measurement legs
	// (used by tests to verify the concurrent path is observationally
	// identical, and as an escape hatch on single-core hosts).
	SerialLegs bool
	// Obs, when non-nil, receives per-phase timings: "partition" and
	// "tree_induction" from the decomposition pipeline plus
	// "metric_eval" per snapshot leg. Shared by concurrent legs and
	// experiments (the collector is concurrency-safe).
	Obs *obs.Collector
}

func (c Config) withDefaults() Config {
	if c.SearchTol == 0 {
		c.SearchTol = 0.5
	}
	if c.ContactEdgeWeight == 0 {
		c.ContactEdgeWeight = 5
	}
	if c.Imbalance == 0 {
		c.Imbalance = 0.05
	}
	return c
}

// Row holds the six Section 5.1 metrics for one snapshot.
type Row struct {
	// MCML+DT side.
	MCFEComm  int64
	MCNTNodes int64
	MCNRemote int64
	// ML+RCB side.
	MLFEComm  int64
	MLM2MComm int64
	MLUpdComm int64
	MLNRemote int64
}

func (r *Row) add(o Row) {
	r.MCFEComm += o.MCFEComm
	r.MCNTNodes += o.MCNTNodes
	r.MCNRemote += o.MCNRemote
	r.MLFEComm += o.MLFEComm
	r.MLM2MComm += o.MLM2MComm
	r.MLUpdComm += o.MLUpdComm
	r.MLNRemote += o.MLNRemote
}

// EvalTimes is the measured wall clock of one snapshot's two
// measurement legs plus the snapshot's repartitioning event, if any.
// It feeds the per-snapshot time series (series.go) and is persisted
// in the checkpoint so a resumed sweep's series is complete. The
// repartition fields are omitted when empty, so checkpoints of
// non-adaptive sweeps keep their historical shape.
type EvalTimes struct {
	MCNS int64 `json:"mc_ns"`
	MLNS int64 `json:"ml_ns"`
	// Repart is the drift decision that ran before this snapshot's
	// measurement ("keep", "diffuse", "full"; empty = no repartition
	// event), and Migrated the number of nodes that changed partition
	// because of it — the Section 2 repartitioning objective.
	Repart   string `json:"repart,omitempty"`
	Migrated int64  `json:"migrated,omitempty"`
}

// Result is an experiment's outcome.
type Result struct {
	K         int
	Snapshots int
	Rows      []Row
	// evals holds per-snapshot leg wall-clock times, parallel to Rows.
	// Unexported on purpose: timing is nondeterministic, and Result's
	// JSON form must stay byte-identical across checkpoint resumes.
	// Series (series.go) is the exported view.
	evals []EvalTimes
	// Avg holds the per-snapshot averages (UpdComm is averaged over
	// snapshots 1..n-1, since no update happens at snapshot 0).
	Avg struct {
		MCFEComm, MCNTNodes, MCNRemote    float64
		MLFEComm, MLM2MComm, MLNRemote    float64
		MLUpdComm                         float64
		MCImbalanceFE, MCImbalanceContact float64
	}
}

// Run executes the experiment over the snapshot sequence.
func Run(snaps []sim.Snapshot, cfg Config) (*Result, error) {
	//lint:ignore ctxflow compatibility wrapper; the context-aware entry point is RunSweep
	return run(context.Background(), snaps, cfg, nil, 0, nil)
}

// run is the checkpoint-aware experiment loop. When ck is non-nil it
// resumes experiment exp from the checkpointed cursor: the carried
// partition state (repartitions, incremental RCB updates, the
// previous-labels map) is fast-forwarded through the already-measured
// snapshots — it is deterministic from the seed, so replaying it is
// exact — while their rows and imbalance accumulators are taken from
// the checkpoint, skipping the expensive metric legs. Each newly
// measured snapshot is recorded to ck before the loop advances, and a
// context cancellation returns ctx.Err() with all completed snapshots
// durably checkpointed. The Result of a resumed run is byte-identical
// to an uninterrupted one.
func run(ctx context.Context, snaps []sim.Snapshot, cfg Config, ck *Checkpointer, exp int, prog *Progress) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(snaps) == 0 {
		return nil, fmt.Errorf("harness: no snapshots")
	}

	// When the context carries a trace span, this experiment records a
	// span tree under it: one "experiment" span per config on its own
	// track, one "snapshot" span per measured snapshot, one leg span
	// per measurement leg. With no span in ctx all of this is free.
	ctx, expSpan := obs.StartSpan(ctx, "experiment",
		obs.Int("k", int64(cfg.K)), obs.Track(fmt.Sprintf("harness k=%d", cfg.K)))
	defer expSpan.End()

	coreCfg := core.Config{
		K:         cfg.K,
		Seed:      cfg.Seed,
		Imbalance: cfg.Imbalance,
		Nodal: mesh.NodalGraphOptions{
			NCon:              2,
			ContactEdgeWeight: cfg.ContactEdgeWeight,
			FEWeight:          1,
			ContactWeight:     1,
		},
		MaxPure:     cfg.MaxPure,
		MaxImpure:   cfg.MaxImpure,
		SkipReshape: cfg.SkipReshape,
		Backend:     cfg.Backend,
		WideGaps:    cfg.WideGaps,
		Parallel:    true,
		Obs:         cfg.Obs,
		Span:        expSpan,
	}
	mlCfg := mlrcb.Config{K: cfg.K, Seed: cfg.Seed, Imbalance: cfg.Imbalance}

	res := &Result{K: cfg.K, Snapshots: len(snaps)}

	var mcByID, mlByID map[int64]int32
	var mlState *mlrcb.State
	prevRCB := map[int64]int32{}
	var imbFE, imbContact float64
	var baseCut int64 // adaptive drift baseline (cut after the last repair)

	// start is the first snapshot still to be measured; everything
	// before it is already in the checkpoint.
	start := 0
	if ck != nil {
		st := ck.state(exp)
		start = st.Cursor
		res.Rows = append(res.Rows, st.Rows...)
		res.evals = append(res.evals, st.Evals...)
		imbFE, imbContact = st.ImbFE, st.ImbContact
	}
	prog.set(exp, start)

	decompose := func(sn sim.Snapshot) error {
		d, err := core.Decompose(sn.Mesh, coreCfg)
		if err != nil {
			return err
		}
		mcByID = labelMap(sn.NodeID, d.Labels)
		if cfg.Adaptive {
			baseCut = partition.EdgeCut(d.Graph, d.Labels)
		}
		st, err := mlrcb.Decompose(sn.Mesh, mlCfg)
		if err != nil {
			return err
		}
		mlState = st
		mlByID = labelMap(sn.NodeID, st.MeshLabels)
		return nil
	}
	if err := decompose(snaps[0]); err != nil {
		return nil, err
	}

	for t, sn := range snaps {
		// The carried MCML+DT partition state must advance on every
		// snapshot — including checkpoint fast-forward (it is
		// deterministic from the seed, so replaying it is exact); only
		// the obs counters are gated on t >= start so a resume does not
		// double-count replayed decisions.
		repartEvent, repartMigrated := "", int64(0)
		if cfg.Adaptive && t > 0 {
			prev := lookupLabels(sn.NodeID, mcByID)
			d, out, err := core.AdaptiveDecompose(sn.Mesh, prev, baseCut, coreCfg)
			if err != nil {
				return nil, err
			}
			baseCut = out.BaselineCut
			if d != nil {
				mcByID = labelMap(sn.NodeID, d.Labels)
			}
			repartEvent, repartMigrated = out.Decision.String(), int64(out.Migrated)
			if t >= start {
				switch out.Decision {
				case partition.DriftKeep:
					cfg.Obs.Add("repartition_kept", 1)
				case partition.DriftDiffuse:
					cfg.Obs.Add("repartition_diffused", 1)
				case partition.DriftFull:
					cfg.Obs.Add("repartition_full", 1)
				}
				cfg.Obs.Add("repartition_migrated", repartMigrated)
			}
		} else if cfg.RepartitionEvery > 0 && t > 0 && t%cfg.RepartitionEvery == 0 {
			if cfg.Incremental {
				prev := lookupLabels(sn.NodeID, mcByID)
				d, migrated, err := core.Redecompose(sn.Mesh, prev, coreCfg)
				if err != nil {
					return nil, err
				}
				mcByID = labelMap(sn.NodeID, d.Labels)
				repartEvent, repartMigrated = "diffuse", int64(migrated)
				if t >= start {
					cfg.Obs.Add("repartition_diffused", 1)
					cfg.Obs.Add("repartition_migrated", repartMigrated)
				}
			} else {
				prev := lookupLabels(sn.NodeID, mcByID)
				if err := decompose(sn); err != nil {
					return nil, err
				}
				cur := lookupLabels(sn.NodeID, mcByID)
				moved := int64(0)
				for i := range cur {
					if cur[i] != prev[i] {
						moved++
					}
				}
				repartEvent, repartMigrated = "full", moved
				if t >= start {
					cfg.Obs.Add("repartition_full", 1)
					cfg.Obs.Add("repartition_migrated", repartMigrated)
				}
			}
		}
		if t < start {
			// Fast-forward an already-checkpointed snapshot: replay only
			// the state carried across snapshots (the incremental RCB
			// update and the previous-labels map used for UpdComm); its
			// row came from the checkpoint, so the metric legs are
			// skipped entirely.
			if t > 0 {
				mlState.Update(sn.Mesh)
			}
			curRCB := make(map[int64]int32, len(mlState.ContactNodes))
			for i, n := range mlState.ContactNodes {
				curRCB[sn.NodeID[n]] = mlState.ContactLabels[i]
			}
			prevRCB = curRCB
			continue
		}
		if err := ctx.Err(); err != nil {
			// Interrupted: every completed snapshot is already durable in
			// the checkpoint, so the run can resume exactly here.
			return nil, err
		}
		m := sn.Mesh
		mcLabels := lookupLabels(sn.NodeID, mcByID)
		mlLabels := lookupLabels(sn.NodeID, mlByID)

		g := m.NodalGraph(mesh.NodalGraphOptions{NCon: 2})
		var row Row
		ev := EvalTimes{Repart: repartEvent, Migrated: repartMigrated}
		sctx, snapSpan := obs.StartSpan(ctx, "snapshot", obs.Int("t", int64(t)))

		// The two measurement legs are independent — the MC leg reads
		// only MCML+DT state and writes only the MC* fields of row
		// (plus the imbalance accumulators), the ML leg owns the RCB
		// state and the ML* fields — so they run concurrently on the
		// pool. Snapshots stay strictly ordered (both legs carry state
		// across snapshots), which keeps Rows identical to the serial
		// path.
		mcLeg := func() error {
			defer cfg.Obs.Start("metric_eval")()
			_, leg := obs.StartSpan(sctx, "mc_leg")
			t0 := time.Now()
			defer func() { ev.MCNS = int64(time.Since(t0)); leg.End() }()
			row.MCFEComm = metrics.CommVolume(g, mcLabels, cfg.K)

			// MCML+DT: refresh the descriptor tree for the moved
			// contact points (partition unchanged — the paper's update
			// strategy).
			desc, _, contactPts, contactLabels, err := core.DescriptorFor(m, mcLabels, coreCfg)
			if err != nil {
				return err
			}
			row.MCNTNodes = int64(desc.NumNodes())
			row.MCNRemote = core.NRemote(m, mcLabels, desc, contactPts, contactLabels, cfg.SearchTol, !cfg.LooseTreeFilter)

			imb := metrics.LoadImbalance(g, mcLabels, cfg.K)
			imbFE += imb[0]
			imbContact += imb[1]
			return nil
		}
		mlLeg := func() error {
			defer cfg.Obs.Start("metric_eval")()
			_, leg := obs.StartSpan(sctx, "ml_leg")
			t0 := time.Now()
			defer func() { ev.MLNS = int64(time.Since(t0)); leg.End() }()
			row.MLFEComm = metrics.CommVolume(g, mlLabels, cfg.K)

			// ML+RCB: incremental RCB update, then the decoupling costs.
			if t > 0 {
				mlState.Update(m)
			}
			moved := 0
			curRCB := make(map[int64]int32, len(mlState.ContactNodes))
			for i, n := range mlState.ContactNodes {
				id := sn.NodeID[n]
				curRCB[id] = mlState.ContactLabels[i]
				if t > 0 {
					if prev, ok := prevRCB[id]; ok && prev != mlState.ContactLabels[i] {
						moved++
					}
				}
			}
			prevRCB = curRCB
			row.MLUpdComm = int64(moved)

			m2m, err := mlState.M2MComm(mlLabels)
			if err != nil {
				return err
			}
			row.MLM2MComm = int64(m2m)
			row.MLNRemote = mlState.NRemote(m, cfg.SearchTol)
			return nil
		}
		legWorkers := 2
		if cfg.SerialLegs {
			legWorkers = 1
		}
		err := pool.Run(legWorkers, mcLeg, mlLeg)
		snapSpan.End()
		if err != nil {
			return nil, err
		}

		res.Rows = append(res.Rows, row)
		res.evals = append(res.evals, ev)
		if ck != nil {
			if err := ck.record(exp, t+1, row, ev, imbFE, imbContact); err != nil {
				return nil, fmt.Errorf("harness: checkpoint snapshot %d: %w", t, err)
			}
		}
		prog.set(exp, t+1)
	}

	n := float64(len(res.Rows))
	var sum Row
	for _, r := range res.Rows {
		sum.add(r)
	}
	res.Avg.MCFEComm = float64(sum.MCFEComm) / n
	res.Avg.MCNTNodes = float64(sum.MCNTNodes) / n
	res.Avg.MCNRemote = float64(sum.MCNRemote) / n
	res.Avg.MLFEComm = float64(sum.MLFEComm) / n
	res.Avg.MLM2MComm = float64(sum.MLM2MComm) / n
	res.Avg.MLNRemote = float64(sum.MLNRemote) / n
	if n > 1 {
		res.Avg.MLUpdComm = float64(sum.MLUpdComm) / (n - 1)
	}
	res.Avg.MCImbalanceFE = imbFE / n
	res.Avg.MCImbalanceContact = imbContact / n
	return res, nil
}

// SweepOptions configures RunSweep beyond the experiment configs
// themselves. The zero value is a plain concurrent sweep on
// GOMAXPROCS workers with no checkpointing, no progress tracking, and
// no tracing.
type SweepOptions struct {
	// Workers bounds the experiment worker pool (<= 0 = GOMAXPROCS).
	Workers int
	// Checkpoint, when non-nil, makes the sweep resumable: progress is
	// flushed after every measured snapshot, and a Checkpointer loaded
	// from a previous run's file resumes each experiment at its saved
	// cursor. A completed-then-resumed sweep returns Results
	// byte-identical to an uninterrupted one.
	Checkpoint *Checkpointer
	// Progress, when non-nil, receives live per-experiment cursor
	// updates (the /progress endpoint's source).
	Progress *Progress
	// Span, when non-nil, is the parent trace span: every experiment,
	// snapshot, and measurement leg records a span beneath it.
	Span *obs.Span
}

// RunSweep executes independent experiment configs (typically a
// k-sweep) concurrently on a bounded worker pool and returns the
// results in config order. Each experiment is internally
// deterministic for its seed, so the returned Results are identical
// to running the configs serially — concurrency only buys wall-clock
// time. A panicking experiment surfaces as a *pool.PanicError;
// cancelling ctx stops the sweep with everything completed so far
// durable in the checkpoint (if any).
func RunSweep(ctx context.Context, snaps []sim.Snapshot, cfgs []Config, o SweepOptions) ([]*Result, error) {
	ctx = obs.ContextWithSpan(ctx, o.Span)
	return pool.Map(o.Workers, len(cfgs), func(i int) (*Result, error) {
		return run(ctx, snaps, cfgs[i], o.Checkpoint, i, o.Progress)
	})
}

// RunAll is RunSweep with default options over a background context.
// workers <= 0 selects GOMAXPROCS.
func RunAll(snaps []sim.Snapshot, cfgs []Config, workers int) ([]*Result, error) {
	//lint:ignore ctxflow compatibility wrapper; the context-aware entry point is RunSweep
	return RunSweep(context.Background(), snaps, cfgs, SweepOptions{Workers: workers})
}

// RunAllResumable is RunSweep with checkpoint/restart and nothing
// else; see SweepOptions.Checkpoint.
func RunAllResumable(ctx context.Context, snaps []sim.Snapshot, cfgs []Config, workers int, ck *Checkpointer) ([]*Result, error) {
	return RunSweep(ctx, snaps, cfgs, SweepOptions{Workers: workers, Checkpoint: ck})
}

// labelMap builds a persistent-id -> label map.
func labelMap(ids []int64, labels []int32) map[int64]int32 {
	m := make(map[int64]int32, len(ids))
	for v, id := range ids {
		m[id] = labels[v]
	}
	return m
}

// lookupLabels resolves the current mesh's labels from a persistent
// map (nodes only ever disappear, so every id is present).
func lookupLabels(ids []int64, byID map[int64]int32) []int32 {
	out := make([]int32, len(ids))
	for v, id := range ids {
		out[v] = byID[id]
	}
	return out
}

// WriteCSV emits the per-snapshot metric rows as CSV (one line per
// snapshot per result), for plotting the evolution of the metrics over
// the simulation.
func WriteCSV(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)
	header := []string{"k", "snapshot",
		"mc_fecomm", "mc_ntnodes", "mc_nremote",
		"ml_fecomm", "ml_m2mcomm", "ml_updcomm", "ml_nremote"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		for t, row := range r.Rows {
			rec := []string{
				strconv.Itoa(r.K), strconv.Itoa(t),
				strconv.FormatInt(row.MCFEComm, 10),
				strconv.FormatInt(row.MCNTNodes, 10),
				strconv.FormatInt(row.MCNRemote, 10),
				strconv.FormatInt(row.MLFEComm, 10),
				strconv.FormatInt(row.MLM2MComm, 10),
				strconv.FormatInt(row.MLUpdComm, 10),
				strconv.FormatInt(row.MLNRemote, 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable renders results in the layout of the paper's Table 1.
func WriteTable(w io.Writer, results []*Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tMCML+DT\t\t\tML+RCB\t\t\t")
	fmt.Fprintln(tw, "\tFEComm\tNTNodes\tNRemote\tFEComm\tM2MComm\tUpdComm\tNRemote")
	for _, r := range results {
		fmt.Fprintf(tw, "%d-way\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			r.K,
			r.Avg.MCFEComm, r.Avg.MCNTNodes, r.Avg.MCNRemote,
			r.Avg.MLFEComm, r.Avg.MLM2MComm, r.Avg.MLUpdComm, r.Avg.MLNRemote)
	}
	// Human-readable best-effort output, matching the fmt.Fprintf calls
	// above; a broken terminal is not an actionable error here.
	_ = tw.Flush()
}

// WriteDerived prints the paper's derived Table 1 claims: the total
// pre-search communication ratio (ML+RCB pays FEComm + 2*M2MComm +
// UpdComm against MCML+DT's FEComm) and the NRemote comparison.
func WriteDerived(w io.Writer, results []*Result) {
	for _, r := range results {
		mc := r.Avg.MCFEComm
		ml := r.Avg.MLFEComm + 2*r.Avg.MLM2MComm + r.Avg.MLUpdComm
		fmt.Fprintf(w, "%d-way: ML+RCB pre-search communication is %.0f vs MCML+DT %.0f (%+.0f%%); ",
			r.K, ml, mc, 100*(ml-mc)/mc)
		fmt.Fprintf(w, "NRemote MCML+DT %.0f vs ML+RCB %.0f (%+.1f%% for ML+RCB)\n",
			r.Avg.MCNRemote, r.Avg.MLNRemote,
			100*(r.Avg.MLNRemote-r.Avg.MCNRemote)/r.Avg.MCNRemote)
	}
}
