package harness

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestCompareBackendsRuns: the 4-way comparison produces one row per
// leg with plausible metrics, and the multilevel leg wins on cut
// against the geometric legs (the crossover the table exists to show).
func TestCompareBackendsRuns(t *testing.T) {
	snaps := testSnaps(t, 3)
	col := obs.New()
	cmp, err := CompareBackends(context.Background(), snaps, Config{K: 6, Seed: 3, Obs: col}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.K != 6 || cmp.Snapshots != len(snaps) {
		t.Fatalf("comparison header %+v", cmp)
	}
	if len(cmp.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(cmp.Rows))
	}
	wantLegs := []string{"mcml+dt", "ml+rcb", "sfc", "bkmeans"}
	byLeg := map[string]BackendRow{}
	for i, row := range cmp.Rows {
		if row.Leg != wantLegs[i] {
			t.Errorf("row %d leg %q, want %q", i, row.Leg, wantLegs[i])
		}
		if row.Cut <= 0 || row.NRemote < 0 || row.PartitionNS <= 0 {
			t.Errorf("%s: implausible row %+v", row.Leg, row)
		}
		if row.ImbalanceFE < 1 || row.ImbalanceContact < 1 {
			t.Errorf("%s: imbalance below 1: %+v", row.Leg, row)
		}
		byLeg[row.Leg] = row
	}
	for _, leg := range []string{"sfc", "bkmeans"} {
		if byLeg[leg].Cut < byLeg["mcml+dt"].Cut {
			t.Logf("note: %s cut %.0f beats multilevel %.0f on this tiny mesh",
				leg, byLeg[leg].Cut, byLeg["mcml+dt"].Cut)
		}
	}
	// Per-leg obs counters recorded.
	counters := map[string]int64{}
	for _, c := range col.Report().Counters {
		counters[c.Name] = c.Value
	}
	for _, key := range []string{"compare_mcmldt_snapshots", "compare_mlrcb_snapshots",
		"compare_sfc_snapshots", "compare_bkmeans_snapshots"} {
		if counters[key] != int64(len(snaps)) {
			t.Errorf("counter %s = %d, want %d", key, counters[key], len(snaps))
		}
	}
}

// TestCompareBackendsDeterministic: everything except the wall-clock
// PartitionNS is identical across reruns and across serial vs
// concurrent legs.
func TestCompareBackendsDeterministic(t *testing.T) {
	snaps := testSnaps(t, 2)
	strip := func(c *BackendComparison) []BackendRow {
		rows := append([]BackendRow(nil), c.Rows...)
		for i := range rows {
			rows[i].PartitionNS = 0
		}
		return rows
	}
	a, err := CompareBackends(context.Background(), snaps, Config{K: 4, Seed: 7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompareBackends(context.Background(), snaps, Config{K: 4, Seed: 7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompareBackends(context.Background(), snaps, Config{K: 4, Seed: 7, SerialLegs: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb, rc := strip(a), strip(b), strip(c)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Errorf("rerun diverged at row %d: %+v vs %+v", i, ra[i], rb[i])
		}
		if ra[i] != rc[i] {
			t.Errorf("serial legs diverged at row %d: %+v vs %+v", i, ra[i], rc[i])
		}
	}
}

// TestBackendCheckpointResume: the kill/resume fidelity gate for the
// new geometric backends — a sweep over sfc and bkmeans configs killed
// mid-run and resumed from its checkpoint must emit byte-identical
// results, mirroring TestCheckpointResumeByteIdentical.
func TestBackendCheckpointResume(t *testing.T) {
	snaps := testSnaps(t, 3)
	cfgs := []Config{
		{K: 4, Seed: 2, Backend: "sfc"},
		{K: 4, Seed: 2, Backend: "bkmeans"},
	}
	want, err := RunAll(snaps, cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := marshalResults(t, want)

	for killAt := 1; killAt < len(snaps); killAt++ {
		path := filepath.Join(t.TempDir(), "backends.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		ck := NewCheckpointer(path, snaps, cfgs)
		ck.AfterFlush = func(exp, cursor int) {
			if exp == 0 && cursor == killAt {
				cancel()
			}
		}
		if _, err := RunAllResumable(ctx, snaps, cfgs, 1, ck); err == nil {
			t.Fatalf("killAt=%d: interrupted sweep reported success", killAt)
		}
		cancel()
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("killAt=%d: no checkpoint written: %v", killAt, err)
		}

		ck2, err := LoadCheckpoint(path, snaps, cfgs)
		if err != nil {
			t.Fatalf("killAt=%d: %v", killAt, err)
		}
		got, err := RunAllResumable(context.Background(), snaps, cfgs, 2, ck2)
		if err != nil {
			t.Fatalf("killAt=%d: resume failed: %v", killAt, err)
		}
		if gotJSON := marshalResults(t, got); !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("killAt=%d: resumed results differ from uninterrupted run\n got: %s\nwant: %s",
				killAt, gotJSON, wantJSON)
		}
	}
}

// TestBackendConfigHashCompat pins the checkpoint-hash compatibility
// contract: configs expressible before the backend selector existed
// ("", "multilevel", "rcb") hash exactly as their historical geo=bool
// forms did, so pre-existing checkpoints stay loadable; new backends
// get distinct hashes.
func TestBackendConfigHashCompat(t *testing.T) {
	snaps := testSnaps(t, 1)
	h := func(c Config) string { return configHash(snaps, []Config{c}) }
	if h(Config{K: 4, Seed: 1}) != h(Config{K: 4, Seed: 1, Backend: "multilevel"}) {
		t.Error("multilevel alias changed the hash")
	}
	base := h(Config{K: 4, Seed: 1})
	for _, be := range []string{"rcb", "sfc", "bkmeans"} {
		if h(Config{K: 4, Seed: 1, Backend: be}) == base {
			t.Errorf("backend %s hashes like multilevel", be)
		}
	}
	if h(Config{K: 4, Seed: 1, Backend: "sfc"}) == h(Config{K: 4, Seed: 1, Backend: "bkmeans"}) {
		t.Error("sfc and bkmeans share a hash")
	}
}
