// Package meshgen generates structured finite-element meshes and the
// projectile/two-plate impact scene used as the stand-in for the
// paper's proprietary EPIC dataset (a projectile penetrating two
// plates; 156,601 nodes / 701,952 elements / 20,262 contact nodes in
// the original). The generated scene is fully parametric so the
// benchmark harness can run at laptop scale or at paper scale.
package meshgen

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// ErrBadSpec is the sentinel wrapped by every input-validation error
// in this package (degenerate cell counts, non-finite or non-positive
// geometry, zero-element scenes), so callers can distinguish bad input
// from internal failures with errors.Is.
var ErrBadSpec = errors.New("meshgen: bad spec")

// finite reports whether every listed value is a finite float.
func finite(vals ...float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// BoxSpec describes a structured hexahedral block: Nx x Ny x Nz cells
// starting at Origin with per-axis cell sizes H.
type BoxSpec struct {
	Nx, Ny, Nz int
	Origin     geom.Point
	H          geom.Point
}

// Validate checks the spec: at least one cell per axis, finite origin,
// and finite positive cell sizes. All violations wrap ErrBadSpec.
func (s BoxSpec) Validate() error {
	if s.Nx < 1 || s.Ny < 1 || s.Nz < 1 {
		return fmt.Errorf("%w: box cell counts %dx%dx%d (every axis needs >= 1 cell)", ErrBadSpec, s.Nx, s.Ny, s.Nz)
	}
	if !finite(s.Origin[0], s.Origin[1], s.Origin[2]) {
		return fmt.Errorf("%w: non-finite box origin %v", ErrBadSpec, s.Origin)
	}
	if !finite(s.H[0], s.H[1], s.H[2]) || s.H[0] <= 0 || s.H[1] <= 0 || s.H[2] <= 0 {
		return fmt.Errorf("%w: box cell sizes %v (want finite and positive)", ErrBadSpec, s.H)
	}
	return nil
}

// NumNodes returns the node count of the block.
func (s BoxSpec) NumNodes() int { return (s.Nx + 1) * (s.Ny + 1) * (s.Nz + 1) }

// NumCells returns the cell count of the block.
func (s BoxSpec) NumCells() int { return s.Nx * s.Ny * s.Nz }

// nodeID returns the node index of lattice point (i,j,k) within the block.
func (s BoxSpec) nodeID(i, j, k int) int32 {
	return int32(k*(s.Nx+1)*(s.Ny+1) + j*(s.Nx+1) + i)
}

// StructuredBox meshes the block with hexahedra. An invalid spec
// returns an error wrapping ErrBadSpec.
func StructuredBox(s BoxSpec) (*mesh.Mesh, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m := &mesh.Mesh{Dim: 3}
	m.Coords = make([]geom.Point, 0, s.NumNodes())
	for k := 0; k <= s.Nz; k++ {
		for j := 0; j <= s.Ny; j++ {
			for i := 0; i <= s.Nx; i++ {
				m.Coords = append(m.Coords, geom.P3(
					s.Origin[0]+float64(i)*s.H[0],
					s.Origin[1]+float64(j)*s.H[1],
					s.Origin[2]+float64(k)*s.H[2],
				))
			}
		}
	}
	m.EPtr = make([]int32, 1, s.NumCells()+1)
	for k := 0; k < s.Nz; k++ {
		for j := 0; j < s.Ny; j++ {
			for i := 0; i < s.Nx; i++ {
				m.Types = append(m.Types, mesh.Hex8)
				m.ENodes = append(m.ENodes,
					s.nodeID(i, j, k), s.nodeID(i+1, j, k), s.nodeID(i+1, j+1, k), s.nodeID(i, j+1, k),
					s.nodeID(i, j, k+1), s.nodeID(i+1, j, k+1), s.nodeID(i+1, j+1, k+1), s.nodeID(i, j+1, k+1),
				)
				m.EPtr = append(m.EPtr, int32(len(m.ENodes)))
			}
		}
	}
	return m, nil
}

// hexToTets lists the local node indices of the 6-tetrahedra
// decomposition of a hexahedron (all sharing the 0-6 diagonal), which
// tiles a structured grid conformingly when every hex uses the same
// local ordering.
var hexToTets = [6][4]int{
	{0, 1, 2, 6},
	{0, 2, 3, 6},
	{0, 3, 7, 6},
	{0, 7, 4, 6},
	{0, 4, 5, 6},
	{0, 5, 1, 6},
}

// StructuredTetBox meshes the block with tetrahedra (6 per hex cell),
// matching the element flavor of the EPIC code used in the paper. An
// invalid spec returns an error wrapping ErrBadSpec.
func StructuredTetBox(s BoxSpec) (*mesh.Mesh, error) {
	hex, err := StructuredBox(s)
	if err != nil {
		return nil, err
	}
	m := &mesh.Mesh{Dim: 3, Coords: hex.Coords}
	m.EPtr = make([]int32, 1, 6*hex.NumElems()+1)
	for e := 0; e < hex.NumElems(); e++ {
		nodes := hex.ElemNodes(e)
		for _, tet := range hexToTets {
			m.Types = append(m.Types, mesh.Tet4)
			m.ENodes = append(m.ENodes,
				nodes[tet[0]], nodes[tet[1]], nodes[tet[2]], nodes[tet[3]])
			m.EPtr = append(m.EPtr, int32(len(m.ENodes)))
		}
	}
	return m, nil
}

// Grid2DSpec describes a structured 2D quad block.
type Grid2DSpec struct {
	Nx, Ny int
	Origin geom.Point
	H      geom.Point
}

// Validate checks the spec: at least one cell per axis, finite origin,
// and finite positive cell sizes. All violations wrap ErrBadSpec.
func (s Grid2DSpec) Validate() error {
	if s.Nx < 1 || s.Ny < 1 {
		return fmt.Errorf("%w: grid cell counts %dx%d (every axis needs >= 1 cell)", ErrBadSpec, s.Nx, s.Ny)
	}
	if !finite(s.Origin[0], s.Origin[1]) {
		return fmt.Errorf("%w: non-finite grid origin %v", ErrBadSpec, s.Origin)
	}
	if !finite(s.H[0], s.H[1]) || s.H[0] <= 0 || s.H[1] <= 0 {
		return fmt.Errorf("%w: grid cell sizes %v (want finite and positive)", ErrBadSpec, s.H)
	}
	return nil
}

// StructuredQuadGrid meshes the 2D block with quadrilaterals. An
// invalid spec returns an error wrapping ErrBadSpec.
func StructuredQuadGrid(s Grid2DSpec) (*mesh.Mesh, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m := &mesh.Mesh{Dim: 2}
	for j := 0; j <= s.Ny; j++ {
		for i := 0; i <= s.Nx; i++ {
			m.Coords = append(m.Coords, geom.P2(
				s.Origin[0]+float64(i)*s.H[0],
				s.Origin[1]+float64(j)*s.H[1],
			))
		}
	}
	id := func(i, j int) int32 { return int32(j*(s.Nx+1) + i) }
	m.EPtr = []int32{0}
	for j := 0; j < s.Ny; j++ {
		for i := 0; i < s.Nx; i++ {
			m.Types = append(m.Types, mesh.Quad4)
			m.ENodes = append(m.ENodes, id(i, j), id(i+1, j), id(i+1, j+1), id(i, j+1))
			m.EPtr = append(m.EPtr, int32(len(m.ENodes)))
		}
	}
	return m, nil
}

// StructuredTriGrid meshes the 2D block with triangles (2 per quad).
// An invalid spec returns an error wrapping ErrBadSpec.
func StructuredTriGrid(s Grid2DSpec) (*mesh.Mesh, error) {
	quad, err := StructuredQuadGrid(s)
	if err != nil {
		return nil, err
	}
	m := &mesh.Mesh{Dim: 2, Coords: quad.Coords}
	m.EPtr = []int32{0}
	for e := 0; e < quad.NumElems(); e++ {
		n := quad.ElemNodes(e)
		for _, tri := range [2][3]int{{0, 1, 2}, {0, 2, 3}} {
			m.Types = append(m.Types, mesh.Tri3)
			m.ENodes = append(m.ENodes, n[tri[0]], n[tri[1]], n[tri[2]])
			m.EPtr = append(m.EPtr, int32(len(m.ENodes)))
		}
	}
	return m, nil
}

// Append merges src into dst (concatenating node and element arrays;
// the bodies stay topologically disconnected) and returns the node and
// element index offsets assigned to src.
func Append(dst, src *mesh.Mesh) (nodeOff, elemOff int32, err error) {
	if dst.Dim != src.Dim {
		return 0, 0, fmt.Errorf("meshgen: cannot append %dD mesh to %dD mesh", src.Dim, dst.Dim)
	}
	nodeOff = int32(dst.NumNodes())
	elemOff = int32(dst.NumElems())
	dst.Coords = append(dst.Coords, src.Coords...)
	dst.Types = append(dst.Types, src.Types...)
	base := int32(len(dst.ENodes))
	for _, v := range src.ENodes {
		dst.ENodes = append(dst.ENodes, v+nodeOff)
	}
	if len(dst.EPtr) == 0 {
		dst.EPtr = []int32{0}
	}
	for _, p := range src.EPtr[1:] {
		dst.EPtr = append(dst.EPtr, base+p)
	}
	for _, s := range src.Surface {
		nodes := make([]int32, len(s.Nodes))
		for i, v := range s.Nodes {
			nodes[i] = v + nodeOff
		}
		el := s.Elem
		if el >= 0 {
			el += elemOff
		}
		dst.Surface = append(dst.Surface, mesh.SurfaceElem{Nodes: nodes, Elem: el})
	}
	return nodeOff, elemOff, nil
}
