package meshgen

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
)

func TestStructuredBoxCounts(t *testing.T) {
	s := BoxSpec{Nx: 3, Ny: 2, Nz: 4, Origin: geom.P3(1, 2, 3), H: geom.P3(0.5, 1, 2)}
	m, err := StructuredBox(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != s.NumNodes() || m.NumNodes() != 4*3*5 {
		t.Fatalf("nodes = %d, want %d", m.NumNodes(), 4*3*5)
	}
	if m.NumElems() != s.NumCells() || m.NumElems() != 3*2*4 {
		t.Fatalf("elems = %d, want %d", m.NumElems(), 3*2*4)
	}
	// Corner coordinates.
	box := m.Box()
	if box.Min != geom.P3(1, 2, 3) {
		t.Errorf("Min = %v", box.Min)
	}
	if box.Max != geom.P3(1+3*0.5, 2+2*1, 3+4*2) {
		t.Errorf("Max = %v", box.Max)
	}
}

func TestStructuredBoxConnectivity(t *testing.T) {
	m, err := StructuredBox(BoxSpec{Nx: 2, Ny: 2, Nz: 2, H: geom.P3(1, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	d := m.DualGraph()
	// 2x2x2 hexes: interior faces = 3 orientations * 2*2*1 ... = 12.
	if d.NE() != 12 {
		t.Fatalf("dual NE = %d, want 12", d.NE())
	}
	// Boundary quads: 6 sides * 4 = 24.
	if bf := m.BoundaryFacets(); len(bf) != 24 {
		t.Fatalf("boundary facets = %d, want 24", len(bf))
	}
}

func TestStructuredTetBoxConforming(t *testing.T) {
	m, err := StructuredTetBox(BoxSpec{Nx: 2, Ny: 2, Nz: 2, H: geom.P3(1, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumElems() != 6*8 {
		t.Fatalf("elems = %d, want 48", m.NumElems())
	}
	// Conforming decomposition: the boundary of the 2x2x2 cube must be
	// exactly 2 triangles per boundary quad = 48 facets.
	if bf := m.BoundaryFacets(); len(bf) != 48 {
		t.Fatalf("boundary facets = %d, want 48", len(bf))
	}
	// And the dual graph of the tets must be connected.
	d := m.DualGraph()
	_, n := d.Components()
	if n != 1 {
		t.Fatalf("tet dual has %d components, want 1", n)
	}
}

func TestStructuredQuadAndTriGrids(t *testing.T) {
	q, err := StructuredQuadGrid(Grid2DSpec{Nx: 4, Ny: 3, H: geom.P2(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != 5*4 || q.NumElems() != 12 {
		t.Fatalf("quad grid %d nodes %d elems", q.NumNodes(), q.NumElems())
	}
	tr, err := StructuredTriGrid(Grid2DSpec{Nx: 4, Ny: 3, H: geom.P2(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumElems() != 24 {
		t.Fatalf("tri grid %d elems", tr.NumElems())
	}
	// Boundary of the 2D grids: perimeter edges = 2*(4+3) = 14 for the
	// quad grid; the tri split adds no boundary edges.
	if bf := tr.BoundaryFacets(); len(bf) != 14 {
		t.Fatalf("tri boundary = %d, want 14", len(bf))
	}
}

func TestAppendOffsets(t *testing.T) {
	a, err := StructuredBox(BoxSpec{Nx: 1, Ny: 1, Nz: 1, H: geom.P3(1, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := StructuredBox(BoxSpec{Nx: 1, Ny: 1, Nz: 1, Origin: geom.P3(5, 0, 0), H: geom.P3(1, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	b.Surface = b.BoundaryFacets()
	nOff, eOff, err := Append(a, b)
	if err != nil {

		t.Fatal(err)
	}
	if nOff != 8 || eOff != 1 {
		t.Fatalf("offsets = %d, %d", nOff, eOff)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != 16 || a.NumElems() != 2 {
		t.Fatalf("merged: %d nodes %d elems", a.NumNodes(), a.NumElems())
	}
	// Surface facets were renumbered into the second body's node range.
	for _, s := range a.Surface {
		for _, n := range s.Nodes {
			if n < 8 {
				t.Fatalf("surface node %d not offset", n)
			}
		}
		if s.Elem != 1 {
			t.Fatalf("surface elem = %d, want 1", s.Elem)
		}
	}
	// Dim mismatch is rejected.
	q, err := StructuredQuadGrid(Grid2DSpec{Nx: 1, Ny: 1, H: geom.P2(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Append(a, q); err == nil {
		t.Error("Append accepted 2D mesh into 3D mesh")
	}
}

func TestProjectileScene(t *testing.T) {
	cfg := DefaultScene()
	cfg.PlateNX, cfg.PlateNY, cfg.PlateNZ = 10, 10, 2
	cfg.ProjN, cfg.ProjLen = 2, 6
	cfg.ContactRadius = 3
	m, si, err := ProjectileScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Three disjoint bodies.
	g := m.NodalGraph(mesh.NodalGraphOptions{NCon: 1})
	if _, n := g.Components(); n != 3 {
		t.Fatalf("scene has %d components, want 3", n)
	}
	// Ranges partition the node and element sets.
	if si.Nodes[Plate1].Lo != 0 || si.Nodes[Projectile].Hi != int32(m.NumNodes()) {
		t.Error("node ranges do not cover the mesh")
	}
	if si.Elems[Plate1].Lo != 0 || si.Elems[Projectile].Hi != int32(m.NumElems()) {
		t.Error("element ranges do not cover the mesh")
	}
	// Projectile sits above plate 1.
	projBox := geom.Empty()
	for n := si.Nodes[Projectile].Lo; n < si.Nodes[Projectile].Hi; n++ {
		projBox = projBox.Extend(m.Coords[n])
	}
	if projBox.Min[2] < si.Plate1Top {
		t.Errorf("projectile tip %g below plate1 top %g", projBox.Min[2], si.Plate1Top)
	}
	// Contact surface exists and every projectile boundary facet is in it.
	if len(m.Surface) == 0 {
		t.Fatal("no contact surface designated")
	}
	nProj := 0
	for _, s := range m.Surface {
		if b, ok := si.BodyOfElem(s.Elem); ok && b == Projectile {
			nProj++
		}
	}
	if nProj == 0 {
		t.Error("projectile boundary missing from contact surface")
	}
	// Plate contact facets stay within the radius (centroid check).
	for _, s := range m.Surface {
		if b, ok := si.BodyOfElem(s.Elem); ok && b == Projectile {
			continue
		}
		var cx, cy float64
		for _, n := range s.Nodes {
			cx += m.Coords[n][0]
			cy += m.Coords[n][1]
		}
		k := float64(len(s.Nodes))
		cx, cy = cx/k, cy/k
		dx, dy := cx-si.Axis[0], cy-si.Axis[1]
		if dx*dx+dy*dy > cfg.ContactRadius*cfg.ContactRadius*1.0001 {
			t.Fatalf("plate contact facet outside radius: (%g,%g)", cx, cy)
		}
	}
}

func TestProjectileSceneHexMode(t *testing.T) {
	cfg := DefaultScene()
	cfg.Tets = false
	cfg.PlateNX, cfg.PlateNY, cfg.PlateNZ = 8, 8, 2
	cfg.ProjN, cfg.ProjLen = 2, 4
	m, _, err := ProjectileScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, et := range m.Types {
		if et != mesh.Hex8 {
			t.Fatalf("hex mode produced %v", et)
		}
	}
}

func TestProjectileSceneRefine(t *testing.T) {
	cfg := DefaultScene()
	cfg.PlateNX, cfg.PlateNY, cfg.PlateNZ = 6, 6, 2
	cfg.ProjN, cfg.ProjLen = 2, 4
	m1, _, err := ProjectileScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Refine = 2
	m2, _, err := ProjectileScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumElems() != 8*m1.NumElems() {
		t.Errorf("refine 2 elems = %d, want 8x%d", m2.NumElems(), m1.NumElems())
	}
	// Refinement must preserve the physical extents.
	if m1.Box() != m2.Box() {
		t.Errorf("refined box %v != base box %v", m2.Box(), m1.Box())
	}
}

func TestProjectileSceneRejectsBadConfig(t *testing.T) {
	cfg := DefaultScene()
	cfg.Refine = 0
	if _, _, err := ProjectileScene(cfg); err == nil {
		t.Error("accepted Refine=0")
	}
	cfg = DefaultScene()
	cfg.ProjN = 0
	if _, _, err := ProjectileScene(cfg); err == nil {
		t.Error("accepted ProjN=0")
	}
}

func TestContactNodeFraction(t *testing.T) {
	// The default scene should give a contact-node fraction in the
	// neighbourhood of the paper's 13%.
	m, _, err := ProjectileScene(DefaultScene())
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(m.ContactNodes())) / float64(m.NumNodes())
	if frac < 0.05 || frac > 0.30 {
		t.Errorf("contact node fraction = %.3f, want within [0.05, 0.30]", frac)
	}
	t.Logf("scene: %d nodes, %d elems, %d surface elems, %d contact nodes (%.1f%%)",
		m.NumNodes(), m.NumElems(), len(m.Surface), len(m.ContactNodes()), 100*frac)
}

func TestFullFacesDesignation(t *testing.T) {
	cfg := DefaultScene()
	cfg.PlateNX, cfg.PlateNY, cfg.PlateNZ = 10, 10, 3
	cfg.ProjN, cfg.ProjLen = 2, 4
	cfg.FullFaces = true
	cfg.ContactRadius = 2
	m, si, err := ProjectileScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every horizontal plate facet (top and bottom faces) must be a
	// contact surface: each plate contributes 2 faces; with tets each
	// quad face is 2 triangles -> 2 plates * 2 faces * 10*10*2 = 800,
	// plus projectile surface and the radius patch on crater walls.
	nPlateHoriz := 0
	for _, s := range m.Surface {
		if b, ok := si.BodyOfElem(s.Elem); !ok || b != Projectile {
			// All plate contact facets here are horizontal or within
			// the small radius; count the horizontal ones.
			z0 := m.Coords[s.Nodes[0]][2]
			flat := true
			for _, n := range s.Nodes[1:] {
				if m.Coords[n][2] != z0 {
					flat = false
					break
				}
			}
			if flat {
				nPlateHoriz++
			}
		}
	}
	want := 2 * 2 * cfg.PlateNX * cfg.PlateNY * 2 // plates * faces * tris
	if nPlateHoriz < want {
		t.Errorf("horizontal contact facets = %d, want >= %d", nPlateHoriz, want)
	}
	// Without FullFaces, far fewer.
	cfg.FullFaces = false
	m2, _, err := ProjectileScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Surface) >= len(m.Surface) {
		t.Errorf("FullFaces did not add facets: %d vs %d", len(m.Surface), len(m2.Surface))
	}
}

func TestHorizontalFacetClassifier(t *testing.T) {
	m, _, err := ProjectileScene(DefaultScene())
	if err != nil {
		t.Fatal(err)
	}
	// A facet with all-equal z is horizontal; a vertical wall facet is not.
	horiz := mesh.SurfaceElem{Nodes: []int32{0, 1, 2}}
	// Build a tiny mesh to test directly.
	tm := &mesh.Mesh{
		Dim: 3,
		Coords: []geom.Point{
			geom.P3(0, 0, 1), geom.P3(1, 0, 1), geom.P3(0, 1, 1), // flat at z=1
			geom.P3(0, 0, 0), geom.P3(0, 1, 0), geom.P3(0, 0, 1), // x=0 wall
		},
		EPtr: []int32{0},
	}
	_ = m
	if !HorizontalFacetForTest(tm, horiz) {
		t.Error("flat facet not classified horizontal")
	}
	wall := mesh.SurfaceElem{Nodes: []int32{3, 4, 5}}
	if HorizontalFacetForTest(tm, wall) {
		t.Error("vertical wall classified horizontal")
	}
}

func TestImpactOffset(t *testing.T) {
	cfg := DefaultScene()
	cfg.PlateNX, cfg.PlateNY, cfg.PlateNZ = 12, 12, 2
	cfg.ProjN, cfg.ProjLen = 2, 4
	cfg.ContactRadius = 3
	cfg.ImpactOffsetX, cfg.ImpactOffsetY = 3, -2
	m, si, err := ProjectileScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if si.Axis[0] != 9 || si.Axis[1] != 4 {
		t.Errorf("axis = %v, want (9, 4, 0)", si.Axis)
	}
	// Projectile is centered on the shifted axis.
	box := geom.Empty()
	for n := si.Nodes[Projectile].Lo; n < si.Nodes[Projectile].Hi; n++ {
		box = box.Extend(m.Coords[n])
	}
	cx := (box.Min[0] + box.Max[0]) / 2
	cy := (box.Min[1] + box.Max[1]) / 2
	if cx != si.Axis[0] || cy != si.Axis[1] {
		t.Errorf("projectile center (%g,%g), axis %v", cx, cy, si.Axis)
	}
	// Off-plate offsets are rejected.
	cfg.ImpactOffsetX = 100
	if _, _, err := ProjectileScene(cfg); err == nil {
		t.Error("accepted projectile off the plates")
	}
}
