package meshgen

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geom"
)

// TestBoxSpecValidation table-tests the hex/tet builders' input
// validation: every rejection must wrap ErrBadSpec (never panic), and
// valid specs must build.
func TestBoxSpecValidation(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		spec BoxSpec
		ok   bool
	}{
		{"valid", BoxSpec{Nx: 2, Ny: 2, Nz: 2, H: geom.P3(1, 1, 1)}, true},
		{"single_cell", BoxSpec{Nx: 1, Ny: 1, Nz: 1, H: geom.P3(0.5, 2, 3)}, true},
		{"zero_cells_x", BoxSpec{Nx: 0, Ny: 2, Nz: 2, H: geom.P3(1, 1, 1)}, false},
		{"negative_cells", BoxSpec{Nx: 2, Ny: -1, Nz: 2, H: geom.P3(1, 1, 1)}, false},
		{"zero_value_spec", BoxSpec{}, false},
		{"zero_cell_size", BoxSpec{Nx: 2, Ny: 2, Nz: 2, H: geom.P3(1, 0, 1)}, false},
		{"negative_cell_size", BoxSpec{Nx: 2, Ny: 2, Nz: 2, H: geom.P3(1, 1, -1)}, false},
		{"nan_cell_size", BoxSpec{Nx: 2, Ny: 2, Nz: 2, H: geom.P3(1, nan, 1)}, false},
		{"inf_cell_size", BoxSpec{Nx: 2, Ny: 2, Nz: 2, H: geom.P3(inf, 1, 1)}, false},
		{"nan_origin", BoxSpec{Nx: 2, Ny: 2, Nz: 2, Origin: geom.P3(nan, 0, 0), H: geom.P3(1, 1, 1)}, false},
		{"inf_origin", BoxSpec{Nx: 2, Ny: 2, Nz: 2, Origin: geom.P3(0, inf, 0), H: geom.P3(1, 1, 1)}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, build := range []struct {
				name string
				fn   func(BoxSpec) (interface{ NumElems() int }, error)
			}{
				{"StructuredBox", func(s BoxSpec) (interface{ NumElems() int }, error) { return StructuredBox(s) }},
				{"StructuredTetBox", func(s BoxSpec) (interface{ NumElems() int }, error) { return StructuredTetBox(s) }},
			} {
				m, err := build.fn(c.spec)
				if c.ok {
					if err != nil {
						t.Fatalf("%s: unexpected error: %v", build.name, err)
					}
					if m.NumElems() == 0 {
						t.Fatalf("%s: valid spec built an empty mesh", build.name)
					}
					continue
				}
				if err == nil {
					t.Fatalf("%s: invalid spec accepted", build.name)
				}
				if !errors.Is(err, ErrBadSpec) {
					t.Fatalf("%s: error %v does not wrap ErrBadSpec", build.name, err)
				}
			}
		})
	}
}

// TestGrid2DSpecValidation is the 2D counterpart.
func TestGrid2DSpecValidation(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		spec Grid2DSpec
		ok   bool
	}{
		{"valid", Grid2DSpec{Nx: 3, Ny: 2, H: geom.P2(1, 1)}, true},
		{"zero_cells", Grid2DSpec{Nx: 0, Ny: 2, H: geom.P2(1, 1)}, false},
		{"zero_value_spec", Grid2DSpec{}, false},
		{"negative_cell_size", Grid2DSpec{Nx: 2, Ny: 2, H: geom.P2(-1, 1)}, false},
		{"nan_origin", Grid2DSpec{Nx: 2, Ny: 2, Origin: geom.P2(nan, 0), H: geom.P2(1, 1)}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, build := range []struct {
				name string
				fn   func(Grid2DSpec) (interface{ NumElems() int }, error)
			}{
				{"StructuredQuadGrid", func(s Grid2DSpec) (interface{ NumElems() int }, error) { return StructuredQuadGrid(s) }},
				{"StructuredTriGrid", func(s Grid2DSpec) (interface{ NumElems() int }, error) { return StructuredTriGrid(s) }},
			} {
				_, err := build.fn(c.spec)
				if c.ok && err != nil {
					t.Fatalf("%s: unexpected error: %v", build.name, err)
				}
				if !c.ok {
					if err == nil {
						t.Fatalf("%s: invalid spec accepted", build.name)
					}
					if !errors.Is(err, ErrBadSpec) {
						t.Fatalf("%s: error %v does not wrap ErrBadSpec", build.name, err)
					}
				}
			}
		})
	}
}

// TestSceneConfigValidation table-tests ProjectileScene input
// rejection: zero-element scenes, non-finite geometry, and off-plate
// impact offsets all come back as ErrBadSpec errors.
func TestSceneConfigValidation(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(-1)
	mod := func(f func(*SceneConfig)) SceneConfig {
		c := DefaultScene()
		c.PlateNX, c.PlateNY, c.PlateNZ = 8, 8, 2
		c.ProjN, c.ProjLen = 2, 4
		f(&c)
		return c
	}
	cases := []struct {
		name string
		cfg  SceneConfig
		ok   bool
	}{
		{"valid", mod(func(c *SceneConfig) {}), true},
		{"zero_value_config", SceneConfig{}, false},
		{"refine_zero", mod(func(c *SceneConfig) { c.Refine = 0 }), false},
		{"refine_negative", mod(func(c *SceneConfig) { c.Refine = -3 }), false},
		{"zero_plate_cells", mod(func(c *SceneConfig) { c.PlateNZ = 0 }), false},
		{"zero_projectile", mod(func(c *SceneConfig) { c.ProjN = 0 }), false},
		{"zero_cell_size", mod(func(c *SceneConfig) { c.Cell = 0 }), false},
		{"negative_cell_size", mod(func(c *SceneConfig) { c.Cell = -1 }), false},
		{"nan_cell", mod(func(c *SceneConfig) { c.Cell = nan }), false},
		{"inf_gap", mod(func(c *SceneConfig) { c.Gap = inf }), false},
		{"nan_offset", mod(func(c *SceneConfig) { c.ImpactOffsetX = nan }), false},
		{"nan_radius", mod(func(c *SceneConfig) { c.ContactRadius = nan }), false},
		{"negative_radius", mod(func(c *SceneConfig) { c.ContactRadius = -1 }), false},
		{"offset_off_plate", mod(func(c *SceneConfig) { c.ImpactOffsetY = 1e6 }), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, _, err := ProjectileScene(c.cfg)
			if c.ok {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if m.NumElems() == 0 {
					t.Fatal("valid scene has zero elements")
				}
				return
			}
			if err == nil {
				t.Fatal("invalid scene config accepted")
			}
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("error %v does not wrap ErrBadSpec", err)
			}
		})
	}
}

// TestBodyOfElemOutOfRange: a stale element id reports !ok instead of
// panicking.
func TestBodyOfElemOutOfRange(t *testing.T) {
	cfg := DefaultScene()
	cfg.PlateNX, cfg.PlateNY, cfg.PlateNZ = 8, 8, 2
	cfg.ProjN, cfg.ProjLen = 2, 4
	m, si, err := ProjectileScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := si.BodyOfElem(int32(m.NumElems())); ok {
		t.Error("out-of-range element id mapped to a body")
	}
	if _, ok := si.BodyOfElem(-1); ok {
		t.Error("negative element id mapped to a body")
	}
	if b, ok := si.BodyOfElem(0); !ok || b != Plate1 {
		t.Errorf("element 0 = (%v, %v), want (Plate1, true)", b, ok)
	}
}
