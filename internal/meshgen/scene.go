package meshgen

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// SceneConfig parameterizes the projectile/two-plate impact scene. The
// zero value is not usable; start from DefaultScene().
type SceneConfig struct {
	// Refine scales the resolution of every body; Refine=1 gives a
	// ~10k-node scene, Refine=2 ~64k, Refine=3 ~200k (paper scale).
	Refine int
	// Tets selects 6-tet-per-hex elements (the EPIC flavor); false
	// keeps hexahedra.
	Tets bool
	// PlateNX/PlateNY/PlateNZ are the base cell counts of each plate
	// (before refinement); ProjN and ProjLen the projectile's square
	// cross-section and length in cells.
	PlateNX, PlateNY, PlateNZ int
	ProjN, ProjLen            int
	// Cell is the base cell size; Gap the spacing between the plates;
	// Clearance the initial projectile standoff above plate 1.
	Cell, Gap, Clearance float64
	// ContactRadius designates the contact patch: plate facets whose
	// centroid lies within this xy-distance of the impact axis are
	// flagged as contact surfaces (the projectile's whole boundary
	// always is).
	ContactRadius float64
	// FullFaces additionally designates every *horizontal* plate
	// boundary facet (the full top and bottom faces) as contact
	// surface, matching the EPIC dataset's slide surfaces; the
	// ContactRadius patch then only adds the crater walls that erosion
	// exposes.
	FullFaces bool
	// ImpactOffsetX/Y shift the impact axis (and the projectile) away
	// from the plate center, for oblique-scenario studies. The offset
	// must keep the projectile's footprint inside the plates.
	ImpactOffsetX, ImpactOffsetY float64
}

// DefaultScene returns the configuration used by the benchmarks at
// Refine=1 (roughly 10k nodes with ~12% contact nodes, mirroring the
// paper's 13%).
func DefaultScene() SceneConfig {
	return SceneConfig{
		Refine:        1,
		Tets:          true,
		PlateNX:       30,
		PlateNY:       30,
		PlateNZ:       4,
		ProjN:         4,
		ProjLen:       16,
		Cell:          1.0,
		Gap:           3.0,
		Clearance:     1.0,
		ContactRadius: 8.0,
	}
}

// Body identifies one of the three bodies in the scene.
type Body int

const (
	Plate1     Body = iota // upper plate (hit first)
	Plate2                 // lower plate
	Projectile             // penetrator
)

func (b Body) String() string {
	switch b {
	case Plate1:
		return "plate1"
	case Plate2:
		return "plate2"
	case Projectile:
		return "projectile"
	}
	return fmt.Sprintf("Body(%d)", int(b))
}

// Range is a half-open index interval [Lo, Hi).
type Range struct{ Lo, Hi int32 }

// Contains reports whether i is inside the range.
func (r Range) Contains(i int32) bool { return i >= r.Lo && i < r.Hi }

// Len returns Hi-Lo.
func (r Range) Len() int { return int(r.Hi - r.Lo) }

// SceneInfo records the geometry bookkeeping of a generated scene; the
// simulator uses it to advance the projectile and erode the plates.
type SceneInfo struct {
	Cfg       SceneConfig
	Nodes     [3]Range // node index range per Body
	Elems     [3]Range // element index range per Body
	Axis      geom.Point
	Plate1Top float64
	Plate1Bot float64
	Plate2Top float64
	Plate2Bot float64
	ProjTip   float64 // initial z of the projectile's lowest face
}

// BodyOfElem returns which body element e belongs to. ok is false
// when e lies outside every body's element range (a stale or corrupt
// id — e.g. after erosion invalidated the ranges); callers decide
// whether that is an error.
func (si *SceneInfo) BodyOfElem(e int32) (Body, bool) {
	for b := Plate1; b <= Projectile; b++ {
		if si.Elems[b].Contains(e) {
			return b, true
		}
	}
	return Body(-1), false
}

// ProjectileScene builds the scene: two stacked plates and a square-rod
// projectile poised above them on the impact axis. The returned mesh
// has its contact surface designated per cfg.ContactRadius.
func ProjectileScene(cfg SceneConfig) (*mesh.Mesh, *SceneInfo, error) {
	if cfg.Refine < 1 {
		return nil, nil, fmt.Errorf("%w: Refine = %d, want >= 1", ErrBadSpec, cfg.Refine)
	}
	if cfg.PlateNX < 2 || cfg.PlateNY < 2 || cfg.PlateNZ < 1 || cfg.ProjN < 1 || cfg.ProjLen < 1 {
		return nil, nil, fmt.Errorf("%w: degenerate cell counts in %+v", ErrBadSpec, cfg)
	}
	if !finite(cfg.Cell, cfg.Gap, cfg.Clearance, cfg.ContactRadius, cfg.ImpactOffsetX, cfg.ImpactOffsetY) {
		return nil, nil, fmt.Errorf("%w: non-finite geometry in %+v", ErrBadSpec, cfg)
	}
	if cfg.Cell <= 0 {
		return nil, nil, fmt.Errorf("%w: Cell = %g, want > 0", ErrBadSpec, cfg.Cell)
	}
	if cfg.Gap < 0 || cfg.Clearance < 0 || cfg.ContactRadius < 0 {
		return nil, nil, fmt.Errorf("%w: negative Gap/Clearance/ContactRadius in %+v", ErrBadSpec, cfg)
	}
	r := cfg.Refine
	h := cfg.Cell / float64(r)
	nx, ny, nz := cfg.PlateNX*r, cfg.PlateNY*r, cfg.PlateNZ*r
	pn, pl := cfg.ProjN*r, cfg.ProjLen*r

	plateW := float64(cfg.PlateNX) * cfg.Cell
	plateD := float64(cfg.PlateNY) * cfg.Cell
	plateT := float64(cfg.PlateNZ) * cfg.Cell
	cx, cy := plateW/2+cfg.ImpactOffsetX, plateD/2+cfg.ImpactOffsetY
	projW0 := float64(cfg.ProjN) * cfg.Cell
	if cx-projW0/2 < 0 || cx+projW0/2 > plateW || cy-projW0/2 < 0 || cy+projW0/2 > plateD {
		return nil, nil, fmt.Errorf("%w: impact offset (%g, %g) pushes the projectile off the plates", ErrBadSpec, cfg.ImpactOffsetX, cfg.ImpactOffsetY)
	}

	si := &SceneInfo{
		Cfg:       cfg,
		Axis:      geom.P3(cx, cy, 0),
		Plate2Bot: 0,
		Plate2Top: plateT,
		Plate1Bot: plateT + cfg.Gap,
		Plate1Top: plateT + cfg.Gap + plateT,
	}
	si.ProjTip = si.Plate1Top + cfg.Clearance

	build := func(s BoxSpec) (*mesh.Mesh, error) {
		if cfg.Tets {
			return StructuredTetBox(s)
		}
		return StructuredBox(s)
	}

	plate1, err := build(BoxSpec{
		Nx: nx, Ny: ny, Nz: nz,
		Origin: geom.P3(0, 0, si.Plate1Bot),
		H:      geom.P3(h, h, h),
	})
	if err != nil {
		return nil, nil, err
	}
	plate2, err := build(BoxSpec{
		Nx: nx, Ny: ny, Nz: nz,
		Origin: geom.P3(0, 0, si.Plate2Bot),
		H:      geom.P3(h, h, h),
	})
	if err != nil {
		return nil, nil, err
	}
	projW := float64(cfg.ProjN) * cfg.Cell
	proj, err := build(BoxSpec{
		Nx: pn, Ny: pn, Nz: pl,
		Origin: geom.P3(cx-projW/2, cy-projW/2, si.ProjTip),
		H:      geom.P3(h, h, h),
	})
	if err != nil {
		return nil, nil, err
	}

	m := &mesh.Mesh{Dim: 3, EPtr: []int32{0}}
	bodies := [3]*mesh.Mesh{Plate1: plate1, Plate2: plate2, Projectile: proj}
	for b := Plate1; b <= Projectile; b++ {
		nOff, eOff, err := Append(m, bodies[b])
		if err != nil {
			return nil, nil, err
		}
		si.Nodes[b] = Range{Lo: nOff, Hi: nOff + int32(bodies[b].NumNodes())}
		si.Elems[b] = Range{Lo: eOff, Hi: eOff + int32(bodies[b].NumElems())}
	}

	DesignateContact(m, si)
	if err := m.Validate(); err != nil {
		return nil, nil, fmt.Errorf("meshgen: generated scene invalid: %w", err)
	}
	return m, si, nil
}

// DesignateContact recomputes the mesh's contact surface: the entire
// boundary of the projectile plus every plate boundary facet whose
// centroid lies within cfg.ContactRadius of the impact axis (in xy),
// plus — when cfg.FullFaces is set — every horizontal plate facet.
func DesignateContact(m *mesh.Mesh, si *SceneInfo) {
	DesignateContactBy(m, si.Axis, si.Cfg.ContactRadius, si.Cfg.FullFaces, func(e int32) bool {
		b, ok := si.BodyOfElem(e)
		return ok && b == Projectile
	})
}

// DesignateContactBy is the body-mapping-agnostic form of
// DesignateContact, used by the simulator after element erosion has
// invalidated the original SceneInfo element ranges. isProjectile
// reports whether an element id belongs to the projectile.
func DesignateContactBy(m *mesh.Mesh, axis geom.Point, radius float64, fullFaces bool, isProjectile func(e int32) bool) {
	var surf []mesh.SurfaceElem
	for _, f := range m.BoundaryFacets() {
		if isProjectile(f.Elem) {
			surf = append(surf, f)
			continue
		}
		if fullFaces && horizontalFacet(m, f) {
			surf = append(surf, f)
			continue
		}
		// Plate facet: keep if its centroid is inside the contact patch.
		var cxx, cyy float64
		for _, n := range f.Nodes {
			cxx += m.Coords[n][0]
			cyy += m.Coords[n][1]
		}
		k := float64(len(f.Nodes))
		cxx /= k
		cyy /= k
		dx, dy := cxx-axis[0], cyy-axis[1]
		if math.Sqrt(dx*dx+dy*dy) <= radius {
			surf = append(surf, f)
		}
	}
	m.Surface = surf
}

// horizontalFacet reports whether a 3D facet's normal is predominantly
// vertical (the facet lies in a plate's top or bottom face). 2D meshes
// always report false.
func horizontalFacet(m *mesh.Mesh, f mesh.SurfaceElem) bool {
	if m.Dim != 3 || len(f.Nodes) < 3 {
		return false
	}
	a := m.Coords[f.Nodes[0]]
	b := m.Coords[f.Nodes[1]]
	c := m.Coords[f.Nodes[2]]
	u := b.Sub(a)
	v := c.Sub(a)
	nx := u[1]*v[2] - u[2]*v[1]
	ny := u[2]*v[0] - u[0]*v[2]
	nz := u[0]*v[1] - u[1]*v[0]
	n2 := nx*nx + ny*ny + nz*nz
	if n2 == 0 {
		return false
	}
	return nz*nz > 0.8*n2
}

// HorizontalFacetForTest exposes the horizontal-facet classifier for
// tests.
func HorizontalFacetForTest(m *mesh.Mesh, f mesh.SurfaceElem) bool {
	return horizontalFacet(m, f)
}
