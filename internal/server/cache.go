package server

// resultCache is a bounded LRU over finished job results, keyed by the
// spec hash. It makes repeat submissions of an already-answered spec
// O(1): Submit consults it before the queue, so a cache hit never
// occupies a queue slot or a worker.

import (
	"container/list"
	"sync"
)

type cacheEntry struct {
	key    string
	result []byte
}

type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element, max),
	}
}

// get returns the cached result bytes for key and marks it most
// recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// put stores a result, evicting the least recently used entry past
// capacity. Storing under an existing key refreshes its recency.
func (c *resultCache) put(key string, result []byte) {
	if c == nil || c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).result = result
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, result: result})
	for c.order.Len() > c.max {
		last := c.order.Back()
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.order.Remove(last)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
