package server

// traceRing retains the last N completed jobs' tracers so GET
// /api/v1/jobs/{id}/trace can stream a job's Chrome trace-event JSON
// after the fact. Eviction is strict insertion order (completion
// order): the operator debugging a latency spike wants the most
// recent jobs, and a bounded ring caps memory no matter how long the
// daemon runs.

import (
	"sync"

	"repro/internal/obs"
)

type traceRing struct {
	mu   sync.Mutex
	cap  int
	byID map[string]*obs.Tracer
	ids  []string // insertion order; evict from the front
}

func newTraceRing(cap int) *traceRing {
	return &traceRing{cap: cap, byID: make(map[string]*obs.Tracer, cap)}
}

// put retains id's tracer, evicting the oldest entry when full.
// Re-putting an existing id replaces its tracer in place.
func (tr *traceRing) put(id string, t *obs.Tracer) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.byID[id]; ok {
		tr.byID[id] = t
		return
	}
	if len(tr.ids) >= tr.cap {
		evict := tr.ids[0]
		tr.ids = tr.ids[1:]
		delete(tr.byID, evict)
	}
	tr.ids = append(tr.ids, id)
	tr.byID[id] = t
}

// get returns id's retained tracer. A nil ring never holds anything.
func (tr *traceRing) get(id string) (*obs.Tracer, bool) {
	if tr == nil {
		return nil, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.byID[id]
	return t, ok
}
