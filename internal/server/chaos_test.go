package server

// The daemon's headline robustness proofs, run under -race by the
// chaos gate:
//
//   - TestServerChaosUnderLoad: a synthetic client fleet drives
//     hundreds of jobs through a deliberately undersized server over
//     real HTTP while a deterministic fault.Plan injects chaos on
//     both sides — slow clients, mid-job cancellations, duplicate
//     (idempotent) retries from the client plan; panics and stalls
//     inside jobs from the server plan. The queue must shed with 429
//     when full, every client must still reach a terminal answer, the
//     accounting ledger must balance exactly against the per-job
//     statuses, and after drain no goroutine may be left behind.
//     While the storm runs, a scraper hammers the observability
//     surfaces — /metrics?format=prom must stay valid exposition,
//     /debug/events must stay well-formed JSON, and a finished job's
//     trace must validate — and afterwards the flight recorder must
//     hold every shed and panic the storm produced.
//
//   - TestServerDrainRestartResumeByteIdentical: kill a server mid-
//     sweep (graceful drain), restart on the same spool, resubmit —
//     the resumed result must be byte-identical to an uninterrupted
//     run of the same spec.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// chaosJobs is the fleet's total job count; chaosClients submit them
// concurrently. Kept deliberately above the server's capacity
// (workers + queue) so backpressure must engage.
const (
	chaosJobs    = 240
	chaosClients = 12
)

// chaosClientAction decides a client's behavior for one job from the
// shared deterministic plan: the (client, job) pair is hashed exactly
// like a message identity, so every run of the test makes identical
// slow/cancel/duplicate choices.
func chaosClientAction(plan *fault.Plan, client, job int) fault.Action {
	return plan.MessageAction(client, 0, 0, 0, job)
}

func TestServerChaosUnderLoad(t *testing.T) {
	// Server-side chaos: three jobs panic mid-execution, and several
	// stall long enough to pin a worker. Paired stalls (2+3, 120+121)
	// hold BOTH workers at once while the client burst is in flight,
	// which forces the queue to overflow even on a single-CPU box
	// where submission and execution otherwise self-throttle to the
	// same rate. Job sequence numbers are assigned in acceptance
	// order, so which spec hits which fault varies run to run — the
	// ledger must balance regardless, which is the point.
	serverPlan := &fault.Plan{
		Seed:      42,
		PanicRank: map[int]int{7: jobPhase, 63: jobPhase, 140: jobPhase},
		StallRank: map[int]fault.Stall{
			2:   {Phase: jobPhase, For: 400 * time.Millisecond},
			3:   {Phase: jobPhase, For: 400 * time.Millisecond},
			30:  {Phase: jobPhase, For: 100 * time.Millisecond},
			120: {Phase: jobPhase, For: 300 * time.Millisecond},
			121: {Phase: jobPhase, For: 300 * time.Millisecond},
		},
	}
	// Client-side chaos, decided per (client, job): Drop = submit then
	// immediately cancel; Delay = slow client (sleep before submit);
	// Duplicate = idempotent double-submit.
	clientPlan := &fault.Plan{Seed: 1337, DropProb: 0.15, DelayProb: 0.2, DupProb: 0.15}

	baseGoroutines := runtime.NumGoroutine()
	s := New(Options{
		Workers:    2,
		QueueDepth: 2, // capacity 4 against 12 clients: sheds must happen
		Fault:      serverPlan,
		// Generous per-job budget: chaos jobs must fail from injected
		// faults, not from deadlines on a loaded CI box.
		DefaultTimeout: time.Minute,
		// Observability under fire: structured logs stay on (discarded,
		// but the encode path runs under -race), every executed job's
		// trace is retained (240 jobs fit the ring, no eviction), and
		// the flight ring is sized so no shed/panic event can rotate
		// out before the post-drain audit.
		Log:          obs.NewLogger(io.Discard, nil),
		TraceRing:    chaosJobs + 16,
		FlightEvents: 1 << 15,
	})
	ts := httptest.NewServer(s.Handler())

	// Scraper: poll the three observability surfaces for the storm's
	// whole duration. Every payload must be well-formed while both
	// workers are stalling, panicking, and shedding under -race.
	stopScrape := make(chan struct{})
	var scrapeWg sync.WaitGroup
	var promScrapes, traceScrapes int64 // written by scraper, read after join
	scrapeWg.Add(1)
	go func() {
		defer scrapeWg.Done()
		client := ts.Client()
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			// Prometheus exposition must parse and keep its histogram
			// invariants mid-storm.
			if body, err := chaosGet(client, ts.URL+"/metrics?format=prom"); err != nil {
				t.Errorf("mid-storm prom scrape: %v", err)
			} else if _, err := obs.ValidateProm(bytes.NewReader(body)); err != nil {
				t.Errorf("mid-storm prom scrape invalid: %v", err)
			} else {
				promScrapes++
			}
			// The flight-recorder dump must stay well-formed JSON.
			if body, err := chaosGet(client, ts.URL+"/debug/events"); err != nil {
				t.Errorf("mid-storm /debug/events: %v", err)
			} else {
				var dump struct {
					Events []obs.FlightEvent `json:"events"`
				}
				if err := json.Unmarshal(body, &dump); err != nil {
					t.Errorf("mid-storm /debug/events invalid: %v", err)
				}
			}
			// A finished (non-cached) job's retained trace must pass
			// trace validation. Cache hits never executed, so they have
			// no trace; skip them.
			if body, err := chaosGet(client, ts.URL+"/api/v1/jobs"); err == nil {
				var views []JobView
				if json.Unmarshal(body, &views) == nil {
					for i := len(views) - 1; i >= 0; i-- {
						if views[i].Status != StatusDone || views[i].Cached {
							continue
						}
						tb, err := chaosGet(client, ts.URL+"/api/v1/jobs/"+views[i].ID+"/trace")
						if err != nil {
							t.Errorf("mid-storm trace %s: %v", views[i].ID, err)
						} else if _, err := obs.ValidateTrace(bytes.NewReader(tb)); err != nil {
							t.Errorf("mid-storm trace %s invalid: %v", views[i].ID, err)
						} else {
							traceScrapes++
						}
						break
					}
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	type clientLedger struct {
		submitted, sheds, canceled int64
		statuses                   map[Status]int64
	}
	ledgers := make([]clientLedger, chaosClients)
	var wg sync.WaitGroup
	for c := 0; c < chaosClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			led := &ledgers[c]
			led.statuses = make(map[Status]int64)
			client := ts.Client()
			// Phase 1: fire the whole batch without waiting for
			// completions — the fleet keeps far more work in flight
			// than the server's capacity, so the queue must overflow
			// and shed; the retry loop in chaosSubmit rides out the
			// 429s. Cancellations land while their jobs are queued or
			// running, not after.
			var ids []string
			for i := c; i < chaosJobs; i += chaosClients {
				action := chaosClientAction(clientPlan, c, i)
				if action == fault.Delay {
					time.Sleep(2 * time.Millisecond) // slow client
				}
				// A fifth of the specs repeat (seed collision), so the
				// result cache sees traffic; a handful are tiny sweeps.
				spec := graphJob(int64(i % (chaosJobs * 4 / 5)))
				if i%80 == 40 {
					spec = JobSpec{Kind: KindSweep, Sweep: &SweepSpec{
						Snapshots: 1, Ks: []int{2}, Seed: 9,
					}}
				}
				idemKey := ""
				if action == fault.Duplicate {
					idemKey = fmt.Sprintf("chaos-%d", i)
				}

				view, sheds, err := chaosSubmit(client, ts.URL, spec, idemKey)
				led.submitted++
				led.sheds += sheds
				if err != nil {
					t.Errorf("client %d job %d: %v", c, i, err)
					continue
				}
				ids = append(ids, view.ID)
				if action == fault.Duplicate {
					dup, _, err := chaosSubmit(client, ts.URL, spec, idemKey)
					if err != nil {
						t.Errorf("client %d job %d duplicate: %v", c, i, err)
					} else if dup.ID != view.ID {
						t.Errorf("client %d job %d: duplicate got %s, original %s", c, i, dup.ID, view.ID)
					}
				}
				if action == fault.Drop {
					led.canceled++
					req, _ := http.NewRequest("DELETE", ts.URL+"/api/v1/jobs/"+view.ID, nil)
					resp, err := client.Do(req)
					if err != nil {
						t.Errorf("client %d job %d cancel: %v", c, i, err)
					} else {
						resp.Body.Close()
					}
				}
			}
			// Phase 2: collect every terminal status.
			for _, id := range ids {
				led.statuses[chaosAwait(t, client, ts.URL, id)]++
			}
		}(c)
	}
	wg.Wait()
	close(stopScrape)
	scrapeWg.Wait()
	if promScrapes == 0 {
		t.Error("prom scraper never completed a valid scrape during the storm")
	}
	if traceScrapes == 0 {
		t.Error("no completed job's trace was retrieved and validated during the storm")
	}

	// Quiesce: drain must finish within grace and reject new intake.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}
	ts.Close()

	// Deterministic accounting, part 1: the server's ledger balances
	// exactly.
	a := s.Accounting()
	if a.Submitted != a.Accepted+a.RejectedFull+a.RejectedDraining+a.RejectedInvalid+a.Deduped {
		t.Errorf("submit ledger does not balance: %+v", a)
	}
	if a.Accepted != a.Completed+a.Failed+a.Canceled+a.Drained+a.DrainedQueued {
		t.Errorf("outcome ledger does not balance: %+v", a)
	}

	// Part 2: the ledger equals the per-job statuses recomputed from
	// the job list — the counters cannot drift from the truth.
	recount := Accounting{}
	for _, v := range s.Jobs() {
		switch v.Status {
		case StatusDone:
			recount.Completed++
		case StatusFailed:
			recount.Failed++
		case StatusCanceled:
			recount.Canceled++
		case StatusDrained:
			recount.Drained++
		case StatusDrainedQueued:
			recount.DrainedQueued++
		default:
			t.Errorf("job %s not terminal after drain: %s", v.ID, v.Status)
		}
	}
	if recount.Completed != a.Completed || recount.Failed != a.Failed ||
		recount.Canceled != a.Canceled || recount.Drained != a.Drained ||
		recount.DrainedQueued != a.DrainedQueued {
		t.Errorf("ledger %+v disagrees with job statuses %+v", a, recount)
	}

	// Part 3: the client fleet's view agrees with the server's.
	var clientSubmits, clientSheds, clientCancels int64
	clientStatuses := make(map[Status]int64)
	for i := range ledgers {
		clientSubmits += ledgers[i].submitted
		clientSheds += ledgers[i].sheds
		clientCancels += ledgers[i].canceled
		for st, n := range ledgers[i].statuses {
			clientStatuses[st] += n
		}
	}
	if clientSubmits != chaosJobs {
		t.Errorf("clients completed %d protocol rounds, want %d", clientSubmits, chaosJobs)
	}
	if clientSheds != a.RejectedFull {
		t.Errorf("clients saw %d sheds (429), server counted %d", clientSheds, a.RejectedFull)
	}
	if clientSheds == 0 {
		t.Errorf("no 429 sheds: %d clients against queue depth 4 should overload; backpressure never engaged", chaosClients)
	}
	if got := clientStatuses[StatusFailed]; got != a.Failed {
		t.Errorf("clients observed %d failed jobs, ledger says %d", got, a.Failed)
	}
	if a.Failed > int64(len(serverPlan.PanicRank)) {
		t.Errorf("%d failures for %d injected panics: something failed on its own", a.Failed, len(serverPlan.PanicRank))
	}
	if a.Deduped == 0 && clientStatuses[StatusDone] > 0 {
		t.Errorf("duplicate submissions never deduped (plan schedules ~%d)", int(0.15*chaosJobs))
	}

	// Part 4: the flight recorder saw everything. One "shed" event per
	// 429, one "panic" event per failed job — the ring is sized so
	// nothing rotated out — plus the drain transition markers.
	flightKinds := make(map[string]int64)
	for _, ev := range s.Flight().Events() {
		flightKinds[ev.Kind]++
	}
	if flightKinds["shed"] != a.RejectedFull {
		t.Errorf("flight recorder holds %d shed events, ledger counted %d 429s",
			flightKinds["shed"], a.RejectedFull)
	}
	if flightKinds["panic"] != a.Failed {
		t.Errorf("flight recorder holds %d panic events, ledger counted %d failures",
			flightKinds["panic"], a.Failed)
	}
	if flightKinds["drain_begin"] != 1 || flightKinds["drain_end"] != 1 {
		t.Errorf("flight recorder drain markers: begin=%d end=%d, want 1/1",
			flightKinds["drain_begin"], flightKinds["drain_end"])
	}

	// No goroutine may outlive the drain (workers, handlers, waiters).
	waitGoroutineBaseline(t, baseGoroutines)
}

// chaosGet fetches a URL and returns the body, insisting on HTTP 200.
func chaosGet(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d: %.200s", url, resp.StatusCode, body)
	}
	return body, nil
}

// chaosSubmit submits with bounded 429 retries, counting the sheds.
func chaosSubmit(client *http.Client, base string, spec JobSpec, idemKey string) (JobView, int64, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobView{}, 0, err
	}
	var sheds int64
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest("POST", base+"/api/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return JobView{}, sheds, err
		}
		req.Header.Set("Content-Type", "application/json")
		if idemKey != "" {
			req.Header.Set("Idempotency-Key", idemKey)
		}
		resp, err := client.Do(req)
		if err != nil {
			return JobView{}, sheds, err
		}
		var view JobView
		decodeErr := json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			sheds++
			if attempt > 10_000 {
				return JobView{}, sheds, fmt.Errorf("still shed after %d attempts", attempt)
			}
			time.Sleep(2 * time.Millisecond)
		case resp.StatusCode != http.StatusAccepted:
			return JobView{}, sheds, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		case decodeErr != nil:
			return JobView{}, sheds, decodeErr
		default:
			return view, sheds, nil
		}
	}
}

// chaosAwait blocks until the job is terminal and returns its status.
func chaosAwait(t *testing.T, client *http.Client, base, id string) Status {
	t.Helper()
	resp, err := client.Get(base + "/api/v1/jobs/" + id + "?wait=1")
	if err != nil {
		t.Errorf("wait %s: %v", id, err)
		return ""
	}
	defer resp.Body.Close()
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Errorf("wait %s: decode: %v", id, err)
		return ""
	}
	if !view.Status.terminal() {
		t.Errorf("wait %s returned non-terminal %s", id, view.Status)
	}
	return view.Status
}

// waitGoroutineBaseline polls the goroutine count back down to the
// pre-test baseline, dumping stacks on failure.
func waitGoroutineBaseline(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak after drain: %d live, baseline %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerDrainRestartResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep; skipped with -short")
	}
	spool := t.TempDir()
	sweep := JobSpec{Kind: KindSweep, Sweep: &SweepSpec{
		Snapshots: 6, Ks: []int{2, 3, 4}, Seed: 11,
	}}

	// Reference: the uninterrupted run, on a server with its own spool.
	ref := New(Options{Workers: 1, SpoolDir: t.TempDir()})
	refView := wait(t, ref, mustSubmit(t, ref, sweep).ID)
	drainServer(t, ref)
	if refView.Status != StatusDone {
		t.Fatalf("reference sweep: %s (%s)", refView.Status, refView.Error)
	}

	// Interrupted run: wait for the first checkpoint flush, then pull
	// the plug mid-sweep.
	first := New(Options{Workers: 1, SpoolDir: spool})
	view := mustSubmit(t, first, sweep)
	ckptPath := filepath.Join(spool, view.Hash+".ckpt")
	waitForFile(t, first, view.ID, ckptPath)
	drainServer(t, first)
	view, err := first.Job(view.ID)
	if err != nil {
		t.Fatalf("job after drain: %v", err)
	}
	if view.Status != StatusDrained {
		t.Fatalf("interrupted sweep: %s (%s), want drained", view.Status, view.Error)
	}
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("drain did not leave the checkpoint behind: %v", err)
	}

	// Restart: a fresh server on the same spool resumes the resubmitted
	// spec from the checkpoint instead of starting over.
	second := New(Options{Workers: 1, SpoolDir: spool})
	resumed := wait(t, second, mustSubmit(t, second, sweep).ID)
	drainServer(t, second)
	if resumed.Status != StatusDone {
		t.Fatalf("resumed sweep: %s (%s)", resumed.Status, resumed.Error)
	}
	if !resumed.Resumed {
		t.Fatalf("restarted sweep did not resume from the spool checkpoint")
	}

	// The proof: kill + restart + resubmit is byte-identical to never
	// having been interrupted.
	if !bytes.Equal(resumed.Result, refView.Result) {
		t.Fatalf("resumed result differs from uninterrupted run:\nresumed: %.200s…\nreference: %.200s…",
			resumed.Result, refView.Result)
	}
	// And the spent checkpoint is gone.
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Fatalf("completed sweep left its checkpoint in the spool (stat err: %v)", err)
	}
}

// drainServer drains with a generous grace and fails the test on
// error.
func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// waitForFile polls until path exists (the first checkpoint flush),
// failing if the job reaches a terminal state first — the workload
// must be big enough that the drain lands mid-sweep.
func waitForFile(t *testing.T, s *Server, jobID, path string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if view, err := s.Job(jobID); err == nil && view.Status.terminal() {
			t.Fatalf("sweep reached %s before its first checkpoint flush; grow the workload", view.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint at %s after 60s", path)
		}
		time.Sleep(time.Millisecond)
	}
}
