package server

// Serving-observability tests: the Prometheus exposition endpoint,
// per-job trace retention and retrieval, the flight recorder, the
// /healthz readiness body, and the structured lifecycle/access logs
// (assertable because the logger takes an injected clock).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// getBody GETs a path and returns the status code and raw body.
func getBody(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestHTTPMetricsProm drives jobs through the server and checks that
// GET /metrics?format=prom serves valid exposition carrying the
// serving histogram, the rolling-window gauges, the SLO burn
// counters, and the runtime samples — the acceptance gate promcheck
// applies to a loaded partsrv.
func TestHTTPMetricsProm(t *testing.T) {
	col := obs.New()
	_, ts := newTestAPI(t, Options{Workers: 2, Obs: col, SLOTarget: time.Nanosecond})

	for seed := int64(0); seed < 3; seed++ {
		code, view, _ := postJob(t, ts, graphJob(seed), "")
		if code != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d", code)
		}
		var done JobView
		if code := getJSON(t, ts, "/api/v1/jobs/"+view.ID+"?wait=1", &done); code != http.StatusOK || done.Status != StatusDone {
			t.Fatalf("wait: HTTP %d status %s (%s)", code, done.Status, done.Error)
		}
	}

	code, body := getBody(t, ts, "/metrics?format=prom")
	if code != http.StatusOK {
		t.Fatalf("prom scrape: HTTP %d", code)
	}
	sum, err := obs.ValidateProm(strings.NewReader(body))
	if err != nil {
		t.Fatalf("scrape fails promcheck: %v\n%s", err, body)
	}
	for _, want := range []string{
		"serve_job_wall",     // the latency histogram
		"serve_window_count", // rolling-window gauges
		"serve_window_p99_ns",
		"serve_slo_objective_ns",
		"serve_slo_observed_total", // burn counters
		"serve_slo_violations_total",
		"go_sched_goroutines_goroutines", // runtime/metrics samples
	} {
		if sum.Names[want] == 0 {
			t.Errorf("exposition missing family %s", want)
		}
	}
	if sum.Histograms == 0 {
		t.Fatalf("no histogram families in scrape:\n%s", body)
	}

	// The JSON format must carry the same window/SLO series.
	var rep obs.Report
	if code := getJSON(t, ts, "/metrics", &rep); code != http.StatusOK {
		t.Fatalf("json scrape: HTTP %d", code)
	}
	gauges := map[string]int64{}
	for _, g := range rep.Gauges {
		gauges[g.Name] = g.Value
	}
	if _, ok := gauges["serve_window_count"]; !ok {
		t.Fatalf("JSON report missing serve_window_count gauge: %+v", rep.Gauges)
	}
	if gauges["serve_window_count"] != 3 {
		t.Fatalf("window count = %d, want 3", gauges["serve_window_count"])
	}
	counters := map[string]int64{}
	for _, c := range rep.Counters {
		counters[c.Name] = c.Value
	}
	// A 1ns objective makes every completed job a violation.
	if counters["serve_slo_violations"] != 3 || counters["serve_slo_observed"] != 3 {
		t.Fatalf("SLO counters = %+v, want 3/3", counters)
	}
}

// TestHTTPJobTraceGraph checks trace retention end to end for a graph
// job: 409 before terminal is unreachable here (job completes), the
// stream passes the tracecheck validator, and misses 404.
func TestHTTPJobTraceGraph(t *testing.T) {
	_, ts := newTestAPI(t, Options{Workers: 1, TraceRing: 4})

	code, view, _ := postJob(t, ts, graphJob(3), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	var done JobView
	if code := getJSON(t, ts, "/api/v1/jobs/"+view.ID+"?wait=1", &done); code != http.StatusOK || done.Status != StatusDone {
		t.Fatalf("wait: HTTP %d status %s", code, done.Status)
	}

	code, body := getBody(t, ts, "/api/v1/jobs/"+view.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: HTTP %d (%s)", code, body)
	}
	sum, err := obs.ValidateTrace(strings.NewReader(body))
	if err != nil {
		t.Fatalf("trace fails tracecheck: %v", err)
	}
	if sum.Names["job"] == 0 {
		t.Fatalf("trace has no root job span: %+v", sum.Names)
	}

	if code, _ := getBody(t, ts, "/api/v1/jobs/job-999999/trace"); code != http.StatusNotFound {
		t.Fatalf("unknown job trace: HTTP %d, want 404", code)
	}
}

// TestHTTPJobTraceSweep is the acceptance path: a completed sweep
// job's trace must validate and contain the harness snapshot spans.
func TestHTTPJobTraceSweep(t *testing.T) {
	_, ts := newTestAPI(t, Options{Workers: 1, TraceRing: 4})

	spec := JobSpec{Kind: KindSweep, Sweep: &SweepSpec{Snapshots: 1, Ks: []int{2}, Seed: 9}}
	code, view, _ := postJob(t, ts, spec, "")
	if code != http.StatusAccepted {
		t.Fatalf("submit sweep: HTTP %d", code)
	}
	var done JobView
	if code := getJSON(t, ts, "/api/v1/jobs/"+view.ID+"?wait=1", &done); code != http.StatusOK || done.Status != StatusDone {
		t.Fatalf("wait: HTTP %d status %s (%s)", code, done.Status, done.Error)
	}

	code, body := getBody(t, ts, "/api/v1/jobs/"+view.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("sweep trace: HTTP %d", code)
	}
	sum, err := obs.ValidateTrace(strings.NewReader(body))
	if err != nil {
		t.Fatalf("sweep trace fails tracecheck: %v", err)
	}
	for _, want := range []string{"job", "snapshot"} {
		if sum.Names[want] == 0 {
			t.Errorf("sweep trace missing %q spans (have %+v)", want, sum.Names)
		}
	}
}

// TestHTTPJobTraceDisabled: without a trace ring the endpoint
// reports the miss rather than inventing an empty trace.
func TestHTTPJobTraceDisabled(t *testing.T) {
	s, ts := newTestAPI(t, Options{Workers: 1})
	view := mustSubmit(t, s, graphJob(5))
	wait(t, s, view.ID)
	code, body := getBody(t, ts, "/api/v1/jobs/"+view.ID+"/trace")
	if code != http.StatusNotFound || !strings.Contains(body, "no retained trace") {
		t.Fatalf("disabled ring trace: HTTP %d (%s), want 404", code, body)
	}
}

// TestTraceRingEviction: the ring keeps only the newest N traces.
func TestTraceRingEviction(t *testing.T) {
	s, ts := newTestAPI(t, Options{Workers: 1, TraceRing: 2})
	ids := make([]string, 3)
	for i := range ids {
		view := mustSubmit(t, s, graphJob(int64(100+i)))
		wait(t, s, view.ID)
		ids[i] = view.ID
	}
	if code, _ := getBody(t, ts, "/api/v1/jobs/"+ids[0]+"/trace"); code != http.StatusNotFound {
		t.Fatalf("oldest trace survived a full ring: HTTP %d, want 404", code)
	}
	for _, id := range ids[1:] {
		if code, _ := getBody(t, ts, "/api/v1/jobs/"+id+"/trace"); code != http.StatusOK {
			t.Fatalf("recent trace %s: HTTP %d, want 200", id, code)
		}
	}
}

// TestHTTPDebugEventsFlight drives a shed, a panic, and a drain
// through the server and checks the flight recorder saw all of them —
// on /debug/events and in the panic-triggered stderr dump.
func TestHTTPDebugEventsFlight(t *testing.T) {
	var dump bytes.Buffer
	plan := &fault.Plan{
		Seed:      1,
		StallRank: map[int]fault.Stall{0: {Phase: jobPhase, For: 300 * time.Millisecond}},
		PanicRank: map[int]int{1: jobPhase},
	}
	s, ts := newTestAPI(t, Options{
		Workers: 1, QueueDepth: 1, Fault: plan, FlightDump: &dump,
	})

	// Job 0 stalls in the single worker; job 1 (will panic when run)
	// fills the queue; job 2 sheds.
	first := mustSubmit(t, s, graphJob(0))
	waitForStatus(t, s, first.ID, StatusRunning)
	second := mustSubmit(t, s, graphJob(1))
	if _, err := s.Submit(graphJob(2), ""); err != ErrQueueFull {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	wait(t, s, first.ID)
	if v := wait(t, s, second.ID); v.Status != StatusFailed {
		t.Fatalf("panicking job finished %s", v.Status)
	}

	code, body := getBody(t, ts, "/debug/events")
	if code != http.StatusOK {
		t.Fatalf("/debug/events: HTTP %d", code)
	}
	var got struct {
		Cap    int               `json:"cap"`
		Total  int64             `json:"total"`
		Events []obs.FlightEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/debug/events not JSON: %v\n%s", err, body)
	}
	kinds := map[string]int{}
	for _, ev := range got.Events {
		kinds[ev.Kind]++
	}
	if kinds["shed"] != 1 || kinds["panic"] != 1 {
		t.Fatalf("flight kinds = %v, want one shed and one panic", kinds)
	}
	for _, ev := range got.Events {
		if ev.Kind == "panic" && ev.Job != second.ID {
			t.Fatalf("panic event names job %q, want %s", ev.Job, second.ID)
		}
	}
	if !strings.Contains(dump.String(), "panic") {
		t.Fatalf("panic did not dump the flight recorder:\n%s", dump.String())
	}

	// Drain transitions are recorded too.
	drainServer(t, s)
	evs := s.Flight().Events()
	kinds = map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	if kinds["drain_begin"] == 0 || kinds["drain_end"] == 0 {
		t.Fatalf("drain not recorded: %v", kinds)
	}
}

// TestHTTPHealthzBody: the readiness body carries queue/in-flight and
// window detail while the 200/503 contract stays intact.
func TestHTTPHealthzBody(t *testing.T) {
	s, ts := newTestAPI(t, Options{Workers: 1, SLOTarget: time.Nanosecond})
	view := mustSubmit(t, s, graphJob(77))
	wait(t, s, view.ID)

	var h Health
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if h.Status != "ok" || h.QueueDepth != 0 || h.Inflight != 0 {
		t.Fatalf("healthz body = %+v", h)
	}
	if h.WindowCount != 1 || h.WindowP99NS <= 0 || h.SLOViolations != 1 {
		t.Fatalf("healthz window detail = %+v, want 1 observation and 1 violation", h)
	}

	drainServer(t, s)
	var hd Health
	if code := getJSON(t, ts, "/healthz", &hd); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: HTTP %d, want 503", code)
	}
	if hd.Status != "draining" {
		t.Fatalf("healthz after drain = %+v", hd)
	}
}

// TestServerLifecycleLogs: with an injected clock the structured logs
// are assertable — lifecycle events carry job id, hash, and cause;
// access logs carry a request id that also reaches the client as
// X-Request-Id.
func TestServerLifecycleLogs(t *testing.T) {
	var buf bytes.Buffer
	clk := func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	s := newTestServer(t, Options{Workers: 1, Log: obs.NewLogger(&buf, clk)})

	view := mustSubmit(t, s, graphJob(8))
	done := wait(t, s, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("job finished %s", done.Status)
	}

	type rec struct {
		Time, Msg, Job, Hash, Kind string
	}
	var events []rec
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r struct {
			Time string `json:"time"`
			Msg  string `json:"msg"`
			Job  string `json:"job"`
			Hash string `json:"hash"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("log line not JSON: %v\n%s", err, line)
		}
		events = append(events, rec(r))
	}
	wantOrder := []string{"submitted", "started", "done"}
	if len(events) != len(wantOrder) {
		t.Fatalf("got %d log events, want %d:\n%s", len(events), len(wantOrder), buf.String())
	}
	for i, ev := range events {
		if ev.Msg != wantOrder[i] {
			t.Fatalf("event %d = %q, want %q", i, ev.Msg, wantOrder[i])
		}
		if ev.Job != view.ID || ev.Hash == "" {
			t.Fatalf("event %q missing job correlation: %+v", ev.Msg, ev)
		}
		if ev.Time != "2026-08-08T12:00:00Z" {
			t.Fatalf("injected clock not honored: %+v", ev)
		}
	}

	// Access log: synchronous through the handler, with the request id
	// mirrored in the response header.
	buf.Reset()
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz via handler: %d", rr.Code)
	}
	rid := rr.Header().Get("X-Request-Id")
	if !strings.HasPrefix(rid, "req-") {
		t.Fatalf("X-Request-Id = %q", rid)
	}
	var access struct {
		Msg    string `json:"msg"`
		Req    string `json:"req"`
		Path   string `json:"path"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal(buf.Bytes(), &access); err != nil {
		t.Fatalf("access log not JSON: %v\n%s", err, buf.String())
	}
	if access.Msg != "http" || access.Req != rid || access.Path != "/healthz" || access.Status != 200 {
		t.Fatalf("access log = %+v (rid %s)", access, rid)
	}
}

// TestServerLogsShedDedupCacheHit covers the admission-path events.
func TestServerLogsShedDedupCacheHit(t *testing.T) {
	var buf bytes.Buffer
	plan := &fault.Plan{
		Seed:      1,
		StallRank: map[int]fault.Stall{0: {Phase: jobPhase, For: 250 * time.Millisecond}},
	}
	s := newTestServer(t, Options{
		Workers: 1, QueueDepth: 1, Fault: plan,
		Log: obs.NewLogger(&buf, func() time.Time { return time.Unix(0, 0).UTC() }),
	})

	first := mustSubmit(t, s, graphJob(0))
	waitForStatus(t, s, first.ID, StatusRunning)
	if _, err := s.Submit(graphJob(1), "key-a"); err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if _, err := s.Submit(graphJob(2), ""); err != ErrQueueFull {
		t.Fatalf("shed submit: %v, want ErrQueueFull", err)
	}
	if _, err := s.Submit(graphJob(1), "key-a"); err != nil { // dedup
		t.Fatalf("dedup submit: %v", err)
	}
	wait(t, s, first.ID)
	if _, err := s.Submit(graphJob(0), ""); err != nil { // cache hit
		t.Fatalf("cached submit: %v", err)
	}

	logs := buf.String()
	for _, want := range []string{`"msg":"shed"`, `"msg":"deduped"`, `"msg":"cache_hit"`, `"key":"key-a"`} {
		if !strings.Contains(logs, want) {
			t.Errorf("logs missing %s:\n%s", want, logs)
		}
	}
}
