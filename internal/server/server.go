// Package server is the partitioning-as-a-service core: a long-lived
// job engine that accepts partition-a-graph and run-a-sweep jobs,
// executes them on a bounded worker pool behind a bounded queue, and
// survives the failure modes a daemon meets in production —
//
//   - backpressure: a full queue sheds load with ErrQueueFull (HTTP
//     429 + Retry-After) instead of buffering without bound;
//   - deadlines: every job runs under a context deadline that
//     actually stops the multilevel recursion (partition.KWayCtx) and
//     the sweep loop, not just abandons the goroutine;
//   - panic isolation: a panicking job becomes that job's failure,
//     never the daemon's;
//   - idempotency: submissions carrying an idempotency key are
//     deduplicated to the first job, so client retries are safe;
//   - result caching: results are cached by spec hash in a bounded
//     LRU, so repeat queries are O(1) and skip the queue entirely;
//   - graceful drain: Drain stops intake, rejects the still-queued
//     jobs, and cancels in-flight sweeps at a snapshot boundary with
//     their progress durable in the checkpoint spool — a restarted
//     server resumes a resubmitted sweep to byte-identical results.
//
// The HTTP surface lives in http.go; cmd/partsrv is the daemon.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Sentinel errors of the submit path; the HTTP layer maps them to
// status codes (429, 503, 404, 409). Validation failures are returned
// as plain errors and map to 400.
var (
	// ErrQueueFull: the bounded job queue is at capacity; retry after
	// the server's advertised backoff.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining: the server is shutting down and accepts no new work.
	ErrDraining = errors.New("server: draining, not accepting jobs")
	// ErrNotFound: no job with that id.
	ErrNotFound = errors.New("server: no such job")
)

// Options configures a Server. The zero value gets sensible defaults
// from withDefaults.
type Options struct {
	// Workers is the number of concurrent job executors.
	Workers int
	// JobWorkers bounds the worker pool inside one job (the multilevel
	// recursion's pool and the sweep's experiment pool). Labels and
	// results never depend on it.
	JobWorkers int
	// QueueDepth bounds the job queue; submissions past it shed with
	// ErrQueueFull.
	QueueDepth int
	// DefaultTimeout/MaxTimeout bound per-job wall clock: jobs that
	// specify no timeout get the default, and no job may exceed the
	// maximum.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// CacheEntries bounds the result LRU (0 = default; negative
	// disables caching).
	CacheEntries int
	// SpoolDir, when non-empty, enables sweep checkpointing: each sweep
	// job checkpoints to <SpoolDir>/<spec hash>.ckpt after every
	// measured snapshot, and a resubmitted sweep resumes from it.
	SpoolDir string
	// RetryAfter is the backoff the HTTP layer advertises on 429.
	RetryAfter time.Duration
	// MaxGraphVertices caps submitted graph sizes (memory protection).
	MaxGraphVertices int
	// Obs, when non-nil, receives server-level phases ("serve_job_wall"
	// per finished job, with p50/p99 via its histogram), counters, and
	// every finished job's merged per-job report.
	Obs *obs.Collector
	// Tracer, when non-nil, records a root span per executed job.
	Tracer *obs.Tracer
	// Fault, when non-nil, injects deterministic chaos into job
	// execution: a job's sequence number is its rank, so
	// Fault.PanicRank / StallRank schedule panics and stalls inside
	// specific jobs (the chaos tests' lever). Nil-safe.
	Fault *fault.Plan
	// Log, when non-nil, receives structured lifecycle events
	// (submitted/dedup/cache-hit/shed/started/done/...) and per-request
	// access logs, each carrying job id, spec hash, and cause. Build
	// one with obs.NewLogger; nil disables logging entirely.
	Log *slog.Logger
	// Flight, when non-nil, replaces the server's own flight recorder
	// (a bounded ring of admission/lifecycle events behind GET
	// /debug/events). When nil the server creates one of FlightEvents
	// capacity.
	Flight *obs.FlightRecorder
	// FlightEvents sizes the default flight recorder (0 = 256).
	FlightEvents int
	// FlightDump, when non-nil, receives a flight-recorder text dump
	// whenever a job panics (cmd/partsrv passes stderr, so post-mortem
	// context survives even if nobody scrapes /debug/events).
	FlightDump io.Writer
	// TraceRing, when positive, runs every job under its own
	// obs.Tracer and retains the last TraceRing completed jobs'
	// traces for GET /api/v1/jobs/{id}/trace. 0 disables retention
	// (jobs then share Options.Tracer, if any).
	TraceRing int
	// WindowSlot/WindowSlots configure the rolling latency window over
	// serve_job_wall: WindowSlots sub-histograms of WindowSlot each
	// (defaults 6 x 10s). The window feeds /metrics (both formats) and
	// the /healthz readiness body.
	WindowSlot  time.Duration
	WindowSlots int
	// SLOTarget is the latency objective for completed jobs; done jobs
	// slower than it count against the error budget
	// (serve_slo_violations_total). 0 disables violation tracking.
	SLOTarget time.Duration
	// Clock, when non-nil, replaces time.Now for the rolling window
	// and the flight recorder (injectable for deterministic tests).
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.JobWorkers == 0 {
		o.JobWorkers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = time.Minute
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 64
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxGraphVertices <= 0 {
		o.MaxGraphVertices = 2_000_000
	}
	if o.FlightEvents <= 0 {
		o.FlightEvents = 256
	}
	if o.WindowSlot <= 0 {
		o.WindowSlot = 10 * time.Second
	}
	if o.WindowSlots <= 0 {
		o.WindowSlots = 6
	}
	return o
}

// Accounting is the server's job ledger. At quiescence it balances:
//
//	Submitted = Accepted + RejectedFull + RejectedDraining
//	          + RejectedInvalid + Deduped
//	Accepted  = Completed + Failed + Canceled + Drained + DrainedQueued
//	          + (jobs still queued or running)
//
// The chaos tests assert both identities after drain, when nothing is
// queued or running.
type Accounting struct {
	Submitted        int64 `json:"submitted"`
	Accepted         int64 `json:"accepted"`
	RejectedFull     int64 `json:"rejected_full"`
	RejectedDraining int64 `json:"rejected_draining"`
	RejectedInvalid  int64 `json:"rejected_invalid"`
	Deduped          int64 `json:"deduped"`
	CacheHits        int64 `json:"cache_hits"`
	Completed        int64 `json:"completed"`
	Failed           int64 `json:"failed"`
	Canceled         int64 `json:"canceled"`
	Drained          int64 `json:"drained"`
	DrainedQueued    int64 `json:"drained_queued"`
}

// Server is the job engine. Create with New, stop with Drain.
type Server struct {
	opt    Options
	cache  *resultCache
	window *obs.WindowedHist
	flight *obs.FlightRecorder
	traces *traceRing
	reqSeq atomic.Int64 // access-log request ids

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu       sync.Mutex
	draining bool
	nextSeq  int64
	inflight int // jobs in StatusRunning
	jobs     map[string]*Job
	order    []string          // job ids in submission order
	byKey    map[string]string // idempotency key -> job id
	acct     Accounting

	sceneMu sync.Mutex
	scenes  map[string][]sim.Snapshot
}

// New starts a server: opt.Workers executor goroutines behind a
// QueueDepth-bounded queue. The caller must Drain it to stop.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:    opt,
		queue:  make(chan *Job, opt.QueueDepth),
		jobs:   make(map[string]*Job),
		byKey:  make(map[string]string),
		scenes: make(map[string][]sim.Snapshot),
	}
	if opt.CacheEntries > 0 {
		s.cache = newResultCache(opt.CacheEntries)
	}
	s.window = obs.NewWindowedHist(opt.WindowSlot, opt.WindowSlots, int64(opt.SLOTarget), opt.Clock)
	s.flight = opt.Flight
	if s.flight == nil {
		s.flight = obs.NewFlightRecorder(opt.FlightEvents, opt.Clock)
	}
	if opt.TraceRing > 0 {
		s.traces = newTraceRing(opt.TraceRing)
	}
	//lint:ignore ctxflow the daemon's base context is a true lifecycle root; Drain cancels it
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit validates and enqueues a job, returning its view (status
// "queued", or "done" immediately on a cache hit or an idempotent
// duplicate of a finished job). idemKey, when non-empty, deduplicates
// retries: a second submission with the same key returns the first
// job instead of creating a new one. Errors: ErrDraining, ErrQueueFull
// (retryable), or a validation error (not retryable).
func (s *Server) Submit(spec JobSpec, idemKey string) (JobView, error) {
	// Lifecycle logging happens after the mutex is released: the log
	// defer is registered before the lock defer, so the LIFO unwind
	// runs Unlock first. A slog write under the admission mutex would
	// stall every submitter and every health probe behind one slow
	// stderr pipe (the lockheld contract).
	var logEv string
	var logArgs []any
	defer func() {
		if logEv != "" {
			s.logEvent(logEv, logArgs...)
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acct.Submitted++
	if s.draining {
		s.acct.RejectedDraining++
		s.flight.Record("reject_draining", "", string(spec.Kind))
		logEv, logArgs = "rejected_draining", []any{"kind", string(spec.Kind)}
		return JobView{}, ErrDraining
	}
	if idemKey != "" {
		if id, ok := s.byKey[idemKey]; ok {
			s.acct.Deduped++
			logEv, logArgs = "deduped", []any{"job", id, "key", idemKey}
			return s.jobs[id].view(), nil
		}
	}
	if err := spec.validate(s.opt.MaxGraphVertices); err != nil {
		s.acct.RejectedInvalid++
		logEv, logArgs = "rejected_invalid", []any{"kind", string(spec.Kind), "cause", err.Error()}
		return JobView{}, fmt.Errorf("invalid job: %w", err)
	}

	job := &Job{
		seq:       s.nextSeq,
		key:       idemKey,
		hash:      spec.hash(),
		spec:      spec,
		status:    StatusQueued,
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	job.id = fmt.Sprintf("job-%06d", job.seq)

	// Result cache: an already-answered spec completes instantly and
	// never occupies a queue slot.
	if result, ok := s.cache.get(job.hash); ok {
		job.status = StatusDone
		job.result = result
		job.cached = true
		close(job.done)
		s.acct.Accepted++
		s.acct.CacheHits++
		s.acct.Completed++
		s.registerLocked(job)
		logEv, logArgs = "cache_hit", []any{"job", job.id, "hash", job.hash}
		return job.view(), nil
	}

	// Bounded queue: shed rather than buffer. The send happens under
	// s.mu, which Drain also holds when it closes the queue, so a send
	// on a closed channel cannot happen.
	select {
	case s.queue <- job:
	default:
		s.acct.RejectedFull++
		s.flight.Record("shed", "", fmt.Sprintf("queue full (kind=%s hash=%s)", spec.Kind, job.hash))
		logEv, logArgs = "shed", []any{"kind", string(spec.Kind), "hash", job.hash}
		return JobView{}, ErrQueueFull
	}
	s.acct.Accepted++
	s.registerLocked(job)
	logEv, logArgs = "submitted", []any{"job", job.id, "kind", string(spec.Kind), "hash", job.hash}
	return job.view(), nil
}

// logEvent emits one structured lifecycle event; a nil logger makes
// it free.
func (s *Server) logEvent(event string, args ...any) {
	if s.opt.Log == nil {
		return
	}
	s.opt.Log.Info(event, args...)
}

// registerLocked records an accepted job; only accepted jobs consume
// a sequence number. Caller holds s.mu.
func (s *Server) registerLocked(job *Job) {
	s.nextSeq++
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	if job.key != "" {
		s.byKey[job.key] = job.id
	}
}

// Job returns a job's current view.
func (s *Server) Job(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return job.view(), nil
}

// Jobs lists all jobs in submission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// Cancel requests cancellation of a job. A queued job is cancelled on
// the spot; a running one has its context cancelled and transitions
// when the payload unwinds (its Done channel closes then). Cancelling
// a terminal job is a no-op returning its final view.
func (s *Server) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	if job.status.terminal() {
		return job.view(), nil
	}
	job.clientStop = true
	switch job.status {
	case StatusQueued:
		// The worker that eventually pops it sees the terminal status
		// and skips it.
		s.finishLocked(job, StatusCanceled, "canceled before start", nil, nil)
	case StatusRunning:
		job.cancel()
	}
	return job.view(), nil
}

// Wait blocks until the job reaches a terminal status (or ctx ends)
// and returns its final view.
func (s *Server) Wait(ctx context.Context, id string) (JobView, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, ErrNotFound
	}
	select {
	case <-job.done:
		return s.Job(id)
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
}

// Accounting returns a snapshot of the job ledger.
func (s *Server) Accounting() Accounting {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acct
}

// RetryAfter is the backoff the HTTP layer advertises with 429.
func (s *Server) RetryAfter() time.Duration { return s.opt.RetryAfter }

// Flight returns the server's flight recorder (never nil), so the
// daemon can dump it on SIGQUIT.
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// Window snapshots the rolling serve_job_wall latency window and the
// SLO ledger.
func (s *Server) Window() obs.WindowStat { return s.window.Snapshot() }

// Health is the /healthz readiness body. Status and the HTTP code are
// redundant on purpose: probes branch on the code, dashboards read
// the body.
type Health struct {
	Status     string `json:"status"` // "ok" or "draining"
	QueueDepth int    `json:"queue_depth"`
	Inflight   int    `json:"inflight"`
	// Rolling-window latency detail (serve_job_wall over the window).
	WindowCount     int64 `json:"window_count"`
	WindowP99NS     int64 `json:"window_p99_ns"`
	SLOObjectiveNS  int64 `json:"slo_objective_ns,omitempty"`
	SLOViolations   int64 `json:"slo_violations_total"`
	WindowViolation int64 `json:"window_violations"`
}

// Health returns the readiness snapshot behind /healthz.
func (s *Server) Health() Health {
	ws := s.window.Snapshot()
	s.mu.Lock()
	h := Health{
		Status:          "ok",
		QueueDepth:      len(s.queue),
		Inflight:        s.inflight,
		WindowCount:     ws.Count,
		WindowP99NS:     ws.P99,
		SLOObjectiveNS:  ws.ObjectiveNS,
		SLOViolations:   ws.Violations,
		WindowViolation: ws.WindowViolations,
	}
	if s.draining {
		h.Status = "draining"
	}
	s.mu.Unlock()
	return h
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully stops the server: new submissions are rejected
// with ErrDraining, jobs still queued are marked drained_queued
// without running, and in-flight jobs have their contexts cancelled —
// a running sweep stops at the next snapshot boundary with progress
// durable in the checkpoint spool. Drain returns when every worker
// has exited, or ctx's error if they don't make it in time (leaving
// the workers to finish unwinding in the background). Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	// Capture the drain snapshot under the lock, log after releasing
	// it: the structured-log write must not extend the critical
	// section (lockheld).
	s.mu.Lock()
	began := false
	var inflight, queued int
	if !s.draining {
		s.draining = true
		close(s.queue)
		began, inflight, queued = true, s.inflight, len(s.queue)
		s.flight.Record("drain_begin", "", fmt.Sprintf("inflight=%d queued=%d", inflight, queued))
	}
	s.mu.Unlock()
	if began {
		s.logEvent("drain_begin", "inflight", inflight, "queued", queued)
	}
	s.baseCancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.flight.Record("drain_end", "", "all workers exited")
		s.logEvent("drain_end")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain grace expired: %w", ctx.Err())
	}
}

// worker executes jobs until the queue is closed and empty. Jobs
// popped after drain began never start: they are marked
// drained_queued for the client to resubmit elsewhere.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.mu.Lock()
		switch {
		case job.status.terminal():
			// Cancelled while queued; nothing to do.
			s.mu.Unlock()
			continue
		case s.draining:
			s.finishLocked(job, StatusDrainedQueued, "server drained before the job started", nil, nil)
			s.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithTimeout(s.baseCtx, job.spec.timeout(s.opt.DefaultTimeout, s.opt.MaxTimeout))
		job.status = StatusRunning
		job.cancel = cancel
		s.inflight++
		s.mu.Unlock()
		s.logEvent("started", "job", job.id, "kind", string(job.spec.Kind), "hash", job.hash)

		s.runJob(ctx, job)
		cancel()
	}
}

// jobPhase is the fault-plan phase under which job-level chaos
// (PanicRank/StallRank keyed by job sequence number) is injected.
const jobPhase = 0

// runJob executes one job inside the panic/deadline envelope and
// records the outcome. The recover means a panicking payload — or an
// injected fault.InjectedPanic — fails the job, never the daemon.
func (s *Server) runJob(ctx context.Context, job *Job) {
	col := obs.New()
	// With a trace ring, the job runs under its own tracer so its
	// spans are retrievable per job id after it finishes; otherwise
	// all jobs share Options.Tracer (possibly nil = disabled).
	tracer := s.opt.Tracer
	var ringTracer *obs.Tracer
	if s.traces != nil {
		ringTracer = obs.NewTracer()
		tracer = ringTracer
	}
	span := tracer.Root("job", obs.Str("id", job.id), obs.Str("kind", string(job.spec.Kind)))

	var result []byte
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panicked: %v", r)
				col.Add("job_panics", 1)
				s.flight.Record("panic", job.id, fmt.Sprint(r))
				if s.opt.FlightDump != nil {
					s.flight.WriteText(s.opt.FlightDump)
				}
			}
		}()
		s.opt.Fault.MaybePanic(int(job.seq), jobPhase)
		s.opt.Fault.MaybeStall(ctx, int(job.seq), jobPhase)
		switch job.spec.Kind {
		case KindGraph:
			result, err = s.runGraphJob(ctx, job, col, span)
		case KindSweep:
			result, err = s.runSweepJob(ctx, job, col, span)
		default:
			err = fmt.Errorf("unknown job kind %q", job.spec.Kind)
		}
	}()
	span.End()
	if ringTracer != nil {
		// Retain before the terminal transition: once a waiter sees the
		// job finished, its trace must already be retrievable.
		s.traces.put(job.id, ringTracer)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.cache.put(job.hash, result)
		s.finishLocked(job, StatusDone, "", result, col)
		return
	}
	// Attribute the failure: client cancel beats drain beats deadline.
	switch {
	case job.clientStop && errors.Is(err, context.Canceled):
		s.finishLocked(job, StatusCanceled, "canceled by client", nil, col)
	case s.draining && errors.Is(err, context.Canceled):
		s.flight.Record("drained", job.id, "interrupted in flight")
		s.finishLocked(job, StatusDrained, "interrupted by server drain; progress checkpointed", nil, col)
	case errors.Is(err, context.DeadlineExceeded):
		s.flight.Record("deadline", job.id, "deadline exceeded")
		s.finishLocked(job, StatusFailed, "deadline exceeded", nil, col)
	default:
		s.finishLocked(job, StatusFailed, err.Error(), nil, col)
	}
}

// finishLocked moves a job to a terminal status, stamps its wall
// clock and observability report, bumps the ledger, and wakes
// waiters. Caller holds s.mu.
func (s *Server) finishLocked(job *Job, status Status, errMsg string, result []byte, col *obs.Collector) {
	if job.status == StatusRunning {
		s.inflight--
	}
	job.status = status
	job.err = errMsg
	job.result = result
	job.wallNS = int64(time.Since(job.submitted))
	if col != nil {
		rep := col.Report()
		job.obsReport = &rep
		if err := s.opt.Obs.Merge(rep); err != nil {
			s.opt.Obs.Add("obs_merge_errors", 1)
		}
	}
	if status == StatusDone {
		// Only completed jobs feed the latency histogram (cumulative
		// and rolling-window); cancelled or drained jobs would skew
		// p50/p99 with wall clock they never spent computing.
		s.opt.Obs.Observe("serve_job_wall", time.Duration(job.wallNS))
		s.window.Observe(job.wallNS)
	}
	switch status {
	case StatusDone:
		s.acct.Completed++
	case StatusFailed:
		s.acct.Failed++
	case StatusCanceled:
		s.acct.Canceled++
	case StatusDrained:
		s.acct.Drained++
	case StatusDrainedQueued:
		s.acct.DrainedQueued++
		s.flight.Record("drained_queued", job.id, "drained before start")
	}
	s.logEvent(string(status), "job", job.id, "hash", job.hash,
		"cause", errMsg, "wall_ms", job.wallNS/int64(time.Millisecond))
	close(job.done)
}

// runGraphJob partitions the submitted graph with the requested
// backend and reports labels, cut, and per-constraint imbalance.
func (s *Server) runGraphJob(ctx context.Context, job *Job, col *obs.Collector, span *obs.Span) ([]byte, error) {
	spec := job.spec
	g, coords, err := spec.Graph.Build()
	if err != nil {
		return nil, err
	}
	be, err := backend.Lookup(spec.Backend)
	if err != nil {
		return nil, err
	}
	labels, err := be.Partition(backend.Input{Graph: g, Coords: coords, Dim: spec.Graph.Dim}, backend.Options{
		K: spec.K, Seed: spec.Seed, Imbalance: spec.Imbalance,
		Workers: s.opt.JobWorkers, Obs: col, Span: span, Ctx: ctx,
	})
	if err != nil {
		return nil, err
	}
	res := GraphResult{
		Labels:     labels,
		Cut:        metrics.EdgeCut(g, labels),
		Imbalances: metrics.LoadImbalance(g, labels, spec.K),
	}
	return json.Marshal(res)
}

// runSweepJob runs the evaluation harness over the (cached) synthetic
// scene. With a spool directory configured the sweep checkpoints
// after every measured snapshot; a resubmission after a drain resumes
// from the checkpoint and returns bytes identical to an uninterrupted
// run. The checkpoint is deleted on success and kept on any
// interruption.
func (s *Server) runSweepJob(ctx context.Context, job *Job, col *obs.Collector, span *obs.Span) ([]byte, error) {
	spec := job.spec.Sweep.withDefaults()
	snaps, err := s.scene(spec)
	if err != nil {
		return nil, err
	}
	cfgs := spec.harnessConfigs(col)

	var ck *harness.Checkpointer
	var ckPath string
	if s.opt.SpoolDir != "" {
		ckPath = filepath.Join(s.opt.SpoolDir, job.hash+".ckpt")
		switch loaded, lerr := harness.LoadCheckpoint(ckPath, snaps, cfgs); {
		case lerr == nil:
			ck = loaded
			s.mu.Lock()
			job.resumed = true
			s.mu.Unlock()
			col.Add("sweep_resumes", 1)
			if rep := ck.SavedObs(); rep != nil {
				if merr := col.Merge(*rep); merr != nil {
					col.Add("obs_merge_errors", 1)
				}
			}
		case errors.Is(lerr, os.ErrNotExist):
			ck = harness.NewCheckpointer(ckPath, snaps, cfgs)
		case errors.Is(lerr, harness.ErrCheckpointMismatch):
			// Stale spool entry from an older schema; start fresh. A
			// hash collision between different workloads cannot get
			// here (the spec hash covers every config field), so this
			// is only ever a format-version bump.
			col.Add("checkpoint_mismatches", 1)
			ck = harness.NewCheckpointer(ckPath, snaps, cfgs)
		default:
			return nil, lerr
		}
		ck.Obs = col
	}

	results, err := harness.RunSweep(ctx, snaps, cfgs, harness.SweepOptions{
		Workers: s.opt.JobWorkers, Checkpoint: ck, Span: span,
	})
	if err != nil {
		return nil, err
	}
	if ckPath != "" {
		// Completed: the result is cached, the checkpoint is spent. A
		// failed remove only costs spool space, not correctness.
		if rerr := os.Remove(ckPath); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			col.Add("spool_remove_errors", 1)
		}
	}
	return json.Marshal(SweepResult{Results: results})
}

// scene returns the snapshot sequence for a sweep's scene parameters,
// generating it on first use. Scenes are deterministic in their
// parameters, so sharing them across jobs changes nothing but wall
// clock.
func (s *Server) scene(spec SweepSpec) ([]sim.Snapshot, error) {
	key := spec.sceneKey()
	s.sceneMu.Lock()
	defer s.sceneMu.Unlock()
	if snaps, ok := s.scenes[key]; ok {
		return snaps, nil
	}
	snaps, err := sim.Run(spec.simConfig())
	if err != nil {
		return nil, err
	}
	s.scenes[key] = snaps
	return snaps, nil
}
