package server

// HTTP surface of the job engine. The API is deliberately small:
//
//	POST   /api/v1/jobs        submit (JSON JobSpec; Idempotency-Key
//	                           header dedups retries) -> 202 + job view
//	                           429 + Retry-After when the queue is full
//	                           503 when draining, 400 when invalid
//	GET    /api/v1/jobs        list jobs in submission order
//	GET    /api/v1/jobs/{id}   job status; ?wait=1 blocks until terminal
//	GET    /api/v1/jobs/{id}/result   result payload when done
//	GET    /api/v1/jobs/{id}/trace    retained Chrome trace-event JSON
//	DELETE /api/v1/jobs/{id}   cancel
//	GET    /api/v1/accounting  the job ledger
//	GET    /metrics            server observability report (JSON;
//	                           ?format=prom for Prometheus exposition)
//	GET    /debug/events       flight-recorder ring (JSON)
//	GET    /healthz            200 ok / 503 draining, JSON readiness body
//
// With Options.Log set, every request is access-logged with a
// server-assigned request id (also returned as X-Request-Id).
//
// NewHTTPServer wraps the mux in an http.Server with read-header,
// read, write, and idle timeouts, so slow-loris clients cannot pin
// connections open indefinitely.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs"
)

// maxBodyBytes bounds a submit body (graphs travel inline as JSON).
const maxBodyBytes = 64 << 20

// Handler returns the API mux for the server, wrapped in access
// logging when Options.Log is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/accounting", s.handleAccounting)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.opt.Log == nil {
		return mux
	}
	return s.accessLog(mux)
}

// statusRecorder captures the response code/size for access logging.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// accessLog wraps h with per-request structured logging: one line per
// request with a server-assigned request id (also sent back as
// X-Request-Id so clients can quote it in bug reports).
func (s *Server) accessLog(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", rid)
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		h.ServeHTTP(sr, r)
		s.opt.Log.Info("http", "req", rid, "method", r.Method,
			"path", r.URL.Path, "status", sr.code, "bytes", sr.bytes,
			"dur_ms", time.Since(t0).Milliseconds())
	})
}

// NewHTTPServer wraps the API in a hardened http.Server: header and
// body read timeouts (slowloris protection), a write timeout sized
// for large result payloads, and an idle keep-alive timeout. Callers
// stop it with Shutdown(ctx) after draining the job engine.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// httpError is the JSON error body.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	// The connection is the only sink for an encode error; a client
	// that went away takes the response with it.
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, httpError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parse job spec: %w", err))
		return
	}
	view, err := s.Submit(spec, r.Header.Get("Idempotency-Key"))
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter().Round(time.Second)/time.Second)))
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var view JobView
	var err error
	if r.URL.Query().Get("wait") != "" {
		view, err = s.Wait(r.Context(), id)
	} else {
		view, err = s.Job(id)
	}
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, err)
	case err != nil:
		// Wait interrupted: the client went away or the server is
		// shutting the connection down.
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeJSON(w, http.StatusOK, view)
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	view, err := s.Job(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, err)
	case view.Status != StatusDone:
		writeErr(w, http.StatusConflict,
			fmt.Errorf("job %s is %s, result only exists when done", view.ID, view.Status))
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(view.Result) // connection errors have no other sink
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.Cancel(r.PathValue("id"))
	if errors.Is(err, ErrNotFound) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleAccounting(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Accounting())
}

// metricsReport is the obs report enriched with the rolling-window
// gauges and the SLO burn counters, re-sorted so both output formats
// stay deterministic.
func (s *Server) metricsReport() obs.Report {
	rep := s.opt.Obs.Report()
	ws := s.window.Snapshot()
	rep.Gauges = append(rep.Gauges,
		obs.CounterStat{Name: "serve_window_count", Value: ws.Count},
		obs.CounterStat{Name: "serve_window_p50_ns", Value: ws.P50},
		obs.CounterStat{Name: "serve_window_p90_ns", Value: ws.P90},
		obs.CounterStat{Name: "serve_window_p99_ns", Value: ws.P99},
		obs.CounterStat{Name: "serve_window_violations", Value: ws.WindowViolations},
		obs.CounterStat{Name: "serve_slo_objective_ns", Value: ws.ObjectiveNS},
	)
	rep.Counters = append(rep.Counters,
		obs.CounterStat{Name: "serve_slo_observed", Value: ws.Observed},
		obs.CounterStat{Name: "serve_slo_violations", Value: ws.Violations},
	)
	sort.Slice(rep.Gauges, func(i, j int) bool { return rep.Gauges[i].Name < rep.Gauges[j].Name })
	sort.Slice(rep.Counters, func(i, j int) bool { return rep.Counters[i].Name < rep.Counters[j].Name })
	return rep
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rep := s.metricsReport()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		// Connection errors have no other sink on a scrape.
		_ = rep.WritePrometheus(w)
		_ = obs.WritePrometheusRuntime(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = rep.WriteJSON(w) // connection errors have no other sink
}

// handleTrace streams a retained job trace as Chrome trace-event
// JSON. 404 when the job is unknown or its trace is gone (ring
// disabled or evicted), 409 while the job has not finished.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, err := s.Job(id)
	if errors.Is(err, ErrNotFound) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if !view.Status.terminal() {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; its trace is retained when it finishes", id, view.Status))
		return
	}
	tracer, ok := s.traces.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("no retained trace for job %s (trace ring disabled, or evicted)", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = tracer.WriteTrace(w) // connection errors have no other sink
}

// handleEvents dumps the flight-recorder ring.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.flight.WriteJSON(w) // connection errors have no other sink
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
