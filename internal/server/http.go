package server

// HTTP surface of the job engine. The API is deliberately small:
//
//	POST   /api/v1/jobs        submit (JSON JobSpec; Idempotency-Key
//	                           header dedups retries) -> 202 + job view
//	                           429 + Retry-After when the queue is full
//	                           503 when draining, 400 when invalid
//	GET    /api/v1/jobs        list jobs in submission order
//	GET    /api/v1/jobs/{id}   job status; ?wait=1 blocks until terminal
//	GET    /api/v1/jobs/{id}/result   result payload when done
//	DELETE /api/v1/jobs/{id}   cancel
//	GET    /api/v1/accounting  the job ledger
//	GET    /metrics            server observability report (JSON)
//	GET    /healthz            200 ok / 503 draining
//
// NewHTTPServer wraps the mux in an http.Server with read-header,
// read, write, and idle timeouts, so slow-loris clients cannot pin
// connections open indefinitely.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// maxBodyBytes bounds a submit body (graphs travel inline as JSON).
const maxBodyBytes = 64 << 20

// Handler returns the API mux for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/accounting", s.handleAccounting)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// NewHTTPServer wraps the API in a hardened http.Server: header and
// body read timeouts (slowloris protection), a write timeout sized
// for large result payloads, and an idle keep-alive timeout. Callers
// stop it with Shutdown(ctx) after draining the job engine.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// httpError is the JSON error body.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	// The connection is the only sink for an encode error; a client
	// that went away takes the response with it.
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, httpError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parse job spec: %w", err))
		return
	}
	view, err := s.Submit(spec, r.Header.Get("Idempotency-Key"))
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter().Round(time.Second)/time.Second)))
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var view JobView
	var err error
	if r.URL.Query().Get("wait") != "" {
		view, err = s.Wait(r.Context(), id)
	} else {
		view, err = s.Job(id)
	}
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, err)
	case err != nil:
		// Wait interrupted: the client went away or the server is
		// shutting the connection down.
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeJSON(w, http.StatusOK, view)
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	view, err := s.Job(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, err)
	case view.Status != StatusDone:
		writeErr(w, http.StatusConflict,
			fmt.Errorf("job %s is %s, result only exists when done", view.ID, view.Status))
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(view.Result) // connection errors have no other sink
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.Cancel(r.PathValue("id"))
	if errors.Is(err, ErrNotFound) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleAccounting(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Accounting())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rep := s.opt.Obs.Report()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = rep.WriteJSON(w) // connection errors have no other sink
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
