package server

// HTTP surface tests: status-code mapping (202/400/404/409/429/503),
// Retry-After on shed, Idempotency-Key plumbing, the result and
// accounting endpoints, and health flipping to 503 under drain.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/fault"
)

// newTestAPI starts a drained-on-cleanup server and its httptest
// frontend.
func newTestAPI(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJob submits a spec over HTTP and returns the status code and
// decoded body.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec, idemKey string) (int, JobView, http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var view JobView
	var apiErr httpError
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("decode job view: %v", err)
		}
	} else if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	view.Error = view.Error + apiErr.Error
	return resp.StatusCode, view, resp.Header
}

// getJSON GETs a path and decodes the body into v, returning the
// status code.
func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPSubmitWaitResult(t *testing.T) {
	_, ts := newTestAPI(t, Options{Workers: 2})

	code, view, _ := postJob(t, ts, graphJob(11), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%s), want 202", code, view.Error)
	}
	if view.ID == "" || view.Status != StatusQueued {
		t.Fatalf("submit view: %+v", view)
	}

	var done JobView
	if code := getJSON(t, ts, "/api/v1/jobs/"+view.ID+"?wait=1", &done); code != http.StatusOK {
		t.Fatalf("wait: HTTP %d", code)
	}
	if done.Status != StatusDone {
		t.Fatalf("job finished %s (%s)", done.Status, done.Error)
	}

	var res GraphResult
	if code := getJSON(t, ts, "/api/v1/jobs/"+view.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if len(res.Labels) != 24*24 {
		t.Fatalf("result carried %d labels", len(res.Labels))
	}

	var list []JobView
	if code := getJSON(t, ts, "/api/v1/jobs", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("list: HTTP %d with %d jobs", code, len(list))
	}
	var acct Accounting
	if code := getJSON(t, ts, "/api/v1/accounting", &acct); code != http.StatusOK {
		t.Fatalf("accounting: HTTP %d", code)
	}
	if acct.Completed != 1 {
		t.Fatalf("accounting over HTTP: %+v", acct)
	}
	if code := getJSON(t, ts, "/metrics", nil); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
}

func TestHTTPStatusCodes(t *testing.T) {
	plan := &fault.Plan{StallRank: map[int]fault.Stall{0: {Phase: jobPhase, For: time.Minute}}}
	s, ts := newTestAPI(t, Options{Workers: 1, QueueDepth: 1, Fault: plan, RetryAfter: 2 * time.Second})

	// 400: malformed JSON and invalid spec.
	resp, err := ts.Client().Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatalf("post garbage: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: HTTP %d, want 400", resp.StatusCode)
	}
	if code, _, _ := postJob(t, ts, JobSpec{Kind: "nope"}, ""); code != http.StatusBadRequest {
		t.Fatalf("invalid spec: HTTP %d, want 400", code)
	}

	// 404: unknown job, every verb.
	if code := getJSON(t, ts, "/api/v1/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Fatalf("get unknown: HTTP %d, want 404", code)
	}
	if code := getJSON(t, ts, "/api/v1/jobs/job-999999/result", nil); code != http.StatusNotFound {
		t.Fatalf("result unknown: HTTP %d, want 404", code)
	}

	// Fill the server: one stalled running job, one queued.
	code, stalled, _ := postJob(t, ts, graphJob(1), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit stalled: HTTP %d", code)
	}
	waitForStatus(t, s, stalled.ID, StatusRunning)
	if code, _, _ = postJob(t, ts, graphJob(2), ""); code != http.StatusAccepted {
		t.Fatalf("submit queued: HTTP %d", code)
	}

	// 409: result of a job that is not done.
	if code := getJSON(t, ts, "/api/v1/jobs/"+stalled.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("result of running job: HTTP %d, want 409", code)
	}

	// 429 + Retry-After: queue full.
	code, _, hdr := postJob(t, ts, graphJob(3), "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("shed submit: HTTP %d, want 429", code)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra != 2 {
		t.Fatalf("Retry-After = %q, want 2", hdr.Get("Retry-After"))
	}

	// Idempotent retry of the queued spec dedups even while full.
	code, first, _ := postJob(t, ts, graphJob(4), "key-1")
	if code != http.StatusTooManyRequests {
		t.Fatalf("keyed submit while full: HTTP %d, want 429", code)
	}
	_ = first

	// DELETE the stalled job; it unblocks and the queue drains.
	req, err := http.NewRequest("DELETE", ts.URL+"/api/v1/jobs/"+stalled.ID, nil)
	if err != nil {
		t.Fatalf("build delete: %v", err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: HTTP %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, stalled.ID); err != nil {
		t.Fatalf("wait cancelled: %v", err)
	}
}

func TestHTTPIdempotencyKeyDedups(t *testing.T) {
	_, ts := newTestAPI(t, Options{Workers: 1})
	code, first, _ := postJob(t, ts, graphJob(5), "retry-key")
	if code != http.StatusAccepted {
		t.Fatalf("first keyed submit: HTTP %d", code)
	}
	code, second, _ := postJob(t, ts, graphJob(5), "retry-key")
	if code != http.StatusAccepted {
		t.Fatalf("retry keyed submit: HTTP %d", code)
	}
	if second.ID != first.ID {
		t.Fatalf("keyed retry over HTTP created %s, first was %s", second.ID, first.ID)
	}
}

func TestHTTPHealthzFlipsOnDrain(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code := getJSON(t, ts, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz idle: HTTP %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := getJSON(t, ts, "/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz draining: HTTP %d, want 503", code)
	}
	// Submitting over HTTP now maps ErrDraining to 503.
	if code, _, _ := postJob(t, ts, graphJob(1), ""); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, want 503", code)
	}
}

// TestHTTPServerHardened pins the anti-slowloris settings of the
// wrapped http.Server.
func TestHTTPServerHardened(t *testing.T) {
	srv := NewHTTPServer(":0", http.NewServeMux())
	for name, d := range map[string]time.Duration{
		"ReadHeaderTimeout": srv.ReadHeaderTimeout,
		"ReadTimeout":       srv.ReadTimeout,
		"WriteTimeout":      srv.WriteTimeout,
		"IdleTimeout":       srv.IdleTimeout,
	} {
		if d <= 0 {
			t.Errorf("%s unset: a stalled client could pin its connection forever", name)
		}
	}
}

// TestHTTPResultRoundTrip proves the submitted CSR survives the wire
// format: submit over HTTP, fetch the result, and check the labels
// against a direct engine run of the same spec.
func TestHTTPResultRoundTrip(t *testing.T) {
	s, ts := newTestAPI(t, Options{Workers: 1})
	spec := graphJob(21)

	code, view, _ := postJob(t, ts, spec, "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	var httpRes GraphResult
	if c := getJSON(t, ts, "/api/v1/jobs/"+view.ID+"?wait=1", new(JobView)); c != http.StatusOK {
		t.Fatalf("wait: HTTP %d", c)
	}
	if c := getJSON(t, ts, "/api/v1/jobs/"+view.ID+"/result", &httpRes); c != http.StatusOK {
		t.Fatalf("result: HTTP %d", c)
	}

	direct := wait(t, s, mustSubmit(t, s, spec).ID) // cache hit: same bytes
	var directRes GraphResult
	mustUnmarshal(t, direct.Result, &directRes)
	if fmt.Sprint(httpRes.Labels) != fmt.Sprint(directRes.Labels) {
		t.Fatalf("labels over HTTP differ from the engine's")
	}
}

func mustSubmit(t *testing.T, s *Server, spec JobSpec) JobView {
	t.Helper()
	view, err := s.Submit(spec, "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return view
}
