package server

// Job specs and results. A job is JSON in, job id out: either
// "partition this graph" (the CSR arrays travel in the request) or
// "run this evaluation sweep" (the synthetic scene is regenerated
// server-side, deterministically, from its parameters). Every
// result-affecting field of a spec feeds the job hash, which keys both
// the result cache and the checkpoint spool — two submissions with the
// same hash are the same work.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"time"

	"repro/internal/backend"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Kind discriminates the two job payloads.
type Kind string

const (
	// KindGraph partitions a submitted graph: CSR in, labels out.
	KindGraph Kind = "graph"
	// KindSweep runs the paper's evaluation harness over a synthetic
	// scene generated server-side from the sweep parameters.
	KindSweep Kind = "sweep"
)

// GraphSpec is the wire form of a partitioning input: the CSR arrays
// of the weighted graph plus optional coordinates for the geometric
// backends. Zero-value AdjWgt/VWgt mean unit weights.
type GraphSpec struct {
	// NCon is the number of vertex-weight components (>= 1).
	NCon int `json:"ncon"`
	// Xadj/Adj/AdjWgt are the CSR adjacency (each undirected edge
	// stored in both endpoint lists). AdjWgt defaults to all-ones.
	Xadj   []int32 `json:"xadj"`
	Adj    []int32 `json:"adj"`
	AdjWgt []int32 `json:"adjwgt,omitempty"`
	// VWgt holds NCon weights per vertex, vertex-major. Defaults to
	// all-ones.
	VWgt []int32 `json:"vwgt,omitempty"`
	// Dim/Coords carry node coordinates (vertex-major, Dim per vertex)
	// for backends with the NeedsCoords capability.
	Dim    int       `json:"dim,omitempty"`
	Coords []float64 `json:"coords,omitempty"`
}

// NV returns the vertex count implied by Xadj.
func (gs *GraphSpec) NV() int {
	if len(gs.Xadj) == 0 {
		return 0
	}
	return len(gs.Xadj) - 1
}

// shapeCheck validates the cheap structural invariants — O(1), safe to
// run in the submit path against untrusted input. The O(E) deep
// validation (graph.Validate) runs in the worker.
func (gs *GraphSpec) shapeCheck(maxVertices int) error {
	nv := gs.NV()
	switch {
	case nv < 1:
		return fmt.Errorf("graph: empty xadj")
	case nv > maxVertices:
		return fmt.Errorf("graph: %d vertices exceeds the server cap of %d", nv, maxVertices)
	case gs.NCon < 1 || gs.NCon > 8:
		return fmt.Errorf("graph: ncon %d, want 1..8", gs.NCon)
	case gs.Xadj[0] != 0 || int(gs.Xadj[nv]) != len(gs.Adj):
		return fmt.Errorf("graph: xadj endpoints [%d,%d] do not frame adj of length %d", gs.Xadj[0], gs.Xadj[nv], len(gs.Adj))
	case gs.AdjWgt != nil && len(gs.AdjWgt) != len(gs.Adj):
		return fmt.Errorf("graph: %d adjwgt for %d adj", len(gs.AdjWgt), len(gs.Adj))
	case gs.VWgt != nil && len(gs.VWgt) != nv*gs.NCon:
		return fmt.Errorf("graph: %d vwgt for %d vertices x %d constraints", len(gs.VWgt), nv, gs.NCon)
	case gs.Coords != nil && (gs.Dim < 1 || gs.Dim > 3):
		return fmt.Errorf("graph: coords with dim %d, want 1..3", gs.Dim)
	case gs.Coords != nil && len(gs.Coords) != nv*gs.Dim:
		return fmt.Errorf("graph: %d coords for %d vertices x dim %d", len(gs.Coords), nv, gs.Dim)
	}
	return nil
}

// Build materializes the graph (and coordinates, when present) and
// runs the deep validation. Runs in the worker, inside the job's
// panic/deadline envelope.
func (gs *GraphSpec) Build() (*graph.Graph, []geom.Point, error) {
	nv := gs.NV()
	g := &graph.Graph{NCon: gs.NCon, Xadj: gs.Xadj, Adj: gs.Adj, AdjWgt: gs.AdjWgt, VWgt: gs.VWgt}
	if g.AdjWgt == nil {
		g.AdjWgt = make([]int32, len(gs.Adj))
		for i := range g.AdjWgt {
			g.AdjWgt[i] = 1
		}
	}
	if g.VWgt == nil {
		g.VWgt = make([]int32, nv*gs.NCon)
		for i := range g.VWgt {
			g.VWgt[i] = 1
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	var coords []geom.Point
	if gs.Coords != nil {
		coords = make([]geom.Point, nv)
		for v := 0; v < nv; v++ {
			for d := 0; d < gs.Dim; d++ {
				coords[v][d] = gs.Coords[v*gs.Dim+d]
			}
		}
	}
	return g, coords, nil
}

// SweepSpec parameterizes a server-side evaluation sweep: the
// synthetic projectile scene (regenerated deterministically from
// Refine/Snapshots/Steps) swept over the listed partition counts.
type SweepSpec struct {
	// Refine is the scene refinement (1 = ~10k nodes; default 1).
	Refine int `json:"refine,omitempty"`
	// Snapshots is the number of mesh snapshots measured (>= 1).
	Snapshots int `json:"snapshots"`
	// Steps is the kinematic step count (default 4x snapshots,
	// minimum 40).
	Steps int `json:"steps,omitempty"`
	// Ks are the partition counts of the sweep (each >= 1).
	Ks []int `json:"ks"`
	// Seed drives every randomized phase; Backend selects the MCML+DT
	// partitioning backend; Adaptive enables the warm-start drift
	// policy.
	Seed     int64  `json:"seed,omitempty"`
	Backend  string `json:"backend,omitempty"`
	Adaptive bool   `json:"adaptive,omitempty"`
}

func (ss *SweepSpec) withDefaults() SweepSpec {
	out := *ss
	if out.Refine == 0 {
		out.Refine = 1
	}
	if out.Steps == 0 {
		out.Steps = 4 * out.Snapshots
		if out.Steps < 40 {
			out.Steps = 40
		}
	}
	return out
}

// simConfig is the deterministic scene recipe of the sweep. Equal
// specs (post-defaults) produce equal snapshot sequences, which is
// what makes drain + restart + resubmit byte-identical.
func (ss SweepSpec) simConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scene.Refine = ss.Refine
	cfg.Snapshots = ss.Snapshots
	cfg.Steps = ss.Steps
	return cfg
}

// sceneKey identifies the snapshot sequence a sweep runs on (the
// scene cache key — independent of Ks/Seed/Backend, which do not
// change the mesh sequence).
func (ss SweepSpec) sceneKey() string {
	return fmt.Sprintf("refine=%d,snapshots=%d,steps=%d", ss.Refine, ss.Snapshots, ss.Steps)
}

// harnessConfigs expands the sweep into per-k harness configs. col is
// the per-job collector.
func (ss SweepSpec) harnessConfigs(col *obs.Collector) []harness.Config {
	cfgs := make([]harness.Config, len(ss.Ks))
	for i, k := range ss.Ks {
		cfgs[i] = harness.Config{
			K: k, Seed: ss.Seed, Backend: ss.Backend, Adaptive: ss.Adaptive, Obs: col,
		}
	}
	return cfgs
}

// JobSpec is the submit-a-job request body.
type JobSpec struct {
	Kind Kind `json:"kind"`

	// Graph-job fields.
	Graph     *GraphSpec `json:"graph,omitempty"`
	K         int        `json:"k,omitempty"`
	Backend   string     `json:"backend,omitempty"`
	Seed      int64      `json:"seed,omitempty"`
	Imbalance float64    `json:"imbalance,omitempty"`

	// Sweep-job fields.
	Sweep *SweepSpec `json:"sweep,omitempty"`

	// TimeoutMS bounds the job's wall clock in milliseconds (0 =
	// server default; capped at the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// validate rejects malformed specs in the submit path. maxVertices is
// the server's graph-size cap.
func (js *JobSpec) validate(maxVertices int) error {
	switch js.Kind {
	case KindGraph:
		if js.Graph == nil {
			return fmt.Errorf("graph job without a graph")
		}
		if js.Sweep != nil {
			return fmt.Errorf("graph job with sweep fields")
		}
		if js.K < 1 {
			return fmt.Errorf("graph job: k = %d, want >= 1", js.K)
		}
		if js.Imbalance < 0 || js.Imbalance >= 1 {
			return fmt.Errorf("graph job: imbalance %g, want [0,1)", js.Imbalance)
		}
		be, err := backend.Lookup(js.Backend)
		if err != nil {
			return err
		}
		if be.Caps().NeedsCoords && js.Graph.Coords == nil {
			return fmt.Errorf("backend %q needs coordinates and the graph has none", be.Name())
		}
		return js.Graph.shapeCheck(maxVertices)
	case KindSweep:
		if js.Sweep == nil {
			return fmt.Errorf("sweep job without sweep parameters")
		}
		if js.Graph != nil {
			return fmt.Errorf("sweep job with graph fields")
		}
		s := js.Sweep
		if s.Snapshots < 1 || s.Snapshots > 200 {
			return fmt.Errorf("sweep job: snapshots = %d, want 1..200", s.Snapshots)
		}
		if s.Refine < 0 || s.Refine > 3 {
			return fmt.Errorf("sweep job: refine = %d, want 0..3", s.Refine)
		}
		if len(s.Ks) == 0 {
			return fmt.Errorf("sweep job: no ks")
		}
		for _, k := range s.Ks {
			if k < 1 || k > 1024 {
				return fmt.Errorf("sweep job: k = %d, want 1..1024", k)
			}
		}
		if _, err := backend.Lookup(s.Backend); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("unknown job kind %q (want %q or %q)", js.Kind, KindGraph, KindSweep)
	}
}

// hash binds a spec to its work: every result-affecting field, in a
// fixed binary encoding. It keys the result cache and the checkpoint
// spool; TimeoutMS is deliberately excluded (a retry with a longer
// deadline must find the shorter run's checkpoint).
func (js *JobSpec) hash() string {
	h := sha256.New()
	w := func(vs ...any) {
		for _, v := range vs {
			// The hash input is fixed-width binary; sha256.Write never
			// fails and binary.Write over it cannot either.
			_ = binary.Write(h, binary.LittleEndian, v)
		}
	}
	w([]byte(js.Kind))
	switch js.Kind {
	case KindGraph:
		gs := js.Graph
		w(int64(js.K), js.Seed, math.Float64bits(js.Imbalance))
		w([]byte(js.Backend), byte(0))
		w(int64(gs.NCon), int64(gs.Dim), int64(len(gs.Adj)))
		w(gs.Xadj, gs.Adj)
		w(int64(len(gs.AdjWgt)))
		w(gs.AdjWgt)
		w(int64(len(gs.VWgt)))
		w(gs.VWgt)
		w(int64(len(gs.Coords)))
		w(gs.Coords)
	case KindSweep:
		ss := js.Sweep.withDefaults()
		w(int64(ss.Refine), int64(ss.Snapshots), int64(ss.Steps), ss.Seed, ss.Adaptive)
		w([]byte(ss.Backend), byte(0))
		w(int64(len(ss.Ks)))
		for _, k := range ss.Ks {
			w(int64(k))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// timeout resolves the job's deadline against the server bounds.
func (js *JobSpec) timeout(def, max time.Duration) time.Duration {
	d := time.Duration(js.TimeoutMS) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if d > max {
		d = max
	}
	return d
}

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: accepted, waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning: executing on a worker.
	StatusRunning Status = "running"
	// StatusDone: finished; Result holds the payload.
	StatusDone Status = "done"
	// StatusFailed: the payload returned an error, panicked (the panic
	// is isolated to the job), or overran its deadline.
	StatusFailed Status = "failed"
	// StatusCanceled: cancelled by the client before completion.
	StatusCanceled Status = "canceled"
	// StatusDrained: interrupted mid-run by server drain. Sweep
	// progress up to the drain is durable in the checkpoint spool;
	// resubmitting the same spec after restart resumes it.
	StatusDrained Status = "drained"
	// StatusDrainedQueued: still queued when the server drained; never
	// started. Resubmit after restart.
	StatusDrainedQueued Status = "drained_queued"
)

// terminal reports whether a status is final.
func (s Status) terminal() bool {
	switch s {
	case StatusDone, StatusFailed, StatusCanceled, StatusDrained, StatusDrainedQueued:
		return true
	}
	return false
}

// GraphResult is a graph job's payload result.
type GraphResult struct {
	Labels []int32 `json:"labels"`
	// Cut is the edge cut of the labels; Imbalances the per-constraint
	// load imbalance (max part weight over perfect share).
	Cut        int64     `json:"cut"`
	Imbalances []float64 `json:"imbalances"`
}

// SweepResult is a sweep job's payload result: the harness results in
// k order. Only deterministic fields are serialized, so a drained,
// restarted, and resubmitted sweep marshals byte-identically to an
// uninterrupted one.
type SweepResult struct {
	Results []*harness.Result `json:"results"`
}

// Job is one submitted unit of work and its lifecycle record. Fields
// are guarded by the server mutex; JobView is the lock-free snapshot
// handed to the HTTP layer.
type Job struct {
	id   string
	seq  int64 // submission sequence number (fault-plan identity)
	key  string
	hash string
	spec JobSpec

	status  Status
	err     string
	result  []byte // marshaled GraphResult / SweepResult JSON
	cached  bool   // served from the result cache
	resumed bool   // sweep resumed from a drained run's checkpoint

	obsReport  *obs.Report // per-job collector snapshot, set at finish
	cancel     func()      // cancels the running payload (nil until running)
	clientStop bool        // cancel() was requested by the client
	done       chan struct{}

	submitted time.Time
	wallNS    int64 // queue + run wall clock, set at finish
}

// JobView is the exported snapshot of a job (the GET /jobs/{id} body).
type JobView struct {
	ID     string `json:"id"`
	Kind   Kind   `json:"kind"`
	Status Status `json:"status"`
	// Hash is the work identity (cache/spool key) of the spec.
	Hash string `json:"hash"`
	// Cached: the result came from the LRU result cache. Resumed: the
	// sweep fast-forwarded from a drained run's checkpoint.
	Cached  bool   `json:"cached,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`
	Error   string `json:"error,omitempty"`
	// Result is the payload result JSON (GraphResult or SweepResult)
	// when Status is "done".
	Result []byte `json:"-"`
	// WallNS is submit-to-finish wall clock, 0 until terminal.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Obs is the per-job observability report (phases, counters,
	// histograms), set at finish.
	Obs *obs.Report `json:"obs,omitempty"`
}

// view snapshots a job. Caller holds the server mutex.
func (j *Job) view() JobView {
	return JobView{
		ID:      j.id,
		Kind:    j.spec.Kind,
		Status:  j.status,
		Hash:    j.hash,
		Cached:  j.cached,
		Resumed: j.resumed,
		Error:   j.err,
		Result:  j.result,
		WallNS:  j.wallNS,
		Obs:     j.obsReport,
	}
}
