package server

// Unit tests for the job engine: lifecycle, backpressure, caching,
// idempotency, deadlines, panic isolation, cancellation, and drain
// semantics. The HTTP surface is covered in http_test.go and the
// chaos-under-load proofs in chaos_test.go.

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// gridSpec builds a unit-weight nx x ny grid graph in wire form.
func gridSpec(nx, ny int) *GraphSpec {
	nv := nx * ny
	xadj := make([]int32, 1, nv+1)
	var adj []int32
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				ux, uy := x+d[0], y+d[1]
				if ux >= 0 && ux < nx && uy >= 0 && uy < ny {
					adj = append(adj, int32(uy*nx+ux))
				}
			}
			xadj = append(xadj, int32(len(adj)))
		}
	}
	return &GraphSpec{NCon: 1, Xadj: xadj, Adj: adj}
}

// graphJob is a small multilevel job over a 24x24 grid; distinct
// seeds give distinct spec hashes.
func graphJob(seed int64) JobSpec {
	return JobSpec{Kind: KindGraph, Graph: gridSpec(24, 24), K: 4, Seed: seed}
}

// newTestServer starts a server and registers a drain as cleanup, so
// a test that forgets to stop it cannot leak workers into the next.
func newTestServer(t *testing.T, opt Options) *Server {
	t.Helper()
	s := New(opt)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return s
}

// wait blocks until the job is terminal.
func wait(t *testing.T, s *Server, id string) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	view, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return view
}

func TestServerGraphJobLifecycle(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	view, err := s.Submit(graphJob(1), "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if view.Status != StatusQueued {
		t.Fatalf("fresh job status = %s, want queued", view.Status)
	}
	view = wait(t, s, view.ID)
	if view.Status != StatusDone {
		t.Fatalf("job finished %s (%s), want done", view.Status, view.Error)
	}
	var res GraphResult
	mustUnmarshal(t, view.Result, &res)
	if len(res.Labels) != 24*24 {
		t.Fatalf("%d labels for %d vertices", len(res.Labels), 24*24)
	}
	for v, l := range res.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("vertex %d has label %d outside [0,4)", v, l)
		}
	}
	if res.Cut <= 0 {
		t.Fatalf("cut = %d, want > 0 for a connected grid split 4 ways", res.Cut)
	}
	if len(res.Imbalances) != 1 {
		t.Fatalf("%d imbalance entries for 1 constraint", len(res.Imbalances))
	}
	if view.Obs == nil {
		t.Fatalf("finished job carries no obs report")
	}
	if view.WallNS <= 0 {
		t.Fatalf("finished job has wall %d", view.WallNS)
	}
	a := s.Accounting()
	if a.Submitted != 1 || a.Accepted != 1 || a.Completed != 1 {
		t.Fatalf("ledger after one job: %+v", a)
	}
}

func TestServerResultCacheHit(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	first, err := s.Submit(graphJob(7), "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	first = wait(t, s, first.ID)

	second, err := s.Submit(graphJob(7), "")
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if second.ID == first.ID {
		t.Fatalf("cache hit reused the job id")
	}
	if second.Status != StatusDone || !second.Cached {
		t.Fatalf("resubmission of a finished spec: status %s cached %t, want instant cached done", second.Status, second.Cached)
	}
	if string(second.Result) != string(first.Result) {
		t.Fatalf("cached result differs from computed result")
	}
	a := s.Accounting()
	if a.CacheHits != 1 || a.Completed != 2 {
		t.Fatalf("ledger after cache hit: %+v", a)
	}

	// A different spec misses.
	third, err := s.Submit(graphJob(8), "")
	if err != nil {
		t.Fatalf("submit third: %v", err)
	}
	if third.Status != StatusQueued {
		t.Fatalf("distinct spec should queue, got %s", third.Status)
	}
	wait(t, s, third.ID)
}

func TestServerIdempotencyKeyDedups(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	first, err := s.Submit(graphJob(3), "retry-abc")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	second, err := s.Submit(graphJob(3), "retry-abc")
	if err != nil {
		t.Fatalf("retry submit: %v", err)
	}
	if second.ID != first.ID {
		t.Fatalf("idempotent retry created a new job: %s then %s", first.ID, second.ID)
	}
	a := s.Accounting()
	if a.Deduped != 1 || a.Accepted != 1 {
		t.Fatalf("ledger after dedup: %+v", a)
	}
	wait(t, s, first.ID)
}

func TestServerValidationRejects(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	bad := []JobSpec{
		{Kind: "nope"},
		{Kind: KindGraph},                        // no graph
		{Kind: KindGraph, Graph: gridSpec(4, 4)}, // k = 0
		{Kind: KindGraph, Graph: gridSpec(4, 4), K: 2, Backend: "no-such"},
		{Kind: KindGraph, Graph: gridSpec(4, 4), K: 2, Backend: "rcb"}, // needs coords
		{Kind: KindGraph, Graph: &GraphSpec{NCon: 1, Xadj: []int32{0, 2}, Adj: []int32{1}}, K: 2},
		{Kind: KindSweep}, // no sweep
		{Kind: KindSweep, Sweep: &SweepSpec{Snapshots: 1}}, // no ks
		{Kind: KindSweep, Sweep: &SweepSpec{Snapshots: 0, Ks: []int{2}}},
		{Kind: KindSweep, Sweep: &SweepSpec{Snapshots: 1, Ks: []int{0}}},
		{Kind: KindSweep, Sweep: &SweepSpec{Snapshots: 1, Ks: []int{2}}, Graph: gridSpec(2, 2)},
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec, ""); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	a := s.Accounting()
	if a.RejectedInvalid != int64(len(bad)) || a.Accepted != 0 {
		t.Fatalf("ledger after invalid submissions: %+v", a)
	}
}

func TestServerQueueFullSheds(t *testing.T) {
	// One worker, stalled on its first job; queue depth 1. The second
	// submission queues, the third must shed.
	plan := &fault.Plan{StallRank: map[int]fault.Stall{0: {Phase: jobPhase, For: time.Minute}}}
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 1, Fault: plan})

	stalled, err := s.Submit(graphJob(1), "")
	if err != nil {
		t.Fatalf("submit stalled job: %v", err)
	}
	waitForStatus(t, s, stalled.ID, StatusRunning)

	queued, err := s.Submit(graphJob(2), "")
	if err != nil {
		t.Fatalf("submit queued job: %v", err)
	}
	if _, err := s.Submit(graphJob(3), ""); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	a := s.Accounting()
	if a.RejectedFull != 1 || a.Accepted != 2 {
		t.Fatalf("ledger after shed: %+v", a)
	}

	// Cancel unblocks the stall (MaybeStall honors the context), the
	// worker moves on, and the queued job completes: shedding is
	// load-dependent, not sticky.
	if _, err := s.Cancel(stalled.ID); err != nil {
		t.Fatalf("cancel stalled: %v", err)
	}
	if view := wait(t, s, queued.ID); view.Status != StatusDone {
		t.Fatalf("queued job after unblock: %s (%s)", view.Status, view.Error)
	}
	if _, err := s.Submit(graphJob(3), ""); err != nil {
		t.Fatalf("submit after unblock: %v", err)
	}
}

func TestServerPanicIsolation(t *testing.T) {
	// Job seq 0 panics inside execution; the daemon must survive and
	// keep serving.
	plan := &fault.Plan{PanicRank: map[int]int{0: jobPhase}}
	s := newTestServer(t, Options{Workers: 1, Fault: plan})

	doomed, err := s.Submit(graphJob(1), "")
	if err != nil {
		t.Fatalf("submit doomed: %v", err)
	}
	view := wait(t, s, doomed.ID)
	if view.Status != StatusFailed || !strings.Contains(view.Error, "panicked") {
		t.Fatalf("doomed job: status %s error %q, want failed with panic message", view.Status, view.Error)
	}

	after, err := s.Submit(graphJob(2), "")
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	if view := wait(t, s, after.ID); view.Status != StatusDone {
		t.Fatalf("job after a panicking job: %s (%s), want done", view.Status, view.Error)
	}
	a := s.Accounting()
	if a.Failed != 1 || a.Completed != 1 {
		t.Fatalf("ledger after panic: %+v", a)
	}
}

func TestServerDeadlineFailsJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	spec := JobSpec{Kind: KindGraph, Graph: gridSpec(300, 300), K: 32, TimeoutMS: 30}
	view, err := s.Submit(spec, "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	t0 := time.Now()
	view = wait(t, s, view.ID)
	if view.Status != StatusFailed || !strings.Contains(view.Error, "deadline") {
		t.Fatalf("deadline job: status %s error %q, want failed with deadline", view.Status, view.Error)
	}
	// The deadline must actually stop the recursion, not just mark the
	// job: the 300x300 k=32 partition takes far longer than this bound
	// when allowed to finish.
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("deadline-expired job held its worker for %v", elapsed)
	}
}

func TestServerCancelQueuedAndRunning(t *testing.T) {
	plan := &fault.Plan{StallRank: map[int]fault.Stall{0: {Phase: jobPhase, For: time.Minute}}}
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 4, Fault: plan})

	running, err := s.Submit(graphJob(1), "")
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	waitForStatus(t, s, running.ID, StatusRunning)
	queued, err := s.Submit(graphJob(2), "")
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	// Queued: cancelled on the spot, never runs.
	view, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if view.Status != StatusCanceled {
		t.Fatalf("cancelled queued job is %s", view.Status)
	}

	// Running: transitions when the payload notices the dead context.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	view = wait(t, s, running.ID)
	if view.Status != StatusCanceled {
		t.Fatalf("cancelled running job finished %s (%s)", view.Status, view.Error)
	}

	// Cancelling a terminal job is a no-op returning the final view.
	again, err := s.Cancel(running.ID)
	if err != nil || again.Status != StatusCanceled {
		t.Fatalf("re-cancel: view %+v err %v", again, err)
	}
	if _, err := s.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: err = %v, want ErrNotFound", err)
	}
	a := s.Accounting()
	if a.Canceled != 2 {
		t.Fatalf("ledger after cancels: %+v", a)
	}
}

func TestServerDrainSemantics(t *testing.T) {
	plan := &fault.Plan{StallRank: map[int]fault.Stall{0: {Phase: jobPhase, For: time.Minute}}}
	s := New(Options{Workers: 1, QueueDepth: 4, Fault: plan})

	running, err := s.Submit(graphJob(1), "")
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	waitForStatus(t, s, running.ID, StatusRunning)
	queued, err := s.Submit(graphJob(2), "")
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if view, _ := s.Job(running.ID); view.Status != StatusDrained {
		t.Fatalf("in-flight job after drain: %s, want drained", view.Status)
	}
	if view, _ := s.Job(queued.ID); view.Status != StatusDrainedQueued {
		t.Fatalf("queued job after drain: %s, want drained_queued", view.Status)
	}
	if _, err := s.Submit(graphJob(3), ""); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: err = %v, want ErrDraining", err)
	}
	if !s.Draining() {
		t.Fatalf("Draining() false after drain")
	}
	// Idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	a := s.Accounting()
	if a.Drained != 1 || a.DrainedQueued != 1 || a.RejectedDraining != 1 {
		t.Fatalf("ledger after drain: %+v", a)
	}
}

// waitForStatus polls until the job reaches the wanted status (the
// transition into "running" has no channel to wait on).
func waitForStatus(t *testing.T, s *Server, id string, want Status) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		view, err := s.Job(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if view.Status == want {
			return
		}
		if view.Status.terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s", id, view.Status, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
}
