package mesh

import (
	"testing"

	"repro/internal/geom"
	_ "repro/internal/graph"
)

func benchTetMesh() *Mesh {
	// 30x30x8 hex block split into tets ~ 43k tets.
	m := &Mesh{Dim: 3, EPtr: []int32{0}}
	nx, ny, nz := 30, 30, 8
	id := func(x, y, z int) int32 { return int32(z*(ny+1)*(nx+1) + y*(nx+1) + x) }
	for z := 0; z <= nz; z++ {
		for y := 0; y <= ny; y++ {
			for x := 0; x <= nx; x++ {
				m.Coords = append(m.Coords, geom.P3(float64(x), float64(y), float64(z)))
			}
		}
	}
	tets := [6][4]int{{0, 1, 2, 6}, {0, 2, 3, 6}, {0, 3, 7, 6}, {0, 7, 4, 6}, {0, 4, 5, 6}, {0, 5, 1, 6}}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				corners := [8]int32{
					id(x, y, z), id(x+1, y, z), id(x+1, y+1, z), id(x, y+1, z),
					id(x, y, z+1), id(x+1, y, z+1), id(x+1, y+1, z+1), id(x, y+1, z+1),
				}
				for _, t := range tets {
					m.Types = append(m.Types, Tet4)
					m.ENodes = append(m.ENodes, corners[t[0]], corners[t[1]], corners[t[2]], corners[t[3]])
					m.EPtr = append(m.EPtr, int32(len(m.ENodes)))
				}
			}
		}
	}
	return m
}

func BenchmarkNodalGraphTets(b *testing.B) {
	m := benchTetMesh()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NodalGraph(NodalGraphOptions{NCon: 2, ContactEdgeWeight: 5})
	}
}
