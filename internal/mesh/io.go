package mesh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/geom"
)

// Binary mesh format: a little-endian stream with a magic header,
// version byte, and length-prefixed sections. The format is
// self-contained so snapshot sequences can be written by cmd/meshgen
// and replayed by the benchmark harness.

const (
	meshMagic   = uint32(0x4d455348) // "MESH"
	meshVersion = uint8(1)
)

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteTo encodes the mesh in the binary format. It implements
// io.WriterTo.
func (m *Mesh) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	le := binary.LittleEndian

	put32 := func(v uint32) {
		var b [4]byte
		le.PutUint32(b[:], v)
		bw.Write(b[:])
	}
	put64 := func(v uint64) {
		var b [8]byte
		le.PutUint64(b[:], v)
		bw.Write(b[:])
	}

	put32(meshMagic)
	bw.WriteByte(meshVersion)
	bw.WriteByte(uint8(m.Dim))

	put32(uint32(len(m.Coords)))
	for _, p := range m.Coords {
		for d := 0; d < 3; d++ {
			put64(math.Float64bits(p[d]))
		}
	}

	put32(uint32(len(m.Types)))
	for _, t := range m.Types {
		bw.WriteByte(uint8(t))
	}
	put32(uint32(len(m.ENodes)))
	for _, v := range m.ENodes {
		put32(uint32(v))
	}

	put32(uint32(len(m.Surface)))
	for _, s := range m.Surface {
		bw.WriteByte(uint8(len(s.Nodes)))
		for _, v := range s.Nodes {
			put32(uint32(v))
		}
		put32(uint32(s.Elem))
	}

	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadMesh decodes a mesh written by WriteTo.
func ReadMesh(r io.Reader) (*Mesh, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian

	var err error
	get32 := func() uint32 {
		if err != nil {
			return 0
		}
		var b [4]byte
		if _, e := io.ReadFull(br, b[:]); e != nil {
			err = e
			return 0
		}
		return le.Uint32(b[:])
	}
	get64 := func() uint64 {
		if err != nil {
			return 0
		}
		var b [8]byte
		if _, e := io.ReadFull(br, b[:]); e != nil {
			err = e
			return 0
		}
		return le.Uint64(b[:])
	}
	getByte := func() uint8 {
		if err != nil {
			return 0
		}
		b, e := br.ReadByte()
		if e != nil {
			err = e
			return 0
		}
		return b
	}

	if magic := get32(); err == nil && magic != meshMagic {
		return nil, fmt.Errorf("mesh: bad magic %#x", magic)
	}
	if v := getByte(); err == nil && v != meshVersion {
		return nil, fmt.Errorf("mesh: unsupported version %d", v)
	}
	m := &Mesh{Dim: int(getByte())}
	if err == nil && m.Dim != 2 && m.Dim != 3 {
		return nil, fmt.Errorf("mesh: bad dimension %d", m.Dim)
	}

	const maxCount = 1 << 28 // sanity bound against corrupt headers
	nn := get32()
	if err == nil && nn > maxCount {
		return nil, fmt.Errorf("mesh: implausible node count %d", nn)
	}
	m.Coords = make([]geom.Point, nn)
	for i := range m.Coords {
		for d := 0; d < 3; d++ {
			m.Coords[i][d] = math.Float64frombits(get64())
		}
	}

	ne := get32()
	if err == nil && ne > maxCount {
		return nil, fmt.Errorf("mesh: implausible element count %d", ne)
	}
	m.Types = make([]ElemType, ne)
	for i := range m.Types {
		m.Types[i] = ElemType(getByte())
	}
	nen := get32()
	if err == nil && nen > maxCount {
		return nil, fmt.Errorf("mesh: implausible node-list length %d", nen)
	}
	m.ENodes = make([]int32, nen)
	for i := range m.ENodes {
		m.ENodes[i] = int32(get32())
	}
	m.EPtr = make([]int32, ne+1)
	for e := 0; e < int(ne); e++ {
		if err == nil && (m.Types[e] != Tri3 && m.Types[e] != Quad4 && m.Types[e] != Tet4 && m.Types[e] != Hex8) {
			return nil, fmt.Errorf("mesh: element %d has unknown type %d", e, m.Types[e])
		}
		if err != nil {
			break
		}
		m.EPtr[e+1] = m.EPtr[e] + int32(m.Types[e].NumNodes())
	}
	if err == nil && int(m.EPtr[ne]) != len(m.ENodes) {
		return nil, fmt.Errorf("mesh: node list length %d does not match element types (%d)", len(m.ENodes), m.EPtr[ne])
	}

	ns := get32()
	if err == nil && ns > maxCount {
		return nil, fmt.Errorf("mesh: implausible surface count %d", ns)
	}
	m.Surface = make([]SurfaceElem, ns)
	for i := range m.Surface {
		k := int(getByte())
		if err == nil && (k < 2 || k > 4) {
			return nil, fmt.Errorf("mesh: surface element %d has %d nodes", i, k)
		}
		if err != nil {
			break
		}
		nodes := make([]int32, k)
		for j := range nodes {
			nodes[j] = int32(get32())
		}
		m.Surface[i] = SurfaceElem{Nodes: nodes, Elem: int32(get32())}
	}

	if err != nil {
		return nil, fmt.Errorf("mesh: decode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveFile writes the mesh to path.
func (m *Mesh) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := m.WriteTo(f); err != nil {
		_ = f.Close() // already failing; the write error is the one to report
		return err
	}
	return f.Close()
}

// LoadFile reads a mesh from path.
func LoadFile(path string) (*Mesh, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMesh(f)
}
