package mesh

import (
	"bytes"
	"testing"

	"repro/internal/geom"
)

// unitQuadMesh builds a 2x2 quad grid (9 nodes, 4 quads) in 2D:
//
//	6-7-8
//	3-4-5
//	0-1-2
func unitQuadMesh() *Mesh {
	m := &Mesh{Dim: 2}
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			m.Coords = append(m.Coords, geom.P2(float64(x), float64(y)))
		}
	}
	addQuad := func(a, b, c, d int32) {
		m.Types = append(m.Types, Quad4)
		m.EPtr = append(m.EPtr, int32(len(m.ENodes))+4)
		m.ENodes = append(m.ENodes, a, b, c, d)
	}
	m.EPtr = []int32{0}
	addQuad(0, 1, 4, 3)
	addQuad(1, 2, 5, 4)
	addQuad(3, 4, 7, 6)
	addQuad(4, 5, 8, 7)
	return m
}

// unitHexMesh builds a single hexahedron.
func unitHexMesh() *Mesh {
	m := &Mesh{Dim: 3}
	for z := 0; z < 2; z++ {
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				m.Coords = append(m.Coords, geom.P3(float64(x), float64(y), float64(z)))
			}
		}
	}
	m.Types = []ElemType{Hex8}
	m.EPtr = []int32{0, 8}
	// Local hex ordering: bottom 0,1,2,3 CCW then top 4,5,6,7.
	m.ENodes = []int32{0, 1, 3, 2, 4, 5, 7, 6}
	return m
}

func TestElemTypeTables(t *testing.T) {
	for _, et := range []ElemType{Tri3, Quad4, Tet4, Hex8} {
		edges := et.Edges()
		faces := et.Faces()
		if len(edges) == 0 || len(faces) == 0 {
			t.Fatalf("%v: missing topology tables", et)
		}
		for _, e := range edges {
			if e[0] >= et.NumNodes() || e[1] >= et.NumNodes() {
				t.Errorf("%v: edge %v out of range", et, e)
			}
		}
		for _, f := range faces {
			for _, li := range f {
				if li >= et.NumNodes() {
					t.Errorf("%v: face %v out of range", et, f)
				}
			}
		}
	}
	wantEdges := map[ElemType]int{Tri3: 3, Quad4: 4, Tet4: 6, Hex8: 12}
	for et, n := range wantEdges {
		if len(et.Edges()) != n {
			t.Errorf("%v: %d edges, want %d", et, len(et.Edges()), n)
		}
	}
	wantFaces := map[ElemType]int{Tri3: 3, Quad4: 4, Tet4: 4, Hex8: 6}
	for et, n := range wantFaces {
		if len(et.Faces()) != n {
			t.Errorf("%v: %d faces, want %d", et, len(et.Faces()), n)
		}
	}
}

func TestValidateGood(t *testing.T) {
	for _, m := range []*Mesh{unitQuadMesh(), unitHexMesh()} {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestValidateBad(t *testing.T) {
	m := unitQuadMesh()
	m.ENodes[0] = 99
	if err := m.Validate(); err == nil {
		t.Error("accepted out-of-range node")
	}
	m2 := unitQuadMesh()
	m2.Types[0] = Hex8 // 3D element in 2D mesh
	if err := m2.Validate(); err == nil {
		t.Error("accepted 3D element in 2D mesh")
	}
	m3 := unitQuadMesh()
	m3.Dim = 7
	if err := m3.Validate(); err == nil {
		t.Error("accepted dim 7")
	}
}

func TestNodalGraphQuadGrid(t *testing.T) {
	m := unitQuadMesh()
	g := m.NodalGraph(NodalGraphOptions{NCon: 1})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NV() != 9 {
		t.Fatalf("NV = %d", g.NV())
	}
	// 2x2 quad grid: 12 unique mesh edges.
	if g.NE() != 12 {
		t.Fatalf("NE = %d, want 12", g.NE())
	}
	// Center node 4 touches 4 edges.
	if g.Degree(4) != 4 {
		t.Errorf("deg(4) = %d, want 4", g.Degree(4))
	}
	// Corner node 0 touches 2 edges.
	if g.Degree(0) != 2 {
		t.Errorf("deg(0) = %d, want 2", g.Degree(0))
	}
}

func TestNodalGraphContactWeights(t *testing.T) {
	m := unitQuadMesh()
	// Mark the bottom edge (nodes 0,1,2) as a contact surface.
	m.Surface = []SurfaceElem{
		{Nodes: []int32{0, 1}, Elem: 0},
		{Nodes: []int32{1, 2}, Elem: 1},
	}
	g := m.NodalGraph(DefaultNodalOptions())
	if g.NCon != 2 {
		t.Fatalf("NCon = %d", g.NCon)
	}
	// Contact nodes get w2 = 1, others 0.
	for _, v := range []int{0, 1, 2} {
		if g.Weight(v, 1) != 1 {
			t.Errorf("node %d w2 = %d, want 1", v, g.Weight(v, 1))
		}
	}
	for _, v := range []int{3, 4, 5, 6, 7, 8} {
		if g.Weight(v, 1) != 0 {
			t.Errorf("node %d w2 = %d, want 0", v, g.Weight(v, 1))
		}
	}
	// Edge {0,1} is contact-contact: weight 5. Edge {0,3} is not: weight 1.
	checkEdge := func(u, v int, want int32) {
		t.Helper()
		for i, w := range g.Neighbors(u) {
			if int(w) == v {
				if got := g.EdgeWeights(u)[i]; got != want {
					t.Errorf("edge {%d,%d} weight = %d, want %d", u, v, got, want)
				}
				return
			}
		}
		t.Errorf("edge {%d,%d} missing", u, v)
	}
	checkEdge(0, 1, 5)
	checkEdge(1, 2, 5)
	checkEdge(0, 3, 1)
	checkEdge(4, 5, 1)
}

func TestContactNodes(t *testing.T) {
	m := unitQuadMesh()
	m.Surface = []SurfaceElem{{Nodes: []int32{2, 5}, Elem: 1}, {Nodes: []int32{5, 8}, Elem: 3}}
	got := m.ContactNodes()
	want := []int32{2, 5, 8}
	if len(got) != len(want) {
		t.Fatalf("ContactNodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ContactNodes = %v, want %v", got, want)
		}
	}
}

func TestDualGraphQuadGrid(t *testing.T) {
	m := unitQuadMesh()
	d := m.DualGraph()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NV() != 4 {
		t.Fatalf("NV = %d", d.NV())
	}
	// 2x2 grid of quads: 4 shared interior edges.
	if d.NE() != 4 {
		t.Fatalf("NE = %d, want 4", d.NE())
	}
	for e := 0; e < 4; e++ {
		if d.Degree(e) != 2 {
			t.Errorf("dual deg(%d) = %d, want 2", e, d.Degree(e))
		}
	}
}

func TestDualGraphHexPair(t *testing.T) {
	// Two hexes sharing a face.
	m := &Mesh{Dim: 3}
	for z := 0; z < 2; z++ {
		for y := 0; y < 2; y++ {
			for x := 0; x < 3; x++ {
				m.Coords = append(m.Coords, geom.P3(float64(x), float64(y), float64(z)))
			}
		}
	}
	id := func(x, y, z int) int32 { return int32(z*6 + y*3 + x) }
	hex := func(x int) []int32 {
		return []int32{
			id(x, 0, 0), id(x+1, 0, 0), id(x+1, 1, 0), id(x, 1, 0),
			id(x, 0, 1), id(x+1, 0, 1), id(x+1, 1, 1), id(x, 1, 1),
		}
	}
	m.Types = []ElemType{Hex8, Hex8}
	m.EPtr = []int32{0, 8, 16}
	m.ENodes = append(hex(0), hex(1)...)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	d := m.DualGraph()
	if d.NV() != 2 || d.NE() != 1 {
		t.Fatalf("dual NV=%d NE=%d, want 2, 1", d.NV(), d.NE())
	}
}

func TestBoundaryFacets(t *testing.T) {
	m := unitQuadMesh()
	bf := m.BoundaryFacets()
	// 2x2 quad grid: 8 boundary edges.
	if len(bf) != 8 {
		t.Fatalf("boundary facets = %d, want 8", len(bf))
	}
	hex := unitHexMesh()
	bf3 := hex.BoundaryFacets()
	if len(bf3) != 6 {
		t.Fatalf("hex boundary facets = %d, want 6", len(bf3))
	}
}

func TestSurfaceBoxAndMeshBox(t *testing.T) {
	m := unitQuadMesh()
	m.Surface = []SurfaceElem{{Nodes: []int32{0, 2}, Elem: 0}}
	b := m.SurfaceBox(0)
	if b.Min != geom.P2(0, 0) || b.Max != geom.P2(2, 0) {
		t.Errorf("SurfaceBox = %v", b)
	}
	mb := m.Box()
	if mb.Min != geom.P2(0, 0) || mb.Max != geom.P2(2, 2) {
		t.Errorf("Box = %v", mb)
	}
}

func TestRoundTripIO(t *testing.T) {
	m := unitQuadMesh()
	m.Surface = []SurfaceElem{{Nodes: []int32{0, 1}, Elem: 0}, {Nodes: []int32{1, 2}, Elem: -1}}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMesh(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != m.Dim || got.NumNodes() != m.NumNodes() || got.NumElems() != m.NumElems() {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i, p := range m.Coords {
		if got.Coords[i] != p {
			t.Fatalf("coord %d: %v != %v", i, got.Coords[i], p)
		}
	}
	for e := 0; e < m.NumElems(); e++ {
		gn, wn := got.ElemNodes(e), m.ElemNodes(e)
		for i := range wn {
			if gn[i] != wn[i] {
				t.Fatalf("elem %d nodes %v != %v", e, gn, wn)
			}
		}
	}
	if len(got.Surface) != 2 || got.Surface[1].Elem != -1 {
		t.Fatalf("surface round trip: %+v", got.Surface)
	}
}

func TestReadMeshRejectsGarbage(t *testing.T) {
	if _, err := ReadMesh(bytes.NewReader([]byte("not a mesh at all........"))); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := ReadMesh(bytes.NewReader(nil)); err == nil {
		t.Error("accepted empty input")
	}
	// Truncated valid prefix.
	m := unitQuadMesh()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadMesh(bytes.NewReader(trunc)); err == nil {
		t.Error("accepted truncated stream")
	}
}

func TestClone(t *testing.T) {
	m := unitQuadMesh()
	m.Surface = []SurfaceElem{{Nodes: []int32{0, 1}, Elem: 0}}
	c := m.Clone()
	c.Coords[0] = geom.P2(99, 99)
	c.ENodes[0] = 5
	c.Surface[0].Nodes[0] = 7
	if m.Coords[0] == c.Coords[0] || m.ENodes[0] == c.ENodes[0] || m.Surface[0].Nodes[0] == 7 {
		t.Error("Clone shares storage with original")
	}
}

func TestFileRoundTrip(t *testing.T) {
	m := unitHexMesh()
	path := t.TempDir() + "/m.mesh"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 8 || got.NumElems() != 1 {
		t.Fatalf("got %d nodes %d elems", got.NumNodes(), got.NumElems())
	}
}

func TestElemMeasureKnown(t *testing.T) {
	q := unitQuadMesh() // unit quads
	for e := 0; e < q.NumElems(); e++ {
		if got := q.ElemMeasure(e); got < 0.999 || got > 1.001 {
			t.Errorf("quad %d measure = %v, want 1", e, got)
		}
	}
	h := unitHexMesh() // unit hex
	if got := h.ElemMeasure(0); got < 0.999 || got > 1.001 {
		t.Errorf("hex measure = %v, want 1", got)
	}
	if got := h.TotalMeasure(); got < 0.999 || got > 1.001 {
		t.Errorf("total measure = %v", got)
	}
	if h.CountInverted() != 0 {
		t.Error("unit hex counted as inverted")
	}
}

func TestElemMeasureDetectsInversion(t *testing.T) {
	m := &Mesh{
		Dim:    3,
		Coords: []geom.Point{geom.P3(0, 0, 0), geom.P3(1, 0, 0), geom.P3(0, 1, 0), geom.P3(0, 0, 1)},
		Types:  []ElemType{Tet4},
		EPtr:   []int32{0, 4},
		ENodes: []int32{0, 1, 2, 3},
	}
	if v := m.ElemMeasure(0); v <= 0 {
		t.Fatalf("regular tet measure %v", v)
	}
	// Swap two nodes: inverted.
	m.ENodes[0], m.ENodes[1] = m.ENodes[1], m.ENodes[0]
	if v := m.ElemMeasure(0); v >= 0 {
		t.Fatalf("inverted tet measure %v, want negative", v)
	}
	if m.CountInverted() != 1 {
		t.Error("inversion not counted")
	}
}

func TestTriAreaSigned2D(t *testing.T) {
	m := &Mesh{
		Dim:    2,
		Coords: []geom.Point{geom.P2(0, 0), geom.P2(1, 0), geom.P2(0, 1)},
		Types:  []ElemType{Tri3},
		EPtr:   []int32{0, 3},
		ENodes: []int32{0, 1, 2},
	}
	if v := m.ElemMeasure(0); v < 0.499 || v > 0.501 {
		t.Errorf("CCW tri area %v, want 0.5", v)
	}
	m.ENodes[1], m.ENodes[2] = m.ENodes[2], m.ENodes[1]
	if v := m.ElemMeasure(0); v > -0.499 {
		t.Errorf("CW tri area %v, want -0.5", v)
	}
}
